// scenario walks through the deterministic scenario engine
// (internal/scenario) twice over:
//
//  1. A custom inline scenario — a minimal churn + zero-day timeline
//     programmed through the Engine's scheduling helpers — showing that a
//     scenario is just a Def with a Setup hook.
//  2. A library scenario (flash-churn) run by name, showing the registry
//     and the replay guarantee: the same (name, seed) always produces the
//     same trace, byte for byte.
//
// Run with: go run ./examples/scenario
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/adversary"
	"repro/internal/config"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/vuln"
)

func main() {
	log.SetFlags(0)

	// --- 1. a custom scenario ---
	day := 24 * time.Hour
	cfg := func(os string) config.Configuration {
		return config.MustNew(config.Component{
			Class: config.ClassOperatingSystem, Name: os, Version: "1",
		})
	}
	def := scenario.Def{
		Name:    "example-inline",
		Title:   "three joins, one zero-day, one probe",
		Horizon: 4 * day,
		Tick:    day,
		Setup: func(e *scenario.Engine) error {
			for i, os := range []string{"linux", "bsd", "illumos"} {
				id := registry.ReplicaID(fmt.Sprintf("r-%d", i))
				if err := e.JoinAt(time.Duration(i)*time.Hour, id, cfg(os), 10, 12*time.Hour); err != nil {
					return err
				}
			}
			err := e.Disclose(vuln.Vulnerability{
				ID: "CVE-EX-0001", Class: config.ClassOperatingSystem,
				Product: "linux", Version: "1",
				Disclosed: day, PatchAt: 2 * day, Severity: 1,
			})
			if err != nil {
				return err
			}
			return e.ProbeAt(36*time.Hour, adversary.ExploitStrategy{Budget: 1})
		},
	}

	res, err := scenario.Run(def, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inline scenario: %d trace records (derived seed %d)\n", len(res.Records), res.Seed)
	for _, rec := range res.Records {
		line := fmt.Sprintf("  t=%-8s %-8s safe=%-5t H=%.3fb Σf=%.2f", rec.T, rec.Event, rec.Safe, rec.Entropy, rec.Compromised)
		if rec.Detail != "" {
			line += "  " + rec.Detail
		}
		if rec.AdvStrategy != "" {
			line += fmt.Sprintf("  [%s -> %.2f breaks=%t]", rec.AdvStrategy, rec.AdvFraction, rec.AdvBreaks)
		}
		fmt.Println(line)
	}

	// --- 2. a library scenario, replayed ---
	// Registered scenarios resolve through Lookup and run through the same
	// unified Run entrypoint as inline defs.
	flashChurn, ok := scenario.Lookup("flash-churn")
	if !ok {
		log.Fatal("flash-churn not registered")
	}
	first, err := scenario.Run(flashChurn, 42)
	if err != nil {
		log.Fatal(err)
	}
	again, err := scenario.Run(flashChurn, 42)
	if err != nil {
		log.Fatal(err)
	}
	identical := len(first.Records) == len(again.Records)
	for i := 0; identical && i < len(first.Records); i++ {
		a, errA := first.Records[i].JSON()
		b, errB := again.Records[i].JSON()
		if errA != nil || errB != nil {
			log.Fatal(errA, errB)
		}
		identical = a == b
	}
	s := first.Summary()
	fmt.Printf("\nflash-churn @ seed 42: %d records, min entropy %.3fb, worst Σf %.3f at %v, replay byte-identical: %t\n",
		s.Records, s.MinEntropy, s.MaxComp, s.MaxCompAt, identical)
	fmt.Println("(the scenarios CLI lists and runs the full library: go run ./cmd/scenarios -list)")
}
