// diversity-planner demonstrates Lazarus-style diversity management and
// proactive recovery — the two mitigation families the paper's related
// work points to — on a 24-replica fleet:
//
//  1. assign configurations three ways (managed/greedy, unmanaged/random,
//     monoculture) and compare component-level fault domains;
//  2. subject the diverse fleet to three staggered zero-days and compare
//     persistent compromise with and without periodic rejuvenation.
//
// Both tables run through the experiment registry (entries PLAN and M4).
//
// Run with: go run ./examples/diversity-planner
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/experiment"
	"repro/internal/planner"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	params := experiment.DefaultParams()
	params.Seed = 42

	fmt.Println("1) configuration assignment: who shares a fault domain?")
	fmt.Println()
	planExp, ok := experiment.Lookup("PLAN")
	if !ok {
		log.Fatal("experiment PLAN not registered")
	}
	tab, result, err := planExp.Run(ctx, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.String())
	fmt.Println()
	plans, ok := result.([]planner.Plan)
	if !ok {
		log.Fatalf("PLAN rows have type %T, want []planner.Plan", result)
	}
	for _, p := range plans {
		fmt.Printf("  %-20s one zero-day in %-36s captures %.0f%% of voting power\n",
			p.Strategy+":", p.WorstComponent, 100*p.WorstComponentShare)
	}

	fmt.Println()
	fmt.Println("2) proactive recovery: how long does a compromise last?")
	fmt.Println()
	m4, ok := experiment.Lookup("M4")
	if !ok {
		log.Fatal("experiment M4 not registered")
	}
	rTab, _, err := m4.Run(ctx, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rTab.String())

	fmt.Println()
	fmt.Println("3) the planner as a library call:")
	cat := config.NewCatalog()
	for _, c := range []config.Component{
		{Class: config.ClassOperatingSystem, Name: "debian", Version: "12"},
		{Class: config.ClassOperatingSystem, Name: "freebsd", Version: "13.2"},
		{Class: config.ClassOperatingSystem, Name: "openbsd", Version: "7.3"},
		{Class: config.ClassCryptoLibrary, Name: "openssl", Version: "3.0.8"},
		{Class: config.ClassCryptoLibrary, Name: "libsodium", Version: "1.0.18"},
	} {
		if err := cat.Add(c); err != nil {
			log.Fatal(err)
		}
	}
	cfgs, err := planner.GreedyAssign(cat, 6)
	if err != nil {
		log.Fatal(err)
	}
	for i, cfg := range cfgs {
		fmt.Printf("  replica %d -> %s\n", i, cfg)
	}
}
