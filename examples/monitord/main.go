// monitord demonstrates the assessment service from a client's seat: the
// same zero-day lifecycle examples/watch streams in-process, consumed
// entirely through monitord's HTTP/JSON API — create a tenant, seed its
// fleet, follow the SSE watch stream, and drive virtual time forward with
// POST …/advance until the vulnerability window opens and closes.
//
// The service is hosted in-process on a loopback listener so the example
// is self-contained and deterministic (the tenant runs on a virtual
// clock); point base at a real daemon (`go run ./cmd/monitord`) and the
// same requests work unchanged.
//
// Run with: go run ./examples/monitord
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/monitord"
)

var base string

func main() {
	log.SetFlags(0)

	// Host the service like cmd/monitord does, on a loopback listener.
	svc := monitord.NewServer()
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	base = ts.URL

	// PUT /tenants/fleet — a virtual tenant seeded with the quickstart
	// fleet and the ubuntu zero-day (disclosed t=10h, patch published
	// t=20h, 24h per-replica patch latency → window closes at t=44h).
	do("PUT", "/tenants/fleet", `{
	  "virtual": true,
	  "watchInterval": "6h",
	  "replicas": [
	    {"id": "alice", "power": 30, "patchLatency": "24h",
	     "components": [{"class": "operating-system", "name": "ubuntu", "version": "22.04"}]},
	    {"id": "bob",   "power": 20, "patchLatency": "24h",
	     "components": [{"class": "operating-system", "name": "ubuntu", "version": "22.04"}]},
	    {"id": "carol", "power": 10, "patchLatency": "24h",
	     "components": [{"class": "operating-system", "name": "ubuntu", "version": "22.04"}]},
	    {"id": "dave",  "power": 25, "patchLatency": "24h",
	     "components": [{"class": "operating-system", "name": "freebsd", "version": "13"}]},
	    {"id": "erin",  "power": 15, "patchLatency": "24h",
	     "components": [{"class": "operating-system", "name": "openbsd", "version": "7"}]}
	  ],
	  "vulns": [
	    {"id": "CVE-2023-0001", "class": "operating-system", "product": "ubuntu",
	     "version": "22.04", "disclosed": "10h", "patchAt": "20h", "severity": 1}
	  ]
	}`, nil)
	fmt.Println("created tenant 'fleet': 5 replicas, 1 disclosed vulnerability")

	// GET …/assessment — a point-in-time read at the tenant's clock (t=0).
	var a monitord.AssessmentJSON
	do("GET", "/tenants/fleet/assessment", "", &a)
	fmt.Printf("t=%-6v safe=%-5v entropy=%.3f bits\n", time.Duration(a.At), a.Safe, a.Diversity.Entropy)

	// GET …/worst?horizon=72h — the exact worst instant over the horizon,
	// before it happens: the monitor knows the window will open.
	do("GET", "/tenants/fleet/worst?horizon=72h", "", &a)
	fmt.Printf("worst over 72h: t=%v Σf=%.2f safe=%v (ubuntu carries 60%% > 1/3)\n\n",
		time.Duration(a.At), a.TotalFraction, a.Safe)

	// GET …/watch — the SSE stream. Events arrive as the virtual clock
	// crosses 6h boundaries; the driver below advances it.
	events := make(chan monitord.AssessmentJSON)
	watchResp, err := http.Get(base + "/tenants/fleet/watch")
	if err != nil {
		log.Fatal(err)
	}
	defer watchResp.Body.Close()
	go func() {
		defer close(events)
		sc := bufio.NewScanner(watchResp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev monitord.AssessmentJSON
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				log.Fatal(err)
			}
			events <- ev
		}
	}()

	// POST …/advance in 6h steps; print each emission the stream delivers.
	fmt.Println("watching over SSE, advancing 6h per step:")
	for report := range events {
		status := "SAFE  "
		if !report.Safe {
			status = "UNSAFE"
		}
		fmt.Printf("t=%-6v %s Σf=%.2f\n", time.Duration(report.At), status, report.TotalFraction)
		if time.Duration(report.At) >= 48*time.Hour { // past the window close at 44h
			break
		}
		do("POST", "/tenants/fleet/advance", `{"by": "6h"}`, nil)
	}

	// GET /tenants/fleet — the cache counters prove all of the above
	// (watch ticks + point reads) recomputed only when something changed.
	var info monitord.TenantInfo
	do("GET", "/tenants/fleet", "", &info)
	fmt.Printf("\ncache: %d rebuilds, %d hits — %d watch events shared one stream\n",
		info.Cache.Rebuilds, info.Cache.Hits, info.WatchEvents)

	// DELETE the tenant: the SSE stream ends cleanly.
	do("DELETE", "/tenants/fleet", "", nil)
	for range events {
	}
	fmt.Println("tenant deleted; watch stream closed cleanly")
}

// do issues one JSON request against the service, fails the example on
// any non-2xx, and decodes the response into out when non-nil.
func do(method, path, body string, out any) {
	req, err := http.NewRequest(method, base+path, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		log.Fatalf("%s %s: %s: %s", method, path, resp.Status, buf.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}
