// liveloop walks through the closed loop between the analytic monitor
// and a real BFT cluster (internal/liveloop) twice over:
//
//  1. A custom inline live scenario: seven replicas run actual consensus
//     over internal/simnet on the scenario clock while the harness
//     cross-checks every liveness prediction against observed commits —
//     through a partition that breaks quorum and one that doesn't.
//  2. The library's reactive-recovery scenario (live-reactive-recovery)
//     run by name: a monoculture CVE breaches the threshold, the
//     planner migrates the implanted trio to clean configs, recovery
//     rejuvenates them, and the trace records the time-to-recover.
//
// Run with: go run ./examples/liveloop
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/config"
	"repro/internal/liveloop"
	"repro/internal/registry"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)

	// --- 1. a custom live scenario ---
	osCfg := func(name string) config.Configuration {
		return config.MustNew(config.Component{
			Class: config.ClassOperatingSystem, Name: name, Version: "1",
		})
	}
	def := scenario.Def{
		Name:    "example-live",
		Title:   "live cluster, two partitions, predictions checked on the wire",
		Horizon: 12 * time.Hour,
		Tick:    2 * time.Hour,
		Setup: func(e *scenario.Engine) error {
			// Seven diverse replicas: n=7 tolerates f=2, quorum is 5.
			for i, os := range []string{"linux", "bsd", "illumos", "haiku", "plan9", "serenity", "redox"} {
				id := registry.ReplicaID(fmt.Sprintf("r-%02d", i))
				if err := e.JoinAt(0, id, osCfg(os), 1, time.Hour); err != nil {
					return err
				}
			}
			// Boot the cluster at 1h; probe it every 2h. Each probe freezes
			// the monitor-side liveness prediction, submits a real request,
			// and the paired check compares prediction to observed commits.
			if _, err := liveloop.Attach(e, liveloop.Config{
				StartAt:    time.Hour,
				ProbeEvery: 2 * time.Hour,
			}); err != nil {
				return err
			}
			// Cut two replicas away: 5 remain with the primary — exactly
			// quorum, so commits must still flow.
			if err := e.PartitionAt(2*time.Hour+30*time.Minute, "r-05", "r-06"); err != nil {
				return err
			}
			if err := e.HealAt(4*time.Hour + 30*time.Minute); err != nil {
				return err
			}
			// Cut three away: 4 < 5, the prediction flips to "stall" and
			// the wire must agree.
			if err := e.PartitionAt(6*time.Hour+30*time.Minute, "r-04", "r-05", "r-06"); err != nil {
				return err
			}
			return e.HealAt(8*time.Hour + 30*time.Minute)
		},
	}

	res, err := scenario.Run(def, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inline live scenario: %d trace records\n", len(res.Records))
	for _, rec := range res.Records {
		if rec.Check == "" && rec.Event != "live-start" && rec.Event != "final" {
			continue
		}
		line := fmt.Sprintf("  t=%-8s %-10s", rec.T, rec.Event)
		if rec.Live {
			line += fmt.Sprintf(" commits=%-2d", rec.LiveCommits)
		}
		if rec.Check != "" {
			line += fmt.Sprintf(" %s: %s diverged=%t", rec.Check, rec.CheckDetail, rec.Divergence)
		}
		fmt.Println(line)
	}
	sum := res.Summary()
	fmt.Printf("cross-checks: %d, divergences: %d (the paper's prediction, tested on the wire)\n",
		sum.Checks, sum.Divergences)

	// --- 2. the reactive-recovery library scenario ---
	reactive, ok := scenario.Lookup("live-reactive-recovery")
	if !ok {
		log.Fatal("live-reactive-recovery not registered")
	}
	rec, err := scenario.Run(reactive, 42)
	if err != nil {
		log.Fatal(err)
	}
	s := rec.Summary()
	fmt.Printf("\nlive-reactive-recovery @ seed 42: %d records, breaches=%d recoveries=%d max TTR=%v\n",
		s.Records, s.Breaches, s.Recoveries, s.MaxTTR)
	for _, r := range rec.Records {
		switch {
		case r.BreachAtNanos != 0 && r.RecoverAtNanos == 0 && r.Event != "live-react":
			fmt.Printf("  breach  t=%-8s %s (%s)\n", r.T, r.Event, r.Detail)
		case r.RecoverAtNanos != 0:
			fmt.Printf("  recover t=%-8s TTR=%v\n", r.T, time.Duration(r.RecoverNanos))
			fmt.Printf("          %s\n", r.Detail)
		case r.Event == "live-attack":
			fmt.Printf("  %s t=%-8s %s\n", r.Event, r.T, r.Detail)
		case r.Event == "live-verdict":
			fmt.Printf("  %s t=%-8s %s: %s diverged=%t\n", r.Event, r.T, r.Check, r.CheckDetail, r.Divergence)
		}
	}
	fmt.Println("(run the full live set: go run ./cmd/scenarios -live)")
}
