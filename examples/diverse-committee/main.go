// diverse-committee compares three membership-selection rules for
// committee-based permissionless protocols (the paper's Challenge 1/2
// enforcement point):
//
//   - stake-weighted sortition (status quo): seats follow the money, so a
//     popular configuration dominates the committee;
//   - VRF sortition: publicly verifiable, same stake bias;
//   - diversity-aware selection: greedily maximises configuration entropy.
//
// Run with: go run ./examples/diverse-committee
package main

import (
	"fmt"
	"log"

	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	fmt.Println("committee selection under a configuration oligopoly")
	fmt.Println("candidate pool: 120 candidates over 8 configurations;")
	fmt.Println("configuration cfg-0 has 64 candidates holding 10x stake each")
	fmt.Println()

	tab, rows, err := experiment.CommitteeDiversity([]int{16, 32, 64, 96}, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.String())
	fmt.Println()
	for _, r := range rows {
		gain := r.DiverseEntropy - r.StakeEntropy
		fmt.Printf("size %3d: diversity-aware selection gains %.3f bits over stake-weighted sortition\n",
			r.Size, gain)
	}
	fmt.Println("\nentropy gained is fault independence gained: a zero-day in cfg-0's stack")
	fmt.Println("compromises most of a stake-selected committee but a bounded slice of a diverse one")
}
