// diverse-committee compares three membership-selection rules for
// committee-based permissionless protocols (the paper's Challenge 1/2
// enforcement point):
//
//   - stake-weighted sortition (status quo): seats follow the money, so a
//     popular configuration dominates the committee;
//   - VRF sortition: publicly verifiable, same stake bias;
//   - diversity-aware selection: greedily maximises configuration entropy.
//
// The sweep runs through the experiment registry (entry X5); the closing
// section builds a committee.Selector directly — the functional-options
// construction a protocol integration would use.
//
// Run with: go run ./examples/diverse-committee
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/committee"
	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	fmt.Println("committee selection under a configuration oligopoly")
	fmt.Println("candidate pool: 120 candidates over 8 configurations;")
	fmt.Println("configuration cfg-0 has 64 candidates holding 10x stake each")
	fmt.Println()

	x5, ok := experiment.Lookup("X5")
	if !ok {
		log.Fatal("experiment X5 not registered")
	}
	params := experiment.DefaultParams()
	params.Seed = 42
	tab, result, err := x5.Run(context.Background(), params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.String())
	fmt.Println()
	rows, ok := result.([]experiment.CommitteeRow)
	if !ok {
		log.Fatalf("X5 rows have type %T, want []experiment.CommitteeRow", result)
	}
	for _, r := range rows {
		gain := r.DiverseEntropy - r.StakeEntropy
		fmt.Printf("size %3d: diversity-aware selection gains %.3f bits over stake-weighted sortition\n",
			r.Size, gain)
	}

	// The same rule as a library call: a Selector configured with
	// functional options, here the verifiable-VRF flavour for one epoch.
	sel, err := committee.NewSelector(
		committee.WithStrategy(committee.VRF),
		committee.WithVRFSeed([]byte("epoch-42-beacon")),
	)
	if err != nil {
		log.Fatal(err)
	}
	var pool []committee.Candidate
	for cfg := 0; cfg < 4; cfg++ {
		for i := 0; i < 4; i++ {
			pool = append(pool, committee.Candidate{
				ID:          fmt.Sprintf("node-%d-%d", cfg, i),
				Stake:       float64(1 + cfg),
				ConfigLabel: fmt.Sprintf("cfg-%d", cfg),
			})
		}
	}
	seats, err := sel.Select(pool, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s selector drew %d seats from %d candidates (anyone can re-run the lottery):\n",
		sel.Strategy(), len(seats), len(pool))
	for _, s := range seats {
		fmt.Printf("  %-10s %s\n", s.ID, s.ConfigLabel)
	}

	fmt.Println("\nentropy gained is fault independence gained: a zero-day in cfg-0's stack")
	fmt.Println("compromises most of a stake-selected committee but a bounded slice of a diverse one")
}
