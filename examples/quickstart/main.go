// Quickstart: measure the fault independence of a small replica fleet.
//
// It builds a five-replica permissionless registry (three replicas sharing
// one configuration — a monoculture cluster — plus two diverse ones),
// registers one zero-day against the shared configuration, and asks the
// core monitor whether the system can stay safe through the vulnerability
// window.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bft"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/vuln"
)

func main() {
	log.SetFlags(0)

	// 1. A permissionless registry: anyone can join with a declared
	//    configuration and voting power.
	reg := registry.New(nil, nil)
	join := func(id, osName string, power float64) {
		cfg := config.MustNew(config.Component{
			Class: config.ClassOperatingSystem, Name: osName, Version: "22.04",
		})
		if err := reg.JoinDeclared(registry.ReplicaID(id), cfg, power, 24*time.Hour); err != nil {
			log.Fatal(err)
		}
	}
	join("alice", "ubuntu", 30)
	join("bob", "ubuntu", 20)
	join("carol", "ubuntu", 10) // ubuntu now carries 60% of the power
	join("dave", "freebsd", 25)
	join("erin", "openbsd", 15)

	// 2. One zero-day against the popular OS, disclosed at t=10h, patched
	//    at t=20h (plus each replica's own patch latency).
	catalog := vuln.NewCatalog()
	if err := catalog.Add(vuln.Vulnerability{
		ID:        "CVE-2023-0001",
		Class:     config.ClassOperatingSystem,
		Product:   "ubuntu",
		Version:   "22.04",
		Disclosed: 10 * time.Hour,
		PatchAt:   20 * time.Hour,
		Severity:  1,
	}); err != nil {
		log.Fatal(err)
	}

	// 3. Assess fault independence before, during and after the window.
	//    The monitor defaults to the BFT family (f = 1/3); selecting it
	//    explicitly documents the choice and keeps it a value, not a
	//    constant.
	mon, err := core.NewMonitor(reg,
		core.WithCatalog(catalog),
		core.WithSubstrate(bft.Substrate()),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, at := range []time.Duration{0, 15 * time.Hour, 60 * time.Hour} {
		a, err := mon.Assess(at)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%-4v entropy=%.3f bits  effective-configs=%.2f  Σf=%.2f  safe(f=1/3)=%v\n",
			at, a.Diversity.Entropy, a.Diversity.EffectiveConfigurations,
			a.Injection.TotalFraction, a.Safe)
	}

	// 4. The worst moment for the defenders, found automatically.
	worst, err := mon.WorstAssessment(120 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst window: t=%v with %.0f%% of voting power compromised by one fault\n",
		worst.At, 100*worst.Injection.TotalFraction)
	fmt.Println("lesson: three replicas sharing one OS are one fault, not three (Sec. II-C)")
}
