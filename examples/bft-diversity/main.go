// bft-diversity demonstrates the paper's central safety argument on a live
// (simulated) BFT cluster: the same zero-day, hitting a 12-replica cluster,
// either breaks safety or doesn't depending only on configuration
// diversity.
//
//   - Monoculture-heavy cluster (κ=2): the vulnerable configuration carries
//     6/12 of the voting power (> 1/3). The compromised replicas equivocate
//     and double-vote — two conflicting values commit. Safety violated.
//   - Diverse cluster (κ=6): the same fault compromises only 2/12 (< 1/3).
//     The attack fizzles; agreement holds.
//
// Run with: go run ./examples/bft-diversity
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bft"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const n = 12

func main() {
	log.SetFlags(0)
	sub := bft.Substrate()
	fmt.Printf("one zero-day vs two 12-replica BFT clusters (%s family, f = %.3f of voting power)\n",
		sub.Name(), sub.Tolerance())
	fmt.Println()
	runCase("monoculture-heavy (κ=2: 6 replicas share the vulnerable config)", 2)
	fmt.Println()
	runCase("diverse (κ=6: only 2 replicas share the vulnerable config)", 6)
}

// runCase spreads n replicas over kappa configurations round-robin; the
// zero-day hits configuration 0 (which includes the view-0 primary).
func runCase(title string, kappa int) {
	fmt.Println("##", title)
	sched := sim.NewScheduler(2024)
	net, err := simnet.New(sched, simnet.UniformLatency{Min: time.Millisecond, Max: 10 * time.Millisecond}, 0)
	if err != nil {
		log.Fatal(err)
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	cluster, err := bft.NewCluster(net, bft.Config{Weights: weights})
	if err != nil {
		log.Fatal(err)
	}

	var compromised []int
	for i := 0; i < n; i++ {
		if i%kappa == 0 { // configuration 0 is the vulnerable one
			compromised = append(compromised, i)
			cluster.SetBehavior(i, bft.Promiscuous)
		}
	}
	frac := float64(len(compromised)) / n
	verdict := "within tolerance — safety predicted to hold"
	if frac > bft.Substrate().Tolerance() {
		verdict = "exceeds tolerance — safety predicted to break"
	}
	fmt.Printf("compromised replicas: %v (%d/%d = %.0f%% of voting power; %s)\n",
		compromised, len(compromised), n, 100*frac, verdict)

	// The compromised primary equivocates: value A to one half of the
	// honest replicas, value B to the other; colluders vote for both.
	if err := cluster.EquivocateNext([]byte("pay merchant"), []byte("pay attacker")); err != nil {
		log.Fatal(err)
	}
	if err := sched.Run(time.Minute); err != nil {
		log.Fatal(err)
	}

	if v := cluster.Violation(); v != nil {
		fmt.Printf("SAFETY VIOLATED: %v\n", v)
		fmt.Println("two honest replicas committed conflicting values at the same slot")
	} else {
		fmt.Println("safety held: no conflicting commits; the equivocation could not gather two quorums")
	}
}
