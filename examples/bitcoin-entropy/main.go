// bitcoin-entropy regenerates Figure 1 of the paper end-to-end: the
// best-case entropy of Bitcoin replica diversity as the unattributed 0.87%
// of hash power spreads over 1..1000 additional miners, rendered as an
// ASCII plot with the 8-replica BFT reference line (entropy = 3 bits).
//
// The series comes from the experiment registry (entry F1, scaled via
// Params); the registry returns the typed curve points alongside the
// printable table.
//
// Run with: go run ./examples/bitcoin-entropy
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/diversity"
	"repro/internal/experiment"
	"repro/internal/pooldata"
)

func main() {
	log.SetFlags(0)
	f1, ok := experiment.Lookup("F1")
	if !ok {
		log.Fatal("experiment F1 not registered")
	}
	params := experiment.DefaultParams()
	params.Scale = 1000 // tail miners on the Figure 1 x-axis
	_, result, err := f1.Run(context.Background(), params)
	if err != nil {
		log.Fatal(err)
	}
	points, ok := result.([]pooldata.Figure1Point)
	if !ok {
		log.Fatalf("F1 rows have type %T, want []pooldata.Figure1Point", result)
	}

	fmt.Println("Figure 1 — best-case entropy of Bitcoin replica diversity")
	fmt.Println("x: miners sharing the residual 0.87% of hash power (log-ish samples)")
	fmt.Println()

	const width = 60
	lo, hi := 2.7, 3.05 // plot window: the action happens just below 3 bits
	ref8, err := diversity.Uniform(8).Entropy()
	if err != nil {
		log.Fatal(err)
	}
	plot := func(label string, h float64) {
		pos := int((h - lo) / (hi - lo) * float64(width))
		if pos < 0 {
			pos = 0
		}
		if pos >= width {
			pos = width - 1
		}
		bar := strings.Repeat("·", pos) + "█"
		fmt.Printf("%-22s %6.4f |%s\n", label, h, bar)
	}
	for _, x := range []int{1, 2, 5, 10, 20, 50, 101, 200, 500, 1000} {
		p := points[x-1]
		plot(fmt.Sprintf("x=%d (%d miners)", p.TailMiners, p.Miners), p.Entropy)
	}
	plot("BFT, 8 replicas", ref8)

	fmt.Println()
	snap, err := pooldata.SnapshotDistribution().Entropy()
	if err != nil {
		log.Fatal(err)
	}
	eff, err := pooldata.SnapshotDistribution().EffectiveConfigurations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot alone: %.4f bits (%.2f effective configurations)\n", snap, eff)
	fmt.Printf("paper's claim: even with 1017 miners the curve stays below %.0f bits — ", ref8)
	max := points[len(points)-1].Entropy
	if max < ref8 {
		fmt.Printf("confirmed (max %.4f)\n", max)
	} else {
		fmt.Printf("NOT confirmed (max %.4f)\n", max)
	}
	fmt.Println("an oligopolistic network of a thousand miners is less fault-independent than 8 diverse BFT replicas")
}
