// watch demonstrates continuous fault-independence assessment: instead of
// polling Monitor.Assess at hand-picked instants, Monitor.Watch streams an
// Assessment per tick until its context is cancelled — the shape a
// production deployment consumes (dashboard, alerting, enforcement).
//
// The monitor runs on a core.VirtualTime clock: the driver advances
// virtual time six hours at a time and Watch emits exactly one assessment
// per six-hour boundary — no wall ticker anywhere — replaying a zero-day
// lifecycle (disclosed t=10h, patched t=20h + 24h replica patch latency)
// in milliseconds of wall time, deterministically.
//
// Run with: go run ./examples/watch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/bft"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/vuln"
)

func main() {
	log.SetFlags(0)

	// The quickstart fleet: three replicas on one OS, two diverse.
	reg := registry.New(nil, nil)
	join := func(id, osName string, power float64) {
		cfg := config.MustNew(config.Component{
			Class: config.ClassOperatingSystem, Name: osName, Version: "22.04",
		})
		if err := reg.JoinDeclared(registry.ReplicaID(id), cfg, power, 24*time.Hour); err != nil {
			log.Fatal(err)
		}
	}
	join("alice", "ubuntu", 30)
	join("bob", "ubuntu", 20)
	join("carol", "ubuntu", 10)
	join("dave", "freebsd", 25)
	join("erin", "openbsd", 15)

	catalog := vuln.NewCatalog()
	if err := catalog.Add(vuln.Vulnerability{
		ID:        "CVE-2023-0001",
		Class:     config.ClassOperatingSystem,
		Product:   "ubuntu",
		Version:   "22.04",
		Disclosed: 10 * time.Hour,
		PatchAt:   20 * time.Hour,
		Severity:  1,
	}); err != nil {
		log.Fatal(err)
	}

	// A virtual clock paces the stream: Watch emits one assessment per 6h
	// of virtual time, exactly at the boundaries the driver crosses.
	vt := core.NewVirtualTime()
	mon, err := core.NewMonitor(reg,
		core.WithCatalog(catalog),
		core.WithSubstrate(bft.Substrate()),
		core.WithVirtualTime(vt),
		core.WithWatchInterval(6*time.Hour),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming assessments (%s family, f=%.3f), one emission = 6 virtual hours\n\n",
		mon.Substrate().Name(), mon.Threshold())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream := mon.Watch(ctx)
	wasSafe := true
	for a := range stream {
		status := "SAFE  "
		if !a.Safe {
			status = "UNSAFE"
		}
		fmt.Printf("t=%-5v %s  entropy=%.3f bits  Σf=%.2f\n",
			a.At, status, a.Diversity.Entropy, a.Injection.TotalFraction)
		if !a.Safe && wasSafe {
			fmt.Println("        ^ zero-day window open: ubuntu carries 60% > 1/3 of the power")
		}
		if a.Safe && !wasSafe {
			fmt.Println("        ^ window closed: every ubuntu replica patched")
			cancel() // the lifecycle has played out; stop the stream
			break
		}
		wasSafe = a.Safe
		vt.Advance(6 * time.Hour) // drive the deployment forward
	}
	fmt.Println("\nwatch terminated with its context — no goroutine left behind")
}
