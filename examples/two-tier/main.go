// two-tier demonstrates the paper's concluding proposal: replicas that can
// attest their configuration (via TPM/TEE quotes) get full voting weight,
// while self-declared replicas are discounted. With a diverse attested tier
// and a monoculture declared tier sitting on a zero-day, sweeping the
// discount shows the system crossing back into the safe region.
//
// The sweep runs through the experiment registry — the same entry
// cmd/experiments prints and bench_test.go times — and type-asserts the
// structured rows back out for the narrative.
//
// Run with: go run ./examples/two-tier
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	fmt.Println("two-tier replica weighting (paper's conclusion, quantified)")
	fmt.Println()
	fmt.Println("attested tier:  6 replicas, 6 distinct consensus clients, 10 power each (TPM-quoted)")
	fmt.Println("declared tier:  8 replicas, all running 'popular-client' v9, 15 power each")
	fmt.Println("zero-day:       CVE-mono-client in popular-client, window open at assessment time")
	fmt.Println()

	x2, ok := experiment.Lookup("X2")
	if !ok {
		log.Fatal("experiment X2 not registered")
	}
	tab, result, err := x2.Run(context.Background(), experiment.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.String())
	fmt.Println()

	rows, ok := result.([]experiment.TwoTierRow)
	if !ok {
		log.Fatalf("X2 rows have type %T, want []experiment.TwoTierRow", result)
	}
	for _, r := range rows {
		if r.Safe {
			fmt.Printf("first safe discount: δ=%v — declared votes count at %.0f%%, Σf drops to %.3f ≤ 1/3\n",
				r.Discount, 100*r.Discount, r.CompromisedFrac)
			return
		}
	}
	fmt.Println("no discount in the sweep restored safety")
}
