// two-tier demonstrates the paper's concluding proposal: replicas that can
// attest their configuration (via TPM/TEE quotes) get full voting weight,
// while self-declared replicas are discounted. With a diverse attested tier
// and a monoculture declared tier sitting on a zero-day, sweeping the
// discount shows the system crossing back into the safe region.
//
// Run with: go run ./examples/two-tier
package main

import (
	"fmt"
	"log"

	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	fmt.Println("two-tier replica weighting (paper's conclusion, quantified)")
	fmt.Println()
	fmt.Println("attested tier:  6 replicas, 6 distinct consensus clients, 10 power each (TPM-quoted)")
	fmt.Println("declared tier:  8 replicas, all running 'popular-client' v9, 15 power each")
	fmt.Println("zero-day:       CVE-mono-client in popular-client, window open at assessment time")
	fmt.Println()

	tab, rows, err := experiment.TwoTierWeighting([]float64{1, 0.75, 0.5, 0.25, 0.1, 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.String())
	fmt.Println()

	for _, r := range rows {
		if r.Safe {
			fmt.Printf("first safe discount: δ=%v — declared votes count at %.0f%%, Σf drops to %.3f ≤ 1/3\n",
				r.Discount, 100*r.Discount, r.CompromisedFrac)
			return
		}
	}
	fmt.Println("no discount in the sweep restored safety")
}
