// sweep walks through the generative side of the scenario engine
// (internal/scenario) end to end:
//
//  1. Generate — a timeline is a pure function of (profile, seed, index):
//     regenerate the same address and the JSON is byte-identical.
//  2. Sweep — run a batch of generated timelines across the profiles,
//     check every run against the default invariants, and aggregate
//     per-profile percentiles. The report is byte-identical for every
//     worker count.
//  3. Shrink — point the sweep at an invariant that does fail
//     (never-unsafe: "no record ever breaches the threshold") and ddmin
//     the first violating timeline down to a minimal witness.
//
// Run with: go run ./examples/sweep
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	// The lossy-wire profile generates timelines that boot the live
	// harness; importing liveloop registers the live-attach hook.
	_ "repro/internal/liveloop"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)

	// --- 1. generation is addressing, not sampling ---
	profile, ok := scenario.LookupProfile("disclosure-storm")
	if !ok {
		log.Fatal("disclosure-storm profile not registered")
	}
	tl := profile.Generate(42, 0)
	a, err := tl.MarshalIndent()
	if err != nil {
		log.Fatal(err)
	}
	b, err := profile.Generate(42, 0).MarshalIndent()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: %d events over %s, regeneration byte-identical: %t\n",
		tl.Name, len(tl.Events), tl.Horizon, bytes.Equal(a, b))

	// --- 2. a sweep with the default invariants ---
	// Run i is Profiles()[i%P].Generate(seed, i/P); the report carries no
	// wall-clock data, so the same options reproduce the same bytes at any
	// worker count.
	report, err := scenario.Sweep(context.Background(), scenario.SweepOptions{
		Runs: 40, Seed: 42, Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsweep: %d runs across %d profiles, invariants %v\n",
		report.Runs, len(report.Profiles), report.Invariants)
	for _, p := range report.Profiles {
		fmt.Printf("  %-18s runs=%-3d unsafe=%-3d violations=%d  max Σf p50=%.3f p99=%.3f\n",
			p.Profile, p.Runs, p.UnsafeRuns, p.Violations, p.MaxComp.P50, p.MaxComp.P99)
	}
	fmt.Printf("  violating runs: %d (the default invariants are expected to hold)\n", len(report.Violating))

	// --- 3. make one fail, then shrink the witness ---
	// never-unsafe is not a default invariant — scenarios breach the
	// threshold all the time; that is the paper's point — which makes it
	// the canonical shrink target.
	target, _ := scenario.InvariantByName("never-unsafe")
	res, err := scenario.Shrink(tl, 42, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshrink %s against %s: %d -> %d events in %d candidate runs\n",
		tl.Name, target.Name, res.OriginalEvents, res.Events, res.Runs)
	fmt.Println("minimal timeline still violating never-unsafe:")
	min, err := res.Timeline.MarshalIndent()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(string(min))
	fmt.Printf("first violation: %s\n", res.Violations[0].Detail)
	fmt.Println("\n(the scenarios CLI drives the same path: scenarios sweep -n 200 -seed 42; scenarios shrink timeline.json)")
}
