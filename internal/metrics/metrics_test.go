package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-9) {
		t.Fatalf("Mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic dataset: sqrt(32/7).
	if !almostEqual(s.StdDev, math.Sqrt(32.0/7.0), 1e-9) {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5, 1e-9) {
		t.Fatalf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.StdDev != 0 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty sample is not NaN")
	}
}

func TestConfidenceInterval95(t *testing.T) {
	if ConfidenceInterval95(Summary{N: 1}) != 0 {
		t.Fatal("CI for n=1 should be 0")
	}
	s := Summary{N: 100, StdDev: 10}
	if !almostEqual(ConfidenceInterval95(s), 1.96, 1e-9) {
		t.Fatalf("CI = %v, want 1.96", ConfidenceInterval95(s))
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Observe(x)
	}
	if h.Under != 1 {
		t.Fatalf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Fatalf("Over = %d, want 2", h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bucket0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bucket1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Fatalf("bucket4 = %d, want 1", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	lo, hi := h.BucketBounds(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("BucketBounds(1) = %v,%v", lo, hi)
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("inverted bounds", func() { NewHistogram(5, 5, 1) })
	mustPanic("zero buckets", func() { NewHistogram(0, 1, 0) })
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 2.5)
	tab.AddNote("seed=%d", 7)
	out := tab.String()
	for _, want := range []string{"== demo ==", "alpha", "beta", "2.5", "note: seed=7", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("m", "a", "b")
	tab.AddRow("1") // short row pads
	md := tab.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| --- | --- |") {
		t.Fatalf("markdown malformed:\n%s", md)
	}
	if !strings.Contains(md, "| 1 |  |") {
		t.Fatalf("short row not padded:\n%s", md)
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tab := NewTable("x", "only")
	tab.AddRow("a", "b", "c")
	if len(tab.Rows[0]) != 1 {
		t.Fatalf("extra cells kept: %v", tab.Rows[0])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"}, {3.5, "3.5"}, {3.14159, "3.1416"}, {0.1000, "0.1"}, {-2, "-2"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: Min <= Median <= Max, Min <= Mean <= Max for any sample.
func TestPropSummaryOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			// Bound magnitude so the sum cannot overflow to ±Inf.
			if !math.IsNaN(x) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves samples: sum(buckets)+under+over == total.
func TestPropHistogramConservation(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-100, 100, 13)
		n := uint64(0)
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Observe(x)
			n++
		}
		var sum uint64
		for _, c := range h.Counts {
			sum += c
		}
		return sum+h.Under+h.Over == n && h.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestPropQuantileMonotone(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		sort.Float64s(clean)
		qa, qb := math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(clean, qa) <= Quantile(clean, qb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
