package gossip

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func newOverlay(t *testing.T, n int, cfg Config, drop float64) (*Overlay, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler(7)
	net, err := simnet.New(sched, simnet.UniformLatency{Min: time.Millisecond, Max: 20 * time.Millisecond}, drop)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOverlay(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := o.Join(simnet.NodeID(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	return o, sched
}

func TestNewOverlayValidation(t *testing.T) {
	if _, err := NewOverlay(nil, Config{}); err == nil {
		t.Fatal("nil network accepted")
	}
	sched := sim.NewScheduler(1)
	net, _ := simnet.New(sched, simnet.FixedLatency(0), 0)
	if _, err := NewOverlay(net, Config{MaxHops: -1}); err == nil {
		t.Fatal("negative hops accepted")
	}
}

func TestJoinDuplicate(t *testing.T) {
	o, _ := newOverlay(t, 3, Config{}, 0)
	if _, err := o.Join(0, nil); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if o.Size() != 3 {
		t.Fatalf("size = %d", o.Size())
	}
	if _, ok := o.Node(1); !ok {
		t.Fatal("Node lookup failed")
	}
}

func TestPublishReachesEveryone(t *testing.T) {
	o, sched := newOverlay(t, 50, Config{Fanout: 4}, 0)
	msg, err := o.Publish(0, []byte("block-1"))
	if err != nil {
		t.Fatal(err)
	}
	sched.Run(10 * time.Second)
	if got := o.Coverage(msg.ID); got != 50 {
		t.Fatalf("coverage = %d/50", got)
	}
}

func TestPublishUnknownOrigin(t *testing.T) {
	o, _ := newOverlay(t, 3, Config{}, 0)
	if _, err := o.Publish(99, []byte("x")); err == nil {
		t.Fatal("unknown origin accepted")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	o, sched := newOverlay(t, 20, Config{Fanout: 6}, 0)
	msg, _ := o.Publish(0, []byte("dup-test"))
	sched.Run(10 * time.Second)
	var dups uint64
	for i := 0; i < 20; i++ {
		n, _ := o.Node(simnet.NodeID(i))
		if n.seen[msg.ID] && n.id != 0 && n.Delivered != 1 {
			t.Fatalf("node %d delivered %d times", i, n.Delivered)
		}
		dups += n.Duplicates
	}
	if dups == 0 {
		t.Fatal("fanout 6 on 20 nodes should produce duplicate receptions")
	}
	// Republishing the same payload from the same origin is a no-op.
	before := o.Coverage(msg.ID)
	o.Publish(0, []byte("dup-test"))
	sched.Run(20 * time.Second)
	if o.Coverage(msg.ID) != before {
		t.Fatal("republish changed coverage")
	}
}

func TestMaxHopsLimitsSpread(t *testing.T) {
	o, sched := newOverlay(t, 60, Config{Fanout: 2, MaxHops: 1}, 0)
	msg, _ := o.Publish(0, []byte("shallow"))
	sched.Run(10 * time.Second)
	// Hop limit 1: only the origin's direct fanout (2) plus origin see it.
	if got := o.Coverage(msg.ID); got != 3 {
		t.Fatalf("coverage = %d, want 3 (origin + fanout 2)", got)
	}
}

func TestGossipSurvivesLoss(t *testing.T) {
	o, sched := newOverlay(t, 50, Config{Fanout: 6}, 0.15)
	msg, _ := o.Publish(0, []byte("lossy-block"))
	sched.Run(30 * time.Second)
	// Epidemic redundancy should still reach nearly everyone at 15% loss.
	if got := o.Coverage(msg.ID); got < 45 {
		t.Fatalf("coverage under loss = %d/50", got)
	}
}

func TestFanoutTradeoff(t *testing.T) {
	// Larger fanout -> more traffic, at least as much coverage.
	run := func(fanout int) (int, uint64) {
		sched := sim.NewScheduler(9)
		net, _ := simnet.New(sched, simnet.FixedLatency(5*time.Millisecond), 0)
		o, _ := NewOverlay(net, Config{Fanout: fanout})
		for i := 0; i < 40; i++ {
			o.Join(simnet.NodeID(i), nil)
		}
		msg, _ := o.Publish(0, []byte("t"))
		sched.Run(10 * time.Second)
		return o.Coverage(msg.ID), net.Stats().Sent
	}
	cov2, sent2 := run(2)
	cov8, sent8 := run(8)
	if sent8 <= sent2 {
		t.Fatalf("fanout 8 traffic %d <= fanout 2 traffic %d", sent8, sent2)
	}
	if cov8 < cov2 {
		t.Fatalf("fanout 8 coverage %d < fanout 2 coverage %d", cov8, cov2)
	}
}

func TestHandlerInvokedOncePerMessage(t *testing.T) {
	sched := sim.NewScheduler(3)
	net, _ := simnet.New(sched, simnet.FixedLatency(time.Millisecond), 0)
	o, _ := NewOverlay(net, Config{Fanout: 5})
	counts := make(map[simnet.NodeID]int)
	for i := 0; i < 10; i++ {
		id := simnet.NodeID(i)
		if _, err := o.Join(id, func(_ simnet.NodeID, _ Message) { counts[id]++ }); err != nil {
			t.Fatal(err)
		}
	}
	o.Publish(0, []byte("once"))
	sched.Run(10 * time.Second)
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("node %d handler ran %d times", id, c)
		}
	}
	if counts[0] != 0 {
		t.Fatal("origin self-delivered")
	}
}

func TestNonMessagePayloadIgnored(t *testing.T) {
	o, sched := newOverlay(t, 3, Config{}, 0)
	n, _ := o.Node(1)
	o.net.Send(0, 1, "not-a-gossip-message")
	sched.Run(time.Second)
	if n.Delivered != 0 {
		t.Fatal("non-Message payload delivered")
	}
}
