// Package gossip implements epidemic message dissemination over
// internal/simnet: each node relays newly seen messages to a bounded
// random fanout of peers, with duplicate suppression and hop limits. It is
// the realistic propagation substrate for permissionless networks (Bitcoin
// floods blocks; committee protocols gossip votes), and its latency/
// redundancy trade-off feeds the Proposition 3 overhead discussion at the
// network layer.
package gossip

import (
	"errors"
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// Message is a gossiped payload with a unique id and a hop counter.
type Message struct {
	ID      cryptoutil.Digest
	Payload []byte
	Hops    int
}

// Handler is invoked once per node per unique message id.
type Handler func(from simnet.NodeID, msg Message)

// Config parameterises a gossip overlay.
type Config struct {
	// Fanout is the number of random peers each node relays a new message
	// to (default 4).
	Fanout int
	// MaxHops bounds relay depth; 0 means unlimited.
	MaxHops int
}

// Node is one gossip participant.
type Node struct {
	id      simnet.NodeID
	overlay *Overlay
	seen    map[cryptoutil.Digest]bool
	handler Handler

	// Delivered counts unique messages delivered to the handler.
	Delivered uint64
	// Duplicates counts suppressed re-receptions.
	Duplicates uint64
}

// HandleMessage implements simnet.Handler.
func (n *Node) HandleMessage(from simnet.NodeID, raw any) {
	msg, ok := raw.(Message)
	if !ok {
		return
	}
	if n.seen[msg.ID] {
		n.Duplicates++
		return
	}
	n.seen[msg.ID] = true
	n.Delivered++
	if n.handler != nil {
		n.handler(from, msg)
	}
	if n.overlay.cfg.MaxHops > 0 && msg.Hops >= n.overlay.cfg.MaxHops {
		return
	}
	n.overlay.relay(n.id, Message{ID: msg.ID, Payload: msg.Payload, Hops: msg.Hops + 1})
}

// Overlay is a set of gossip nodes on one network.
type Overlay struct {
	net   *simnet.Network
	cfg   Config
	nodes map[simnet.NodeID]*Node
	order []simnet.NodeID
}

// NewOverlay creates an overlay on net.
func NewOverlay(net *simnet.Network, cfg Config) (*Overlay, error) {
	if net == nil {
		return nil, errors.New("gossip: nil network")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 4
	}
	if cfg.MaxHops < 0 {
		return nil, fmt.Errorf("gossip: negative max hops %d", cfg.MaxHops)
	}
	return &Overlay{net: net, cfg: cfg, nodes: make(map[simnet.NodeID]*Node)}, nil
}

// Join adds a node with the given handler (may be nil to just relay).
func (o *Overlay) Join(id simnet.NodeID, h Handler) (*Node, error) {
	if _, dup := o.nodes[id]; dup {
		return nil, fmt.Errorf("gossip: node %d already joined", id)
	}
	n := &Node{id: id, overlay: o, seen: make(map[cryptoutil.Digest]bool), handler: h}
	if err := o.net.Register(id, n); err != nil {
		return nil, err
	}
	o.nodes[id] = n
	o.order = append(o.order, id)
	return n, nil
}

// Node returns a joined node.
func (o *Overlay) Node(id simnet.NodeID) (*Node, bool) {
	n, ok := o.nodes[id]
	return n, ok
}

// Publish originates a new message at node origin. The origin is marked as
// having seen it (it does not self-deliver).
func (o *Overlay) Publish(origin simnet.NodeID, payload []byte) (Message, error) {
	n, ok := o.nodes[origin]
	if !ok {
		return Message{}, fmt.Errorf("gossip: unknown origin %d", origin)
	}
	msg := Message{
		ID:      cryptoutil.Hash([]byte("repro/gossip/v1"), []byte(fmt.Sprint(origin)), payload),
		Payload: payload,
	}
	if n.seen[msg.ID] {
		return msg, nil // republish is a no-op
	}
	n.seen[msg.ID] = true
	o.relay(origin, Message{ID: msg.ID, Payload: msg.Payload, Hops: 1})
	return msg, nil
}

// relay sends msg to a fanout-sized random peer subset (excluding self),
// drawing randomness from the scheduler for determinism.
func (o *Overlay) relay(from simnet.NodeID, msg Message) {
	peers := make([]simnet.NodeID, 0, len(o.order)-1)
	for _, id := range o.order {
		if id != from {
			peers = append(peers, id)
		}
	}
	if len(peers) == 0 {
		return
	}
	rng := o.net.Scheduler().Rand()
	rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	k := o.cfg.Fanout
	if k > len(peers) {
		k = len(peers)
	}
	for _, id := range peers[:k] {
		o.net.Send(from, id, msg)
	}
}

// Coverage reports how many nodes have seen the message id.
func (o *Overlay) Coverage(id cryptoutil.Digest) int {
	n := 0
	for _, node := range o.nodes {
		if node.seen[id] {
			n++
		}
	}
	return n
}

// Size reports the number of joined nodes.
func (o *Overlay) Size() int { return len(o.nodes) }
