// Package vuln models the paper's adversary substrate (Sec. II-B): diverse
// vulnerabilities, each targeting a specific component (or every version of
// a product), with an exploitability window running from disclosure until a
// replica applies the patch. A single vulnerability compromises every
// replica whose configuration contains the affected component during its
// window — the "single fault affecting multiple machines" scenario the
// paper argues is unexamined in permissionless blockchains.
//
// The window model follows Sec. I and Remark 1: vulnerabilities can be
// patched, but attacks happen during the vulnerability window; each replica
// has its own patch latency (patch adoption is never instantaneous,
// cf. CVE-2017-18350's multi-year disclosure delay cited in the paper).
package vuln

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/config"
)

// ID identifies a vulnerability, e.g. "CVE-2025-0001".
type ID string

// Vulnerability describes one exploitable flaw.
type Vulnerability struct {
	ID        ID
	Class     config.Class  // component class the flaw lives in
	Product   string        // component name, e.g. "openssl"
	Version   string        // exact version; empty = every version of Product
	Disclosed time.Duration // virtual time the exploit becomes available
	PatchAt   time.Duration // virtual time the patch ships (>= Disclosed)
	// Severity in (0, 1]: fraction of exposed replicas the exploit actually
	// compromises (1 = wormable, fully reliable exploit). The injector
	// applies it deterministically by rank to keep runs replayable.
	Severity float64
}

// Validate checks structural invariants.
func (v Vulnerability) Validate() error {
	if v.ID == "" {
		return errors.New("vuln: empty id")
	}
	if !v.Class.Valid() {
		return fmt.Errorf("vuln %s: invalid class %d", v.ID, v.Class)
	}
	if v.Product == "" {
		return fmt.Errorf("vuln %s: empty product", v.ID)
	}
	if v.PatchAt < v.Disclosed {
		return fmt.Errorf("vuln %s: patch at %v before disclosure %v", v.ID, v.PatchAt, v.Disclosed)
	}
	if v.Severity <= 0 || v.Severity > 1 {
		return fmt.Errorf("vuln %s: severity %v out of (0,1]", v.ID, v.Severity)
	}
	return nil
}

// Affects reports whether the vulnerability applies to a configuration:
// the configuration's component in the vulnerability's class must match the
// product and, when Version is set, the exact version.
func (v Vulnerability) Affects(cfg config.Configuration) bool {
	c, ok := cfg.Component(v.Class)
	if !ok {
		return false
	}
	if c.Name != v.Product {
		return false
	}
	return v.Version == "" || c.Version == v.Version
}

// WindowOpenAt reports whether the exploit is usable at time t against a
// replica that applies patches with the given latency after PatchAt.
func (v Vulnerability) WindowOpenAt(t, patchLatency time.Duration) bool {
	return t >= v.Disclosed && t < v.PatchAt+patchLatency
}

// Catalog is a set of vulnerabilities keyed by ID.
type Catalog struct {
	vulns map[ID]Vulnerability
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{vulns: make(map[ID]Vulnerability)}
}

// Add validates and inserts a vulnerability. Duplicate IDs are rejected.
func (c *Catalog) Add(v Vulnerability) error {
	if err := v.Validate(); err != nil {
		return err
	}
	if _, exists := c.vulns[v.ID]; exists {
		return fmt.Errorf("vuln: duplicate id %s", v.ID)
	}
	c.vulns[v.ID] = v
	return nil
}

// Get returns the vulnerability with the given ID.
func (c *Catalog) Get(id ID) (Vulnerability, bool) {
	v, ok := c.vulns[id]
	return v, ok
}

// Len reports the catalog size.
func (c *Catalog) Len() int { return len(c.vulns) }

// All returns the vulnerabilities sorted by ID (deterministic iteration).
func (c *Catalog) All() []Vulnerability {
	out := make([]Vulnerability, 0, len(c.vulns))
	for _, v := range c.vulns {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DisclosedAt returns the vulnerabilities whose disclosure time has passed
// at t (their window may or may not still be open per replica).
func (c *Catalog) DisclosedAt(t time.Duration) []Vulnerability {
	var out []Vulnerability
	for _, v := range c.All() {
		if v.Disclosed <= t {
			out = append(out, v)
		}
	}
	return out
}

// Replica is the injector's view of one replica: its attested
// configuration, voting power, and how long after a patch ships it deploys
// the patch. internal/registry adapts its records to this type.
type Replica struct {
	Name         string
	Config       config.Configuration
	Power        float64
	PatchLatency time.Duration
}

// Fault is one vulnerability's effect at an instant: the replicas it
// compromises and the voting power they carry — the paper's f_t^i.
type Fault struct {
	Vuln          ID
	Compromised   []string // replica names, deterministic order
	Power         float64  // Σ power of compromised replicas
	PowerFraction float64  // Power / total population power
}

// Injection is the full fault picture at an instant t: one Fault per
// vulnerability with a non-empty compromised set.
type Injection struct {
	At     time.Duration
	Faults []Fault
	// TotalFraction is Σ_i f_t^i as a fraction of total power, counting a
	// replica once even if several vulnerabilities hit it.
	TotalFraction float64
	// SumFraction is the naive Σ_i f_t^i with double counting, matching the
	// paper's summation literally; >= TotalFraction.
	SumFraction float64
}

// Safe reports the Sec. II-C safety condition f >= Σ f_t^i using the
// deduplicated compromised power.
func (inj Injection) Safe(toleratedFraction float64) bool {
	return toleratedFraction >= inj.TotalFraction
}

// Inject computes which replicas each disclosed vulnerability compromises
// at time t. Severity s < 1 compromises only the ⌈s·m⌉ exposed replicas
// with the greatest power (an attacker prioritises high-value targets),
// keeping the computation deterministic.
func Inject(catalog *Catalog, replicas []Replica, t time.Duration) (Injection, error) {
	if catalog == nil {
		return Injection{}, errors.New("vuln: nil catalog")
	}
	var totalPower float64
	for _, r := range replicas {
		if r.Power < 0 {
			return Injection{}, fmt.Errorf("vuln: replica %s has negative power", r.Name)
		}
		totalPower += r.Power
	}
	inj := Injection{At: t}
	compromisedOnce := make(map[string]float64) // replica -> power (dedup)
	for _, v := range catalog.DisclosedAt(t) {
		var exposed []Replica
		for _, r := range replicas {
			if v.Affects(r.Config) && v.WindowOpenAt(t, r.PatchLatency) {
				exposed = append(exposed, r)
			}
		}
		if len(exposed) == 0 {
			continue
		}
		// Highest-power targets first; name as tie-breaker for determinism.
		sort.Slice(exposed, func(i, j int) bool {
			if exposed[i].Power != exposed[j].Power {
				return exposed[i].Power > exposed[j].Power
			}
			return exposed[i].Name < exposed[j].Name
		})
		take := int(float64(len(exposed))*v.Severity + 0.999999)
		if take > len(exposed) {
			take = len(exposed)
		}
		fault := Fault{Vuln: v.ID}
		for _, r := range exposed[:take] {
			fault.Compromised = append(fault.Compromised, r.Name)
			fault.Power += r.Power
			compromisedOnce[r.Name] = r.Power
		}
		if totalPower > 0 {
			fault.PowerFraction = fault.Power / totalPower
		}
		inj.Faults = append(inj.Faults, fault)
		inj.SumFraction += fault.PowerFraction
	}
	if totalPower > 0 {
		var dedup float64
		for _, p := range compromisedOnce {
			dedup += p
		}
		inj.TotalFraction = dedup / totalPower
	}
	return inj, nil
}

// WorstWindow scans the time axis at the given resolution over [0, horizon]
// and returns the injection with the maximum deduplicated compromised
// fraction — the adversary's best moment to strike.
func WorstWindow(catalog *Catalog, replicas []Replica, horizon, step time.Duration) (Injection, error) {
	if step <= 0 {
		return Injection{}, fmt.Errorf("vuln: non-positive step %v", step)
	}
	var worst Injection
	for t := time.Duration(0); t <= horizon; t += step {
		inj, err := Inject(catalog, replicas, t)
		if err != nil {
			return Injection{}, err
		}
		if inj.TotalFraction > worst.TotalFraction {
			worst = inj
		}
	}
	return worst, nil
}
