// Package vuln models the paper's adversary substrate (Sec. II-B): diverse
// vulnerabilities, each targeting a specific component (or every version of
// a product), with an exploitability window running from disclosure until a
// replica applies the patch. A single vulnerability compromises every
// replica whose configuration contains the affected component during its
// window — the "single fault affecting multiple machines" scenario the
// paper argues is unexamined in permissionless blockchains.
//
// The window model follows Sec. I and Remark 1: vulnerabilities can be
// patched, but attacks happen during the vulnerability window; each replica
// has its own patch latency (patch adoption is never instantaneous,
// cf. CVE-2017-18350's multi-year disclosure delay cited in the paper).
package vuln

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
)

// ID identifies a vulnerability, e.g. "CVE-2025-0001".
type ID string

// Vulnerability describes one exploitable flaw.
type Vulnerability struct {
	ID        ID
	Class     config.Class  // component class the flaw lives in
	Product   string        // component name, e.g. "openssl"
	Version   string        // exact version; empty = every version of Product
	Disclosed time.Duration // virtual time the exploit becomes available
	PatchAt   time.Duration // virtual time the patch ships (>= Disclosed)
	// Severity in (0, 1]: fraction of exposed replicas the exploit actually
	// compromises (1 = wormable, fully reliable exploit). The injector
	// applies it deterministically by rank to keep runs replayable.
	Severity float64
}

// Validate checks structural invariants.
func (v Vulnerability) Validate() error {
	if v.ID == "" {
		return errors.New("vuln: empty id")
	}
	if !v.Class.Valid() {
		return fmt.Errorf("vuln %s: invalid class %d", v.ID, v.Class)
	}
	if v.Product == "" {
		return fmt.Errorf("vuln %s: empty product", v.ID)
	}
	if v.PatchAt < v.Disclosed {
		return fmt.Errorf("vuln %s: patch at %v before disclosure %v", v.ID, v.PatchAt, v.Disclosed)
	}
	if v.Severity <= 0 || v.Severity > 1 {
		return fmt.Errorf("vuln %s: severity %v out of (0,1]", v.ID, v.Severity)
	}
	return nil
}

// Affects reports whether the vulnerability applies to a configuration:
// the configuration's component in the vulnerability's class must match the
// product and, when Version is set, the exact version.
func (v Vulnerability) Affects(cfg config.Configuration) bool {
	c, ok := cfg.Component(v.Class)
	if !ok {
		return false
	}
	if c.Name != v.Product {
		return false
	}
	return v.Version == "" || c.Version == v.Version
}

// WindowOpenAt reports whether the exploit is usable at time t against a
// replica that applies patches with the given latency after PatchAt.
func (v Vulnerability) WindowOpenAt(t, patchLatency time.Duration) bool {
	return t >= v.Disclosed && t < v.PatchAt+patchLatency
}

// Catalog is a set of vulnerabilities keyed by ID. It is safe for
// concurrent use: several monitors can share one catalog, and Add may be
// called while they assess (new disclosures land in a live system).
type Catalog struct {
	// mu guards everything below: the ID-keyed set, the lazily built
	// ID-sorted order (invalidated — set nil — by Add), and the mutation
	// counter caches key their staleness checks on.
	mu     sync.Mutex
	vulns  map[ID]Vulnerability
	sorted []Vulnerability
	gen    uint64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{vulns: make(map[ID]Vulnerability)}
}

// Add validates and inserts a vulnerability. Duplicate IDs are rejected.
func (c *Catalog) Add(v Vulnerability) error {
	if err := v.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.vulns[v.ID]; exists {
		return fmt.Errorf("vuln: duplicate id %s", v.ID)
	}
	c.vulns[v.ID] = v
	c.sorted = nil
	c.gen++
	return nil
}

// Generation counts Adds. Caches derived from the catalog (e.g. a
// monitor's Injector) compare it to decide whether they are stale.
func (c *Catalog) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Get returns the vulnerability with the given ID.
func (c *Catalog) Get(id ID) (Vulnerability, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vulns[id]
	return v, ok
}

// Len reports the catalog size.
func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vulns)
}

// allSorted returns the internal ID-sorted slice, rebuilding it only when
// an Add invalidated the cache. The returned slice is never mutated in
// place (invalidation swaps the pointer), so callers may keep iterating
// it after the lock is released; they must not modify it.
func (c *Catalog) allSorted() []Vulnerability {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sorted == nil && len(c.vulns) > 0 {
		sorted := make([]Vulnerability, 0, len(c.vulns))
		for _, v := range c.vulns {
			sorted = append(sorted, v)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
		c.sorted = sorted
	}
	return c.sorted
}

// All returns the vulnerabilities sorted by ID (deterministic iteration).
// The sort order is cached across calls and invalidated by Add.
func (c *Catalog) All() []Vulnerability {
	return append([]Vulnerability(nil), c.allSorted()...)
}

// DisclosedAt returns the vulnerabilities whose disclosure time has passed
// at t (their window may or may not still be open per replica).
func (c *Catalog) DisclosedAt(t time.Duration) []Vulnerability {
	var out []Vulnerability
	for _, v := range c.allSorted() {
		if v.Disclosed <= t {
			out = append(out, v)
		}
	}
	return out
}

// Replica is the injector's view of one replica: its attested
// configuration, voting power, and how long after a patch ships it deploys
// the patch. internal/registry adapts its records to this type.
type Replica struct {
	Name         string
	Config       config.Configuration
	Power        float64
	PatchLatency time.Duration
}

// Fault is one vulnerability's effect at an instant: the replicas it
// compromises and the voting power they carry — the paper's f_t^i.
type Fault struct {
	Vuln          ID
	Compromised   []string // replica names, deterministic order
	Power         float64  // Σ power of compromised replicas
	PowerFraction float64  // Power / total population power
}

// Injection is the full fault picture at an instant t: one Fault per
// vulnerability with a non-empty compromised set.
type Injection struct {
	At     time.Duration
	Faults []Fault
	// TotalFraction is Σ_i f_t^i as a fraction of total power, counting a
	// replica once even if several vulnerabilities hit it.
	TotalFraction float64
	// SumFraction is the naive Σ_i f_t^i with double counting, matching the
	// paper's summation literally; >= TotalFraction.
	SumFraction float64
}

// Safe reports the Sec. II-C safety condition f >= Σ f_t^i using the
// deduplicated compromised power.
func (inj Injection) Safe(toleratedFraction float64) bool {
	return toleratedFraction >= inj.TotalFraction
}

// Inject computes which replicas each disclosed vulnerability compromises
// at time t. Severity s < 1 compromises only the ⌈s·m⌉ exposed replicas
// with the greatest power (an attacker prioritises high-value targets),
// keeping the computation deterministic. For repeated evaluations over the
// same catalog and replica set, build an Injector once instead.
func Inject(catalog *Catalog, replicas []Replica, t time.Duration) (Injection, error) {
	in, err := NewInjector(catalog, replicas)
	if err != nil {
		return Injection{}, err
	}
	return in.Inject(t), nil
}

// WorstWindow returns the injection with the maximum deduplicated
// compromised fraction over [0, horizon] — the adversary's best moment to
// strike — computed exactly by sweeping the finite set of critical
// instants (disclosures and per-replica window closes) instead of sampling
// the time axis at a fixed step. WorstWindowStepwise keeps the sampled
// scan as a cross-check.
func WorstWindow(catalog *Catalog, replicas []Replica, horizon time.Duration) (Injection, error) {
	in, err := NewInjector(catalog, replicas)
	if err != nil {
		return Injection{}, err
	}
	return in.WorstWindow(horizon)
}

// WorstWindowStepwise scans the time axis at the given resolution over
// [0, horizon] and returns the injection with the maximum deduplicated
// compromised fraction among the sampled instants. Unlike WorstWindow it
// can miss a worst window narrower than step. It deliberately evaluates
// each instant with injectRescan — the pre-index algorithm and an
// implementation independent of Injector — so it doubles as the
// cross-check the exact sweep is verified (and benchmarked) against.
func WorstWindowStepwise(catalog *Catalog, replicas []Replica, horizon, step time.Duration) (Injection, error) {
	if step <= 0 {
		return Injection{}, fmt.Errorf("vuln: non-positive step %v", step)
	}
	if horizon < 0 {
		return Injection{}, fmt.Errorf("vuln: negative horizon %v", horizon)
	}
	var worst Injection
	for t := time.Duration(0); t <= horizon; t += step {
		inj, err := injectRescan(catalog, replicas, t)
		if err != nil {
			return Injection{}, err
		}
		if inj.TotalFraction > worst.TotalFraction {
			worst = inj
		}
	}
	return worst, nil
}

// injectRescan is the index-free evaluation of one instant: it re-matches
// every disclosed vulnerability against every replica and re-sorts each
// exposed set, exactly what Inject did before the exposure index existed.
// WorstWindowStepwise uses it so the stepwise baseline measures (and the
// property tests cross-check against) the original algorithm rather than
// an Injector rebuilt per step.
func injectRescan(catalog *Catalog, replicas []Replica, t time.Duration) (Injection, error) {
	if catalog == nil {
		return Injection{}, errors.New("vuln: nil catalog")
	}
	var totalPower float64
	for _, r := range replicas {
		if r.Power < 0 {
			return Injection{}, fmt.Errorf("vuln: replica %s has negative power", r.Name)
		}
		totalPower += r.Power
	}
	inj := Injection{At: t}
	compromisedOnce := make(map[string]float64) // replica -> power (dedup)
	for _, v := range catalog.DisclosedAt(t) {
		var exposed []Replica
		for _, r := range replicas {
			if v.Affects(r.Config) && v.WindowOpenAt(t, r.PatchLatency) {
				exposed = append(exposed, r)
			}
		}
		if len(exposed) == 0 {
			continue
		}
		// Highest-power targets first; name as tie-breaker for determinism.
		sort.Slice(exposed, func(i, j int) bool {
			if exposed[i].Power != exposed[j].Power {
				return exposed[i].Power > exposed[j].Power
			}
			return exposed[i].Name < exposed[j].Name
		})
		take := SeverityTake(len(exposed), v.Severity)
		fault := Fault{Vuln: v.ID}
		for _, r := range exposed[:take] {
			fault.Compromised = append(fault.Compromised, r.Name)
			fault.Power += r.Power
			compromisedOnce[r.Name] = r.Power
		}
		if totalPower > 0 {
			fault.PowerFraction = fault.Power / totalPower
		}
		inj.Faults = append(inj.Faults, fault)
		inj.SumFraction += fault.PowerFraction
	}
	if totalPower > 0 {
		var dedup float64
		for _, p := range compromisedOnce {
			dedup += p
		}
		inj.TotalFraction = dedup / totalPower
	}
	return inj, nil
}
