package vuln

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/config"
)

func cfgWith(_ *testing.T, class config.Class, name, version string) config.Configuration {
	return config.MustNew(config.Component{Class: class, Name: name, Version: version})
}

func validVuln() Vulnerability {
	return Vulnerability{
		ID:        "CVE-1",
		Class:     config.ClassCryptoLibrary,
		Product:   "openssl",
		Version:   "3.0.8",
		Disclosed: 10 * time.Hour,
		PatchAt:   20 * time.Hour,
		Severity:  1,
	}
}

func TestValidate(t *testing.T) {
	if err := validVuln().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Vulnerability)
	}{
		{"empty id", func(v *Vulnerability) { v.ID = "" }},
		{"bad class", func(v *Vulnerability) { v.Class = config.Class(99) }},
		{"empty product", func(v *Vulnerability) { v.Product = "" }},
		{"patch before disclosure", func(v *Vulnerability) { v.PatchAt = v.Disclosed - 1 }},
		{"severity zero", func(v *Vulnerability) { v.Severity = 0 }},
		{"severity above one", func(v *Vulnerability) { v.Severity = 1.1 }},
	}
	for _, tc := range cases {
		v := validVuln()
		tc.mut(&v)
		if err := v.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestAffectsExactVersion(t *testing.T) {
	v := validVuln()
	if !v.Affects(cfgWith(t, config.ClassCryptoLibrary, "openssl", "3.0.8")) {
		t.Fatal("matching config not affected")
	}
	if v.Affects(cfgWith(t, config.ClassCryptoLibrary, "openssl", "3.0.9")) {
		t.Fatal("patched version affected")
	}
	if v.Affects(cfgWith(t, config.ClassCryptoLibrary, "libsodium", "3.0.8")) {
		t.Fatal("different product affected")
	}
	if v.Affects(cfgWith(t, config.ClassOperatingSystem, "openssl", "3.0.8")) {
		t.Fatal("different class affected")
	}
	if v.Affects(config.MustNew()) {
		t.Fatal("empty config affected")
	}
}

func TestAffectsAllVersions(t *testing.T) {
	v := validVuln()
	v.Version = ""
	if !v.Affects(cfgWith(t, config.ClassCryptoLibrary, "openssl", "1.1.1")) {
		t.Fatal("product-wide vuln missed a version")
	}
	if !v.Affects(cfgWith(t, config.ClassCryptoLibrary, "openssl", "3.0.8")) {
		t.Fatal("product-wide vuln missed current version")
	}
}

func TestWindowOpenAt(t *testing.T) {
	v := validVuln() // disclosed 10h, patch 20h
	lat := 5 * time.Hour
	cases := []struct {
		t    time.Duration
		want bool
	}{
		{9 * time.Hour, false},  // pre-disclosure
		{10 * time.Hour, true},  // disclosure instant
		{20 * time.Hour, true},  // patch shipped but not applied
		{24 * time.Hour, true},  // still inside patch latency
		{25 * time.Hour, false}, // patched
	}
	for _, c := range cases {
		if got := v.WindowOpenAt(c.t, lat); got != c.want {
			t.Errorf("WindowOpenAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestCatalogAddDuplicate(t *testing.T) {
	c := NewCatalog()
	if err := c.Add(validVuln()); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(validVuln()); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := c.Add(Vulnerability{}); err == nil {
		t.Fatal("invalid vuln accepted")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Get("CVE-1"); !ok {
		t.Fatal("Get failed")
	}
	if _, ok := c.Get("CVE-none"); ok {
		t.Fatal("Get returned missing vuln")
	}
}

func TestCatalogAllSorted(t *testing.T) {
	c := NewCatalog()
	for _, id := range []ID{"CVE-3", "CVE-1", "CVE-2"} {
		v := validVuln()
		v.ID = id
		if err := c.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	all := c.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("All not sorted: %v", all)
		}
	}
}

func TestDisclosedAt(t *testing.T) {
	c := NewCatalog()
	early := validVuln()
	early.ID, early.Disclosed, early.PatchAt = "CVE-early", time.Hour, 2*time.Hour
	late := validVuln()
	late.ID, late.Disclosed, late.PatchAt = "CVE-late", 100*time.Hour, 101*time.Hour
	c.Add(early)
	c.Add(late)
	if got := len(c.DisclosedAt(50 * time.Hour)); got != 1 {
		t.Fatalf("disclosed at 50h = %d, want 1", got)
	}
	if got := len(c.DisclosedAt(200 * time.Hour)); got != 2 {
		t.Fatalf("disclosed at 200h = %d, want 2", got)
	}
}

func fleet(t *testing.T) []Replica {
	mk := func(name, lib, version string, power float64) Replica {
		return Replica{
			Name:         name,
			Config:       cfgWith(t, config.ClassCryptoLibrary, lib, version),
			Power:        power,
			PatchLatency: 24 * time.Hour,
		}
	}
	return []Replica{
		mk("r1", "openssl", "3.0.8", 40),
		mk("r2", "openssl", "3.0.8", 30),
		mk("r3", "libsodium", "1.0.18", 20),
		mk("r4", "golang-crypto", "1.21", 10),
	}
}

func TestInjectSharedFault(t *testing.T) {
	c := NewCatalog()
	c.Add(validVuln()) // hits openssl 3.0.8
	inj, err := Inject(c, fleet(t), 15*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Faults) != 1 {
		t.Fatalf("faults = %d, want 1", len(inj.Faults))
	}
	f := inj.Faults[0]
	if len(f.Compromised) != 2 {
		t.Fatalf("compromised = %v, want r1,r2", f.Compromised)
	}
	if f.Compromised[0] != "r1" || f.Compromised[1] != "r2" {
		t.Fatalf("compromised order = %v (want power-desc)", f.Compromised)
	}
	if f.PowerFraction != 0.7 {
		t.Fatalf("fraction = %v, want 0.7 (one fault, 70%% of power!)", f.PowerFraction)
	}
	if inj.Safe(1.0 / 3.0) {
		t.Fatal("0.7 compromised reported safe against f=1/3")
	}
}

func TestInjectOutsideWindow(t *testing.T) {
	c := NewCatalog()
	c.Add(validVuln())
	pre, _ := Inject(c, fleet(t), 5*time.Hour)
	if len(pre.Faults) != 0 {
		t.Fatal("fault active before disclosure")
	}
	post, _ := Inject(c, fleet(t), 50*time.Hour) // patch 20h + latency 24h = 44h
	if len(post.Faults) != 0 {
		t.Fatal("fault active after patching")
	}
}

func TestInjectSeverityTakesTopPower(t *testing.T) {
	c := NewCatalog()
	v := validVuln()
	v.Severity = 0.5 // ceil(0.5*2)=1 of the two exposed replicas
	c.Add(v)
	inj, _ := Inject(c, fleet(t), 15*time.Hour)
	f := inj.Faults[0]
	if len(f.Compromised) != 1 || f.Compromised[0] != "r1" {
		t.Fatalf("severity 0.5 compromised %v, want just r1 (highest power)", f.Compromised)
	}
}

// Severity boundary cases for the ⌈s·m⌉ take rule: an exact half over an
// even set must not round up an extra replica, and any positive severity
// must compromise at least one exposed replica.
func TestInjectSeverityCeilBoundaries(t *testing.T) {
	mono := make([]Replica, 4)
	for i := range mono {
		mono[i] = Replica{
			Name:         string(rune('a' + i)),
			Config:       cfgWith(t, config.ClassCryptoLibrary, "openssl", "3.0.8"),
			Power:        float64(10 - i),
			PatchLatency: 24 * time.Hour,
		}
	}
	for _, tc := range []struct {
		severity float64
		want     int
	}{
		{0.5, 2},    // ceil(0.5·4) = 2 exactly, not 3
		{1e-9, 1},   // ceil(4e-9) = 1: a working exploit never takes zero
		{0.25, 1},   // ceil(1) = 1 exactly
		{0.26, 2},   // ceil(1.04) = 2
		{1, 4},      // wormable takes everyone
		{0.7501, 4}, // ceil(3.0004) = 4
	} {
		c := NewCatalog()
		v := validVuln()
		v.Severity = tc.severity
		if err := c.Add(v); err != nil {
			t.Fatal(err)
		}
		inj, err := Inject(c, mono, 15*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if len(inj.Faults) != 1 || len(inj.Faults[0].Compromised) != tc.want {
			t.Fatalf("severity %v compromised %v, want %d replicas",
				tc.severity, inj.Faults, tc.want)
		}
	}
}

func TestInjectDeduplication(t *testing.T) {
	c := NewCatalog()
	a := validVuln()
	c.Add(a)
	b := validVuln()
	b.ID = "CVE-2"
	b.Version = "" // all openssl versions — overlaps with CVE-1 on r1, r2
	c.Add(b)
	inj, _ := Inject(c, fleet(t), 15*time.Hour)
	if len(inj.Faults) != 2 {
		t.Fatalf("faults = %d, want 2", len(inj.Faults))
	}
	// Naive sum double-counts: 0.7 + 0.7; dedup stays at 0.7.
	if inj.TotalFraction != 0.7 {
		t.Fatalf("TotalFraction = %v, want 0.7", inj.TotalFraction)
	}
	if inj.SumFraction <= inj.TotalFraction {
		t.Fatalf("SumFraction %v should exceed dedup %v here", inj.SumFraction, inj.TotalFraction)
	}
}

func TestInjectValidation(t *testing.T) {
	if _, err := Inject(nil, nil, 0); err == nil {
		t.Fatal("nil catalog accepted")
	}
	c := NewCatalog()
	if _, err := Inject(c, []Replica{{Name: "x", Power: -1}}, 0); err == nil {
		t.Fatal("negative power accepted")
	}
	// Empty population: no faults, no division by zero.
	inj, err := Inject(c, nil, 0)
	if err != nil || inj.TotalFraction != 0 {
		t.Fatalf("empty inject: %v %+v", err, inj)
	}
}

func TestWorstWindow(t *testing.T) {
	c := NewCatalog()
	c.Add(validVuln())
	worst, err := WorstWindow(c, fleet(t), 100*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if worst.TotalFraction != 0.7 {
		t.Fatalf("worst fraction = %v, want 0.7", worst.TotalFraction)
	}
	if worst.At < 10*time.Hour || worst.At >= 44*time.Hour {
		t.Fatalf("worst window at %v, outside exploit window", worst.At)
	}
	if _, err := WorstWindow(c, fleet(t), -time.Hour); err == nil {
		t.Fatal("negative horizon accepted")
	}
	if _, err := WorstWindow(nil, fleet(t), time.Hour); err == nil {
		t.Fatal("nil catalog accepted")
	}
}

func TestWorstWindowStepwise(t *testing.T) {
	c := NewCatalog()
	c.Add(validVuln())
	worst, err := WorstWindowStepwise(c, fleet(t), 100*time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if worst.TotalFraction != 0.7 {
		t.Fatalf("stepwise worst fraction = %v, want 0.7", worst.TotalFraction)
	}
	if _, err := WorstWindowStepwise(c, fleet(t), time.Hour, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

// A worst window narrower than the sampling step is invisible to the
// stepwise scan but exact for the event-driven sweep.
func TestWorstWindowExactBeatsCoarseStep(t *testing.T) {
	c := NewCatalog()
	v := validVuln() // disclosed 10h
	v.PatchAt = 11 * time.Hour
	c.Add(v)
	replicas := fleet(t)
	for i := range replicas {
		replicas[i].PatchLatency = 0 // window is exactly [10h, 11h)
	}
	exact, err := WorstWindow(c, replicas, 100*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := WorstWindowStepwise(c, replicas, 100*time.Hour, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if exact.TotalFraction != 0.7 || exact.At != 10*time.Hour {
		t.Fatalf("exact sweep = %+v, want 0.7 at 10h", exact)
	}
	if sampled.TotalFraction != 0 {
		t.Fatalf("4h sampling should miss the 1h window, got %v", sampled.TotalFraction)
	}
}

// Property: a diverse fleet (unique config per replica) bounds every single
// fault to one replica; a monoculture lets one fault take the whole fleet.
func TestPropDiversityBoundsFaults(t *testing.T) {
	f := func(rawN uint8) bool {
		n := 2 + int(rawN)%20
		c := NewCatalog()
		v := Vulnerability{
			ID: "CVE-X", Class: config.ClassOperatingSystem, Product: "os-0",
			Disclosed: 0, PatchAt: time.Hour, Severity: 1,
		}
		if err := c.Add(v); err != nil {
			return false
		}
		diverse := make([]Replica, n)
		mono := make([]Replica, n)
		for i := 0; i < n; i++ {
			diverse[i] = Replica{
				Name:   string(rune('a' + i)),
				Config: config.MustNew(config.Component{Class: config.ClassOperatingSystem, Name: "os-" + string(rune('0'+i)), Version: "1"}),
				Power:  1,
			}
			mono[i] = Replica{
				Name:   string(rune('a' + i)),
				Config: config.MustNew(config.Component{Class: config.ClassOperatingSystem, Name: "os-0", Version: "1"}),
				Power:  1,
			}
		}
		dInj, err1 := Inject(c, diverse, 30*time.Minute)
		mInj, err2 := Inject(c, mono, 30*time.Minute)
		if err1 != nil || err2 != nil {
			return false
		}
		// Diverse: only os-0 (one replica) is hit. Monoculture: all hit.
		return dInj.TotalFraction <= 1.0/float64(n)+1e-9 && mInj.TotalFraction == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SumFraction >= TotalFraction always (double counting only adds).
func TestPropSumAtLeastDedup(t *testing.T) {
	f := func(seed uint8) bool {
		c := NewCatalog()
		v1 := validVuln()
		v2 := validVuln()
		v2.ID, v2.Version = "CVE-2", ""
		c.Add(v1)
		c.Add(v2)
		inj, err := Inject(c, fleet(nil), time.Duration(seed)*time.Hour)
		if err != nil {
			return false
		}
		return inj.SumFraction >= inj.TotalFraction-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWorstWindowStepwiseRejectsNegativeHorizon(t *testing.T) {
	c := NewCatalog()
	c.Add(validVuln())
	if _, err := WorstWindowStepwise(c, fleet(t), -time.Hour, time.Hour); err == nil {
		t.Fatal("negative horizon accepted")
	}
}
