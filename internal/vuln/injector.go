package vuln

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Injector is a precomputed exposure index over one (catalog, replica set)
// pair. Construction matches every catalog vulnerability against every
// replica exactly once and sorts each vulnerability's exposed replicas into
// attack-priority order (power descending, name as tie-breaker). After
// that, evaluating the fault picture at an instant only filters each
// precomputed set by its per-replica exploit window — no re-matching, no
// re-sorting — and the event-driven WorstWindow sweep reuses internal
// buffers so it does not allocate per instant.
//
// An Injector is a snapshot: it does not observe later Catalog.Add calls
// or mutations of the replica set it was built from. Its methods share
// scratch buffers and must not be called concurrently.
type Injector struct {
	replicas   []Replica
	totalPower float64
	exposures  []exposure

	// active holds the indices (into replicas) of the current
	// vulnerability's open-window exposed set, reused across calls.
	active []int
	// marks deduplicates compromised replicas across vulnerabilities
	// within one instant: marks[i] == markGen means replica i is already
	// counted. Bumping markGen resets all marks in O(1).
	marks   []uint64
	markGen uint64
}

// exposure is one vulnerability's static exposure set: the replicas whose
// configuration it affects, independent of time.
type exposure struct {
	vuln Vulnerability
	// exposed indexes into Injector.replicas, sorted by power descending
	// then name — the order an attacker prioritises targets.
	exposed []int
	// closeAt[i] is exposed[i]'s window close: PatchAt + its patch
	// latency. The open side (Disclosed) is shared by the whole set.
	closeAt []time.Duration
	// maxClose is the latest closeAt: past it the vulnerability is dead
	// for this replica set and the whole exposure can be skipped.
	maxClose time.Duration
}

// NewInjector builds the exposure index. The replica slice is copied;
// configurations are matched against the catalog's current contents.
func NewInjector(catalog *Catalog, replicas []Replica) (*Injector, error) {
	if catalog == nil {
		return nil, errors.New("vuln: nil catalog")
	}
	in := &Injector{
		replicas: append([]Replica(nil), replicas...),
		marks:    make([]uint64, len(replicas)),
	}
	seen := make(map[string]struct{}, len(replicas))
	for _, r := range in.replicas {
		if r.Power < 0 {
			return nil, fmt.Errorf("vuln: replica %s has negative power", r.Name)
		}
		// Names identify replicas in fault dedup; a duplicate would make
		// "count each replica once" ambiguous, so reject it outright.
		if _, dup := seen[r.Name]; dup {
			return nil, fmt.Errorf("vuln: duplicate replica name %s", r.Name)
		}
		seen[r.Name] = struct{}{}
		in.totalPower += r.Power
	}
	// Deterministic vulnerability order (by ID) so fault lists and event
	// sweeps replay identically run to run.
	for _, v := range catalog.allSorted() {
		e := exposure{vuln: v}
		for i, r := range in.replicas {
			if v.Affects(r.Config) {
				e.exposed = append(e.exposed, i)
			}
		}
		if len(e.exposed) == 0 {
			continue
		}
		sort.Slice(e.exposed, func(a, b int) bool {
			ra, rb := in.replicas[e.exposed[a]], in.replicas[e.exposed[b]]
			if ra.Power != rb.Power {
				return ra.Power > rb.Power
			}
			return ra.Name < rb.Name
		})
		e.closeAt = make([]time.Duration, len(e.exposed))
		for i, idx := range e.exposed {
			e.closeAt[i] = v.PatchAt + in.replicas[idx].PatchLatency
			if e.closeAt[i] > e.maxClose {
				e.maxClose = e.closeAt[i]
			}
		}
		in.exposures = append(in.exposures, e)
	}
	return in, nil
}

// SeverityTake is the number of exposed replicas a severity-s exploit
// compromises out of m: ceil(s·m), at least 1 whenever m > 0. The small
// epsilon keeps float noise from rounding an exact product up (e.g.
// 0.07·100 evaluates to 7.0000000000000009, which must take 7, not 8);
// it is far below the 1/m granularity any real severity distinguishes.
// It is the single source of truth for victim counting: the injector,
// the stepwise cross-check and adversary exploit planning all use it, so
// an adversary's claimed fraction can never disagree with the assessment
// of the same instant.
func SeverityTake(m int, severity float64) int {
	take := int(math.Ceil(float64(m)*severity - 1e-9))
	if take < 1 {
		take = 1 // Severity is validated positive: an exploit never takes zero
	}
	if take > m {
		take = m
	}
	return take
}

// activeAt fills in.active with the exposure's open-window replica indices
// at t, preserving attack-priority order, and reports whether any are open.
func (in *Injector) activeAt(e *exposure, t time.Duration) bool {
	in.active = in.active[:0]
	if t < e.vuln.Disclosed || t >= e.maxClose {
		return false
	}
	for i, idx := range e.exposed {
		if t < e.closeAt[i] {
			in.active = append(in.active, idx)
		}
	}
	return len(in.active) > 0
}

// Inject computes the full fault picture at instant t, equivalent to the
// package-level Inject but without re-matching or re-sorting. The returned
// Injection owns its slices; only the Injector's scratch is reused.
func (in *Injector) Inject(t time.Duration) Injection {
	inj := Injection{At: t}
	in.markGen++
	var dedup float64
	for i := range in.exposures {
		e := &in.exposures[i]
		if !in.activeAt(e, t) {
			continue
		}
		take := SeverityTake(len(in.active), e.vuln.Severity)
		fault := Fault{
			Vuln:        e.vuln.ID,
			Compromised: make([]string, 0, take),
		}
		for _, idx := range in.active[:take] {
			r := &in.replicas[idx]
			fault.Compromised = append(fault.Compromised, r.Name)
			fault.Power += r.Power
			if in.marks[idx] != in.markGen {
				in.marks[idx] = in.markGen
				dedup += r.Power
			}
		}
		if in.totalPower > 0 {
			fault.PowerFraction = fault.Power / in.totalPower
		}
		inj.Faults = append(inj.Faults, fault)
		inj.SumFraction += fault.PowerFraction
	}
	if in.totalPower > 0 {
		inj.TotalFraction = dedup / in.totalPower
	}
	return inj
}

// TotalFractionAt computes only the deduplicated compromised power
// fraction at t — the quantity WorstWindow maximises — without building
// Fault lists. It allocates nothing after the first call.
func (in *Injector) TotalFractionAt(t time.Duration) float64 {
	if in.totalPower == 0 {
		return 0
	}
	in.markGen++
	var dedup float64
	for i := range in.exposures {
		e := &in.exposures[i]
		if !in.activeAt(e, t) {
			continue
		}
		take := SeverityTake(len(in.active), e.vuln.Severity)
		for _, idx := range in.active[:take] {
			if in.marks[idx] != in.markGen {
				in.marks[idx] = in.markGen
				dedup += in.replicas[idx].Power
			}
		}
	}
	return dedup / in.totalPower
}

// CriticalInstants returns the sorted, deduplicated set of instants in
// [0, horizon] where the fault picture can change: 0, each vulnerability's
// disclosure, and each (vulnerability, replica) window close. Between
// consecutive instants every exploit window is constant, so TotalFraction
// is a right-continuous step function taking a single value per piece —
// evaluating at these instants alone observes every value the function
// takes on [0, horizon].
//
// Close instants matter even though closing only removes exposed replicas:
// a sub-1 severity exploit re-targets the remaining replicas, so the
// deduplicated total across vulnerabilities can increase when a window
// closes.
func (in *Injector) CriticalInstants(horizon time.Duration) []time.Duration {
	events := []time.Duration{0}
	for i := range in.exposures {
		e := &in.exposures[i]
		if d := e.vuln.Disclosed; d > 0 && d <= horizon {
			events = append(events, d)
		}
		for _, c := range e.closeAt {
			if c > 0 && c <= horizon {
				events = append(events, c)
			}
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a] < events[b] })
	out := events[:1]
	for _, t := range events[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// WorstWindow sweeps the critical instants of [0, horizon] and returns the
// full injection at the earliest instant maximising the deduplicated
// compromised fraction — the adversary's best moment to strike, computed
// exactly rather than at a fixed sampling resolution.
func (in *Injector) WorstWindow(horizon time.Duration) (Injection, error) {
	if horizon < 0 {
		return Injection{}, fmt.Errorf("vuln: negative horizon %v", horizon)
	}
	bestT := time.Duration(0)
	bestF := in.TotalFractionAt(0)
	for _, t := range in.CriticalInstants(horizon)[1:] {
		if f := in.TotalFractionAt(t); f > bestF {
			bestT, bestF = t, f
		}
	}
	if bestF == 0 {
		// Match the stepwise scan: no instant compromises anything, so
		// report the zero injection rather than a fault-free picture at 0.
		return Injection{}, nil
	}
	return in.Inject(bestT), nil
}
