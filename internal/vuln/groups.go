package vuln

import (
	"errors"
	"sort"
	"time"

	"repro/internal/config"
)

// GroupSpec is one equivalence group of replicas: identical configuration
// (the enclosing BucketSpec's), equal per-member power, and equal patch
// latency. Members of a group are interchangeable for every assessment
// computation, so the grouped injector reasons about (count × power)
// aggregates instead of individual replicas. Names is sorted ascending and
// treated as immutable: producers (the registry snapshot) share the slice
// and copy-on-write when membership changes.
type GroupSpec struct {
	Power   float64 // per-member (weighted) voting power
	Latency time.Duration
	Names   []string // ascending; shared, read-only
}

// BucketSpec is one configuration bucket: a config-digest key, the
// configuration itself, and the equivalence groups over its members.
// Because the key is the configuration digest, the set of vulnerabilities
// matching a bucket is fixed for the bucket's lifetime — only group
// membership changes under churn.
type BucketSpec struct {
	Key    string // configuration digest string
	Config config.Configuration
	Groups []GroupSpec
}

// GroupInjector is the O(Δ)-maintainable counterpart of Injector: the same
// exposure index, but over (bucket, group) aggregates instead of individual
// replicas. Evaluating an instant walks each vulnerability's exposed groups
// in attack-priority order (power descending) and resolves the severity
// take per power class, so per-instant cost scales with the number of
// groups, not the population. ApplyBuckets patches only the exposure sets
// whose bucket membership changed, and ApplyCatalog inserts newly
// disclosed vulnerabilities — no full rebuild on churn.
//
// Equivalence with Injector is exact, not approximate: within one power
// class the flat injector takes replicas in ascending name order, and a
// name-ascending selection across a class's groups always takes a prefix
// of each group's (ascending) member list. Dedup across vulnerabilities is
// therefore "longest taken prefix per group", which walkTake maintains in
// per-group marks. The flat Injector remains the cross-check oracle.
//
// Methods share scratch buffers and must not be called concurrently.
type GroupInjector struct {
	totalPower float64
	buckets    map[string]*giBucket
	exposures  []*giExposure            // vulnerability-ID ascending
	expByKey   map[string][]*giExposure // bucket key -> exposures matching it
	known      map[ID]struct{}          // vulnerability IDs already indexed

	// Per-instant scratch: marks on groups dedup compromised members
	// across vulnerabilities (longest prefix wins); touched lists the
	// groups marked this instant so summing them is O(marked groups).
	markGen uint64
	touched []*giGroup
	open    []giItem    // current exposure's open-window items
	pos     []int       // k-way-merge cursors
	bs      []*giBucket // current exposure's live matching buckets
}

type giBucket struct {
	key        string
	cfg        config.Configuration
	groups     []*giGroup // power-descending
	maxLatency time.Duration
}

type giGroup struct {
	key     string // owning bucket key (item sort tie-breaker)
	power   float64
	latency time.Duration
	names   []string // ascending; shared with the producer, read-only

	mark  uint64 // == GroupInjector.markGen when touched this instant
	taken int    // longest taken prefix this instant (valid when marked)
}

// giItem is one open (vulnerability, group) exposure at the instant under
// evaluation: the group plus the vulnerability's window close for that
// group's latency.
type giItem struct {
	g       *giGroup
	closeAt time.Duration
}

// giExposure is one vulnerability's matching-bucket set. Because a
// bucket's key is its configuration digest, the set is computed once per
// (vulnerability, bucket) pair — churn never re-matches. The per-instant
// open-item list is merged on the fly from the buckets' power-sorted
// group lists (activeAt), so the exposure itself stores no per-group
// state and construction is O(#buckets) per vulnerability.
type giExposure struct {
	vuln     Vulnerability
	keys     []string // matching bucket keys, ascending
	maxClose time.Duration
}

// NewGroupInjector builds the grouped exposure index from a bucketed view
// of the membership. Bucket keys must be unique; group member names must be
// globally unique and ascending within each group (the registry snapshot
// guarantees both).
func NewGroupInjector(catalog *Catalog, buckets []BucketSpec) (*GroupInjector, error) {
	if catalog == nil {
		return nil, errors.New("vuln: nil catalog")
	}
	gi := &GroupInjector{
		buckets:  make(map[string]*giBucket, len(buckets)),
		expByKey: make(map[string][]*giExposure),
		known:    make(map[ID]struct{}),
	}
	for _, bs := range buckets {
		gi.buckets[bs.Key] = newGiBucket(bs)
	}
	for _, v := range catalog.allSorted() {
		gi.exposures = append(gi.exposures, gi.addVuln(v))
	}
	gi.recomputeTotal()
	return gi, nil
}

func newGiBucket(bs BucketSpec) *giBucket {
	b := &giBucket{key: bs.Key, cfg: bs.Config}
	for _, g := range bs.Groups {
		if len(g.Names) == 0 {
			continue
		}
		b.groups = append(b.groups, &giGroup{
			key: bs.Key, power: g.Power, latency: g.Latency, names: g.Names,
		})
		if g.Latency > b.maxLatency {
			b.maxLatency = g.Latency
		}
	}
	// Power-descending: activeAt merges these lists directly into the
	// attack-priority order walkTake consumes. Ties need no tie-break —
	// equal-power items form one class, which the take logic resolves as a
	// unit whatever their relative order.
	sort.Slice(b.groups, func(i, j int) bool { return b.groups[i].power > b.groups[j].power })
	return b
}

// addVuln indexes one vulnerability: match against every bucket. Exposures
// are kept even when currently empty — a later bucket change may expose
// them. gi.exposures stays ID-sorted because the construction loop feeds
// vulnerabilities in ID order; ApplyCatalog inserts at the sorted position.
func (gi *GroupInjector) addVuln(v Vulnerability) *giExposure {
	e := &giExposure{vuln: v}
	for key, b := range gi.buckets {
		if v.Affects(b.cfg) {
			e.keys = append(e.keys, key)
			gi.expByKey[key] = append(gi.expByKey[key], e)
		}
	}
	sort.Strings(e.keys)
	gi.refreshExposure(e)
	gi.known[v.ID] = struct{}{}
	return e
}

// refreshExposure recomputes an exposure's derived bounds after its
// matching buckets changed, compacting keys whose bucket emptied out.
// O(#matching buckets).
func (gi *GroupInjector) refreshExposure(e *giExposure) {
	keys := e.keys[:0]
	e.maxClose = 0
	for _, key := range e.keys {
		b := gi.buckets[key]
		if b == nil {
			continue
		}
		keys = append(keys, key)
		if c := e.vuln.PatchAt + b.maxLatency; c > e.maxClose {
			e.maxClose = c
		}
	}
	e.keys = keys
}

func (gi *GroupInjector) recomputeTotal() {
	var total float64
	for _, b := range gi.buckets {
		for _, g := range b.groups {
			total += float64(len(g.names)) * g.power
		}
	}
	gi.totalPower = total
}

// ApplyBuckets patches the index after membership churn: changed holds the
// buckets whose group structure changed (including brand-new buckets),
// removed the keys of buckets that emptied out. Only exposures matching an
// affected bucket are touched, and each refresh is O(its matching
// buckets). Applying the same change twice is harmless (group lists are
// replaced wholesale), which lets callers retry after a partial failure
// upstream.
func (gi *GroupInjector) ApplyBuckets(changed []BucketSpec, removed []string) {
	affected := make(map[*giExposure]struct{})
	for _, key := range removed {
		if gi.buckets[key] == nil {
			continue
		}
		for _, e := range gi.expByKey[key] {
			affected[e] = struct{}{}
		}
		delete(gi.buckets, key)
		delete(gi.expByKey, key)
	}
	for _, bs := range changed {
		b := gi.buckets[bs.Key]
		if b == nil {
			// New bucket: its matching vulnerability set is computed once
			// here and stays valid for the bucket's lifetime (the key is
			// the configuration digest, so the config never changes).
			b = newGiBucket(bs)
			gi.buckets[bs.Key] = b
			var exps []*giExposure
			for _, e := range gi.exposures {
				if e.vuln.Affects(bs.Config) {
					exps = append(exps, e)
					i := sort.SearchStrings(e.keys, bs.Key)
					e.keys = append(e.keys, "")
					copy(e.keys[i+1:], e.keys[i:])
					e.keys[i] = bs.Key
					affected[e] = struct{}{}
				}
			}
			gi.expByKey[bs.Key] = exps
			continue
		}
		nb := newGiBucket(bs)
		b.groups, b.maxLatency = nb.groups, nb.maxLatency
		for _, e := range gi.expByKey[bs.Key] {
			affected[e] = struct{}{}
		}
	}
	for e := range affected {
		gi.refreshExposure(e)
	}
	gi.recomputeTotal()
}

// ApplyCatalog indexes any catalog vulnerabilities not yet known to the
// injector (Catalog only ever grows). Each new vulnerability is matched
// against all buckets once and inserted in ID order.
func (gi *GroupInjector) ApplyCatalog(catalog *Catalog) {
	for _, v := range catalog.allSorted() {
		if _, ok := gi.known[v.ID]; ok {
			continue
		}
		e := gi.addVuln(v)
		i := sort.Search(len(gi.exposures), func(i int) bool {
			return gi.exposures[i].vuln.ID >= v.ID
		})
		gi.exposures = append(gi.exposures, nil)
		copy(gi.exposures[i+1:], gi.exposures[i:])
		gi.exposures[i] = e
	}
}

// TotalPower returns the summed power of all members in the index.
func (gi *GroupInjector) TotalPower() float64 { return gi.totalPower }

func (gi *GroupInjector) beginInstant() {
	gi.markGen++
	gi.touched = gi.touched[:0]
}

// activeAt fills gi.open with the exposure's open-window items at t in
// power-descending order — a k-way merge of the matching buckets'
// pre-sorted group lists, computed on the fly so no per-exposure item
// list ever has to be built or patched — and returns the open member
// count. The single-bucket case (the common one: a vulnerability names
// one product version) is a straight filtered copy.
func (gi *GroupInjector) activeAt(e *giExposure, t time.Duration) int {
	gi.open = gi.open[:0]
	if t < e.vuln.Disclosed || t >= e.maxClose {
		return 0
	}
	bs := gi.bs[:0]
	for _, key := range e.keys {
		if b := gi.buckets[key]; b != nil {
			bs = append(bs, b)
		}
	}
	gi.bs = bs[:0]
	m := 0
	if len(bs) == 1 {
		for _, g := range bs[0].groups {
			if c := e.vuln.PatchAt + g.latency; t < c {
				gi.open = append(gi.open, giItem{g: g, closeAt: c})
				m += len(g.names)
			}
		}
		return m
	}
	if cap(gi.pos) < len(bs) {
		gi.pos = make([]int, len(bs))
	}
	pos := gi.pos[:len(bs)]
	for i := range pos {
		pos[i] = 0
	}
	for {
		best := -1
		for i, b := range bs {
			if pos[i] >= len(b.groups) {
				continue
			}
			if best < 0 || b.groups[pos[i]].power > bs[best].groups[pos[best]].power {
				best = i
			}
		}
		if best < 0 {
			return m
		}
		g := bs[best].groups[pos[best]]
		pos[best]++
		if c := e.vuln.PatchAt + g.latency; t < c {
			gi.open = append(gi.open, giItem{g: g, closeAt: c})
			m += len(g.names)
		}
	}
}

// markTake records that n members (a name-ascending prefix) of g are
// compromised this instant; the longest prefix across vulnerabilities wins.
func (gi *GroupInjector) markTake(g *giGroup, n int) {
	if g.mark != gi.markGen {
		g.mark = gi.markGen
		g.taken = 0
		gi.touched = append(gi.touched, g)
	}
	if n > g.taken {
		g.taken = n
	}
}

// walkTake applies one exposure's severity take of k members to the dedup
// marks, walking gi.open by power class, and returns the fault's power.
// Full classes are taken whole (every group's complete prefix); the class
// containing the k-th member is resolved by name-merge across its groups —
// exactly the flat injector's (power desc, name asc) selection order.
func (gi *GroupInjector) walkTake(k int) float64 {
	var power float64
	taken := 0
	open := gi.open
	for i := 0; i < len(open) && taken < k; {
		j, classCount := i, 0
		p := open[i].g.power
		for j < len(open) && open[j].g.power == p {
			classCount += len(open[j].g.names)
			j++
		}
		if taken+classCount <= k {
			for _, it := range open[i:j] {
				gi.markTake(it.g, len(it.g.names))
			}
			power += float64(classCount) * p
			taken += classCount
		} else {
			r := k - taken
			gi.resolveBoundary(open[i:j], r, nil)
			power += float64(r) * p
			taken = k
		}
		i = j
	}
	return power
}

// resolveBoundary selects the r lexicographically-smallest member names
// across the equal-power items (the boundary power class), marks the
// per-group prefix lengths, and — when out is non-nil — appends the
// selected names in ascending order. The single-group case (the common
// one: boundary classes usually live inside one group) is O(1) when no
// names are requested.
func (gi *GroupInjector) resolveBoundary(items []giItem, r int, out *[]string) {
	if len(items) == 1 && out == nil {
		gi.markTake(items[0].g, r)
		return
	}
	if cap(gi.pos) < len(items) {
		gi.pos = make([]int, len(items))
	}
	pos := gi.pos[:len(items)]
	for i := range pos {
		pos[i] = 0
	}
	for n := 0; n < r; n++ {
		best := -1
		for i := range items {
			if pos[i] >= len(items[i].g.names) {
				continue
			}
			if best < 0 || items[i].g.names[pos[i]] < items[best].g.names[pos[best]] {
				best = i
			}
		}
		if out != nil {
			*out = append(*out, items[best].g.names[pos[best]])
		}
		pos[best]++
	}
	for i, it := range items {
		if pos[i] > 0 {
			gi.markTake(it.g, pos[i])
		}
	}
}

// dedupFraction sums the marked prefixes — the deduplicated compromised
// power of the current instant — as a fraction of total power.
func (gi *GroupInjector) dedupFraction() float64 {
	if gi.totalPower == 0 {
		return 0
	}
	var dedup float64
	for _, g := range gi.touched {
		dedup += float64(g.taken) * g.power
	}
	return dedup / gi.totalPower
}

// TotalFractionAt computes only the deduplicated compromised power fraction
// at t — the quantity WorstWindow maximises — in O(open groups), without
// materialising fault lists and without allocating after the first call.
func (gi *GroupInjector) TotalFractionAt(t time.Duration) float64 {
	if gi.totalPower == 0 {
		return 0
	}
	gi.beginInstant()
	for _, e := range gi.exposures {
		m := gi.activeAt(e, t)
		if m == 0 {
			continue
		}
		gi.walkTake(SeverityTake(m, e.vuln.Severity))
	}
	return gi.dedupFraction()
}

// Inject computes the full fault picture at instant t, byte-equivalent to
// the flat Injector's: per-vulnerability compromised names in (power desc,
// name asc) order, power sums, and the deduplicated total.
func (gi *GroupInjector) Inject(t time.Duration) Injection {
	return gi.inject(t, true)
}

// InjectSummary is Inject without materialising compromised-name lists:
// each Fault carries its power and fraction but a nil Compromised. At large
// scale (hundreds of thousands of exposed members per vulnerability) this
// is the difference between O(groups) and O(population) per assessment.
func (gi *GroupInjector) InjectSummary(t time.Duration) Injection {
	return gi.inject(t, false)
}

func (gi *GroupInjector) inject(t time.Duration, names bool) Injection {
	inj := Injection{At: t}
	gi.beginInstant()
	for _, e := range gi.exposures {
		m := gi.activeAt(e, t)
		if m == 0 {
			continue
		}
		k := SeverityTake(m, e.vuln.Severity)
		fault := Fault{Vuln: e.vuln.ID}
		if names {
			fault.Compromised = make([]string, 0, k)
			fault.Power = gi.materialize(k, &fault.Compromised)
		} else {
			fault.Power = gi.walkTake(k)
		}
		if gi.totalPower > 0 {
			fault.PowerFraction = fault.Power / gi.totalPower
		}
		inj.Faults = append(inj.Faults, fault)
		inj.SumFraction += fault.PowerFraction
	}
	inj.TotalFraction = gi.dedupFraction()
	return inj
}

// materialize is walkTake with name output: every class — full or boundary
// — is emitted as a name-ascending merge of its groups' taken prefixes,
// reproducing the flat injector's (power desc, name asc) listing.
func (gi *GroupInjector) materialize(k int, out *[]string) float64 {
	var power float64
	taken := 0
	open := gi.open
	for i := 0; i < len(open) && taken < k; {
		j, classCount := i, 0
		p := open[i].g.power
		for j < len(open) && open[j].g.power == p {
			classCount += len(open[j].g.names)
			j++
		}
		r := classCount
		if taken+classCount > k {
			r = k - taken
		}
		gi.resolveBoundary(open[i:j], r, out)
		power += float64(r) * p
		taken += r
		i = j
	}
	return power
}

// CriticalInstants returns the sorted, deduplicated instants in
// [0, horizon] where the fault picture can change: 0, each disclosure, and
// each (vulnerability, group) window close. Groups partition replicas by
// patch latency, so the distinct close instants are exactly the flat
// injector's per-replica ones.
func (gi *GroupInjector) CriticalInstants(horizon time.Duration) []time.Duration {
	events := []time.Duration{0}
	for _, e := range gi.exposures {
		if d := e.vuln.Disclosed; d > 0 && d <= horizon {
			events = append(events, d)
		}
		for _, key := range e.keys {
			b := gi.buckets[key]
			if b == nil {
				continue
			}
			for _, g := range b.groups {
				if c := e.vuln.PatchAt + g.latency; c > 0 && c <= horizon {
					events = append(events, c)
				}
			}
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a] < events[b] })
	out := events[:1]
	for _, t := range events[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// WorstWindow sweeps the critical instants of [0, horizon] and returns the
// full injection at the earliest instant maximising the deduplicated
// compromised fraction — semantics identical to Injector.WorstWindow.
func (gi *GroupInjector) WorstWindow(horizon time.Duration) (Injection, error) {
	return gi.worstWindow(horizon, true)
}

// WorstWindowSummary is WorstWindow reporting summary faults (nil
// Compromised lists); see InjectSummary.
func (gi *GroupInjector) WorstWindowSummary(horizon time.Duration) (Injection, error) {
	return gi.worstWindow(horizon, false)
}

func (gi *GroupInjector) worstWindow(horizon time.Duration, names bool) (Injection, error) {
	if horizon < 0 {
		return Injection{}, errors.New("vuln: negative horizon " + horizon.String())
	}
	bestT := time.Duration(0)
	bestF := gi.TotalFractionAt(0)
	for _, t := range gi.CriticalInstants(horizon)[1:] {
		if f := gi.TotalFractionAt(t); f > bestF {
			bestT, bestF = t, f
		}
	}
	if bestF == 0 {
		// Match Injector.WorstWindow: no instant compromises anything, so
		// report the zero injection rather than a fault-free picture at 0.
		return Injection{}, nil
	}
	return gi.inject(bestT, names), nil
}
