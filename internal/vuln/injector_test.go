package vuln

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/config"
)

// randomScenario builds a randomized catalog and replica set sharing a
// small product pool, so vulnerabilities overlap replicas in varied ways.
func randomScenario(rng *rand.Rand) (*Catalog, []Replica) {
	products := []string{"openssl", "boringssl", "libsodium", "wolfssl"}
	versions := []string{"1.0", "2.0", "3.0"}
	cat := NewCatalog()
	nVulns := 1 + rng.Intn(8)
	for i := 0; i < nVulns; i++ {
		disclosed := time.Duration(rng.Intn(150)) * time.Hour
		v := Vulnerability{
			ID:        ID(fmt.Sprintf("CVE-%03d", i)),
			Class:     config.ClassCryptoLibrary,
			Product:   products[rng.Intn(len(products))],
			Disclosed: disclosed,
			PatchAt:   disclosed + time.Duration(1+rng.Intn(72))*time.Hour,
			Severity:  rng.Float64()*0.999 + 0.001,
		}
		if rng.Intn(2) == 0 {
			v.Version = versions[rng.Intn(len(versions))]
		}
		if err := cat.Add(v); err != nil {
			panic(err)
		}
	}
	nReplicas := 1 + rng.Intn(20)
	replicas := make([]Replica, nReplicas)
	for i := range replicas {
		replicas[i] = Replica{
			Name: fmt.Sprintf("r-%03d", i),
			Config: config.MustNew(config.Component{
				Class:   config.ClassCryptoLibrary,
				Name:    products[rng.Intn(len(products))],
				Version: versions[rng.Intn(len(versions))],
			}),
			Power:        rng.Float64() * 10,
			PatchLatency: time.Duration(rng.Intn(96)) * time.Hour,
		}
	}
	return cat, replicas
}

// Property: the event-driven sweep dominates the stepwise scan (it can
// only find a worse-or-equal worst window), and the injector agrees
// exactly with the package-level Inject at every stepwise instant.
func TestPropEventSweepDominatesStepwise(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const (
		horizon = 250 * time.Hour
		step    = 7 * time.Hour // deliberately does not divide the event grid
	)
	for iter := 0; iter < 60; iter++ {
		cat, replicas := randomScenario(rng)
		exact, err := WorstWindow(cat, replicas, horizon)
		if err != nil {
			t.Fatal(err)
		}
		sampled, err := WorstWindowStepwise(cat, replicas, horizon, step)
		if err != nil {
			t.Fatal(err)
		}
		// WorstWindowStepwise is an independent implementation that sums
		// deduplicated power in map order, so allow last-ulp noise.
		if exact.TotalFraction < sampled.TotalFraction-1e-12 {
			t.Fatalf("iter %d: exact sweep %v below stepwise %v",
				iter, exact.TotalFraction, sampled.TotalFraction)
		}
		in, err := NewInjector(cat, replicas)
		if err != nil {
			t.Fatal(err)
		}
		for at := time.Duration(0); at <= horizon; at += step {
			ref, err := Inject(cat, replicas, at)
			if err != nil {
				t.Fatal(err)
			}
			if got := in.TotalFractionAt(at); got != ref.TotalFraction {
				t.Fatalf("iter %d t=%v: injector fraction %v != Inject %v",
					iter, at, got, ref.TotalFraction)
			}
			if got := in.Inject(at); got.TotalFraction != ref.TotalFraction ||
				got.SumFraction != ref.SumFraction || len(got.Faults) != len(ref.Faults) {
				t.Fatalf("iter %d t=%v: injector %+v != Inject %+v", iter, at, got, ref)
			}
		}
	}
}

// Property: on a 1-minute event grid, a 1-minute stepwise scan visits
// every piece of the step function, so the exact sweep must match it to
// the bit. This catches missing critical-instant kinds (e.g. forgetting
// that window closes can raise the deduplicated total).
func TestPropEventSweepExactOnFineGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 25; iter++ {
		products := []string{"p0", "p1", "p2"}
		cat := NewCatalog()
		for i := 0; i < 1+rng.Intn(5); i++ {
			disclosed := time.Duration(rng.Intn(20)) * time.Minute
			if err := cat.Add(Vulnerability{
				ID:        ID(fmt.Sprintf("CVE-%03d", i)),
				Class:     config.ClassOperatingSystem,
				Product:   products[rng.Intn(len(products))],
				Disclosed: disclosed,
				PatchAt:   disclosed + time.Duration(1+rng.Intn(20))*time.Minute,
				Severity:  rng.Float64()*0.999 + 0.001,
			}); err != nil {
				t.Fatal(err)
			}
		}
		replicas := make([]Replica, 1+rng.Intn(10))
		for i := range replicas {
			replicas[i] = Replica{
				Name: fmt.Sprintf("r-%02d", i),
				Config: config.MustNew(config.Component{
					Class: config.ClassOperatingSystem, Name: products[rng.Intn(len(products))], Version: "1",
				}),
				Power:        float64(1 + rng.Intn(9)),
				PatchLatency: time.Duration(rng.Intn(30)) * time.Minute,
			}
		}
		const horizon = 80 * time.Minute
		exact, err := WorstWindow(cat, replicas, horizon)
		if err != nil {
			t.Fatal(err)
		}
		fine, err := WorstWindowStepwise(cat, replicas, horizon, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		// Same last-ulp tolerance: the stepwise scan is an independent
		// implementation with map-ordered summation.
		if diff := exact.TotalFraction - fine.TotalFraction; diff < -1e-12 || diff > 1e-12 {
			t.Fatalf("iter %d: exact %v != fine-grid stepwise %v",
				iter, exact.TotalFraction, fine.TotalFraction)
		}
	}
}

// A severity < 1 exploit re-targets the remaining replicas when a window
// closes, so the worst instant can sit at a close boundary: vuln A
// (severity 0.5) takes r1 while r1 is exposed, but once r1's window for A
// closes it takes r2 — while vuln B holds r1 the whole time. The sweep
// must evaluate close instants to see the combined {r1, r2} peak.
func TestWorstWindowEvaluatesCloseInstants(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Add(Vulnerability{
		ID: "CVE-A", Class: config.ClassOperatingSystem, Product: "shared-os",
		Disclosed: 0, PatchAt: 10 * time.Hour, Severity: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(Vulnerability{
		ID: "CVE-B", Class: config.ClassCryptoLibrary, Product: "lib-of-r1",
		Disclosed: 0, PatchAt: 100 * time.Hour, Severity: 1,
	}); err != nil {
		t.Fatal(err)
	}
	replicas := []Replica{
		{
			Name: "r1",
			Config: config.MustNew(
				config.Component{Class: config.ClassOperatingSystem, Name: "shared-os", Version: "1"},
				config.Component{Class: config.ClassCryptoLibrary, Name: "lib-of-r1", Version: "1"},
			),
			Power:        10,
			PatchLatency: 0, // CVE-A window for r1 closes at 10h
		},
		{
			Name: "r2",
			Config: config.MustNew(
				config.Component{Class: config.ClassOperatingSystem, Name: "shared-os", Version: "1"},
			),
			Power:        8,
			PatchLatency: 40 * time.Hour, // CVE-A window for r2 closes at 50h
		},
	}
	// Before 10h: CVE-A takes r1 (top power of 2 exposed, ceil(1)=1) and
	// CVE-B takes r1 → dedup 10/18. From 10h: CVE-A re-targets r2, CVE-B
	// still holds r1 → dedup 18/18.
	worst, err := WorstWindow(cat, replicas, 200*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if worst.TotalFraction != 1 {
		t.Fatalf("worst fraction = %v, want 1 (close instant missed)", worst.TotalFraction)
	}
	if worst.At != 10*time.Hour {
		t.Fatalf("worst at %v, want the 10h close boundary", worst.At)
	}
}

func TestInjectorSnapshotSemantics(t *testing.T) {
	cat := NewCatalog()
	v := validVuln()
	cat.Add(v)
	in, err := NewInjector(cat, fleet(nil))
	if err != nil {
		t.Fatal(err)
	}
	before := in.TotalFractionAt(15 * time.Hour)
	// Later catalog additions are invisible to an existing injector.
	w := validVuln()
	w.ID, w.Version = "CVE-later", ""
	if err := cat.Add(w); err != nil {
		t.Fatal(err)
	}
	if after := in.TotalFractionAt(15 * time.Hour); after != before {
		t.Fatalf("injector observed a post-build Add: %v -> %v", before, after)
	}
	// A fresh injector sees it, and the invalidated sort cache resorts.
	in2, err := NewInjector(cat, fleet(nil))
	if err != nil {
		t.Fatal(err)
	}
	if in2.TotalFractionAt(15*time.Hour) != before {
		// CVE-later overlaps CVE-1 on the same replicas; dedup unchanged.
		t.Fatalf("overlapping vuln changed dedup fraction")
	}
	all := cat.All()
	if len(all) != 2 || all[0].ID != "CVE-1" || all[1].ID != "CVE-later" {
		t.Fatalf("All after invalidation = %v", all)
	}
	// The returned slice is a copy: mutating it must not poison the cache.
	all[0].ID = "CVE-mutated"
	if got := cat.All(); got[0].ID != "CVE-1" {
		t.Fatalf("All cache corrupted by caller mutation: %v", got)
	}
}

func TestNewInjectorValidation(t *testing.T) {
	if _, err := NewInjector(nil, nil); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := NewInjector(NewCatalog(), []Replica{{Name: "x", Power: -1}}); err == nil {
		t.Fatal("negative power accepted")
	}
	// Duplicate names would make "count each replica once" ambiguous.
	dup := []Replica{{Name: "x", Power: 1}, {Name: "x", Power: 2}}
	if _, err := NewInjector(NewCatalog(), dup); err == nil {
		t.Fatal("duplicate replica names accepted")
	}
	if _, err := Inject(NewCatalog(), dup, 0); err == nil {
		t.Fatal("Inject accepted duplicate replica names")
	}
}

// Float products landing an ulp above the exact integer must not round an
// extra replica in: ceil(0.07·100) is 7 even though the float64 product
// is 7.0000000000000009.
func TestSeverityTakeFloatRobust(t *testing.T) {
	cases := []struct {
		m        int
		severity float64
		want     int
	}{
		{100, 0.07, 7},
		{4, 0.5, 2},
		{4, 0.25, 1},
		{4, 0.26, 2},
		{1, 1e-9, 1},
		{3, 1, 3},
		{10, 0.1, 1},
		{1000, 0.003, 3},
	}
	for _, tc := range cases {
		if got := SeverityTake(tc.m, tc.severity); got != tc.want {
			t.Errorf("SeverityTake(%d, %v) = %d, want %d", tc.m, tc.severity, got, tc.want)
		}
	}
}

// Adding disclosures while other goroutines read the catalog (the live
// Monitor.Watch pattern) must be race-free.
func TestCatalogConcurrentAddAndRead(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Add(Vulnerability{
		ID: "CVE-seed", Class: config.ClassOperatingSystem, Product: "p0",
		Disclosed: 0, PatchAt: time.Hour, Severity: 1,
	}); err != nil {
		t.Fatal(err)
	}
	replicas := []Replica{{
		Name:   "r1",
		Config: config.MustNew(config.Component{Class: config.ClassOperatingSystem, Name: "p0", Version: "1"}),
		Power:  1,
	}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = cat.Add(Vulnerability{
				ID: ID(fmt.Sprintf("CVE-live-%03d", i)), Class: config.ClassOperatingSystem,
				Product: "p0", Disclosed: 0, PatchAt: time.Hour, Severity: 1,
			})
		}
	}()
	for i := 0; i < 200; i++ {
		in, err := NewInjector(cat, replicas)
		if err != nil {
			t.Fatal(err)
		}
		if in.TotalFractionAt(30*time.Minute) != 1 {
			t.Fatal("seed vulnerability lost")
		}
		cat.Len()
		cat.Get("CVE-seed")
		cat.DisclosedAt(30 * time.Minute)
	}
	<-done
	if cat.Len() != 201 {
		t.Fatalf("len = %d, want 201", cat.Len())
	}
}
