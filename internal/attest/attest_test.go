package attest

import (
	"errors"
	"testing"

	"repro/internal/config"
	"repro/internal/cryptoutil"
)

func testConfig(t *testing.T) config.Configuration {
	t.Helper()
	return config.MustNew(
		config.Component{Class: config.ClassTrustedHardware, Name: "tpm2", Version: "01.59"},
		config.Component{Class: config.ClassOperatingSystem, Name: "debian", Version: "12"},
		config.Component{Class: config.ClassConsensusModule, Name: "tendermint", Version: "0.37"},
	)
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice("", 1); err == nil {
		t.Fatal("empty vendor accepted")
	}
}

func TestDeviceDeterministic(t *testing.T) {
	a, _ := NewDevice("tpm2", 7)
	b, _ := NewDevice("tpm2", 7)
	if string(a.PublicKey()) != string(b.PublicKey()) {
		t.Fatal("same device derived different keys")
	}
	c, _ := NewDevice("tpm2", 8)
	if string(a.PublicKey()) == string(c.PublicKey()) {
		t.Fatal("different serials share a key")
	}
}

func TestQuoteVerifyRoundTrip(t *testing.T) {
	dev, _ := NewDevice("tpm2", 1)
	auth := NewAuthority("tpm2")
	vote := cryptoutil.DeriveKeyPair("vote", 1)
	nonce := auth.IssueNonce()
	q, err := dev.QuoteConfig(testConfig(t), vote.Public, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := auth.Verify(q); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
	if q.Measurement != testConfig(t).Digest() {
		t.Fatal("measurement is not the config digest")
	}
}

func TestQuoteNonceSingleUse(t *testing.T) {
	dev, _ := NewDevice("tpm2", 1)
	auth := NewAuthority("tpm2")
	vote := cryptoutil.DeriveKeyPair("vote", 1)
	nonce := auth.IssueNonce()
	q, _ := dev.QuoteConfig(testConfig(t), vote.Public, nonce)
	if err := auth.Verify(q); err != nil {
		t.Fatal(err)
	}
	if err := auth.Verify(q); !errors.Is(err, ErrNonceMismatch) {
		t.Fatalf("replay err = %v, want ErrNonceMismatch", err)
	}
}

func TestQuoteUnknownNonce(t *testing.T) {
	dev, _ := NewDevice("tpm2", 1)
	auth := NewAuthority("tpm2")
	vote := cryptoutil.DeriveKeyPair("vote", 1)
	q, _ := dev.QuoteConfig(testConfig(t), vote.Public, 424242)
	if err := auth.Verify(q); !errors.Is(err, ErrNonceMismatch) {
		t.Fatalf("err = %v, want ErrNonceMismatch", err)
	}
}

func TestQuoteUntrustedVendor(t *testing.T) {
	dev, _ := NewDevice("shady-tee", 1)
	auth := NewAuthority("tpm2")
	vote := cryptoutil.DeriveKeyPair("vote", 1)
	q, _ := dev.QuoteConfig(testConfig(t), vote.Public, auth.IssueNonce())
	if err := auth.Verify(q); !errors.Is(err, ErrUntrustedVendor) {
		t.Fatalf("err = %v, want ErrUntrustedVendor", err)
	}
	auth.TrustVendor("shady-tee")
	q2, _ := dev.QuoteConfig(testConfig(t), vote.Public, auth.IssueNonce())
	if err := auth.Verify(q2); err != nil {
		t.Fatalf("after TrustVendor: %v", err)
	}
}

func TestQuoteRevokedDevice(t *testing.T) {
	dev, _ := NewDevice("tpm2", 1)
	auth := NewAuthority("tpm2")
	auth.Revoke(dev.PublicKey())
	vote := cryptoutil.DeriveKeyPair("vote", 1)
	q, _ := dev.QuoteConfig(testConfig(t), vote.Public, auth.IssueNonce())
	if err := auth.Verify(q); !errors.Is(err, ErrRevokedDevice) {
		t.Fatalf("err = %v, want ErrRevokedDevice", err)
	}
}

func TestQuoteTamperingDetected(t *testing.T) {
	dev, _ := NewDevice("tpm2", 1)
	auth := NewAuthority("tpm2")
	vote := cryptoutil.DeriveKeyPair("vote", 1)
	evil := cryptoutil.DeriveKeyPair("vote", 666)

	tamper := []struct {
		name string
		mut  func(*Quote)
	}{
		{"measurement", func(q *Quote) { q.Measurement[0] ^= 1 }},
		{"vote key swap", func(q *Quote) { q.VotePublicKey = evil.Public }},
		{"nonce", func(q *Quote) { q.Nonce++ }},
		{"committed flag", func(q *Quote) { q.Committed = true }},
		{"signature", func(q *Quote) { q.Signature[0] ^= 1 }},
	}
	for _, tc := range tamper {
		nonce := auth.IssueNonce()
		q, _ := dev.QuoteConfig(testConfig(t), vote.Public, nonce)
		tc.mut(&q)
		if q.Nonce != nonce {
			// Nonce tampering also needs the new nonce to exist to reach
			// the signature check.
			auth.nonces[q.Nonce] = true
		}
		err := auth.Verify(q)
		if !errors.Is(err, ErrBadSignature) {
			t.Errorf("%s: err = %v, want ErrBadSignature", tc.name, err)
		}
		// A failed verification must not consume the nonce.
		if q.Nonce == nonce && !auth.nonces[nonce] {
			t.Errorf("%s: nonce consumed by failed verification", tc.name)
		}
	}
}

func TestQuoteVoteKeySize(t *testing.T) {
	dev, _ := NewDevice("tpm2", 1)
	if _, err := dev.QuoteConfig(testConfig(t), []byte("short"), 1); err == nil {
		t.Fatal("short vote key accepted")
	}
	if _, err := dev.QuoteCommitted(testConfig(t), []byte("salt"), []byte("short"), 1); err == nil {
		t.Fatal("short vote key accepted (committed)")
	}
}

func TestCommittedQuotePrivacy(t *testing.T) {
	dev, _ := NewDevice("intel-sgx", 1)
	auth := NewAuthority("intel-sgx")
	vote := cryptoutil.DeriveKeyPair("vote", 2)
	cfg := testConfig(t)
	salt := []byte("high-entropy-salt")
	q, err := dev.QuoteCommitted(cfg, salt, vote.Public, auth.IssueNonce())
	if err != nil {
		t.Fatal(err)
	}
	if err := auth.Verify(q); err != nil {
		t.Fatalf("committed quote rejected: %v", err)
	}
	// The measurement must not leak the config digest.
	if q.Measurement == cfg.Digest() {
		t.Fatal("committed measurement equals plain digest")
	}
	// Opening verifies with the right (cfg, salt) and rejects others.
	if err := VerifyOpening(q, cfg, salt); err != nil {
		t.Fatalf("valid opening rejected: %v", err)
	}
	if err := VerifyOpening(q, cfg, []byte("wrong")); !errors.Is(err, ErrBadOpening) {
		t.Fatalf("wrong salt: err = %v", err)
	}
	other := config.MustNew(config.Component{Class: config.ClassOperatingSystem, Name: "fedora", Version: "38"})
	if err := VerifyOpening(q, other, salt); !errors.Is(err, ErrBadOpening) {
		t.Fatalf("wrong config: err = %v", err)
	}
}

func TestCommittedQuoteRequiresSalt(t *testing.T) {
	dev, _ := NewDevice("intel-sgx", 1)
	vote := cryptoutil.DeriveKeyPair("vote", 2)
	if _, err := dev.QuoteCommitted(testConfig(t), nil, vote.Public, 1); err == nil {
		t.Fatal("empty salt accepted")
	}
}

func TestOpeningOnPlainQuoteRejected(t *testing.T) {
	dev, _ := NewDevice("tpm2", 1)
	vote := cryptoutil.DeriveKeyPair("vote", 1)
	q, _ := dev.QuoteConfig(testConfig(t), vote.Public, 1)
	if err := VerifyOpening(q, testConfig(t), []byte("s")); err == nil {
		t.Fatal("opening accepted on non-committed quote")
	}
}

func TestVerifyVoteBinding(t *testing.T) {
	dev, _ := NewDevice("tpm2", 1)
	auth := NewAuthority("tpm2")
	vote := cryptoutil.DeriveKeyPair("vote", 3)
	q, _ := dev.QuoteConfig(testConfig(t), vote.Public, auth.IssueNonce())
	if err := auth.Verify(q); err != nil {
		t.Fatal(err)
	}
	msg := []byte("PREPARE view=1 seq=9 digest=abc")
	sig := vote.Sign(msg)
	if err := VerifyVoteBinding(q, msg, sig); err != nil {
		t.Fatalf("bound vote rejected: %v", err)
	}
	// A vote from a different key must fail the binding.
	impostor := cryptoutil.DeriveKeyPair("vote", 4)
	if err := VerifyVoteBinding(q, msg, impostor.Sign(msg)); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("impostor vote err = %v", err)
	}
}

func TestCommitmentSaltSensitivity(t *testing.T) {
	cfg := testConfig(t)
	a := Commitment(cfg, []byte("salt-a"))
	b := Commitment(cfg, []byte("salt-b"))
	if a == b {
		t.Fatal("different salts collide")
	}
}

func TestIssueNonceUnique(t *testing.T) {
	auth := NewAuthority()
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		n := auth.IssueNonce()
		if seen[n] {
			t.Fatalf("nonce %d repeated", n)
		}
		seen[n] = true
	}
}

// Fuzz-flavoured property: flipping any single byte of the signed quote
// surface (measurement, vote key, or signature) must fail verification.
func TestPropQuoteBitFlips(t *testing.T) {
	dev, _ := NewDevice("tpm2", 99)
	auth := NewAuthority("tpm2")
	vote := cryptoutil.DeriveKeyPair("fuzz", 0)
	cfg := testConfig(t)
	for trial := 0; trial < 64; trial++ {
		nonce := auth.IssueNonce()
		q, err := dev.QuoteConfig(cfg, vote.Public, nonce)
		if err != nil {
			t.Fatal(err)
		}
		switch trial % 3 {
		case 0:
			q.Measurement[trial%len(q.Measurement)] ^= 1 << (trial % 8)
		case 1:
			mut := append([]byte(nil), q.VotePublicKey...)
			mut[trial%len(mut)] ^= 1 << (trial % 8)
			q.VotePublicKey = mut
		case 2:
			mut := append([]byte(nil), q.Signature...)
			mut[trial%len(mut)] ^= 1 << (trial % 8)
			q.Signature = mut
		}
		if err := auth.Verify(q); err == nil {
			t.Fatalf("trial %d: tampered quote verified", trial)
		}
	}
}
