// Package attest simulates the remote-attestation machinery of Sec. III-B:
// trusted devices (TPM/TEE) measure a replica's configuration and produce
// signed quotes; an attestation authority verifies quotes against trusted
// vendors and revocation state.
//
// Two concerns from the paper's Remark 3 are modelled explicitly:
//
//   - Key binding: a quote covers both the configuration digest and the
//     replica's vote public key, proving that votes signed with that key
//     come from a machine with the attested configuration.
//   - Configuration privacy: a replica may attest a salted commitment to
//     its configuration instead of the digest itself, revealing the actual
//     configuration only to an auditor (otherwise the public registry would
//     hand attackers a target list when new vulnerabilities drop).
//
// What the paper's deployments would realise with Intel SGX, ARM TrustZone,
// TPM 2.0 or Azure Attestation is realised here with ed25519 endorsement
// keys; the protocol surface (measure → quote → verify → bind) is the same.
package attest

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/config"
	"repro/internal/cryptoutil"
)

// Errors returned by quote verification.
var (
	ErrUntrustedVendor = errors.New("attest: device vendor not trusted")
	ErrRevokedDevice   = errors.New("attest: device endorsement key revoked")
	ErrBadSignature    = errors.New("attest: quote signature invalid")
	ErrNonceMismatch   = errors.New("attest: nonce unknown or already used")
	ErrBadOpening      = errors.New("attest: commitment opening does not match")
)

const quoteDomain = "repro/attest/quote/v1"

// Device is a simulated trusted component (TPM or TEE) with a vendor
// identity and an endorsement key pair. In production the endorsement key
// would be fused at manufacture; here it is derived deterministically from
// (vendor, serial) so simulations are replayable.
type Device struct {
	Vendor string
	Serial uint64
	ek     cryptoutil.KeyPair
}

// NewDevice manufactures a device of the given vendor (which should match a
// config.ClassTrustedHardware component name, e.g. "tpm2" or "intel-sgx").
func NewDevice(vendor string, serial uint64) (*Device, error) {
	if vendor == "" {
		return nil, errors.New("attest: empty vendor")
	}
	return &Device{
		Vendor: vendor,
		Serial: serial,
		ek:     cryptoutil.DeriveKeyPair("attest/"+vendor, serial),
	}, nil
}

// PublicKey returns the device's endorsement public key.
func (d *Device) PublicKey() ed25519.PublicKey { return d.ek.Public }

// Quote is a signed attestation statement binding a measured configuration
// (or a commitment to one) and a vote public key to a fresh nonce.
type Quote struct {
	Vendor        string
	DevicePublic  ed25519.PublicKey
	Measurement   cryptoutil.Digest // config digest, or commitment in private mode
	Committed     bool              // true when Measurement is a salted commitment
	VotePublicKey ed25519.PublicKey
	Nonce         uint64
	Signature     []byte
}

func quoteMessage(q *Quote) []byte {
	var buf bytes.Buffer
	buf.WriteString(quoteDomain)
	buf.WriteString(q.Vendor)
	buf.Write(q.DevicePublic)
	buf.Write(q.Measurement[:])
	if q.Committed {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	buf.Write(q.VotePublicKey)
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], q.Nonce)
	buf.Write(nb[:])
	return buf.Bytes()
}

// QuoteConfig produces a quote over the plain configuration digest.
func (d *Device) QuoteConfig(cfg config.Configuration, votePub ed25519.PublicKey, nonce uint64) (Quote, error) {
	if len(votePub) != ed25519.PublicKeySize {
		return Quote{}, fmt.Errorf("attest: vote key size %d", len(votePub))
	}
	q := Quote{
		Vendor:        d.Vendor,
		DevicePublic:  d.ek.Public,
		Measurement:   cfg.Digest(),
		VotePublicKey: votePub,
		Nonce:         nonce,
	}
	q.Signature = d.ek.Sign(quoteMessage(&q))
	return q, nil
}

// Commitment computes the salted configuration commitment used in private
// mode: H(domain || config digest || salt).
func Commitment(cfg config.Configuration, salt []byte) cryptoutil.Digest {
	digest := cfg.Digest()
	return cryptoutil.Hash([]byte("repro/attest/commit/v1"), digest[:], salt)
}

// QuoteCommitted produces a privacy-preserving quote: the measurement is a
// salted commitment to the configuration. The replica keeps salt secret and
// opens the commitment only to auditors (see VerifyOpening).
func (d *Device) QuoteCommitted(cfg config.Configuration, salt []byte, votePub ed25519.PublicKey, nonce uint64) (Quote, error) {
	if len(salt) == 0 {
		return Quote{}, errors.New("attest: empty salt defeats commitment hiding")
	}
	if len(votePub) != ed25519.PublicKeySize {
		return Quote{}, fmt.Errorf("attest: vote key size %d", len(votePub))
	}
	q := Quote{
		Vendor:        d.Vendor,
		DevicePublic:  d.ek.Public,
		Measurement:   Commitment(cfg, salt),
		Committed:     true,
		VotePublicKey: votePub,
		Nonce:         nonce,
	}
	q.Signature = d.ek.Sign(quoteMessage(&q))
	return q, nil
}

// VerifyOpening checks a commitment opening: that the quote's committed
// measurement is the commitment to cfg under salt.
func VerifyOpening(q Quote, cfg config.Configuration, salt []byte) error {
	if !q.Committed {
		return errors.New("attest: quote is not in committed mode")
	}
	if Commitment(cfg, salt) != q.Measurement {
		return ErrBadOpening
	}
	return nil
}

// Authority verifies quotes. It trusts a set of vendors, tracks revoked
// endorsement keys (compromised devices), and issues single-use nonces to
// prevent quote replay.
type Authority struct {
	trusted   map[string]bool
	revoked   map[string]bool // hex of endorsement public key
	nonces    map[uint64]bool // outstanding (unused) nonces
	nextNonce uint64
}

// NewAuthority returns an authority trusting the given vendors.
func NewAuthority(vendors ...string) *Authority {
	a := &Authority{
		trusted: make(map[string]bool, len(vendors)),
		revoked: make(map[string]bool),
		nonces:  make(map[uint64]bool),
	}
	for _, v := range vendors {
		a.trusted[v] = true
	}
	return a
}

// TrustVendor adds a vendor to the trust set.
func (a *Authority) TrustVendor(vendor string) { a.trusted[vendor] = true }

// Revoke marks a device endorsement key as compromised; subsequent quotes
// from it fail verification. This models the paper's concern that trusted
// hardware itself is attackable (Remark 2, SGX.Fail).
func (a *Authority) Revoke(devicePub ed25519.PublicKey) {
	a.revoked[string(devicePub)] = true
}

// IssueNonce returns a fresh single-use nonce for a challenger-verifier
// exchange.
func (a *Authority) IssueNonce() uint64 {
	a.nextNonce++
	a.nonces[a.nextNonce] = true
	return a.nextNonce
}

// Verify checks a quote end-to-end: vendor trust, revocation, nonce
// freshness (consuming the nonce), and signature validity. On success the
// caller may trust that VotePublicKey belongs to a replica whose
// configuration measurement is Quote.Measurement.
func (a *Authority) Verify(q Quote) error {
	if !a.trusted[q.Vendor] {
		return fmt.Errorf("%w: %s", ErrUntrustedVendor, q.Vendor)
	}
	if a.revoked[string(q.DevicePublic)] {
		return ErrRevokedDevice
	}
	if !a.nonces[q.Nonce] {
		return ErrNonceMismatch
	}
	if !cryptoutil.Verify(q.DevicePublic, quoteMessage(&q), q.Signature) {
		return ErrBadSignature
	}
	delete(a.nonces, q.Nonce) // consume only after full success
	return nil
}

// VerifyVoteBinding checks that a protocol vote signature was produced by
// the key bound in an (already verified) quote — the Remark 3 property that
// "a vote indeed comes from a replica with the attested configuration".
func VerifyVoteBinding(q Quote, voteMsg, voteSig []byte) error {
	if !cryptoutil.Verify(q.VotePublicKey, voteMsg, voteSig) {
		return ErrBadSignature
	}
	return nil
}
