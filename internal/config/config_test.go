package config

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range Classes() {
		if !c.Valid() {
			t.Fatalf("Classes() returned invalid class %d", c)
		}
		s := c.String()
		if s == "" || strings.HasPrefix(s, "class(") {
			t.Fatalf("class %d has no name", c)
		}
		if seen[s] {
			t.Fatalf("duplicate class name %q", s)
		}
		seen[s] = true
	}
	if Class(200).Valid() {
		t.Fatal("Class(200) reported valid")
	}
	if !strings.HasPrefix(Class(200).String(), "class(") {
		t.Fatal("invalid class String not fallback form")
	}
}

func TestComponentKey(t *testing.T) {
	c := Component{Class: ClassOperatingSystem, Name: "ubuntu", Version: "22.04"}
	if c.Key() != "operating-system/ubuntu@22.04" {
		t.Fatalf("Key = %q", c.Key())
	}
	if c.Product() != "operating-system/ubuntu" {
		t.Fatalf("Product = %q", c.Product())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Component{Class: Class(99), Name: "x"}); err == nil {
		t.Fatal("invalid class accepted")
	}
	if _, err := New(Component{Class: ClassWallet, Name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestNewOverwritesSameClass(t *testing.T) {
	cfg := MustNew(
		Component{Class: ClassOperatingSystem, Name: "ubuntu", Version: "22.04"},
		Component{Class: ClassOperatingSystem, Name: "debian", Version: "12"},
	)
	c, ok := cfg.Component(ClassOperatingSystem)
	if !ok || c.Name != "debian" {
		t.Fatalf("component = %v, want debian", c)
	}
	if cfg.Len() != 1 {
		t.Fatalf("Len = %d, want 1", cfg.Len())
	}
}

func TestWithIsCopyOnWrite(t *testing.T) {
	base := MustNew(Component{Class: ClassWallet, Name: "builtin", Version: "1"})
	derived := base.With(Component{Class: ClassWallet, Name: "hw-ledger", Version: "2"})
	if c, _ := base.Component(ClassWallet); c.Name != "builtin" {
		t.Fatal("With mutated the receiver")
	}
	if c, _ := derived.Component(ClassWallet); c.Name != "hw-ledger" {
		t.Fatal("With did not apply")
	}
}

func TestCanonicalOrderIndependent(t *testing.T) {
	a := MustNew(
		Component{Class: ClassWallet, Name: "builtin", Version: "1"},
		Component{Class: ClassOperatingSystem, Name: "debian", Version: "12"},
	)
	b := MustNew(
		Component{Class: ClassOperatingSystem, Name: "debian", Version: "12"},
		Component{Class: ClassWallet, Name: "builtin", Version: "1"},
	)
	if a.Canonical() != b.Canonical() {
		t.Fatal("canonical form depends on insertion order")
	}
	if a.Digest() != b.Digest() {
		t.Fatal("digest depends on insertion order")
	}
	if !a.Equal(b) {
		t.Fatal("Equal false for identical configs")
	}
}

func TestDigestDistinguishesVersions(t *testing.T) {
	a := MustNew(Component{Class: ClassCryptoLibrary, Name: "openssl", Version: "3.0.8"})
	b := MustNew(Component{Class: ClassCryptoLibrary, Name: "openssl", Version: "3.0.9"})
	if a.Digest() == b.Digest() {
		t.Fatal("different versions share a digest")
	}
}

func TestEmptyConfiguration(t *testing.T) {
	var cfg Configuration
	if cfg.Len() != 0 {
		t.Fatal("zero config non-empty")
	}
	if cfg.String() != "config{}" {
		t.Fatalf("String = %q", cfg.String())
	}
	if cfg.HasTrustedHardware() {
		t.Fatal("zero config has trusted hardware")
	}
	// Digest of empty config must still be stable and non-panicking.
	if cfg.Digest() != (Configuration{}).Digest() {
		t.Fatal("empty digest unstable")
	}
}

func TestHasTrustedHardware(t *testing.T) {
	cfg := MustNew(Component{Class: ClassTrustedHardware, Name: "tpm2", Version: "01.59"})
	if !cfg.HasTrustedHardware() {
		t.Fatal("trusted hardware not detected")
	}
}

func TestComponentsCanonicalOrder(t *testing.T) {
	cfg := MustNew(
		Component{Class: ClassRuntime, Name: "musl", Version: "1"},
		Component{Class: ClassTrustedHardware, Name: "tpm2", Version: "1"},
	)
	comps := cfg.Components()
	if len(comps) != 2 || comps[0].Class != ClassTrustedHardware || comps[1].Class != ClassRuntime {
		t.Fatalf("components out of canonical order: %v", comps)
	}
}

func TestCatalogAddIdempotent(t *testing.T) {
	cat := NewCatalog()
	c := Component{Class: ClassDatabase, Name: "sqlite", Version: "3"}
	if err := cat.Add(c); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(c); err != nil {
		t.Fatal(err)
	}
	if cat.ClassCount(ClassDatabase) != 1 {
		t.Fatalf("duplicate add grew catalog: %d", cat.ClassCount(ClassDatabase))
	}
}

func TestCatalogAddValidation(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Add(Component{Class: Class(77), Name: "x"}); err == nil {
		t.Fatal("invalid class accepted")
	}
	if err := cat.Add(Component{Class: ClassWallet}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestCatalogChoicesIsCopy(t *testing.T) {
	cat := NewCatalog()
	cat.Add(Component{Class: ClassWallet, Name: "a", Version: "1"})
	got := cat.Choices(ClassWallet)
	got[0].Name = "mutated"
	if cat.Choices(ClassWallet)[0].Name != "a" {
		t.Fatal("Choices exposed internal slice")
	}
}

func TestSpaceSize(t *testing.T) {
	cat := NewCatalog()
	cat.Add(Component{Class: ClassOperatingSystem, Name: "a", Version: "1"})
	cat.Add(Component{Class: ClassOperatingSystem, Name: "b", Version: "1"})
	cat.Add(Component{Class: ClassWallet, Name: "w", Version: "1"})
	if got := cat.SpaceSize(ClassOperatingSystem, ClassWallet); got != 2 {
		t.Fatalf("SpaceSize = %d, want 2", got)
	}
	if got := cat.SpaceSize(); got != 2 {
		t.Fatalf("SpaceSize() = %d, want 2", got)
	}
	// Empty class contributes factor 1.
	if got := cat.SpaceSize(ClassDatabase); got != 1 {
		t.Fatalf("SpaceSize(empty) = %d, want 1", got)
	}
}

func TestEnumerate(t *testing.T) {
	cat := NewCatalog()
	cat.Add(Component{Class: ClassOperatingSystem, Name: "a", Version: "1"})
	cat.Add(Component{Class: ClassOperatingSystem, Name: "b", Version: "1"})
	cat.Add(Component{Class: ClassWallet, Name: "w1", Version: "1"})
	cat.Add(Component{Class: ClassWallet, Name: "w2", Version: "1"})
	cat.Add(Component{Class: ClassWallet, Name: "w3", Version: "1"})
	configs := cat.Enumerate()
	if len(configs) != 6 {
		t.Fatalf("enumerated %d configs, want 6", len(configs))
	}
	seen := make(map[ID]bool)
	for _, cfg := range configs {
		id := cfg.Digest()
		if seen[id] {
			t.Fatalf("duplicate configuration %s", cfg)
		}
		seen[id] = true
		if cfg.Len() != 2 {
			t.Fatalf("config %s missing classes", cfg)
		}
	}
	// Deterministic order.
	again := cat.Enumerate()
	for i := range configs {
		if !configs[i].Equal(again[i]) {
			t.Fatal("Enumerate order not deterministic")
		}
	}
}

func TestRandomConfigurationCoversClasses(t *testing.T) {
	cat := DefaultCatalog()
	rng := rand.New(rand.NewSource(1))
	cfg := cat.RandomConfiguration(rng)
	for _, class := range Classes() {
		if cat.ClassCount(class) > 0 {
			if _, ok := cfg.Component(class); !ok {
				t.Fatalf("random config missing populated class %s", class)
			}
		}
	}
}

func TestDefaultCatalogShape(t *testing.T) {
	cat := DefaultCatalog()
	// Remark 2: trusted hardware diversity is limited relative to OSes.
	if cat.ClassCount(ClassTrustedHardware) >= cat.ClassCount(ClassOperatingSystem) {
		t.Fatal("catalog should have fewer trusted-hardware choices than OS choices")
	}
	if cat.SpaceSize() < 1000 {
		t.Fatalf("default space suspiciously small: %d", cat.SpaceSize())
	}
	if got := len(cat.Enumerate(ClassTrustedHardware, ClassOperatingSystem)); got != cat.ClassCount(ClassTrustedHardware)*cat.ClassCount(ClassOperatingSystem) {
		t.Fatalf("enumerate size %d mismatch", got)
	}
}

// Property: digests are injective over enumerated spaces (no collisions among
// distinct canonical forms) and Equal agrees with digest equality.
func TestPropDigestConsistency(t *testing.T) {
	cat := DefaultCatalog()
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		a := cat.RandomConfiguration(rng)
		b := cat.RandomConfiguration(rng)
		if a.Equal(b) != (a.Digest() == b.Digest()) {
			return false
		}
		return a.Equal(a) && a.Digest() == a.Digest()
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func() bool { return f() }, cfg); err != nil {
		t.Fatal(err)
	}
}
