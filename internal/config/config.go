// Package config models replica configurations as the paper defines them
// (Sec. III-A): each replica is a machine running a stack of components —
// trusted hardware, system software (operating system), and application
// software (crypto library, consensus module, wallet/key management, plus
// auxiliary COTS components such as databases and language runtimes).
//
// A Configuration is the attestable identity of that stack. Two replicas
// share a fault domain exactly when their configurations share the affected
// component (internal/vuln performs that matching). The complete space of
// attestable configurations D = {d1, ..., dk} from Sec. IV-A is modelled by
// Space.
package config

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cryptoutil"
)

// Class identifies a component class in the replica stack.
type Class uint8

// Component classes, ordered roughly by the paper's presentation:
// trusted hardware first, then system software, then application software.
const (
	ClassTrustedHardware Class = iota // TEE/TPM (Sec. III-A "Trusted hardware")
	ClassOperatingSystem              // system software
	ClassCryptoLibrary                // application software: crypto implementation
	ClassConsensusModule              // application software: consensus implementation
	ClassWallet                       // application software: key/account management
	ClassDatabase                     // auxiliary COTS component
	ClassRuntime                      // language runtime / VM
	numClasses
)

// Classes lists every component class in canonical order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// String returns the canonical lowercase name of the class.
func (c Class) String() string {
	switch c {
	case ClassTrustedHardware:
		return "trusted-hardware"
	case ClassOperatingSystem:
		return "operating-system"
	case ClassCryptoLibrary:
		return "crypto-library"
	case ClassConsensusModule:
		return "consensus-module"
	case ClassWallet:
		return "wallet"
	case ClassDatabase:
		return "database"
	case ClassRuntime:
		return "runtime"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Valid reports whether c names a defined class.
func (c Class) Valid() bool { return c < numClasses }

// ParseClass maps a canonical class name (the String form, e.g.
// "operating-system") back to its Class. Serialized configurations — the
// scenario Timeline JSON spec among them — store classes by name so the
// encoding stays readable and stable if the numeric order ever changes.
func ParseClass(s string) (Class, error) {
	for _, c := range Classes() {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("config: unknown component class %q", s)
}

// Component is one concrete product version within a class, e.g.
// {ClassOperatingSystem, "ubuntu", "22.04"}.
type Component struct {
	Class   Class
	Name    string
	Version string
}

// Key returns the canonical string identity of the component. Vulnerability
// matching and configuration digests are computed over this form.
func (c Component) Key() string {
	return c.Class.String() + "/" + c.Name + "@" + c.Version
}

// Product returns the class/name identity ignoring the version, used for
// version-range vulnerability matching.
func (c Component) Product() string {
	return c.Class.String() + "/" + c.Name
}

func (c Component) String() string { return c.Key() }

// Configuration is a full replica stack: at most one component per class.
// The zero value is an empty configuration; build with New or Builder-style
// With calls. Configuration values are immutable once built via With.
type Configuration struct {
	components map[Class]Component
}

// New returns a configuration holding the given components. Later components
// of the same class overwrite earlier ones. Invalid classes are rejected.
func New(components ...Component) (Configuration, error) {
	cfg := Configuration{components: make(map[Class]Component, len(components))}
	for _, c := range components {
		if !c.Class.Valid() {
			return Configuration{}, fmt.Errorf("config: invalid class %d for component %q", c.Class, c.Name)
		}
		if c.Name == "" {
			return Configuration{}, fmt.Errorf("config: empty component name in class %s", c.Class)
		}
		cfg.components[c.Class] = c
	}
	return cfg, nil
}

// MustNew is New for test fixtures and generators with known-good inputs;
// it panics on error.
func MustNew(components ...Component) Configuration {
	cfg, err := New(components...)
	if err != nil {
		panic(err)
	}
	return cfg
}

// With returns a copy of the configuration with component c set, replacing
// any existing component of the same class.
func (cfg Configuration) With(c Component) Configuration {
	out := Configuration{components: make(map[Class]Component, len(cfg.components)+1)}
	for k, v := range cfg.components {
		out.components[k] = v
	}
	out.components[c.Class] = c
	return out
}

// Component returns the component of the given class, if present.
func (cfg Configuration) Component(class Class) (Component, bool) {
	c, ok := cfg.components[class]
	return c, ok
}

// Components returns all components in canonical class order.
func (cfg Configuration) Components() []Component {
	out := make([]Component, 0, len(cfg.components))
	for _, class := range Classes() {
		if c, ok := cfg.components[class]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Len reports the number of populated classes.
func (cfg Configuration) Len() int { return len(cfg.components) }

// HasTrustedHardware reports whether the configuration includes a trusted
// hardware component, which the registry uses for the paper's two-tier
// (attestable vs not) replica model.
func (cfg Configuration) HasTrustedHardware() bool {
	_, ok := cfg.components[ClassTrustedHardware]
	return ok
}

// Canonical returns the canonical textual encoding: class-ordered component
// keys joined by newlines. Digest and equality are defined over this form.
func (cfg Configuration) Canonical() string {
	parts := make([]string, 0, len(cfg.components))
	for _, c := range cfg.Components() {
		parts = append(parts, c.Key())
	}
	return strings.Join(parts, "\n")
}

// ID is the attestable identity of a configuration: the SHA-256 digest of
// its canonical encoding. This is the value a TPM/TEE quote covers.
type ID = cryptoutil.Digest

// Digest returns the configuration's attestable identity.
func (cfg Configuration) Digest() ID {
	return cryptoutil.Hash([]byte("repro/config/v1"), []byte(cfg.Canonical()))
}

// Equal reports whether two configurations contain identical components.
func (cfg Configuration) Equal(other Configuration) bool {
	return cfg.Canonical() == other.Canonical()
}

func (cfg Configuration) String() string {
	if len(cfg.components) == 0 {
		return "config{}"
	}
	return "config{" + strings.ReplaceAll(cfg.Canonical(), "\n", ", ") + "}"
}

// Catalog is the set of available component choices per class — the raw
// material from which the configuration space D is formed. It models the
// paper's observation that some classes offer little variety (trusted
// hardware, Remark 2) and others more (operating systems).
type Catalog struct {
	choices map[Class][]Component
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{choices: make(map[Class][]Component)}
}

// Add registers a component choice. Duplicate keys within a class are
// ignored so catalogs can be assembled idempotently.
func (cat *Catalog) Add(c Component) error {
	if !c.Class.Valid() {
		return fmt.Errorf("config: invalid class %d", c.Class)
	}
	if c.Name == "" {
		return fmt.Errorf("config: empty component name in class %s", c.Class)
	}
	for _, existing := range cat.choices[c.Class] {
		if existing.Key() == c.Key() {
			return nil
		}
	}
	cat.choices[c.Class] = append(cat.choices[c.Class], c)
	return nil
}

// Choices returns the available components of a class in registration order.
func (cat *Catalog) Choices(class Class) []Component {
	return append([]Component(nil), cat.choices[class]...)
}

// ClassCount reports the number of choices available in a class.
func (cat *Catalog) ClassCount(class Class) int { return len(cat.choices[class]) }

// SpaceSize returns the size of the full configuration space over the given
// classes: the product of per-class choice counts. Classes with no choices
// contribute a factor of 1 (the class is simply absent).
func (cat *Catalog) SpaceSize(classes ...Class) int {
	if len(classes) == 0 {
		classes = Classes()
	}
	size := 1
	for _, class := range classes {
		if n := len(cat.choices[class]); n > 0 {
			size *= n
		}
	}
	return size
}

// Enumerate generates every configuration over the given classes (or all
// classes with at least one choice, if none given), in deterministic order.
// It is intended for small spaces; callers should check SpaceSize first.
func (cat *Catalog) Enumerate(classes ...Class) []Configuration {
	if len(classes) == 0 {
		for _, class := range Classes() {
			if len(cat.choices[class]) > 0 {
				classes = append(classes, class)
			}
		}
	}
	configs := []Configuration{{components: map[Class]Component{}}}
	for _, class := range classes {
		choices := cat.choices[class]
		if len(choices) == 0 {
			continue
		}
		next := make([]Configuration, 0, len(configs)*len(choices))
		for _, base := range configs {
			for _, c := range choices {
				next = append(next, base.With(c))
			}
		}
		configs = next
	}
	sort.Slice(configs, func(i, j int) bool {
		return configs[i].Canonical() < configs[j].Canonical()
	})
	return configs
}

// Rand is the minimal random interface the generator needs, satisfied by
// *math/rand.Rand; accepting the interface keeps call sites testable.
type Rand interface {
	Intn(n int) int
}

// RandomConfiguration draws one component uniformly per populated class.
func (cat *Catalog) RandomConfiguration(rng Rand) Configuration {
	cfg := Configuration{components: make(map[Class]Component)}
	for _, class := range Classes() {
		choices := cat.choices[class]
		if len(choices) == 0 {
			continue
		}
		cfg.components[class] = choices[rng.Intn(len(choices))]
	}
	return cfg
}

// DefaultCatalog returns a realistic catalog mirroring the diversity the
// paper discusses: few trusted-hardware options (Remark 2: "the diversity of
// trusted hardware is limited"), several operating systems, a handful of
// crypto libraries, consensus modules and wallets.
func DefaultCatalog() *Catalog {
	cat := NewCatalog()
	add := func(class Class, name, version string) {
		// Inputs below are static and valid; Add only fails on bad input.
		if err := cat.Add(Component{Class: class, Name: name, Version: version}); err != nil {
			panic(err)
		}
	}
	// Trusted hardware: deliberately scarce.
	add(ClassTrustedHardware, "intel-sgx", "2.19")
	add(ClassTrustedHardware, "arm-trustzone", "1.0")
	add(ClassTrustedHardware, "amd-psp", "5.0")
	add(ClassTrustedHardware, "tpm2", "01.59")
	// Operating systems.
	add(ClassOperatingSystem, "ubuntu", "22.04")
	add(ClassOperatingSystem, "debian", "12")
	add(ClassOperatingSystem, "fedora", "38")
	add(ClassOperatingSystem, "freebsd", "13.2")
	add(ClassOperatingSystem, "openbsd", "7.3")
	add(ClassOperatingSystem, "windows-server", "2022")
	// Crypto libraries.
	add(ClassCryptoLibrary, "openssl", "3.0.8")
	add(ClassCryptoLibrary, "boringssl", "2023.02")
	add(ClassCryptoLibrary, "libsodium", "1.0.18")
	add(ClassCryptoLibrary, "golang-crypto", "1.21")
	// Consensus modules (clients).
	add(ClassConsensusModule, "bitcoin-core", "24.0")
	add(ClassConsensusModule, "btcd", "0.23")
	add(ClassConsensusModule, "bcoin", "2.2")
	add(ClassConsensusModule, "tendermint", "0.37")
	add(ClassConsensusModule, "hotstuff-ref", "1.0")
	// Wallets / key management.
	add(ClassWallet, "builtin", "1.0")
	add(ClassWallet, "hw-ledger", "2.1")
	add(ClassWallet, "hw-trezor", "1.12")
	add(ClassWallet, "remote-custodian", "1.0")
	// Databases.
	add(ClassDatabase, "leveldb", "1.23")
	add(ClassDatabase, "rocksdb", "7.9")
	add(ClassDatabase, "sqlite", "3.41")
	// Runtimes.
	add(ClassRuntime, "glibc", "2.37")
	add(ClassRuntime, "musl", "1.2.3")
	return cat
}
