// Package registry implements permissionless replica membership with
// configuration discovery (the paper's Challenge 1). Replicas join and
// leave at any time; each join either carries a verified attestation quote
// (trusted-hardware tier) or a self-declared configuration (untrusted
// tier). The registry maintains the live configuration distribution that
// internal/diversity measures and internal/core polices, and exposes the
// paper's concluding two-tier idea: attested and non-attested replicas can
// carry different voting weights.
//
// Storage is bucketed for scale: replicas live in buckets keyed by their
// configuration digest, and within a bucket in equivalence groups of equal
// (power, tier, patch latency). Every mutation touches only its own
// bucket(s) in O(log) time, aggregates (tier counts, per-bucket power) are
// maintained incrementally, and snapshots are built by delta against the
// previous snapshot — churn cost tracks the change, not the population.
package registry

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/attest"
	"repro/internal/config"
)

// Errors returned by registry operations.
var (
	ErrDuplicateReplica = errors.New("registry: replica already joined")
	ErrUnknownReplica   = errors.New("registry: unknown replica")
	ErrMeasurement      = errors.New("registry: quote measurement does not match declared configuration")
)

// ReplicaID names a replica.
type ReplicaID string

// Tier distinguishes attested from self-declared membership.
type Tier uint8

// Membership tiers (paper's conclusion: "two types of replicas ... one
// supporting configuration attestation and one does not").
const (
	TierDeclared Tier = iota // configuration self-declared, unverified
	TierAttested             // configuration proven by a verified quote
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierDeclared:
		return "declared"
	case TierAttested:
		return "attested"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// Record is one live replica.
type Record struct {
	ID           ReplicaID
	Config       config.Configuration
	Power        float64
	Tier         Tier
	VoteKey      ed25519.PublicKey
	JoinedAt     time.Duration
	PatchLatency time.Duration

	// digest caches Config.Digest() (a SHA-256) so mutations locate their
	// bucket without re-hashing; set on join and updated by Migrate.
	digest config.ID
}

// Weighting assigns per-tier voting-weight multipliers, the paper's
// "different voting right/weight" for the two replica types.
type Weighting struct {
	Attested float64
	Declared float64
}

// DefaultWeighting counts every replica's power at face value.
var DefaultWeighting = Weighting{Attested: 1, Declared: 1}

// Validate checks the multipliers are usable.
func (w Weighting) Validate() error {
	for _, v := range []float64{w.Attested, w.Declared} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("registry: invalid weighting %+v", w)
		}
	}
	if w.Attested == 0 && w.Declared == 0 {
		return fmt.Errorf("registry: weighting zeroes out all power")
	}
	return nil
}

// Apply returns the effective power of a record under the weighting.
func (w Weighting) Apply(r *Record) float64 {
	if r.Tier == TierAttested {
		return r.Power * w.Attested
	}
	return r.Power * w.Declared
}

// tierMultiplier returns the weight multiplier for a tier.
func (w Weighting) tierMultiplier(t Tier) float64 {
	if t == TierAttested {
		return w.Attested
	}
	return w.Declared
}

// group is one equivalence class within a bucket: members sharing (power,
// tier, patch latency). Member names are kept ascending; the slice is
// shared with exported snapshots via copy-on-write — a mutation copies it
// only if a snapshot marked it shared since the last copy, so sustained
// churn on an unexported group mutates in place.
type group struct {
	power   float64
	tier    Tier
	latency time.Duration
	names   []string // ascending replica IDs

	// shared marks the names slice as exported into a snapshot and hence
	// immutable. Set under the registry read lock serialized by snapMu;
	// read and cleared under the write lock — never raced.
	shared bool
}

// cmp orders groups by (power, tier, latency) ascending; 0 means same group.
func (g *group) cmp(power float64, tier Tier, latency time.Duration) int {
	switch {
	case g.power != power:
		if g.power < power {
			return -1
		}
		return 1
	case g.tier != tier:
		if g.tier < tier {
			return -1
		}
		return 1
	case g.latency != latency:
		if g.latency < latency {
			return -1
		}
		return 1
	}
	return 0
}

// insert adds a name keeping ascending order, copying first when the slice
// is shared with a snapshot.
func (g *group) insert(name string) {
	i := sort.SearchStrings(g.names, name)
	if g.shared {
		ns := make([]string, len(g.names)+1)
		copy(ns, g.names[:i])
		ns[i] = name
		copy(ns[i+1:], g.names[i:])
		g.names = ns
		g.shared = false
		return
	}
	g.names = append(g.names, "")
	copy(g.names[i+1:], g.names[i:])
	g.names[i] = name
}

// remove deletes a name, copying first when the slice is shared.
func (g *group) remove(name string) {
	i := sort.SearchStrings(g.names, name)
	if g.shared {
		ns := make([]string, len(g.names)-1)
		copy(ns, g.names[:i])
		copy(ns[i:], g.names[i+1:])
		g.names = ns
		g.shared = false
		return
	}
	copy(g.names[i:], g.names[i+1:])
	g.names = g.names[:len(g.names)-1]
}

// bucket holds every replica sharing one configuration digest. The
// configuration is immutable for the bucket's lifetime (the key is its
// digest), which is what lets downstream vulnerability indexes compute a
// bucket's matching set once.
type bucket struct {
	label  string // digest string, the diversity label
	cfg    config.Configuration
	count  int
	groups []*group // (power, tier, latency) ascending
}

// groupFor returns the bucket's group for the key, creating it in sorted
// position when absent.
func (b *bucket) groupFor(power float64, tier Tier, latency time.Duration) *group {
	i := sort.Search(len(b.groups), func(i int) bool {
		return b.groups[i].cmp(power, tier, latency) >= 0
	})
	if i < len(b.groups) && b.groups[i].cmp(power, tier, latency) == 0 {
		return b.groups[i]
	}
	g := &group{power: power, tier: tier, latency: latency}
	b.groups = append(b.groups, nil)
	copy(b.groups[i+1:], b.groups[i:])
	b.groups[i] = g
	return g
}

// dropGroup removes an emptied group.
func (b *bucket) dropGroup(g *group) {
	for i, cand := range b.groups {
		if cand == g {
			copy(b.groups[i:], b.groups[i+1:])
			b.groups = b.groups[:len(b.groups)-1]
			return
		}
	}
}

// journalEntry records which bucket(s) one mutation generation touched, so
// Snapshot can rebuild only those buckets (delta-apply) instead of the
// whole view.
type journalEntry struct {
	gen  uint64
	keys [2]config.ID
	n    uint8
}

const (
	// journalKeep bounds the mutation journal; a snapshot older than this
	// many generations falls back to a full rebuild.
	journalKeep = 4096
	journalMax  = 2 * journalKeep
)

// Registry tracks live replicas. Mutation (Join*/Leave/SetPower/Migrate)
// and reads are synchronized internally: churn may race snapshot readers
// (Monitor.Assess, a live Watch stream), and every reader observes either
// the pre- or the post-mutation membership, never a torn one. The
// scenario engine (internal/scenario) additionally serializes mutation
// and assessment on one scheduler, which is what makes its runs
// replayable; synchronization here is what makes them safe.
type Registry struct {
	// mu guards records, order, buckets, the aggregates, epoch and gen.
	// Mutators take the write lock; readers (Get, Records, TierCounts,
	// Snapshot construction) the read lock, so a snapshot can never
	// observe a half-applied mutation.
	mu        sync.RWMutex
	authority *attest.Authority
	records   map[ReplicaID]*Record
	order     []ReplicaID // ascending; maintained incrementally per mutation
	epoch     uint64
	now       func() time.Duration

	buckets  map[config.ID]*bucket
	attested int // replicas per tier, maintained incrementally
	declared int

	// gen counts mutations; journal records which buckets each generation
	// touched (ring-trimmed to journalKeep entries).
	gen     uint64
	journal []journalEntry

	snapMu sync.Mutex
	snaps  map[Weighting]*Snapshot
}

// New creates a registry. authority may be nil when only declared joins are
// used; now supplies the virtual clock (nil means a constant zero clock).
func New(authority *attest.Authority, now func() time.Duration) *Registry {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Registry{
		authority: authority,
		records:   make(map[ReplicaID]*Record),
		buckets:   make(map[config.ID]*bucket),
		now:       now,
	}
}

// JoinDeclared admits a replica on its own word about its configuration.
func (r *Registry) JoinDeclared(id ReplicaID, cfg config.Configuration, power float64, patchLatency time.Duration) error {
	return r.join(&Record{
		ID: id, Config: cfg, Power: power, Tier: TierDeclared,
		PatchLatency: patchLatency,
	})
}

// JoinAttested admits a replica whose configuration is proven by quote:
// the quote must verify against the registry's authority and its
// measurement must equal cfg.Digest() (plain mode) — the configuration the
// replica claims is the one the trusted hardware measured. The quote's vote
// key is recorded for vote binding (Remark 3).
func (r *Registry) JoinAttested(id ReplicaID, cfg config.Configuration, q attest.Quote, power float64, patchLatency time.Duration) error {
	if r.authority == nil {
		return errors.New("registry: no attestation authority configured")
	}
	if err := r.authority.Verify(q); err != nil {
		return fmt.Errorf("registry: quote verification: %w", err)
	}
	if q.Committed {
		return errors.New("registry: committed quotes need JoinAttestedCommitted")
	}
	if q.Measurement != cfg.Digest() {
		return ErrMeasurement
	}
	return r.join(&Record{
		ID: id, Config: cfg, Power: power, Tier: TierAttested,
		VoteKey: q.VotePublicKey, PatchLatency: patchLatency,
	})
}

// JoinAttestedCommitted admits a replica using a privacy-preserving
// committed quote plus an opening (cfg, salt) shown to the registry acting
// as auditor. The public record still stores the real configuration —
// the registry is the trusted auditor here; a production system would store
// only the commitment and aggregate diversity through a private-set
// protocol.
func (r *Registry) JoinAttestedCommitted(id ReplicaID, cfg config.Configuration, salt []byte, q attest.Quote, power float64, patchLatency time.Duration) error {
	if r.authority == nil {
		return errors.New("registry: no attestation authority configured")
	}
	if err := r.authority.Verify(q); err != nil {
		return fmt.Errorf("registry: quote verification: %w", err)
	}
	if err := attest.VerifyOpening(q, cfg, salt); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	return r.join(&Record{
		ID: id, Config: cfg, Power: power, Tier: TierAttested,
		VoteKey: q.VotePublicKey, PatchLatency: patchLatency,
	})
}

func (r *Registry) join(rec *Record) error {
	if rec.ID == "" {
		return errors.New("registry: empty replica id")
	}
	if rec.Power < 0 || math.IsNaN(rec.Power) || math.IsInf(rec.Power, 0) {
		return fmt.Errorf("registry: invalid power %v", rec.Power)
	}
	rec.digest = rec.Config.Digest()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.records[rec.ID]; exists {
		return fmt.Errorf("%w: %s", ErrDuplicateReplica, rec.ID)
	}
	rec.JoinedAt = r.now()
	r.records[rec.ID] = rec
	r.orderInsert(rec.ID)
	r.bucketAdd(rec)
	if rec.Tier == TierAttested {
		r.attested++
	} else {
		r.declared++
	}
	r.bumpGen(rec.digest)
	return nil
}

// Leave removes a replica.
func (r *Registry) Leave(id ReplicaID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.records[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownReplica, id)
	}
	r.bucketRemove(rec)
	r.orderRemove(id)
	if rec.Tier == TierAttested {
		r.attested--
	} else {
		r.declared--
	}
	delete(r.records, id)
	r.bumpGen(rec.digest)
	return nil
}

// SetPower updates a replica's raw voting power (hash-rate drift, stake
// movement). Only the replica's own equivalence groups are touched.
func (r *Registry) SetPower(id ReplicaID, power float64) error {
	if power < 0 || math.IsNaN(power) || math.IsInf(power, 0) {
		return fmt.Errorf("registry: invalid power %v", power)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.records[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownReplica, id)
	}
	r.bucketRemove(rec)
	rec.Power = power
	r.bucketAdd(rec)
	r.bumpGen(rec.digest)
	return nil
}

// Migrate replaces a replica's configuration in place — a product or
// version migration (OS upgrade, client switch, patched build rollout)
// without the replica leaving the membership. The new configuration is
// self-declared: an attested replica drops to the declared tier until it
// re-joins with a fresh quote covering the new stack, mirroring how a
// real upgrade invalidates the previous measurement.
func (r *Registry) Migrate(id ReplicaID, cfg config.Configuration) error {
	digest := cfg.Digest()
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.records[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownReplica, id)
	}
	oldKey := rec.digest
	r.bucketRemove(rec)
	if rec.Tier == TierAttested {
		r.attested--
		r.declared++
	}
	rec.Config = cfg
	rec.Tier = TierDeclared
	rec.VoteKey = nil
	rec.digest = digest
	r.bucketAdd(rec)
	r.bumpGen(oldKey, rec.digest)
	return nil
}

// bucketAdd places rec in its configuration bucket, creating bucket and
// group as needed. r.mu must be held for writing.
func (r *Registry) bucketAdd(rec *Record) {
	b := r.buckets[rec.digest]
	if b == nil {
		b = &bucket{label: rec.digest.String(), cfg: rec.Config}
		r.buckets[rec.digest] = b
	}
	b.groupFor(rec.Power, rec.Tier, rec.PatchLatency).insert(string(rec.ID))
	b.count++
}

// bucketRemove takes rec out of its bucket, dropping emptied groups and
// buckets. r.mu must be held for writing.
func (r *Registry) bucketRemove(rec *Record) {
	b := r.buckets[rec.digest]
	g := b.groupFor(rec.Power, rec.Tier, rec.PatchLatency)
	g.remove(string(rec.ID))
	if len(g.names) == 0 {
		b.dropGroup(g)
	}
	b.count--
	if b.count == 0 {
		delete(r.buckets, rec.digest)
	}
}

// bumpGen advances the mutation generation and journals the touched bucket
// keys, trimming the journal to its retention window.
func (r *Registry) bumpGen(keys ...config.ID) {
	r.gen++
	e := journalEntry{gen: r.gen, n: uint8(len(keys))}
	copy(e.keys[:], keys)
	r.journal = append(r.journal, e)
	if len(r.journal) > journalMax {
		n := copy(r.journal, r.journal[len(r.journal)-journalKeep:])
		r.journal = r.journal[:n]
	}
}

// orderInsert keeps r.order ascending; appends (the common monotonic-ID
// join pattern) are O(1).
func (r *Registry) orderInsert(id ReplicaID) {
	n := len(r.order)
	if n == 0 || r.order[n-1] < id {
		r.order = append(r.order, id)
		return
	}
	i := sort.Search(n, func(i int) bool { return r.order[i] >= id })
	r.order = append(r.order, "")
	copy(r.order[i+1:], r.order[i:])
	r.order[i] = id
}

func (r *Registry) orderRemove(id ReplicaID) {
	i := sort.Search(len(r.order), func(i int) bool { return r.order[i] >= id })
	copy(r.order[i:], r.order[i+1:])
	r.order = r.order[:len(r.order)-1]
}

// Get returns a copy of a replica's record.
func (r *Registry) Get(id ReplicaID) (Record, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.records[id]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// Size reports the number of live replicas.
func (r *Registry) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.records)
}

// Epoch returns the current epoch counter.
func (r *Registry) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// AdvanceEpoch bumps the epoch counter; snapshots are taken per epoch by
// callers that want history.
func (r *Registry) AdvanceEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch++
	return r.epoch
}

// Records returns copies of all records sorted by ID. The order is
// maintained incrementally by mutations, so this is one allocation and a
// linear copy — no per-call sort.
func (r *Registry) Records() []Record {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Record, len(r.order))
	for i, id := range r.order {
		out[i] = *r.records[id]
	}
	return out
}

// Generation returns the mutation counter; it advances on every
// Join*/Leave/SetPower/Migrate and keys snapshot invalidation.
func (r *Registry) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// TierCounts reports how many replicas sit in each tier and the raw power
// they hold. Counts are maintained incrementally; power sums run over the
// equivalence groups (O(#groups), not O(#replicas)).
func (r *Registry) TierCounts() (attested, declared int, attestedPower, declaredPower float64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	attested, declared = r.attested, r.declared
	for _, b := range r.buckets {
		for _, g := range b.groups {
			pw := float64(len(g.names)) * g.power
			if g.tier == TierAttested {
				attestedPower += pw
			} else {
				declaredPower += pw
			}
		}
	}
	return attested, declared, attestedPower, declaredPower
}
