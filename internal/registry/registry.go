// Package registry implements permissionless replica membership with
// configuration discovery (the paper's Challenge 1). Replicas join and
// leave at any time; each join either carries a verified attestation quote
// (trusted-hardware tier) or a self-declared configuration (untrusted
// tier). The registry maintains the live configuration distribution that
// internal/diversity measures and internal/core polices, and exposes the
// paper's concluding two-tier idea: attested and non-attested replicas can
// carry different voting weights.
package registry

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/attest"
	"repro/internal/config"
	"repro/internal/diversity"
	"repro/internal/vuln"
)

// Errors returned by registry operations.
var (
	ErrDuplicateReplica = errors.New("registry: replica already joined")
	ErrUnknownReplica   = errors.New("registry: unknown replica")
	ErrMeasurement      = errors.New("registry: quote measurement does not match declared configuration")
)

// ReplicaID names a replica.
type ReplicaID string

// Tier distinguishes attested from self-declared membership.
type Tier uint8

// Membership tiers (paper's conclusion: "two types of replicas ... one
// supporting configuration attestation and one does not").
const (
	TierDeclared Tier = iota // configuration self-declared, unverified
	TierAttested             // configuration proven by a verified quote
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierDeclared:
		return "declared"
	case TierAttested:
		return "attested"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// Record is one live replica.
type Record struct {
	ID           ReplicaID
	Config       config.Configuration
	Power        float64
	Tier         Tier
	VoteKey      ed25519.PublicKey
	JoinedAt     time.Duration
	PatchLatency time.Duration
}

// Weighting assigns per-tier voting-weight multipliers, the paper's
// "different voting right/weight" for the two replica types.
type Weighting struct {
	Attested float64
	Declared float64
}

// DefaultWeighting counts every replica's power at face value.
var DefaultWeighting = Weighting{Attested: 1, Declared: 1}

// Validate checks the multipliers are usable.
func (w Weighting) Validate() error {
	for _, v := range []float64{w.Attested, w.Declared} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("registry: invalid weighting %+v", w)
		}
	}
	if w.Attested == 0 && w.Declared == 0 {
		return fmt.Errorf("registry: weighting zeroes out all power")
	}
	return nil
}

// Apply returns the effective power of a record under the weighting.
func (w Weighting) Apply(r *Record) float64 {
	if r.Tier == TierAttested {
		return r.Power * w.Attested
	}
	return r.Power * w.Declared
}

// Registry tracks live replicas. Mutation (Join*/Leave/SetPower/Migrate)
// and reads are synchronized internally: churn may race snapshot readers
// (Monitor.Assess, a live Watch stream), and every reader observes either
// the pre- or the post-mutation membership, never a torn one. The
// scenario engine (internal/scenario) additionally serializes mutation
// and assessment on one scheduler, which is what makes its runs
// replayable; synchronization here is what makes them safe.
type Registry struct {
	// mu guards records, epoch and gen. Mutators take the write lock;
	// readers (Get, Records, TierCounts, Snapshot construction) the read
	// lock, so a snapshot can never observe a half-applied mutation.
	mu        sync.RWMutex
	authority *attest.Authority
	records   map[ReplicaID]*Record
	epoch     uint64
	now       func() time.Duration

	// gen counts mutations; every Join*/Leave/SetPower/Migrate bumps it,
	// which invalidates all cached snapshots at the next Snapshot call.
	gen uint64

	snapMu  sync.Mutex
	snaps   map[Weighting]*Snapshot
	snapGen uint64 // generation snaps was built against
}

// New creates a registry. authority may be nil when only declared joins are
// used; now supplies the virtual clock (nil means a constant zero clock).
func New(authority *attest.Authority, now func() time.Duration) *Registry {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Registry{
		authority: authority,
		records:   make(map[ReplicaID]*Record),
		now:       now,
	}
}

// JoinDeclared admits a replica on its own word about its configuration.
func (r *Registry) JoinDeclared(id ReplicaID, cfg config.Configuration, power float64, patchLatency time.Duration) error {
	return r.join(&Record{
		ID: id, Config: cfg, Power: power, Tier: TierDeclared,
		PatchLatency: patchLatency,
	})
}

// JoinAttested admits a replica whose configuration is proven by quote:
// the quote must verify against the registry's authority and its
// measurement must equal cfg.Digest() (plain mode) — the configuration the
// replica claims is the one the trusted hardware measured. The quote's vote
// key is recorded for vote binding (Remark 3).
func (r *Registry) JoinAttested(id ReplicaID, cfg config.Configuration, q attest.Quote, power float64, patchLatency time.Duration) error {
	if r.authority == nil {
		return errors.New("registry: no attestation authority configured")
	}
	if err := r.authority.Verify(q); err != nil {
		return fmt.Errorf("registry: quote verification: %w", err)
	}
	if q.Committed {
		return errors.New("registry: committed quotes need JoinAttestedCommitted")
	}
	if q.Measurement != cfg.Digest() {
		return ErrMeasurement
	}
	return r.join(&Record{
		ID: id, Config: cfg, Power: power, Tier: TierAttested,
		VoteKey: q.VotePublicKey, PatchLatency: patchLatency,
	})
}

// JoinAttestedCommitted admits a replica using a privacy-preserving
// committed quote plus an opening (cfg, salt) shown to the registry acting
// as auditor. The public record still stores the real configuration —
// the registry is the trusted auditor here; a production system would store
// only the commitment and aggregate diversity through a private-set
// protocol.
func (r *Registry) JoinAttestedCommitted(id ReplicaID, cfg config.Configuration, salt []byte, q attest.Quote, power float64, patchLatency time.Duration) error {
	if r.authority == nil {
		return errors.New("registry: no attestation authority configured")
	}
	if err := r.authority.Verify(q); err != nil {
		return fmt.Errorf("registry: quote verification: %w", err)
	}
	if err := attest.VerifyOpening(q, cfg, salt); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	return r.join(&Record{
		ID: id, Config: cfg, Power: power, Tier: TierAttested,
		VoteKey: q.VotePublicKey, PatchLatency: patchLatency,
	})
}

func (r *Registry) join(rec *Record) error {
	if rec.ID == "" {
		return errors.New("registry: empty replica id")
	}
	if rec.Power < 0 || math.IsNaN(rec.Power) || math.IsInf(rec.Power, 0) {
		return fmt.Errorf("registry: invalid power %v", rec.Power)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.records[rec.ID]; exists {
		return fmt.Errorf("%w: %s", ErrDuplicateReplica, rec.ID)
	}
	rec.JoinedAt = r.now()
	r.records[rec.ID] = rec
	r.gen++
	return nil
}

// Leave removes a replica.
func (r *Registry) Leave(id ReplicaID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.records[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownReplica, id)
	}
	delete(r.records, id)
	r.gen++
	return nil
}

// SetPower updates a replica's raw voting power (hash-rate drift, stake
// movement).
func (r *Registry) SetPower(id ReplicaID, power float64) error {
	if power < 0 || math.IsNaN(power) || math.IsInf(power, 0) {
		return fmt.Errorf("registry: invalid power %v", power)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.records[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownReplica, id)
	}
	rec.Power = power
	r.gen++
	return nil
}

// Migrate replaces a replica's configuration in place — a product or
// version migration (OS upgrade, client switch, patched build rollout)
// without the replica leaving the membership. The new configuration is
// self-declared: an attested replica drops to the declared tier until it
// re-joins with a fresh quote covering the new stack, mirroring how a
// real upgrade invalidates the previous measurement.
func (r *Registry) Migrate(id ReplicaID, cfg config.Configuration) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.records[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownReplica, id)
	}
	rec.Config = cfg
	rec.Tier = TierDeclared
	rec.VoteKey = nil
	r.gen++
	return nil
}

// Get returns a copy of a replica's record.
func (r *Registry) Get(id ReplicaID) (Record, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.records[id]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// Size reports the number of live replicas.
func (r *Registry) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.records)
}

// Epoch returns the current epoch counter.
func (r *Registry) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// AdvanceEpoch bumps the epoch counter; snapshots are taken per epoch by
// callers that want history.
func (r *Registry) AdvanceEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch++
	return r.epoch
}

// Records returns copies of all records sorted by ID.
func (r *Registry) Records() []Record {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.recordsLocked()
}

// recordsLocked is Records without locking; r.mu must be held (read or
// write). RLock is not reentrant under a waiting writer, so internal
// callers that already hold the lock must use this form.
func (r *Registry) recordsLocked() []Record {
	out := make([]Record, 0, len(r.records))
	for _, rec := range r.records {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Snapshot is the memoized read-side view of the membership under one
// weighting: every derived object Monitor.Assess needs, computed once per
// (mutation generation, weighting). All fields are shared across callers
// and must be treated as read-only; pointer identity is stable until the
// registry mutates, so callers can cache per-snapshot derivations (e.g. a
// vuln.Injector) by comparing pointers.
type Snapshot struct {
	// Generation is the mutation generation the snapshot was built at.
	Generation uint64
	// Weighting is the tier weighting the snapshot applies.
	Weighting Weighting
	// Population is the weighted membership for diversity metrics.
	Population *diversity.Population
	// Distribution is Population's power distribution over config digests.
	Distribution diversity.Distribution
	// Replicas is the membership adapted for vuln fault injection,
	// ID-sorted. Read-only: do not modify elements or append.
	Replicas []vuln.Replica
}

// Snapshot returns the memoized derived view of the membership under w,
// rebuilding it only when a mutation (Join*/Leave/SetPower/Migrate) has
// happened since it was last computed. Monitor.Watch ticks on an unchanged
// registry therefore skip the per-tick digesting, sorting, and
// aggregation. Snapshot holds the registry read lock for the whole build,
// so a snapshot taken during churn is always internally consistent: its
// Generation, Population and Replicas all describe the same instant.
func (r *Registry) Snapshot(w Weighting) (*Snapshot, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	if r.snapGen != r.gen || r.snaps == nil {
		r.snaps = make(map[Weighting]*Snapshot)
		r.snapGen = r.gen
	}
	if s, ok := r.snaps[w]; ok {
		return s, nil
	}
	records := r.recordsLocked()
	members := make([]diversity.Member, 0, len(records))
	replicas := make([]vuln.Replica, 0, len(records))
	for i := range records {
		rec := &records[i]
		members = append(members, diversity.Member{
			Label: rec.Config.Digest().String(),
			Power: w.Apply(rec),
		})
		replicas = append(replicas, vuln.Replica{
			Name:         string(rec.ID),
			Config:       rec.Config,
			Power:        w.Apply(rec),
			PatchLatency: rec.PatchLatency,
		})
	}
	pop, err := diversity.NewPopulation(members)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		Generation:   r.gen,
		Weighting:    w,
		Population:   pop,
		Distribution: pop.PowerDistribution(),
		Replicas:     replicas,
	}
	r.snaps[w] = s
	return s, nil
}

// Generation returns the mutation counter; it advances on every
// Join*/Leave/SetPower/Migrate and keys snapshot invalidation.
func (r *Registry) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Population returns the membership as a diversity.Population under the
// given weighting: one member per replica, labelled by configuration
// digest, powered by weighted power. The returned population is the
// caller's to mutate (Population.Add is public); hot paths should use
// Snapshot and its shared read-only Population instead.
func (r *Registry) Population(w Weighting) (*diversity.Population, error) {
	s, err := r.Snapshot(w)
	if err != nil {
		return nil, err
	}
	return diversity.NewPopulation(s.Population.Members())
}

// Distribution returns the weighted power distribution over configuration
// digests — the paper's p over D for the live membership.
func (r *Registry) Distribution(w Weighting) (diversity.Distribution, error) {
	s, err := r.Snapshot(w)
	if err != nil {
		return diversity.Distribution{}, err
	}
	return s.Distribution, nil
}

// VulnReplicas adapts the membership for internal/vuln fault injection,
// using weighted power so two-tier weighting shows up in fault fractions.
// The returned slice is the caller's to mutate; hot paths should use
// Snapshot and its shared Replicas instead.
func (r *Registry) VulnReplicas(w Weighting) ([]vuln.Replica, error) {
	s, err := r.Snapshot(w)
	if err != nil {
		return nil, err
	}
	return append([]vuln.Replica(nil), s.Replicas...), nil
}

// TierCounts reports how many replicas sit in each tier and the raw power
// they hold.
func (r *Registry) TierCounts() (attested, declared int, attestedPower, declaredPower float64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, rec := range r.records {
		if rec.Tier == TierAttested {
			attested++
			attestedPower += rec.Power
		} else {
			declared++
			declaredPower += rec.Power
		}
	}
	return attested, declared, attestedPower, declaredPower
}
