package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/attest"
)

// TestMigrate covers the product-version migration mutation: the config
// changes in place, an attested replica is demoted to the declared tier
// (its old quote no longer covers the new stack), and the mutation
// invalidates cached snapshots like any other churn.
func TestMigrate(t *testing.T) {
	auth := attest.NewAuthority("tpm2")
	r := New(auth, nil)
	attestedJoin(t, r, auth, "a", "debian", 10)
	if err := r.JoinDeclared("b", testCfg("fedora"), 10, 0); err != nil {
		t.Fatal(err)
	}
	before, err := r.Snapshot(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	gen := r.Generation()

	if err := r.Migrate("a", testCfg("openbsd")); err != nil {
		t.Fatal(err)
	}
	rec, ok := r.Get("a")
	if !ok {
		t.Fatal("migrated replica vanished")
	}
	if !rec.Config.Equal(testCfg("openbsd")) {
		t.Errorf("config after migrate: %v", rec.Config)
	}
	if rec.Tier != TierDeclared || rec.VoteKey != nil {
		t.Errorf("attested replica not demoted on migrate: tier=%v votekey=%v", rec.Tier, rec.VoteKey)
	}
	if r.Generation() != gen+1 {
		t.Errorf("generation %d after migrate, want %d", r.Generation(), gen+1)
	}
	after, err := r.Snapshot(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Error("snapshot not invalidated by Migrate")
	}
	if err := r.Migrate("ghost", testCfg("x")); err == nil {
		t.Error("migrating unknown replica succeeded")
	}
}

// TestSnapshotConsistencyUnderInterleavedChurn is the churn-under-watch
// contract, run under -race in CI: one goroutine churns continuously
// (Join/Leave/SetPower/Migrate) while reader goroutines take snapshots
// and derived views. Every snapshot must be internally consistent — its
// Population, Distribution and Replicas must describe the same instant —
// even though the membership is moving underneath.
func TestSnapshotConsistencyUnderInterleavedChurn(t *testing.T) {
	r := New(nil, nil)
	for i := 0; i < 16; i++ {
		id := ReplicaID(fmt.Sprintf("base-%02d", i))
		if err := r.JoinDeclared(id, testCfg(fmt.Sprintf("os-%d", i%4)), 10, time.Hour); err != nil {
			t.Fatal(err)
		}
	}

	const (
		readers = 4
		rounds  = 400
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// The churn driver: joins, leaves, power shifts and migrations in a
	// tight loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < rounds; i++ {
			id := ReplicaID(fmt.Sprintf("churn-%03d", i))
			if err := r.JoinDeclared(id, testCfg(fmt.Sprintf("os-%d", i%5)), float64(1+i%7), 0); err != nil {
				t.Error(err)
				return
			}
			if err := r.SetPower(id, float64(2+i%9)); err != nil {
				t.Error(err)
				return
			}
			if err := r.Migrate(id, testCfg(fmt.Sprintf("os-%d", (i+1)%5))); err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				if err := r.Leave(id); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := r.Snapshot(DefaultWeighting)
				if err != nil {
					t.Error(err)
					return
				}
				// Internal consistency: the three derived views agree on
				// the same membership.
				if snap.Population().Size() != len(snap.Replicas()) {
					t.Errorf("torn snapshot: population %d members, %d vuln replicas",
						snap.Population().Size(), len(snap.Replicas()))
					return
				}
				var popTotal, repTotal float64
				for _, m := range snap.Population().Members() {
					popTotal += m.Power
				}
				for _, rep := range snap.Replicas() {
					repTotal += rep.Power
				}
				if popTotal != repTotal || popTotal != snap.Distribution.Total() {
					t.Errorf("torn snapshot: power views disagree pop=%v rep=%v dist=%v",
						popTotal, repTotal, snap.Distribution.Total())
					return
				}
				// Identity-stability contract: re-snapshotting the same
				// generation returns the same pointer.
				if again, err := r.Snapshot(DefaultWeighting); err == nil &&
					again.Generation == snap.Generation && again != snap {
					t.Error("same generation produced distinct snapshot pointers")
					return
				}
				if _, _, _, _ = r.TierCounts(); r.Size() < 16 {
					t.Error("base membership shrank")
					return
				}
			}
		}()
	}
	wg.Wait()

	// After the dust settles: invalidation still works and the final
	// membership is what the churn arithmetic says.
	snap, err := r.Snapshot(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	if want := 16 + rounds/2; len(snap.Replicas()) != want {
		t.Errorf("final membership %d, want %d", len(snap.Replicas()), want)
	}
	if snap.Generation != r.Generation() {
		t.Errorf("final snapshot generation %d, registry at %d", snap.Generation, r.Generation())
	}
}

// TestMigrateRacingSnapshotReaders pins the specific race monitord's
// PATCH …/replicas/{id} handler creates: migrations rewriting replica
// configurations in place while concurrent readers (assessment GETs,
// watch ticks) take snapshots. Membership is fixed — only configs move —
// so every snapshot must show a complete, coherent config assignment:
// the per-replica view and the digest distribution must describe the
// same instant, and no replica may ever appear with a config outside the
// migration set or vanish mid-migration.
func TestMigrateRacingSnapshotReaders(t *testing.T) {
	const (
		replicas = 8
		configs  = 3
		rounds   = 600
		readers  = 4
	)
	r := New(nil, nil)
	allowed := make(map[string]bool)
	for c := 0; c < configs; c++ {
		allowed[testCfg(fmt.Sprintf("os-%d", c)).Digest().String()] = true
	}
	for i := 0; i < replicas; i++ {
		id := ReplicaID(fmt.Sprintf("m-%02d", i))
		if err := r.JoinDeclared(id, testCfg(fmt.Sprintf("os-%d", i%configs)), float64(10+i), 0); err != nil {
			t.Fatal(err)
		}
	}
	baseGen := r.Generation()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < rounds; i++ {
			id := ReplicaID(fmt.Sprintf("m-%02d", i%replicas))
			if err := r.Migrate(id, testCfg(fmt.Sprintf("os-%d", i%configs))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := r.Snapshot(DefaultWeighting)
				if err != nil {
					t.Error(err)
					return
				}
				if len(snap.Replicas()) != replicas {
					t.Errorf("snapshot shows %d replicas mid-migration, want %d", len(snap.Replicas()), replicas)
					return
				}
				// Cross-view atomicity: the digest histogram recomputed from
				// the per-replica view must be exactly the distribution the
				// snapshot carries — a migration can never be visible in one
				// view and not the other.
				byDigest := make(map[string]float64)
				for _, rep := range snap.Replicas() {
					d := rep.Config.Digest().String()
					if !allowed[d] {
						t.Errorf("replica %s shows config digest %s outside the migration set", rep.Name, d)
						return
					}
					byDigest[d] += rep.Power
				}
				if got, want := snap.Distribution.Support(), len(byDigest); got != want {
					t.Errorf("distribution support %d, per-replica view has %d digests", got, want)
					return
				}
				var total float64
				for _, p := range byDigest {
					total += p
				}
				if total != snap.Distribution.Total() {
					t.Errorf("per-replica power %v, distribution total %v", total, snap.Distribution.Total())
					return
				}
			}
		}()
	}
	wg.Wait()

	if got, want := r.Generation(), baseGen+rounds; got != want {
		t.Errorf("generation %d after %d migrations, want %d", got, rounds, want)
	}
	snap, err := r.Snapshot(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range snap.Replicas() {
		if d := rep.Config.Digest().String(); !allowed[d] {
			t.Errorf("final config for %s outside the migration set: %s", rep.Name, d)
		}
	}
}

// TestSnapshotInvalidationPerMutationKind: each mutation kind, including
// Migrate, bumps the generation and produces a fresh snapshot reflecting
// the change.
func TestSnapshotInvalidationPerMutationKind(t *testing.T) {
	r := New(nil, nil)
	if err := r.JoinDeclared("a", testCfg("debian"), 10, 0); err != nil {
		t.Fatal(err)
	}
	check := func(step string, mutate func() error, verify func(s *Snapshot) error) {
		t.Helper()
		before, err := r.Snapshot(DefaultWeighting)
		if err != nil {
			t.Fatal(err)
		}
		if err := mutate(); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		after, err := r.Snapshot(DefaultWeighting)
		if err != nil {
			t.Fatal(err)
		}
		if after == before {
			t.Fatalf("%s did not invalidate the snapshot", step)
		}
		if err := verify(after); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
	}
	check("join", func() error { return r.JoinDeclared("b", testCfg("fedora"), 20, 0) },
		func(s *Snapshot) error {
			if len(s.Replicas()) != 2 {
				return fmt.Errorf("replicas %d, want 2", len(s.Replicas()))
			}
			return nil
		})
	check("setpower", func() error { return r.SetPower("b", 5) },
		func(s *Snapshot) error {
			if s.Distribution.Total() != 15 {
				return fmt.Errorf("total %v, want 15", s.Distribution.Total())
			}
			return nil
		})
	check("migrate", func() error { return r.Migrate("b", testCfg("debian")) },
		func(s *Snapshot) error {
			if s.Distribution.Support() != 1 {
				return fmt.Errorf("support %d, want 1 after converging configs", s.Distribution.Support())
			}
			return nil
		})
	check("leave", func() error { return r.Leave("b") },
		func(s *Snapshot) error {
			if len(s.Replicas()) != 1 {
				return fmt.Errorf("replicas %d, want 1", len(s.Replicas()))
			}
			return nil
		})
}
