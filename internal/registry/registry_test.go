package registry

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/config"
	"repro/internal/cryptoutil"
	"repro/internal/diversity"
	"repro/internal/vuln"
)

func testCfg(name string) config.Configuration {
	return config.MustNew(
		config.Component{Class: config.ClassOperatingSystem, Name: name, Version: "1"},
	)
}

func attestedJoin(t *testing.T, r *Registry, auth *attest.Authority, id ReplicaID, cfgName string, power float64) {
	t.Helper()
	dev, err := attest.NewDevice("tpm2", uint64(len(id))*1000+uint64(power))
	if err != nil {
		t.Fatal(err)
	}
	vote := cryptoutil.DeriveKeyPair("vote/"+string(id), 0)
	cfg := testCfg(cfgName)
	q, err := dev.QuoteConfig(cfg, vote.Public, auth.IssueNonce())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.JoinAttested(id, cfg, q, power, time.Hour); err != nil {
		t.Fatal(err)
	}
}

func TestJoinDeclaredAndLeave(t *testing.T) {
	r := New(nil, nil)
	if err := r.JoinDeclared("a", testCfg("ubuntu"), 10, time.Hour); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 1 {
		t.Fatalf("size = %d", r.Size())
	}
	rec, ok := r.Get("a")
	if !ok || rec.Tier != TierDeclared || rec.Power != 10 {
		t.Fatalf("record = %+v", rec)
	}
	if err := r.Leave("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Leave("a"); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("double leave err = %v", err)
	}
	if r.Size() != 0 {
		t.Fatal("leave did not remove")
	}
}

func TestJoinValidation(t *testing.T) {
	r := New(nil, nil)
	if err := r.JoinDeclared("", testCfg("x"), 1, 0); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := r.JoinDeclared("a", testCfg("x"), -1, 0); err == nil {
		t.Fatal("negative power accepted")
	}
	if err := r.JoinDeclared("a", testCfg("x"), math.NaN(), 0); err == nil {
		t.Fatal("NaN power accepted")
	}
	if err := r.JoinDeclared("a", testCfg("x"), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.JoinDeclared("a", testCfg("y"), 1, 0); !errors.Is(err, ErrDuplicateReplica) {
		t.Fatalf("duplicate err = %v", err)
	}
}

func TestJoinAttestedVerifiesQuote(t *testing.T) {
	auth := attest.NewAuthority("tpm2")
	r := New(auth, nil)
	attestedJoin(t, r, auth, "good", "debian", 5)
	rec, _ := r.Get("good")
	if rec.Tier != TierAttested {
		t.Fatal("tier not attested")
	}
	if len(rec.VoteKey) == 0 {
		t.Fatal("vote key not recorded")
	}
}

func TestJoinAttestedRejectsWrongConfig(t *testing.T) {
	auth := attest.NewAuthority("tpm2")
	r := New(auth, nil)
	dev, _ := attest.NewDevice("tpm2", 1)
	vote := cryptoutil.DeriveKeyPair("vote", 1)
	measured := testCfg("debian")
	claimed := testCfg("windows-server") // lies about its config
	q, _ := dev.QuoteConfig(measured, vote.Public, auth.IssueNonce())
	err := r.JoinAttested("liar", claimed, q, 1, 0)
	if !errors.Is(err, ErrMeasurement) {
		t.Fatalf("err = %v, want ErrMeasurement", err)
	}
	if r.Size() != 0 {
		t.Fatal("liar joined")
	}
}

func TestJoinAttestedRejectsBadQuote(t *testing.T) {
	auth := attest.NewAuthority("tpm2")
	r := New(auth, nil)
	dev, _ := attest.NewDevice("rogue-vendor", 1)
	vote := cryptoutil.DeriveKeyPair("vote", 1)
	cfg := testCfg("debian")
	q, _ := dev.QuoteConfig(cfg, vote.Public, auth.IssueNonce())
	if err := r.JoinAttested("rogue", cfg, q, 1, 0); err == nil {
		t.Fatal("untrusted vendor quote accepted")
	}
}

func TestJoinAttestedNoAuthority(t *testing.T) {
	r := New(nil, nil)
	if err := r.JoinAttested("a", testCfg("x"), attest.Quote{}, 1, 0); err == nil {
		t.Fatal("attested join without authority accepted")
	}
}

func TestJoinAttestedCommitted(t *testing.T) {
	auth := attest.NewAuthority("intel-sgx")
	r := New(auth, nil)
	dev, _ := attest.NewDevice("intel-sgx", 9)
	vote := cryptoutil.DeriveKeyPair("vote", 9)
	cfg := testCfg("fedora")
	salt := []byte("sssalt")
	q, err := dev.QuoteCommitted(cfg, salt, vote.Public, auth.IssueNonce())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.JoinAttestedCommitted("private", cfg, salt, q, 3, time.Hour); err != nil {
		t.Fatal(err)
	}
	rec, _ := r.Get("private")
	if rec.Tier != TierAttested {
		t.Fatal("tier not attested")
	}
	// Wrong opening rejected.
	q2, _ := dev.QuoteCommitted(cfg, salt, vote.Public, auth.IssueNonce())
	if err := r.JoinAttestedCommitted("p2", cfg, []byte("wrong"), q2, 3, 0); err == nil {
		t.Fatal("wrong opening accepted")
	}
	// Plain quote routed to committed join fails.
	q3, _ := dev.QuoteConfig(cfg, vote.Public, auth.IssueNonce())
	if err := r.JoinAttestedCommitted("p3", cfg, salt, q3, 3, 0); err == nil {
		t.Fatal("plain quote accepted by committed join")
	}
	// Committed quote routed to plain join fails.
	q4, _ := dev.QuoteCommitted(cfg, salt, vote.Public, auth.IssueNonce())
	if err := r.JoinAttested("p4", cfg, q4, 3, 0); err == nil {
		t.Fatal("committed quote accepted by plain join")
	}
}

func TestSetPower(t *testing.T) {
	r := New(nil, nil)
	r.JoinDeclared("a", testCfg("x"), 1, 0)
	if err := r.SetPower("a", 42); err != nil {
		t.Fatal(err)
	}
	rec, _ := r.Get("a")
	if rec.Power != 42 {
		t.Fatalf("power = %v", rec.Power)
	}
	if err := r.SetPower("missing", 1); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("err = %v", err)
	}
	if err := r.SetPower("a", -5); err == nil {
		t.Fatal("negative power accepted")
	}
}

func TestJoinedAtUsesClock(t *testing.T) {
	now := 7 * time.Hour
	r := New(nil, func() time.Duration { return now })
	r.JoinDeclared("a", testCfg("x"), 1, 0)
	rec, _ := r.Get("a")
	if rec.JoinedAt != 7*time.Hour {
		t.Fatalf("JoinedAt = %v", rec.JoinedAt)
	}
}

func TestEpoch(t *testing.T) {
	r := New(nil, nil)
	if r.Epoch() != 0 {
		t.Fatal("initial epoch not 0")
	}
	if e := r.AdvanceEpoch(); e != 1 || r.Epoch() != 1 {
		t.Fatalf("epoch = %d", e)
	}
}

func TestRecordsSortedCopies(t *testing.T) {
	r := New(nil, nil)
	r.JoinDeclared("b", testCfg("x"), 1, 0)
	r.JoinDeclared("a", testCfg("y"), 2, 0)
	recs := r.Records()
	if recs[0].ID != "a" || recs[1].ID != "b" {
		t.Fatalf("records not sorted: %v", recs)
	}
	recs[0].Power = 999
	if rec, _ := r.Get("a"); rec.Power != 2 {
		t.Fatal("Records exposed internal state")
	}
}

func TestWeightingValidate(t *testing.T) {
	if err := DefaultWeighting.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Weighting{
		{Attested: -1, Declared: 1},
		{Attested: math.NaN(), Declared: 1},
		{Attested: 0, Declared: 0},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Fatalf("weighting %+v accepted", w)
		}
	}
}

func TestPopulationAndDistribution(t *testing.T) {
	auth := attest.NewAuthority("tpm2")
	r := New(auth, nil)
	attestedJoin(t, r, auth, "att1", "debian", 10)
	r.JoinDeclared("dec1", testCfg("debian"), 10, 0)
	r.JoinDeclared("dec2", testCfg("ubuntu"), 20, 0)

	d, err := r.Distribution(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total() != 40 {
		t.Fatalf("total = %v", d.Total())
	}
	debianLabel := testCfg("debian").Digest().String()
	if d.Weight(debianLabel) != 20 {
		t.Fatalf("debian weight = %v, want 20 (attested+declared share a config)", d.Weight(debianLabel))
	}

	// Two-tier weighting: discount declared replicas to half.
	half := Weighting{Attested: 1, Declared: 0.5}
	d2, err := r.Distribution(half)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Total() != 25 { // 10 + 5 + 10
		t.Fatalf("weighted total = %v, want 25", d2.Total())
	}
	if _, err := r.Distribution(Weighting{Attested: -1, Declared: 1}); err == nil {
		t.Fatal("invalid weighting accepted")
	}
}

func TestVulnReplicasAdapter(t *testing.T) {
	r := New(nil, nil)
	r.JoinDeclared("a", testCfg("debian"), 10, 3*time.Hour)
	vs, err := r.VulnReplicas(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Name != "a" || vs[0].PatchLatency != 3*time.Hour {
		t.Fatalf("vuln replicas = %+v", vs)
	}
	// Integration: a vuln in the declared config compromises weighted power.
	cat := vuln.NewCatalog()
	err = cat.Add(vuln.Vulnerability{
		ID: "CVE-os", Class: config.ClassOperatingSystem, Product: "debian",
		Disclosed: 0, PatchAt: time.Hour, Severity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := vuln.Inject(cat, vs, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if inj.TotalFraction != 1 {
		t.Fatalf("fraction = %v, want 1", inj.TotalFraction)
	}
}

func TestTierCounts(t *testing.T) {
	auth := attest.NewAuthority("tpm2")
	r := New(auth, nil)
	attestedJoin(t, r, auth, "att1", "debian", 10)
	r.JoinDeclared("dec1", testCfg("ubuntu"), 30, 0)
	a, d, ap, dp := r.TierCounts()
	if a != 1 || d != 1 || ap != 10 || dp != 30 {
		t.Fatalf("tiers = %d/%d %v/%v", a, d, ap, dp)
	}
}

// Snapshots are memoized per (generation, weighting): same pointer while
// the registry is quiet, a fresh one after any mutation, and distinct
// entries per weighting within one generation.
func TestSnapshotMemoization(t *testing.T) {
	r := New(nil, nil)
	r.JoinDeclared("a", testCfg("debian"), 10, time.Hour)
	r.JoinDeclared("b", testCfg("ubuntu"), 30, time.Hour)

	s1, err := r.Snapshot(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Snapshot(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("unchanged registry rebuilt its snapshot")
	}
	if s1.Generation != r.Generation() {
		t.Fatalf("snapshot generation %d != registry %d", s1.Generation, r.Generation())
	}

	half := Weighting{Attested: 1, Declared: 0.5}
	sHalf, err := r.Snapshot(half)
	if err != nil {
		t.Fatal(err)
	}
	if sHalf == s1 {
		t.Fatal("different weightings shared a snapshot")
	}
	if got := sHalf.Distribution.Total(); got != 20 {
		t.Fatalf("halved total = %v, want 20", got)
	}
	again, _ := r.Snapshot(DefaultWeighting)
	if again != s1 {
		t.Fatal("second weighting evicted the first snapshot within one generation")
	}

	// Every mutation kind invalidates.
	gen := r.Generation()
	if err := r.SetPower("a", 20); err != nil {
		t.Fatal(err)
	}
	if r.Generation() == gen {
		t.Fatal("SetPower did not bump the generation")
	}
	s3, err := r.Snapshot(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("SetPower did not invalidate the snapshot")
	}
	if got := s3.Distribution.Total(); got != 50 {
		t.Fatalf("post-SetPower total = %v, want 50", got)
	}
	if err := r.Leave("b"); err != nil {
		t.Fatal(err)
	}
	s4, _ := r.Snapshot(DefaultWeighting)
	if s4 == s3 || s4.NumReplicas() != 1 {
		t.Fatalf("Leave did not invalidate (replicas=%d)", s4.NumReplicas())
	}
	if err := r.JoinDeclared("c", testCfg("openbsd"), 5, 0); err != nil {
		t.Fatal(err)
	}
	s5, _ := r.Snapshot(DefaultWeighting)
	if s5 == s4 || s5.NumReplicas() != 2 {
		t.Fatalf("Join did not invalidate (replicas=%d)", s5.NumReplicas())
	}
	if _, err := r.Snapshot(Weighting{Attested: -1, Declared: 1}); err == nil {
		t.Fatal("invalid weighting accepted")
	}
}

// VulnReplicas hands out a private copy: mutating it must not poison the
// shared snapshot other readers see.
func TestVulnReplicasCopyIsolation(t *testing.T) {
	r := New(nil, nil)
	r.JoinDeclared("a", testCfg("debian"), 10, time.Hour)
	vs, err := r.VulnReplicas(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	vs[0].Power = 999
	snap, err := r.Snapshot(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Replicas()[0].Power != 10 {
		t.Fatalf("snapshot corrupted by caller mutation: %+v", snap.Replicas()[0])
	}
}

// Population hands out a private copy: its public Add must not poison the
// shared snapshot (same isolation VulnReplicas has).
func TestPopulationCopyIsolation(t *testing.T) {
	r := New(nil, nil)
	r.JoinDeclared("a", testCfg("debian"), 10, time.Hour)
	pop, err := r.Population(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	if err := pop.Add(diversity.Member{Label: "phantom", Power: 99}); err != nil {
		t.Fatal(err)
	}
	snap, err := r.Snapshot(DefaultWeighting)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Population().Size() != 1 || snap.Distribution.Total() != 10 {
		t.Fatalf("snapshot poisoned by caller Add: size=%d total=%v",
			snap.Population().Size(), snap.Distribution.Total())
	}
}
