package registry

import (
	"sort"
	"sync"

	"repro/internal/config"
	"repro/internal/diversity"
	"repro/internal/vuln"
)

// SnapBucket is one configuration bucket as exported by a Snapshot: the
// vuln.BucketSpec (key, configuration, equivalence groups with weighted
// per-member power) plus the bucket's aggregates. SnapBuckets are immutable
// and shared: a delta-built snapshot reuses the previous snapshot's
// *SnapBucket pointers for every bucket the intervening mutations did not
// touch, so consumers (core.Monitor) can diff two snapshots by pointer
// comparison and patch their derived state in O(Δ).
type SnapBucket struct {
	vuln.BucketSpec
	Count int     // members in the bucket
	Power float64 // Σ weighted member power
}

// Snapshot is the memoized read-side view of the membership under one
// weighting: everything Monitor.Assess needs, computed once per (mutation
// generation, weighting) and rebuilt by delta from the previous snapshot.
// All exported state is shared across callers and must be treated as
// read-only; pointer identity is stable until the registry mutates, so
// callers can cache per-snapshot derivations by comparing pointers.
type Snapshot struct {
	// Generation is the mutation generation the snapshot was built at.
	Generation uint64
	// Weighting is the tier weighting the snapshot applies.
	Weighting Weighting
	// Distribution is the weighted power distribution over config digests,
	// computed from bucket aggregates (O(#buckets)).
	Distribution diversity.Distribution

	buckets []*SnapBucket // label-ascending
	members int
	total   float64 // Σ weighted power (== Distribution.Total())

	// Per-replica views are materialised lazily: the bucketed aggregates
	// answer the hot paths (diversity report, exposure index), and only
	// consumers that genuinely need per-replica data (scenario probes,
	// liveloop membership) pay the O(N) expansion — once per snapshot.
	lazyOnce sync.Once
	lazyPop  *diversity.Population
	lazyReps []vuln.Replica
}

// NumReplicas reports the population size in O(1).
func (s *Snapshot) NumReplicas() int { return s.members }

// TotalPower returns the summed weighted power.
func (s *Snapshot) TotalPower() float64 { return s.total }

// Buckets returns the label-ascending bucket list. Read-only.
func (s *Snapshot) Buckets() []*SnapBucket { return s.buckets }

// BucketSpecs adapts the buckets for vuln.NewGroupInjector. The specs
// share the snapshot's group slices; read-only.
func (s *Snapshot) BucketSpecs() []vuln.BucketSpec {
	out := make([]vuln.BucketSpec, len(s.buckets))
	for i, sb := range s.buckets {
		out[i] = sb.BucketSpec
	}
	return out
}

// lazyBuild materialises the per-replica views from the snapshot's own
// pinned group data (not live registry state, which may have moved on).
func (s *Snapshot) lazyBuild() {
	s.lazyOnce.Do(func() {
		type entry struct {
			rep   vuln.Replica
			label string
		}
		entries := make([]entry, 0, s.members)
		for _, sb := range s.buckets {
			for _, g := range sb.Groups {
				for _, name := range g.Names {
					entries = append(entries, entry{
						rep: vuln.Replica{
							Name:         name,
							Config:       sb.Config,
							Power:        g.Power,
							PatchLatency: g.Latency,
						},
						label: sb.Key,
					})
				}
			}
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].rep.Name < entries[j].rep.Name })
		reps := make([]vuln.Replica, len(entries))
		members := make([]diversity.Member, len(entries))
		for i, e := range entries {
			reps[i] = e.rep
			members[i] = diversity.Member{Label: e.label, Power: e.rep.Power}
		}
		pop, err := diversity.NewPopulation(members)
		if err != nil {
			// Unreachable: labels are non-empty digests and powers were
			// validated at join time.
			panic(err)
		}
		s.lazyReps = reps
		s.lazyPop = pop
	})
}

// Replicas returns the membership adapted for vuln fault injection,
// ID-sorted, built lazily from the snapshot's buckets. Read-only: do not
// modify elements or append.
func (s *Snapshot) Replicas() []vuln.Replica {
	s.lazyBuild()
	return s.lazyReps
}

// Population returns the weighted membership for diversity metrics,
// ID-sorted, built lazily. Shared and read-only.
func (s *Snapshot) Population() *diversity.Population {
	s.lazyBuild()
	return s.lazyPop
}

// Report computes the full diversity report from the bucket aggregates:
// distribution metrics from Distribution, abundance ω from per-bucket
// counts, and operator-fault resilience from the (power → member count)
// classes — O(#buckets + #groups), never O(#replicas). For integral powers
// the result is bit-identical to diversity.ReportForPopulation over
// Replicas(); the incremental-vs-cold property test pins that equivalence.
func (s *Snapshot) Report() (diversity.Report, error) {
	abundance := make([]int, len(s.buckets))
	classPowers := make(map[float64]int)
	for i, sb := range s.buckets {
		abundance[i] = sb.Count
		for _, g := range sb.Groups {
			classPowers[g.Power] += len(g.Names)
		}
	}
	classes := make([]diversity.PowerClass, 0, len(classPowers))
	for p, c := range classPowers {
		classes = append(classes, diversity.PowerClass{Power: p, Count: c})
	}
	return diversity.ReportForAggregates(s.Distribution, s.members, abundance, classes)
}

// exportBucketLocked builds the immutable snapshot view of a bucket under
// w, marking the group name slices shared so later mutations copy on
// write. r.mu (read) and r.snapMu must be held.
func (r *Registry) exportBucketLocked(b *bucket, w Weighting) *SnapBucket {
	sb := &SnapBucket{
		BucketSpec: vuln.BucketSpec{Key: b.label, Config: b.cfg},
		Count:      b.count,
	}
	sb.Groups = make([]vuln.GroupSpec, 0, len(b.groups))
	for _, g := range b.groups {
		wp := g.power * w.tierMultiplier(g.tier)
		sb.Groups = append(sb.Groups, vuln.GroupSpec{
			Power:   wp,
			Latency: g.latency,
			Names:   g.names,
		})
		sb.Power += float64(len(g.names)) * wp
		g.shared = true
	}
	return sb
}

// finalizeSnapshot computes the aggregate fields from the bucket list.
func (r *Registry) finalizeSnapshot(buckets []*SnapBucket, w Weighting) (*Snapshot, error) {
	weights := make(map[string]float64, len(buckets))
	members := 0
	for _, sb := range buckets {
		weights[sb.Key] = sb.Power
		members += sb.Count
	}
	dist, err := diversity.FromWeights(weights)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Generation:   r.gen,
		Weighting:    w,
		Distribution: dist,
		buckets:      buckets,
		members:      members,
		total:        dist.Total(),
	}, nil
}

// fullSnapshotLocked builds a snapshot from scratch: O(B log B + G) over
// buckets and groups. r.mu (read) and r.snapMu must be held.
func (r *Registry) fullSnapshotLocked(w Weighting) (*Snapshot, error) {
	buckets := make([]*SnapBucket, 0, len(r.buckets))
	for _, b := range r.buckets {
		buckets = append(buckets, r.exportBucketLocked(b, w))
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].Key < buckets[j].Key })
	return r.finalizeSnapshot(buckets, w)
}

// changedSinceLocked returns the distinct bucket keys touched since
// prevGen, or ok=false when the journal no longer covers that range (the
// caller then falls back to a full rebuild). Every mutation journals
// exactly one generation, so full coverage means exactly gen−prevGen
// entries newer than prevGen.
func (r *Registry) changedSinceLocked(prevGen uint64) ([]config.ID, bool) {
	need := r.gen - prevGen
	seen := make(map[config.ID]struct{}, 2*need)
	keys := make([]config.ID, 0, 2*need)
	var covered uint64
	for i := len(r.journal) - 1; i >= 0; i-- {
		e := &r.journal[i]
		if e.gen <= prevGen {
			break
		}
		covered++
		for _, k := range e.keys[:e.n] {
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				keys = append(keys, k)
			}
		}
	}
	if covered != need {
		return nil, false
	}
	return keys, true
}

// deltaSnapshotLocked builds the snapshot at the current generation by
// re-exporting only the changed buckets and sharing every other
// *SnapBucket with prev: O(Δ·log + B) instead of O(N log N). r.mu (read)
// and r.snapMu must be held.
func (r *Registry) deltaSnapshotLocked(prev *Snapshot, changed []config.ID, w Weighting) (*Snapshot, error) {
	type change struct {
		label string
		b     *bucket // nil: bucket no longer exists
	}
	changes := make([]change, 0, len(changed))
	for _, key := range changed {
		changes = append(changes, change{label: key.String(), b: r.buckets[key]})
	}
	sort.Slice(changes, func(i, j int) bool { return changes[i].label < changes[j].label })

	out := make([]*SnapBucket, 0, len(prev.buckets)+len(changes))
	i := 0
	for _, ch := range changes {
		for i < len(prev.buckets) && prev.buckets[i].Key < ch.label {
			out = append(out, prev.buckets[i])
			i++
		}
		if i < len(prev.buckets) && prev.buckets[i].Key == ch.label {
			i++ // superseded (or removed) below
		}
		if ch.b != nil {
			out = append(out, r.exportBucketLocked(ch.b, w))
		}
	}
	out = append(out, prev.buckets[i:]...)
	return r.finalizeSnapshot(out, w)
}

// Snapshot returns the memoized derived view of the membership under w.
// On an unchanged registry it returns the previous pointer; after churn it
// delta-applies the journalled bucket changes onto the previous snapshot
// (falling back to a full rebuild only when the journal window was
// exceeded). Snapshot holds the registry read lock for the whole build, so
// a snapshot taken during churn is always internally consistent: its
// Generation, Distribution and buckets all describe the same instant.
func (r *Registry) Snapshot(w Weighting) (*Snapshot, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	if r.snaps == nil {
		r.snaps = make(map[Weighting]*Snapshot)
	}
	prev := r.snaps[w]
	if prev != nil && prev.Generation == r.gen {
		return prev, nil
	}
	var s *Snapshot
	var err error
	if prev != nil {
		if keys, ok := r.changedSinceLocked(prev.Generation); ok {
			s, err = r.deltaSnapshotLocked(prev, keys, w)
		}
	}
	if s == nil && err == nil {
		s, err = r.fullSnapshotLocked(w)
	}
	if err != nil {
		return nil, err
	}
	r.snaps[w] = s
	return s, nil
}

// DiffSnapshots compares two snapshots of the same registry and weighting,
// returning the buckets of next that are not shared with prev (changed or
// added) and the keys present only in prev (removed). Shared buckets are
// recognised by pointer identity, so the walk is O(#buckets) with no
// content comparison — and O(Δ) results under normal churn.
func DiffSnapshots(prev, next *Snapshot) (changed []vuln.BucketSpec, removed []string) {
	i, j := 0, 0
	pb, nb := prev.buckets, next.buckets
	for i < len(pb) && j < len(nb) {
		switch {
		case pb[i] == nb[j]: // shared, unchanged
			i++
			j++
		case pb[i].Key == nb[j].Key:
			changed = append(changed, nb[j].BucketSpec)
			i++
			j++
		case pb[i].Key < nb[j].Key:
			removed = append(removed, pb[i].Key)
			i++
		default:
			changed = append(changed, nb[j].BucketSpec)
			j++
		}
	}
	for ; i < len(pb); i++ {
		removed = append(removed, pb[i].Key)
	}
	for ; j < len(nb); j++ {
		changed = append(changed, nb[j].BucketSpec)
	}
	return changed, removed
}

// Population returns the membership as a diversity.Population under the
// given weighting: one member per replica, labelled by configuration
// digest, powered by weighted power. The returned population is the
// caller's to mutate (Population.Add is public); hot paths should use
// Snapshot and its shared read-only Population instead.
func (r *Registry) Population(w Weighting) (*diversity.Population, error) {
	s, err := r.Snapshot(w)
	if err != nil {
		return nil, err
	}
	return diversity.NewPopulation(s.Population().Members())
}

// Distribution returns the weighted power distribution over configuration
// digests — the paper's p over D for the live membership.
func (r *Registry) Distribution(w Weighting) (diversity.Distribution, error) {
	s, err := r.Snapshot(w)
	if err != nil {
		return diversity.Distribution{}, err
	}
	return s.Distribution, nil
}

// VulnReplicas adapts the membership for internal/vuln fault injection,
// using weighted power so two-tier weighting shows up in fault fractions.
// The returned slice is the caller's to mutate; hot paths should use
// Snapshot and its shared Replicas instead.
func (r *Registry) VulnReplicas(w Weighting) ([]vuln.Replica, error) {
	s, err := r.Snapshot(w)
	if err != nil {
		return nil, err
	}
	return append([]vuln.Replica(nil), s.Replicas()...), nil
}
