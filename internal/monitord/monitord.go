// Package monitord hosts the core fault-independence monitor as a
// long-running multi-tenant HTTP/JSON service — the operational shape the
// paper implies: an operator runs continuous diversity assessment against
// many live replica populations at once, instead of batch runs that exit.
//
// Each tenant is one named registry + vulnerability catalog + monitor.
// The API mutates populations (join/leave/set-power/migrate), posts
// disclosure and patch events, reads the current assessment, diversity
// report and worst-window, and streams Monitor.Watch updates to any
// number of subscribers over Server-Sent Events.
//
// Concurrency model: all readers and watchers of one tenant share the
// monitor's memoized per-snapshot assessment — one Watch stream feeds an
// SSE hub that fans out to every subscriber, and GET readers hit the same
// snapshot cache, so N watchers cost one computation per registry
// generation (core.Monitor.Stats exposes the proof). Registry mutation
// during live streams is safe: the registry synchronizes churn against
// snapshot readers internally.
//
// Endpoints (JSON bodies unless noted):
//
//	GET    /healthz                            liveness
//	GET    /stats                              server-wide counters
//	GET    /tenants                            list tenants
//	PUT    /tenants/{tenant}                   create (TenantSpec; 409 if exists)
//	GET    /tenants/{tenant}                   tenant info + cache stats
//	DELETE /tenants/{tenant}                   delete, closing its streams
//	POST   /tenants/{tenant}/replicas          join a replica (ReplicaSpec)
//	PATCH  /tenants/{tenant}/replicas/{id}     set power and/or migrate config
//	DELETE /tenants/{tenant}/replicas/{id}     leave
//	POST   /tenants/{tenant}/vulns             disclose a vulnerability (VulnSpec)
//	GET    /tenants/{tenant}/assessment        assessment at the tenant's now
//	GET    /tenants/{tenant}/report            diversity report at now
//	GET    /tenants/{tenant}/worst?horizon=…   worst-window assessment
//	GET    /tenants/{tenant}/watch             SSE stream of assessments
//	POST   /tenants/{tenant}/advance           advance a virtual tenant's clock
package monitord

import (
	"net/http"
	"sync"
)

// Server is the multi-tenant monitor service. It implements http.Handler;
// Close ends every SSE stream and releases every tenant, after which all
// requests fail with 503 — the daemon calls Close before (or while)
// draining in-flight requests so shutdown cannot hang on open streams.
type Server struct {
	mgr       *Manager
	mux       *http.ServeMux
	done      chan struct{}
	closeOnce sync.Once
}

// NewServer returns a ready-to-serve Server with no tenants.
func NewServer() *Server {
	s := &Server{
		mgr:  NewManager(),
		done: make(chan struct{}),
	}
	s.routes()
	return s
}

// Manager exposes the tenant manager, for in-process embedding (tests,
// examples, the load driver's self-hosted mode).
func (s *Server) Manager() *Manager { return s.mgr }

// ServeHTTP dispatches to the service's route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.done:
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	default:
	}
	s.mux.ServeHTTP(w, r)
}

// Close shuts the service down: every SSE subscriber's channel closes (so
// watch handlers return and connections drain), every tenant's watch
// goroutine stops, and subsequent requests get 503. Safe to call more
// than once and concurrently with in-flight requests.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.mgr.Close()
	})
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /tenants", s.handleListTenants)
	mux.HandleFunc("PUT /tenants/{tenant}", s.handleCreateTenant)
	mux.HandleFunc("GET /tenants/{tenant}", s.handleGetTenant)
	mux.HandleFunc("DELETE /tenants/{tenant}", s.handleDeleteTenant)
	mux.HandleFunc("POST /tenants/{tenant}/replicas", s.handleJoin)
	mux.HandleFunc("PATCH /tenants/{tenant}/replicas/{id}", s.handlePatchReplica)
	mux.HandleFunc("DELETE /tenants/{tenant}/replicas/{id}", s.handleLeave)
	mux.HandleFunc("POST /tenants/{tenant}/vulns", s.handleDisclose)
	mux.HandleFunc("GET /tenants/{tenant}/assessment", s.handleAssessment)
	mux.HandleFunc("GET /tenants/{tenant}/report", s.handleReport)
	mux.HandleFunc("GET /tenants/{tenant}/worst", s.handleWorst)
	mux.HandleFunc("GET /tenants/{tenant}/watch", s.handleWatch)
	mux.HandleFunc("POST /tenants/{tenant}/advance", s.handleAdvance)
	s.mux = mux
}
