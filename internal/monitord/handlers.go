package monitord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/registry"
)

// maxBodyBytes bounds request bodies; specs are small and a tenant seed
// with thousands of replicas still fits comfortably.
const maxBodyBytes = 8 << 20

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes a JSON body into v. An empty body leaves v
// at its zero value, so "PUT /tenants/x" with no body creates a default
// tenant.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return true
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// tenantFor resolves the {tenant} path value or writes a 404.
func (s *Server) tenantFor(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	name := r.PathValue("tenant")
	t, ok := s.mgr.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown tenant %q", name)
		return nil, false
	}
	return t, true
}

// registryStatus maps registry errors to HTTP status codes.
func registryStatus(err error) int {
	switch {
	case errors.Is(err, registry.ErrUnknownReplica):
		return http.StatusNotFound
	case errors.Is(err, registry.ErrDuplicateReplica):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var st ServerStats
	for _, t := range s.mgr.List() {
		st.Tenants++
		st.Replicas += t.Registry.Size()
		st.Watchers += t.hub.subscribers()
		events, dropped := t.hub.stats()
		st.WatchEvents += events
		st.WatchDropped += dropped
		cs := t.Monitor.Stats()
		st.CacheRebuilds += cs.Rebuilds
		st.CacheDeltaApplies += cs.DeltaApplies
		st.CacheHits += cs.Hits
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleListTenants(w http.ResponseWriter, _ *http.Request) {
	tenants := s.mgr.List()
	out := make([]TenantInfo, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, tenantInfo(t))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var spec TenantSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	t, err := s.mgr.Create(r.PathValue("tenant"), spec)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrTenantExists) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, tenantInfo(t))
}

func (s *Server) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, tenantInfo(t))
}

func (s *Server) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Delete(r.PathValue("tenant")); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	var rs ReplicaSpec
	if !decodeBody(w, r, &rs) {
		return
	}
	if err := joinReplica(t, rs); err != nil {
		writeError(w, registryStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": rs.ID})
}

func (s *Server) handlePatchReplica(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	var patch ReplicaPatch
	if !decodeBody(w, r, &patch) {
		return
	}
	if patch.Power == nil && len(patch.Components) == 0 {
		writeError(w, http.StatusBadRequest, "empty patch: set power and/or components")
		return
	}
	id := registry.ReplicaID(r.PathValue("id"))
	if patch.Power != nil {
		if err := t.Registry.SetPower(id, *patch.Power); err != nil {
			writeError(w, registryStatus(err), "%v", err)
			return
		}
	}
	if len(patch.Components) > 0 {
		cfg, err := ReplicaSpec{Components: patch.Components}.configuration()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := t.Registry.Migrate(id, cfg); err != nil {
			writeError(w, registryStatus(err), "%v", err)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	if err := t.Registry.Leave(registry.ReplicaID(r.PathValue("id"))); err != nil {
		writeError(w, registryStatus(err), "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDisclose(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	var vs VulnSpec
	if !decodeBody(w, r, &vs) {
		return
	}
	v, err := vs.vulnerability()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := t.Catalog.Add(v); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": vs.ID})
}

func (s *Server) handleAssessment(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	a, err := t.Monitor.Assess(t.Now())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "assess: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, assessmentJSON(t.Name, a))
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	a, err := t.Monitor.Assess(t.Now())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "assess: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, reportJSON(a.Diversity))
}

// defaultWorstHorizon bounds the sweep when the query omits ?horizon=.
const defaultWorstHorizon = 30 * 24 * time.Hour

func (s *Server) handleWorst(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	horizon := defaultWorstHorizon
	if q := r.URL.Query().Get("horizon"); q != "" {
		var err error
		horizon, err = time.ParseDuration(q)
		if err != nil || horizon <= 0 {
			writeError(w, http.StatusBadRequest, "bad horizon %q", q)
			return
		}
	}
	a, err := t.Monitor.WorstAssessment(horizon)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "worst window: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, assessmentJSON(t.Name, a))
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	var spec AdvanceSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	var (
		now time.Duration
		err error
	)
	switch {
	case spec.By != 0 && spec.To != 0:
		writeError(w, http.StatusBadRequest, "set exactly one of by/to")
		return
	case spec.By != 0:
		now, err = t.Advance(time.Duration(spec.By))
	case spec.To != 0:
		now, err = t.AdvanceTo(time.Duration(spec.To))
	default:
		writeError(w, http.StatusBadRequest, "set exactly one of by/to")
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]Duration{"now": Duration(now)})
}

// handleWatch streams the tenant's assessments as Server-Sent Events: one
// `assessment` event per Watch emission, each `data:` line the same
// AssessmentJSON the GET endpoint returns. The stream ends when the
// client disconnects, the tenant is deleted, or the server shuts down —
// every path closes the connection cleanly rather than abandoning it.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantFor(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by connection")
		return
	}
	id, ch, err := t.hub.subscribe()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer t.hub.unsubscribe(id)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case a, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprintf(w, "event: assessment\nid: %d\ndata: ", a.At.Nanoseconds()); err != nil {
				return
			}
			// Encode appends the newline ending the data: line itself.
			if err := enc.Encode(assessmentJSON(t.Name, a)); err != nil {
				return
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
