package monitord

import (
	"context"
	"errors"
	"sync"

	"repro/internal/core"
)

// errHubClosed is returned by subscribe after the hub's tenant was deleted
// or the server shut down.
var errHubClosed = errors.New("monitord: hub closed")

// subscriberBuffer bounds each subscriber's channel. A subscriber that
// falls further behind than this loses the oldest pending assessments
// (drops are counted): one slow SSE client must not stall the shared
// broadcast and with it every other watcher on the tenant.
const subscriberBuffer = 16

// hub fans one Monitor.Watch stream out to any number of subscribers.
// The stream starts lazily with the first subscriber and stops with the
// last, so a thousand idle tenants cost zero watch goroutines. Because
// all subscribers ride one stream, each tick is assessed exactly once no
// matter how many watchers are attached — the monitor's per-snapshot
// cache then makes that one assessment itself near-free on an unchanged
// registry (see core.CacheStats).
type hub struct {
	mon *core.Monitor

	mu     sync.Mutex
	subs   map[int]chan core.Assessment
	nextID int
	// epoch guards against a stale broadcast goroutine (from a cancelled
	// stream that has not yet observed its context) delivering into a
	// restarted subscriber set.
	epoch   uint64
	cancel  context.CancelFunc
	closed  bool
	events  uint64 // assessments broadcast
	dropped uint64 // per-subscriber deliveries lost to a full buffer
}

func newHub(mon *core.Monitor) *hub {
	return &hub{mon: mon, subs: make(map[int]chan core.Assessment)}
}

// subscribe attaches a new subscriber and returns its id and channel. The
// channel is closed when the subscriber is removed, the watch stream dies,
// or the hub closes.
func (h *hub) subscribe() (int, <-chan core.Assessment, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, nil, errHubClosed
	}
	id := h.nextID
	h.nextID++
	ch := make(chan core.Assessment, subscriberBuffer)
	h.subs[id] = ch
	if h.cancel == nil {
		h.startLocked()
	}
	return id, ch, nil
}

// startLocked launches the shared watch goroutine. h.mu must be held.
func (h *hub) startLocked() {
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	epoch := h.epoch
	stream := h.mon.Watch(ctx)
	go func() {
		for a := range stream {
			h.broadcast(epoch, a)
		}
		// The stream ended. If it is still the current one the cause was
		// an assessment failure, not an unsubscribe/close: drop every
		// subscriber so their SSE handlers terminate instead of blocking
		// on a stream that will never emit again.
		h.mu.Lock()
		if h.epoch == epoch {
			h.stopLocked()
		}
		h.mu.Unlock()
	}()
}

// stopLocked cancels the current stream and closes every subscriber.
// h.mu must be held.
func (h *hub) stopLocked() {
	if h.cancel != nil {
		h.cancel()
		h.cancel = nil
	}
	h.epoch++
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
}

// broadcast delivers one assessment to every current subscriber,
// non-blocking: a full subscriber buffer counts a drop rather than
// stalling the stream for everyone else.
func (h *hub) broadcast(epoch uint64, a core.Assessment) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || h.epoch != epoch {
		return
	}
	h.events++
	for _, ch := range h.subs {
		select {
		case ch <- a:
		default:
			h.dropped++
		}
	}
}

// unsubscribe detaches a subscriber; the last one out stops the shared
// watch stream.
func (h *hub) unsubscribe(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch, ok := h.subs[id]
	if !ok {
		return
	}
	delete(h.subs, id)
	close(ch)
	if len(h.subs) == 0 && h.cancel != nil {
		h.cancel()
		h.cancel = nil
		h.epoch++
	}
}

// close tears the hub down: the stream stops and every subscriber channel
// closes. Further subscribes fail.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	h.stopLocked()
}

// subscribers reports the current subscriber count.
func (h *hub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// stats reports lifetime broadcast and drop counts.
func (h *hub) stats() (events, dropped uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.events, h.dropped
}
