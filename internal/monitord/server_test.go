package monitord

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testSpec is the examples/watch fleet as a tenant seed: 60% of power on
// ubuntu with a zero-day disclosed at t=10h, patched at t=20h, and a 24h
// replica patch latency — so the system is unsafe on [10h, 44h).
func testSpec() TenantSpec {
	replica := func(id, os string, power float64) ReplicaSpec {
		return ReplicaSpec{
			ID:           id,
			Components:   []ComponentSpec{{Class: "operating-system", Name: os, Version: "22.04"}},
			Power:        power,
			PatchLatency: Duration(24 * time.Hour),
		}
	}
	return TenantSpec{
		Virtual:       true,
		WatchInterval: Duration(6 * time.Hour),
		Replicas: []ReplicaSpec{
			replica("alice", "ubuntu", 30),
			replica("bob", "ubuntu", 20),
			replica("carol", "ubuntu", 10),
			replica("dave", "freebsd", 25),
			replica("erin", "openbsd", 15),
		},
		Vulns: []VulnSpec{{
			ID: "CVE-2023-0001", Class: "operating-system", Product: "ubuntu", Version: "22.04",
			Disclosed: Duration(10 * time.Hour), PatchAt: Duration(20 * time.Hour), Severity: 1,
		}},
	}
}

// do issues one JSON request against the handler and decodes the response
// into out (when non-nil), returning the status code.
func do(t *testing.T, h http.Handler, method, path string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func TestTenantLifecycle(t *testing.T) {
	s := NewServer()
	defer s.Close()

	var info TenantInfo
	if code := do(t, s, "PUT", "/tenants/prod", testSpec(), &info); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if info.Replicas != 5 || info.Vulns != 1 || !info.Virtual || info.Substrate != "bft" {
		t.Fatalf("created info = %+v", info)
	}
	if code := do(t, s, "PUT", "/tenants/prod", testSpec(), nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", code)
	}
	// Default spec from an empty body.
	if code := do(t, s, "PUT", "/tenants/staging", nil, &info); code != http.StatusCreated {
		t.Fatalf("default create: %d", code)
	}
	if info.Virtual || info.Replicas != 0 {
		t.Fatalf("default tenant = %+v", info)
	}
	var list []TenantInfo
	if code := do(t, s, "GET", "/tenants", nil, &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("list: %d, %d tenants", code, len(list))
	}
	if list[0].Name != "prod" || list[1].Name != "staging" {
		t.Fatalf("list order: %s, %s", list[0].Name, list[1].Name)
	}
	if code := do(t, s, "DELETE", "/tenants/staging", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code := do(t, s, "GET", "/tenants/staging", nil, nil); code != http.StatusNotFound {
		t.Fatalf("get deleted: %d", code)
	}
	if code := do(t, s, "DELETE", "/tenants/staging", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: %d", code)
	}
	// Invalid names and specs are rejected.
	if code := do(t, s, "PUT", "/tenants/bad%2Fname", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad name: %d", code)
	}
	if code := do(t, s, "PUT", "/tenants/badsub", TenantSpec{Substrate: "raft"}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown substrate: %d", code)
	}
}

func TestMutationAndAssessmentEndpoints(t *testing.T) {
	s := NewServer()
	defer s.Close()
	if code := do(t, s, "PUT", "/tenants/x", testSpec(), nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}

	// Before disclosure: safe, 3 configurations.
	var a AssessmentJSON
	if code := do(t, s, "GET", "/tenants/x/assessment", nil, &a); code != http.StatusOK {
		t.Fatalf("assessment: %d", code)
	}
	if !a.Safe || a.Diversity.Support != 3 || a.At != 0 {
		t.Fatalf("t=0 assessment = %+v", a)
	}

	// Advance into the vulnerability window: 60% ubuntu > 1/3 → unsafe.
	var now map[string]Duration
	if code := do(t, s, "POST", "/tenants/x/advance", AdvanceSpec{To: Duration(12 * time.Hour)}, &now); code != http.StatusOK {
		t.Fatalf("advance: %d", code)
	}
	if now["now"] != Duration(12*time.Hour) {
		t.Fatalf("advanced to %v", now["now"])
	}
	if do(t, s, "GET", "/tenants/x/assessment", nil, &a); a.Safe || a.TotalFraction != 0.6 {
		t.Fatalf("in-window assessment = %+v", a)
	}
	if len(a.Faults) != 1 || a.Faults[0].Vuln != "CVE-2023-0001" || len(a.Faults[0].Compromised) != 3 {
		t.Fatalf("faults = %+v", a.Faults)
	}

	// Worst window over the full horizon finds the same striking moment.
	var worst AssessmentJSON
	if code := do(t, s, "GET", "/tenants/x/worst?horizon=720h", nil, &worst); code != http.StatusOK {
		t.Fatalf("worst: %d", code)
	}
	if worst.Safe || worst.TotalFraction != 0.6 {
		t.Fatalf("worst = %+v", worst)
	}
	if code := do(t, s, "GET", "/tenants/x/worst?horizon=nope", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad horizon: %d", code)
	}

	// Mutations: leave a compromised replica, cap another's power, migrate
	// the third off ubuntu — the window closes without any patch event.
	if code := do(t, s, "DELETE", "/tenants/x/replicas/alice", nil, nil); code != http.StatusNoContent {
		t.Fatalf("leave: %d", code)
	}
	p := 1.0
	if code := do(t, s, "PATCH", "/tenants/x/replicas/bob", ReplicaPatch{Power: &p}, nil); code != http.StatusNoContent {
		t.Fatalf("set power: %d", code)
	}
	if code := do(t, s, "PATCH", "/tenants/x/replicas/carol", ReplicaPatch{
		Components: []ComponentSpec{{Class: "operating-system", Name: "netbsd", Version: "10"}},
	}, nil); code != http.StatusNoContent {
		t.Fatalf("migrate: %d", code)
	}
	if do(t, s, "GET", "/tenants/x/assessment", nil, &a); !a.Safe {
		t.Fatalf("after mitigation still unsafe: %+v", a)
	}
	// A fresh disclosure through the API reopens exposure for netbsd.
	if code := do(t, s, "POST", "/tenants/x/vulns", VulnSpec{
		ID: "CVE-2023-0002", Class: "operating-system", Product: "netbsd",
		Disclosed: Duration(11 * time.Hour), PatchAt: Duration(100 * time.Hour), Severity: 1,
	}, nil); code != http.StatusCreated {
		t.Fatalf("disclose: %d", code)
	}
	// Two faults now: bob (power-capped, still on ubuntu inside CVE-0001's
	// open window) and carol (freshly exposed on netbsd). Faults sort by
	// catalog ID.
	if do(t, s, "GET", "/tenants/x/assessment", nil, &a); len(a.Faults) != 2 ||
		a.Faults[0].Vuln != "CVE-2023-0001" || a.Faults[1].Vuln != "CVE-2023-0002" {
		t.Fatalf("post-disclosure faults = %+v", a.Faults)
	}

	// Error paths.
	if code := do(t, s, "DELETE", "/tenants/x/replicas/ghost", nil, nil); code != http.StatusNotFound {
		t.Fatalf("leave unknown: %d", code)
	}
	if code := do(t, s, "PATCH", "/tenants/x/replicas/bob", ReplicaPatch{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty patch: %d", code)
	}
	if code := do(t, s, "POST", "/tenants/x/replicas", ReplicaSpec{ID: "bob", Power: 1}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate join: %d", code)
	}
	if code := do(t, s, "POST", "/tenants/x/replicas", ReplicaSpec{
		ID: "z", Components: []ComponentSpec{{Class: "mainframe", Name: "x"}}, Power: 1,
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown class: %d", code)
	}
	if code := do(t, s, "POST", "/tenants/x/advance", AdvanceSpec{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty advance: %d", code)
	}
	// Wall tenants reject advance.
	if code := do(t, s, "PUT", "/tenants/wall", nil, nil); code != http.StatusCreated {
		t.Fatalf("wall create: %d", code)
	}
	if code := do(t, s, "POST", "/tenants/wall/advance", AdvanceSpec{By: Duration(time.Hour)}, nil); code != http.StatusConflict {
		t.Fatalf("wall advance: %d", code)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	event string
	data  string
}

// readSSE parses frames from an event-stream body until it closes or n
// frames arrived.
func readSSE(t *testing.T, body io.Reader, n int, out chan<- sseEvent) {
	t.Helper()
	sc := bufio.NewScanner(body)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		case line == "" && ev.data != "":
			out <- ev
			n--
			if n == 0 {
				return
			}
			ev = sseEvent{}
		}
	}
}

// TestWatchSSE drives a virtual tenant's clock and asserts the SSE stream
// delivers the initial assessment plus one per crossed interval boundary,
// then ends cleanly when the tenant is deleted.
func TestWatchSSE(t *testing.T) {
	s := NewServer()
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	client := srv.Client()
	put, err := http.NewRequest("PUT", srv.URL+"/tenants/w", bytes.NewReader(mustJSON(t, testSpec())))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := client.Do(put); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %v %v", err, resp)
	}

	resp, err := client.Get(srv.URL + "/tenants/w/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events := make(chan sseEvent, 16)
	go readSSE(t, resp.Body, 4, events)

	// The immediate first assessment at t=0.
	first := nextEvent(t, events)
	var a AssessmentJSON
	if err := json.Unmarshal([]byte(first.data), &a); err != nil {
		t.Fatalf("bad event data %q: %v", first.data, err)
	}
	if first.event != "assessment" || a.At != 0 || !a.Safe || a.Tenant != "w" {
		t.Fatalf("first event = %s %+v", first.event, a)
	}

	// Wait until the hub's watcher is attached, then advance 18h = three
	// 6h boundaries → exactly three more emissions, the last two unsafe.
	tenant, _ := s.Manager().Get("w")
	waitFor(t, func() bool { return tenant.Hub().subscribers() == 1 })
	advance := func(d time.Duration) {
		body := bytes.NewReader(mustJSON(t, AdvanceSpec{By: Duration(d)}))
		resp, err := client.Post(srv.URL+"/tenants/w/advance", "application/json", body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("advance: %v %v", err, resp)
		}
		resp.Body.Close()
	}
	advance(18 * time.Hour)
	wantSafe := map[time.Duration]bool{6 * time.Hour: true, 12 * time.Hour: false, 18 * time.Hour: false}
	for i := 0; i < 3; i++ {
		ev := nextEvent(t, events)
		if err := json.Unmarshal([]byte(ev.data), &a); err != nil {
			t.Fatalf("bad event data %q: %v", ev.data, err)
		}
		safe, ok := wantSafe[time.Duration(a.At)]
		if !ok || a.Safe != safe {
			t.Fatalf("event %d: at=%v safe=%v", i, time.Duration(a.At), a.Safe)
		}
		delete(wantSafe, time.Duration(a.At))
	}

	// Deleting the tenant ends the stream: the body reaches EOF.
	req, _ := http.NewRequest("DELETE", srv.URL+"/tenants/w", nil)
	if resp, err := client.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %v %v", err, resp)
	}
	deadline := time.After(5 * time.Second)
	buf := make([]byte, 256)
	done := make(chan error, 1)
	go func() {
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				done <- err
				return
			}
		}
	}()
	select {
	case err := <-done:
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			t.Logf("stream ended with %v", err)
		}
	case <-deadline:
		t.Fatal("stream did not end after tenant delete")
	}
}

// TestCloseEndsStreamsAndRejectsRequests: Server.Close terminates live
// SSE connections (the daemon's drain step) and flips the service to 503.
func TestCloseEndsStreamsAndRejectsRequests(t *testing.T) {
	s := NewServer()
	srv := httptest.NewServer(s)
	defer srv.Close()
	client := srv.Client()

	req, _ := http.NewRequest("PUT", srv.URL+"/tenants/w", bytes.NewReader(mustJSON(t, testSpec())))
	if resp, err := client.Do(req); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %v %v", err, resp)
	}
	resp, err := client.Get(srv.URL + "/tenants/w/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan sseEvent, 4)
	go readSSE(t, resp.Body, 1, events)
	nextEvent(t, events) // stream is live

	s.Close()
	deadline := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() {
		io.Copy(io.Discard, resp.Body)
		close(done)
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("SSE stream survived Close")
	}
	if code := do(t, s, "GET", "/healthz", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-Close request: %d", code)
	}
}

func TestStatsAggregation(t *testing.T) {
	s := NewServer()
	defer s.Close()
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("t%d", i)
		if code := do(t, s, "PUT", "/tenants/"+name, testSpec(), nil); code != http.StatusCreated {
			t.Fatalf("create %s: %d", name, code)
		}
		if code := do(t, s, "GET", "/tenants/"+name+"/assessment", nil, nil); code != http.StatusOK {
			t.Fatalf("assess %s: %d", name, code)
		}
	}
	var st ServerStats
	if code := do(t, s, "GET", "/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Tenants != 3 || st.Replicas != 15 || st.CacheRebuilds != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CacheDeltaApplies != 0 {
		t.Fatalf("delta-applies before any churn: %+v", st)
	}
	// Churn one tenant and re-assess: the mutation lands as a delta-apply,
	// not another rebuild, and the aggregate surfaces it.
	p := 7.0
	if code := do(t, s, "PATCH", "/tenants/t0/replicas/bob", ReplicaPatch{Power: &p}, nil); code != http.StatusNoContent {
		t.Fatalf("set power: %d", code)
	}
	if code := do(t, s, "GET", "/tenants/t0/assessment", nil, nil); code != http.StatusOK {
		t.Fatalf("re-assess t0: %d", code)
	}
	if code := do(t, s, "GET", "/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.CacheRebuilds != 3 || st.CacheDeltaApplies != 1 {
		t.Fatalf("stats after churn = %+v, want 3 rebuilds / 1 delta-apply", st)
	}
}

// TestStatsCountSlowSubscriberDrops: a watch subscriber that never drains
// its channel fills the per-subscriber buffer, the hub's non-blocking
// broadcast starts dropping, and the drops surface on /stats — the
// counter an operator alarms on to find stuck consumers.
func TestStatsCountSlowSubscriberDrops(t *testing.T) {
	s := NewServer()
	defer s.Close()
	spec := testSpec()
	spec.WatchInterval = Duration(time.Hour)
	if code := do(t, s, "PUT", "/tenants/slow", spec, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	tenant, ok := s.Manager().Get("slow")
	if !ok {
		t.Fatal("tenant vanished")
	}

	// Subscribe and never read: the buffer absorbs the first
	// subscriberBuffer emissions, everything after is a drop.
	id, _, err := tenant.Hub().subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer tenant.Hub().unsubscribe(id)
	waitFor(t, func() bool { ev, _ := tenant.Hub().stats(); return ev >= 1 })

	// Pace the clock one watch tick at a time, waiting for each broadcast
	// to land, until the hub has demonstrably dropped.
	for i := 0; i < subscriberBuffer+4; i++ {
		if _, err := tenant.Advance(time.Hour); err != nil {
			t.Fatal(err)
		}
		want := uint64(i + 2) // initial emission + one per tick
		waitFor(t, func() bool { ev, _ := tenant.Hub().stats(); return ev >= want })
	}
	waitFor(t, func() bool { _, dropped := tenant.Hub().stats(); return dropped > 0 })

	var st ServerStats
	if code := do(t, s, "GET", "/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Watchers != 1 {
		t.Fatalf("watchers = %d, want the one stuck subscriber", st.Watchers)
	}
	if st.WatchDropped == 0 {
		t.Fatalf("stats show no drops after overflowing the buffer: %+v", st)
	}
	if st.WatchEvents <= uint64(subscriberBuffer) {
		t.Fatalf("events %d never exceeded the buffer %d", st.WatchEvents, subscriberBuffer)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func nextEvent(t *testing.T, events <-chan sseEvent) sseEvent {
	t.Helper()
	select {
	case ev := <-events:
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for SSE event")
		return sseEvent{}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
