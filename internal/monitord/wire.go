package monitord

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/diversity"
	"repro/internal/vuln"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("36h0m0s") and unmarshals from either a duration string ("36h") or a
// JSON number of nanoseconds.
type Duration time.Duration

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "72h" or 259200000000000.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("monitord: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("monitord: bad duration %s: %w", b, err)
	}
	*d = Duration(n)
	return nil
}

// TenantSpec is the PUT /tenants/{tenant} body. The zero value is a valid
// spec: a wall-clock BFT tenant with default weighting, a 1s watch
// interval, and an empty population.
type TenantSpec struct {
	// Substrate names the consensus family: "bft" (default) or "nakamoto".
	Substrate string `json:"substrate,omitempty"`
	// Threshold sets a bespoke tolerated fraction f in (0,1) instead of a
	// named family; mutually exclusive with Substrate.
	Threshold float64 `json:"threshold,omitempty"`
	// Weighting discounts tiers (two-tier enforcement); nil = face value.
	Weighting *WeightingSpec `json:"weighting,omitempty"`
	// WatchInterval paces the tenant's Watch stream. Default 1s.
	WatchInterval Duration `json:"watchInterval,omitempty"`
	// Virtual runs the tenant on a virtual clock driven by POST …/advance;
	// the default is wall time since creation.
	Virtual bool `json:"virtual,omitempty"`
	// Replicas seeds the population at creation.
	Replicas []ReplicaSpec `json:"replicas,omitempty"`
	// Vulns seeds the catalog at creation.
	Vulns []VulnSpec `json:"vulns,omitempty"`
}

// WeightingSpec mirrors registry.Weighting on the wire.
type WeightingSpec struct {
	Attested float64 `json:"attested"`
	Declared float64 `json:"declared"`
}

// ComponentSpec is one stack component; Class uses the canonical class
// names ("operating-system", "crypto-library", …).
type ComponentSpec struct {
	Class   string `json:"class"`
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// classByName inverts config.Class.String for wire parsing.
var classByName = func() map[string]config.Class {
	m := make(map[string]config.Class, len(config.Classes()))
	for _, c := range config.Classes() {
		m[c.String()] = c
	}
	return m
}()

func (cs ComponentSpec) component() (config.Component, error) {
	class, ok := classByName[cs.Class]
	if !ok {
		return config.Component{}, fmt.Errorf("monitord: unknown component class %q", cs.Class)
	}
	return config.Component{Class: class, Name: cs.Name, Version: cs.Version}, nil
}

// ReplicaSpec is the POST …/replicas body: a declared join.
type ReplicaSpec struct {
	ID           string          `json:"id"`
	Components   []ComponentSpec `json:"components"`
	Power        float64         `json:"power"`
	PatchLatency Duration        `json:"patchLatency,omitempty"`
}

func (rs ReplicaSpec) configuration() (config.Configuration, error) {
	comps := make([]config.Component, 0, len(rs.Components))
	for _, cs := range rs.Components {
		c, err := cs.component()
		if err != nil {
			return config.Configuration{}, err
		}
		comps = append(comps, c)
	}
	return config.New(comps...)
}

// ReplicaPatch is the PATCH …/replicas/{id} body; both fields are
// optional and compose (a power change plus a migration is one request).
type ReplicaPatch struct {
	// Power, when set, updates the replica's raw voting power.
	Power *float64 `json:"power,omitempty"`
	// Components, when non-empty, migrates the replica to a new
	// configuration (demoting it to the declared tier, as a real upgrade
	// invalidates the previous measurement).
	Components []ComponentSpec `json:"components,omitempty"`
}

// VulnSpec is the POST …/vulns body: one disclosure with its patch event.
type VulnSpec struct {
	ID        string   `json:"id"`
	Class     string   `json:"class"`
	Product   string   `json:"product"`
	Version   string   `json:"version,omitempty"`
	Disclosed Duration `json:"disclosed"`
	PatchAt   Duration `json:"patchAt"`
	Severity  float64  `json:"severity"`
}

func (vs VulnSpec) vulnerability() (vuln.Vulnerability, error) {
	class, ok := classByName[vs.Class]
	if !ok {
		return vuln.Vulnerability{}, fmt.Errorf("monitord: unknown component class %q", vs.Class)
	}
	return vuln.Vulnerability{
		ID:        vuln.ID(vs.ID),
		Class:     class,
		Product:   vs.Product,
		Version:   vs.Version,
		Disclosed: time.Duration(vs.Disclosed),
		PatchAt:   time.Duration(vs.PatchAt),
		Severity:  vs.Severity,
	}, nil
}

// ReportJSON mirrors diversity.Report on the wire.
type ReportJSON struct {
	Support                 int     `json:"support"`
	Members                 int     `json:"members"`
	Entropy                 float64 `json:"entropy"`
	NormalizedEntropy       float64 `json:"normalizedEntropy"`
	EffectiveConfigurations float64 `json:"effectiveConfigurations"`
	SimpsonIndex            float64 `json:"simpsonIndex"`
	MaxShare                float64 `json:"maxShare"`
	Kappa                   int     `json:"kappa,omitempty"`
	Omega                   int     `json:"omega,omitempty"`
	MinConfigFaultsToThird  int     `json:"minConfigFaultsToThird"`
	MinConfigFaultsToHalf   int     `json:"minConfigFaultsToHalf"`
}

func reportJSON(r diversity.Report) ReportJSON {
	return ReportJSON{
		Support:                 r.Support,
		Members:                 r.Members,
		Entropy:                 r.Entropy,
		NormalizedEntropy:       r.NormalizedEntropy,
		EffectiveConfigurations: r.EffectiveConfigurations,
		SimpsonIndex:            r.SimpsonIndex,
		MaxShare:                r.MaxShare,
		Kappa:                   r.Kappa,
		Omega:                   r.Omega,
		MinConfigFaultsToThird:  r.MinConfigFaultsToThird,
		MinConfigFaultsToHalf:   r.MinConfigFaultsToHalf,
	}
}

// FaultJSON is one vulnerability's effect at the assessed instant.
type FaultJSON struct {
	Vuln          string   `json:"vuln"`
	Compromised   []string `json:"compromised"`
	Power         float64  `json:"power"`
	PowerFraction float64  `json:"powerFraction"`
}

// AssessmentJSON is the wire form of core.Assessment, shared by the GET
// endpoints and the SSE stream.
type AssessmentJSON struct {
	Tenant        string      `json:"tenant,omitempty"`
	At            Duration    `json:"at"`
	Substrate     string      `json:"substrate"`
	Threshold     float64     `json:"threshold"`
	Safe          bool        `json:"safe"`
	TotalFraction float64     `json:"totalFraction"`
	SumFraction   float64     `json:"sumFraction"`
	Diversity     ReportJSON  `json:"diversity"`
	Faults        []FaultJSON `json:"faults,omitempty"`
}

func assessmentJSON(tenant string, a core.Assessment) AssessmentJSON {
	out := AssessmentJSON{
		Tenant:        tenant,
		At:            Duration(a.At),
		Substrate:     a.Substrate,
		Threshold:     a.Threshold,
		Safe:          a.Safe,
		TotalFraction: a.Injection.TotalFraction,
		SumFraction:   a.Injection.SumFraction,
		Diversity:     reportJSON(a.Diversity),
	}
	for _, f := range a.Injection.Faults {
		out.Faults = append(out.Faults, FaultJSON{
			Vuln:          string(f.Vuln),
			Compromised:   f.Compromised,
			Power:         f.Power,
			PowerFraction: f.PowerFraction,
		})
	}
	return out
}

// CacheStatsJSON mirrors core.CacheStats.
type CacheStatsJSON struct {
	Rebuilds     uint64 `json:"rebuilds"`
	DeltaApplies uint64 `json:"deltaApplies"`
	Hits         uint64 `json:"hits"`
}

// TenantInfo is the GET /tenants/{tenant} body.
type TenantInfo struct {
	Name         string         `json:"name"`
	Virtual      bool           `json:"virtual"`
	Now          Duration       `json:"now"`
	Substrate    string         `json:"substrate"`
	Threshold    float64        `json:"threshold"`
	Replicas     int            `json:"replicas"`
	Attested     int            `json:"attested"`
	Declared     int            `json:"declared"`
	Vulns        int            `json:"vulns"`
	Generation   uint64         `json:"generation"`
	Watchers     int            `json:"watchers"`
	WatchEvents  uint64         `json:"watchEvents"`
	WatchDropped uint64         `json:"watchDropped"`
	Cache        CacheStatsJSON `json:"cache"`
}

func tenantInfo(t *Tenant) TenantInfo {
	attested, declared, _, _ := t.Registry.TierCounts()
	events, dropped := t.hub.stats()
	cs := t.Monitor.Stats()
	return TenantInfo{
		Name:         t.Name,
		Virtual:      t.Virtual(),
		Now:          Duration(t.Now()),
		Substrate:    t.substrate,
		Threshold:    t.threshold,
		Replicas:     t.Registry.Size(),
		Attested:     attested,
		Declared:     declared,
		Vulns:        t.Catalog.Len(),
		Generation:   t.Registry.Generation(),
		Watchers:     t.hub.subscribers(),
		WatchEvents:  events,
		WatchDropped: dropped,
		Cache:        CacheStatsJSON{Rebuilds: cs.Rebuilds, DeltaApplies: cs.DeltaApplies, Hits: cs.Hits},
	}
}

// ServerStats is the GET /stats body: the service-wide aggregate.
type ServerStats struct {
	Tenants           int    `json:"tenants"`
	Replicas          int    `json:"replicas"`
	Watchers          int    `json:"watchers"`
	WatchEvents       uint64 `json:"watchEvents"`
	WatchDropped      uint64 `json:"watchDropped"`
	CacheRebuilds     uint64 `json:"cacheRebuilds"`
	CacheDeltaApplies uint64 `json:"cacheDeltaApplies"`
	CacheHits         uint64 `json:"cacheHits"`
}

// AdvanceSpec is the POST …/advance body; exactly one of By or To must be
// set.
type AdvanceSpec struct {
	By Duration `json:"by,omitempty"`
	To Duration `json:"to,omitempty"`
}
