package monitord

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bft"
	"repro/internal/core"
	"repro/internal/nakamoto"
	"repro/internal/registry"
	"repro/internal/vuln"
)

// Errors returned by the tenant manager; handlers map them to HTTP status
// codes.
var (
	ErrTenantExists  = errors.New("monitord: tenant already exists")
	ErrUnknownTenant = errors.New("monitord: unknown tenant")
	ErrWallTenant    = errors.New("monitord: tenant runs on wall time; advance applies to virtual tenants only")
)

// Tenant is one hosted deployment: a registry, a vulnerability catalog and
// a monitor sharing one clock, plus the SSE hub fanning its Watch stream
// out to subscribers.
type Tenant struct {
	Name     string
	Registry *registry.Registry
	Catalog  *vuln.Catalog
	Monitor  *core.Monitor

	substrate string
	threshold float64
	interval  time.Duration
	created   time.Time
	vt        *core.VirtualTime // nil → wall clock
	hub       *hub
}

// Now returns the tenant's current instant: virtual-clock position for
// virtual tenants, elapsed wall time since creation otherwise.
func (t *Tenant) Now() time.Duration {
	if t.vt != nil {
		return t.vt.Now()
	}
	return time.Since(t.created)
}

// Virtual reports whether the tenant's clock is driven by POST …/advance
// rather than wall time.
func (t *Tenant) Virtual() bool { return t.vt != nil }

// Advance moves a virtual tenant's clock forward by d and returns the new
// instant; wall tenants reject it.
func (t *Tenant) Advance(d time.Duration) (time.Duration, error) {
	if t.vt == nil {
		return 0, ErrWallTenant
	}
	return t.vt.Advance(d), nil
}

// AdvanceTo moves a virtual tenant's clock to instant at (monotone: moving
// backwards is a no-op) and returns the resulting instant.
func (t *Tenant) AdvanceTo(at time.Duration) (time.Duration, error) {
	if t.vt == nil {
		return 0, ErrWallTenant
	}
	return t.vt.AdvanceTo(at), nil
}

// Hub returns the tenant's SSE fan-out hub.
func (t *Tenant) Hub() *hub { return t.hub }

// Manager owns the tenant set. All methods are safe for concurrent use;
// per-tenant state is synchronized by the registry/monitor/hub themselves,
// so the manager's lock is only held for map access, never during
// assessment.
type Manager struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
	closed  bool
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{tenants: make(map[string]*Tenant)}
}

// validTenantName keeps names path- and shell-safe: 1–128 chars of
// [a-zA-Z0-9._-], not starting with a dot or dash.
func validTenantName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("monitord: tenant name length %d out of [1,128]", len(name))
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
			if i == 0 && c != '_' {
				return fmt.Errorf("monitord: tenant name %q starts with %q", name, string(c))
			}
		default:
			return fmt.Errorf("monitord: tenant name %q contains %q; use [a-zA-Z0-9._-]", name, string(c))
		}
	}
	return nil
}

// Create builds a tenant from spec and registers it under name. The spec's
// seed replicas and vulnerabilities are applied before the tenant becomes
// visible, so the first reader already sees the seeded population.
func (m *Manager) Create(name string, spec TenantSpec) (*Tenant, error) {
	if err := validTenantName(name); err != nil {
		return nil, err
	}
	t, err := buildTenant(name, spec)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("monitord: manager closed")
	}
	if _, exists := m.tenants[name]; exists {
		return nil, fmt.Errorf("%w: %s", ErrTenantExists, name)
	}
	m.tenants[name] = t
	return t, nil
}

// buildTenant assembles the registry/catalog/monitor triple outside the
// manager lock.
func buildTenant(name string, spec TenantSpec) (*Tenant, error) {
	interval := time.Duration(spec.WatchInterval)
	if interval == 0 {
		interval = time.Second
	}
	if interval < 0 {
		return nil, fmt.Errorf("monitord: negative watch interval %v", interval)
	}

	t := &Tenant{
		Name:     name,
		Catalog:  vuln.NewCatalog(),
		interval: interval,
		created:  time.Now(),
	}
	var now func() time.Duration
	if spec.Virtual {
		t.vt = core.NewVirtualTime()
		now = t.vt.Now
	} else {
		now = func() time.Duration { return time.Since(t.created) }
	}
	t.Registry = registry.New(nil, now)

	opts := []core.Option{
		core.WithCatalog(t.Catalog),
		core.WithWatchInterval(interval),
	}
	if t.vt != nil {
		opts = append(opts, core.WithVirtualTime(t.vt))
	} else {
		opts = append(opts, core.WithClock(now))
	}
	sub, err := substrateFor(spec)
	if err != nil {
		return nil, err
	}
	opts = append(opts, sub)
	if spec.Weighting != nil {
		opts = append(opts, core.WithWeighting(registry.Weighting{
			Attested: spec.Weighting.Attested,
			Declared: spec.Weighting.Declared,
		}))
	}
	mon, err := core.NewMonitor(t.Registry, opts...)
	if err != nil {
		return nil, err
	}
	t.Monitor = mon
	t.substrate = mon.Substrate().Name()
	t.threshold = mon.Threshold()
	t.hub = newHub(mon)

	for _, rs := range spec.Replicas {
		if err := joinReplica(t, rs); err != nil {
			return nil, err
		}
	}
	for _, vs := range spec.Vulns {
		v, err := vs.vulnerability()
		if err != nil {
			return nil, err
		}
		if err := t.Catalog.Add(v); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// substrateFor maps the spec's consensus selection to a monitor option:
// a bespoke threshold wins, then the named family, defaulting to BFT.
func substrateFor(spec TenantSpec) (core.Option, error) {
	if spec.Threshold != 0 {
		if spec.Substrate != "" {
			return nil, fmt.Errorf("monitord: substrate %q and threshold %v are mutually exclusive", spec.Substrate, spec.Threshold)
		}
		return core.WithThreshold(spec.Threshold), nil
	}
	switch spec.Substrate {
	case "", "bft":
		return core.WithSubstrate(bft.Substrate()), nil
	case "nakamoto":
		return core.WithSubstrate(nakamoto.Substrate()), nil
	default:
		return nil, fmt.Errorf("monitord: unknown substrate %q (have bft, nakamoto, or set threshold)", spec.Substrate)
	}
}

// joinReplica applies one ReplicaSpec as a declared join.
func joinReplica(t *Tenant, rs ReplicaSpec) error {
	cfg, err := rs.configuration()
	if err != nil {
		return err
	}
	return t.Registry.JoinDeclared(registry.ReplicaID(rs.ID), cfg, rs.Power, time.Duration(rs.PatchLatency))
}

// Get returns the named tenant.
func (m *Manager) Get(name string) (*Tenant, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tenants[name]
	return t, ok
}

// Delete removes a tenant, closing its hub so every SSE stream on it ends.
func (m *Manager) Delete(name string) error {
	m.mu.Lock()
	t, ok := m.tenants[name]
	if ok {
		delete(m.tenants, name)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTenant, name)
	}
	t.hub.close()
	return nil
}

// List returns all tenants sorted by name.
func (m *Manager) List() []*Tenant {
	m.mu.RLock()
	out := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		out = append(out, t)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the tenant count.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.tenants)
}

// Close deletes every tenant and rejects further Creates.
func (m *Manager) Close() {
	m.mu.Lock()
	tenants := m.tenants
	m.tenants = make(map[string]*Tenant)
	m.closed = true
	m.mu.Unlock()
	for _, t := range tenants {
		t.hub.close()
	}
}
