package monitord

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// recorder collects emission instants from one subscriber goroutine while
// the driver polls progress — mutex-guarded so -race stays quiet.
type recorder struct {
	mu sync.Mutex
	at []time.Duration
}

func (r *recorder) add(d time.Duration) {
	r.mu.Lock()
	r.at = append(r.at, d)
	r.mu.Unlock()
}

func (r *recorder) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.at)
}

func (r *recorder) snapshot() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.at...)
}

// TestWatchersShareOneComputationPerGeneration is the acceptance proof for
// the service's concurrency model, run under -race in CI: N concurrent
// watch subscribers plus M concurrent readers on one tenant trigger
// exactly one assessment computation (diversity report + exposure index
// rebuild) per registry generation — everything else is served from the
// monitor's per-snapshot cache through the shared Watch stream.
func TestWatchersShareOneComputationPerGeneration(t *testing.T) {
	const (
		watchers    = 8
		readers     = 4
		generations = 5
		ticksPerGen = 3
	)
	mgr := NewManager()
	defer mgr.Close()
	spec := testSpec()
	spec.WatchInterval = Duration(time.Hour)
	tenant, err := mgr.Create("shared", spec)
	if err != nil {
		t.Fatal(err)
	}

	// Attach N subscribers to the hub; all ride one Watch stream. The
	// first is subscribed alone and its initial emission awaited, which
	// pins the stream's start instant at t=0 before the others — or any
	// mutation — can race the Watch goroutine's startup; the remaining
	// N-1 then see every tick from 1h on.
	type sub struct {
		id int
		ch <-chan core.Assessment
	}
	subs := make([]sub, watchers)
	seen := make([]*recorder, watchers)
	var wg sync.WaitGroup
	drain := func(rec *recorder, ch <-chan core.Assessment) {
		defer wg.Done()
		for a := range ch {
			rec.add(a.At)
		}
	}
	for i := range subs {
		id, ch, err := tenant.Hub().subscribe()
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub{id, ch}
		seen[i] = &recorder{}
		wg.Add(1)
		go drain(seen[i], ch)
		if i == 0 {
			waitFor(t, func() bool { return seen[0].len() == 1 })
		}
	}

	// M concurrent readers hammer Assess at the current instant while the
	// clock and the membership move.
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for i := 0; i < readers; i++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := tenant.Monitor.Assess(tenant.Now()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Drive G generations: one mutation each, then several watch ticks on
	// the unchanged membership.
	baseGen := tenant.Registry.Generation()
	for g := 0; g < generations; g++ {
		if err := tenant.Registry.SetPower("alice", float64(30+g+1)); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < ticksPerGen; k++ {
			if _, err := tenant.Advance(time.Hour); err != nil {
				t.Fatal(err)
			}
			// Let every subscriber observe the boundary before the next
			// advance so no one misses an emission to buffer overflow.
			ticks := g*ticksPerGen + k + 1
			for i := range seen {
				want := ticks
				if i == 0 {
					want++ // the probe also saw the initial emission
				}
				i, want := i, want
				waitFor(t, func() bool { return seen[i].len() >= want })
			}
		}
	}
	close(stop)
	readerWG.Wait()
	for _, sb := range subs {
		tenant.Hub().unsubscribe(sb.id)
	}
	wg.Wait()

	if got := tenant.Registry.Generation() - baseGen; got != generations {
		t.Fatalf("registry advanced %d generations, want %d", got, generations)
	}
	// Every subscriber saw the same hourly timeline: the probe from t=0
	// (initial emission included), the rest every tick from 1h on.
	ticksTotal := generations * ticksPerGen
	for i := range seen {
		at := seen[i].snapshot()
		want := ticksTotal
		first := time.Hour
		if i == 0 {
			want++
			first = 0
		}
		if len(at) != want {
			t.Fatalf("subscriber %d: %d emissions, want %d", i, len(at), want)
		}
		for k, got := range at {
			if want := first + time.Duration(k)*time.Hour; got != want {
				t.Fatalf("subscriber %d emission %d at %v, want %v", i, k, got, want)
			}
		}
	}

	// The proof: across 8 watchers × 16 emissions and 4 readers' tight
	// Assess loops, the monitor computed exactly once per generation it
	// observed — one initial rebuild, then one O(Δ) delta-apply per
	// mutation, not once per watcher or per read.
	stats := tenant.Monitor.Stats()
	if stats.Rebuilds != 1 || stats.DeltaApplies != uint64(generations) {
		t.Fatalf("%d rebuilds / %d delta-applies for %d generations (%d watchers, %d readers): want 1 / %d; stats=%+v",
			stats.Rebuilds, stats.DeltaApplies, generations, watchers, readers, generations, stats)
	}
	if stats.Rebuilds == 0 || stats.Hits == 0 {
		t.Fatalf("implausible stats %+v", stats)
	}
	events, dropped := tenant.Hub().stats()
	if dropped != 0 {
		t.Fatalf("%d dropped deliveries in a paced test", dropped)
	}
	if want := uint64(1 + ticksTotal); events != want {
		t.Fatalf("hub broadcast %d events, want %d", events, want)
	}
}

// TestHubLazyStartStop: the shared stream exists only while subscribers
// do, so idle tenants cost no watch goroutines, and a subscriber arriving
// after a stop gets a fresh stream.
func TestHubLazyStartStop(t *testing.T) {
	mgr := NewManager()
	defer mgr.Close()
	tenant, err := mgr.Create("lazy", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	h := tenant.Hub()
	if h.subscribers() != 0 {
		t.Fatal("fresh hub has subscribers")
	}
	statsBefore := tenant.Monitor.Stats()
	if statsBefore.Rebuilds != 0 {
		t.Fatalf("idle tenant assessed: %+v", statsBefore)
	}

	id1, ch1, err := h.subscribe()
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch1 // initial emission proves the stream started
	if a.At != 0 {
		t.Fatalf("initial emission at %v", a.At)
	}
	id2, ch2, err := h.subscribe()
	if err != nil {
		t.Fatal(err)
	}
	h.unsubscribe(id1)
	if _, open := <-ch1; open {
		t.Fatal("unsubscribed channel not closed")
	}
	h.unsubscribe(id2)
	if h.subscribers() != 0 {
		t.Fatal("subscribers remain after unsubscribe")
	}
	// ch2 may still hold the initial emission; it must be closed after.
	for range ch2 {
	}

	// Re-subscribing restarts the stream.
	_, ch3, err := h.subscribe()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case _, open := <-ch3:
		if !open {
			t.Fatal("restarted stream closed immediately")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("restarted stream emitted nothing")
	}
	h.close()
	if _, _, err := h.subscribe(); err == nil {
		t.Fatal("subscribe after close succeeded")
	}
}
