package ledger

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cryptoutil"
)

func genesis() *Block {
	return NewBlock(cryptoutil.ZeroDigest, 0, "genesis", 0, nil)
}

func mkTx(i int) Tx {
	return Tx{From: "alice", To: "bob", Amount: uint64(i), Nonce: uint64(i)}
}

func TestTxDigestDistinct(t *testing.T) {
	a, b := mkTx(1), mkTx(2)
	if a.Digest() == b.Digest() {
		t.Fatal("distinct txs share a digest")
	}
	if a.Digest() != mkTx(1).Digest() {
		t.Fatal("digest not deterministic")
	}
}

func TestComputeTxRoot(t *testing.T) {
	if ComputeTxRoot(nil) != cryptoutil.ZeroDigest {
		t.Fatal("empty body root not zero")
	}
	r1 := ComputeTxRoot([]Tx{mkTx(1), mkTx(2)})
	r2 := ComputeTxRoot([]Tx{mkTx(2), mkTx(1)})
	if r1 == r2 {
		t.Fatal("root insensitive to order")
	}
}

func TestBlockValidateBody(t *testing.T) {
	b := NewBlock(cryptoutil.ZeroDigest, 1, "p", 0, []Tx{mkTx(1)})
	if err := b.ValidateBody(); err != nil {
		t.Fatal(err)
	}
	b.Txs = append(b.Txs, mkTx(2)) // tamper with body
	if err := b.ValidateBody(); err == nil {
		t.Fatal("tampered body accepted")
	}
}

func TestBlockDigestSensitivity(t *testing.T) {
	g := genesis()
	a := NewBlock(g.Digest(), 1, "p", time.Second, nil)
	b := NewBlock(g.Digest(), 1, "q", time.Second, nil) // different proposer
	if a.Digest() == b.Digest() {
		t.Fatal("proposer not covered by digest")
	}
	c := NewBlock(g.Digest(), 1, "p", 2*time.Second, nil) // different time
	if a.Digest() == c.Digest() {
		t.Fatal("time not covered by digest")
	}
}

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(nil); err == nil {
		t.Fatal("nil genesis accepted")
	}
	bad := genesis()
	bad.Header.TxRoot = cryptoutil.Hash([]byte("bogus"))
	if _, err := NewChain(bad); err == nil {
		t.Fatal("invalid genesis body accepted")
	}
}

func TestChainAppendLinear(t *testing.T) {
	g := genesis()
	c, err := NewChain(g)
	if err != nil {
		t.Fatal(err)
	}
	b1 := NewBlock(g.Digest(), 1, "p", time.Second, []Tx{mkTx(1)})
	if err := c.Append(b1); err != nil {
		t.Fatal(err)
	}
	if c.Tip() != b1.Digest() {
		t.Fatal("tip not advanced")
	}
	if c.TipBlock().Header.Height != 1 {
		t.Fatal("tip block wrong")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	got, err := c.Get(b1.Digest())
	if err != nil || got != b1 {
		t.Fatalf("Get: %v", err)
	}
}

func TestChainAppendErrors(t *testing.T) {
	g := genesis()
	c, _ := NewChain(g)
	if err := c.Append(nil); err == nil {
		t.Fatal("nil block accepted")
	}
	orphan := NewBlock(cryptoutil.Hash([]byte("nowhere")), 1, "p", 0, nil)
	if err := c.Append(orphan); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("orphan err = %v", err)
	}
	wrongHeight := NewBlock(g.Digest(), 5, "p", 0, nil)
	if err := c.Append(wrongHeight); !errors.Is(err, ErrBadHeight) {
		t.Fatalf("height err = %v", err)
	}
	b1 := NewBlock(g.Digest(), 1, "p", 0, nil)
	if err := c.Append(b1); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(b1); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup err = %v", err)
	}
	tampered := NewBlock(g.Digest(), 1, "q", 0, []Tx{mkTx(1)})
	tampered.Txs = nil // body no longer matches root
	if err := c.Append(tampered); err == nil {
		t.Fatal("tampered body accepted")
	}
	if _, err := c.Get(cryptoutil.Hash([]byte("missing"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get missing err = %v", err)
	}
}

func TestForkChoiceLongestChain(t *testing.T) {
	g := genesis()
	c, _ := NewChain(g)
	// Two competing height-1 blocks: first seen keeps the tip.
	a1 := NewBlock(g.Digest(), 1, "a", 1, nil)
	b1 := NewBlock(g.Digest(), 1, "b", 2, nil)
	c.Append(a1)
	c.Append(b1)
	if c.Tip() != a1.Digest() {
		t.Fatal("equal-height fork displaced first-seen tip")
	}
	// Extending the b-fork to height 2 reorgs.
	b2 := NewBlock(b1.Digest(), 2, "b", 3, nil)
	c.Append(b2)
	if c.Tip() != b2.Digest() {
		t.Fatal("longer fork did not win")
	}
}

func TestPathFromGenesisAndDepth(t *testing.T) {
	g := genesis()
	c, _ := NewChain(g)
	prev := g
	var blocks []*Block
	for h := uint64(1); h <= 5; h++ {
		b := NewBlock(prev.Digest(), h, "p", time.Duration(h), nil)
		if err := c.Append(b); err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
		prev = b
	}
	path, err := c.PathFromGenesis(c.Tip())
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 6 || path[0] != g.Digest() || path[5] != c.Tip() {
		t.Fatalf("path = %v", path)
	}
	d, err := c.Depth(blocks[1].Digest()) // height 2, tip height 5
	if err != nil || d != 3 {
		t.Fatalf("depth = %d, %v; want 3", d, err)
	}
	if d, _ := c.Depth(c.Tip()); d != 0 {
		t.Fatalf("tip depth = %d", d)
	}
	if _, err := c.Depth(cryptoutil.Hash([]byte("missing"))); err == nil {
		t.Fatal("depth of unknown block succeeded")
	}
}

func TestDepthReorgedBlock(t *testing.T) {
	g := genesis()
	c, _ := NewChain(g)
	a1 := NewBlock(g.Digest(), 1, "a", 1, nil)
	c.Append(a1)
	b1 := NewBlock(g.Digest(), 1, "b", 2, nil)
	b2 := NewBlock(b1.Digest(), 2, "b", 3, nil)
	c.Append(b1)
	c.Append(b2)
	// a1 has been reorged off the best chain.
	if _, err := c.Depth(a1.Digest()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("reorged depth err = %v", err)
	}
}

func TestMempoolFIFO(t *testing.T) {
	m := NewMempool()
	for i := 0; i < 5; i++ {
		if !m.Add(mkTx(i)) {
			t.Fatalf("add %d failed", i)
		}
	}
	if m.Add(mkTx(0)) {
		t.Fatal("duplicate accepted")
	}
	if m.Len() != 5 {
		t.Fatalf("len = %d", m.Len())
	}
	got := m.Take(3)
	if len(got) != 3 || got[0].Amount != 0 || got[2].Amount != 2 {
		t.Fatalf("take = %v", got)
	}
	if m.Len() != 2 {
		t.Fatalf("len after take = %d", m.Len())
	}
	rest := m.Take(10)
	if len(rest) != 2 || rest[0].Amount != 3 {
		t.Fatalf("rest = %v", rest)
	}
	if len(m.Take(1)) != 0 {
		t.Fatal("empty pool returned txs")
	}
}

func TestMempoolRemove(t *testing.T) {
	m := NewMempool()
	m.Add(mkTx(1))
	m.Add(mkTx(2))
	m.Remove([]Tx{mkTx(1)})
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	got := m.Take(10)
	if len(got) != 1 || got[0].Amount != 2 {
		t.Fatalf("take after remove = %v", got)
	}
}

// Property: any sequence of appends preserves the invariant that the tip is
// a stored block of maximal height.
func TestPropTipMaximalHeight(t *testing.T) {
	f := func(choices []bool) bool {
		g := genesis()
		c, err := NewChain(g)
		if err != nil {
			return false
		}
		tips := []*Block{g}
		for i, extendTip := range choices {
			var parent *Block
			if extendTip {
				parent = c.TipBlock()
			} else {
				parent = tips[i%len(tips)]
			}
			b := NewBlock(parent.Digest(), parent.Header.Height+1, "p", time.Duration(i), nil)
			if err := c.Append(b); err != nil {
				return false
			}
			tips = append(tips, b)
		}
		best := c.TipBlock().Header.Height
		for _, b := range tips {
			if b.Header.Height > best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
