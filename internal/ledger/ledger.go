// Package ledger provides the blockchain data structures shared by the
// consensus substrates: transactions, Merkle-rooted blocks, a tree-shaped
// block store with longest-chain selection (for Nakamoto forks), and a
// FIFO mempool.
package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/cryptoutil"
)

// Tx is a minimal transaction: a transfer with an anti-replay nonce and an
// opaque payload.
type Tx struct {
	From    string
	To      string
	Amount  uint64
	Nonce   uint64
	Payload []byte
}

// Encode returns the canonical byte encoding of the transaction.
func (tx Tx) Encode() []byte {
	var nums [16]byte
	binary.BigEndian.PutUint64(nums[:8], tx.Amount)
	binary.BigEndian.PutUint64(nums[8:], tx.Nonce)
	d := cryptoutil.Hash([]byte("repro/tx/v1"), []byte(tx.From), []byte(tx.To), nums[:], tx.Payload)
	return d[:]
}

// Digest returns the transaction id.
func (tx Tx) Digest() cryptoutil.Digest {
	return cryptoutil.Hash([]byte("repro/txid/v1"), tx.Encode())
}

// Header is a block header.
type Header struct {
	Parent   cryptoutil.Digest
	Height   uint64
	TxRoot   cryptoutil.Digest // Merkle root over transaction encodings
	Proposer string            // replica/miner identity
	Time     time.Duration     // virtual timestamp
}

// Block is a header plus its transaction body.
type Block struct {
	Header Header
	Txs    []Tx
}

// ComputeTxRoot returns the Merkle root over the transactions; the empty
// body has the zero root by convention.
func ComputeTxRoot(txs []Tx) cryptoutil.Digest {
	if len(txs) == 0 {
		return cryptoutil.ZeroDigest
	}
	leaves := make([][]byte, len(txs))
	for i, tx := range txs {
		leaves[i] = tx.Encode()
	}
	root, err := cryptoutil.MerkleRoot(leaves)
	if err != nil {
		// Unreachable: len(txs) > 0.
		panic(err)
	}
	return root
}

// NewBlock assembles a block with a correct TxRoot.
func NewBlock(parent cryptoutil.Digest, height uint64, proposer string, at time.Duration, txs []Tx) *Block {
	return &Block{
		Header: Header{
			Parent:   parent,
			Height:   height,
			TxRoot:   ComputeTxRoot(txs),
			Proposer: proposer,
			Time:     at,
		},
		Txs: txs,
	}
}

// Digest returns the block id (hash of the header).
func (b *Block) Digest() cryptoutil.Digest {
	var nums [16]byte
	binary.BigEndian.PutUint64(nums[:8], b.Header.Height)
	binary.BigEndian.PutUint64(nums[8:], uint64(b.Header.Time))
	return cryptoutil.Hash([]byte("repro/block/v1"),
		b.Header.Parent[:], b.Header.TxRoot[:], []byte(b.Header.Proposer), nums[:])
}

// ValidateBody checks the header's TxRoot commits to the body.
func (b *Block) ValidateBody() error {
	if got := ComputeTxRoot(b.Txs); got != b.Header.TxRoot {
		return fmt.Errorf("ledger: tx root mismatch: header %s, body %s", b.Header.TxRoot.Short(), got.Short())
	}
	return nil
}

// Errors returned by the chain store.
var (
	ErrUnknownParent = errors.New("ledger: unknown parent block")
	ErrDuplicate     = errors.New("ledger: duplicate block")
	ErrBadHeight     = errors.New("ledger: height is not parent height + 1")
	ErrNotFound      = errors.New("ledger: block not found")
)

// Chain is a block tree rooted at a genesis block, with longest-chain tip
// selection (height, then earliest-received as tie-breaker — the Nakamoto
// "first seen" rule). BFT uses it as a linear chain by only ever extending
// the tip.
type Chain struct {
	genesis  cryptoutil.Digest
	blocks   map[cryptoutil.Digest]*Block
	order    map[cryptoutil.Digest]int // arrival order for tie-breaks
	children map[cryptoutil.Digest][]cryptoutil.Digest
	tip      cryptoutil.Digest
	arrivals int
}

// NewChain creates a chain containing only the given genesis block.
func NewChain(genesis *Block) (*Chain, error) {
	if genesis == nil {
		return nil, errors.New("ledger: nil genesis")
	}
	if err := genesis.ValidateBody(); err != nil {
		return nil, err
	}
	id := genesis.Digest()
	return &Chain{
		genesis:  id,
		blocks:   map[cryptoutil.Digest]*Block{id: genesis},
		order:    map[cryptoutil.Digest]int{id: 0},
		children: make(map[cryptoutil.Digest][]cryptoutil.Digest),
		tip:      id,
	}, nil
}

// Genesis returns the genesis block id.
func (c *Chain) Genesis() cryptoutil.Digest { return c.genesis }

// Tip returns the current best tip id.
func (c *Chain) Tip() cryptoutil.Digest { return c.tip }

// TipBlock returns the current best tip block.
func (c *Chain) TipBlock() *Block { return c.blocks[c.tip] }

// Len reports the number of stored blocks (across all forks).
func (c *Chain) Len() int { return len(c.blocks) }

// Get returns a stored block.
func (c *Chain) Get(id cryptoutil.Digest) (*Block, error) {
	b, ok := c.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	return b, nil
}

// Append validates and stores a block, updating the tip under the
// longest-chain rule (strictly greater height wins; equal height keeps the
// first-seen tip).
func (c *Chain) Append(b *Block) error {
	if b == nil {
		return errors.New("ledger: nil block")
	}
	id := b.Digest()
	if _, dup := c.blocks[id]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, id.Short())
	}
	parent, ok := c.blocks[b.Header.Parent]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownParent, b.Header.Parent.Short())
	}
	if b.Header.Height != parent.Header.Height+1 {
		return fmt.Errorf("%w: parent %d, block %d", ErrBadHeight, parent.Header.Height, b.Header.Height)
	}
	if err := b.ValidateBody(); err != nil {
		return err
	}
	c.arrivals++
	c.blocks[id] = b
	c.order[id] = c.arrivals
	c.children[b.Header.Parent] = append(c.children[b.Header.Parent], id)
	if b.Header.Height > c.blocks[c.tip].Header.Height {
		c.tip = id
	}
	return nil
}

// PathFromGenesis returns the block ids from genesis to the given block,
// inclusive.
func (c *Chain) PathFromGenesis(id cryptoutil.Digest) ([]cryptoutil.Digest, error) {
	var rev []cryptoutil.Digest
	cur := id
	for {
		b, ok := c.blocks[cur]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, cur.Short())
		}
		rev = append(rev, cur)
		if cur == c.genesis {
			break
		}
		cur = b.Header.Parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// Depth returns how many blocks have been built on top of id along the
// current best chain: 0 when id is the tip, and ErrNotFound when id is not
// on the best chain at all (it was reorged away). Nakamoto double-spend
// experiments use Depth as the confirmation count.
func (c *Chain) Depth(id cryptoutil.Digest) (int, error) {
	path, err := c.PathFromGenesis(c.tip)
	if err != nil {
		return 0, err
	}
	for i, cur := range path {
		if cur == id {
			return len(path) - 1 - i, nil
		}
	}
	return 0, fmt.Errorf("%w: %s not on best chain", ErrNotFound, id.Short())
}

// Mempool is a FIFO transaction pool with duplicate suppression.
type Mempool struct {
	byID  map[cryptoutil.Digest]Tx
	queue []cryptoutil.Digest
}

// NewMempool returns an empty pool.
func NewMempool() *Mempool {
	return &Mempool{byID: make(map[cryptoutil.Digest]Tx)}
}

// Add inserts a transaction; duplicates are ignored and reported false.
func (m *Mempool) Add(tx Tx) bool {
	id := tx.Digest()
	if _, dup := m.byID[id]; dup {
		return false
	}
	m.byID[id] = tx
	m.queue = append(m.queue, id)
	return true
}

// Len reports the number of pending transactions.
func (m *Mempool) Len() int { return len(m.byID) }

// Take removes and returns up to n transactions in arrival order.
func (m *Mempool) Take(n int) []Tx {
	out := make([]Tx, 0, n)
	kept := m.queue[:0]
	for _, id := range m.queue {
		tx, ok := m.byID[id]
		if !ok {
			continue // already removed
		}
		if len(out) < n {
			out = append(out, tx)
			delete(m.byID, id)
		} else {
			kept = append(kept, id)
		}
	}
	m.queue = kept
	return out
}

// Remove deletes the given transactions (e.g. after they were committed in
// a block received from a peer).
func (m *Mempool) Remove(txs []Tx) {
	for _, tx := range txs {
		delete(m.byID, tx.Digest())
	}
}
