package cryptoutil

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	a := Hash([]byte("hello"), []byte("world"))
	b := Hash([]byte("hello"), []byte("world"))
	if a != b {
		t.Fatal("same input hashed differently")
	}
}

func TestHashFramingUnambiguous(t *testing.T) {
	// Without length-prefixing these two would collide.
	a := Hash([]byte("ab"), []byte("c"))
	b := Hash([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("framing ambiguity: Hash(ab,c) == Hash(a,bc)")
	}
}

func TestDigestHelpers(t *testing.T) {
	if !ZeroDigest.IsZero() {
		t.Fatal("ZeroDigest.IsZero() = false")
	}
	d := Hash([]byte("x"))
	if d.IsZero() {
		t.Fatal("nonzero digest reported zero")
	}
	if len(d.String()) != 64 {
		t.Fatalf("String length = %d, want 64", len(d.String()))
	}
	if len(d.Short()) != 8 {
		t.Fatalf("Short length = %d, want 8", len(d.Short()))
	}
}

func TestDeriveKeyPairDeterministic(t *testing.T) {
	a := DeriveKeyPair("replica", 7)
	b := DeriveKeyPair("replica", 7)
	if !bytes.Equal(a.Public, b.Public) {
		t.Fatal("same (domain,index) produced different keys")
	}
	c := DeriveKeyPair("replica", 8)
	if bytes.Equal(a.Public, c.Public) {
		t.Fatal("different index produced same key")
	}
	d := DeriveKeyPair("miner", 7)
	if bytes.Equal(a.Public, d.Public) {
		t.Fatal("different domain produced same key")
	}
}

func TestSignVerify(t *testing.T) {
	kp := DeriveKeyPair("test", 1)
	msg := []byte("vote for block 42")
	sig := kp.Sign(msg)
	if !Verify(kp.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(kp.Public, []byte("vote for block 43"), sig) {
		t.Fatal("signature accepted for wrong message")
	}
	other := DeriveKeyPair("test", 2)
	if Verify(other.Public, msg, sig) {
		t.Fatal("signature accepted under wrong key")
	}
}

func TestVerifyMalformedInputs(t *testing.T) {
	kp := DeriveKeyPair("test", 1)
	if Verify(nil, []byte("m"), []byte("sig")) {
		t.Fatal("nil key accepted")
	}
	if Verify(kp.Public, []byte("m"), nil) {
		t.Fatal("nil signature accepted")
	}
	if Verify(kp.Public[:16], []byte("m"), kp.Sign([]byte("m"))) {
		t.Fatal("truncated key accepted")
	}
}

func TestMerkleRootEmpty(t *testing.T) {
	if _, err := MerkleRoot(nil); err != ErrEmptyTree {
		t.Fatalf("err = %v, want ErrEmptyTree", err)
	}
}

func TestMerkleRootSingleLeaf(t *testing.T) {
	root, err := MerkleRoot([][]byte{[]byte("only")})
	if err != nil {
		t.Fatal(err)
	}
	if root != Hash([]byte{0x00}, []byte("only")) {
		t.Fatal("single-leaf root is not the leaf hash")
	}
}

func TestMerkleRootOrderSensitive(t *testing.T) {
	a, _ := MerkleRoot([][]byte{[]byte("1"), []byte("2")})
	b, _ := MerkleRoot([][]byte{[]byte("2"), []byte("1")})
	if a == b {
		t.Fatal("root insensitive to leaf order")
	}
}

func TestMerkleDomainSeparation(t *testing.T) {
	// An interior node value must not be forgeable as a leaf.
	leaves := [][]byte{[]byte("a"), []byte("b")}
	root, _ := MerkleRoot(leaves)
	forged, _ := MerkleRoot([][]byte{root[:]})
	if forged == root {
		t.Fatal("interior node reusable as leaf")
	}
}

func TestMerkleProofRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31} {
		leaves := make([][]byte, n)
		for i := range leaves {
			leaves[i] = []byte{byte(i), byte(n)}
		}
		root, err := MerkleRoot(leaves)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			proof, err := BuildMerkleProof(leaves, i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !VerifyMerkleProof(root, leaves[i], proof) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
			// Wrong leaf must fail.
			if VerifyMerkleProof(root, []byte("forged"), proof) {
				t.Fatalf("n=%d i=%d: forged leaf accepted", n, i)
			}
		}
	}
}

func TestMerkleProofOutOfRange(t *testing.T) {
	leaves := [][]byte{[]byte("a")}
	if _, err := BuildMerkleProof(leaves, -1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := BuildMerkleProof(leaves, 1); err == nil {
		t.Fatal("index past end accepted")
	}
}

func TestMerkleProofMalformed(t *testing.T) {
	leaves := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	root, _ := MerkleRoot(leaves)
	proof, _ := BuildMerkleProof(leaves, 0)
	proof.Rights = proof.Rights[:len(proof.Rights)-1]
	if VerifyMerkleProof(root, leaves[0], proof) {
		t.Fatal("mismatched Siblings/Rights accepted")
	}
}

// Property: proofs verify for every leaf of any random tree, and tampering
// with any sibling breaks verification.
func TestPropMerkleProofs(t *testing.T) {
	f := func(data [][]byte) bool {
		if len(data) == 0 || len(data) > 64 {
			return true
		}
		root, err := MerkleRoot(data)
		if err != nil {
			return false
		}
		for i := range data {
			proof, err := BuildMerkleProof(data, i)
			if err != nil || !VerifyMerkleProof(root, data[i], proof) {
				return false
			}
			if len(proof.Siblings) > 0 {
				proof.Siblings[0][0] ^= 0xff
				if VerifyMerkleProof(root, data[i], proof) {
					return false
				}
				proof.Siblings[0][0] ^= 0xff
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
