// Package cryptoutil provides the cryptographic substrate used throughout
// the repository: ed25519 key management with deterministic derivation,
// SHA-256 digests, and Merkle trees for block bodies.
//
// The paper assumes "the security of the used cryptographic primitives and
// protocols, but not their implementations" (Sec. II-B). Accordingly this
// package models primitives as sound, while internal/vuln models *library
// implementations* (e.g. a flawed crypto library version) as a component
// class that a vulnerability can target.
package cryptoutil

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// DigestSize is the size of a Digest in bytes.
const DigestSize = sha256.Size

// Digest is a SHA-256 hash value.
type Digest [DigestSize]byte

// ZeroDigest is the all-zero digest, used as the parent of genesis blocks.
var ZeroDigest Digest

// Hash returns the SHA-256 digest of the concatenation of the given byte
// slices. Callers are responsible for unambiguous framing; the helpers in
// this package always length-prefix variable-size fields.
func Hash(parts ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// String returns the hex encoding of the digest.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short returns the first 8 hex characters, for logs and tables.
func (d Digest) Short() string { return hex.EncodeToString(d[:4]) }

// IsZero reports whether the digest is all zeroes.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// KeyPair is an ed25519 signing key pair.
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// DeriveKeyPair deterministically derives a key pair from a domain label and
// an index. Distinct (domain, index) pairs yield independent keys; the same
// pair always yields the same key, which keeps simulations replayable.
func DeriveKeyPair(domain string, index uint64) KeyPair {
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], index)
	seed := Hash([]byte("repro/keyseed/v1"), []byte(domain), idx[:])
	priv := ed25519.NewKeyFromSeed(seed[:ed25519.SeedSize])
	return KeyPair{Public: priv.Public().(ed25519.PublicKey), private: priv}
}

// Sign signs msg with the private key.
func (k KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Verify reports whether sig is a valid signature on msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// ErrEmptyTree is returned when building a Merkle tree over zero leaves.
var ErrEmptyTree = errors.New("cryptoutil: merkle tree over zero leaves")

// MerkleRoot computes the root of a Merkle tree over the given leaves.
// Leaves are hashed with a 0x00 domain-separation prefix and interior nodes
// with 0x01, preventing second-preimage splices between levels. An odd node
// at any level is promoted unpaired (Bitcoin-style duplication is avoided
// because duplication admits CVE-2012-2459-style mutations).
func MerkleRoot(leaves [][]byte) (Digest, error) {
	if len(leaves) == 0 {
		return ZeroDigest, ErrEmptyTree
	}
	level := make([]Digest, len(leaves))
	for i, leaf := range leaves {
		level[i] = Hash([]byte{0x00}, leaf)
	}
	for len(level) > 1 {
		next := make([]Digest, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			next = append(next, Hash([]byte{0x01}, level[i][:], level[i+1][:]))
		}
		level = next
	}
	return level[0], nil
}

// MerkleProof is an inclusion proof for one leaf.
type MerkleProof struct {
	Index    int      // leaf position
	Siblings []Digest // bottom-up sibling hashes
	// Rights[i] reports whether Siblings[i] is the right-hand child at
	// level i (i.e. the proven path is the left child there).
	Rights []bool
}

// BuildMerkleProof returns an inclusion proof for leaves[index].
func BuildMerkleProof(leaves [][]byte, index int) (MerkleProof, error) {
	if len(leaves) == 0 {
		return MerkleProof{}, ErrEmptyTree
	}
	if index < 0 || index >= len(leaves) {
		return MerkleProof{}, fmt.Errorf("cryptoutil: proof index %d out of range [0,%d)", index, len(leaves))
	}
	level := make([]Digest, len(leaves))
	for i, leaf := range leaves {
		level[i] = Hash([]byte{0x00}, leaf)
	}
	proof := MerkleProof{Index: index}
	pos := index
	for len(level) > 1 {
		next := make([]Digest, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			next = append(next, Hash([]byte{0x01}, level[i][:], level[i+1][:]))
		}
		sib := pos ^ 1
		if sib < len(level) {
			proof.Siblings = append(proof.Siblings, level[sib])
			proof.Rights = append(proof.Rights, sib > pos)
		}
		pos /= 2
		level = next
	}
	return proof, nil
}

// VerifyMerkleProof reports whether proof demonstrates that leaf is included
// under root.
func VerifyMerkleProof(root Digest, leaf []byte, proof MerkleProof) bool {
	if len(proof.Siblings) != len(proof.Rights) {
		return false
	}
	cur := Hash([]byte{0x00}, leaf)
	for i, sib := range proof.Siblings {
		if proof.Rights[i] {
			cur = Hash([]byte{0x01}, cur[:], sib[:])
		} else {
			cur = Hash([]byte{0x01}, sib[:], cur[:])
		}
	}
	return cur == root
}
