package committee

import (
	"fmt"
	"math/rand"
	"testing"
)

func selectorPool(configs, perConfig int) []Candidate {
	var out []Candidate
	for c := 0; c < configs; c++ {
		for i := 0; i < perConfig; i++ {
			out = append(out, Candidate{
				ID:          fmt.Sprintf("c-%d-%d", c, i),
				Stake:       float64(1 + (c*perConfig+i)%5),
				ConfigLabel: fmt.Sprintf("cfg-%d", c),
			})
		}
	}
	return out
}

func TestSelectorOptionValidation(t *testing.T) {
	if _, err := NewSelector(WithStrategy("bogus")); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := NewSelector(WithRNG(nil)); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := NewSelector(WithVRFSeed(nil)); err == nil {
		t.Fatal("empty seed accepted")
	}
	if _, err := NewSelector(nil); err == nil {
		t.Fatal("nil option accepted")
	}
	// Strategies that need inputs must get them.
	if _, err := NewSelector(WithStrategy(StakeWeighted)); err == nil {
		t.Fatal("stake-weighted selector without rng accepted")
	}
	if _, err := NewSelector(WithStrategy(VRF)); err == nil {
		t.Fatal("VRF selector without seed accepted")
	}
}

func TestSelectorMatchesDirectFunctions(t *testing.T) {
	pool := selectorPool(6, 8)
	const size = 12

	stakeSel, err := NewSelector(WithStrategy(StakeWeighted), WithRNG(rand.New(rand.NewSource(5))))
	if err != nil {
		t.Fatal(err)
	}
	got, err := stakeSel.Select(pool, size)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SelectByStake(rand.New(rand.NewSource(5)), pool, size)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("stake selector diverges at %d: %s vs %s", i, got[i].ID, want[i].ID)
		}
	}

	vrfSel, err := NewSelector(WithStrategy(VRF), WithVRFSeed([]byte("epoch-9")))
	if err != nil {
		t.Fatal(err)
	}
	got, err = vrfSel.Select(pool, size)
	if err != nil {
		t.Fatal(err)
	}
	want, err = SortitionVRF([]byte("epoch-9"), pool, size)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("vrf selector diverges at %d: %s vs %s", i, got[i].ID, want[i].ID)
		}
	}

	divSel, err := NewSelector() // DiversityAware is the default
	if err != nil {
		t.Fatal(err)
	}
	if divSel.Strategy() != DiversityAware {
		t.Fatalf("default strategy = %q", divSel.Strategy())
	}
	got, err = divSel.Select(pool, size)
	if err != nil {
		t.Fatal(err)
	}
	want, err = SelectDiverse(pool, size)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("diverse selector diverges at %d: %s vs %s", i, got[i].ID, want[i].ID)
		}
	}
}

func TestCommitteeSubstrate(t *testing.T) {
	if _, err := Substrate(3); err == nil {
		t.Fatal("3-seat substrate accepted")
	}
	for _, c := range []struct {
		seats int
		tol   float64
	}{
		{4, 1.0 / 4.0},   // tolerates 1 of 4
		{7, 2.0 / 7.0},   // tolerates 2 of 7
		{10, 3.0 / 10.0}, // tolerates 3 of 10
	} {
		s, err := Substrate(c.seats)
		if err != nil {
			t.Fatal(err)
		}
		if s.Tolerance() != c.tol {
			t.Fatalf("tolerance(%d) = %v, want %v", c.seats, s.Tolerance(), c.tol)
		}
		if s.Name() != fmt.Sprintf("committee(%d)", c.seats) {
			t.Fatalf("name = %q", s.Name())
		}
	}
}
