// Package committee implements membership selection for permissionless
// protocols that form a consensus committee (the paper's third system-model
// family, citing Natoli et al.). It provides stake-weighted sortition —
// the status-quo baseline — and a diversity-aware selector that maximises
// configuration entropy greedily, the enforcement mechanism the paper's
// Challenge 1/2 discussion calls for.
package committee

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cryptoutil"
	"repro/internal/diversity"
)

// Candidate is a stake-holder eligible for committee membership.
type Candidate struct {
	ID          string
	Stake       float64
	ConfigLabel string // attested configuration identity
}

func validate(candidates []Candidate, size int) error {
	if size <= 0 {
		return fmt.Errorf("committee: size %d <= 0", size)
	}
	if size > len(candidates) {
		return fmt.Errorf("committee: size %d exceeds %d candidates", size, len(candidates))
	}
	seen := make(map[string]bool, len(candidates))
	for _, c := range candidates {
		if c.ID == "" {
			return errors.New("committee: empty candidate id")
		}
		if seen[c.ID] {
			return fmt.Errorf("committee: duplicate candidate %s", c.ID)
		}
		seen[c.ID] = true
		if c.Stake <= 0 || math.IsNaN(c.Stake) || math.IsInf(c.Stake, 0) {
			return fmt.Errorf("committee: candidate %s has invalid stake %v", c.ID, c.Stake)
		}
		if c.ConfigLabel == "" {
			return fmt.Errorf("committee: candidate %s has no configuration label", c.ID)
		}
	}
	return nil
}

// SelectByStake draws a committee of the given size by stake-weighted
// sampling without replacement (Efraimidis–Spirakis keys: u^(1/stake)),
// the standard proof-of-stake sortition baseline.
func SelectByStake(rng *rand.Rand, candidates []Candidate, size int) ([]Candidate, error) {
	if rng == nil {
		return nil, errors.New("committee: nil rng")
	}
	if err := validate(candidates, size); err != nil {
		return nil, err
	}
	type keyed struct {
		c   Candidate
		key float64
	}
	keys := make([]keyed, len(candidates))
	for i, c := range candidates {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		keys[i] = keyed{c: c, key: math.Pow(u, 1/c.Stake)}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].key != keys[j].key {
			return keys[i].key > keys[j].key
		}
		return keys[i].c.ID < keys[j].c.ID
	})
	out := make([]Candidate, size)
	for i := 0; i < size; i++ {
		out[i] = keys[i].c
	}
	return out, nil
}

// SortitionVRF draws a committee deterministically from a public seed:
// each candidate's lottery value is Hash(seed, id) interpreted as a uniform
// u in (0,1), keyed exactly as SelectByStake. Anyone can re-run the lottery
// and verify membership — the permissionless-friendly variant (a stand-in
// for a real VRF, which needs only the same uniform output per identity).
func SortitionVRF(seed []byte, candidates []Candidate, size int) ([]Candidate, error) {
	if len(seed) == 0 {
		return nil, errors.New("committee: empty seed")
	}
	if err := validate(candidates, size); err != nil {
		return nil, err
	}
	type keyed struct {
		c   Candidate
		key float64
	}
	keys := make([]keyed, len(candidates))
	for i, c := range candidates {
		h := cryptoutil.Hash([]byte("repro/committee/vrf/v1"), seed, []byte(c.ID))
		// Use the top 52 bits for a uniform float in (0,1).
		bits := uint64(h[0])<<44 | uint64(h[1])<<36 | uint64(h[2])<<28 |
			uint64(h[3])<<20 | uint64(h[4])<<12 | uint64(h[5])<<4 | uint64(h[6])>>4
		u := (float64(bits) + 0.5) / float64(uint64(1)<<52)
		keys[i] = keyed{c: c, key: math.Pow(u, 1/c.Stake)}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].key != keys[j].key {
			return keys[i].key > keys[j].key
		}
		return keys[i].c.ID < keys[j].c.ID
	})
	out := make([]Candidate, size)
	for i := 0; i < size; i++ {
		out[i] = keys[i].c
	}
	return out, nil
}

// SelectDiverse builds a committee greedily maximising the entropy of the
// committee's configuration composition: each step adds the candidate that
// yields the largest entropy of member-counts per configuration,
// tie-breaking by higher stake then id. Stake still matters (ties are
// frequent once classes balance), but fault independence is the primary
// objective — the diversity-enforcing selection rule.
func SelectDiverse(candidates []Candidate, size int) ([]Candidate, error) {
	if err := validate(candidates, size); err != nil {
		return nil, err
	}
	remaining := append([]Candidate(nil), candidates...)
	sort.Slice(remaining, func(i, j int) bool {
		if remaining[i].Stake != remaining[j].Stake {
			return remaining[i].Stake > remaining[j].Stake
		}
		return remaining[i].ID < remaining[j].ID
	})
	counts := make(map[string]int)
	committee := make([]Candidate, 0, size)
	for len(committee) < size {
		bestIdx := -1
		bestEntropy := math.Inf(-1)
		for i, c := range remaining {
			h := entropyWithIncrement(counts, c.ConfigLabel)
			// Strict improvement wins; remaining is stake-sorted so the
			// first best index is also the highest-stake choice.
			if h > bestEntropy+1e-15 {
				bestEntropy = h
				bestIdx = i
			}
		}
		chosen := remaining[bestIdx]
		committee = append(committee, chosen)
		counts[chosen.ConfigLabel]++
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return committee, nil
}

// entropyWithIncrement returns the entropy (bits) of counts with label's
// count incremented by one, without mutating counts.
func entropyWithIncrement(counts map[string]int, label string) float64 {
	total := 1.0
	for _, c := range counts {
		total += float64(c)
	}
	h := 0.0
	for l, c := range counts {
		n := float64(c)
		if l == label {
			n++
		}
		p := n / total
		h -= p * math.Log2(p)
	}
	if _, ok := counts[label]; !ok {
		p := 1.0 / total
		h -= p * math.Log2(p)
	}
	return h
}

// Composition returns the committee's configuration distributions: by
// member count and by stake.
func Composition(committee []Candidate) (byCount, byStake diversity.Distribution, err error) {
	if len(committee) == 0 {
		return diversity.Distribution{}, diversity.Distribution{}, errors.New("committee: empty committee")
	}
	counts := make(map[string]float64)
	stakes := make(map[string]float64)
	for _, c := range committee {
		counts[c.ConfigLabel]++
		stakes[c.ConfigLabel] += c.Stake
	}
	if byCount, err = diversity.FromWeights(counts); err != nil {
		return diversity.Distribution{}, diversity.Distribution{}, err
	}
	if byStake, err = diversity.FromWeights(stakes); err != nil {
		return diversity.Distribution{}, diversity.Distribution{}, err
	}
	return byCount, byStake, nil
}
