package committee

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vuln"
)

// substrate is the committee consensus family: a quorum protocol over a
// fixed number of seats, tolerating floor((seats-1)/3) Byzantine seats.
// Unlike the open BFT family, the tolerance is a function of committee
// size, so the Substrate is a value carrying it.
type substrate struct {
	seats int
}

// Substrate returns the committee consensus family for a committee of the
// given seat count (>= 4) for core.WithSubstrate.
func Substrate(seats int) (core.Substrate, error) {
	if seats < 4 {
		return nil, fmt.Errorf("committee: substrate needs >= 4 seats, got %d", seats)
	}
	return substrate{seats: seats}, nil
}

func (s substrate) Name() string { return fmt.Sprintf("committee(%d)", s.seats) }

// Tolerance is the Byzantine seat fraction a seats-sized quorum committee
// tolerates: floor((seats-1)/3) / seats.
func (s substrate) Tolerance() float64 {
	return float64((s.seats-1)/3) / float64(s.seats)
}

func (s substrate) Assess(inj vuln.Injection) bool { return inj.Safe(s.Tolerance()) }
