package committee

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func mkCandidates(perConfig map[string]int, stake func(i int) float64) []Candidate {
	var out []Candidate
	i := 0
	// Deterministic order: iterate configs sorted by label length then name
	// is overkill; build sorted keys.
	keys := make([]string, 0, len(perConfig))
	for k := range perConfig {
		keys = append(keys, k)
	}
	// simple insertion sort for determinism
	for a := 1; a < len(keys); a++ {
		for b := a; b > 0 && keys[b] < keys[b-1]; b-- {
			keys[b], keys[b-1] = keys[b-1], keys[b]
		}
	}
	for _, cfg := range keys {
		for j := 0; j < perConfig[cfg]; j++ {
			out = append(out, Candidate{
				ID:          fmt.Sprintf("%s-%03d", cfg, j),
				Stake:       stake(i),
				ConfigLabel: cfg,
			})
			i++
		}
	}
	return out
}

func unitStake(int) float64 { return 1 }

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	good := mkCandidates(map[string]int{"a": 2, "b": 2}, unitStake)
	if _, err := SelectByStake(nil, good, 2); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := SelectByStake(rng, good, 0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := SelectByStake(rng, good, 5); err == nil {
		t.Fatal("size > candidates accepted")
	}
	dupID := []Candidate{{ID: "x", Stake: 1, ConfigLabel: "a"}, {ID: "x", Stake: 1, ConfigLabel: "b"}}
	if _, err := SelectByStake(rng, dupID, 1); err == nil {
		t.Fatal("duplicate id accepted")
	}
	noStake := []Candidate{{ID: "x", Stake: 0, ConfigLabel: "a"}}
	if _, err := SelectByStake(rng, noStake, 1); err == nil {
		t.Fatal("zero stake accepted")
	}
	noCfg := []Candidate{{ID: "x", Stake: 1}}
	if _, err := SelectByStake(rng, noCfg, 1); err == nil {
		t.Fatal("empty config label accepted")
	}
	if _, err := SortitionVRF(nil, good, 2); err == nil {
		t.Fatal("empty seed accepted")
	}
	if _, err := SelectDiverse(good, 0); err == nil {
		t.Fatal("diverse size 0 accepted")
	}
}

func TestSelectByStakeFavorsStake(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// One whale with 100x the stake of 50 minnows.
	candidates := []Candidate{{ID: "whale", Stake: 100, ConfigLabel: "w"}}
	for i := 0; i < 50; i++ {
		candidates = append(candidates, Candidate{
			ID: fmt.Sprintf("minnow-%02d", i), Stake: 1, ConfigLabel: "m",
		})
	}
	whaleIn := 0
	const rounds = 500
	for r := 0; r < rounds; r++ {
		com, err := SelectByStake(rng, candidates, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(com) != 5 {
			t.Fatalf("committee size %d", len(com))
		}
		for _, c := range com {
			if c.ID == "whale" {
				whaleIn++
				break
			}
		}
	}
	// The whale holds 2/3 of all stake; it should almost always be seated.
	if whaleIn < rounds*9/10 {
		t.Fatalf("whale seated in %d/%d rounds, want >= 90%%", whaleIn, rounds)
	}
}

func TestSelectByStakeNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	candidates := mkCandidates(map[string]int{"a": 10, "b": 10}, unitStake)
	com, err := SelectByStake(rng, candidates, 15)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, c := range com {
		if seen[c.ID] {
			t.Fatalf("duplicate member %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestSortitionVRFDeterministic(t *testing.T) {
	candidates := mkCandidates(map[string]int{"a": 20, "b": 20}, func(i int) float64 { return float64(i%7 + 1) })
	a, err := SortitionVRF([]byte("epoch-9"), candidates, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SortitionVRF([]byte("epoch-9"), candidates, 8)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("same seed produced different committees")
		}
	}
	c, _ := SortitionVRF([]byte("epoch-10"), candidates, 8)
	same := true
	for i := range a {
		if a[i].ID != c[i].ID {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical committees (suspicious)")
	}
}

func TestSelectDiverseMaximisesEntropy(t *testing.T) {
	// 4 configs available but stake concentrated in config "a".
	candidates := mkCandidates(
		map[string]int{"a": 40, "b": 4, "c": 4, "d": 4},
		func(i int) float64 { return 1 },
	)
	com, err := SelectDiverse(candidates, 16)
	if err != nil {
		t.Fatal(err)
	}
	byCount, _, err := Composition(com)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy should seat 4 of each config: κ-optimal, entropy = 2.
	h, _ := byCount.Entropy()
	if math.Abs(h-2) > 1e-9 {
		t.Fatalf("diverse committee entropy = %v, want 2", h)
	}
	if !byCount.IsKappaOptimal(4, 0) {
		t.Fatal("diverse committee not κ-optimal")
	}
}

func TestSelectDiverseBeatsStakeOnlyOnEntropy(t *testing.T) {
	// Monoculture-heavy stake: stake-weighted sortition seats mostly "a";
	// diversity-aware seats across configs.
	candidates := mkCandidates(
		map[string]int{"a": 60, "b": 6, "c": 6},
		func(i int) float64 { return 1 },
	)
	// Make "a" holders whales.
	for i := range candidates {
		if candidates[i].ConfigLabel == "a" {
			candidates[i].Stake = 50
		}
	}
	rng := rand.New(rand.NewSource(4))
	stakeCom, err := SelectByStake(rng, candidates, 12)
	if err != nil {
		t.Fatal(err)
	}
	divCom, err := SelectDiverse(candidates, 12)
	if err != nil {
		t.Fatal(err)
	}
	sc, _, _ := Composition(stakeCom)
	dc, _, _ := Composition(divCom)
	hs, _ := sc.Entropy()
	hd, _ := dc.Entropy()
	if hd <= hs {
		t.Fatalf("diverse entropy %v <= stake-only %v", hd, hs)
	}
}

func TestSelectDiversePrefersStakeOnTies(t *testing.T) {
	candidates := []Candidate{
		{ID: "rich-a", Stake: 10, ConfigLabel: "a"},
		{ID: "poor-a", Stake: 1, ConfigLabel: "a"},
		{ID: "rich-b", Stake: 10, ConfigLabel: "b"},
		{ID: "poor-b", Stake: 1, ConfigLabel: "b"},
	}
	com, err := SelectDiverse(candidates, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range com {
		if c.Stake != 10 {
			t.Fatalf("tie broken against stake: %+v", com)
		}
	}
}

func TestComposition(t *testing.T) {
	com := []Candidate{
		{ID: "1", Stake: 3, ConfigLabel: "a"},
		{ID: "2", Stake: 1, ConfigLabel: "a"},
		{ID: "3", Stake: 4, ConfigLabel: "b"},
	}
	byCount, byStake, err := Composition(com)
	if err != nil {
		t.Fatal(err)
	}
	if byCount.Weight("a") != 2 || byCount.Weight("b") != 1 {
		t.Fatalf("byCount = %v/%v", byCount.Weight("a"), byCount.Weight("b"))
	}
	if byStake.Weight("a") != 4 || byStake.Weight("b") != 4 {
		t.Fatalf("byStake = %v/%v", byStake.Weight("a"), byStake.Weight("b"))
	}
	if _, _, err := Composition(nil); err == nil {
		t.Fatal("empty committee accepted")
	}
}
