package committee

import (
	"errors"
	"fmt"
	"math/rand"
)

// Strategy names a membership-selection rule.
type Strategy string

const (
	// StakeWeighted is stake-weighted sortition (the status-quo baseline);
	// it needs a randomness source (WithRNG).
	StakeWeighted Strategy = "stake"
	// VRF is publicly verifiable sortition from a shared seed (WithVRFSeed).
	VRF Strategy = "vrf"
	// DiversityAware greedily maximises configuration entropy — the
	// paper's enforcement rule. Deterministic; needs no randomness.
	DiversityAware Strategy = "diverse"
)

// Strategies lists the selection rules a Selector accepts.
func Strategies() []Strategy { return []Strategy{StakeWeighted, VRF, DiversityAware} }

// Selector is a configured membership-selection rule. Build one with
// NewSelector and functional options:
//
//	sel, err := committee.NewSelector(
//		committee.WithStrategy(committee.StakeWeighted),
//		committee.WithRNG(rng),
//	)
//	seats, err := sel.Select(candidates, 64)
type Selector struct {
	strategy Strategy
	rng      *rand.Rand
	vrfSeed  []byte
}

// Option configures a Selector at construction time.
type Option func(*Selector) error

// WithStrategy picks the selection rule. Default: DiversityAware.
func WithStrategy(s Strategy) Option {
	return func(sel *Selector) error {
		switch s {
		case StakeWeighted, VRF, DiversityAware:
			sel.strategy = s
			return nil
		default:
			return fmt.Errorf("committee: unknown strategy %q (have %v)", s, Strategies())
		}
	}
}

// WithRNG supplies the randomness source StakeWeighted sortition draws
// from.
func WithRNG(rng *rand.Rand) Option {
	return func(sel *Selector) error {
		if rng == nil {
			return errors.New("committee: nil rng")
		}
		sel.rng = rng
		return nil
	}
}

// WithVRFSeed supplies the public seed VRF sortition derives lottery
// values from.
func WithVRFSeed(seed []byte) Option {
	return func(sel *Selector) error {
		if len(seed) == 0 {
			return errors.New("committee: empty seed")
		}
		sel.vrfSeed = append([]byte(nil), seed...)
		return nil
	}
}

// NewSelector builds a Selector and validates that the chosen strategy
// has the inputs it needs.
func NewSelector(opts ...Option) (*Selector, error) {
	sel := &Selector{strategy: DiversityAware}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("committee: nil option")
		}
		if err := opt(sel); err != nil {
			return nil, err
		}
	}
	switch sel.strategy {
	case StakeWeighted:
		if sel.rng == nil {
			return nil, errors.New("committee: stake-weighted sortition needs WithRNG")
		}
	case VRF:
		if len(sel.vrfSeed) == 0 {
			return nil, errors.New("committee: VRF sortition needs WithVRFSeed")
		}
	}
	return sel, nil
}

// Strategy reports the selection rule in force.
func (sel *Selector) Strategy() Strategy { return sel.strategy }

// Select draws a committee of the given size from the candidate pool
// using the configured rule.
func (sel *Selector) Select(candidates []Candidate, size int) ([]Candidate, error) {
	switch sel.strategy {
	case StakeWeighted:
		return SelectByStake(sel.rng, candidates, size)
	case VRF:
		return SortitionVRF(sel.vrfSeed, candidates, size)
	default:
		return SelectDiverse(candidates, size)
	}
}
