// Package adversary implements attacker strategies against the registry's
// replica population, quantifying the paper's two adversary models:
//
//   - Vulnerability exploitation (Sec. II-B): the attacker holds a budget of
//     distinct exploits and picks the ones that compromise the most voting
//     power. Configuration diversity is the defence.
//   - Operator corruption (Sec. IV-B, Prop. 3 discussion): the attacker
//     bribes or runs malicious operators; each corruption buys exactly one
//     replica, so configuration abundance ω is the defence.
//
// A third model, hash-power rental (Bonneau's "why buy when you can rent"),
// prices attacks in rented power units for the Nakamoto experiments.
package adversary

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/diversity"
	"repro/internal/vuln"
)

// ExploitPlan is the outcome of vulnerability-budget planning.
type ExploitPlan struct {
	Chosen []vuln.ID // selected vulnerabilities in selection order
	// Fraction is the deduplicated compromised voting-power fraction
	// achieved by the chosen set at the planning instant.
	Fraction float64
	// Breaks reports whether Fraction exceeds the tolerated threshold.
	Breaks bool
}

// GreedyExploits picks up to budget vulnerabilities from the catalog that
// together compromise the greatest deduplicated voting power at time t,
// using greedy marginal-gain selection (ties broken by vulnerability id for
// determinism). threshold is the protocol's tolerated Byzantine fraction
// (1/3 for BFT quorums, 1/2 for Nakamoto).
func GreedyExploits(catalog *vuln.Catalog, replicas []vuln.Replica, t time.Duration, budget int, threshold float64) (ExploitPlan, error) {
	if catalog == nil {
		return ExploitPlan{}, errors.New("adversary: nil catalog")
	}
	if budget < 0 {
		return ExploitPlan{}, fmt.Errorf("adversary: negative budget %d", budget)
	}
	var totalPower float64
	for _, r := range replicas {
		if r.Power < 0 {
			return ExploitPlan{}, fmt.Errorf("adversary: replica %s has negative power", r.Name)
		}
		totalPower += r.Power
	}
	if totalPower == 0 {
		return ExploitPlan{}, nil
	}

	// Precompute each vulnerability's victim set at t.
	type victimSet struct {
		id      vuln.ID
		victims map[string]float64
	}
	var sets []victimSet
	for _, v := range catalog.DisclosedAt(t) {
		vs := victimSet{id: v.ID, victims: make(map[string]float64)}
		var exposed []vuln.Replica
		for _, r := range replicas {
			if v.Affects(r.Config) && v.WindowOpenAt(t, r.PatchLatency) {
				exposed = append(exposed, r)
			}
		}
		sort.Slice(exposed, func(i, j int) bool {
			if exposed[i].Power != exposed[j].Power {
				return exposed[i].Power > exposed[j].Power
			}
			return exposed[i].Name < exposed[j].Name
		})
		// vuln.SeverityTake is the shared victim-count rule, so the plan's
		// fraction can never disagree with an assessment of the same
		// instant.
		take := vuln.SeverityTake(len(exposed), v.Severity)
		for _, r := range exposed[:take] {
			vs.victims[r.Name] = r.Power
		}
		if len(vs.victims) > 0 {
			sets = append(sets, vs)
		}
	}

	plan := ExploitPlan{}
	owned := make(map[string]float64)
	used := make(map[vuln.ID]bool)
	for len(plan.Chosen) < budget {
		bestGain := 0.0
		bestIdx := -1
		for i, vs := range sets {
			if used[vs.id] {
				continue
			}
			gain := 0.0
			for name, p := range vs.victims {
				if _, have := owned[name]; !have {
					gain += p
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && bestIdx >= 0 && vs.id < sets[bestIdx].id) {
				bestGain = gain
				bestIdx = i
			}
		}
		if bestIdx < 0 || bestGain == 0 {
			break // nothing left worth exploiting
		}
		vs := sets[bestIdx]
		used[vs.id] = true
		plan.Chosen = append(plan.Chosen, vs.id)
		for name, p := range vs.victims {
			owned[name] = p
		}
	}
	var sum float64
	for _, p := range owned {
		sum += p
	}
	plan.Fraction = sum / totalPower
	plan.Breaks = plan.Fraction > threshold
	return plan, nil
}

// CorruptionPlan is the outcome of operator-corruption planning.
type CorruptionPlan struct {
	Corrupted []string // member labels/names in corruption order
	Fraction  float64  // compromised power fraction
	Breaks    bool
}

// CorruptOperators bribes up to budget members, richest first — each
// corruption buys exactly one member's power regardless of how many other
// members share its configuration. Returns the plan against threshold.
func CorruptOperators(members []diversity.Member, budget int, threshold float64) (CorruptionPlan, error) {
	if budget < 0 {
		return CorruptionPlan{}, fmt.Errorf("adversary: negative budget %d", budget)
	}
	var total float64
	for _, m := range members {
		if m.Power < 0 {
			return CorruptionPlan{}, fmt.Errorf("adversary: member %s has negative power", m.Label)
		}
		total += m.Power
	}
	if total == 0 {
		return CorruptionPlan{}, nil
	}
	sorted := append([]diversity.Member(nil), members...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Power != sorted[j].Power {
			return sorted[i].Power > sorted[j].Power
		}
		return sorted[i].Label < sorted[j].Label
	})
	if budget > len(sorted) {
		budget = len(sorted)
	}
	plan := CorruptionPlan{}
	var sum float64
	for i := 0; i < budget; i++ {
		plan.Corrupted = append(plan.Corrupted, sorted[i].Label)
		sum += sorted[i].Power
	}
	plan.Fraction = sum / total
	plan.Breaks = plan.Fraction > threshold
	return plan, nil
}

// MinCorruptionsToBreak returns the smallest operator-corruption budget
// that exceeds threshold, or -1 when even corrupting everyone stays at or
// below it.
func MinCorruptionsToBreak(members []diversity.Member, threshold float64) (int, error) {
	for budget := 1; budget <= len(members); budget++ {
		plan, err := CorruptOperators(members, budget, threshold)
		if err != nil {
			return 0, err
		}
		if plan.Breaks {
			return budget, nil
		}
	}
	return -1, nil
}

// RentalCost models Bonneau-style hash-power rental: the attacker needs
// enough rented power q_extra that (owned + rented) / (total + rented)
// exceeds threshold; the cost is rented power × pricePerUnit × duration
// (in hours). It returns the rented units and the cost, or an error when
// threshold >= 1.
func RentalCost(ownedPower, totalPower, threshold, pricePerUnitHour float64, duration time.Duration) (rented, cost float64, err error) {
	if totalPower <= 0 || ownedPower < 0 || ownedPower > totalPower {
		return 0, 0, fmt.Errorf("adversary: invalid powers owned=%v total=%v", ownedPower, totalPower)
	}
	if threshold <= 0 || threshold >= 1 {
		return 0, 0, fmt.Errorf("adversary: threshold %v out of (0,1)", threshold)
	}
	if pricePerUnitHour < 0 || duration < 0 {
		return 0, 0, errors.New("adversary: negative price or duration")
	}
	// Solve (owned + r) / (total + r) > threshold for r.
	if ownedPower/totalPower > threshold {
		return 0, 0, nil // already above threshold
	}
	rented = (threshold*totalPower - ownedPower) / (1 - threshold)
	cost = rented * pricePerUnitHour * duration.Hours()
	return rented, cost, nil
}
