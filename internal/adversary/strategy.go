package adversary

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/diversity"
	"repro/internal/vuln"
)

// Surface is the attack surface a strategy plans against at one instant:
// the disclosed vulnerability catalog, the replica set with exploit-window
// state, the member-level power view, and the protocol's tolerance.
// The scenario engine (internal/scenario) assembles one per probe.
type Surface struct {
	At        time.Duration
	Catalog   *vuln.Catalog
	Replicas  []vuln.Replica
	Members   []diversity.Member
	Threshold float64
}

// Plan is a strategy's committed attack at one instant.
type Plan struct {
	// Strategy names the strategy that produced the plan.
	Strategy string
	// Detail lists what the plan commits to (exploit ids, corrupted
	// operators), deterministic and human-readable.
	Detail string
	// Fraction is the deduplicated compromised voting-power fraction the
	// plan achieves.
	Fraction float64
	// Breaks reports whether Fraction exceeds the tolerated threshold.
	Breaks bool
}

// Strategy is a replannable adversary: probed at successive instants of a
// timeline, it re-plans its best attack against the current surface. All
// implementations are deterministic — same surface, same plan — which is
// what keeps scenario traces byte-replayable.
type Strategy interface {
	Name() string
	Plan(s Surface) (Plan, error)
}

// ExploitStrategy plans with GreedyExploits under a fixed exploit budget:
// the vulnerability-diversity adversary of Sec. II-B.
type ExploitStrategy struct {
	Budget int
}

// Name implements Strategy.
func (e ExploitStrategy) Name() string { return fmt.Sprintf("exploit(k=%d)", e.Budget) }

// Plan implements Strategy.
func (e ExploitStrategy) Plan(s Surface) (Plan, error) {
	ep, err := GreedyExploits(s.Catalog, s.Replicas, s.At, e.Budget, s.Threshold)
	if err != nil {
		return Plan{}, err
	}
	ids := make([]string, len(ep.Chosen))
	for i, id := range ep.Chosen {
		ids[i] = string(id)
	}
	return Plan{
		Strategy: e.Name(),
		Detail:   strings.Join(ids, "+"),
		Fraction: ep.Fraction,
		Breaks:   ep.Breaks,
	}, nil
}

// CorruptionStrategy plans with CorruptOperators under a fixed bribery
// budget: the operator adversary of Prop. 3's discussion, defended by
// configuration abundance ω.
type CorruptionStrategy struct {
	Budget int
}

// Name implements Strategy.
func (c CorruptionStrategy) Name() string { return fmt.Sprintf("corrupt(k=%d)", c.Budget) }

// Plan implements Strategy.
func (c CorruptionStrategy) Plan(s Surface) (Plan, error) {
	cp, err := CorruptOperators(s.Members, c.Budget, s.Threshold)
	if err != nil {
		return Plan{}, err
	}
	detail := cp.Corrupted
	if len(detail) > 4 {
		detail = append(append([]string(nil), detail[:4]...), fmt.Sprintf("+%d more", len(cp.Corrupted)-4))
	}
	return Plan{
		Strategy: c.Name(),
		Detail:   strings.Join(detail, "+"),
		Fraction: cp.Fraction,
		Breaks:   cp.Breaks,
	}, nil
}

// AdaptiveStrategy re-plans every inner strategy at each probe and commits
// to the one compromising the most power — the rational adversary who
// switches between exploiting software monoculture and bribing operators
// as the population drifts. Ties go to the earlier strategy in the list,
// keeping plans deterministic.
type AdaptiveStrategy struct {
	Strategies []Strategy
}

// Name implements Strategy.
func (a AdaptiveStrategy) Name() string {
	names := make([]string, len(a.Strategies))
	for i, s := range a.Strategies {
		names[i] = s.Name()
	}
	sort.Strings(names)
	return "adaptive[" + strings.Join(names, "|") + "]"
}

// Plan implements Strategy.
func (a AdaptiveStrategy) Plan(s Surface) (Plan, error) {
	if len(a.Strategies) == 0 {
		return Plan{}, errors.New("adversary: adaptive strategy with no inner strategies")
	}
	var best Plan
	for i, inner := range a.Strategies {
		p, err := inner.Plan(s)
		if err != nil {
			return Plan{}, err
		}
		if i == 0 || p.Fraction > best.Fraction {
			best = p
		}
	}
	return best, nil
}
