package adversary

import (
	"math"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/diversity"
	"repro/internal/vuln"
)

func osCfg(name string) config.Configuration {
	return config.MustNew(config.Component{Class: config.ClassOperatingSystem, Name: name, Version: "1"})
}

func libCfg(osName, lib string) config.Configuration {
	return config.MustNew(
		config.Component{Class: config.ClassOperatingSystem, Name: osName, Version: "1"},
		config.Component{Class: config.ClassCryptoLibrary, Name: lib, Version: "1"},
	)
}

func mkVuln(id string, class config.Class, product string) vuln.Vulnerability {
	return vuln.Vulnerability{
		ID: vuln.ID(id), Class: class, Product: product,
		Disclosed: 0, PatchAt: 100 * time.Hour, Severity: 1,
	}
}

func TestGreedyExploitsPicksMaxCoverage(t *testing.T) {
	cat := vuln.NewCatalog()
	cat.Add(mkVuln("CVE-os-a", config.ClassOperatingSystem, "os-a"))
	cat.Add(mkVuln("CVE-os-b", config.ClassOperatingSystem, "os-b"))
	cat.Add(mkVuln("CVE-lib", config.ClassCryptoLibrary, "lib-x"))
	replicas := []vuln.Replica{
		{Name: "r1", Config: libCfg("os-a", "lib-x"), Power: 30},
		{Name: "r2", Config: libCfg("os-a", "lib-y"), Power: 20},
		{Name: "r3", Config: libCfg("os-b", "lib-x"), Power: 25},
		{Name: "r4", Config: libCfg("os-b", "lib-y"), Power: 25},
	}
	// Budget 1: CVE-os-b (50) and CVE-os-a (50) and CVE-lib (55) — lib wins.
	plan, err := GreedyExploits(cat, replicas, time.Hour, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chosen) != 1 || plan.Chosen[0] != "CVE-lib" {
		t.Fatalf("chosen = %v, want CVE-lib", plan.Chosen)
	}
	if math.Abs(plan.Fraction-0.55) > 1e-9 {
		t.Fatalf("fraction = %v, want 0.55", plan.Fraction)
	}
	if !plan.Breaks {
		t.Fatal("0.55 > 0.5 should break")
	}
	// Budget 2: lib (r1,r3 = 55) + best marginal: os-a adds r2 (20) = 75;
	// os-b adds r4 (25) = 80 — os-b wins.
	plan2, err := GreedyExploits(cat, replicas, time.Hour, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Chosen) != 2 || plan2.Chosen[1] != "CVE-os-b" {
		t.Fatalf("chosen = %v, want [CVE-lib CVE-os-b]", plan2.Chosen)
	}
	if math.Abs(plan2.Fraction-0.80) > 1e-9 {
		t.Fatalf("fraction = %v, want 0.80", plan2.Fraction)
	}
}

func TestGreedyExploitsStopsWhenNothingGains(t *testing.T) {
	cat := vuln.NewCatalog()
	cat.Add(mkVuln("CVE-os-a", config.ClassOperatingSystem, "os-a"))
	replicas := []vuln.Replica{
		{Name: "r1", Config: osCfg("os-a"), Power: 10},
		{Name: "r2", Config: osCfg("os-b"), Power: 10},
	}
	plan, err := GreedyExploits(cat, replicas, time.Hour, 5, 1.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chosen) != 1 {
		t.Fatalf("chosen = %v, want single useful exploit", plan.Chosen)
	}
	if !plan.Breaks {
		t.Fatal("compromising 0.5 of power must break a 1/3 tolerance")
	}
}

func TestGreedyExploitsRespectsWindows(t *testing.T) {
	cat := vuln.NewCatalog()
	v := mkVuln("CVE-later", config.ClassOperatingSystem, "os-a")
	v.Disclosed = 50 * time.Hour
	v.PatchAt = 60 * time.Hour
	cat.Add(v)
	replicas := []vuln.Replica{{Name: "r1", Config: osCfg("os-a"), Power: 10}}
	plan, err := GreedyExploits(cat, replicas, time.Hour, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chosen) != 0 {
		t.Fatal("undisclosed vulnerability exploited")
	}
}

func TestGreedyExploitsValidation(t *testing.T) {
	if _, err := GreedyExploits(nil, nil, 0, 1, 0.5); err == nil {
		t.Fatal("nil catalog accepted")
	}
	cat := vuln.NewCatalog()
	if _, err := GreedyExploits(cat, nil, 0, -1, 0.5); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := GreedyExploits(cat, []vuln.Replica{{Name: "x", Power: -1}}, 0, 1, 0.5); err == nil {
		t.Fatal("negative power accepted")
	}
	plan, err := GreedyExploits(cat, nil, 0, 1, 0.5)
	if err != nil || plan.Fraction != 0 {
		t.Fatalf("empty population: %v %+v", err, plan)
	}
}

func TestCorruptOperators(t *testing.T) {
	members := []diversity.Member{
		{Label: "big", Power: 40},
		{Label: "mid", Power: 35},
		{Label: "small", Power: 25},
	}
	plan, err := CorruptOperators(members, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Corrupted) != 2 || plan.Corrupted[0] != "big" || plan.Corrupted[1] != "mid" {
		t.Fatalf("corrupted = %v", plan.Corrupted)
	}
	if math.Abs(plan.Fraction-0.75) > 1e-9 || !plan.Breaks {
		t.Fatalf("plan = %+v", plan)
	}
	// Budget exceeding population clamps.
	all, _ := CorruptOperators(members, 10, 0.5)
	if math.Abs(all.Fraction-1) > 1e-9 {
		t.Fatalf("full corruption fraction = %v", all.Fraction)
	}
	if _, err := CorruptOperators(members, -1, 0.5); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := CorruptOperators([]diversity.Member{{Label: "x", Power: -1}}, 1, 0.5); err == nil {
		t.Fatal("negative power accepted")
	}
	empty, err := CorruptOperators(nil, 3, 0.5)
	if err != nil || empty.Breaks {
		t.Fatalf("empty members: %v %+v", err, empty)
	}
}

func TestMinCorruptionsToBreak(t *testing.T) {
	// (κ=4, ω=3) unit-power population: need 7 of 12 for majority.
	var members []diversity.Member
	for i := 0; i < 12; i++ {
		members = append(members, diversity.Member{Label: string(rune('a' + i)), Power: 1})
	}
	n, err := MinCorruptionsToBreak(members, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("min corruptions = %d, want 7", n)
	}
	// Threshold 1.0 can never be exceeded.
	n, _ = MinCorruptionsToBreak(members, 1.0)
	if n != -1 {
		t.Fatalf("impossible threshold -> %d, want -1", n)
	}
}

func TestRentalCost(t *testing.T) {
	// Attacker owns 10 of 100 power, wants majority: needs r with
	// (10+r)/(100+r) > 0.5 -> r = 80.
	rented, cost, err := RentalCost(10, 100, 0.5, 2, 3*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rented-80) > 1e-9 {
		t.Fatalf("rented = %v, want 80", rented)
	}
	if math.Abs(cost-480) > 1e-9 {
		t.Fatalf("cost = %v, want 480", cost)
	}
	// Already above threshold: free.
	r0, c0, _ := RentalCost(60, 100, 0.5, 2, time.Hour)
	if r0 != 0 || c0 != 0 {
		t.Fatalf("already-majority rental = %v/%v", r0, c0)
	}
	if _, _, err := RentalCost(-1, 100, 0.5, 1, time.Hour); err == nil {
		t.Fatal("negative owned accepted")
	}
	if _, _, err := RentalCost(10, 100, 1.0, 1, time.Hour); err == nil {
		t.Fatal("threshold 1.0 accepted")
	}
	if _, _, err := RentalCost(10, 100, 0.5, -1, time.Hour); err == nil {
		t.Fatal("negative price accepted")
	}
}

func TestDiversityDefeatsExploitsButNotCorruption(t *testing.T) {
	// The paper's core contrast: a diverse fleet resists shared-fault
	// exploitation, but operator corruption depends only on power split.
	cat := vuln.NewCatalog()
	cat.Add(mkVuln("CVE-mono", config.ClassOperatingSystem, "os-mono"))
	n := 12
	diverse := make([]vuln.Replica, n)
	mono := make([]vuln.Replica, n)
	var members []diversity.Member
	for i := 0; i < n; i++ {
		diverse[i] = vuln.Replica{Name: string(rune('a' + i)), Config: osCfg("os-" + string(rune('a'+i))), Power: 1}
		mono[i] = vuln.Replica{Name: string(rune('a' + i)), Config: osCfg("os-mono"), Power: 1}
		members = append(members, diversity.Member{Label: string(rune('a' + i)), Power: 1})
	}
	dPlan, _ := GreedyExploits(cat, diverse, time.Hour, 3, 0.5)
	mPlan, _ := GreedyExploits(cat, mono, time.Hour, 1, 0.5)
	if dPlan.Breaks {
		t.Fatal("diverse fleet broken by exploit budget")
	}
	if !mPlan.Breaks || mPlan.Fraction != 1 {
		t.Fatalf("monoculture plan = %+v, want total compromise", mPlan)
	}
	// Corruption needs a majority of operators either way.
	minC, _ := MinCorruptionsToBreak(members, 0.5)
	if minC != 7 {
		t.Fatalf("corruptions = %d", minC)
	}
}
