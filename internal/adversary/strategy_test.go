package adversary

import (
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/diversity"
	"repro/internal/vuln"
)

func strategySurface(t *testing.T) Surface {
	t.Helper()
	cat := vuln.NewCatalog()
	for _, v := range []vuln.Vulnerability{
		{ID: "CVE-A", Class: config.ClassOperatingSystem, Product: "debian", Disclosed: 0, PatchAt: 10 * time.Hour, Severity: 1},
		{ID: "CVE-B", Class: config.ClassOperatingSystem, Product: "fedora", Disclosed: 0, PatchAt: 10 * time.Hour, Severity: 1},
	} {
		if err := cat.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(os string) config.Configuration {
		return config.MustNew(config.Component{Class: config.ClassOperatingSystem, Name: os, Version: "1"})
	}
	replicas := []vuln.Replica{
		{Name: "d1", Config: mk("debian"), Power: 30, PatchLatency: time.Hour},
		{Name: "d2", Config: mk("debian"), Power: 20, PatchLatency: time.Hour},
		{Name: "f1", Config: mk("fedora"), Power: 15, PatchLatency: time.Hour},
		{Name: "o1", Config: mk("openbsd"), Power: 35, PatchLatency: time.Hour},
	}
	members := make([]diversity.Member, len(replicas))
	for i, r := range replicas {
		members[i] = diversity.Member{Label: r.Name, Power: r.Power}
	}
	return Surface{
		At: time.Hour, Catalog: cat, Replicas: replicas, Members: members,
		Threshold: 1.0 / 3.0,
	}
}

func TestExploitStrategy(t *testing.T) {
	s := strategySurface(t)
	plan, err := ExploitStrategy{Budget: 1}.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	// Best single exploit is CVE-A (debian, 50 of 100 power).
	if plan.Detail != "CVE-A" || plan.Fraction != 0.5 || !plan.Breaks {
		t.Errorf("plan = %+v, want CVE-A at 0.5 breaking", plan)
	}
	if !strings.HasPrefix(plan.Strategy, "exploit(") {
		t.Errorf("strategy name %q", plan.Strategy)
	}
	both, err := ExploitStrategy{Budget: 2}.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if both.Fraction != 0.65 || both.Detail != "CVE-A+CVE-B" {
		t.Errorf("two-exploit plan = %+v", both)
	}
}

func TestCorruptionStrategy(t *testing.T) {
	s := strategySurface(t)
	plan, err := CorruptionStrategy{Budget: 1}.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	// Richest operator is o1 at 35%.
	if plan.Detail != "o1" || plan.Fraction != 0.35 || !plan.Breaks {
		t.Errorf("plan = %+v, want o1 at 0.35 breaking", plan)
	}
}

func TestAdaptiveStrategyPicksTheStrongerModel(t *testing.T) {
	s := strategySurface(t)
	adaptive := AdaptiveStrategy{Strategies: []Strategy{
		ExploitStrategy{Budget: 1},    // 0.5
		CorruptionStrategy{Budget: 1}, // 0.35
	}}
	plan, err := adaptive.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(plan.Strategy, "exploit(") {
		t.Errorf("adaptive committed to %q, want the exploit model", plan.Strategy)
	}
	// Remove the exploitable products: corruption must win now.
	s.Catalog = vuln.NewCatalog()
	plan, err = adaptive.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(plan.Strategy, "corrupt(") {
		t.Errorf("adaptive committed to %q with no exploits left", plan.Strategy)
	}

	if _, err := (AdaptiveStrategy{}).Plan(s); err == nil {
		t.Error("empty adaptive strategy did not error")
	}
}

func TestCorruptionStrategyDetailTruncation(t *testing.T) {
	members := make([]diversity.Member, 10)
	for i := range members {
		members[i] = diversity.Member{Label: strings.Repeat("m", 1) + string(rune('0'+i)), Power: 1}
	}
	plan, err := CorruptionStrategy{Budget: 10}.Plan(Surface{Members: members, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Detail, "+6 more") {
		t.Errorf("long corruption detail not truncated: %q", plan.Detail)
	}
}
