// Package assessbench builds the assessment scale-ladder workload and
// measures the four assessment paths against it:
//
//   - flat: the pre-bucketing cold path — a per-replica exposure index
//     rebuilt from scratch (vuln.Inject over the materialised replica
//     slice), O(replicas × vulns) per assessment;
//   - cold: the bucketed full rebuild — a fresh monitor's first
//     assessment, constructing the grouped exposure index from the
//     snapshot's bucket aggregates, O(groups + vulns) regardless of
//     population;
//   - incremental: one registry mutation followed by an assessment on a
//     long-lived monitor, exercising the journalled snapshot delta and the
//     O(Δ) exposure patch;
//   - cached: an assessment on an unchanged registry — pure injector
//     evaluation.
//
// The same builder feeds BenchmarkAssessScale (bench_test.go) and
// cmd/assessbench, which emits the committed BENCH_assess.json, so the
// numbers in the README and the benchmarks in CI cannot drift apart.
package assessbench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/vuln"
)

// Workload shape: enough configuration buckets and equivalence groups to
// be structurally realistic, few enough that group counts saturate by the
// 100k rung — which is exactly what makes the bucketed paths O(1) in
// population size from there on.
const (
	Products       = 32 // distinct OS products = configuration buckets
	PowerClasses   = 97 // distinct raw power values
	LatencyClasses = 5  // distinct patch latencies (0..48h in 12h steps)

	// Horizon and instant: vulnerabilities disclose across ~29 days; the
	// probe instant sits mid-window with a realistic handful of open
	// exposure windows.
	Horizon = 30 * 24 * time.Hour
	Instant = 15 * 24 * time.Hour
)

// Catalog builds a catalog of n vulnerabilities spread over the products
// and the horizon. Severity is 1.0: every open window compromises its
// whole bucket, the paper's zero-day worst case and the regime where the
// grouped take needs no boundary-class resolution.
func Catalog(n int) (*vuln.Catalog, error) {
	cat := vuln.NewCatalog()
	span := Horizon - 24*time.Hour
	for i := 0; i < n; i++ {
		disclosed := time.Duration(i) * span / time.Duration(n)
		v := vuln.Vulnerability{
			ID:        vuln.ID(fmt.Sprintf("CVE-s-%04d", i)),
			Class:     config.ClassOperatingSystem,
			Product:   fmt.Sprintf("os-%d", i%Products),
			Disclosed: disclosed,
			PatchAt:   disclosed + 48*time.Hour,
			Severity:  1,
		}
		if err := cat.Add(v); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// Registry builds a registry of n declared replicas striped across the
// products, power classes and latency classes. Replica IDs are monotonic,
// so joins hit the registry's append fast path — building the 1M rung is
// dominated by config digesting, not by ordering.
func Registry(n int) (*registry.Registry, error) {
	configs := make([]config.Configuration, Products)
	for i := range configs {
		configs[i] = config.MustNew(config.Component{
			Class: config.ClassOperatingSystem, Name: fmt.Sprintf("os-%d", i), Version: "1",
		})
	}
	reg := registry.New(nil, nil)
	for i := 0; i < n; i++ {
		id := registry.ReplicaID(fmt.Sprintf("r-%07d", i))
		err := reg.JoinDeclared(id, configs[i%Products],
			float64(1+i%PowerClasses), time.Duration(i%LatencyClasses)*12*time.Hour)
		if err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// Rung is one point of the scale ladder.
type Rung struct {
	Replicas int `json:"replicas"`
	Vulns    int `json:"vulns"`
}

// Measurement is one rung's results in ns/op per path, plus the headline
// ratio: how much cheaper absorbing a single mutation is than the flat
// cold rebuild the incremental path replaced.
type Measurement struct {
	Replicas           int     `json:"replicas"`
	Vulns              int     `json:"vulns"`
	FlatNs             float64 `json:"flatNs"`
	ColdNs             float64 `json:"coldNs"`
	IncrementalNs      float64 `json:"incrementalNs"`
	CachedNs           float64 `json:"cachedNs"`
	SpeedupIncremental float64 `json:"speedupIncrementalVsFlat"`
}

// timeOp measures ns/op for op: one warm-up call, then as many timed calls
// as fit in budget (at least one). The GC runs to completion first so the
// garbage of the previous path (the flat path at the 1M rung produces
// gigabytes of it) is not billed to this one.
func timeOp(budget time.Duration, op func() error) (float64, error) {
	if err := op(); err != nil {
		return 0, err
	}
	runtime.GC()
	start := time.Now()
	iters := 0
	for {
		if err := op(); err != nil {
			return 0, err
		}
		iters++
		if elapsed := time.Since(start); elapsed >= budget {
			return float64(elapsed.Nanoseconds()) / float64(iters), nil
		}
	}
}

// MeasureRung builds the rung's workload and times the four paths. budget
// bounds the timed loop per path (a single long operation may exceed it).
func MeasureRung(r Rung, budget time.Duration) (Measurement, error) {
	m := Measurement{Replicas: r.Replicas, Vulns: r.Vulns}
	cat, err := Catalog(r.Vulns)
	if err != nil {
		return m, err
	}
	reg, err := Registry(r.Replicas)
	if err != nil {
		return m, err
	}
	snap, err := reg.Snapshot(registry.DefaultWeighting)
	if err != nil {
		return m, err
	}

	// Flat: the per-replica cold path over the materialised membership.
	replicas := snap.Replicas()
	m.FlatNs, err = timeOp(budget, func() error {
		_, err := vuln.Inject(cat, replicas, Instant)
		return err
	})
	if err != nil {
		return m, err
	}

	// Cold: fresh monitor, first assessment = full bucketed rebuild.
	m.ColdNs, err = timeOp(budget, func() error {
		mon, err := core.NewMonitor(reg, core.WithCatalog(cat), core.WithSummaryFaults())
		if err != nil {
			return err
		}
		_, err = mon.Assess(Instant)
		return err
	})
	if err != nil {
		return m, err
	}

	// Incremental: one long-lived monitor absorbing one mutation per op.
	mon, err := core.NewMonitor(reg, core.WithCatalog(cat), core.WithSummaryFaults())
	if err != nil {
		return m, err
	}
	power := 0
	m.IncrementalNs, err = timeOp(budget, func() error {
		power++
		if err := reg.SetPower("r-0000000", float64(1+power%PowerClasses)); err != nil {
			return err
		}
		_, err := mon.Assess(Instant)
		return err
	})
	if err != nil {
		return m, err
	}

	// Cached: unchanged registry, pure injector evaluation.
	m.CachedNs, err = timeOp(budget, func() error {
		_, err := mon.Assess(Instant)
		return err
	})
	if err != nil {
		return m, err
	}

	if m.IncrementalNs > 0 {
		m.SpeedupIncremental = m.FlatNs / m.IncrementalNs
	}
	return m, nil
}

// DefaultRungs is the CI-sized ladder; FullRungs adds the million-replica
// rungs behind the explicit opt-in (-scale-full / -full).
func DefaultRungs() []Rung {
	var rungs []Rung
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, v := range []int{50, 500} {
			rungs = append(rungs, Rung{Replicas: n, Vulns: v})
		}
	}
	return rungs
}

// FullRungs is DefaultRungs plus the 1M rungs.
func FullRungs() []Rung {
	rungs := DefaultRungs()
	for _, v := range []int{50, 500} {
		rungs = append(rungs, Rung{Replicas: 1_000_000, Vulns: v})
	}
	return rungs
}
