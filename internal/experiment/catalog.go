package experiment

import (
	"context"
	"time"

	"repro/internal/metrics"
)

// This file is the experiment catalog: every table and figure of the
// reproduction self-registers here (see DESIGN.md's per-experiment
// index). cmd/experiments drives the CLI off this registry and
// bench_test.go times the same entries, so the three surfaces cannot
// drift. Parameters that a Params knob covers (seed, trials, scale) come
// from the caller; sweep axes that define an experiment stay literal.

// tableOnly adapts experiments without structured rows to RunFunc.
func tableOnly(run func() (*metrics.Table, error)) RunFunc {
	return func(context.Context, Params) (*metrics.Table, any, error) {
		t, err := run()
		return t, nil, err
	}
}

func init() {
	Register("F1", "Figure 1 — best-case entropy of Bitcoin replica diversity",
		[]string{"paper", "nakamoto"},
		func(_ context.Context, p Params) (*metrics.Table, any, error) {
			return Figure1(p.Scale)
		})
	Register("T1", "Example 1 — Bitcoin oligopoly vs 8-replica BFT",
		[]string{"paper"},
		func(context.Context, Params) (*metrics.Table, any, error) {
			return Example1()
		})
	Register("P1", "Proposition 1 — abundance growth vs entropy",
		[]string{"paper"},
		func(context.Context, Params) (*metrics.Table, any, error) {
			return Proposition1Table()
		})
	Register("P2", "Proposition 2 — unique configs: more replicas ≠ more resilience",
		[]string{"paper"},
		func(context.Context, Params) (*metrics.Table, any, error) {
			return Proposition2Table()
		})
	Register("P3", "Proposition 3 — abundance vs resilience and overhead",
		[]string{"paper", "bft"},
		func(context.Context, Params) (*metrics.Table, any, error) {
			return Proposition3Table(8, []int{1, 2, 4, 8, 16})
		})
	Register("D12", "Definitions 1–2 — κ/(κ,ω)-optimality classification",
		[]string{"paper"},
		tableOnly(KappaOmegaTable))
	Register("X1", "X1 — shared-fault safety violations in live BFT",
		[]string{"extension", "bft"},
		func(context.Context, Params) (*metrics.Table, any, error) {
			return SafetyViolationVsEntropy(12, []int{1, 2, 3, 4, 6, 12})
		})
	Register("X2", "X2 — two-tier (attested vs declared) vote weighting",
		[]string{"extension", "two-tier"},
		func(context.Context, Params) (*metrics.Table, any, error) {
			return TwoTierWeighting([]float64{1, 0.75, 0.5, 0.25, 0.1})
		})
	Register("X4", "X4 — double-spend success vs compromised pools",
		[]string{"extension", "nakamoto"},
		func(ctx context.Context, p Params) (*metrics.Table, any, error) {
			return DoubleSpendVsCompromise(ctx, []int{1, 2, 3}, []int{1, 2, 6}, p.Trials, p.Workers, p.Seed)
		})
	Register("X5", "X5 — committee selection: stake vs VRF vs diversity-aware",
		[]string{"extension", "committee"},
		func(_ context.Context, p Params) (*metrics.Table, any, error) {
			return CommitteeDiversity([]int{16, 32, 64, 96}, p.Seed)
		})
	Register("SEC2C", "Sec. II-C — Σ f_t^i across a vulnerability window",
		[]string{"paper", "vuln"},
		tableOnly(FaultIndependenceOverTime))
	Register("ADV", "Adversary planning — exploit budget vs fleet diversity",
		[]string{"extension", "adversary"},
		tableOnly(GreedyAdversaryTable))
	Register("ABL", "Ablation — accept-all vs share-capped admission",
		[]string{"extension", "admission"},
		func(_ context.Context, p Params) (*metrics.Table, any, error) {
			return AdmissionAblation(2*p.Scale, p.Seed)
		})
	Register("M1", "M1 — patch latency vs worst-window compromised power",
		[]string{"mitigation", "vuln"},
		func(context.Context, Params) (*metrics.Table, any, error) {
			return PatchLatencySweep([]time.Duration{0, 24 * time.Hour, 3 * 24 * time.Hour, 7 * 24 * time.Hour})
		})
	Register("M2", "M2 — decentralized pool splitting",
		[]string{"mitigation", "nakamoto"},
		func(context.Context, Params) (*metrics.Table, any, error) {
			return PoolSplitting([]int{1, 2, 4, 8, 16})
		})
	Register("M3", "M3 — delegation collapse (exchange oligopolies)",
		[]string{"mitigation"},
		func(_ context.Context, p Params) (*metrics.Table, any, error) {
			return DelegationCollapse(p.Scale, []float64{0, 0.25, 0.5, 0.75, 0.95})
		})
	Register("CHURN", "Churn — join/leave trajectory under capped admission",
		[]string{"mitigation", "admission"},
		func(context.Context, Params) (*metrics.Table, any, error) {
			// The published table pins seed 11 (a representative churn
			// trace); the shared Seed knob would silently change it.
			return ChurnTrajectory(30, 25, true, 11)
		})
	Register("PLAN", "PLAN — component-level fault domains by assignment strategy",
		[]string{"mitigation", "planner"},
		func(_ context.Context, p Params) (*metrics.Table, any, error) {
			return PlannerComparison(24, p.Seed)
		})
	Register("M4", "M4 — proactive recovery vs persistent compromise",
		[]string{"mitigation", "planner"},
		func(context.Context, Params) (*metrics.Table, any, error) {
			return ProactiveRecovery([]time.Duration{24 * time.Hour, 7 * 24 * time.Hour})
		})
	Register("X6", "X6 — end to end: selection → BFT → zero-day",
		[]string{"extension", "committee", "bft"},
		func(context.Context, Params) (*metrics.Table, any, error) {
			// Seed 3 pins the published stake-sortition draw.
			return CommitteeEndToEnd(12, 3)
		})
	Register("NT", "NT — hashrate drift: time-varying voting power",
		[]string{"extension", "nakamoto"},
		func(_ context.Context, p Params) (*metrics.Table, any, error) {
			return HashrateDrift(100, 0.1, p.Seed)
		})
}
