package experiment

import (
	"testing"
	"time"
)

func TestPlannerComparison(t *testing.T) {
	_, plans, err := PlannerComparison(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("plans = %d", len(plans))
	}
	greedy, random, mono := plans[0], plans[1], plans[2]
	if greedy.WorstComponentShare > random.WorstComponentShare+1e-9 {
		t.Fatalf("greedy worst %v > random %v", greedy.WorstComponentShare, random.WorstComponentShare)
	}
	if mono.FaultsToHalf != 1 {
		t.Fatalf("monoculture faults to 1/2 = %d", mono.FaultsToHalf)
	}
	if greedy.FaultsToHalf < 2 {
		t.Fatalf("greedy faults to 1/2 = %d, want >= 2", greedy.FaultsToHalf)
	}
	if greedy.DistinctConfigs <= mono.DistinctConfigs {
		t.Fatal("greedy produced no configuration variety")
	}
}

func TestProactiveRecovery(t *testing.T) {
	_, rows, err := ProactiveRecovery([]time.Duration{24 * time.Hour, 7 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	none, daily, weekly := rows[0], rows[1], rows[2]
	// Without recovery the three implants accumulate to 3/4 and persist.
	if none.Final < 0.74 {
		t.Fatalf("no-recovery final = %v, want 0.75 (accumulated implants)", none.Final)
	}
	// Any recovery schedule heals by the horizon (last patch at 330h,
	// horizon 600h).
	if daily.Final != 0 || weekly.Final != 0 {
		t.Fatalf("recovered finals = %v/%v, want 0", daily.Final, weekly.Final)
	}
	// Faster rejuvenation means no more time at risk than slower.
	if daily.UnsafeShare > weekly.UnsafeShare+1e-9 {
		t.Fatalf("daily unsafe %v > weekly %v", daily.UnsafeShare, weekly.UnsafeShare)
	}
	// Recovery cannot reduce the in-window peak (rejuvenating a still-
	// vulnerable image is re-exploited), but must not exceed no-recovery.
	if daily.Peak > none.Peak+1e-9 {
		t.Fatalf("daily peak %v > none %v", daily.Peak, none.Peak)
	}
	if _, _, err := ProactiveRecovery([]time.Duration{0}); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestCommitteeEndToEnd(t *testing.T) {
	_, rows, err := CommitteeEndToEnd(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	stake, diverse := rows[0], rows[1]
	// Whale-heavy stake selection seats mostly cfg-0: attack succeeds.
	if !stake.PredictedUnsafe || !stake.ObservedViolation {
		t.Fatalf("stake committee = %+v, want violation", stake)
	}
	// Diversity-aware selection bounds cfg-0 seats: attack fails.
	if diverse.PredictedUnsafe || diverse.ObservedViolation {
		t.Fatalf("diverse committee = %+v, want safety", diverse)
	}
	// Prediction must match observation on both rows.
	for _, r := range rows {
		if r.PredictedUnsafe != r.ObservedViolation {
			t.Fatalf("prediction mismatch: %+v", r)
		}
	}
	if _, _, err := CommitteeEndToEnd(3, 1); err == nil {
		t.Fatal("size 3 accepted")
	}
	if _, _, err := CommitteeEndToEnd(10000, 1); err == nil {
		t.Fatal("oversized committee accepted")
	}
}
