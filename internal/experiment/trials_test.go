package experiment

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
	"repro/internal/nakamoto"
)

// The load-bearing property of the trial runner: the win count depends
// only on (seed, trials), never on the worker count — parallel Monte
// Carlo tables stay byte-identical to serial ones.
func TestRunTrialsDeterministicAcrossWorkers(t *testing.T) {
	trial := func(rng *rand.Rand) bool { return rng.Float64() < 0.3 }
	for _, trials := range []int{1, 100, trialChunkSize, trialChunkSize + 1, 5000} {
		serial, err := RunTrials(nil, 1, trials, 42, trial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 3, 8, 64} {
			got, err := RunTrials(context.Background(), workers, trials, 42, trial)
			if err != nil {
				t.Fatal(err)
			}
			if got != serial {
				t.Fatalf("trials=%d workers=%d: %d wins, serial %d", trials, workers, got, serial)
			}
		}
	}
	// Different seeds genuinely change the draw.
	a, _ := RunTrials(context.Background(), 4, 5000, 1, trial)
	b, _ := RunTrials(context.Background(), 4, 5000, 2, trial)
	if a == b {
		t.Fatalf("seeds 1 and 2 produced identical counts %d (suspicious derivation)", a)
	}
}

func TestRunTrialsRunsEveryTrialOnce(t *testing.T) {
	var calls atomic.Int64
	trials := 3*trialChunkSize + 17
	wins, err := RunTrials(context.Background(), 8, trials, 7, func(rng *rand.Rand) bool {
		calls.Add(1)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if wins != trials || int(calls.Load()) != trials {
		t.Fatalf("wins=%d calls=%d, want %d", wins, calls.Load(), trials)
	}
}

func TestRunTrialsValidation(t *testing.T) {
	if _, err := RunTrials(context.Background(), 1, 0, 7, func(*rand.Rand) bool { return true }); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := RunTrials(context.Background(), 1, 10, 7, nil); err == nil {
		t.Fatal("nil trial accepted")
	}
}

// Cancellation must stop in-flight trial batches (checked between
// chunks), not just queued experiments.
func TestRunTrialsHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: at most the claimed chunks run
	var calls atomic.Int64
	const trials = 100 * trialChunkSize
	for _, workers := range []int{1, 4} {
		calls.Store(0)
		if _, err := RunTrials(ctx, workers, trials, 7, func(*rand.Rand) bool {
			calls.Add(1)
			return true
		}); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if int(calls.Load()) >= trials {
			t.Fatalf("workers=%d: all %d trials ran despite cancellation", workers, trials)
		}
	}
}

// The X4 Monte Carlo estimate must still track the analytic race when
// distributed: correctness of the parallel seed derivation, not just
// determinism.
func TestRunTrialsMatchesAnalyticRace(t *testing.T) {
	const q, z = 0.2, 3
	want, err := nakamoto.DoubleSpendProbabilityExact(q, z)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 60000
	wins, err := RunTrials(context.Background(), 8, trials, 5, func(rng *rand.Rand) bool {
		return nakamoto.DoubleSpendTrial(rng, q, z)
	})
	if err != nil {
		t.Fatal(err)
	}
	got := float64(wins) / float64(trials)
	if diff := got - want; diff < -0.02 || diff > 0.02 {
		t.Fatalf("simulated %v vs analytic %v", got, want)
	}
}

func TestRunConcurrentMatchesSerial(t *testing.T) {
	exps := All()
	p := Params{Seed: 7, Trials: 500, Scale: 50, Workers: 2}
	serial, err := RunConcurrent(context.Background(), exps, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunConcurrent(context.Background(), exps, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(exps) || len(parallel) != len(exps) {
		t.Fatalf("result counts %d/%d, want %d", len(serial), len(parallel), len(exps))
	}
	for i := range serial {
		if serial[i].Experiment.ID != exps[i].ID || parallel[i].Experiment.ID != exps[i].ID {
			t.Fatalf("result %d out of order: %s / %s", i, serial[i].Experiment.ID, parallel[i].Experiment.ID)
		}
		if serial[i].Table.String() != parallel[i].Table.String() {
			t.Fatalf("%s: parallel table differs from serial", exps[i].ID)
		}
	}
}

func TestRunConcurrentPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{
		All()[0],
		{ID: "FAIL", Title: "always fails", Run: func(context.Context, Params) (*metrics.Table, any, error) {
			return nil, nil, boom
		}},
	}
	_, err := RunConcurrent(context.Background(), exps, Params{Seed: 1, Trials: 10, Scale: 10}, 4)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunConcurrent(ctx, All()[:3], Params{Seed: 1, Trials: 10, Scale: 10}, 2); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
