// Package experiment regenerates every table and figure of the paper plus
// the extension experiments listed in DESIGN.md. Each experiment is a pure
// function returning structured results and a metrics.Table; cmd/experiments
// prints them, bench_test.go times them, and EXPERIMENTS.md records them.
package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/adversary"
	"repro/internal/attest"
	"repro/internal/bft"
	"repro/internal/committee"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/diversity"
	"repro/internal/metrics"
	"repro/internal/nakamoto"
	"repro/internal/pooldata"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vuln"
)

// Figure1 reproduces Figure 1: best-case entropy of Bitcoin replica
// diversity as the residual 0.87% of power spreads over x = 1..maxTail
// miners. The table samples the curve at round x values.
func Figure1(maxTail int) (*metrics.Table, []pooldata.Figure1Point, error) {
	points, err := pooldata.Figure1Series(maxTail)
	if err != nil {
		return nil, nil, err
	}
	tab := metrics.NewTable("Figure 1 — best-case entropy of Bitcoin replica diversity",
		"x (tail miners)", "total miners", "entropy (bits)")
	samples := []int{1, 2, 5, 10, 20, 50, 101, 200, 500, 1000}
	for _, x := range samples {
		if x > maxTail {
			break
		}
		p := points[x-1]
		tab.AddRowf(p.TailMiners, p.Miners, p.Entropy)
	}
	tab.AddNote("paper claim: curve stays below 3 bits (8-replica BFT level) for all x <= 1000")
	return tab, points, nil
}

// Example1Result carries the quantities Example 1 compares.
type Example1Result struct {
	BitcoinEntropy      float64
	BitcoinEffective    float64
	BFT8Entropy         float64
	BitcoinFaultsToHalf int
	BFT8FaultsToThird   int
	MaxPoolShare        float64
}

// Example1 reproduces Example 1: the Bitcoin snapshot's entropy against an
// 8-replica uniquely-configured BFT cluster.
func Example1() (*metrics.Table, Example1Result, error) {
	var res Example1Result
	snap := pooldata.SnapshotDistribution()
	var err error
	if res.BitcoinEntropy, err = snap.Entropy(); err != nil {
		return nil, res, err
	}
	if res.BitcoinEffective, err = snap.EffectiveConfigurations(); err != nil {
		return nil, res, err
	}
	if res.BitcoinFaultsToHalf, err = snap.MinFaultsToExceed(0.5); err != nil {
		return nil, res, err
	}
	if _, res.MaxPoolShare, err = snap.MaxShare(); err != nil {
		return nil, res, err
	}
	bft8 := diversity.Uniform(8)
	if res.BFT8Entropy, err = bft8.Entropy(); err != nil {
		return nil, res, err
	}
	if res.BFT8FaultsToThird, err = bft8.MinFaultsToExceed(1.0 / 3.0); err != nil {
		return nil, res, err
	}
	tab := metrics.NewTable("Example 1 — Bitcoin oligopoly vs 8-replica BFT",
		"system", "configs", "entropy (bits)", "effective configs", "min faults to break")
	tab.AddRowf("bitcoin (17 pools)", 17, res.BitcoinEntropy, res.BitcoinEffective, res.BitcoinFaultsToHalf)
	tab.AddRowf("bft (8 replicas)", 8, res.BFT8Entropy, 8.0, res.BFT8FaultsToThird)
	tab.AddNote("bitcoin break threshold 1/2 (Nakamoto), bft threshold 1/3 (quorum)")
	tab.AddNote("largest pool (Foundry USA) share: %.3f", res.MaxPoolShare)
	return tab, res, nil
}

// Proposition1Table sweeps abundance growth patterns on κ-optimal systems.
func Proposition1Table() (*metrics.Table, []diversity.Proposition1Outcome, error) {
	tab := metrics.NewTable("Proposition 1 — abundance growth vs entropy (κ-optimal start)",
		"κ", "ω", "growth pattern", "H before", "H after", "Δ")
	var outs []diversity.Proposition1Outcome
	cases := []struct {
		kappa, omega int
		pattern      string
		additions    func(k int) []int
	}{
		{4, 2, "skewed (all to one config)", func(k int) []int { a := make([]int, k); a[0] = 8; return a }},
		{8, 2, "skewed (all to one config)", func(k int) []int { a := make([]int, k); a[0] = 16; return a }},
		{8, 2, "proportional (+3 each)", func(k int) []int {
			a := make([]int, k)
			for i := range a {
				a[i] = 3
			}
			return a
		}},
		{16, 4, "half the configs +4", func(k int) []int {
			a := make([]int, k)
			for i := 0; i < k/2; i++ {
				a[i] = 4
			}
			return a
		}},
		{32, 1, "proportional (+1 each)", func(k int) []int {
			a := make([]int, k)
			for i := range a {
				a[i] = 1
			}
			return a
		}},
	}
	for _, c := range cases {
		out, err := diversity.CheckProposition1(c.kappa, c.omega, c.additions(c.kappa))
		if err != nil {
			return nil, nil, err
		}
		outs = append(outs, out)
		tab.AddRowf(c.kappa, c.omega, c.pattern, out.EntropyBefore, out.EntropyAfter, out.EntropyDecrease)
	}
	tab.AddNote("entropy decreases unless relative abundance is preserved (proportional growth)")
	return tab, outs, nil
}

// Proposition2Table grows a uniform tail behind the Bitcoin oligopoly and
// behind a uniform base, showing resilience stays flat only for the former.
func Proposition2Table() (*metrics.Table, []diversity.Proposition2Outcome, error) {
	tab := metrics.NewTable("Proposition 2 — unique configs: more replicas ≠ more resilience",
		"base", "added replicas", "H after", "faults to 1/2 after")
	var outs []diversity.Proposition2Outcome
	oligopoly := append([]float64(nil), pooldata.BitcoinSnapshotPercent...)
	uniform8 := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	for _, added := range []int{10, 100, 1000} {
		out, err := diversity.CheckProposition2(oligopoly, added, pooldata.ResidualPercent)
		if err != nil {
			return nil, nil, err
		}
		outs = append(outs, out)
		tab.AddRowf("bitcoin oligopoly", added, out.EntropyAfter, out.FaultsToHalfAfter)
	}
	for _, added := range []int{8, 24, 56} {
		// Uniform growth: every new replica carries the same unit power as
		// the base — identical relative abundance.
		out, err := diversity.CheckProposition2(uniform8, added, float64(added))
		if err != nil {
			return nil, nil, err
		}
		outs = append(outs, out)
		tab.AddRowf("uniform-8", added, out.EntropyAfter, out.FaultsToHalfAfter)
	}
	tab.AddNote("oligopoly: 2 faults suffice regardless of tail size; uniform base: resilience scales")
	return tab, outs, nil
}

// Prop3Row is one ω point of the Proposition 3 sweep.
type Prop3Row struct {
	Outcome      diversity.Proposition3Outcome
	MessagesSent uint64 // BFT messages to commit one value with κ·ω replicas
}

// Proposition3Table sweeps configuration abundance ω at fixed κ and
// measures both resilience axes plus the real message cost of one BFT
// consensus instance at that population size.
func Proposition3Table(kappa int, omegas []int) (*metrics.Table, []Prop3Row, error) {
	tab := metrics.NewTable(fmt.Sprintf("Proposition 3 — abundance vs resilience and overhead (κ=%d)", kappa),
		"ω", "replicas", "operator faults to 1/2", "config faults to 1/2", "BFT msgs/commit")
	var rows []Prop3Row
	for _, omega := range omegas {
		out, err := diversity.CheckProposition3(kappa, omega)
		if err != nil {
			return nil, nil, err
		}
		msgs, err := bftMessagesPerCommit(kappa * omega)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Prop3Row{Outcome: out, MessagesSent: msgs})
		tab.AddRowf(omega, out.Replicas, out.OperatorFaultsToHalf, out.ConfigFaultsToHalf, msgs)
	}
	tab.AddNote("operator resilience grows linearly in ω; config resilience is flat; message cost grows ~quadratically")
	return tab, rows, nil
}

// bftMessagesPerCommit runs one consensus instance with n unit-weight
// replicas and returns the messages sent.
func bftMessagesPerCommit(n int) (uint64, error) {
	if n < 4 {
		n = 4 // quorum protocols need at least 4 replicas
	}
	sched := sim.NewScheduler(42)
	net, err := simnet.New(sched, simnet.FixedLatency(5*time.Millisecond), 0)
	if err != nil {
		return 0, err
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	cl, err := bft.NewCluster(net, bft.Config{Weights: weights})
	if err != nil {
		return 0, err
	}
	cl.Submit([]byte("probe"))
	if err := sched.Run(10 * time.Second); err != nil {
		return 0, err
	}
	if cl.HonestCommittedCount([]byte("probe")) != n {
		return 0, fmt.Errorf("experiment: only %d/%d replicas committed", cl.HonestCommittedCount([]byte("probe")), n)
	}
	return net.Stats().Sent, nil
}

// SafetyRow is one point of the safety-violation-vs-diversity experiment.
type SafetyRow struct {
	Configs           int     // κ: distinct configurations across n replicas
	Entropy           float64 // configuration entropy of the cluster
	CompromisedWeight float64 // fraction of voting power the zero-day takes
	PredictedUnsafe   bool    // compromised > 1/3 (Sec. II-C)
	ObservedViolation bool    // the BFT run actually double-committed
}

// SafetyViolationVsEntropy builds n-replica BFT clusters whose replicas are
// spread over κ configurations (round-robin), injects one zero-day into the
// primary's configuration, lets the compromised replicas collude
// (equivocation + promiscuous voting), and reports whether safety actually
// breaks. The paper's Sec. II-C condition predicts the outcome exactly.
func SafetyViolationVsEntropy(n int, kappas []int) (*metrics.Table, []SafetyRow, error) {
	if n < 4 {
		return nil, nil, fmt.Errorf("experiment: n %d < 4", n)
	}
	tab := metrics.NewTable(fmt.Sprintf("X1 — shared-fault safety violations in %d-replica BFT", n),
		"κ (configs)", "entropy (bits)", "compromised power", "predicted unsafe", "observed violation")
	var rows []SafetyRow
	for _, kappa := range kappas {
		if kappa < 1 || kappa > n {
			return nil, nil, fmt.Errorf("experiment: κ %d out of [1,%d]", kappa, n)
		}
		row, err := runSafetyCase(n, kappa)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
		tab.AddRowf(kappa, row.Entropy, row.CompromisedWeight,
			fmt.Sprint(row.PredictedUnsafe), fmt.Sprint(row.ObservedViolation))
	}
	tab.AddNote("one zero-day in the primary's configuration; compromised replicas collude")
	return tab, rows, nil
}

func runSafetyCase(n, kappa int) (SafetyRow, error) {
	// Replica i runs configuration i mod κ; the zero-day hits config 0,
	// which includes the view-0 primary (replica 0).
	labels := make(map[string]float64)
	compromised := make([]int, 0, n)
	for i := 0; i < n; i++ {
		cfg := i % kappa
		labels[fmt.Sprintf("cfg-%03d", cfg)]++
		if cfg == 0 {
			compromised = append(compromised, i)
		}
	}
	dist, err := diversity.FromWeights(labels)
	if err != nil {
		return SafetyRow{}, err
	}
	row := SafetyRow{Configs: kappa}
	if row.Entropy, err = dist.Entropy(); err != nil {
		return SafetyRow{}, err
	}
	row.CompromisedWeight = float64(len(compromised)) / float64(n)
	row.PredictedUnsafe = row.CompromisedWeight > core.BFTThreshold
	if len(compromised) == n {
		// Total compromise: no honest replica remains to witness a
		// double-commit; safety is violated by definition.
		row.ObservedViolation = true
		return row, nil
	}

	sched := sim.NewScheduler(1234)
	net, err := simnet.New(sched, simnet.UniformLatency{Min: time.Millisecond, Max: 10 * time.Millisecond}, 0)
	if err != nil {
		return SafetyRow{}, err
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	cl, err := bft.NewCluster(net, bft.Config{Weights: weights})
	if err != nil {
		return SafetyRow{}, err
	}
	for _, i := range compromised {
		cl.SetBehavior(i, bft.Promiscuous)
	}
	if err := cl.EquivocateNext([]byte("double-spend-A"), []byte("double-spend-B")); err != nil {
		return SafetyRow{}, err
	}
	if err := sched.Run(time.Minute); err != nil {
		return SafetyRow{}, err
	}
	row.ObservedViolation = cl.Violation() != nil
	return row, nil
}

// TwoTierRow is one discount point of the two-tier weighting sweep.
type TwoTierRow struct {
	Discount        float64
	Entropy         float64
	FaultsToThird   int
	CompromisedFrac float64
	Safe            bool
}

// TwoTierWeighting builds a registry whose attested tier is diverse but
// whose declared tier is a heavyweight monoculture carrying an exploitable
// zero-day, then sweeps the declared-tier vote discount δ — the paper's
// concluding proposal. Lower δ shifts effective power to the diverse tier,
// restoring the Sec. II-C safety condition.
func TwoTierWeighting(discounts []float64) (*metrics.Table, []TwoTierRow, error) {
	authReg, err := buildTwoTierRegistry()
	if err != nil {
		return nil, nil, err
	}
	cat := vuln.NewCatalog()
	if err := cat.Add(vuln.Vulnerability{
		ID: "CVE-mono-client", Class: config.ClassConsensusModule, Product: "popular-client",
		Disclosed: time.Hour, PatchAt: 48 * time.Hour, Severity: 1,
	}); err != nil {
		return nil, nil, err
	}
	tab := metrics.NewTable("X2 — two-tier (attested vs declared) vote weighting",
		"declared discount δ", "entropy (bits)", "faults to 1/3", "compromised power", "safe (f=1/3)")
	var rows []TwoTierRow
	for _, d := range discounts {
		out, err := core.EvaluateTwoTier(authReg, cat, core.BFTThreshold, d, 2*time.Hour)
		if err != nil {
			return nil, nil, err
		}
		row := TwoTierRow{
			Discount:        d,
			Entropy:         out.Weighted.Diversity.Entropy,
			FaultsToThird:   out.Weighted.Diversity.MinConfigFaultsToThird,
			CompromisedFrac: out.Weighted.Injection.TotalFraction,
			Safe:            out.Weighted.Safe,
		}
		rows = append(rows, row)
		tab.AddRowf(d, row.Entropy, row.FaultsToThird, row.CompromisedFrac, fmt.Sprint(row.Safe))
	}
	tab.AddNote("declared tier: monoculture client with an open zero-day; attested tier: diverse")
	return tab, rows, nil
}

func buildTwoTierRegistry() (*registry.Registry, error) {
	auth := newTestAuthority()
	reg := registry.New(auth.authority, nil)
	// Attested, diverse consensus clients.
	clients := []string{"client-a", "client-b", "client-c", "client-d", "client-e", "client-f"}
	for i, cl := range clients {
		cfg := config.MustNew(
			config.Component{Class: config.ClassTrustedHardware, Name: "tpm2", Version: "01.59"},
			config.Component{Class: config.ClassConsensusModule, Name: cl, Version: "1"},
		)
		if err := auth.joinAttested(reg, registry.ReplicaID(fmt.Sprintf("att-%d", i)), cfg, 10); err != nil {
			return nil, err
		}
	}
	// Declared monoculture: everyone runs the same popular client.
	mono := config.MustNew(config.Component{Class: config.ClassConsensusModule, Name: "popular-client", Version: "9"})
	for i := 0; i < 8; i++ {
		if err := reg.JoinDeclared(registry.ReplicaID(fmt.Sprintf("dec-%d", i)), mono, 15, 72*time.Hour); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// CommitteeRow is one committee-size point of the selection comparison.
type CommitteeRow struct {
	Size           int
	StakeEntropy   float64
	VRFEntropy     float64
	DiverseEntropy float64
	DiverseKappa   int
}

// CommitteeDiversity compares stake-weighted sortition, VRF sortition and
// diversity-aware selection on a candidate pool whose stake is concentrated
// in one configuration (the oligopoly shape of Example 1 again, but at the
// membership-selection layer).
func CommitteeDiversity(sizes []int, seed int64) (*metrics.Table, []CommitteeRow, error) {
	stakeSel, err := committee.NewSelector(
		committee.WithStrategy(committee.StakeWeighted),
		committee.WithRNG(rand.New(rand.NewSource(seed))))
	if err != nil {
		return nil, nil, err
	}
	vrfSel, err := committee.NewSelector(
		committee.WithStrategy(committee.VRF),
		committee.WithVRFSeed([]byte(fmt.Sprintf("seed-%d", seed))))
	if err != nil {
		return nil, nil, err
	}
	divSel, err := committee.NewSelector(committee.WithStrategy(committee.DiversityAware))
	if err != nil {
		return nil, nil, err
	}
	candidates := oligopolyCandidates()
	tab := metrics.NewTable("X5 — committee selection: stake-only vs VRF vs diversity-aware",
		"committee size", "H stake-weighted", "H VRF", "H diversity-aware", "κ (diverse)")
	var rows []CommitteeRow
	for _, size := range sizes {
		if size > len(candidates) {
			return nil, nil, fmt.Errorf("experiment: size %d exceeds %d candidates", size, len(candidates))
		}
		stakeCom, err := stakeSel.Select(candidates, size)
		if err != nil {
			return nil, nil, err
		}
		vrfCom, err := vrfSel.Select(candidates, size)
		if err != nil {
			return nil, nil, err
		}
		divCom, err := divSel.Select(candidates, size)
		if err != nil {
			return nil, nil, err
		}
		row := CommitteeRow{Size: size}
		if row.StakeEntropy, err = compositionEntropy(stakeCom); err != nil {
			return nil, nil, err
		}
		if row.VRFEntropy, err = compositionEntropy(vrfCom); err != nil {
			return nil, nil, err
		}
		if row.DiverseEntropy, err = compositionEntropy(divCom); err != nil {
			return nil, nil, err
		}
		byCount, _, err := committee.Composition(divCom)
		if err != nil {
			return nil, nil, err
		}
		if k, ok := byCount.Kappa(1e-9); ok {
			row.DiverseKappa = k
		}
		rows = append(rows, row)
		tab.AddRowf(size, row.StakeEntropy, row.VRFEntropy, row.DiverseEntropy, row.DiverseKappa)
	}
	tab.AddNote("candidate pool: 8 configurations, stake concentrated 10:1 in one of them")
	return tab, rows, nil
}

func compositionEntropy(com []committee.Candidate) (float64, error) {
	byCount, _, err := committee.Composition(com)
	if err != nil {
		return 0, err
	}
	return byCount.Entropy()
}

func oligopolyCandidates() []committee.Candidate {
	var out []committee.Candidate
	for cfg := 0; cfg < 8; cfg++ {
		count := 8
		stake := 1.0
		if cfg == 0 {
			count = 64 // the popular configuration
			stake = 10 // and its holders are whales
		}
		for i := 0; i < count; i++ {
			out = append(out, committee.Candidate{
				ID:          fmt.Sprintf("cand-%d-%03d", cfg, i),
				Stake:       stake,
				ConfigLabel: fmt.Sprintf("cfg-%d", cfg),
			})
		}
	}
	return out
}

// DoubleSpendRow is one (k, z) cell of the pool-compromise table.
type DoubleSpendRow struct {
	PoolsCompromised int
	Share            float64
	Confirmations    int
	Analytic         float64
	Simulated        float64
}

// DoubleSpendVsCompromise maps Example 1's oligopoly to operational attack
// success: compromising the top k pools yields hash share q; the table
// reports double-spend success probability at z confirmations, analytic
// (exact race) and simulated. Trials spread over workers goroutines via
// RunTrials; each (k, z) cell derives its own seed from (seed, k, z) so
// the table is identical for any worker count. ctx cancellation stops
// in-flight trial batches between chunks.
func DoubleSpendVsCompromise(ctx context.Context, ks []int, zs []int, trials, workers int, seed int64) (*metrics.Table, []DoubleSpendRow, error) {
	pools := make([]nakamoto.Pool, 0, len(pooldata.BitcoinSnapshotPercent))
	for _, p := range pooldata.BitcoinSnapshot() {
		pools = append(pools, nakamoto.Pool{Name: p.Name, Power: p.Share})
	}
	tab := metrics.NewTable("X4 — double-spend success vs compromised pools (Bitcoin snapshot)",
		"pools compromised", "hash share q", "confirmations z", "P analytic", "P simulated")
	var rows []DoubleSpendRow
	for _, k := range ks {
		q, err := nakamoto.CompromisedShare(pools, k)
		if err != nil {
			return nil, nil, err
		}
		for _, z := range zs {
			row := DoubleSpendRow{PoolsCompromised: k, Share: q, Confirmations: z}
			if q >= 0.5 {
				row.Analytic = 1
				row.Simulated = 1
			} else {
				if row.Analytic, err = nakamoto.DoubleSpendProbabilityExact(q, z); err != nil {
					return nil, nil, err
				}
				cellSeed := seed + int64(k)*1_000_003 + int64(z)*7919
				wins, err := RunTrials(ctx, workers, trials, cellSeed, func(rng *rand.Rand) bool {
					return nakamoto.DoubleSpendTrial(rng, q, z)
				})
				if err != nil {
					return nil, nil, err
				}
				row.Simulated = float64(wins) / float64(trials)
			}
			rows = append(rows, row)
			tab.AddRowf(k, q, z, row.Analytic, row.Simulated)
		}
	}
	tab.AddNote("k=2 pools already exceed q=1/2: guaranteed success (the oligopoly cliff)")
	return tab, rows, nil
}

// AdmissionRow compares accept-all vs share-capped admission after a churn
// trace.
type AdmissionRow struct {
	Policy        string
	Entropy       float64
	MaxShare      float64
	FaultsToThird int
}

// AdmissionAblation replays a skewed join trace (config popularity ~ Zipf)
// under accept-all and under the share-capping admission policy, comparing
// final diversity — the ablation for the core.AdmissionPolicy design choice.
func AdmissionAblation(joins int, seed int64) (*metrics.Table, []AdmissionRow, error) {
	if joins <= 0 {
		return nil, nil, fmt.Errorf("experiment: joins %d <= 0", joins)
	}
	rng := rand.New(rand.NewSource(seed))
	popularity, err := pooldata.SyntheticOligopoly(12, 1.2)
	if err != nil {
		return nil, nil, err
	}
	labels := popularity.Labels()
	probs, err := popularity.Probabilities()
	if err != nil {
		return nil, nil, err
	}
	pick := func() string {
		x := rng.Float64()
		cum := 0.0
		for i, p := range probs {
			cum += p
			if x < cum {
				return labels[i]
			}
		}
		return labels[len(labels)-1]
	}
	policy := core.AdmissionPolicy{TargetShare: 0.2, DeclaredDiscount: 1}
	acceptAll := make(map[string]float64)
	capped := make(map[string]float64)
	for i := 0; i < joins; i++ {
		label := pick()
		power := 1 + rng.Float64()*9
		acceptAll[label] += power
		cappedDist, err := diversity.FromWeights(capped)
		if err != nil {
			return nil, nil, err
		}
		dec, err := policy.Decide(cappedDist, label, power, true)
		if err != nil {
			return nil, nil, err
		}
		capped[label] += power * dec.Weight
	}
	tab := metrics.NewTable("Ablation — accept-all vs share-capped admission (Zipf joins)",
		"policy", "entropy (bits)", "max config share", "faults to 1/3")
	var rows []AdmissionRow
	for _, c := range []struct {
		name    string
		weights map[string]float64
	}{{"accept-all", acceptAll}, {"share-cap 0.2", capped}} {
		d, err := diversity.FromWeights(c.weights)
		if err != nil {
			return nil, nil, err
		}
		rep, err := diversity.ReportForDistribution(d)
		if err != nil {
			return nil, nil, err
		}
		row := AdmissionRow{Policy: c.name, Entropy: rep.Entropy, MaxShare: rep.MaxShare, FaultsToThird: rep.MinConfigFaultsToThird}
		rows = append(rows, row)
		tab.AddRowf(c.name, row.Entropy, row.MaxShare, row.FaultsToThird)
	}
	return tab, rows, nil
}

// GreedyAdversaryTable shows exploit-budget planning against diverse vs
// concentrated fleets (Sec. II-C's Σ f_t^i built from real planning).
func GreedyAdversaryTable() (*metrics.Table, error) {
	cat := vuln.NewCatalog()
	for i, prod := range []string{"os-a", "os-b", "os-c", "os-d"} {
		if err := cat.Add(vuln.Vulnerability{
			ID: vuln.ID(fmt.Sprintf("CVE-%d", i)), Class: config.ClassOperatingSystem,
			Product: prod, Disclosed: 0, PatchAt: 100 * time.Hour, Severity: 1,
		}); err != nil {
			return nil, err
		}
	}
	mkFleet := func(osNames []string) []vuln.Replica {
		out := make([]vuln.Replica, 16)
		for i := range out {
			out[i] = vuln.Replica{
				Name:   fmt.Sprintf("r-%02d", i),
				Config: config.MustNew(config.Component{Class: config.ClassOperatingSystem, Name: osNames[i%len(osNames)], Version: "1"}),
				Power:  1,
			}
		}
		return out
	}
	tab := metrics.NewTable("Adversary planning — exploit budget vs fleet diversity",
		"fleet", "budget", "compromised fraction", "breaks f=1/3")
	for _, fleet := range []struct {
		name string
		os   []string
	}{
		{"monoculture (1 OS)", []string{"os-a"}},
		{"duoculture (2 OS)", []string{"os-a", "os-b"}},
		{"diverse (4 OS)", []string{"os-a", "os-b", "os-c", "os-d"}},
	} {
		for _, budget := range []int{1, 2} {
			plan, err := adversary.GreedyExploits(cat, mkFleet(fleet.os), time.Hour, budget, core.BFTThreshold)
			if err != nil {
				return nil, err
			}
			tab.AddRowf(fleet.name, budget, plan.Fraction, fmt.Sprint(plan.Breaks))
		}
	}
	return tab, nil
}

// KappaOmegaTable classifies example populations against Definitions 1–2.
func KappaOmegaTable() (*metrics.Table, error) {
	tab := metrics.NewTable("Definitions 1–2 — κ-optimality / (κ,ω)-optimality classification",
		"population", "κ-optimal", "κ", "ω", "(κ,ω)-optimal")
	cases := []struct {
		name    string
		members []diversity.Member
		kappa   int
		omega   int
	}{
		{"4 configs × 3 replicas, unit power", uniformMembers(4, 3), 4, 3},
		{"4 configs × 3 replicas, skewed power", skewedMembers(4, 3), 4, 3},
		{"unique configs (8 × 1)", uniformMembers(8, 1), 8, 1},
	}
	for _, c := range cases {
		pop, err := diversity.NewPopulation(c.members)
		if err != nil {
			return nil, err
		}
		k, kOK := pop.PowerDistribution().Kappa(1e-9)
		w, wOK := pop.Omega()
		full := pop.IsKappaOmegaOptimal(c.kappa, c.omega, 1e-9)
		kStr, wStr := "-", "-"
		if kOK {
			kStr = fmt.Sprint(k)
		}
		if wOK {
			wStr = fmt.Sprint(w)
		}
		tab.AddRowf(c.name, fmt.Sprint(kOK), kStr, wStr, fmt.Sprint(full))
	}
	return tab, nil
}

func uniformMembers(kappa, omega int) []diversity.Member {
	var out []diversity.Member
	for c := 0; c < kappa; c++ {
		for i := 0; i < omega; i++ {
			out = append(out, diversity.Member{Label: fmt.Sprintf("c%d", c), Power: 1})
		}
	}
	return out
}

func skewedMembers(kappa, omega int) []diversity.Member {
	out := uniformMembers(kappa, omega)
	out[0].Power = 10
	return out
}

// FaultIndependenceOverTime traces the Sec. II-C condition across a
// vulnerability lifecycle for monoculture vs diverse fleets.
func FaultIndependenceOverTime() (*metrics.Table, error) {
	cat := vuln.NewCatalog()
	if err := cat.Add(vuln.Vulnerability{
		ID: "CVE-window", Class: config.ClassCryptoLibrary, Product: "openssl", Version: "3.0.8",
		Disclosed: 24 * time.Hour, PatchAt: 48 * time.Hour, Severity: 1,
	}); err != nil {
		return nil, err
	}
	libs := []string{"openssl", "boringssl", "libsodium", "golang-crypto"}
	mkFleet := func(n int, diverse bool) []vuln.Replica {
		out := make([]vuln.Replica, n)
		for i := range out {
			lib := "openssl"
			if diverse {
				lib = libs[i%len(libs)]
			}
			version := "3.0.8"
			if lib != "openssl" {
				version = "1.0"
			}
			out[i] = vuln.Replica{
				Name:         fmt.Sprintf("r%02d", i),
				Config:       config.MustNew(config.Component{Class: config.ClassCryptoLibrary, Name: lib, Version: version}),
				Power:        1,
				PatchLatency: time.Duration(i%5) * 12 * time.Hour, // staggered patching
			}
		}
		return out
	}
	tab := metrics.NewTable("Sec. II-C — Σ f_t^i across a vulnerability window (16 replicas)",
		"t (hours)", "monoculture Σf", "mono safe (f=1/3)", "diverse Σf", "diverse safe")
	for _, h := range []int{0, 24, 36, 60, 96, 120} {
		t := time.Duration(h) * time.Hour
		mono, err := vuln.Inject(cat, mkFleet(16, false), t)
		if err != nil {
			return nil, err
		}
		div, err := vuln.Inject(cat, mkFleet(16, true), t)
		if err != nil {
			return nil, err
		}
		tab.AddRowf(h, mono.TotalFraction, fmt.Sprint(mono.Safe(core.BFTThreshold)),
			div.TotalFraction, fmt.Sprint(div.Safe(core.BFTThreshold)))
	}
	tab.AddNote("diverse fleet keeps Σf ≤ 1/4 throughout; monoculture hits Σf = 1 inside the window")
	return tab, nil
}

// attestHarness wraps an attestation authority with a device factory so
// experiment registries can perform real attested joins.
type attestHarness struct {
	authority *attest.Authority
	serial    uint64
}

func newTestAuthority() *attestHarness {
	return &attestHarness{authority: attest.NewAuthority("tpm2")}
}

// joinAttested manufactures a device, quotes cfg, and performs a verified
// attested join for the replica.
func (h *attestHarness) joinAttested(reg *registry.Registry, id registry.ReplicaID, cfg config.Configuration, power float64) error {
	h.serial++
	dev, err := attest.NewDevice("tpm2", h.serial)
	if err != nil {
		return err
	}
	vote := cryptoutil.DeriveKeyPair("experiment/vote/"+string(id), 0)
	q, err := dev.QuoteConfig(cfg, vote.Public, h.authority.IssueNonce())
	if err != nil {
		return err
	}
	return reg.JoinAttested(id, cfg, q, power, 24*time.Hour)
}
