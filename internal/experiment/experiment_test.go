package experiment

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestFigure1(t *testing.T) {
	tab, points, err := Figure1(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1000 {
		t.Fatalf("points = %d", len(points))
	}
	// The paper's claim: the whole curve stays below 3 bits.
	for _, p := range points {
		if p.Entropy >= 3 {
			t.Fatalf("x=%d entropy %v >= 3", p.TailMiners, p.Entropy)
		}
	}
	if !strings.Contains(tab.String(), "1000") {
		t.Fatal("table missing x=1000 row")
	}
	if _, _, err := Figure1(0); err == nil {
		t.Fatal("maxTail 0 accepted")
	}
}

func TestExample1(t *testing.T) {
	tab, res, err := Example1()
	if err != nil {
		t.Fatal(err)
	}
	if res.BitcoinEntropy >= 3 || res.BitcoinEntropy < 2 {
		t.Fatalf("bitcoin entropy = %v", res.BitcoinEntropy)
	}
	if math.Abs(res.BFT8Entropy-3) > 1e-12 {
		t.Fatalf("bft-8 entropy = %v", res.BFT8Entropy)
	}
	if res.BitcoinFaultsToHalf != 2 {
		t.Fatalf("bitcoin faults = %d, want 2", res.BitcoinFaultsToHalf)
	}
	if res.BFT8FaultsToThird != 3 {
		t.Fatalf("bft faults = %d, want 3", res.BFT8FaultsToThird)
	}
	if res.MaxPoolShare < 0.34 {
		t.Fatalf("max share = %v", res.MaxPoolShare)
	}
	if !strings.Contains(tab.String(), "bitcoin (17 pools)") {
		t.Fatal("table missing bitcoin row")
	}
}

func TestProposition1Table(t *testing.T) {
	_, outs, err := Proposition1Table()
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range outs {
		if out.EntropyAfter > out.EntropyBefore+1e-9 {
			t.Fatalf("entropy increased: %+v", out)
		}
		if out.Proportional && math.Abs(out.EntropyDecrease) > 1e-9 {
			t.Fatalf("proportional growth changed entropy: %+v", out)
		}
		if !out.Proportional && out.EntropyDecrease <= 0 {
			t.Fatalf("skewed growth did not decrease entropy: %+v", out)
		}
	}
}

func TestProposition2Table(t *testing.T) {
	_, outs, err := Proposition2Table()
	if err != nil {
		t.Fatal(err)
	}
	// First three rows: oligopoly with growing tail — resilience pinned at 2.
	for i := 0; i < 3; i++ {
		if outs[i].FaultsToHalfAfter != 2 {
			t.Fatalf("oligopoly row %d: faults = %d, want 2", i, outs[i].FaultsToHalfAfter)
		}
	}
	// Uniform rows: resilience strictly grows with replica count.
	if !(outs[3].FaultsToHalfAfter < outs[4].FaultsToHalfAfter &&
		outs[4].FaultsToHalfAfter < outs[5].FaultsToHalfAfter) {
		t.Fatalf("uniform rows not increasing: %d %d %d",
			outs[3].FaultsToHalfAfter, outs[4].FaultsToHalfAfter, outs[5].FaultsToHalfAfter)
	}
}

func TestProposition3Table(t *testing.T) {
	_, rows, err := Proposition3Table(8, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Outcome.OperatorFaultsToHalf <= rows[i-1].Outcome.OperatorFaultsToHalf {
			t.Fatal("operator resilience not increasing in ω")
		}
		if rows[i].Outcome.ConfigFaultsToHalf != rows[0].Outcome.ConfigFaultsToHalf {
			t.Fatal("config resilience not ω-invariant")
		}
		if rows[i].MessagesSent <= rows[i-1].MessagesSent {
			t.Fatal("message overhead not increasing in ω")
		}
	}
}

func TestSafetyViolationVsEntropy(t *testing.T) {
	_, rows, err := SafetyViolationVsEntropy(12, []int{1, 2, 3, 4, 6, 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		// The Sec. II-C condition must predict the observed outcome exactly.
		if row.PredictedUnsafe != row.ObservedViolation {
			t.Fatalf("prediction mismatch at κ=%d: predicted %v, observed %v (compromised %.2f)",
				row.Configs, row.PredictedUnsafe, row.ObservedViolation, row.CompromisedWeight)
		}
	}
	// κ=1 (monoculture): everything compromised, must violate.
	if !rows[0].ObservedViolation {
		t.Fatal("monoculture did not violate safety")
	}
	// κ=12 (unique configs): 1/12 compromised, must stay safe.
	if rows[len(rows)-1].ObservedViolation {
		t.Fatal("fully diverse cluster violated safety")
	}
	// Entropy must increase with κ.
	for i := 1; i < len(rows); i++ {
		if rows[i].Entropy <= rows[i-1].Entropy-1e-9 {
			t.Fatal("entropy not increasing with κ")
		}
	}
	if _, _, err := SafetyViolationVsEntropy(3, []int{1}); err == nil {
		t.Fatal("n=3 accepted")
	}
	if _, _, err := SafetyViolationVsEntropy(8, []int{9}); err == nil {
		t.Fatal("κ>n accepted")
	}
}

func TestTwoTierWeighting(t *testing.T) {
	_, rows, err := TwoTierWeighting([]float64{1, 0.5, 0.25, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// At face value (δ=1) the monoculture zero-day breaks the system.
	if rows[0].Safe {
		t.Fatal("face-value weighting reported safe despite monoculture zero-day")
	}
	// Strong discounts restore safety.
	last := rows[len(rows)-1]
	if !last.Safe {
		t.Fatalf("δ=%v still unsafe (compromised %.3f)", last.Discount, last.CompromisedFrac)
	}
	// Compromised fraction decreases monotonically with the discount.
	for i := 1; i < len(rows); i++ {
		if rows[i].CompromisedFrac > rows[i-1].CompromisedFrac+1e-9 {
			t.Fatal("compromised fraction not decreasing with discount")
		}
	}
}

func TestCommitteeDiversity(t *testing.T) {
	_, rows, err := CommitteeDiversity([]int{16, 32, 64}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.DiverseEntropy < row.StakeEntropy {
			t.Fatalf("size %d: diversity-aware entropy %v below stake-only %v",
				row.Size, row.DiverseEntropy, row.StakeEntropy)
		}
		if row.Size <= 64 && row.DiverseKappa != 8 {
			t.Fatalf("size %d: diverse κ = %d, want 8 (all configs seated)", row.Size, row.DiverseKappa)
		}
	}
	if _, _, err := CommitteeDiversity([]int{10000}, 9); err == nil {
		t.Fatal("oversized committee accepted")
	}
}

func TestDoubleSpendVsCompromise(t *testing.T) {
	_, rows, err := DoubleSpendVsCompromise(context.Background(), []int{1, 2}, []int{1, 6}, 5000, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	byKZ := make(map[[2]int]DoubleSpendRow)
	for _, r := range rows {
		byKZ[[2]int{r.PoolsCompromised, r.Confirmations}] = r
	}
	// One pool (Foundry, ~34.5%): success possible but not certain at z=6.
	r16 := byKZ[[2]int{1, 6}]
	if r16.Analytic <= 0 || r16.Analytic >= 1 {
		t.Fatalf("k=1 z=6 analytic = %v, want in (0,1)", r16.Analytic)
	}
	if math.Abs(r16.Analytic-r16.Simulated) > 0.05 {
		t.Fatalf("k=1 z=6: analytic %v vs simulated %v", r16.Analytic, r16.Simulated)
	}
	// Two pools: majority — certain success.
	r26 := byKZ[[2]int{2, 6}]
	if r26.Analytic != 1 || r26.Simulated != 1 {
		t.Fatalf("k=2 z=6 = %v/%v, want 1/1", r26.Analytic, r26.Simulated)
	}
	if r26.Share <= 0.5 {
		t.Fatalf("k=2 share = %v", r26.Share)
	}
}

func TestAdmissionAblation(t *testing.T) {
	_, rows, err := AdmissionAblation(500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	acceptAll, capped := rows[0], rows[1]
	if capped.Entropy <= acceptAll.Entropy {
		t.Fatalf("share cap did not raise entropy: %v vs %v", capped.Entropy, acceptAll.Entropy)
	}
	if capped.MaxShare > 0.2+1e-6 {
		t.Fatalf("capped max share = %v, exceeds target 0.2", capped.MaxShare)
	}
	if capped.FaultsToThird <= acceptAll.FaultsToThird {
		t.Fatalf("share cap did not raise resilience: %d vs %d",
			capped.FaultsToThird, acceptAll.FaultsToThird)
	}
	if _, _, err := AdmissionAblation(0, 1); err == nil {
		t.Fatal("zero joins accepted")
	}
}

func TestGreedyAdversaryTable(t *testing.T) {
	tab, err := GreedyAdversaryTable()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"monoculture", "duoculture", "diverse"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}

func TestKappaOmegaTable(t *testing.T) {
	tab, err := KappaOmegaTable()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "unique configs") {
		t.Fatal("table missing unique-configs row")
	}
}

func TestFaultIndependenceOverTime(t *testing.T) {
	tab, err := FaultIndependenceOverTime()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "false") || !strings.Contains(s, "true") {
		t.Fatalf("expected both safe and unsafe instants:\n%s", s)
	}
}
