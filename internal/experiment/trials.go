package experiment

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Monte Carlo parallelism.
//
// Trials are partitioned into fixed-size chunks; each chunk gets its own
// rand.Rand seeded by a SplitMix64 derivation of (base seed, chunk index).
// The partitioning and seeding depend only on (seed, trials), never on the
// worker count, so a run with 16 workers counts exactly the same wins as a
// serial run — Monte Carlo tables stay byte-identical while regeneration
// scales with cores.

// trialChunkSize is the number of trials one derived rng serves. Large
// enough to amortise rng construction (rand.NewSource allocates ~5 KB of
// generator state), small enough to load-balance across workers.
const trialChunkSize = 1024

// ChunkSeed derives the deterministic seed for chunk c via SplitMix64 —
// one cheap, well-mixed 64-bit permutation step per chunk, so neighbouring
// chunks get uncorrelated streams even for small base seeds. Exported
// because the scenario sweep reuses the same discipline to seed generated
// timelines by generation index: any fixed-size-index fan-out that must not
// depend on worker count wants exactly this derivation.
func ChunkSeed(seed int64, c int) int64 {
	x := uint64(seed) + (uint64(c)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// RunTrials executes trials independent Monte Carlo trials across workers
// goroutines and returns how many reported success. workers <= 1 runs
// serially; the count is identical for every worker count because seeds
// derive from the chunk index, not the executing goroutine. trial must
// draw randomness only from the rng it is handed. Cancellation is checked
// between chunks (every trialChunkSize trials), so an interrupted run
// stops promptly and returns ctx's error.
func RunTrials(ctx context.Context, workers, trials int, seed int64, trial func(rng *rand.Rand) bool) (int, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("experiment: non-positive trials %d", trials)
	}
	if trial == nil {
		return 0, fmt.Errorf("experiment: nil trial function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	nChunks := (trials + trialChunkSize - 1) / trialChunkSize
	runChunk := func(c int) int {
		rng := rand.New(rand.NewSource(ChunkSeed(seed, c)))
		n := trialChunkSize
		if c == nChunks-1 {
			n = trials - c*trialChunkSize
		}
		wins := 0
		for i := 0; i < n; i++ {
			if trial(rng) {
				wins++
			}
		}
		return wins
	}
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		wins := 0
		for c := 0; c < nChunks; c++ {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			wins += runChunk(c)
		}
		return wins, nil
	}
	var (
		next  atomic.Int64
		total atomic.Int64
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				total.Add(int64(runChunk(c)))
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return int(total.Load()), nil
}

// Result is one experiment's regeneration output, as produced by Run or
// RunConcurrent.
type Result struct {
	Experiment Experiment
	Table      *metrics.Table
	Rows       any
}

// RunConcurrent regenerates the given experiments across up to workers
// goroutines and returns their results in input order. Experiments are
// pure functions of Params, so concurrent regeneration produces the same
// tables as a serial loop — only wall-clock time changes. The first
// experiment error cancels the remaining ones and is returned, attributed
// to its experiment id.
func RunConcurrent(ctx context.Context, exps []Experiment, p Params, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	results := make([]Result, len(exps))
	errs := make([]error, len(exps))
	if workers <= 1 {
		for i, e := range exps {
			tab, rows, err := e.Run(ctx, p)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.ID, err)
			}
			results[i] = Result{Experiment: e, Table: tab, Rows: rows}
		}
		return results, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(exps) {
					return
				}
				// Registered experiments check ctx in their Run wrapper;
				// this guard covers hand-built Experiment values too, so
				// no queued work starts after a failure.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				tab, rows, err := exps[i].Run(ctx, p)
				if err != nil {
					errs[i] = err
					cancel() // remaining experiments stop at their ctx check
					continue
				}
				results[i] = Result{Experiment: exps[i], Table: tab, Rows: rows}
			}
		}()
	}
	wg.Wait()
	// Prefer the root cause over the context.Canceled errors the cancel
	// fanned out to the experiments still queued behind it.
	var firstErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", exps[i].ID, err)
		}
		if !errors.Is(err, context.Canceled) {
			return nil, fmt.Errorf("%s: %w", exps[i].ID, err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
