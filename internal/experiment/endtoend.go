package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bft"
	"repro/internal/committee"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// EndToEndRow is one selection-strategy outcome of the X6 experiment.
type EndToEndRow struct {
	Strategy          string
	CompromisedSeats  int
	CommitteeSize     int
	CompromisedWeight float64
	PredictedUnsafe   bool
	ObservedViolation bool
}

// CommitteeEndToEnd is the full-stack experiment: candidates are selected
// into a committee (stake-weighted vs diversity-aware), the committee runs
// BFT with one vote per seat, and a zero-day compromises every member
// running the popular configuration (cfg-0). Compromised members collude
// (equivocation from the first compromised view's primary + promiscuous
// voting). The paper's safety condition predicts the outcome; the BFT
// simulator confirms it.
func CommitteeEndToEnd(size int, seed int64) (*metrics.Table, []EndToEndRow, error) {
	if size < 4 {
		return nil, nil, fmt.Errorf("experiment: committee size %d < 4", size)
	}
	candidates := oligopolyCandidates()
	if size > len(candidates) {
		return nil, nil, fmt.Errorf("experiment: size %d exceeds %d candidates", size, len(candidates))
	}
	stakeSel, err := committee.NewSelector(
		committee.WithStrategy(committee.StakeWeighted),
		committee.WithRNG(rand.New(rand.NewSource(seed))))
	if err != nil {
		return nil, nil, err
	}
	stakeCom, err := stakeSel.Select(candidates, size)
	if err != nil {
		return nil, nil, err
	}
	divSel, err := committee.NewSelector(committee.WithStrategy(committee.DiversityAware))
	if err != nil {
		return nil, nil, err
	}
	divCom, err := divSel.Select(candidates, size)
	if err != nil {
		return nil, nil, err
	}
	tab := metrics.NewTable(fmt.Sprintf("X6 — end to end: selection → BFT → zero-day in cfg-0 (committee of %d, 1 vote/seat)", size),
		"selection", "compromised seats", "compromised weight", "predicted unsafe", "observed violation")
	var rows []EndToEndRow
	for _, c := range []struct {
		name    string
		members []committee.Candidate
	}{{"stake-weighted", stakeCom}, {"diversity-aware", divCom}} {
		row, err := runCommitteeAttack(c.name, c.members, seed)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
		tab.AddRowf(row.Strategy, row.CompromisedSeats, row.CompromisedWeight,
			fmt.Sprint(row.PredictedUnsafe), fmt.Sprint(row.ObservedViolation))
	}
	tab.AddNote("zero-day hits every seat whose member runs configuration cfg-0")
	return tab, rows, nil
}

func runCommitteeAttack(name string, members []committee.Candidate, seed int64) (EndToEndRow, error) {
	row := EndToEndRow{Strategy: name, CommitteeSize: len(members)}
	// Order the committee so a compromised member (if any) is the view-0
	// primary: the adversary simply waits for a view it leads.
	ordered := make([]committee.Candidate, 0, len(members))
	var rest []committee.Candidate
	for _, m := range members {
		if m.ConfigLabel == "cfg-0" {
			ordered = append(ordered, m)
		} else {
			rest = append(rest, m)
		}
	}
	row.CompromisedSeats = len(ordered)
	ordered = append(ordered, rest...)
	row.CompromisedWeight = float64(row.CompromisedSeats) / float64(len(members))
	row.PredictedUnsafe = row.CompromisedWeight > core.BFTThreshold

	if row.CompromisedSeats == len(members) {
		row.ObservedViolation = true // total compromise: trivially unsafe
		return row, nil
	}
	sched := sim.NewScheduler(seed)
	net, err := simnet.New(sched, simnet.UniformLatency{Min: time.Millisecond, Max: 10 * time.Millisecond}, 0)
	if err != nil {
		return EndToEndRow{}, err
	}
	weights := make([]float64, len(ordered))
	for i := range weights {
		weights[i] = 1 // one vote per seat
	}
	cl, err := bft.NewCluster(net, bft.Config{Weights: weights})
	if err != nil {
		return EndToEndRow{}, err
	}
	for i, m := range ordered {
		if m.ConfigLabel == "cfg-0" {
			cl.SetBehavior(i, bft.Promiscuous)
		}
	}
	if row.CompromisedSeats > 0 {
		if err := cl.EquivocateNext([]byte("fork-A"), []byte("fork-B")); err != nil {
			return EndToEndRow{}, err
		}
	} else {
		cl.Submit([]byte("honest-value"))
	}
	if err := sched.Run(time.Minute); err != nil {
		return EndToEndRow{}, err
	}
	row.ObservedViolation = cl.Violation() != nil
	return row, nil
}
