package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/diversity"
	"repro/internal/metrics"
	"repro/internal/pooldata"
	"repro/internal/vuln"
)

// This file implements the mitigation experiments motivated by the paper's
// Sec. III discussion: patching speed (vulnerability windows, Remark 1),
// decentralized/non-outsourceable mining pools ([29]-[31]), delegation
// oligopolies (exchanges holding user keys), and membership churn.

// PatchRow is one patch-latency point.
type PatchRow struct {
	PatchLatency time.Duration
	MonoWorst    float64 // worst-window Σf for the monoculture fleet
	MonoSafe     bool
	DiverseWorst float64
	DiverseSafe  bool
}

// PatchLatencySweep measures how the worst-case compromised fraction over
// a vulnerability lifecycle depends on patch adoption latency, for a
// monoculture fleet and a 4-way diverse fleet. The paper's Remark 1:
// attacks happen during the vulnerability window — so faster patching
// narrows exposure but only diversity bounds its *amplitude*.
func PatchLatencySweep(latencies []time.Duration) (*metrics.Table, []PatchRow, error) {
	cat := vuln.NewCatalog()
	if err := cat.Add(vuln.Vulnerability{
		ID: "CVE-sweep", Class: config.ClassCryptoLibrary, Product: "openssl", Version: "3.0.8",
		Disclosed: 24 * time.Hour, PatchAt: 36 * time.Hour, Severity: 1,
	}); err != nil {
		return nil, nil, err
	}
	libs := []string{"openssl", "boringssl", "libsodium", "golang-crypto"}
	mkFleet := func(diverse bool, lat time.Duration) []vuln.Replica {
		out := make([]vuln.Replica, 16)
		for i := range out {
			lib, version := "openssl", "3.0.8"
			if diverse && i%len(libs) != 0 {
				lib, version = libs[i%len(libs)], "1.0"
			}
			out[i] = vuln.Replica{
				Name:         fmt.Sprintf("r%02d", i),
				Config:       config.MustNew(config.Component{Class: config.ClassCryptoLibrary, Name: lib, Version: version}),
				Power:        1,
				PatchLatency: lat,
			}
		}
		return out
	}
	tab := metrics.NewTable("M1 — patch latency vs worst-window compromised power (16 replicas)",
		"patch latency", "monoculture worst Σf", "mono safe", "diverse worst Σf", "diverse safe")
	var rows []PatchRow
	for _, lat := range latencies {
		mono, err := vuln.WorstWindow(cat, mkFleet(false, lat), 30*24*time.Hour)
		if err != nil {
			return nil, nil, err
		}
		div, err := vuln.WorstWindow(cat, mkFleet(true, lat), 30*24*time.Hour)
		if err != nil {
			return nil, nil, err
		}
		row := PatchRow{
			PatchLatency: lat,
			MonoWorst:    mono.TotalFraction,
			MonoSafe:     mono.Safe(core.BFTThreshold),
			DiverseWorst: div.TotalFraction,
			DiverseSafe:  div.Safe(core.BFTThreshold),
		}
		rows = append(rows, row)
		tab.AddRowf(lat.String(), row.MonoWorst, fmt.Sprint(row.MonoSafe),
			row.DiverseWorst, fmt.Sprint(row.DiverseSafe))
	}
	tab.AddNote("faster patching narrows the window but the monoculture's worst instant still loses everything")
	return tab, rows, nil
}

// PoolSplitRow is one point of the pool-splitting mitigation.
type PoolSplitRow struct {
	SplitInto    int // parts the largest pool is split into
	Entropy      float64
	FaultsToHalf int
}

// PoolSplitting models decentralized / non-outsourceable mining ([29]-[31]
// in the paper): the largest pool (Foundry, 34.5%) fragments into k
// independent pools of equal power. Entropy and majority resilience are
// recomputed on the Example 1 snapshot.
func PoolSplitting(splits []int) (*metrics.Table, []PoolSplitRow, error) {
	tab := metrics.NewTable("M2 — decentralizing the largest pool (Example 1 snapshot)",
		"largest pool split into", "entropy (bits)", "faults to 1/2")
	var rows []PoolSplitRow
	for _, k := range splits {
		if k < 1 {
			return nil, nil, fmt.Errorf("experiment: split %d < 1", k)
		}
		weights := make(map[string]float64)
		for i, share := range pooldata.BitcoinSnapshotPercent {
			if i == 0 {
				for j := 0; j < k; j++ {
					weights[fmt.Sprintf("foundry-shard-%02d", j)] = share / float64(k)
				}
				continue
			}
			weights[fmt.Sprintf("pool-%02d", i)] = share
		}
		d, err := diversity.FromWeights(weights)
		if err != nil {
			return nil, nil, err
		}
		row := PoolSplitRow{SplitInto: k}
		if row.Entropy, err = d.Entropy(); err != nil {
			return nil, nil, err
		}
		if row.FaultsToHalf, err = d.MinFaultsToExceed(0.5); err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
		tab.AddRowf(k, row.Entropy, row.FaultsToHalf)
	}
	tab.AddNote("splitting only helps if shards are operationally independent (unique configurations)")
	return tab, rows, nil
}

// DelegationRow is one point of the delegation-collapse experiment.
type DelegationRow struct {
	DelegatedFraction float64
	Entropy           float64
	EffectiveConfigs  float64
	FaultsToHalf      int
}

// DelegationCollapse models the paper's exchange-oligopoly concern
// (Sec. III-A, wallets): n stakeholders with uniform stake delegate a
// fraction p of the population to 3 exchanges (40/35/25 split of the
// delegated stake); delegated stake inherits the exchange's configuration,
// collapsing diversity.
func DelegationCollapse(n int, fractions []float64) (*metrics.Table, []DelegationRow, error) {
	if n < 10 {
		return nil, nil, fmt.Errorf("experiment: n %d too small", n)
	}
	exchangeSplit := []float64{0.40, 0.35, 0.25}
	tab := metrics.NewTable(fmt.Sprintf("M3 — delegation to exchanges collapses diversity (%d stakeholders)", n),
		"delegated fraction", "entropy (bits)", "effective configs", "faults to 1/2")
	var rows []DelegationRow
	for _, p := range fractions {
		if p < 0 || p > 1 {
			return nil, nil, fmt.Errorf("experiment: fraction %v out of [0,1]", p)
		}
		weights := make(map[string]float64)
		delegated := int(float64(n) * p)
		for i := 0; i < len(exchangeSplit); i++ {
			weights[fmt.Sprintf("exchange-%d", i)] = float64(delegated) * exchangeSplit[i]
		}
		for i := delegated; i < n; i++ {
			weights[fmt.Sprintf("self-%05d", i)] = 1
		}
		d, err := diversity.FromWeights(weights)
		if err != nil {
			return nil, nil, err
		}
		row := DelegationRow{DelegatedFraction: p}
		if row.Entropy, err = d.Entropy(); err != nil {
			return nil, nil, err
		}
		if row.EffectiveConfigs, err = d.EffectiveConfigurations(); err != nil {
			return nil, nil, err
		}
		if row.FaultsToHalf, err = d.MinFaultsToExceed(0.5); err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
		tab.AddRowf(p, row.Entropy, row.EffectiveConfigs, row.FaultsToHalf)
	}
	tab.AddNote("delegates manage keys AND consensus for their users: one fault domain per exchange")
	return tab, rows, nil
}

// ChurnRow is one epoch snapshot of the churn trajectory.
type ChurnRow struct {
	Epoch         int
	Members       int
	Entropy       float64
	MaxShare      float64
	FaultsToThird int
}

// ChurnTrajectory drives a permissionless population through epochs of
// joins and leaves (the paper's "anyone can join and leave at any time").
// Joiners pick configurations by Zipf popularity; leavers are uniform.
// With capped=true, joins pass through the share-capping admission policy.
func ChurnTrajectory(epochs, joinsPerEpoch int, capped bool, seed int64) (*metrics.Table, []ChurnRow, error) {
	if epochs < 1 || joinsPerEpoch < 1 {
		return nil, nil, fmt.Errorf("experiment: epochs %d / joins %d must be positive", epochs, joinsPerEpoch)
	}
	rng := rand.New(rand.NewSource(seed))
	popularity, err := pooldata.SyntheticOligopoly(10, 1.3)
	if err != nil {
		return nil, nil, err
	}
	labels := popularity.Labels()
	probs, err := popularity.Probabilities()
	if err != nil {
		return nil, nil, err
	}
	pickCfg := func() string {
		x := rng.Float64()
		cum := 0.0
		for i, p := range probs {
			cum += p
			if x < cum {
				return labels[i]
			}
		}
		return labels[len(labels)-1]
	}
	policy := core.AdmissionPolicy{TargetShare: 0.2, DeclaredDiscount: 1}

	type member struct {
		label string
		power float64
	}
	var members []member
	title := "CHURN — entropy under join/leave churn (accept-all)"
	if capped {
		title = "CHURN — entropy under join/leave churn (share-cap 0.2)"
	}
	tab := metrics.NewTable(title, "epoch", "members", "entropy (bits)", "max share", "faults to 1/3")
	var rows []ChurnRow
	for e := 1; e <= epochs; e++ {
		// Joins.
		for j := 0; j < joinsPerEpoch; j++ {
			label := pickCfg()
			power := 1 + rng.Float64()*9
			if capped {
				weights := make(map[string]float64)
				for _, m := range members {
					weights[m.label] += m.power
				}
				d, err := diversity.FromWeights(weights)
				if err != nil {
					return nil, nil, err
				}
				dec, err := policy.Decide(d, label, power, true)
				if err != nil {
					return nil, nil, err
				}
				power *= dec.Weight
			}
			members = append(members, member{label: label, power: power})
		}
		// Leaves: ~20% of the population departs each epoch.
		if leave := len(members) / 5; leave > 0 {
			rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
			members = members[:len(members)-leave]
			// Restore determinism of later snapshots regardless of map order.
			sort.Slice(members, func(i, j int) bool {
				if members[i].label != members[j].label {
					return members[i].label < members[j].label
				}
				return members[i].power < members[j].power
			})
		}
		weights := make(map[string]float64)
		for _, m := range members {
			weights[m.label] += m.power
		}
		d, err := diversity.FromWeights(weights)
		if err != nil {
			return nil, nil, err
		}
		rep, err := diversity.ReportForDistribution(d)
		if err != nil {
			return nil, nil, err
		}
		row := ChurnRow{
			Epoch: e, Members: len(members), Entropy: rep.Entropy,
			MaxShare: rep.MaxShare, FaultsToThird: rep.MinConfigFaultsToThird,
		}
		rows = append(rows, row)
		if e == 1 || e%5 == 0 {
			tab.AddRowf(e, row.Members, row.Entropy, row.MaxShare, row.FaultsToThird)
		}
	}
	return tab, rows, nil
}

// DriftRow is one step of the hashrate-drift trajectory.
type DriftRow struct {
	Step         int
	Entropy      float64
	MaxShare     float64
	FaultsToHalf int
}

// HashrateDrift models the paper's time-varying total voting power n_t:
// starting from the Example 1 snapshot, every pool's hash power follows a
// geometric random walk (multiplicative log-normal steps of volatility
// sigma per step). The trajectory shows how oligopoly — and with it fault
// independence — evolves without any enforcement.
func HashrateDrift(steps int, sigma float64, seed int64) (*metrics.Table, []DriftRow, error) {
	if steps < 1 {
		return nil, nil, fmt.Errorf("experiment: steps %d < 1", steps)
	}
	if sigma <= 0 || sigma > 2 {
		return nil, nil, fmt.Errorf("experiment: sigma %v out of (0,2]", sigma)
	}
	rng := rand.New(rand.NewSource(seed))
	powers := make(map[string]float64)
	for _, p := range pooldata.BitcoinSnapshot() {
		powers[p.Name] = p.Share
	}
	tab := metrics.NewTable(fmt.Sprintf("NT — hashrate drift from the snapshot (σ=%v per step)", sigma),
		"step", "entropy (bits)", "max share", "faults to 1/2")
	var rows []DriftRow
	for s := 0; s <= steps; s++ {
		d, err := diversity.FromWeights(powers)
		if err != nil {
			return nil, nil, err
		}
		rep, err := diversity.ReportForDistribution(d)
		if err != nil {
			return nil, nil, err
		}
		row := DriftRow{Step: s, Entropy: rep.Entropy, MaxShare: rep.MaxShare, FaultsToHalf: rep.MinConfigFaultsToHalf}
		rows = append(rows, row)
		if s%(steps/5+1) == 0 || s == steps {
			tab.AddRowf(s, row.Entropy, row.MaxShare, row.FaultsToHalf)
		}
		// Advance the walk (deterministic label order).
		labels := d.Labels()
		for _, l := range labels {
			powers[l] *= math.Exp(rng.NormFloat64() * sigma)
		}
	}
	tab.AddNote("unmanaged drift: majority takeover stays a 2-3 fault event throughout")
	return tab, rows, nil
}
