package experiment

import (
	"context"
	"testing"

	"repro/internal/pooldata"
)

// catalogIDs is the canonical experiment index (DESIGN.md order); the
// registry must list exactly these, each exactly once.
var catalogIDs = []string{
	"F1", "T1", "P1", "P2", "P3", "D12", "X1", "X2", "X4", "X5",
	"SEC2C", "ADV", "ABL", "M1", "M2", "M3", "CHURN", "PLAN", "M4", "X6", "NT",
}

func TestRegistryListsEveryExperimentExactlyOnce(t *testing.T) {
	ids := IDs()
	if len(ids) != len(catalogIDs) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(ids), len(catalogIDs), ids)
	}
	seen := make(map[string]int)
	for _, id := range ids {
		seen[id]++
	}
	for _, want := range catalogIDs {
		if seen[want] != 1 {
			t.Fatalf("id %s registered %d times, want exactly once", want, seen[want])
		}
	}
	// All() and IDs() agree, and every entry is well-formed.
	for i, e := range All() {
		if e.ID != ids[i] {
			t.Fatalf("All()[%d].ID = %s, IDs()[%d] = %s", i, e.ID, i, ids[i])
		}
		if e.Title == "" || e.Run == nil || len(e.Tags) == 0 {
			t.Fatalf("experiment %s incompletely registered: %+v", e.ID, e)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, id := range []string{"F1", "f1", " f1 "} {
		e, ok := Lookup(id)
		if !ok || e.ID != "F1" {
			t.Fatalf("Lookup(%q) = %+v, %v", id, e, ok)
		}
	}
	if _, ok := Lookup("NOPE"); ok {
		t.Fatal("Lookup accepted an unknown id")
	}
}

func TestRegistryTags(t *testing.T) {
	paper := WithTag("paper")
	if len(paper) == 0 {
		t.Fatal("no experiments tagged paper")
	}
	for _, e := range paper {
		if !e.HasTag("PAPER") {
			t.Fatalf("%s lost its tag under case folding", e.ID)
		}
	}
	if len(WithTag("no-such-tag")) != 0 {
		t.Fatal("unknown tag matched experiments")
	}
	if len(Tags()) < 3 {
		t.Fatalf("tag vocabulary too small: %v", Tags())
	}
}

func TestRegistryRunHonoursContextAndParams(t *testing.T) {
	e, ok := Lookup("T1")
	if !ok {
		t.Fatal("T1 not registered")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.Run(cancelled, DefaultParams()); err == nil {
		t.Fatal("cancelled context accepted")
	}
	if _, _, err := e.Run(context.Background(), Params{Seed: 1, Trials: 0, Scale: 1}); err == nil {
		t.Fatal("zero trials accepted")
	}
	tab, _, err := e.Run(context.Background(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil {
		t.Fatal("T1 returned no table")
	}
}

// TestRegistryRunsCheapEntries smoke-runs the fast structured-result
// experiments through the registry path and checks their typed rows come
// back intact.
func TestRegistryRunsCheapEntries(t *testing.T) {
	p := Params{Seed: 7, Trials: 200, Scale: 50}
	f1, _ := Lookup("F1")
	_, rows, err := f1.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if pts, ok := rows.([]pooldata.Figure1Point); !ok || len(pts) != p.Scale {
		t.Fatalf("F1 rows = %T (len?), want []pooldata.Figure1Point of %d", rows, p.Scale)
	}
	x2, _ := Lookup("X2")
	_, rows, err = x2.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rows.([]TwoTierRow); !ok {
		t.Fatalf("X2 rows have type %T, want []TwoTierRow", rows)
	}
}
