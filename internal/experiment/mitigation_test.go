package experiment

import (
	"testing"
	"time"
)

func TestPatchLatencySweep(t *testing.T) {
	latencies := []time.Duration{0, 24 * time.Hour, 7 * 24 * time.Hour}
	_, rows, err := PatchLatencySweep(latencies)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// Diversity bounds the amplitude at every latency.
		if row.DiverseWorst > 0.25+1e-9 {
			t.Fatalf("diverse worst = %v at latency %v", row.DiverseWorst, row.PatchLatency)
		}
		if !row.DiverseSafe {
			t.Fatalf("diverse fleet unsafe at latency %v", row.PatchLatency)
		}
		// Monoculture loses everything during the window regardless of
		// latency (the window always has nonzero width here).
		if row.MonoWorst != 1 {
			t.Fatalf("mono worst = %v at latency %v, want 1", row.MonoWorst, row.PatchLatency)
		}
		if row.MonoSafe {
			t.Fatalf("monoculture reported safe at latency %v", row.PatchLatency)
		}
	}
}

func TestPoolSplitting(t *testing.T) {
	_, rows, err := PoolSplitting([]int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	// k=1 is the unmodified snapshot.
	if rows[0].FaultsToHalf != 2 {
		t.Fatalf("unsplit faults = %d, want 2", rows[0].FaultsToHalf)
	}
	// Splitting strictly increases entropy and (weakly) resilience.
	for i := 1; i < len(rows); i++ {
		if rows[i].Entropy <= rows[i-1].Entropy {
			t.Fatalf("entropy not increasing at split %d", rows[i].SplitInto)
		}
		if rows[i].FaultsToHalf < rows[i-1].FaultsToHalf {
			t.Fatalf("resilience decreased at split %d", rows[i].SplitInto)
		}
	}
	// Splitting Foundry into 8 shards: the top two remaining pools
	// (AntPool 20% + F2Pool 13%) no longer reach 50% alone.
	last := rows[len(rows)-1]
	if last.FaultsToHalf <= 2 {
		t.Fatalf("8-way split still falls to %d faults", last.FaultsToHalf)
	}
	if _, _, err := PoolSplitting([]int{0}); err == nil {
		t.Fatal("split 0 accepted")
	}
}

func TestDelegationCollapse(t *testing.T) {
	_, rows, err := DelegationCollapse(1000, []float64{0, 0.25, 0.5, 0.75, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// p=0: 1000 unique configs, near-maximal entropy.
	if rows[0].Entropy < 9.9 {
		t.Fatalf("undelegated entropy = %v, want ≈ log2(1000)", rows[0].Entropy)
	}
	// Entropy collapses monotonically with delegation.
	for i := 1; i < len(rows); i++ {
		if rows[i].Entropy >= rows[i-1].Entropy {
			t.Fatalf("entropy not decreasing at p=%v", rows[i].DelegatedFraction)
		}
	}
	// Heavy delegation: two exchange faults control a majority.
	last := rows[len(rows)-1]
	if last.FaultsToHalf != 2 {
		t.Fatalf("p=0.95 faults = %d, want 2", last.FaultsToHalf)
	}
	if _, _, err := DelegationCollapse(5, []float64{0.5}); err == nil {
		t.Fatal("tiny n accepted")
	}
	if _, _, err := DelegationCollapse(100, []float64{1.5}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestChurnTrajectory(t *testing.T) {
	_, plain, err := ChurnTrajectory(20, 25, false, 11)
	if err != nil {
		t.Fatal(err)
	}
	_, capped, err := ChurnTrajectory(20, 25, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 20 || len(capped) != 20 {
		t.Fatalf("rows = %d/%d", len(plain), len(capped))
	}
	// After the population stabilises, the capped policy keeps max share
	// at the target while accept-all drifts above it.
	lastPlain, lastCapped := plain[len(plain)-1], capped[len(capped)-1]
	if lastCapped.MaxShare > 0.2+0.02 {
		t.Fatalf("capped max share = %v, exceeds target", lastCapped.MaxShare)
	}
	if lastPlain.MaxShare <= 0.2 {
		t.Fatalf("accept-all max share = %v, suspiciously low for Zipf joins", lastPlain.MaxShare)
	}
	if lastCapped.Entropy <= lastPlain.Entropy {
		t.Fatalf("cap did not improve entropy: %v vs %v", lastCapped.Entropy, lastPlain.Entropy)
	}
	// Determinism.
	_, again, err := ChurnTrajectory(20, 25, false, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != again[i] {
			t.Fatal("churn trajectory not deterministic")
		}
	}
	if _, _, err := ChurnTrajectory(0, 1, false, 1); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestHashrateDrift(t *testing.T) {
	_, rows, err := HashrateDrift(50, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 51 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Step 0 is the exact snapshot.
	if rows[0].FaultsToHalf != 2 {
		t.Fatalf("step 0 faults = %d, want 2", rows[0].FaultsToHalf)
	}
	// Entropy stays in a plausible band (no pool vanishes or explodes at
	// σ=0.1 over 50 steps) and the oligopoly persists.
	for _, r := range rows {
		if r.Entropy < 1 || r.Entropy > 4.1 {
			t.Fatalf("step %d entropy %v out of band", r.Step, r.Entropy)
		}
		if r.FaultsToHalf < 1 || r.FaultsToHalf > 5 {
			t.Fatalf("step %d faults %d out of band", r.Step, r.FaultsToHalf)
		}
	}
	// Deterministic.
	_, again, _ := HashrateDrift(50, 0.1, 7)
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatal("drift not deterministic")
		}
	}
	if _, _, err := HashrateDrift(0, 0.1, 1); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, _, err := HashrateDrift(10, 0, 1); err == nil {
		t.Fatal("zero sigma accepted")
	}
}
