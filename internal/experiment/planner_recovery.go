package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/planner"
	"repro/internal/recovery"
	"repro/internal/vuln"
)

// PlannerComparison evaluates the three assignment strategies (greedy
// Lazarus-style, random permissionless, monoculture) at component-level
// fault-domain granularity — the PLAN experiment.
func PlannerComparison(n int, seed int64) (*metrics.Table, []planner.Plan, error) {
	cat := config.DefaultCatalog()
	greedy, err := planner.GreedyAssign(cat, n)
	if err != nil {
		return nil, nil, err
	}
	random, err := planner.RandomAssign(cat, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	mono, err := planner.MonocultureAssign(cat, n)
	if err != nil {
		return nil, nil, err
	}
	tab := metrics.NewTable(fmt.Sprintf("PLAN — component-level fault domains by assignment strategy (n=%d)", n),
		"strategy", "distinct configs", "worst component share", "worst component", "component faults to 1/3", "to 1/2")
	var plans []planner.Plan
	for _, c := range []struct {
		name    string
		configs []config.Configuration
	}{{"greedy (managed)", greedy}, {"random (unmanaged)", random}, {"monoculture", mono}} {
		p, err := planner.Evaluate(c.name, c.configs)
		if err != nil {
			return nil, nil, err
		}
		plans = append(plans, p)
		tab.AddRowf(p.Strategy, p.DistinctConfigs, p.WorstComponentShare, p.WorstComponent,
			p.FaultsToThird, p.FaultsToHalf)
	}
	tab.AddNote("component view refines Definition 1: distinct configurations still share per-component fault domains")
	tab.AddNote("the 2-choice runtime class caps everyone's worst share at 1/2 (Remark 2's scarcity, measured)")
	return tab, plans, nil
}

// RecoveryRow is one schedule point of the proactive-recovery experiment.
type RecoveryRow struct {
	Schedule    string
	Peak        float64
	UnsafeShare float64
	Final       float64
}

// ProactiveRecovery traces persistent compromise across three vulnerability
// lifecycles for a 16-replica fleet (4-way crypto-library diversity) under
// different rejuvenation schedules — the M4 experiment, quantifying the
// proactive-recovery mitigation the paper cites ([23]–[27]).
func ProactiveRecovery(periods []time.Duration) (*metrics.Table, []RecoveryRow, error) {
	cat := vuln.NewCatalog()
	// Three staggered zero-days against three of the four libraries.
	specs := []struct {
		id      string
		product string
		d, p    time.Duration
	}{
		{"CVE-r1", "openssl", 24 * time.Hour, 48 * time.Hour},
		{"CVE-r2", "boringssl", 120 * time.Hour, 150 * time.Hour},
		{"CVE-r3", "libsodium", 300 * time.Hour, 330 * time.Hour},
	}
	for _, s := range specs {
		if err := cat.Add(vuln.Vulnerability{
			ID: vuln.ID(s.id), Class: config.ClassCryptoLibrary, Product: s.product, Version: "1",
			Disclosed: s.d, PatchAt: s.p, Severity: 1,
		}); err != nil {
			return nil, nil, err
		}
	}
	libs := []string{"openssl", "boringssl", "libsodium", "golang-crypto"}
	fleet := make([]vuln.Replica, 16)
	for i := range fleet {
		fleet[i] = vuln.Replica{
			Name:   fmt.Sprintf("r%02d", i),
			Config: config.MustNew(config.Component{Class: config.ClassCryptoLibrary, Name: libs[i%4], Version: "1"}),
			Power:  1,
		}
	}
	const (
		horizon = 600 * time.Hour
		step    = 2 * time.Hour
	)
	tab := metrics.NewTable("M4 — proactive recovery vs persistent compromise (16 replicas, 3 zero-days)",
		"rejuvenation schedule", "peak Σf", "time share unsafe (f=1/3)", "Σf at horizon")
	var rows []RecoveryRow
	run := func(name string, sched recovery.Schedule) error {
		traj, err := recovery.Trajectory(cat, fleet, sched, horizon, step)
		if err != nil {
			return err
		}
		s := recovery.Summarize(traj, core.BFTThreshold)
		row := RecoveryRow{Schedule: name, Peak: s.Peak, UnsafeShare: s.UnsafeShare, Final: s.Final}
		rows = append(rows, row)
		tab.AddRowf(name, row.Peak, row.UnsafeShare, row.Final)
		return nil
	}
	if err := run("none (implants persist)", recovery.Schedule{}); err != nil {
		return nil, nil, err
	}
	for _, p := range periods {
		if p <= 0 {
			return nil, nil, fmt.Errorf("experiment: non-positive period %v", p)
		}
		if err := run(fmt.Sprintf("every %v, staggered", p), recovery.Schedule{Period: p, Stagger: true}); err != nil {
			return nil, nil, err
		}
	}
	tab.AddNote("without recovery the three faults accumulate to 3/4 of the fleet and never heal")
	return tab, rows, nil
}
