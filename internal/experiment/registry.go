package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// Params carries the tunable inputs shared by every registered
// experiment. Experiments read only the knobs that apply to them; the
// zero value is invalid — start from DefaultParams.
type Params struct {
	// Seed drives all pseudo-randomness (sortition draws, Monte Carlo
	// trials, simulated schedulers).
	Seed int64
	// Trials is the Monte Carlo trial count for sampled probabilities.
	Trials int
	// Scale is the population/sweep size knob (e.g. Figure 1 tail miners).
	Scale int
	// Workers bounds the goroutines Monte Carlo experiments spread their
	// trials over (see RunTrials). 0 means serial; results are identical
	// for every worker count because per-chunk seeds derive from Seed and
	// the chunk index, not from scheduling.
	Workers int
}

// DefaultParams returns the canonical parameters that regenerate the
// published tables, spreading Monte Carlo trials over all available cores.
func DefaultParams() Params {
	return Params{Seed: 7, Trials: 20000, Scale: 1000, Workers: runtime.GOMAXPROCS(0)}
}

// Validate rejects parameter sets no experiment can run with.
func (p Params) Validate() error {
	if p.Trials <= 0 {
		return fmt.Errorf("experiment: non-positive trials %d", p.Trials)
	}
	if p.Scale <= 0 {
		return fmt.Errorf("experiment: non-positive scale %d", p.Scale)
	}
	if p.Workers < 0 {
		return fmt.Errorf("experiment: negative workers %d", p.Workers)
	}
	return nil
}

// RunFunc regenerates one experiment: the printable table plus the
// experiment's typed result rows (as `any`; callers that need the rows
// type-assert against the experiment's row type).
type RunFunc func(ctx context.Context, p Params) (*metrics.Table, any, error)

// Experiment is one self-registered table/figure generator.
type Experiment struct {
	// ID is the short stable identifier (F1, X2, CHURN, ...).
	ID string
	// Title is the one-line human description.
	Title string
	// Tags group experiments for filtering (paper, extension, mitigation,
	// bft, nakamoto, committee, ...).
	Tags []string
	// Run regenerates the experiment. It validates p and checks ctx
	// before starting; a cancellation arriving mid-run takes effect at
	// the next experiment boundary, not inside one.
	Run RunFunc
}

// HasTag reports whether the experiment carries the tag (case-insensitive).
func (e Experiment) HasTag(tag string) bool {
	for _, t := range e.Tags {
		if strings.EqualFold(t, tag) {
			return true
		}
	}
	return false
}

var (
	registryOrder []string
	registryByID  = make(map[string]Experiment)
)

// Register adds an experiment to the registry. Every experiment
// self-registers at init time; cmd/experiments, bench_test.go and
// EXPERIMENTS regeneration all iterate the same registry so they cannot
// drift. Registration errors are programmer errors and panic.
func Register(id, title string, tags []string, run RunFunc) {
	if id == "" || title == "" || run == nil {
		panic(fmt.Sprintf("experiment: incomplete registration %q", id))
	}
	key := strings.ToUpper(id)
	if _, dup := registryByID[key]; dup {
		panic(fmt.Sprintf("experiment: duplicate id %q", id))
	}
	wrapped := func(ctx context.Context, p Params) (*metrics.Table, any, error) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if err := p.Validate(); err != nil {
			return nil, nil, err
		}
		return run(ctx, p)
	}
	registryByID[key] = Experiment{ID: key, Title: title, Tags: tags, Run: wrapped}
	registryOrder = append(registryOrder, key)
}

// All returns every registered experiment in registration order (the
// order the paper presents them).
func All() []Experiment {
	out := make([]Experiment, 0, len(registryOrder))
	for _, id := range registryOrder {
		out = append(out, registryByID[id])
	}
	return out
}

// IDs returns every registered id in registration order.
func IDs() []string {
	return append([]string(nil), registryOrder...)
}

// Lookup finds an experiment by id (case-insensitive).
func Lookup(id string) (Experiment, bool) {
	e, ok := registryByID[strings.ToUpper(strings.TrimSpace(id))]
	return e, ok
}

// WithTag returns the experiments carrying the tag, in registration order.
func WithTag(tag string) []Experiment {
	var out []Experiment
	for _, e := range All() {
		if e.HasTag(tag) {
			out = append(out, e)
		}
	}
	return out
}

// Tags returns every tag in use, sorted.
func Tags() []string {
	seen := make(map[string]bool)
	for _, e := range All() {
		for _, t := range e.Tags {
			seen[strings.ToLower(t)] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
