package liveloop

import (
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/vuln"
)

const day = 24 * time.Hour

// osCfg builds an OS-only configuration, the single-class population the
// live scenarios use (BFT substrate, unit powers).
func osCfg(name, version string) config.Configuration {
	return config.MustNew(config.Component{
		Class: config.ClassOperatingSystem, Name: name, Version: version,
	})
}

// osCatalog builds a migration-target catalog of OS products.
func osCatalog(names ...string) *config.Catalog {
	cat := config.NewCatalog()
	for _, n := range names {
		// Adding a valid component to a fresh catalog cannot fail.
		_ = cat.Add(config.Component{Class: config.ClassOperatingSystem, Name: n, Version: "1"})
	}
	return cat
}

// joinSeven populates seven unit-power replicas r-00..r-06 at t=0 with the
// given per-replica OS configurations and patch latency.
func joinSeven(e *scenario.Engine, cfgs [7]config.Configuration, patchLatency time.Duration) error {
	for i, cfg := range cfgs {
		id := registry.ReplicaID(fmt.Sprintf("r-%02d", i))
		if err := e.JoinAt(0, id, cfg, 1, patchLatency); err != nil {
			return err
		}
	}
	return nil
}

// diverseSeven is a fully diverse fleet: seven distinct OS products.
func diverseSeven() [7]config.Configuration {
	names := [7]string{"ubuntu", "debian", "fedora", "freebsd", "openbsd", "alpine", "arch"}
	var out [7]config.Configuration
	for i, n := range names {
		out[i] = osCfg(n, "1")
	}
	return out
}

// trioOnUbuntu puts r-00, r-02 and r-04 on the same ubuntu build — the
// correlated-failure monoculture the compromise scenarios exploit — and
// keeps the rest diverse.
func trioOnUbuntu() [7]config.Configuration {
	cfgs := diverseSeven()
	for _, i := range []int{0, 2, 4} {
		cfgs[i] = osCfg("ubuntu", "22.04")
	}
	return cfgs
}

// ubuntuCVE is the disclosure both compromise scenarios inject: every
// ubuntu 22.04 replica is exploitable from `disclosed` until the patch
// (shipping a day later) lands per the replicas' patch latency.
func ubuntuCVE(disclosed time.Duration) vuln.Vulnerability {
	return vuln.Vulnerability{
		ID:        "CVE-LIVE-0001",
		Class:     config.ClassOperatingSystem,
		Product:   "ubuntu",
		Version:   "22.04",
		Disclosed: disclosed,
		PatchAt:   disclosed + day,
		Severity:  1,
	}
}

func init() {
	scenario.Register(scenario.Def{
		Name:    "live-partition-probe",
		Title:   "Live BFT under partitions and a crash: every liveness prediction must match the wire",
		Tags:    []string{"live", "robustness"},
		Horizon: 24 * time.Hour,
		Tick:    2 * time.Hour,
		Setup: func(e *scenario.Engine) error {
			if err := joinSeven(e, diverseSeven(), time.Hour); err != nil {
				return err
			}
			if _, err := Attach(e, Config{
				StartAt:    time.Hour,
				ProbeEvery: 2 * time.Hour, // probes at odd hours, events at even ones
			}); err != nil {
				return err
			}
			// A minority cut: 5 of 7 stay with the primary, quorum holds.
			if err := e.PartitionAt(6*time.Hour, "r-05", "r-06"); err != nil {
				return err
			}
			if err := e.HealAt(10 * time.Hour); err != nil {
				return err
			}
			// A threshold cut: 4 < quorum 5, commits must stall.
			if err := e.PartitionAt(12*time.Hour, "r-04", "r-05", "r-06"); err != nil {
				return err
			}
			if err := e.HealAt(16 * time.Hour); err != nil {
				return err
			}
			// One crash is well inside f=2: progress continues.
			if err := e.CrashAt(18*time.Hour, "r-03"); err != nil {
				return err
			}
			return e.RestoreAt(20*time.Hour, "r-03")
		},
	})

	scenario.Register(scenario.Def{
		Name:    "live-compromise-cascade",
		Title:   "A monoculture CVE breaches the threshold; the implants equivocate and break agreement on cue",
		Tags:    []string{"live", "robustness", "vuln"},
		Horizon: 4 * day,
		Tick:    6 * time.Hour,
		Setup: func(e *scenario.Engine) error {
			if err := joinSeven(e, trioOnUbuntu(), 3*day); err != nil {
				return err
			}
			if _, err := Attach(e, Config{
				StartAt:    time.Hour,
				ProbeEvery: 6 * time.Hour,
				Attack:     AttackEquivocate, // AttackAt 0: fires at the breach
			}); err != nil {
				return err
			}
			// 3/7 compromised > 1/3: the disclosure is the breach.
			return e.Disclose(ubuntuCVE(day))
		},
	})

	scenario.Register(scenario.Def{
		Name:    "live-primary-failover",
		Title:   "Crashing the primary on a jittery wire: the cluster rotates views and every liveness prediction holds",
		Tags:    []string{"live", "robustness", "view-change"},
		Horizon: 24 * time.Hour,
		Tick:    2 * time.Hour,
		Setup: func(e *scenario.Engine) error {
			if err := joinSeven(e, diverseSeven(), time.Hour); err != nil {
				return err
			}
			if _, err := Attach(e, Config{
				StartAt:       time.Hour,
				ProbeEvery:    2 * time.Hour, // probes at odd hours, events at even ones
				ProbeDeadline: 5 * time.Second,
				ViewTimeout:   500 * time.Millisecond,
			}); err != nil {
				return err
			}
			// A mildly degraded link between two backups: drops, jitter and
			// reordering the protocol must absorb without losing quorum.
			if err := e.DegradeAt(4*time.Hour, "r-03", "r-04", scenario.LinkFault{
				Drop: 0.2, ExtraLatency: 10 * time.Millisecond, Jitter: 15 * time.Millisecond, Reorder: 0.3,
			}); err != nil {
				return err
			}
			// Kill the initial primary: the view-aware prediction says probes
			// keep committing because rotation elects r-01 within deadline.
			if err := e.CrashAt(6*time.Hour, "r-00"); err != nil {
				return err
			}
			if err := e.RestoreAt(16*time.Hour, "r-00"); err != nil {
				return err
			}
			return e.RestoreLinkAt(20*time.Hour, "r-03", "r-04")
		},
	})

	scenario.Register(scenario.Def{
		Name:    "live-lossy-rotation",
		Title:   "Monoculture silence attack on lossy wires: reactive recovery cleanses, rotation restores liveness",
		Tags:    []string{"live", "robustness", "view-change", "vuln", "recovery"},
		Horizon: 4 * day,
		Tick:    6 * time.Hour,
		Setup: func(e *scenario.Engine) error {
			if err := joinSeven(e, trioOnUbuntu(), 2*day); err != nil {
				return err
			}
			if _, err := Attach(e, Config{
				StartAt:       time.Hour,
				ProbeEvery:    6 * time.Hour,
				ProbeDeadline: 5 * time.Second,
				ViewTimeout:   500 * time.Millisecond,
				Attack:        AttackSilence, // AttackAt 0: fires at the breach
				Reactive:      true,
				ReactDelay:    6 * time.Hour,
				Targets:       osCatalog("rocky", "suse", "mint"),
			}); err != nil {
				return err
			}
			// Lossy links touch only the two spare backups (n - quorum = 2),
			// so a clean quorum core always exists among r-00..r-04.
			if err := e.DegradeAt(2*time.Hour, "r-05", "r-06", scenario.LinkFault{
				Drop: 0.4, Duplicate: 0.2, Reorder: 0.3,
			}); err != nil {
				return err
			}
			if err := e.DegradeAt(3*time.Hour, "r-01", "r-05", scenario.LinkFault{
				Drop: 0.2, ExtraLatency: 5 * time.Millisecond, Jitter: 20 * time.Millisecond,
			}); err != nil {
				return err
			}
			// Day 1: the CVE breaches the threshold; the silence attack mutes
			// the trio and probes stall. Six hours later reactive recovery
			// migrates and rejuvenates; the stalled backlog commits after a
			// view change (the TTR span lands on the trace).
			if err := e.Disclose(ubuntuCVE(day)); err != nil {
				return err
			}
			// Day 2: crash the post-recovery primary; rotation elects the
			// next view's and commits resume on the degraded wire.
			if err := e.CrashAt(2*day, "r-01"); err != nil {
				return err
			}
			if err := e.RestoreAt(3*day, "r-01"); err != nil {
				return err
			}
			return e.RestoreLinkAt(3*day+6*time.Hour, "r-05", "r-06")
		},
	})

	scenario.Register(scenario.Def{
		Name:    "live-reactive-recovery",
		Title:   "Reactive recovery migrates and rejuvenates the implanted trio; the late attack finds nothing",
		Tags:    []string{"live", "robustness", "recovery"},
		Horizon: 6 * day,
		Tick:    12 * time.Hour,
		Setup: func(e *scenario.Engine) error {
			if err := joinSeven(e, trioOnUbuntu(), 2*day); err != nil {
				return err
			}
			if _, err := Attach(e, Config{
				StartAt:    time.Hour,
				ProbeEvery: 6 * time.Hour,
				Attack:     AttackEquivocate,
				AttackAt:   5 * day, // after recovery: the trigger finds no implants
				Reactive:   true,
				ReactDelay: 6 * time.Hour,
				Targets:    osCatalog("rocky", "suse", "mint"),
			}); err != nil {
				return err
			}
			return e.Disclose(ubuntuCVE(day))
		},
	})
}
