// Package liveloop closes the loop between the analytic monitor and a
// running consensus cluster: it attaches a real internal/bftlive protocol
// instance (the deterministic SimCluster transport over internal/simnet)
// to a scenario engine, mirrors every scenario fault — partitions,
// crashes, vulnerability-driven compromises — onto the live cluster, and
// cross-checks the monitor's predictions against observed protocol
// behavior after every event:
//
//   - liveness: a committed probe value ⇔ the analytic view (registry
//     powers, partition/crash state, launched attacks) says a quorum of
//     voters can reach the primary;
//   - safety: an observed agreement violation ⇔ the monitor's assessment
//     at attack time said compromised power exceeded the tolerance.
//
// Mismatches are recorded as divergences in the trace (Record.Divergence).
// In reactive mode the harness also closes the control loop: when the
// assessment crosses the threshold it waits ReactDelay, then migrates
// still-exposed victims to clean configurations (internal/planner) and
// rejuvenates their implants (the internal/recovery cleansing model),
// recording the virtual time from threshold breach back to assessed-safe
// as the time-to-recover span on the trace.
//
// Everything — protocol messages, probes, attacks, reactions — runs on the
// scenario's single discrete-event scheduler, so a live scenario replays
// byte-identically from (Def, seed) like every other scenario.
package liveloop

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/bftlive"
	"repro/internal/config"
	"repro/internal/planner"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/vuln"
)

// AttackMode selects what compromised replicas do once the adversary
// pulls the trigger.
type AttackMode int

// Attack modes.
const (
	// AttackEquivocate turns implanted replicas Promiscuous and has an
	// implanted primary propose two conflicting values — the safety attack.
	AttackEquivocate AttackMode = iota
	// AttackSilence mutes implanted replicas — the liveness attack.
	AttackSilence
)

// String returns the canonical lowercase mode name.
func (m AttackMode) String() string {
	switch m {
	case AttackEquivocate:
		return "equivocate"
	case AttackSilence:
		return "silence"
	default:
		return "unknown"
	}
}

// Config parameterizes a live harness.
type Config struct {
	// StartAt is the virtual instant the live cluster comes up. The
	// scenario's membership must be final by then: joins or leaves after
	// StartAt abort the run (the runtime cluster has fixed membership).
	StartAt time.Duration
	// Latency is the fixed one-way message latency (default 20ms).
	Latency time.Duration
	// ProbeEvery is the liveness-probe cadence; 0 disables probes.
	ProbeEvery time.Duration
	// ProbeDeadline is how long after a probe (or attack) the harness
	// waits before judging the outcome (default 500ms).
	ProbeDeadline time.Duration
	// ViewTimeout, when positive, enables primary rotation on the live
	// cluster (bftlive.SimWithViewTimeout): a stalled cluster elects
	// primary v mod n. 0 keeps the fixed primary — the pre-rotation
	// behavior, byte-identical traces included.
	ViewTimeout time.Duration

	// Attack is what implanted replicas do when the attack launches.
	Attack AttackMode
	// AttackAt schedules the attack explicitly; 0 launches it automatically
	// at the first threshold breach.
	AttackAt time.Duration

	// Reactive enables the recovery loop: ReactDelay after a breach the
	// harness migrates still-exposed implanted replicas to clean
	// configurations drawn from Targets (nil Targets: rejuvenation only)
	// and cleanses their implants, repeating every ReactDelay until the
	// assessment is safe again.
	Reactive   bool
	ReactDelay time.Duration
	Targets    *config.Catalog
}

// pendingCheck carries one cross-check verdict from the event callback
// that computed it into the observer, which writes it onto that event's
// trace record.
type pendingCheck struct {
	check      string
	detail     string
	divergence bool
}

// Harness wires one live cluster into one scenario run. Create it with
// Attach; all further work happens through the engine's event callbacks
// and the Observer hook.
type Harness struct {
	cfg     Config
	horizon time.Duration

	started bool
	ids     []registry.ReplicaID
	idx     map[registry.ReplicaID]int
	net     *simnet.Network
	cluster *bftlive.SimCluster

	partitioned map[int]bool
	crashed     map[int]bool
	implants    map[int]bool // compromised per the monitor; sticky until cleansed
	attacked    map[int]bool // implants whose Byzantine behavior is live
	assessed    map[int]bool // the monitor's *current* compromised set (not sticky)

	probeExpect map[int]bool // probe index -> commit expected
	probeValue  func(k int) string

	attackScheduled bool
	attackLaunched  bool
	attackExpect    bool // equivocate: violation expected; silence: commit expected

	inBreach bool
	breachAt time.Duration

	pending *pendingCheck
}

// init registers the live-attach hook so data-first timelines carrying a
// LiveSpec can boot the harness without scenario importing this package.
func init() {
	scenario.SetLiveAttach(func(e *scenario.Engine, spec *scenario.LiveSpec) error {
		_, err := Attach(e, Config{
			StartAt:       spec.StartAt.D(),
			Latency:       spec.Latency.D(),
			ProbeEvery:    spec.ProbeEvery.D(),
			ProbeDeadline: spec.ProbeDeadline.D(),
			ViewTimeout:   spec.ViewTimeout.D(),
		})
		return err
	})
}

// Attach creates a harness on the engine: the cluster comes up at
// cfg.StartAt, probes and the explicit attack (if any) are scheduled, and
// the harness registers itself as the run's observer. Call from a
// scenario's Setup.
func Attach(e *scenario.Engine, cfg Config) (*Harness, error) {
	if e == nil {
		return nil, errors.New("liveloop: nil engine")
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 20 * time.Millisecond
	}
	if cfg.ProbeDeadline <= 0 {
		cfg.ProbeDeadline = 500 * time.Millisecond
	}
	if cfg.StartAt < 0 || cfg.StartAt >= e.Horizon() {
		return nil, fmt.Errorf("liveloop: StartAt %v outside horizon %v", cfg.StartAt, e.Horizon())
	}
	if cfg.Reactive && cfg.ReactDelay <= 0 {
		return nil, errors.New("liveloop: Reactive requires a positive ReactDelay")
	}
	if cfg.ViewTimeout < 0 {
		return nil, fmt.Errorf("liveloop: negative ViewTimeout %v", cfg.ViewTimeout)
	}
	if cfg.AttackAt > 0 && (cfg.AttackAt <= cfg.StartAt || cfg.AttackAt+cfg.ProbeDeadline >= e.Horizon()) {
		return nil, fmt.Errorf("liveloop: AttackAt %v outside (StartAt, horizon)", cfg.AttackAt)
	}
	h := &Harness{
		cfg:         cfg,
		horizon:     e.Horizon(),
		idx:         make(map[registry.ReplicaID]int),
		partitioned: make(map[int]bool),
		crashed:     make(map[int]bool),
		implants:    make(map[int]bool),
		attacked:    make(map[int]bool),
		assessed:    make(map[int]bool),
		probeExpect: make(map[int]bool),
		probeValue:  func(k int) string { return fmt.Sprintf("probe-%04d", k) },
	}
	e.Observe(h)
	if err := e.At(cfg.StartAt, "live-start", h.start); err != nil {
		return nil, err
	}
	if cfg.ProbeEvery > 0 {
		k := 0
		for t := cfg.StartAt + cfg.ProbeEvery; t+cfg.ProbeDeadline < e.Horizon(); t += cfg.ProbeEvery {
			k++
			probe := k
			if err := e.At(t, "live-probe", func(e *scenario.Engine) (string, error) {
				return h.probe(e, probe)
			}); err != nil {
				return nil, err
			}
			if err := e.At(t+cfg.ProbeDeadline, "live-check", func(e *scenario.Engine) (string, error) {
				return h.check(e, probe)
			}); err != nil {
				return nil, err
			}
		}
	}
	if cfg.AttackAt > 0 {
		h.attackScheduled = true
		if err := h.scheduleAttack(e, cfg.AttackAt); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Cluster exposes the live cluster once started (nil before StartAt).
func (h *Harness) Cluster() *bftlive.SimCluster { return h.cluster }

// start brings the cluster up against the membership as it stands.
func (h *Harness) start(e *scenario.Engine) (string, error) {
	snap, err := e.Registry().Snapshot(registry.DefaultWeighting)
	if err != nil {
		return "", err
	}
	replicas := snap.Replicas()
	n := len(replicas)
	if n < 4 {
		return "", fmt.Errorf("liveloop: need at least 4 replicas at StartAt, have %d", n)
	}
	for i, r := range replicas {
		if r.Power != replicas[0].Power || r.Power <= 0 {
			return "", fmt.Errorf("liveloop: replica %s power %v breaks the equal-power contract", r.Name, r.Power)
		}
		h.ids = append(h.ids, registry.ReplicaID(r.Name))
		h.idx[registry.ReplicaID(r.Name)] = i
	}
	net, err := simnet.New(e.Scheduler(), simnet.FixedLatency(h.cfg.Latency), 0)
	if err != nil {
		return "", err
	}
	var opts []bftlive.SimOption
	if h.cfg.ViewTimeout > 0 {
		opts = append(opts, bftlive.SimWithViewTimeout(h.cfg.ViewTimeout))
	}
	cluster, err := bftlive.NewSimCluster(net, n, opts...)
	if err != nil {
		return "", err
	}
	h.net = net
	h.cluster = cluster
	h.started = true
	detail := fmt.Sprintf("cluster up: n=%d quorum=%d primary=%s latency=%v",
		n, cluster.Quorum(), h.ids[0], h.cfg.Latency)
	if h.cfg.ViewTimeout > 0 {
		detail += fmt.Sprintf(" view-timeout=%v", h.cfg.ViewTimeout)
	}
	return detail, nil
}

// probe submits a liveness probe and freezes the analytic expectation for
// its verdict.
func (h *Harness) probe(_ *scenario.Engine, k int) (string, error) {
	if !h.started {
		return "", errors.New("liveloop: probe before start")
	}
	expect, voters := h.predictCommit()
	h.probeExpect[k] = expect
	h.cluster.Submit([]byte(h.probeValue(k)))
	return fmt.Sprintf("%s submitted (predict commit=%t voters=%d quorum=%d)",
		h.probeValue(k), expect, voters, h.cluster.Quorum()), nil
}

// check judges a probe: observation against the frozen prediction.
func (h *Harness) check(_ *scenario.Engine, k int) (string, error) {
	if !h.started {
		return "", errors.New("liveloop: check before start")
	}
	expect := h.probeExpect[k]
	committed := h.cluster.CommittedBy([]byte(h.probeValue(k)))
	observed := committed > 0
	detail := fmt.Sprintf("%s predicted=%t observed=%t committers=%d",
		h.probeValue(k), expect, observed, committed)
	h.pending = &pendingCheck{check: "liveness", detail: detail, divergence: observed != expect}
	return detail, nil
}

// predictCommit is the analytic liveness prediction: commits happen iff
// the primary can vote and its partition side holds a quorum of voters.
// Crashed replicas cannot vote; once a silence attack is live, the
// replicas the *monitor currently* assesses as compromised are predicted
// mute — the prediction is grounded in the analytic view, so an implant
// surviving past its exploit window (which the monitor no longer sees)
// shows up as a divergence, not as a corrected forecast. Equivocating
// replicas still vote — promiscuously.
//
// With rotation enabled (ViewTimeout > 0) the prediction is view-aware: a
// dead current primary no longer dooms the probe, because a stalled
// cluster elects primary v mod n. The probe is predicted to commit iff
// some view reachable within the probe deadline — budgeting one view
// timeout plus protocol round-trips per rotation — has a votable primary
// whose partition side holds a quorum.
func (h *Harness) predictCommit() (ok bool, voters int) {
	p := h.cluster.Primary()
	silenceLive := h.attackLaunched && h.cfg.Attack == AttackSilence
	silent := func(i int) bool {
		return h.crashed[i] || (silenceLive && h.assessed[i])
	}
	sideVoters := func(side bool) int {
		v := 0
		for i := range h.ids {
			if h.partitioned[i] == side && !silent(i) {
				v++
			}
		}
		return v
	}
	voters = sideVoters(h.partitioned[p])
	if !silent(p) && voters >= h.cluster.Quorum() {
		return true, voters
	}
	if h.cfg.ViewTimeout <= 0 {
		return false, voters
	}
	n := h.cluster.N()
	view := h.cluster.View()
	rotation := h.cfg.ViewTimeout + 6*h.cfg.Latency
	for k := uint64(1); time.Duration(k+1)*rotation <= h.cfg.ProbeDeadline; k++ {
		cand := int((view + k) % uint64(n))
		if !silent(cand) && sideVoters(h.partitioned[cand]) >= h.cluster.Quorum() {
			return true, voters
		}
	}
	return false, voters
}

// scheduleAttack arms the attack and its verdict check.
func (h *Harness) scheduleAttack(e *scenario.Engine, at time.Duration) error {
	if err := e.At(at, "live-attack", h.attack); err != nil {
		return err
	}
	return e.At(at+h.cfg.ProbeDeadline, "live-verdict", h.verdict)
}

// attack pulls the trigger on every implanted replica per the configured
// mode and freezes the monitor-grounded prediction for the verdict.
func (h *Harness) attack(e *scenario.Engine) (string, error) {
	if !h.started {
		return "", errors.New("liveloop: attack before start")
	}
	now := e.Scheduler().Now()
	a, err := e.Monitor().Assess(now)
	if err != nil {
		return "", err
	}
	victims := h.implantIndices()
	h.attackLaunched = true
	h.syncAssessed(a.Injection.Faults)
	switch h.cfg.Attack {
	case AttackEquivocate:
		// Violation predicted iff the monitor says compromised power
		// exceeds the tolerance (and the adversary holds the *current*
		// primary — under rotation that is the latest installed view's).
		p := h.cluster.Primary()
		h.attackExpect = !a.Safe && h.implants[p]
		if len(victims) == 0 || !h.implants[p] {
			return fmt.Sprintf("equivocation skipped: implants=%d primary-implanted=%t (predict violation=%t)",
				len(victims), h.implants[p], h.attackExpect), nil
		}
		for _, i := range victims {
			h.attacked[i] = true
			if err := h.cluster.SetBehavior(i, bftlive.Promiscuous); err != nil {
				return "", err
			}
		}
		if err := h.cluster.EquivocateNext([]byte("attack-left"), []byte("attack-right")); err != nil {
			return "", err
		}
		return fmt.Sprintf("equivocation launched via %d implants (predict violation=%t, monitor compromised=%s)",
			len(victims), h.attackExpect, fmtFrac(a.Injection.TotalFraction)), nil
	case AttackSilence:
		for _, i := range victims {
			h.attacked[i] = true
			if err := h.cluster.SetBehavior(i, bftlive.Silent); err != nil {
				return "", err
			}
		}
		expect, voters := h.predictCommit()
		h.attackExpect = expect
		h.cluster.Submit([]byte("attack-probe"))
		return fmt.Sprintf("silence launched via %d implants (predict commit=%t voters=%d)",
			len(victims), expect, voters), nil
	default:
		return "", fmt.Errorf("liveloop: unknown attack mode %d", h.cfg.Attack)
	}
}

// verdict judges the attack outcome against the frozen prediction.
func (h *Harness) verdict(_ *scenario.Engine) (string, error) {
	if !h.started || !h.attackLaunched {
		return "", errors.New("liveloop: verdict before attack")
	}
	var detail string
	var divergence bool
	switch h.cfg.Attack {
	case AttackSilence:
		committed := h.cluster.CommittedBy([]byte("attack-probe"))
		observed := committed > 0
		divergence = observed != h.attackExpect
		detail = fmt.Sprintf("attack-probe predicted=%t observed=%t committers=%d",
			h.attackExpect, observed, committed)
	default:
		observed := h.cluster.Violation() != nil
		divergence = observed != h.attackExpect
		detail = fmt.Sprintf("violation predicted=%t observed=%t", h.attackExpect, observed)
		if v := h.cluster.Violation(); v != nil {
			detail += " (" + v.String() + ")"
		}
	}
	h.pending = &pendingCheck{check: "safety", detail: detail, divergence: divergence}
	return detail, nil
}

// react is one reactive-recovery round: migrate still-exposed implanted
// replicas to clean configurations, cleanse every implant, restore honest
// behavior. The observer re-arms it while the breach persists.
func (h *Harness) react(e *scenario.Engine) (string, error) {
	if !h.started {
		return "", errors.New("liveloop: react before start")
	}
	now := e.Scheduler().Now()
	victims := h.implantIndices()
	if len(victims) == 0 {
		return "no implants to cleanse", nil
	}
	var exposed []int
	for _, i := range victims {
		rec, ok := e.Registry().Get(h.ids[i])
		if !ok {
			return "", fmt.Errorf("liveloop: implanted replica %s missing", h.ids[i])
		}
		if configExposed(e.Catalog(), rec.Config, now, rec.PatchLatency) {
			exposed = append(exposed, i)
		}
	}
	var parts []string
	if len(exposed) > 0 && h.cfg.Targets != nil {
		clean, err := cleanTargets(h.cfg.Targets, e.Catalog())
		if err != nil {
			return "", err
		}
		assigned, err := planner.GreedyAssign(clean, len(exposed))
		if err != nil {
			return "", err
		}
		for j, i := range exposed {
			if err := e.Registry().Migrate(h.ids[i], assigned[j]); err != nil {
				return "", err
			}
			parts = append(parts, fmt.Sprintf("%s->%s", h.ids[i], assigned[j].Digest().Short()))
		}
	}
	for _, i := range victims {
		delete(h.implants, i)
		delete(h.attacked, i)
		if !h.crashed[i] {
			if err := h.cluster.SetBehavior(i, bftlive.Honest); err != nil {
				return "", err
			}
		}
		parts = append(parts, fmt.Sprintf("%s rejuvenated", h.ids[i]))
	}
	return fmt.Sprintf("recovery round: %s", strings.Join(parts, " ")), nil
}

// syncAssessed rebuilds the non-sticky compromised set from a fault list.
func (h *Harness) syncAssessed(faults []vuln.Fault) {
	h.assessed = make(map[int]bool)
	for _, f := range faults {
		for _, name := range f.Compromised {
			if i, ok := h.idx[registry.ReplicaID(name)]; ok {
				h.assessed[i] = true
			}
		}
	}
}

// implantIndices returns the implanted replica indices in ascending order.
func (h *Harness) implantIndices() []int {
	out := make([]int, 0, len(h.implants))
	for i := range h.implants {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// byzFraction is the fraction of replicas currently running a non-honest
// behavior on the live cluster.
func (h *Harness) byzFraction() float64 {
	if h.cluster == nil {
		return 0
	}
	n := h.cluster.N()
	byz := 0
	for i := 0; i < n; i++ {
		if h.cluster.BehaviorOf(i) != bftlive.Honest {
			byz++
		}
	}
	return float64(byz) / float64(n)
}

// AfterEvent implements scenario.Observer: mirror the event onto the live
// cluster, sync implants from the assessment, annotate the record, and
// drive the breach/recovery state machine.
func (h *Harness) AfterEvent(e *scenario.Engine, info scenario.EventInfo, rec *scenario.Record) error {
	if !h.started {
		return nil // pre-start records stay untouched
	}
	now := e.Scheduler().Now()
	switch info.Kind {
	case "join", "leave":
		return fmt.Errorf("liveloop: %s after the live cluster started (fixed membership)", info.Kind)
	case "partition":
		for _, id := range info.IDs {
			i, ok := h.idx[id]
			if !ok {
				return fmt.Errorf("liveloop: partition of unknown replica %s", id)
			}
			h.partitioned[i] = true
		}
		h.applyPartitions()
	case "heal":
		h.partitioned = make(map[int]bool)
		h.applyPartitions()
	case "crash":
		for _, id := range info.IDs {
			i, ok := h.idx[id]
			if !ok {
				return fmt.Errorf("liveloop: crash of unknown replica %s", id)
			}
			h.crashed[i] = true
			if err := h.cluster.SetBehavior(i, bftlive.Silent); err != nil {
				return err
			}
		}
	case "degrade":
		a, b, err := h.linkEndpoints(info)
		if err != nil {
			return err
		}
		if info.Fault == nil {
			return errors.New("liveloop: degrade event without a fault model")
		}
		f := simnet.Fault{
			Drop:         info.Fault.Drop,
			ExtraLatency: info.Fault.ExtraLatency,
			Jitter:       info.Fault.Jitter,
			Duplicate:    info.Fault.Duplicate,
			Reorder:      info.Fault.Reorder,
		}
		if err := h.setLink(a, b, f); err != nil {
			return err
		}
	case "restore-link":
		a, b, err := h.linkEndpoints(info)
		if err != nil {
			return err
		}
		if err := h.setLink(a, b, simnet.Fault{}); err != nil {
			return err
		}
	case "restore":
		for _, id := range info.IDs {
			i, ok := h.idx[id]
			if !ok {
				return fmt.Errorf("liveloop: restore of unknown replica %s", id)
			}
			delete(h.crashed, i)
			b := bftlive.Honest
			if h.attacked[i] {
				if h.cfg.Attack == AttackSilence {
					b = bftlive.Silent
				} else {
					b = bftlive.Promiscuous
				}
			}
			if err := h.cluster.SetBehavior(i, b); err != nil {
				return err
			}
		}
	}

	// Implants follow the monitor's compromised set and stick until a
	// recovery round cleanses them: an exploit window closing does not
	// evict an adversary who is already inside. The non-sticky assessed
	// set tracks what the monitor believes *right now* and grounds the
	// liveness predictions.
	if rec.Power > 0 {
		a, err := e.Monitor().Assess(now)
		if err != nil {
			return err
		}
		h.syncAssessed(a.Injection.Faults)
		for i := range h.assessed {
			h.implants[i] = true
		}
	}

	if h.pending != nil {
		rec.Check = h.pending.check
		rec.CheckDetail = h.pending.detail
		rec.Divergence = h.pending.divergence
		h.pending = nil
	}
	rec.Live = true
	rec.LiveCommits = h.cluster.CommitCount()
	rec.LiveByzFrac = h.byzFraction()
	rec.LiveViolation = h.cluster.Violation() != nil
	rec.LiveView = h.cluster.View()
	rec.ViewChanges = h.cluster.ViewChanges()

	if !rec.Safe && !h.inBreach {
		h.inBreach = true
		h.breachAt = now
		rec.BreachAtNanos = int64(now)
		if h.cfg.AttackAt == 0 && !h.attackScheduled && now+h.cfg.ProbeDeadline < h.horizon {
			h.attackScheduled = true
			if err := h.scheduleAttack(e, now); err != nil {
				return err
			}
		}
		if h.cfg.Reactive && now+h.cfg.ReactDelay < h.horizon {
			if err := e.At(now+h.cfg.ReactDelay, "live-react", h.react); err != nil {
				return err
			}
		}
	} else if h.inBreach && rec.Safe && len(h.implants) == 0 {
		h.inBreach = false
		rec.RecoverAtNanos = int64(now)
		rec.RecoverNanos = int64(now - h.breachAt)
	}
	// Re-arm the recovery loop while the breach persists.
	if info.Kind == "live-react" && h.inBreach && h.cfg.Reactive && now+h.cfg.ReactDelay < h.horizon {
		if err := e.At(now+h.cfg.ReactDelay, "live-react", h.react); err != nil {
			return err
		}
	}
	return nil
}

// linkEndpoints resolves a degrade/restore-link event's two endpoints to
// replica indices.
func (h *Harness) linkEndpoints(info scenario.EventInfo) (int, int, error) {
	if len(info.IDs) != 2 {
		return 0, 0, fmt.Errorf("liveloop: %s event with %d endpoints", info.Kind, len(info.IDs))
	}
	a, aok := h.idx[info.IDs[0]]
	b, bok := h.idx[info.IDs[1]]
	if !aok || !bok {
		return 0, 0, fmt.Errorf("liveloop: %s of unknown link %s<->%s", info.Kind, info.IDs[0], info.IDs[1])
	}
	return a, b, nil
}

// setLink applies a fault model to both directions of a link (a zero fault
// restores the link to clean).
func (h *Harness) setLink(a, b int, f simnet.Fault) error {
	for _, dir := range [2][2]int{{a, b}, {b, a}} {
		if err := h.net.SetLinkFault(simnet.NodeID(dir[0]), simnet.NodeID(dir[1]), f); err != nil {
			return err
		}
	}
	return nil
}

// applyPartitions pushes the harness's partition set onto the network.
func (h *Harness) applyPartitions() {
	if len(h.partitioned) == 0 {
		h.net.SetPartitions()
		return
	}
	cut := make([]simnet.NodeID, 0, len(h.partitioned))
	for i := range h.partitioned {
		cut = append(cut, simnet.NodeID(i))
	}
	sort.Slice(cut, func(i, j int) bool { return cut[i] < cut[j] })
	h.net.SetPartitions(cut)
}

// configExposed reports whether any disclosed vulnerability's exploit
// window is open against the configuration at time t.
func configExposed(catalog *vuln.Catalog, cfg config.Configuration, t, patchLatency time.Duration) bool {
	for _, v := range catalog.All() {
		if !v.WindowOpenAt(t, patchLatency) {
			continue
		}
		if componentMatches(v, cfg) {
			return true
		}
	}
	return false
}

// componentMatches reports whether the vulnerability names a component of
// the configuration.
func componentMatches(v vuln.Vulnerability, cfg config.Configuration) bool {
	c, ok := cfg.Component(v.Class)
	if !ok {
		return false
	}
	return c.Name == v.Product && (v.Version == "" || v.Version == c.Version)
}

// cleanTargets filters a target catalog down to components no disclosed
// vulnerability names — the migration destinations reactive recovery may
// use.
func cleanTargets(targets *config.Catalog, catalog *vuln.Catalog) (*config.Catalog, error) {
	clean := config.NewCatalog()
	kept := 0
	for _, class := range config.Classes() {
		for _, c := range targets.Choices(class) {
			dirty := false
			for _, v := range catalog.All() {
				if v.Class == c.Class && v.Product == c.Name && (v.Version == "" || v.Version == c.Version) {
					dirty = true
					break
				}
			}
			if dirty {
				continue
			}
			if err := clean.Add(c); err != nil {
				return nil, err
			}
			kept++
		}
	}
	if kept == 0 {
		return nil, errors.New("liveloop: no clean migration targets left")
	}
	return clean, nil
}

// fmtFrac renders a fraction with the deterministic shortest form.
func fmtFrac(f float64) string { return fmt.Sprintf("%.4f", f) }
