package liveloop

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/vuln"
)

// compromiseDef builds a generated compromise timeline: the ubuntu trio
// (including the primary) is exploitable from `disclosed`, the attack
// fires at `attackAt`, and reactive recovery is on or off. The shape is
// parameterized so the property holds across a family of timelines, not
// one hand-tuned scenario.
func compromiseDef(name string, mode AttackMode, disclosed, patchLatency, attackAt, reactDelay time.Duration, reactive bool) scenario.Def {
	return scenario.Def{
		Name: name, Title: "generated compromise timeline", Horizon: 8 * day, Tick: 12 * time.Hour,
		Setup: func(e *scenario.Engine) error {
			if err := joinSeven(e, trioOnUbuntu(), patchLatency); err != nil {
				return err
			}
			cfg := Config{
				StartAt:    time.Hour,
				ProbeEvery: 12 * time.Hour,
				Attack:     mode,
				AttackAt:   attackAt,
				Reactive:   reactive,
			}
			if reactive {
				cfg.ReactDelay = reactDelay
				cfg.Targets = osCatalog("rocky", "suse", "mint")
			}
			if _, err := Attach(e, cfg); err != nil {
				return err
			}
			return e.Disclose(vuln.Vulnerability{
				ID: "CVE-GEN-0001", Class: trioOnUbuntu()[0].Components()[0].Class,
				Product: "ubuntu", Version: "22.04",
				Disclosed: disclosed, PatchAt: disclosed + day, Severity: 1,
			})
		},
	}
}

// TestPropertyReactiveRecoveryIsBounded: with reactive recovery enabled,
// every threshold breach returns to assessed-safe within a small multiple
// of the react delay — finite, bounded time-to-recover on every generated
// timeline, with zero prediction/observation divergences.
func TestPropertyReactiveRecoveryIsBounded(t *testing.T) {
	modes := []AttackMode{AttackEquivocate, AttackSilence}
	for i, disclosed := range []time.Duration{day, 36 * time.Hour, 2 * day} {
		for j, patchLatency := range []time.Duration{day, 2 * day} {
			for k, reactDelay := range []time.Duration{3 * time.Hour, 9 * time.Hour} {
				mode := modes[(i+j+k)%len(modes)]
				name := fmt.Sprintf("gen-reactive-%d-%d-%d", i, j, k)
				// The attack strikes after the exploit window closes — the
				// moment a surviving implant would be invisible to the
				// monitor. Recovery must have cleansed it by then.
				attackAt := disclosed + day + patchLatency + time.Hour
				def := compromiseDef(name, mode, disclosed, patchLatency, attackAt, reactDelay, true)
				res, err := scenario.Run(def, int64(1000+i*100+j*10+k))
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				sum := res.Summary()
				if sum.Breaches == 0 {
					t.Fatalf("%s: no breach; the timeline generator is broken", name)
				}
				if sum.Recoveries != sum.Breaches {
					t.Fatalf("%s: %d breaches but %d recoveries", name, sum.Breaches, sum.Recoveries)
				}
				// Bounded: the loop fires every reactDelay and the first
				// round already migrates to clean configs, so TTR can never
				// exceed two rounds.
				if sum.MaxTTR <= 0 || sum.MaxTTR > 2*reactDelay {
					t.Fatalf("%s: TTR %v outside (0, %v]", name, sum.MaxTTR, 2*reactDelay)
				}
				if sum.Divergences != 0 {
					t.Fatalf("%s: %d divergences on a recovered timeline", name, sum.Divergences)
				}
				if sum.Violations != 0 {
					t.Fatalf("%s: %d violation records after recovery", name, sum.Violations)
				}
			}
		}
	}
}

// TestPropertyNoRecoveryDiverges: the same timelines with recovery
// disabled leave the implants in place past the exploit window, so the
// post-window attack contradicts the monitor's safe assessment — at least
// one divergence, and no recovery record ever.
func TestPropertyNoRecoveryDiverges(t *testing.T) {
	for i, mode := range []AttackMode{AttackEquivocate, AttackSilence} {
		disclosed, patchLatency := day, day
		attackAt := disclosed + day + patchLatency + time.Hour
		name := fmt.Sprintf("gen-unprotected-%d", i)
		def := compromiseDef(name, mode, disclosed, patchLatency, attackAt, 0, false)
		res, err := scenario.Run(def, int64(2000+i))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sum := res.Summary()
		if sum.Breaches == 0 {
			t.Fatalf("%s: no breach", name)
		}
		if sum.Recoveries != 0 {
			t.Fatalf("%s: recovery disabled but recoveries=%d", name, sum.Recoveries)
		}
		if sum.Divergences == 0 {
			t.Fatalf("%s: surviving implants never contradicted the monitor", name)
		}
		if mode == AttackEquivocate && sum.Violations == 0 {
			t.Fatalf("%s: equivocation after window close produced no violation", name)
		}
	}
}
