package liveloop

import (
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/scenario"
)

// TestLivePrimaryFailoverRotatesAndPredicts: crashing the initial primary
// on a jittery wire rotates views, commits resume, and every view-aware
// liveness prediction matches the observation.
func TestLivePrimaryFailoverRotatesAndPredicts(t *testing.T) {
	res := runNamed(t, "live-primary-failover", 42)
	sum := res.Summary()
	if sum.Divergences != 0 {
		t.Fatalf("failover path diverged %d times", sum.Divergences)
	}
	if sum.Violations != 0 {
		t.Fatalf("failover path saw %d violation records", sum.Violations)
	}
	if sum.FinalView < 1 || sum.ViewChanges < 1 {
		t.Fatalf("no rotation: final view=%d changes=%d", sum.FinalView, sum.ViewChanges)
	}
	// Commits must resume after the crash: some record after the crash has
	// strictly more live commits than the crash record.
	crashAt := -1
	for i, rec := range res.Records {
		if rec.Event == "crash" {
			crashAt = i
			break
		}
	}
	if crashAt < 0 {
		t.Fatal("no crash record")
	}
	resumed := false
	for _, rec := range res.Records[crashAt+1:] {
		if rec.LiveCommits > res.Records[crashAt].LiveCommits {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Fatal("commits did not resume after the primary crash")
	}
	// At least one post-crash probe predicted a commit via rotation and
	// observed one.
	sawRotatedCommit := false
	for _, rec := range res.Records[crashAt+1:] {
		if rec.Check == "liveness" && rec.LiveView >= 1 &&
			strings.Contains(rec.CheckDetail, "predicted=true observed=true") {
			sawRotatedCommit = true
		}
	}
	if !sawRotatedCommit {
		t.Fatal("no post-crash probe committed under the rotated primary")
	}
	// The degrade and restore-link events land on the trace with details.
	var degrade, restore *scenario.Record
	for i := range res.Records {
		switch res.Records[i].Event {
		case "degrade":
			degrade = &res.Records[i]
		case "restore-link":
			restore = &res.Records[i]
		}
	}
	if degrade == nil || !strings.Contains(degrade.Detail, "drop=0.2") {
		t.Fatalf("degrade record missing or wrong: %+v", degrade)
	}
	if restore == nil || !strings.Contains(restore.Detail, "clean") {
		t.Fatalf("restore-link record missing or wrong: %+v", restore)
	}
}

// TestLiveLossyRotationRecoversAndRotates: the silence attack stalls the
// cluster, reactive recovery cleanses it (TTR recorded), the backlog
// commits after a view change, and the day-2 primary crash rotates again —
// all on degraded links, with zero prediction divergences.
func TestLiveLossyRotationRecoversAndRotates(t *testing.T) {
	res := runNamed(t, "live-lossy-rotation", 42)
	sum := res.Summary()
	if sum.Divergences != 0 {
		t.Fatalf("lossy rotation diverged %d times", sum.Divergences)
	}
	if sum.Violations != 0 {
		t.Fatalf("silence attack produced %d violation records", sum.Violations)
	}
	if sum.Breaches != 1 || sum.Recoveries != 1 {
		t.Fatalf("breaches=%d recoveries=%d, want 1/1", sum.Breaches, sum.Recoveries)
	}
	if sum.MaxTTR != 6*time.Hour {
		t.Fatalf("TTR %v, want the 6h react delay", sum.MaxTTR)
	}
	if sum.ViewChanges < 2 {
		t.Fatalf("view changes=%d, want >= 2 (post-recovery catch-up and post-crash rotation)", sum.ViewChanges)
	}
	// The day-2 crash hits the post-recovery primary; the view must advance
	// past it and commits must resume.
	var crash *scenario.Record
	crashIdx := -1
	for i := range res.Records {
		if res.Records[i].Event == "crash" {
			crash = &res.Records[i]
			crashIdx = i
		}
	}
	if crash == nil {
		t.Fatal("no crash record")
	}
	rotated, resumed := false, false
	for _, rec := range res.Records[crashIdx+1:] {
		if rec.LiveView > crash.LiveView {
			rotated = true
		}
		if rec.LiveCommits > crash.LiveCommits {
			resumed = true
		}
	}
	if !rotated || !resumed {
		t.Fatalf("after primary crash: rotated=%t resumed=%t", rotated, resumed)
	}
}

// TestTimelineLiveAttach: a data-first timeline carrying a LiveSpec boots
// the live harness through the hook this package registers in init — no
// Setup closure involved — and the run rotates views over a lossy wire.
func TestTimelineLiveAttach(t *testing.T) {
	osSpec := func(name string) []scenario.ComponentSpec {
		return []scenario.ComponentSpec{{Class: config.ClassOperatingSystem.String(), Name: name, Version: "1"}}
	}
	names := []string{"ubuntu", "debian", "fedora", "freebsd", "openbsd", "alpine", "arch"}
	events := make([]scenario.Event, 0, len(names)+3)
	for i, n := range names {
		events = append(events, scenario.Event{
			Op: scenario.OpJoin, At: 0, ID: "r-0" + string(rune('0'+i)), Config: osSpec(n), Power: 1,
		})
	}
	events = append(events,
		scenario.Event{Op: scenario.OpDegrade, At: scenario.Duration(2 * time.Hour),
			IDs: []string{"r-05", "r-06"}, Fault: &scenario.FaultSpec{Drop: 0.3, Reorder: 0.2}},
		scenario.Event{Op: scenario.OpCrash, At: scenario.Duration(4 * time.Hour), IDs: []string{"r-00"}},
		scenario.Event{Op: scenario.OpRestoreLink, At: scenario.Duration(8 * time.Hour),
			IDs: []string{"r-05", "r-06"}},
	)
	tl := &scenario.Timeline{
		Name:    "live-tl-rotation",
		Horizon: scenario.Duration(12 * time.Hour),
		Tick:    scenario.Duration(2 * time.Hour),
		Live: &scenario.LiveSpec{
			StartAt:       scenario.Duration(time.Hour),
			ProbeEvery:    scenario.Duration(2 * time.Hour),
			ProbeDeadline: scenario.Duration(5 * time.Second),
			ViewTimeout:   scenario.Duration(500 * time.Millisecond),
		},
		Events: events,
	}
	res, err := scenario.Run(tl.Def(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if sum.Divergences != 0 {
		t.Fatalf("timeline live run diverged %d times", sum.Divergences)
	}
	if sum.FinalView < 1 {
		t.Fatalf("timeline live run never rotated: final view=%d", sum.FinalView)
	}
	last := res.Records[len(res.Records)-1]
	if !last.Live || last.LiveCommits == 0 {
		t.Fatalf("final record live=%t commits=%d", last.Live, last.LiveCommits)
	}
}

// TestGeneratedLossyWireViewLiveness: lossy-wire timelines generated by
// the fuzzing profile run under the real live harness (this package's init
// hook) with zero invariant violations — in particular view-liveness — and
// at least one of them rotates views.
func TestGeneratedLossyWireViewLiveness(t *testing.T) {
	p, ok := scenario.LookupProfile("lossy-wire")
	if !ok {
		t.Fatal("lossy-wire profile not registered")
	}
	rotated := false
	for i := 0; i < 8; i++ {
		tl := p.Generate(42, i)
		res, violations, err := scenario.CheckRun(tl.Def(), 42, scenario.DefaultInvariants())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(violations) != 0 {
			t.Fatalf("run %d: %d invariant violations, first: %s: %s", i, len(violations), violations[0].Invariant, violations[0].Detail)
		}
		sum := res.Summary()
		if sum.Divergences != 0 {
			t.Fatalf("run %d: %d prediction divergences", i, sum.Divergences)
		}
		if sum.FinalView > 0 {
			rotated = true
		}
	}
	if !rotated {
		t.Fatal("no generated lossy-wire run ever rotated views")
	}
}

// TestViewTimeoutValidation: a negative ViewTimeout fails at Attach.
func TestViewTimeoutValidation(t *testing.T) {
	def := scenario.Def{
		Name: "attach-bad-view", Title: "t", Horizon: time.Hour,
		Setup: func(e *scenario.Engine) error {
			if _, err := Attach(e, Config{ViewTimeout: -time.Second}); err == nil {
				t.Error("negative ViewTimeout accepted")
			}
			return nil
		},
	}
	if _, err := scenario.Run(def, 1); err != nil {
		t.Fatal(err)
	}
}
