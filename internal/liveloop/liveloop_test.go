package liveloop

import (
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

// runNamed resolves a registered scenario and runs it through the unified
// Run entrypoint.
func runNamed(t *testing.T, name string, seed int64) *scenario.Result {
	t.Helper()
	def, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	res, err := scenario.Run(def, seed)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

// traceJSON renders a whole trace as its canonical JSONL bytes.
func traceJSON(t *testing.T, res *scenario.Result) string {
	t.Helper()
	var b strings.Builder
	for _, rec := range res.Records {
		line, err := rec.JSON()
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestLivePartitionProbeHonestPath(t *testing.T) {
	res := runNamed(t, "live-partition-probe", 42)
	sum := res.Summary()
	if sum.Divergences != 0 {
		t.Fatalf("honest path diverged %d times", sum.Divergences)
	}
	if sum.Violations != 0 || sum.Breaches != 0 {
		t.Fatalf("honest path reported violations=%d breaches=%d", sum.Violations, sum.Breaches)
	}
	if sum.Checks == 0 {
		t.Fatal("no cross-checks ran")
	}
	// The wide partition (4 < quorum 5) must produce at least one probe
	// that predicted a stall and observed one; commits must flow otherwise.
	var sawStall, sawCommit bool
	for _, rec := range res.Records {
		if rec.Check != "liveness" {
			continue
		}
		if strings.Contains(rec.CheckDetail, "predicted=false observed=false") {
			sawStall = true
		}
		if strings.Contains(rec.CheckDetail, "predicted=true observed=true") {
			sawCommit = true
		}
	}
	if !sawStall || !sawCommit {
		t.Fatalf("probe mix wrong: sawStall=%t sawCommit=%t", sawStall, sawCommit)
	}
	last := res.Records[len(res.Records)-1]
	if !last.Live || last.LiveCommits == 0 {
		t.Fatalf("final record live=%t commits=%d", last.Live, last.LiveCommits)
	}
}

func TestLiveCompromiseCascadeBreaksAgreementOnCue(t *testing.T) {
	res := runNamed(t, "live-compromise-cascade", 42)
	sum := res.Summary()
	if sum.Divergences != 0 {
		t.Fatalf("predicted compromise diverged %d times", sum.Divergences)
	}
	if sum.Breaches != 1 {
		t.Fatalf("breaches=%d, want 1", sum.Breaches)
	}
	if sum.Recoveries != 0 {
		t.Fatalf("no recovery configured but recoveries=%d", sum.Recoveries)
	}
	if sum.Violations == 0 {
		t.Fatal("equivocation produced no observed violation")
	}
	var verdict *scenario.Record
	for i := range res.Records {
		if res.Records[i].Check == "safety" {
			verdict = &res.Records[i]
		}
	}
	if verdict == nil {
		t.Fatal("no safety verdict record")
	}
	if !strings.Contains(verdict.CheckDetail, "predicted=true observed=true") {
		t.Fatalf("verdict detail %q, want predicted=true observed=true", verdict.CheckDetail)
	}
	// The breach record carries the span start; it never closes.
	for _, rec := range res.Records {
		if rec.BreachAtNanos != 0 && rec.BreachAtNanos != int64(day) {
			t.Fatalf("breach at %v, want the disclosure instant", time.Duration(rec.BreachAtNanos))
		}
		if rec.RecoverAtNanos != 0 {
			t.Fatalf("unexpected recovery at %v", time.Duration(rec.RecoverAtNanos))
		}
	}
}

func TestLiveReactiveRecoveryBoundsTTR(t *testing.T) {
	res := runNamed(t, "live-reactive-recovery", 42)
	sum := res.Summary()
	if sum.Divergences != 0 {
		t.Fatalf("reactive path diverged %d times", sum.Divergences)
	}
	if sum.Violations != 0 {
		t.Fatalf("reactive path saw %d violation records", sum.Violations)
	}
	if sum.Breaches != 1 || sum.Recoveries != 1 {
		t.Fatalf("breaches=%d recoveries=%d, want 1/1", sum.Breaches, sum.Recoveries)
	}
	if sum.MaxTTR != 6*time.Hour {
		t.Fatalf("TTR %v, want the 6h react delay", sum.MaxTTR)
	}
	var react, verdict *scenario.Record
	for i := range res.Records {
		switch res.Records[i].Event {
		case "live-react":
			react = &res.Records[i]
		case "live-verdict":
			verdict = &res.Records[i]
		}
	}
	if react == nil || react.RecoverNanos != int64(6*time.Hour) {
		t.Fatalf("react record missing or wrong TTR: %+v", react)
	}
	if !strings.Contains(react.Detail, "->") || !strings.Contains(react.Detail, "rejuvenated") {
		t.Fatalf("react detail %q lacks migration+rejuvenation", react.Detail)
	}
	// The day-5 attack must find nothing to trigger.
	if verdict == nil || verdict.Divergence {
		t.Fatalf("verdict record missing or divergent: %+v", verdict)
	}
	var attack *scenario.Record
	for i := range res.Records {
		if res.Records[i].Event == "live-attack" {
			attack = &res.Records[i]
		}
	}
	if attack == nil || !strings.Contains(attack.Detail, "skipped") {
		t.Fatalf("attack record missing or not skipped: %+v", attack)
	}
}

// TestLiveTracesAreByteDeterministic: same (scenario, seed) twice produces
// identical JSONL including the live annotations, check results and
// recovery spans — the property the CI replay job enforces for -live.
func TestLiveTracesAreByteDeterministic(t *testing.T) {
	for _, name := range []string{"live-partition-probe", "live-compromise-cascade", "live-reactive-recovery",
		"live-primary-failover", "live-lossy-rotation"} {
		a := traceJSON(t, runNamed(t, name, 42))
		b := traceJSON(t, runNamed(t, name, 42))
		if a != b {
			t.Fatalf("%s: two runs differ", name)
		}
		if !strings.Contains(a, `"live":true`) {
			t.Fatalf("%s: trace carries no live annotations", name)
		}
	}
}

// TestLiveScenariosRegistered: the library registers every live scenario
// under the "live" tag that cmd/scenarios -live selects.
func TestLiveScenariosRegistered(t *testing.T) {
	want := []string{"live-partition-probe", "live-compromise-cascade", "live-reactive-recovery",
		"live-primary-failover", "live-lossy-rotation"}
	for _, name := range want {
		d, ok := scenario.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		tagged := false
		for _, tag := range d.Tags {
			if tag == "live" {
				tagged = true
			}
		}
		if !tagged {
			t.Fatalf("%s lacks the live tag", name)
		}
	}
}

// TestAttachValidation: bad harness configs fail at Attach, not mid-run.
func TestAttachValidation(t *testing.T) {
	def := scenario.Def{
		Name: "attach-bad", Title: "t", Horizon: time.Hour,
		Setup: func(e *scenario.Engine) error {
			if _, err := Attach(e, Config{StartAt: 2 * time.Hour}); err == nil {
				t.Error("StartAt past horizon accepted")
			}
			if _, err := Attach(e, Config{Reactive: true}); err == nil {
				t.Error("Reactive without ReactDelay accepted")
			}
			if _, err := Attach(e, Config{AttackAt: 2 * time.Hour}); err == nil {
				t.Error("AttackAt past horizon accepted")
			}
			if _, err := Attach(nil, Config{}); err == nil {
				t.Error("nil engine accepted")
			}
			return nil
		},
	}
	if _, err := scenario.Run(def, 1); err != nil {
		t.Fatal(err)
	}
}

// TestLiveMembershipIsFixed: a join after StartAt aborts the run.
func TestLiveMembershipIsFixed(t *testing.T) {
	def := scenario.Def{
		Name: "live-join-after-start", Title: "t", Horizon: 3 * time.Hour,
		Setup: func(e *scenario.Engine) error {
			if err := joinSeven(e, diverseSeven(), time.Hour); err != nil {
				return err
			}
			if _, err := Attach(e, Config{StartAt: time.Hour}); err != nil {
				return err
			}
			return e.JoinAt(2*time.Hour, "r-99", osCfg("mint", "1"), 1, time.Hour)
		},
	}
	if _, err := scenario.Run(def, 1); err == nil || !strings.Contains(err.Error(), "fixed membership") {
		t.Fatalf("join after start did not abort: %v", err)
	}
}
