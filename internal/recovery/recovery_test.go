package recovery

import (
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/vuln"
)

func libCfg(lib string) config.Configuration {
	return config.MustNew(config.Component{Class: config.ClassCryptoLibrary, Name: lib, Version: "1"})
}

func testVuln() vuln.Vulnerability {
	return vuln.Vulnerability{
		ID: "CVE-persist", Class: config.ClassCryptoLibrary, Product: "openssl", Version: "1",
		Disclosed: 24 * time.Hour, PatchAt: 48 * time.Hour, Severity: 1,
	}
}

func replica(lib string, patchLat time.Duration) vuln.Replica {
	return vuln.Replica{Name: lib, Config: libCfg(lib), Power: 1, PatchLatency: patchLat}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{Period: -time.Hour}).Validate(); err == nil {
		t.Fatal("negative period accepted")
	}
	if err := (Schedule{}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompromisedAtNoRecovery(t *testing.T) {
	v := testVuln()
	r := replica("openssl", 12*time.Hour) // window closes at 60h
	none := Schedule{}
	cases := []struct {
		t    time.Duration
		want bool
	}{
		{0, false},               // before disclosure
		{24 * time.Hour, true},   // window opens
		{59 * time.Hour, true},   // inside window
		{60 * time.Hour, true},   // window closed, implant persists
		{1000 * time.Hour, true}, // forever
	}
	for _, c := range cases {
		if got := CompromisedAt(v, r, none, c.t, 0, 4); got != c.want {
			t.Errorf("t=%v: compromised = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestCompromisedAtUnaffectedConfig(t *testing.T) {
	v := testVuln()
	r := replica("libsodium", 0)
	if CompromisedAt(v, r, Schedule{}, 100*time.Hour, 0, 4) {
		t.Fatal("unaffected config compromised")
	}
}

func TestRecoveryCleansesAfterPatch(t *testing.T) {
	v := testVuln() // window: 24h..48h+lat
	r := replica("openssl", 0)
	sched := Schedule{Period: 24 * time.Hour}
	// Inside the window (t=36h): compromised even with recovery (rejuvenated
	// image is still vulnerable).
	if !CompromisedAt(v, r, sched, 36*time.Hour, 0, 4) {
		t.Fatal("mid-window rejuvenation should not cleanse")
	}
	// Window closes at 48h; next rejuvenation at 48h (k=2) or 72h.
	// At t=72h the last rejuvenation (72h) >= 48h: cleansed.
	if CompromisedAt(v, r, sched, 72*time.Hour, 0, 4) {
		t.Fatal("post-patch rejuvenation did not cleanse")
	}
}

func TestStaggeredOffsets(t *testing.T) {
	sched := Schedule{Period: 40 * time.Hour, Stagger: true}
	// Replica 2 of 4: offset = 20h; rejuvenations at 20h, 60h, ...
	last, ok := sched.lastRejuvenation(65*time.Hour, 2, 4)
	if !ok || last != 60*time.Hour {
		t.Fatalf("last = %v, %v; want 60h", last, ok)
	}
	// Before its first offset: no rejuvenation yet.
	if _, ok := sched.lastRejuvenation(10*time.Hour, 2, 4); ok {
		t.Fatal("rejuvenation before first offset")
	}
}

func TestFleetCompromiseTrajectory(t *testing.T) {
	cat := vuln.NewCatalog()
	if err := cat.Add(testVuln()); err != nil {
		t.Fatal(err)
	}
	fleet := []vuln.Replica{
		replica("openssl", 0),
		replica("boringssl", 0),
		replica("libsodium", 0),
		replica("golang-crypto", 0),
	}
	// No recovery: once hit (25%), stays at 25% forever.
	noRec, err := Trajectory(cat, fleet, Schedule{}, 200*time.Hour, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sNo := Summarize(noRec, 1.0/3.0)
	if sNo.Peak != 0.25 || sNo.Final != 0.25 {
		t.Fatalf("no-recovery summary = %+v", sNo)
	}
	// 24h recovery: compromise ends shortly after the patch.
	rec, err := Trajectory(cat, fleet, Schedule{Period: 24 * time.Hour}, 200*time.Hour, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sRec := Summarize(rec, 1.0/3.0)
	if sRec.Peak != 0.25 {
		t.Fatalf("recovery peak = %v", sRec.Peak)
	}
	if sRec.Final != 0 {
		t.Fatalf("recovery final = %v, want 0 (cleansed)", sRec.Final)
	}
	// Time-at-risk must be strictly smaller with recovery.
	atRisk := func(points []TrajectoryPoint) int {
		n := 0
		for _, p := range points {
			if p.Fraction > 0 {
				n++
			}
		}
		return n
	}
	if atRisk(rec) >= atRisk(noRec) {
		t.Fatalf("recovery did not shorten exposure: %d vs %d", atRisk(rec), atRisk(noRec))
	}
}

func TestFleetCompromiseValidation(t *testing.T) {
	if _, err := FleetCompromise(nil, nil, Schedule{}, 0); err == nil {
		t.Fatal("nil catalog accepted")
	}
	cat := vuln.NewCatalog()
	if _, err := FleetCompromise(cat, []vuln.Replica{{Name: "x", Power: -1}}, Schedule{}, 0); err == nil {
		t.Fatal("negative power accepted")
	}
	if _, err := FleetCompromise(cat, nil, Schedule{Period: -1}, 0); err == nil {
		t.Fatal("bad schedule accepted")
	}
	f, err := FleetCompromise(cat, nil, Schedule{}, 0)
	if err != nil || f != 0 {
		t.Fatalf("empty fleet: %v %v", f, err)
	}
	if _, err := Trajectory(cat, nil, Schedule{}, time.Hour, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 0.5)
	if s.Peak != 0 || s.UnsafeShare != 0 || s.Final != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestMonoculturePersistentCompromise(t *testing.T) {
	// The headline persistence result: a monoculture hit once is lost
	// forever without recovery, even after everyone patches.
	cat := vuln.NewCatalog()
	if err := cat.Add(testVuln()); err != nil {
		t.Fatal(err)
	}
	fleet := make([]vuln.Replica, 8)
	for i := range fleet {
		fleet[i] = replica("openssl", 0)
		fleet[i].Name = string(rune('a' + i))
	}
	f, err := FleetCompromise(cat, fleet, Schedule{}, 1000*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Fatalf("monoculture long-run compromise = %v, want 1", f)
	}
	// With staggered weekly recovery, the fleet is clean at t=1000h.
	f, err = FleetCompromise(cat, fleet, Schedule{Period: 7 * 24 * time.Hour, Stagger: true}, 1000*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Fatalf("recovered fleet compromise = %v, want 0", f)
	}
}
