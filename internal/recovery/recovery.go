// Package recovery models proactive recovery / replica rejuvenation, the
// mitigation family the paper points to for the consensus-module diversity
// problem (Castro–Liskov proactive recovery, Sousa et al.'s
// proactive-reactive recovery, SPARE — refs [23]–[27]).
//
// The threat model extends internal/vuln with *persistence*: once a
// vulnerability's window opens against a replica, the implant persists
// even after the underlying flaw is patched — unless the replica is
// rejuvenated (reinstalled from a clean, currently-patched image). Without
// recovery, Σ f_t^i is monotone in the number of historical exposures;
// with period-R rejuvenation, a compromise survives at most until the
// first rejuvenation after the patch ships.
package recovery

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/vuln"
)

// Schedule describes periodic rejuvenation. The zero value means "no
// recovery" (implants persist forever).
type Schedule struct {
	// Period between rejuvenations of one replica. Zero disables recovery.
	Period time.Duration
	// Stagger spreads replicas' rejuvenation instants uniformly across the
	// period (replica i rejuvenates at i·Period/n offsets) so the fleet
	// never reboots at once — the availability constraint the proactive
	// recovery literature emphasises.
	Stagger bool
}

// Validate checks the schedule.
func (s Schedule) Validate() error {
	if s.Period < 0 {
		return fmt.Errorf("recovery: negative period %v", s.Period)
	}
	return nil
}

// rejuvenationsUpTo returns the most recent rejuvenation instant of
// replica idx (of n) at or before t, and whether one has happened.
func (s Schedule) lastRejuvenation(t time.Duration, idx, n int) (time.Duration, bool) {
	if s.Period == 0 {
		return 0, false
	}
	offset := time.Duration(0)
	if s.Stagger && n > 0 {
		offset = time.Duration(int64(s.Period) * int64(idx%n) / int64(n))
	}
	if t < offset {
		return 0, false
	}
	k := (t - offset) / s.Period
	return offset + k*s.Period, true
}

// CompromisedAt reports whether replica idx (of n) is compromised at time
// t under persistent-implant semantics:
//
//   - the replica was exposed at some instant s ≤ t (window open, config
//     matches), and
//   - no rejuvenation occurred in (s, t] at a moment when the patch was
//     already available (rejuvenating from an unpatched image is
//     immediately re-exploited, so it does not cleanse).
func CompromisedAt(v vuln.Vulnerability, r vuln.Replica, sched Schedule, t time.Duration, idx, n int) bool {
	if !v.Affects(r.Config) {
		return false
	}
	if t < v.Disclosed {
		return false
	}
	windowClose := v.PatchAt + r.PatchLatency
	// First exposure instant.
	firstExposure := v.Disclosed
	if firstExposure >= windowClose {
		return false // window never opens for this replica
	}
	// Currently inside the window: compromised regardless of recovery
	// (rejuvenation mid-window is re-exploited immediately).
	if t < windowClose {
		return true
	}
	// Past the window: compromised unless a cleansing rejuvenation
	// happened in (windowClose-ish, t]. A rejuvenation cleanses iff it
	// occurs at or after PatchAt + the replica's own patch latency (its
	// clean image is patched from that moment).
	last, ok := sched.lastRejuvenation(t, idx, n)
	if !ok {
		return true // no recovery: implant persists forever
	}
	return last < windowClose
}

// FleetCompromise returns the fraction of voting power compromised at t
// under the schedule, across every vulnerability in the catalog,
// deduplicating replicas.
func FleetCompromise(catalog *vuln.Catalog, replicas []vuln.Replica, sched Schedule, t time.Duration) (float64, error) {
	if catalog == nil {
		return 0, errors.New("recovery: nil catalog")
	}
	if err := sched.Validate(); err != nil {
		return 0, err
	}
	var total, owned float64
	n := len(replicas)
	for idx, r := range replicas {
		if r.Power < 0 {
			return 0, fmt.Errorf("recovery: replica %s has negative power", r.Name)
		}
		total += r.Power
		for _, v := range catalog.All() {
			if CompromisedAt(v, r, sched, t, idx, n) {
				owned += r.Power
				break
			}
		}
	}
	if total <= 0 {
		return 0, nil
	}
	return owned / total, nil
}

// TrajectoryPoint is one instant of a compromise trajectory.
type TrajectoryPoint struct {
	At       time.Duration
	Fraction float64
}

// Trajectory samples FleetCompromise over [0, horizon] at the given step.
func Trajectory(catalog *vuln.Catalog, replicas []vuln.Replica, sched Schedule, horizon, step time.Duration) ([]TrajectoryPoint, error) {
	if step <= 0 {
		return nil, fmt.Errorf("recovery: non-positive step %v", step)
	}
	var out []TrajectoryPoint
	for t := time.Duration(0); t <= horizon; t += step {
		f, err := FleetCompromise(catalog, replicas, sched, t)
		if err != nil {
			return nil, err
		}
		out = append(out, TrajectoryPoint{At: t, Fraction: f})
	}
	return out, nil
}

// Summary aggregates a trajectory.
type Summary struct {
	Peak float64 // max compromised fraction
	// UnsafeShare is the fraction of sampled instants violating the
	// threshold (time-at-risk).
	UnsafeShare float64
	// Final is the compromised fraction at the horizon.
	Final float64
}

// Summarize reduces a trajectory against a tolerance threshold.
func Summarize(points []TrajectoryPoint, threshold float64) Summary {
	var s Summary
	if len(points) == 0 {
		return s
	}
	unsafe := 0
	for _, p := range points {
		if p.Fraction > s.Peak {
			s.Peak = p.Fraction
		}
		if p.Fraction > threshold {
			unsafe++
		}
	}
	s.UnsafeShare = float64(unsafe) / float64(len(points))
	s.Final = points[len(points)-1].Fraction
	return s
}
