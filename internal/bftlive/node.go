package bftlive

import (
	"repro/internal/cryptoutil"
)

// Behavior selects how a replica conducts itself in the protocol. The
// channel-backed Cluster always runs Honest replicas (crashes are modelled
// by dropping input); the SimCluster exposes the full set so the live loop
// can turn an implanted replica Byzantine mid-run.
type Behavior uint8

// Replica behaviors.
const (
	// Honest follows the three-phase protocol.
	Honest Behavior = iota
	// Silent participates in nothing: a crashed, stalled or muted replica.
	Silent
	// Promiscuous endorses every digest it is shown, immediately and at
	// both vote phases — the collusion that lets an equivocating primary
	// assemble conflicting quorums.
	Promiscuous
)

// String returns the canonical lowercase behavior name.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Silent:
		return "silent"
	case Promiscuous:
		return "promiscuous"
	default:
		return "unknown"
	}
}

// digestOf is the domain-separated value digest both transports share.
func digestOf(value []byte) cryptoutil.Digest {
	return cryptoutil.Hash([]byte("repro/bftlive/value/v1"), value)
}

// liveRound tracks one sequence slot. Votes are kept per digest so an
// equivocating primary's conflicting proposals accumulate separate quorums
// instead of being conflated.
type liveRound struct {
	accepted  bool
	digest    cryptoutil.Digest // the honest-accepted proposal
	values    map[cryptoutil.Digest][]byte
	prepares  map[cryptoutil.Digest]map[int]bool
	commits   map[cryptoutil.Digest]map[int]bool
	sentPrep  map[cryptoutil.Digest]bool
	sentComm  map[cryptoutil.Digest]bool
	committed bool
}

func newLiveRound() *liveRound {
	return &liveRound{
		values:   make(map[cryptoutil.Digest][]byte),
		prepares: make(map[cryptoutil.Digest]map[int]bool),
		commits:  make(map[cryptoutil.Digest]map[int]bool),
		sentPrep: make(map[cryptoutil.Digest]bool),
		sentComm: make(map[cryptoutil.Digest]bool),
	}
}

func votes(m map[cryptoutil.Digest]map[int]bool, d cryptoutil.Digest) map[int]bool {
	v, ok := m[d]
	if !ok {
		v = make(map[int]bool)
		m[d] = v
	}
	return v
}

// node is the transport-agnostic replica state machine shared by the
// channel-backed Cluster and the simnet-backed SimCluster. Drivers must
// serialize calls into one node: the Cluster does it with a per-replica
// goroutine loop, the SimCluster with single-threaded scheduler callbacks.
type node struct {
	id       int
	quorum   int
	behavior func() Behavior
	// out broadcasts a message to every replica including the sender, so a
	// replica's own vote counts toward its quorums.
	out      func(m message)
	onCommit func(c Commit)

	nextSeq uint64
	rounds  map[uint64]*liveRound
}

func newNode(id, quorum int, behavior func() Behavior, out func(message), onCommit func(Commit)) *node {
	return &node{
		id:       id,
		quorum:   quorum,
		behavior: behavior,
		out:      out,
		onCommit: onCommit,
		rounds:   make(map[uint64]*liveRound),
	}
}

func (n *node) round(seq uint64) *liveRound {
	rd, ok := n.rounds[seq]
	if !ok {
		rd = newLiveRound()
		n.rounds[seq] = rd
	}
	return rd
}

func (n *node) handle(m message) {
	if n.behavior() == Silent {
		return
	}
	switch m.kind {
	case kindRequest:
		if n.id != 0 {
			return // single-view runtime: replica 0 is the fixed primary
		}
		n.nextSeq++
		n.out(message{kind: kindPrePrepare, from: n.id, seq: n.nextSeq, digest: digestOf(m.value), value: m.value})
	case kindPrePrepare:
		if m.from != 0 {
			return
		}
		rd := n.round(m.seq)
		rd.values[m.digest] = append([]byte(nil), m.value...)
		switch n.behavior() {
		case Promiscuous:
			if !rd.sentPrep[m.digest] {
				rd.sentPrep[m.digest] = true
				n.out(message{kind: kindPrepare, from: n.id, seq: m.seq, digest: m.digest})
			}
			if !rd.sentComm[m.digest] {
				rd.sentComm[m.digest] = true
				n.out(message{kind: kindCommit, from: n.id, seq: m.seq, digest: m.digest})
			}
		default:
			if !rd.accepted {
				rd.accepted = true
				rd.digest = m.digest
				if !rd.sentPrep[m.digest] {
					rd.sentPrep[m.digest] = true
					n.out(message{kind: kindPrepare, from: n.id, seq: m.seq, digest: m.digest})
				}
			}
		}
		n.progress(m.seq, rd)
	case kindPrepare:
		rd := n.round(m.seq)
		votes(rd.prepares, m.digest)[m.from] = true
		n.progress(m.seq, rd)
	case kindCommit:
		rd := n.round(m.seq)
		votes(rd.commits, m.digest)[m.from] = true
		n.progress(m.seq, rd)
	}
}

// progress advances the honest pipeline for an accepted proposal: commit
// vote once the prepare quorum forms, local commit once the commit quorum
// does. Promiscuous replicas never accept, so they never reach here with
// accepted state — their endorsements happen directly in handle.
func (n *node) progress(seq uint64, rd *liveRound) {
	if !rd.accepted {
		return
	}
	if !rd.sentComm[rd.digest] && len(rd.prepares[rd.digest]) >= n.quorum {
		rd.sentComm[rd.digest] = true
		n.out(message{kind: kindCommit, from: n.id, seq: seq, digest: rd.digest})
	}
	if !rd.committed && len(rd.commits[rd.digest]) >= n.quorum {
		rd.committed = true
		n.onCommit(Commit{Replica: n.id, Seq: seq, Value: rd.values[rd.digest]})
	}
}
