package bftlive

import (
	"repro/internal/cryptoutil"
)

// Behavior selects how a replica conducts itself in the protocol. The
// channel-backed Cluster always runs Honest replicas (crashes are modelled
// by dropping input); the SimCluster exposes the full set so the live loop
// can turn an implanted replica Byzantine mid-run.
type Behavior uint8

// Replica behaviors.
const (
	// Honest follows the three-phase protocol.
	Honest Behavior = iota
	// Silent participates in nothing: a crashed, stalled or muted replica.
	Silent
	// Promiscuous endorses every digest it is shown, immediately and at
	// both vote phases — the collusion that lets an equivocating primary
	// assemble conflicting quorums.
	Promiscuous
)

// String returns the canonical lowercase behavior name.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Silent:
		return "silent"
	case Promiscuous:
		return "promiscuous"
	default:
		return "unknown"
	}
}

// digestOf is the domain-separated value digest both transports share.
func digestOf(value []byte) cryptoutil.Digest {
	return cryptoutil.Hash([]byte("repro/bftlive/value/v1"), value)
}

// pendingReq is a client request a replica has seen but not yet committed.
// The primary of the current view proposes from this backlog, and a newly
// installed primary re-proposes whatever is left, so requests orphaned by
// a crashed primary still commit. Re-proposal is at-least-once across
// views; per-sequence agreement remains the safety property.
type pendingReq struct {
	digest cryptoutil.Digest
	value  []byte
}

// liveRound tracks one sequence slot. Votes are kept per digest so an
// equivocating primary's conflicting proposals accumulate separate quorums
// instead of being conflated.
type liveRound struct {
	accepted  bool
	digest    cryptoutil.Digest // the honest-accepted proposal
	values    map[cryptoutil.Digest][]byte
	prepares  map[cryptoutil.Digest]map[int]bool
	commits   map[cryptoutil.Digest]map[int]bool
	sentPrep  map[cryptoutil.Digest]bool
	sentComm  map[cryptoutil.Digest]bool
	committed bool
}

func newLiveRound() *liveRound {
	return &liveRound{
		values:   make(map[cryptoutil.Digest][]byte),
		prepares: make(map[cryptoutil.Digest]map[int]bool),
		commits:  make(map[cryptoutil.Digest]map[int]bool),
		sentPrep: make(map[cryptoutil.Digest]bool),
		sentComm: make(map[cryptoutil.Digest]bool),
	}
}

func votes(m map[cryptoutil.Digest]map[int]bool, d cryptoutil.Digest) map[int]bool {
	v, ok := m[d]
	if !ok {
		v = make(map[int]bool)
		m[d] = v
	}
	return v
}

// node is the transport-agnostic replica state machine shared by the
// channel-backed Cluster and the simnet-backed SimCluster. Drivers must
// serialize calls into one node: the Cluster does it with a per-replica
// goroutine loop, the SimCluster with single-threaded scheduler callbacks.
type node struct {
	id       int
	n        int // replica count; primary of view v is v mod n
	quorum   int
	behavior func() Behavior
	// out broadcasts a message to every replica including the sender, so a
	// replica's own vote counts toward its quorums.
	out      func(m message)
	onCommit func(c Commit)
	// onView, when set, is notified after the node installs or adopts a
	// higher view.
	onView func(v uint64)

	view      uint64                  // current installed view
	votedView uint64                  // highest view this node voted to enter
	viewVotes map[uint64]map[int]bool // view-change votes per proposed view
	maxSeq    uint64                  // highest sequence proposed or seen
	pending   []pendingReq            // uncommitted client requests, arrival order
	committed int                     // local commit count (progress signal)
	rounds    map[uint64]*liveRound
}

func newNode(id, n, quorum int, behavior func() Behavior, out func(message), onCommit func(Commit)) *node {
	return &node{
		id:        id,
		n:         n,
		quorum:    quorum,
		behavior:  behavior,
		out:       out,
		onCommit:  onCommit,
		viewVotes: make(map[uint64]map[int]bool),
		rounds:    make(map[uint64]*liveRound),
	}
}

// primaryOf maps a view to its primary replica.
func (n *node) primaryOf(v uint64) int { return int(v % uint64(n.n)) }

func (n *node) hasPending() bool { return len(n.pending) > 0 }

func (n *node) addPending(d cryptoutil.Digest, value []byte) {
	for _, p := range n.pending {
		if p.digest == d {
			return
		}
	}
	n.pending = append(n.pending, pendingReq{digest: d, value: append([]byte(nil), value...)})
}

func (n *node) removePending(d cryptoutil.Digest) {
	for i, p := range n.pending {
		if p.digest == d {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			return
		}
	}
}

func (n *node) pendingValue(d cryptoutil.Digest) []byte {
	for _, p := range n.pending {
		if p.digest == d {
			return p.value
		}
	}
	return nil
}

// propose broadcasts a pre-prepare for value at the next sequence slot in
// the node's current view.
func (n *node) propose(d cryptoutil.Digest, value []byte) {
	n.maxSeq++
	n.out(message{kind: kindPrePrepare, from: n.id, view: n.view, seq: n.maxSeq, digest: d, value: append([]byte(nil), value...)})
}

// suspect votes to rotate past the highest view this replica has voted
// for. Drivers call it when a view timeout elapses with requests pending
// and no commit progress.
func (n *node) suspect() {
	if n.behavior() == Silent {
		return
	}
	target := n.view + 1
	if n.votedView >= target {
		target = n.votedView + 1
	}
	// Cap escalation at one full rotation of candidates: past view+n every
	// primary has been proposed once, so higher targets only inflate the
	// view number during a quorum-less stall. Re-voting the capped target
	// is idempotent (votes dedup by sender) and doubles as a retransmit on
	// lossy links.
	if limit := n.view + uint64(n.n); target > limit {
		target = limit
	}
	n.votedView = target
	n.out(message{kind: kindViewChange, from: n.id, view: target})
}

// installView enters view v: prune stale votes, notify the driver, and —
// when this node is the new primary — re-propose the orphaned backlog in
// arrival order.
func (n *node) installView(v uint64) {
	if v <= n.view {
		return
	}
	n.view = v
	if n.votedView < v {
		n.votedView = v
	}
	for past := range n.viewVotes {
		if past <= v {
			delete(n.viewVotes, past)
		}
	}
	if n.onView != nil {
		n.onView(v)
	}
	if n.id == n.primaryOf(v) {
		backlog := append([]pendingReq(nil), n.pending...)
		for _, p := range backlog {
			n.propose(p.digest, p.value)
		}
	}
}

// handleViewChange counts a rotation vote. A vote echo-joins at f+1
// distinct voters (proof at least one honest replica timed out, and the
// catch-up path for a replica whose own timer lags) and installs at a full
// quorum.
func (n *node) handleViewChange(m message) {
	v := m.view
	if v <= n.view {
		return
	}
	vv := n.viewVotes[v]
	if vv == nil {
		vv = make(map[int]bool)
		n.viewVotes[v] = vv
	}
	vv[m.from] = true
	f := (n.n - 1) / 3
	if len(vv) >= f+1 && n.votedView < v {
		n.votedView = v
		n.out(message{kind: kindViewChange, from: n.id, view: v})
	}
	if len(vv) >= n.quorum {
		n.installView(v)
	}
}

func (n *node) round(seq uint64) *liveRound {
	rd, ok := n.rounds[seq]
	if !ok {
		rd = newLiveRound()
		n.rounds[seq] = rd
	}
	return rd
}

func (n *node) handle(m message) {
	if n.behavior() == Silent {
		return
	}
	switch m.kind {
	case kindRequest:
		// Every replica banks the request so a later view's primary can
		// re-propose it; only the current view's primary proposes now.
		d := digestOf(m.value)
		n.addPending(d, m.value)
		if n.id == n.primaryOf(n.view) {
			n.propose(d, m.value)
		}
	case kindPrePrepare:
		// Accept only from the claimed view's primary, and never from a
		// view this node has already moved past. A higher view is adopted:
		// its primary only proposes after a quorum installed it.
		if m.from != n.primaryOf(m.view) || m.view < n.view {
			return
		}
		n.installView(m.view)
		if m.seq > n.maxSeq {
			n.maxSeq = m.seq
		}
		rd := n.round(m.seq)
		rd.values[m.digest] = append([]byte(nil), m.value...)
		switch n.behavior() {
		case Promiscuous:
			if !rd.sentPrep[m.digest] {
				rd.sentPrep[m.digest] = true
				n.out(message{kind: kindPrepare, from: n.id, seq: m.seq, digest: m.digest})
			}
			if !rd.sentComm[m.digest] {
				rd.sentComm[m.digest] = true
				n.out(message{kind: kindCommit, from: n.id, seq: m.seq, digest: m.digest})
			}
		default:
			if !rd.accepted {
				rd.accepted = true
				rd.digest = m.digest
				if !rd.sentPrep[m.digest] {
					rd.sentPrep[m.digest] = true
					n.out(message{kind: kindPrepare, from: n.id, seq: m.seq, digest: m.digest})
				}
			}
		}
		n.progress(m.seq, rd)
	case kindPrepare:
		rd := n.round(m.seq)
		votes(rd.prepares, m.digest)[m.from] = true
		n.progress(m.seq, rd)
	case kindCommit:
		rd := n.round(m.seq)
		votes(rd.commits, m.digest)[m.from] = true
		n.progress(m.seq, rd)
		n.certCommit(m.seq, rd, m.digest)
	case kindViewChange:
		n.handleViewChange(m)
	}
}

// progress advances the honest pipeline for an accepted proposal: commit
// vote once the prepare quorum forms, local commit once the commit quorum
// does. Promiscuous replicas never accept, so they never reach here with
// accepted state — their endorsements happen directly in handle.
func (n *node) progress(seq uint64, rd *liveRound) {
	if !rd.accepted {
		return
	}
	if !rd.sentComm[rd.digest] && len(rd.prepares[rd.digest]) >= n.quorum {
		rd.sentComm[rd.digest] = true
		n.out(message{kind: kindCommit, from: n.id, seq: seq, digest: rd.digest})
	}
	if !rd.committed && len(rd.commits[rd.digest]) >= n.quorum {
		rd.committed = true
		n.committed++
		n.onCommit(Commit{Replica: n.id, Seq: seq, Value: rd.values[rd.digest]})
		n.removePending(rd.digest)
	}
}

// certCommit commits on a bare commit certificate: a quorum of commit
// votes for a digest whose value this replica knows (from the request
// backlog or an earlier pre-prepare) even though a lossy link ate the
// pre-prepare. Only the just-delivered digest is checked — never a map
// scan — keeping the path deterministic.
func (n *node) certCommit(seq uint64, rd *liveRound, d cryptoutil.Digest) {
	if rd.committed || len(rd.commits[d]) < n.quorum {
		return
	}
	value := rd.values[d]
	if value == nil {
		value = n.pendingValue(d)
	}
	if value == nil {
		return
	}
	rd.committed = true
	rd.accepted = true
	rd.digest = d
	rd.values[d] = value
	n.committed++
	n.onCommit(Commit{Replica: n.id, Seq: seq, Value: value})
	n.removePending(d)
}
