package bftlive

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// collect reads commit events until every live replica has committed seqs
// 1..want, or the timeout elapses. It returns value-by-(replica,seq).
func collect(t *testing.T, c *Cluster, live, want int, timeout time.Duration) map[int]map[uint64]string {
	t.Helper()
	got := make(map[int]map[uint64]string)
	deadline := time.After(timeout)
	done := func() bool {
		complete := 0
		for _, seqs := range got {
			if len(seqs) >= want {
				complete++
			}
		}
		return complete >= live
	}
	for !done() {
		select {
		case ev := <-c.Commits():
			if got[ev.Replica] == nil {
				got[ev.Replica] = make(map[uint64]string)
			}
			got[ev.Replica][ev.Seq] = string(ev.Value)
		case <-deadline:
			t.Fatalf("timeout: collected %v", got)
		}
	}
	return got
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Fatal("n=3 accepted")
	}
}

func TestLiveCommitSingleValue(t *testing.T) {
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Submit([]byte("live-tx"))
	got := collect(t, c, 4, 1, 10*time.Second)
	for id, seqs := range got {
		if seqs[1] != "live-tx" {
			t.Fatalf("replica %d slot 1 = %q", id, seqs[1])
		}
	}
}

func TestLiveCommitManyValuesAgree(t *testing.T) {
	c, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	const total = 25
	for i := 0; i < total; i++ {
		c.Submit([]byte(fmt.Sprintf("v-%03d", i)))
	}
	got := collect(t, c, 7, total, 20*time.Second)
	// Agreement: every replica has the same value at every slot.
	ref := got[0]
	for id, seqs := range got {
		for s := uint64(1); s <= total; s++ {
			if seqs[s] != ref[s] {
				t.Fatalf("replica %d slot %d = %q, replica 0 has %q", id, s, seqs[s], ref[s])
			}
		}
	}
}

func TestLiveToleratesCrashedMinority(t *testing.T) {
	c, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(6); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Submit([]byte("survivor"))
	got := collect(t, c, 5, 1, 10*time.Second)
	for id := range got {
		if id == 3 || id == 6 {
			t.Fatalf("crashed replica %d committed", id)
		}
	}
}

func TestCrashValidation(t *testing.T) {
	c, _ := New(4)
	if err := c.Crash(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := c.Crash(4); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	// Crashing the primary is allowed now that view changes exist.
	if err := c.Crash(0); err != nil {
		t.Fatalf("crashing the primary rejected: %v", err)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	c, _ := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Start(ctx); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestStopTerminatesGoroutines(t *testing.T) {
	c, _ := New(10)
	ctx := context.Background()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	c.Submit([]byte("x"))
	// Stop must return promptly (all goroutines exit) and be idempotent.
	stopped := make(chan struct{})
	go func() {
		c.Stop()
		c.Stop()
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not terminate replica goroutines")
	}
}

func TestParentContextCancellation(t *testing.T) {
	c, _ := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cancel() // external cancellation, not Stop
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("replicas did not exit on parent cancellation")
	}
}
