// Package bftlive runs the three-phase BFT commit protocol in two
// transports that share one replica state machine (node.go):
//
//   - Cluster: real concurrency — one goroutine per replica, in-memory
//     channel transport, context-based lifecycle and clean shutdown. Its
//     tests run under -race and demonstrate the protocol logic is sound
//     under the Go memory model.
//   - SimCluster (sim.go): the same protocol over internal/simnet on the
//     discrete-event scheduler's virtual clock — deterministic, byte-for-
//     byte replayable, with Byzantine behaviors (Silent, Promiscuous) and
//     primary equivocation so internal/liveloop can cross-check the
//     Monitor's predictions against observed safety and liveness.
//
// Both transports rotate primaries: a replica that sees pending requests
// make no commit progress within a view timeout votes to change views, a
// quorum of votes installs primary v mod n, and the new primary
// re-proposes the orphaned backlog. Rotation is opt-in (WithViewTimeout /
// SimWithViewTimeout); the default remains the fixed-primary runtime.
package bftlive

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cryptoutil"
)

type msgKind uint8

const (
	kindRequest msgKind = iota
	kindPrePrepare
	kindPrepare
	kindCommit
	kindViewChange
)

type message struct {
	kind   msgKind
	from   int
	view   uint64
	seq    uint64
	digest cryptoutil.Digest
	value  []byte
}

// Commit is a committed slot reported on the cluster's commit stream.
type Commit struct {
	Replica int
	Seq     uint64
	Value   []byte
}

// Cluster is a set of live replicas connected by channels.
type Cluster struct {
	n           int
	quorum      int
	viewTimeout time.Duration
	inboxes     []chan message
	commits     chan Commit

	mu          sync.Mutex
	crashed     map[int]bool
	maxView     uint64
	viewChanges int

	wg      sync.WaitGroup
	started bool
	cancel  context.CancelFunc
}

// Option configures a Cluster at construction time.
type Option func(*clusterConfig) error

type clusterConfig struct {
	inboxCapacity  int
	commitCapacity int
	viewTimeout    time.Duration
}

// WithInboxCapacity sets each replica's inbox buffer (default 4096).
// Messages beyond a full inbox are dropped, datagram-style; quorum
// redundancy absorbs the loss.
func WithInboxCapacity(n int) Option {
	return func(c *clusterConfig) error {
		if n <= 0 {
			return fmt.Errorf("bftlive: non-positive inbox capacity %d", n)
		}
		c.inboxCapacity = n
		return nil
	}
}

// WithCommitCapacity sets the commit-stream buffer (default 1024). Commit
// events beyond a full buffer are dropped; size it for the slot count the
// consumer expects to observe.
func WithCommitCapacity(n int) Option {
	return func(c *clusterConfig) error {
		if n <= 0 {
			return fmt.Errorf("bftlive: non-positive commit capacity %d", n)
		}
		c.commitCapacity = n
		return nil
	}
}

// WithViewTimeout enables primary rotation: a replica that sees pending
// requests make no commit progress for d votes to change views, and a
// quorum of votes installs primary v mod n. The default (0) disables
// rotation, preserving the fixed-primary runtime.
func WithViewTimeout(d time.Duration) Option {
	return func(c *clusterConfig) error {
		if d < 0 {
			return fmt.Errorf("bftlive: negative view timeout %v", d)
		}
		c.viewTimeout = d
		return nil
	}
}

// New creates a cluster of n replicas (n >= 4). Commit events from every
// replica are delivered on Commits(). Buffer sizes are functional options:
//
//	cl, err := bftlive.New(7, bftlive.WithCommitCapacity(4096))
func New(n int, opts ...Option) (*Cluster, error) {
	if n < 4 {
		return nil, fmt.Errorf("bftlive: need at least 4 replicas, got %d", n)
	}
	cfg := clusterConfig{inboxCapacity: 4096, commitCapacity: 1024}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("bftlive: nil option")
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	c := &Cluster{
		n:           n,
		quorum:      2*n/3 + 1, // strictly more than 2/3 of n
		viewTimeout: cfg.viewTimeout,
		inboxes:     make([]chan message, n),
		commits:     make(chan Commit, cfg.commitCapacity),
		crashed:     make(map[int]bool),
	}
	for i := range c.inboxes {
		c.inboxes[i] = make(chan message, cfg.inboxCapacity)
	}
	return c, nil
}

// Commits returns the stream of commit events (one per replica per slot).
func (c *Cluster) Commits() <-chan Commit { return c.commits }

// Crash marks a replica as crashed, before Start or mid-run: it drops all
// input from then on. Any replica may crash, including the current
// primary — with WithViewTimeout set, the survivors vote the next view in
// and its primary re-proposes the orphaned backlog. At most
// floor((n-1)/3) replicas may be crashed for liveness.
func (c *Cluster) Crash(id int) error {
	if id < 0 || id >= c.n {
		return fmt.Errorf("bftlive: replica %d out of range", id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed[id] = true
	return nil
}

// View returns the highest view any replica has installed.
func (c *Cluster) View() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxView
}

// ViewChanges returns how many primary rotations the cluster performed.
func (c *Cluster) ViewChanges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.viewChanges
}

// noteView records a replica installing view v.
func (c *Cluster) noteView(v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v > c.maxView {
		c.maxView = v
		c.viewChanges++
	}
}

func (c *Cluster) isCrashed(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed[id]
}

// Start launches one goroutine per replica. The cluster stops when ctx is
// cancelled; Stop blocks until all replica goroutines exit.
func (c *Cluster) Start(ctx context.Context) error {
	if c.started {
		return errors.New("bftlive: already started")
	}
	c.started = true
	ctx, c.cancel = context.WithCancel(ctx)
	for i := 0; i < c.n; i++ {
		nd := newNode(i, c.n, c.quorum,
			func() Behavior { return Honest }, // crashes drop input in run()
			c.broadcast,
			func(ev Commit) {
				select {
				case c.commits <- ev:
				default:
				}
			})
		nd.onView = c.noteView
		c.wg.Add(1)
		go func(id int, nd *node) {
			defer c.wg.Done()
			c.run(ctx, id, nd)
		}(i, nd)
	}
	return nil
}

// run is one replica's inbox loop; all node state is confined to it. With
// a view timeout configured, a ticker doubles as the rotation timer: no
// commit progress across a full period while requests are pending means
// the replica votes to change views.
func (c *Cluster) run(ctx context.Context, id int, nd *node) {
	inbox := c.inboxes[id]
	var tick <-chan time.Time
	if c.viewTimeout > 0 {
		t := time.NewTicker(c.viewTimeout)
		defer t.Stop()
		tick = t.C
	}
	lastCommitted := 0
	for {
		select {
		case <-ctx.Done():
			return
		case m := <-inbox:
			if c.isCrashed(id) {
				continue
			}
			nd.handle(m)
		case <-tick:
			if c.isCrashed(id) {
				continue
			}
			if nd.hasPending() && nd.committed == lastCommitted {
				nd.suspect()
			}
			lastCommitted = nd.committed
		}
	}
}

// Stop cancels the cluster's context and waits for all replicas to exit.
// It is safe to call multiple times.
func (c *Cluster) Stop() {
	if c.cancel != nil {
		c.cancel()
	}
	c.wg.Wait()
}

// Submit injects a client value to every replica: the current view's
// primary proposes it, and the rest bank it so a later view's primary can
// re-propose if the proposal dies with a crashed primary.
func (c *Cluster) Submit(value []byte) {
	c.broadcast(message{kind: kindRequest, value: append([]byte(nil), value...)})
}

// send delivers to one inbox, dropping when the inbox is full (backpressure
// by loss, like a datagram network; quorum redundancy absorbs it).
func (c *Cluster) send(to int, m message) {
	select {
	case c.inboxes[to] <- m:
	default:
	}
}

// broadcast delivers to every inbox including the sender's, so a replica's
// own vote counts toward its quorums.
func (c *Cluster) broadcast(m message) {
	for i := 0; i < c.n; i++ {
		c.send(i, m)
	}
}
