package bftlive

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// newRotatingSim builds a SimCluster with primary rotation enabled.
func newRotatingSim(t *testing.T, seed int64, n int, viewTimeout time.Duration) (*sim.Scheduler, *simnet.Network, *SimCluster) {
	t.Helper()
	sched := sim.NewScheduler(seed)
	net, err := simnet.New(sched, simnet.FixedLatency(20*time.Millisecond), 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimCluster(net, n, SimWithViewTimeout(viewTimeout))
	if err != nil {
		t.Fatal(err)
	}
	return sched, net, s
}

func TestSimOptionValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	net, err := simnet.New(sched, simnet.FixedLatency(time.Millisecond), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimCluster(net, 4, SimWithViewTimeout(-time.Second)); err == nil {
		t.Fatal("negative view timeout accepted")
	}
	if _, err := NewSimCluster(net, 4, nil); err == nil {
		t.Fatal("nil option accepted")
	}
}

func TestSimViewChangeRotatesOnPrimaryCrash(t *testing.T) {
	sched, net, s := newRotatingSim(t, 1, 7, 200*time.Millisecond)
	s.Submit([]byte("before"))
	if _, err := sched.At(300*time.Millisecond, "crash primary", func() {
		net.SetDown(0, true)
		if err := s.SetBehavior(0, Silent); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.At(400*time.Millisecond, "submit after crash", func() {
		s.Submit([]byte("after"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.CommittedBy([]byte("before")); got != 7 {
		t.Fatalf("pre-crash value committed by %d, want 7", got)
	}
	// The crashed primary never proposes "after"; the survivors rotate and
	// the new primary re-proposes the banked request.
	if got := s.CommittedBy([]byte("after")); got != 6 {
		t.Fatalf("post-crash value committed by %d, want 6", got)
	}
	if s.View() < 1 || s.ViewChanges() < 1 {
		t.Fatalf("no rotation: view=%d changes=%d", s.View(), s.ViewChanges())
	}
	if s.Primary() == 0 {
		t.Fatal("primary still 0 after rotation")
	}
	if v := s.Violation(); v != nil {
		t.Fatalf("rotation violated agreement: %v", v)
	}
}

func TestSimViewTimeoutZeroKeepsFixedPrimary(t *testing.T) {
	sched, net, s := newSim(t, 7)
	if _, err := sched.At(50*time.Millisecond, "crash primary", func() {
		net.SetDown(0, true)
		s.Submit([]byte("orphaned"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.CommittedBy([]byte("orphaned")); got != 0 {
		t.Fatalf("value committed by %d without a primary or rotation", got)
	}
	if s.ViewChanges() != 0 || s.View() != 0 {
		t.Fatalf("rotation happened with timeout disabled: view=%d", s.View())
	}
}

func TestSimSafetyAcrossSuccessiveRotations(t *testing.T) {
	sched, net, s := newRotatingSim(t, 1, 7, 200*time.Millisecond)
	s.Submit([]byte("v0"))
	crash := func(at time.Duration, id int) {
		if _, err := sched.At(at, fmt.Sprintf("crash %d", id), func() {
			net.SetDown(simnet.NodeID(id), true)
			if err := s.SetBehavior(id, Silent); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	crash(300*time.Millisecond, 0)
	if _, err := sched.At(400*time.Millisecond, "submit v1", func() {
		s.Submit([]byte("v1"))
	}); err != nil {
		t.Fatal(err)
	}
	// After the first rotation the primary is 1; crash it too (f = 2).
	crash(3*time.Second, 1)
	if _, err := sched.At(3100*time.Millisecond, "submit v2", func() {
		s.Submit([]byte("v2"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.CommittedBy([]byte("v0")); got != 7 {
		t.Fatalf("v0 committed by %d, want 7", got)
	}
	if got := s.CommittedBy([]byte("v1")); got != 6 {
		t.Fatalf("v1 committed by %d, want 6", got)
	}
	// Five survivors are exactly the quorum.
	if got := s.CommittedBy([]byte("v2")); got != 5 {
		t.Fatalf("v2 committed by %d, want 5", got)
	}
	if s.View() < 2 || s.ViewChanges() < 2 {
		t.Fatalf("expected two rotations: view=%d changes=%d", s.View(), s.ViewChanges())
	}
	if v := s.Violation(); v != nil {
		t.Fatalf("rotations violated agreement: %v", v)
	}
}

func TestSimRotationUnderLossyLinks(t *testing.T) {
	sched, net, s := newRotatingSim(t, 7, 7, 200*time.Millisecond)
	// Degrade every link touching replicas 5 and 6 (n - quorum = 2, so the
	// clean five still form a quorum), then crash the primary mid-run.
	for peer := 0; peer < 5; peer++ {
		for _, lossy := range []simnet.NodeID{5, 6} {
			if err := net.SetLinkFault(simnet.NodeID(peer), lossy, simnet.Fault{Drop: 0.3, Jitter: 30 * time.Millisecond}); err != nil {
				t.Fatal(err)
			}
			if err := net.SetLinkFault(lossy, simnet.NodeID(peer), simnet.Fault{Drop: 0.3, Duplicate: 0.2}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Submit([]byte("lossy-0"))
	if _, err := sched.At(500*time.Millisecond, "crash primary", func() {
		net.SetDown(0, true)
		if err := s.SetBehavior(0, Silent); err != nil {
			t.Error(err)
		}
		s.Submit([]byte("lossy-1"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.CommittedBy([]byte("lossy-0")); got < 5 {
		t.Fatalf("pre-crash value committed by %d, want >= 5", got)
	}
	if got := s.CommittedBy([]byte("lossy-1")); got < 4 {
		t.Fatalf("post-crash value committed by %d survivors, want >= 4", got)
	}
	if s.ViewChanges() < 1 {
		t.Fatal("no rotation on a lossy wire")
	}
	if v := s.Violation(); v != nil {
		t.Fatalf("lossy rotation violated agreement: %v", v)
	}
}

// rotationTranscript runs the lossy-rotation workload and returns a
// deterministic digest of everything observable.
func rotationTranscript(seed int64) string {
	sched := sim.NewScheduler(seed)
	net, err := simnet.New(sched, simnet.UniformLatency{Min: 5 * time.Millisecond, Max: 25 * time.Millisecond}, 0.02)
	if err != nil {
		panic(err)
	}
	s, err := NewSimCluster(net, 7, SimWithViewTimeout(150*time.Millisecond))
	if err != nil {
		panic(err)
	}
	if err := net.SetLinkFault(2, 6, simnet.Fault{Drop: 0.4, Reorder: 0.5}); err != nil {
		panic(err)
	}
	if err := net.SetLinkFault(6, 2, simnet.Fault{Duplicate: 0.5, Jitter: 10 * time.Millisecond}); err != nil {
		panic(err)
	}
	transcript := ""
	for i := 0; i < 5; i++ {
		i := i
		if _, err := sched.At(time.Duration(i)*400*time.Millisecond, "submit", func() {
			s.Submit([]byte(fmt.Sprintf("tx-%d", i)))
		}); err != nil {
			panic(err)
		}
	}
	if _, err := sched.At(600*time.Millisecond, "crash primary", func() {
		net.SetDown(0, true)
		if err := s.SetBehavior(0, Silent); err != nil {
			panic(err)
		}
	}); err != nil {
		panic(err)
	}
	if err := sched.Run(10 * time.Second); err != nil {
		panic(err)
	}
	for i := 0; i < 5; i++ {
		transcript += fmt.Sprintf("tx-%d:%d\n", i, s.CommittedBy([]byte(fmt.Sprintf("tx-%d", i))))
	}
	transcript += fmt.Sprintf("view=%d changes=%d commits=%d stats=%+v\n",
		s.View(), s.ViewChanges(), s.CommitCount(), net.Stats())
	return transcript
}

func TestSimRotationDeterminism(t *testing.T) {
	want := rotationTranscript(42)
	for i := 0; i < 3; i++ {
		if got := rotationTranscript(42); got != want {
			t.Fatalf("replay %d diverged:\n%s\nvs\n%s", i, got, want)
		}
	}
	t.Run("parallel", func(t *testing.T) {
		for w := 0; w < 4; w++ {
			t.Run(fmt.Sprintf("worker-%d", w), func(t *testing.T) {
				t.Parallel()
				if got := rotationTranscript(42); got != want {
					t.Fatal("parallel replay diverged")
				}
			})
		}
	})
}

// collectValue reads commit events until at least want replicas have
// committed the value, or the deadline elapses.
func collectValue(t *testing.T, c *Cluster, value string, want int, timeout time.Duration) map[int]bool {
	t.Helper()
	got := make(map[int]bool)
	deadline := time.After(timeout)
	for len(got) < want {
		select {
		case ev := <-c.Commits():
			if string(ev.Value) == value {
				got[ev.Replica] = true
			}
		case <-deadline:
			t.Fatalf("timeout waiting for %q: have %v", value, got)
		}
	}
	return got
}

func TestClusterViewChangeOnPrimaryCrash(t *testing.T) {
	c, err := New(7, WithViewTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Submit([]byte("pre-crash"))
	collectValue(t, c, "pre-crash", 7, 10*time.Second)
	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	c.Submit([]byte("post-crash"))
	got := collectValue(t, c, "post-crash", 6, 30*time.Second)
	if got[0] {
		t.Fatal("crashed primary committed")
	}
	if c.View() < 1 || c.ViewChanges() < 1 {
		t.Fatalf("no rotation: view=%d changes=%d", c.View(), c.ViewChanges())
	}
}

func TestClusterViewChangeEscalatesPastDeadPrimaries(t *testing.T) {
	c, err := New(7, WithViewTimeout(40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	// Crash the primaries of views 0 and 1 at once: rotation must escalate
	// until it lands on a live one (f = 2 for n = 7).
	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	c.Submit([]byte("escalate"))
	got := collectValue(t, c, "escalate", 5, 30*time.Second)
	for id := range got {
		if id == 0 || id == 1 {
			t.Fatalf("crashed replica %d committed", id)
		}
	}
	if c.View() < 2 {
		t.Fatalf("view %d did not escalate past dead primaries", c.View())
	}
}

func TestClusterViewTimeoutValidation(t *testing.T) {
	if _, err := New(4, WithViewTimeout(-time.Second)); err == nil {
		t.Fatal("negative view timeout accepted")
	}
}
