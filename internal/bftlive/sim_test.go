package bftlive

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func newSim(t *testing.T, n int) (*sim.Scheduler, *simnet.Network, *SimCluster) {
	t.Helper()
	sched := sim.NewScheduler(1)
	net, err := simnet.New(sched, simnet.FixedLatency(20*time.Millisecond), 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimCluster(net, n)
	if err != nil {
		t.Fatal(err)
	}
	return sched, net, s
}

func TestSimClusterValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	net, err := simnet.New(sched, simnet.FixedLatency(time.Millisecond), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimCluster(net, 3); err == nil {
		t.Fatal("n=3 accepted")
	}
	if _, err := NewSimCluster(nil, 4); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestSimClusterCommitsHonestPath(t *testing.T) {
	sched, _, s := newSim(t, 7)
	const total = 5
	for i := 0; i < total; i++ {
		s.Submit([]byte(fmt.Sprintf("v-%03d", i)))
	}
	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		v := fmt.Sprintf("v-%03d", i)
		if got := s.CommittedBy([]byte(v)); got != 7 {
			t.Fatalf("value %q committed by %d replicas, want 7", v, got)
		}
	}
	if s.Violation() != nil {
		t.Fatalf("honest run reported violation %v", s.Violation())
	}
	if s.CommitCount() != 7*total {
		t.Fatalf("commit count %d, want %d", s.CommitCount(), 7*total)
	}
}

func TestSimClusterToleratesSilentMinority(t *testing.T) {
	sched, _, s := newSim(t, 7)
	if err := s.SetBehavior(5, Silent); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBehavior(6, Silent); err != nil {
		t.Fatal(err)
	}
	s.Submit([]byte("survivor"))
	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// quorum = 5 of 7; 5 live replicas commit, the silent pair does not.
	if got := s.CommittedBy([]byte("survivor")); got != 5 {
		t.Fatalf("committed by %d replicas, want 5", got)
	}
}

func TestSimClusterStallsPastThreshold(t *testing.T) {
	sched, _, s := newSim(t, 7)
	for _, i := range []int{4, 5, 6} {
		if err := s.SetBehavior(i, Silent); err != nil {
			t.Fatal(err)
		}
	}
	s.Submit([]byte("stuck"))
	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.CommittedBy([]byte("stuck")); got != 0 {
		t.Fatalf("committed by %d replicas despite 3/7 silent", got)
	}
}

func TestSimClusterPartitionStallsAndHeals(t *testing.T) {
	sched, net, s := newSim(t, 7)
	// Cut three replicas off: the primary side has 4 < quorum 5.
	net.SetPartitions([]simnet.NodeID{4, 5, 6})
	s.Submit([]byte("partitioned"))
	if _, err := sched.At(500*time.Millisecond, "heal", func() {
		net.SetPartitions()
		s.Submit([]byte("healed"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.CommittedBy([]byte("partitioned")); got != 0 {
		t.Fatalf("value committed by %d replicas across a majority partition", got)
	}
	if got := s.CommittedBy([]byte("healed")); got != 7 {
		t.Fatalf("post-heal value committed by %d replicas, want 7", got)
	}
}

func TestSimClusterEquivocationViolatesAgreement(t *testing.T) {
	sched, _, s := newSim(t, 7)
	for _, i := range []int{0, 2, 4} {
		if err := s.SetBehavior(i, Promiscuous); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.EquivocateNext([]byte("left"), []byte("right")); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	v := s.Violation()
	if v == nil {
		t.Fatal("equivocation with 3/7 colluders produced no violation")
	}
	if v.Digests[0] == v.Digests[1] {
		t.Fatalf("violation digests equal: %v", v)
	}
	if s.CommittedBy([]byte("left")) == 0 || s.CommittedBy([]byte("right")) == 0 {
		t.Fatalf("expected honest commits on both sides, got left=%d right=%d",
			s.CommittedBy([]byte("left")), s.CommittedBy([]byte("right")))
	}
}

func TestSimClusterEquivocationNeedsByzantinePrimary(t *testing.T) {
	_, _, s := newSim(t, 7)
	if err := s.EquivocateNext([]byte("a"), []byte("b")); err == nil {
		t.Fatal("honest primary allowed to equivocate")
	}
}
