package bftlive

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// clientLatency is the fixed client→primary hop for Submit.
const clientLatency = time.Millisecond

// Violation is an observed agreement failure: two honest replicas
// committed conflicting values at the same sequence number.
type Violation struct {
	Seq      uint64
	Replicas [2]int
	Digests  [2]cryptoutil.Digest
}

// String renders the violation for trace details.
func (v *Violation) String() string {
	return fmt.Sprintf("seq=%d replicas=%d/%d digests=%s/%s",
		v.Seq, v.Replicas[0], v.Replicas[1], v.Digests[0].Short(), v.Digests[1].Short())
}

// SimCluster runs the live protocol over a simulated network on the
// discrete-event scheduler: deterministic delivery order, virtual time,
// no goroutines. Everything — including behavior changes, submissions and
// equivocation — must happen from scheduler callbacks or between runs, so
// a SimCluster run is byte-for-byte replayable from the scheduler seed.
//
// Node i registers as simnet.NodeID(i); replica 0 is the initial primary,
// and with SimWithViewTimeout set a stalled cluster rotates to primary
// v mod n.
type SimCluster struct {
	net         *simnet.Network
	n           int
	quorum      int
	viewTimeout time.Duration
	nodes       []*node
	behaviors   []Behavior

	honestCommits int
	committedBy   map[string]int // value -> count of honest replicas committed
	agreed        map[uint64]simCommit
	violation     *Violation

	maxView       uint64
	viewChanges   int
	lastCommitted []int // per-replica commit counts at the last timeout check
}

type simCommit struct {
	replica int
	digest  cryptoutil.Digest
}

// SimOption configures a SimCluster at construction time.
type SimOption func(*SimCluster) error

// SimWithViewTimeout enables primary rotation on the virtual clock: every
// d, replicas with pending requests and no commit progress since the last
// check vote to change views. The default (0) keeps the fixed primary.
func SimWithViewTimeout(d time.Duration) SimOption {
	return func(s *SimCluster) error {
		if d < 0 {
			return fmt.Errorf("bftlive: negative view timeout %v", d)
		}
		s.viewTimeout = d
		return nil
	}
}

// NewSimCluster registers n replicas (n >= 4) on the network. All replicas
// start Honest.
func NewSimCluster(net *simnet.Network, n int, opts ...SimOption) (*SimCluster, error) {
	if net == nil {
		return nil, errors.New("bftlive: nil network")
	}
	if n < 4 {
		return nil, fmt.Errorf("bftlive: need at least 4 replicas, got %d", n)
	}
	s := &SimCluster{
		net:           net,
		n:             n,
		quorum:        2*n/3 + 1,
		behaviors:     make([]Behavior, n),
		committedBy:   make(map[string]int),
		agreed:        make(map[uint64]simCommit),
		lastCommitted: make([]int, n),
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("bftlive: nil option")
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		i := i
		nd := newNode(i, n, s.quorum,
			func() Behavior { return s.behaviors[i] },
			func(m message) { s.broadcast(i, m) },
			func(c Commit) { s.onCommit(i, c) })
		nd.onView = func(v uint64) {
			if v > s.maxView {
				s.maxView = v
				s.viewChanges++
			}
		}
		s.nodes = append(s.nodes, nd)
		if err := net.Register(simnet.NodeID(i), simnet.HandlerFunc(func(from simnet.NodeID, msg any) {
			if m, ok := msg.(message); ok {
				nd.handle(m)
			}
		})); err != nil {
			return nil, err
		}
	}
	if s.viewTimeout > 0 {
		// Every takes an absolute start instant: a cluster may come up
		// mid-run (the live harness boots it at the scenario's StartAt).
		start := net.Scheduler().Now() + s.viewTimeout
		if _, err := net.Scheduler().Every(start, s.viewTimeout, "view timeout", s.checkProgress); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// checkProgress is the cluster-wide rotation timer: every honest replica
// that is not crashed on the wire, has requests pending and made no commit
// progress since the last check votes to change views. Iteration is in
// replica order from a single callback, so all stalled replicas target the
// same next view in the same scheduler round.
func (s *SimCluster) checkProgress() {
	for i, nd := range s.nodes {
		if s.behaviors[i] != Honest || s.net.IsDown(simnet.NodeID(i)) {
			s.lastCommitted[i] = nd.committed
			continue
		}
		if nd.hasPending() && nd.committed == s.lastCommitted[i] {
			nd.suspect()
		}
		s.lastCommitted[i] = nd.committed
	}
}

// View returns the highest view any replica has installed.
func (s *SimCluster) View() uint64 { return s.maxView }

// Primary returns the current primary: the highest installed view mod n.
func (s *SimCluster) Primary() int { return int(s.maxView % uint64(s.n)) }

// ViewChanges returns how many primary rotations the cluster performed.
func (s *SimCluster) ViewChanges() int { return s.viewChanges }

// N returns the replica count.
func (s *SimCluster) N() int { return s.n }

// Quorum returns the vote quorum (strictly more than 2n/3).
func (s *SimCluster) Quorum() int { return s.quorum }

// broadcast sends to every other replica over the network and self-delivers
// on the next scheduler step, so a vote counts itself without reentrant
// handling.
func (s *SimCluster) broadcast(from int, m message) {
	s.net.Broadcast(simnet.NodeID(from), m)
	s.net.Scheduler().After(0, fmt.Sprintf("self-deliver %d", from), func() {
		s.nodes[from].handle(m)
	})
}

// Submit schedules a client value for every replica after the client hop:
// the current primary proposes it, the rest bank it for re-proposal after
// a view change. Delivery is by direct handler call in replica order — no
// network traffic, so RNG consumption matches the fixed-primary runtime.
// Call from a scheduler callback (or before Run).
func (s *SimCluster) Submit(value []byte) {
	v := append([]byte(nil), value...)
	s.net.Scheduler().After(clientLatency, "client request", func() {
		for _, nd := range s.nodes {
			nd.handle(message{kind: kindRequest, value: v})
		}
	})
}

// SetBehavior switches a replica's conduct from the next delivery on.
func (s *SimCluster) SetBehavior(i int, b Behavior) error {
	if i < 0 || i >= s.n {
		return fmt.Errorf("bftlive: replica %d out of range", i)
	}
	s.behaviors[i] = b
	return nil
}

// BehaviorOf reports a replica's current behavior.
func (s *SimCluster) BehaviorOf(i int) Behavior {
	if i < 0 || i >= s.n {
		return Silent
	}
	return s.behaviors[i]
}

// EquivocateNext makes the current view's (non-honest) primary propose
// value a to half the honest replicas and value b to the rest at the next
// sequence number, showing both proposals to every Byzantine colluder.
// With Promiscuous colluders carrying strictly more than 1/3 of the
// replicas, both conflicting quorums assemble and the violation surfaces
// on Violation().
func (s *SimCluster) EquivocateNext(a, b []byte) error {
	p := s.Primary()
	nd := s.nodes[p]
	if s.behaviors[p] == Honest {
		return errors.New("bftlive: equivocation requires a non-honest primary")
	}
	if nd.primaryOf(nd.view) != p {
		return errors.New("bftlive: view change in flight; primary unsettled")
	}
	nd.maxSeq++
	seq := nd.maxSeq
	ma := message{kind: kindPrePrepare, from: p, view: nd.view, seq: seq, digest: digestOf(a), value: append([]byte(nil), a...)}
	mb := message{kind: kindPrePrepare, from: p, view: nd.view, seq: seq, digest: digestOf(b), value: append([]byte(nil), b...)}
	var honest []int
	for i := 0; i < s.n; i++ {
		if i != p && s.behaviors[i] == Honest {
			honest = append(honest, i)
		}
	}
	half := (len(honest) + 1) / 2
	for k, i := range honest {
		m := ma
		if k >= half {
			m = mb
		}
		s.net.Send(simnet.NodeID(p), simnet.NodeID(i), m)
	}
	for i := 0; i < s.n; i++ {
		if i != p && s.behaviors[i] == Promiscuous {
			s.net.Send(simnet.NodeID(p), simnet.NodeID(i), ma)
			s.net.Send(simnet.NodeID(p), simnet.NodeID(i), mb)
		}
	}
	// The primary endorses both of its own proposals too.
	s.net.Scheduler().After(0, fmt.Sprintf("self-deliver %d", p), func() {
		nd.handle(ma)
		nd.handle(mb)
	})
	return nil
}

// onCommit records honest commit events and checks agreement across them.
func (s *SimCluster) onCommit(i int, c Commit) {
	if s.behaviors[i] != Honest {
		return
	}
	s.honestCommits++
	s.committedBy[string(c.Value)]++
	d := digestOf(c.Value)
	prev, ok := s.agreed[c.Seq]
	if !ok {
		s.agreed[c.Seq] = simCommit{replica: i, digest: d}
		return
	}
	if prev.digest != d && s.violation == nil {
		s.violation = &Violation{
			Seq:      c.Seq,
			Replicas: [2]int{prev.replica, i},
			Digests:  [2]cryptoutil.Digest{prev.digest, d},
		}
	}
}

// CommitCount returns the total number of honest commit events observed.
func (s *SimCluster) CommitCount() int { return s.honestCommits }

// CommittedBy returns how many replicas committed the value while honest.
func (s *SimCluster) CommittedBy(value []byte) int {
	return s.committedBy[string(value)]
}

// Violation returns the first observed agreement violation, or nil.
func (s *SimCluster) Violation() *Violation { return s.violation }
