package bftlive

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// clientLatency is the fixed client→primary hop for Submit.
const clientLatency = time.Millisecond

// Violation is an observed agreement failure: two honest replicas
// committed conflicting values at the same sequence number.
type Violation struct {
	Seq      uint64
	Replicas [2]int
	Digests  [2]cryptoutil.Digest
}

// String renders the violation for trace details.
func (v *Violation) String() string {
	return fmt.Sprintf("seq=%d replicas=%d/%d digests=%s/%s",
		v.Seq, v.Replicas[0], v.Replicas[1], v.Digests[0].Short(), v.Digests[1].Short())
}

// SimCluster runs the live protocol over a simulated network on the
// discrete-event scheduler: deterministic delivery order, virtual time,
// no goroutines. Everything — including behavior changes, submissions and
// equivocation — must happen from scheduler callbacks or between runs, so
// a SimCluster run is byte-for-byte replayable from the scheduler seed.
//
// Node i registers as simnet.NodeID(i); replica 0 is the fixed primary.
type SimCluster struct {
	net       *simnet.Network
	n         int
	quorum    int
	nodes     []*node
	behaviors []Behavior

	honestCommits int
	committedBy   map[string]int // value -> count of honest replicas committed
	agreed        map[uint64]simCommit
	violation     *Violation
}

type simCommit struct {
	replica int
	digest  cryptoutil.Digest
}

// NewSimCluster registers n replicas (n >= 4) on the network. All replicas
// start Honest.
func NewSimCluster(net *simnet.Network, n int) (*SimCluster, error) {
	if net == nil {
		return nil, errors.New("bftlive: nil network")
	}
	if n < 4 {
		return nil, fmt.Errorf("bftlive: need at least 4 replicas, got %d", n)
	}
	s := &SimCluster{
		net:         net,
		n:           n,
		quorum:      2*n/3 + 1,
		behaviors:   make([]Behavior, n),
		committedBy: make(map[string]int),
		agreed:      make(map[uint64]simCommit),
	}
	for i := 0; i < n; i++ {
		i := i
		nd := newNode(i, s.quorum,
			func() Behavior { return s.behaviors[i] },
			func(m message) { s.broadcast(i, m) },
			func(c Commit) { s.onCommit(i, c) })
		s.nodes = append(s.nodes, nd)
		if err := net.Register(simnet.NodeID(i), simnet.HandlerFunc(func(from simnet.NodeID, msg any) {
			if m, ok := msg.(message); ok {
				nd.handle(m)
			}
		})); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// N returns the replica count.
func (s *SimCluster) N() int { return s.n }

// Quorum returns the vote quorum (strictly more than 2n/3).
func (s *SimCluster) Quorum() int { return s.quorum }

// broadcast sends to every other replica over the network and self-delivers
// on the next scheduler step, so a vote counts itself without reentrant
// handling.
func (s *SimCluster) broadcast(from int, m message) {
	s.net.Broadcast(simnet.NodeID(from), m)
	s.net.Scheduler().After(0, fmt.Sprintf("self-deliver %d", from), func() {
		s.nodes[from].handle(m)
	})
}

// Submit schedules a client value; the primary proposes it after the
// client hop. Call from a scheduler callback (or before Run).
func (s *SimCluster) Submit(value []byte) {
	v := append([]byte(nil), value...)
	s.net.Scheduler().After(clientLatency, "client request", func() {
		s.nodes[0].handle(message{kind: kindRequest, value: v})
	})
}

// SetBehavior switches a replica's conduct from the next delivery on.
func (s *SimCluster) SetBehavior(i int, b Behavior) error {
	if i < 0 || i >= s.n {
		return fmt.Errorf("bftlive: replica %d out of range", i)
	}
	s.behaviors[i] = b
	return nil
}

// BehaviorOf reports a replica's current behavior.
func (s *SimCluster) BehaviorOf(i int) Behavior {
	if i < 0 || i >= s.n {
		return Silent
	}
	return s.behaviors[i]
}

// EquivocateNext makes the (non-honest) primary propose value a to half
// the honest replicas and value b to the rest at the next sequence number,
// showing both proposals to every Byzantine colluder. With Promiscuous
// colluders carrying strictly more than 1/3 of the replicas, both
// conflicting quorums assemble and the violation surfaces on Violation().
func (s *SimCluster) EquivocateNext(a, b []byte) error {
	if s.behaviors[0] == Honest {
		return errors.New("bftlive: equivocation requires a non-honest primary")
	}
	s.nodes[0].nextSeq++
	seq := s.nodes[0].nextSeq
	ma := message{kind: kindPrePrepare, from: 0, seq: seq, digest: digestOf(a), value: append([]byte(nil), a...)}
	mb := message{kind: kindPrePrepare, from: 0, seq: seq, digest: digestOf(b), value: append([]byte(nil), b...)}
	var honest []int
	for i := 1; i < s.n; i++ {
		if s.behaviors[i] == Honest {
			honest = append(honest, i)
		}
	}
	half := (len(honest) + 1) / 2
	for k, i := range honest {
		m := ma
		if k >= half {
			m = mb
		}
		s.net.Send(0, simnet.NodeID(i), m)
	}
	for i := 1; i < s.n; i++ {
		if s.behaviors[i] == Promiscuous {
			s.net.Send(0, simnet.NodeID(i), ma)
			s.net.Send(0, simnet.NodeID(i), mb)
		}
	}
	// The primary endorses both of its own proposals too.
	s.net.Scheduler().After(0, "self-deliver 0", func() {
		s.nodes[0].handle(ma)
		s.nodes[0].handle(mb)
	})
	return nil
}

// onCommit records honest commit events and checks agreement across them.
func (s *SimCluster) onCommit(i int, c Commit) {
	if s.behaviors[i] != Honest {
		return
	}
	s.honestCommits++
	s.committedBy[string(c.Value)]++
	d := digestOf(c.Value)
	prev, ok := s.agreed[c.Seq]
	if !ok {
		s.agreed[c.Seq] = simCommit{replica: i, digest: d}
		return
	}
	if prev.digest != d && s.violation == nil {
		s.violation = &Violation{
			Seq:      c.Seq,
			Replicas: [2]int{prev.replica, i},
			Digests:  [2]cryptoutil.Digest{prev.digest, d},
		}
	}
}

// CommitCount returns the total number of honest commit events observed.
func (s *SimCluster) CommitCount() int { return s.honestCommits }

// CommittedBy returns how many replicas committed the value while honest.
func (s *SimCluster) CommittedBy(value []byte) int {
	return s.committedBy[string(value)]
}

// Violation returns the first observed agreement violation, or nil.
func (s *SimCluster) Violation() *Violation { return s.violation }
