package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(30*time.Millisecond, "c", func() { got = append(got, 3) })
	s.After(10*time.Millisecond, "a", func() { got = append(got, 1) })
	s.After(20*time.Millisecond, "b", func() { got = append(got, 2) })
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSchedulerTieBreakBySeq(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*time.Millisecond, "tie", func() { got = append(got, i) })
	}
	s.Run(time.Second)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events out of scheduling order: %v", got)
		}
	}
}

func TestSchedulerClockAdvances(t *testing.T) {
	s := NewScheduler(1)
	var at time.Duration
	s.After(42*time.Millisecond, "probe", func() { at = s.Now() })
	s.Run(time.Second)
	if at != 42*time.Millisecond {
		t.Fatalf("clock at event = %v, want 42ms", at)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock after Run = %v, want horizon 1s", s.Now())
	}
}

func TestSchedulerHorizonStopsEarly(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	s.After(2*time.Second, "late", func() { fired = true })
	s.Run(time.Second)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	// A second Run with a larger horizon picks the event up.
	s.Run(3 * time.Second)
	if !fired {
		t.Fatal("event not fired after horizon extension")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var order []string
	s.After(10*time.Millisecond, "outer", func() {
		order = append(order, "outer")
		s.After(5*time.Millisecond, "inner", func() {
			order = append(order, "inner")
		})
	})
	s.Run(time.Second)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
}

func TestSchedulerPastRejected(t *testing.T) {
	s := NewScheduler(1)
	s.After(10*time.Millisecond, "tick", func() {
		if _, err := s.At(5*time.Millisecond, "past", func() {}); err == nil {
			t.Error("scheduling in the past succeeded")
		}
	})
	s.Run(time.Second)
}

func TestSchedulerNilFuncRejected(t *testing.T) {
	s := NewScheduler(1)
	if _, err := s.At(0, "nil", nil); err == nil {
		t.Fatal("nil event func accepted")
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.After(10*time.Millisecond, "cancel-me", func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer = false")
	}
	if tm.Stop() {
		t.Fatal("second Stop = true")
	}
	s.Run(time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler(1)
	tm := s.After(1*time.Millisecond, "quick", func() {})
	s.Run(time.Second)
	_ = tm // firing does not mark dead; Stop after fire returns true but is harmless
	if s.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", s.Fired())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, "n", func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	err := s.Run(time.Second)
	if err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestRunAllBounded(t *testing.T) {
	s := NewScheduler(1)
	// Self-perpetuating event chain: would run forever without a bound.
	var tick func()
	tick = func() { s.After(time.Millisecond, "tick", tick) }
	s.After(0, "start", tick)
	n := s.RunAll(100)
	if n != 100 {
		t.Fatalf("RunAll executed %d, want 100", n)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []time.Duration {
		s := NewScheduler(seed)
		var log []time.Duration
		for i := 0; i < 50; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
			s.After(d, "jitter", func() { log = append(log, s.Now()) })
		}
		s.Run(2 * time.Second)
		return log
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

// Property: for any set of non-negative delays, events fire in sorted order.
func TestPropEventsFireSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewScheduler(3)
		var fired []time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			s.After(d, "p", func() { fired = append(fired, s.Now()) })
		}
		s.RunAll(0)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
