// Package sim provides a deterministic discrete-event simulation engine.
//
// All time in the simulator is virtual: a Scheduler owns a monotonically
// advancing clock and an event queue ordered by (time, sequence). Events
// scheduled for the same instant fire in scheduling order, which — together
// with an explicitly seeded random source — makes every run replayable.
//
// The engine is intentionally single-threaded. Consensus protocols built on
// top of it (internal/bft, internal/nakamoto) are message-driven state
// machines whose nondeterminism is confined to the seeded RNG, so a safety
// violation observed once can be reproduced exactly from the seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrStopped is returned by Run when the scheduler was stopped explicitly
// before reaching its horizon.
var ErrStopped = errors.New("sim: scheduler stopped")

// Event is a unit of work scheduled at a virtual instant.
type Event struct {
	At   time.Duration // virtual time at which the event fires
	Seq  uint64        // tie-breaker: order of scheduling
	Fn   func()        // callback; runs with the clock set to At
	Name string        // optional label for tracing
	idx  int           // heap index
	dead bool          // cancelled
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev *Event
}

// Stop cancels the timer. It reports whether the event had not yet fired.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.Fn = nil
	return true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].Seq < h[j].Seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is a deterministic discrete-event scheduler. The zero value is
// not ready to use; construct with NewScheduler.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool
	fired   uint64
	trace   func(Event)
}

// NewScheduler returns a scheduler whose random source is seeded with seed.
// The same seed always produces the same run.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source. Protocol code
// must draw all randomness from this source to remain replayable.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired reports how many events have been executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many events are queued (including cancelled ones that
// have not been reaped yet).
func (s *Scheduler) Pending() int { return len(s.queue) }

// SetTrace installs a hook invoked just before each event fires. A nil hook
// disables tracing.
func (s *Scheduler) SetTrace(fn func(Event)) { s.trace = fn }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// is an error: deterministic replay requires a causally ordered event log.
func (s *Scheduler) At(at time.Duration, name string, fn func()) (*Timer, error) {
	if fn == nil {
		return nil, errors.New("sim: nil event func")
	}
	if at < s.now {
		return nil, fmt.Errorf("sim: schedule at %v before now %v", at, s.now)
	}
	s.seq++
	ev := &Event{At: at, Seq: s.seq, Fn: fn, Name: name}
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}, nil
}

// After schedules fn to run delay after the current virtual time. A negative
// delay is clamped to zero.
func (s *Scheduler) After(delay time.Duration, name string, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	t, err := s.At(s.now+delay, name, fn)
	if err != nil {
		// Unreachable: now+delay >= now by construction.
		panic(err)
	}
	return t
}

// Repeat is a handle to a self-rescheduling periodic event created by
// Every. Stopping it cancels the pending occurrence and prevents further
// rescheduling.
type Repeat struct {
	stopped bool
	timer   *Timer
}

// Stop cancels the repeat. It reports whether a pending occurrence was
// cancelled.
func (r *Repeat) Stop() bool {
	if r == nil || r.stopped {
		return false
	}
	r.stopped = true
	return r.timer.Stop()
}

// Every schedules fn at start and then every interval of virtual time
// thereafter, until the handle is stopped or the run's horizon cuts the
// series off (the next occurrence stays queued past the horizon, like any
// other event). Each occurrence reschedules the next before fn runs, so
// fn may itself Stop the handle.
func (s *Scheduler) Every(start, interval time.Duration, name string, fn func()) (*Repeat, error) {
	if fn == nil {
		return nil, errors.New("sim: nil event func")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("sim: non-positive interval %v", interval)
	}
	r := &Repeat{}
	var tick func()
	tick = func() {
		if r.stopped {
			return
		}
		r.timer = s.After(interval, name, tick)
		fn()
	}
	t, err := s.At(start, name, tick)
	if err != nil {
		return nil, err
	}
	r.timer = t
	return r, nil
}

// Step executes the next pending event, advancing the clock to its instant.
// It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.dead {
			continue
		}
		s.now = ev.At
		s.fired++
		if s.trace != nil {
			s.trace(*ev)
		}
		ev.Fn()
		return true
	}
	return false
}

// Stop halts a Run in progress after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue drains, the virtual clock would pass
// horizon, or Stop is called. The clock never advances beyond horizon; events
// scheduled later remain queued. Run returns ErrStopped if halted by Stop,
// nil otherwise.
func (s *Scheduler) Run(horizon time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		next := s.queue[0]
		if next.dead {
			heap.Pop(&s.queue)
			continue
		}
		if next.At > horizon {
			s.now = horizon
			return nil
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunAll executes events until the queue drains or maxEvents have fired,
// whichever comes first. It returns the number of events executed. A zero
// maxEvents means no limit; callers protecting against livelock should pass
// an explicit bound.
func (s *Scheduler) RunAll(maxEvents uint64) uint64 {
	var n uint64
	for {
		if maxEvents > 0 && n >= maxEvents {
			return n
		}
		if !s.Step() {
			return n
		}
		n++
	}
}
