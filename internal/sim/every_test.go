package sim

import (
	"testing"
	"time"
)

func TestEveryFiresOnCadence(t *testing.T) {
	s := NewScheduler(1)
	var fired []time.Duration
	if _, err := s.Every(0, 10*time.Millisecond, "tick", func() {
		fired = append(fired, s.Now())
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(35 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("occurrence %d at %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestEveryStop(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	var rep *Repeat
	var err error
	rep, err = s.Every(0, time.Millisecond, "tick", func() {
		n++
		if n == 3 {
			// Stopping from inside fn must cancel the already-scheduled
			// next occurrence.
			if !rep.Stop() {
				t.Error("Stop reported no pending occurrence")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("fired %d times after Stop at 3", n)
	}
	if rep.Stop() {
		t.Error("second Stop reported success")
	}
}

func TestEveryValidation(t *testing.T) {
	s := NewScheduler(1)
	if _, err := s.Every(0, 0, "x", func() {}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := s.Every(0, time.Second, "x", nil); err == nil {
		t.Error("nil fn accepted")
	}
	if _, err := s.Every(-time.Second, time.Second, "x", func() {}); err == nil {
		t.Error("start in the past accepted")
	}
}

func TestEveryInterleavesWithOtherEvents(t *testing.T) {
	s := NewScheduler(1)
	var order []string
	if _, err := s.Every(0, 10*time.Millisecond, "tick", func() {
		order = append(order, "tick@"+s.Now().String())
	}); err != nil {
		t.Fatal(err)
	}
	// Each occurrence is rescheduled at runtime, so at a shared instant a
	// pre-scheduled event carries the older seq and fires first.
	if _, err := s.At(10*time.Millisecond, "same-instant", func() {
		order = append(order, "event@10ms")
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(15*time.Millisecond, "between", func() {
		order = append(order, "event@15ms")
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	want := "tick@0s,event@10ms,tick@10ms,event@15ms,tick@20ms"
	got := ""
	for i, o := range order {
		if i > 0 {
			got += ","
		}
		got += o
	}
	if got != want {
		t.Fatalf("order %s, want %s", got, want)
	}
}
