// Package integration exercises cross-module flows end to end: the full
// attested pipeline (device → quote → registry → monitor), enforcement
// feeding consensus (admission weights → weighted BFT), and the mitigation
// loop (vulnerability → unsafe → recovery/patch → safe). These tests are
// the "would a downstream user's composition actually work" check on top
// of the per-package suites.
package integration

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/bft"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/diversity"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vuln"
)

// buildAttestedFleet provisions n replicas with real devices and quotes,
// running client cl(i) on OS os(i), and joins them to a fresh registry.
func buildAttestedFleet(t *testing.T, n int, osOf, clientOf func(i int) string) (*registry.Registry, *attest.Authority) {
	t.Helper()
	auth := attest.NewAuthority("tpm2")
	reg := registry.New(auth, nil)
	for i := 0; i < n; i++ {
		dev, err := attest.NewDevice("tpm2", uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		cfg := config.MustNew(
			config.Component{Class: config.ClassTrustedHardware, Name: "tpm2", Version: "01.59"},
			config.Component{Class: config.ClassOperatingSystem, Name: osOf(i), Version: "1"},
			config.Component{Class: config.ClassConsensusModule, Name: clientOf(i), Version: "1"},
		)
		vote := cryptoutil.DeriveKeyPair("integration/vote", uint64(i))
		q, err := dev.QuoteConfig(cfg, vote.Public, auth.IssueNonce())
		if err != nil {
			t.Fatal(err)
		}
		id := registry.ReplicaID(fmt.Sprintf("rep-%03d", i))
		if err := reg.JoinAttested(id, cfg, q, 1, 24*time.Hour); err != nil {
			t.Fatalf("attested join %d: %v", i, err)
		}
	}
	return reg, auth
}

func TestAttestedPipelineMonitorsSafety(t *testing.T) {
	// 12 replicas: 6 run "popular" client, 6 spread over three others.
	clients := []string{"popular", "popular", "alt-a", "popular", "alt-b", "alt-c"}
	reg, _ := buildAttestedFleet(t, 12,
		func(i int) string { return fmt.Sprintf("os-%d", i%3) },
		func(i int) string { return clients[i%len(clients)] },
	)
	if reg.Size() != 12 {
		t.Fatalf("size = %d", reg.Size())
	}
	att, dec, _, _ := reg.TierCounts()
	if att != 12 || dec != 0 {
		t.Fatalf("tiers = %d/%d", att, dec)
	}

	cat := vuln.NewCatalog()
	if err := cat.Add(vuln.Vulnerability{
		ID: "CVE-popular", Class: config.ClassConsensusModule, Product: "popular",
		Disclosed: 10 * time.Hour, PatchAt: 20 * time.Hour, Severity: 1,
	}); err != nil {
		t.Fatal(err)
	}
	mon, err := core.NewMonitor(reg, core.WithCatalog(cat), core.WithSubstrate(bft.Substrate()))
	if err != nil {
		t.Fatal(err)
	}
	// Popular client = 6/12 = 50% > 1/3: unsafe inside the window.
	mid, err := mon.Assess(15 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Safe {
		t.Fatal("monitor missed the monoculture zero-day")
	}
	if mid.Injection.TotalFraction != 0.5 {
		t.Fatalf("compromised = %v, want 0.5", mid.Injection.TotalFraction)
	}
	// After the window: safe again.
	late, err := mon.Assess(50 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !late.Safe {
		t.Fatal("monitor unsafe after patching")
	}
}

func TestAdmissionWeightsFeedWeightedBFT(t *testing.T) {
	// A fleet where 6 of 10 replicas share the "popular" configuration.
	// Accept-all BFT weights let the shared fault (60% of power) break
	// safety; admission-capped weights (popular capped to 1/3 of effective
	// power) keep the same attack below the quorum-forgery bound.
	const n = 10
	labels := make([]string, n)
	for i := range labels {
		if i < 6 {
			labels[i] = "popular"
		} else {
			labels[i] = fmt.Sprintf("alt-%d", i)
		}
	}
	run := func(weights []float64, compromised []int) *bft.Violation {
		sched := sim.NewScheduler(99)
		net, err := simnet.New(sched, simnet.UniformLatency{Min: time.Millisecond, Max: 10 * time.Millisecond}, 0)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := bft.NewCluster(net, bft.Config{Weights: weights})
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range compromised {
			cl.SetBehavior(i, bft.Promiscuous)
		}
		if err := cl.EquivocateNext([]byte("A"), []byte("B")); err != nil {
			t.Fatal(err)
		}
		if err := sched.Run(time.Minute); err != nil {
			t.Fatal(err)
		}
		return cl.Violation()
	}
	compromised := []int{0, 1, 2, 3, 4, 5} // everyone on "popular"

	// Accept-all: unit weights.
	flat := make([]float64, n)
	for i := range flat {
		flat[i] = 1
	}
	if run(flat, compromised) == nil {
		t.Fatal("accept-all weights: expected safety violation")
	}

	// Admission-policy weights: joins processed sequentially, popular
	// capped to 30% of effective power.
	policy := core.AdmissionPolicy{TargetShare: 0.30, DeclaredDiscount: 1}
	capped := make([]float64, n)
	weightsSoFar := make(map[string]float64)
	for i := 0; i < n; i++ {
		dist, err := diversity.FromWeights(weightsSoFar)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := policy.Decide(dist, labels[i], 1, true)
		if err != nil {
			t.Fatal(err)
		}
		w := dec.Weight
		if w <= 0 {
			// BFT weights must be positive; a zero-weight replica simply
			// does not vote — model with a negligible epsilon weight.
			w = 1e-9
		}
		capped[i] = w
		weightsSoFar[labels[i]] += w
	}
	if v := run(capped, compromised); v != nil {
		t.Fatalf("admission-capped weights still violated safety: %v", v)
	}
}

func TestRecoveredRegistryRejoinsAfterRevocation(t *testing.T) {
	// Device revocation (SGX.Fail-style trusted-hardware compromise):
	// a revoked device cannot re-attest; a fresh device can.
	auth := attest.NewAuthority("tpm2")
	reg := registry.New(auth, nil)
	dev, _ := attest.NewDevice("tpm2", 1)
	cfg := config.MustNew(config.Component{Class: config.ClassOperatingSystem, Name: "debian", Version: "12"})
	vote := cryptoutil.DeriveKeyPair("rejoin", 1)
	q, _ := dev.QuoteConfig(cfg, vote.Public, auth.IssueNonce())
	if err := reg.JoinAttested("r1", cfg, q, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Operator leaves; its device is found compromised and revoked.
	if err := reg.Leave("r1"); err != nil {
		t.Fatal(err)
	}
	auth.Revoke(dev.PublicKey())
	q2, _ := dev.QuoteConfig(cfg, vote.Public, auth.IssueNonce())
	if err := reg.JoinAttested("r1", cfg, q2, 1, 0); err == nil {
		t.Fatal("revoked device re-attested")
	}
	// Replacement hardware attests fine.
	dev2, _ := attest.NewDevice("tpm2", 2)
	q3, _ := dev2.QuoteConfig(cfg, vote.Public, auth.IssueNonce())
	if err := reg.JoinAttested("r1", cfg, q3, 1, 0); err != nil {
		t.Fatalf("replacement device rejected: %v", err)
	}
}
