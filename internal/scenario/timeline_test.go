package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/config"
	"repro/internal/vuln"
)

// osSpec builds the serialized configuration for a one-component OS config.
func osSpec(name, version string) []ComponentSpec {
	return []ComponentSpec{{Class: config.ClassOperatingSystem.String(), Name: name, Version: version}}
}

// fullGrammarTimeline exercises every op the grammar has, in a run that
// succeeds end to end.
func fullGrammarTimeline() *Timeline {
	h := Duration(48 * time.Hour)
	return &Timeline{
		Name:    "tl-full-grammar",
		Title:   "every op once",
		Tags:    []string{"test"},
		Horizon: h,
		Tick:    Duration(6 * time.Hour),
		Events: []Event{
			{Op: OpJoin, At: 0, ID: "r-0", Config: osSpec("linux", "1"), Power: 3, PatchLatency: Duration(time.Hour)},
			{Op: OpJoin, At: 0, ID: "r-1", Config: osSpec("bsd", "1"), Power: 2},
			{Op: OpJoin, At: Duration(time.Hour), ID: "r-2", Config: osSpec("illumos", "1"), Power: 1},
			{Op: OpDisclose, At: Duration(2 * time.Hour), Vuln: &VulnSpec{
				ID: "CVE-TL-1", Class: config.ClassOperatingSystem.String(), Product: "linux", Version: "1",
				Disclosed: Duration(2 * time.Hour), PatchAt: Duration(20 * time.Hour), Severity: 1,
			}},
			{Op: OpPower, At: Duration(3 * time.Hour), ID: "r-1", Power: 4},
			{Op: OpPartition, At: Duration(4 * time.Hour), IDs: []string{"r-2"}},
			{Op: OpProbe, At: Duration(5 * time.Hour), Strategy: &StrategySpec{Kind: "adaptive", Strategies: []StrategySpec{
				{Kind: "exploit", Budget: 1}, {Kind: "corruption", Budget: 1},
			}}},
			{Op: OpHeal, At: Duration(6 * time.Hour)},
			{Op: OpCrash, At: Duration(8 * time.Hour), IDs: []string{"r-1"}},
			{Op: OpRestore, At: Duration(10 * time.Hour)},
			{Op: OpMigrate, At: Duration(12 * time.Hour), ID: "r-0", Config: osSpec("haiku", "2")},
			{Op: OpDegrade, At: Duration(14 * time.Hour), IDs: []string{"r-0", "r-1"}, Fault: &FaultSpec{
				Drop: 0.2, ExtraLatency: Duration(10 * time.Millisecond), Jitter: Duration(5 * time.Millisecond),
				Duplicate: 0.1, Reorder: 0.3,
			}},
			{Op: OpRestoreLink, At: Duration(16 * time.Hour), IDs: []string{"r-0", "r-1"}},
			{Op: OpLeave, At: Duration(30 * time.Hour), ID: "r-2"},
		},
	}
}

// TestTimelineRoundTrip: marshal -> parse -> marshal is byte-identical, and
// the parsed timeline replays the same trace as the original.
func TestTimelineRoundTrip(t *testing.T) {
	tl := fullGrammarTimeline()
	first, err := tl.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTimeline(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := parsed.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("round-trip not byte-identical:\n%s\n---\n%s", first, second)
	}

	a, err := Run(tl.Def(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(parsed.Def(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if ja, jb := mustTraceJSON(t, a), mustTraceJSON(t, b); ja != jb {
		t.Fatal("parsed timeline replays a different trace than the original")
	}
}

// TestTimelineMatchesEquivalentSetup: a Timeline def and a Setup closure
// scheduling the same events produce byte-identical traces — data-first is
// not a second-class path through the engine.
func TestTimelineMatchesEquivalentSetup(t *testing.T) {
	tl := fullGrammarTimeline()
	setupDef := Def{
		Name:    tl.Name, // same name => same derived seed
		Title:   tl.Title,
		Horizon: tl.Horizon.D(),
		Tick:    tl.Tick.D(),
		Setup: func(e *Engine) error {
			cfg := func(name, version string) config.Configuration {
				return config.MustNew(config.Component{Class: config.ClassOperatingSystem, Name: name, Version: version})
			}
			steps := []error{
				e.JoinAt(0, "r-0", cfg("linux", "1"), 3, time.Hour),
				e.JoinAt(0, "r-1", cfg("bsd", "1"), 2, 0),
				e.JoinAt(time.Hour, "r-2", cfg("illumos", "1"), 1, 0),
				e.Disclose(vuln.Vulnerability{
					ID: "CVE-TL-1", Class: config.ClassOperatingSystem, Product: "linux", Version: "1",
					Disclosed: 2 * time.Hour, PatchAt: 20 * time.Hour, Severity: 1,
				}),
				e.SetPowerAt(3*time.Hour, "r-1", 4),
				e.PartitionAt(4*time.Hour, "r-2"),
				e.ProbeAt(5*time.Hour, adversary.AdaptiveStrategy{Strategies: []adversary.Strategy{
					adversary.ExploitStrategy{Budget: 1}, adversary.CorruptionStrategy{Budget: 1},
				}}),
				e.HealAt(6 * time.Hour),
				e.CrashAt(8*time.Hour, "r-1"),
				e.RestoreAt(10 * time.Hour),
				e.MigrateAt(12*time.Hour, "r-0", cfg("haiku", "2")),
				e.DegradeAt(14*time.Hour, "r-0", "r-1", LinkFault{
					Drop: 0.2, ExtraLatency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond,
					Duplicate: 0.1, Reorder: 0.3,
				}),
				e.RestoreLinkAt(16*time.Hour, "r-0", "r-1"),
				e.LeaveAt(30*time.Hour, "r-2"),
			}
			for _, err := range steps {
				if err != nil {
					return err
				}
			}
			return nil
		},
	}
	a, err := Run(tl.Def(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(setupDef, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) == 0 {
		t.Fatal("empty trace")
	}
	if ja, jb := mustTraceJSON(t, a), mustTraceJSON(t, b); ja != jb {
		t.Fatalf("timeline and setup traces differ:\n%s\n---\n%s", ja, jb)
	}
}

func mustTraceJSON(t *testing.T, res *Result) string {
	t.Helper()
	var b strings.Builder
	for _, rec := range res.Records {
		line, err := rec.JSON()
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestTimelineValidate rejects each malformed shape with a positioned error.
func TestTimelineValidate(t *testing.T) {
	base := func() *Timeline {
		return &Timeline{
			Name:    "tl-bad",
			Horizon: Duration(10 * time.Hour),
			Events: []Event{
				{Op: OpJoin, At: 0, ID: "r-0", Config: osSpec("linux", "1"), Power: 1},
			},
		}
	}
	cases := []struct {
		name string
		mod  func(tl *Timeline)
		want string
	}{
		{"no name", func(tl *Timeline) { tl.Name = "" }, "without a name"},
		{"zero horizon", func(tl *Timeline) { tl.Horizon = 0 }, "non-positive horizon"},
		{"negative tick", func(tl *Timeline) { tl.Tick = -1 }, "negative tick"},
		{"descending events", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: OpHeal, At: Duration(2 * time.Hour)},
				Event{Op: OpHeal, At: Duration(time.Hour)})
		}, "precedes"},
		{"beyond horizon", func(tl *Timeline) {
			tl.Events[0].At = Duration(11 * time.Hour)
		}, "beyond horizon"},
		{"negative time", func(tl *Timeline) { tl.Events[0].At = -1 }, "negative time"},
		{"join without id", func(tl *Timeline) { tl.Events[0].ID = "" }, "without a replica id"},
		{"join without config", func(tl *Timeline) { tl.Events[0].Config = nil }, "without a configuration"},
		{"join with bad class", func(tl *Timeline) { tl.Events[0].Config[0].Class = "flux-capacitor" }, "unknown component class"},
		{"join with zero power", func(tl *Timeline) { tl.Events[0].Power = 0 }, "non-positive power"},
		{"join with negative latency", func(tl *Timeline) { tl.Events[0].PatchLatency = -1 }, "negative patch latency"},
		{"disclose without vuln", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: OpDisclose, At: Duration(time.Hour)})
		}, "disclose without a vulnerability"},
		{"disclose at wrong instant", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: OpDisclose, At: Duration(time.Hour), Vuln: &VulnSpec{
				ID: "CVE-X", Class: config.ClassOperatingSystem.String(), Product: "linux", Version: "1",
				Disclosed: Duration(2 * time.Hour), PatchAt: Duration(3 * time.Hour), Severity: 1,
			}})
		}, "must match"},
		{"partition without ids", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: OpPartition, At: Duration(time.Hour)})
		}, "without replica ids"},
		{"probe without strategy", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: OpProbe, At: Duration(time.Hour)})
		}, "probe without a strategy"},
		{"probe with unknown strategy", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: OpProbe, At: Duration(time.Hour),
				Strategy: &StrategySpec{Kind: "bribery"}})
		}, "unknown strategy kind"},
		{"adaptive without subs", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: OpProbe, At: Duration(time.Hour),
				Strategy: &StrategySpec{Kind: "adaptive"}})
		}, "needs sub-strategies"},
		{"degrade with one endpoint", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: OpDegrade, At: Duration(time.Hour),
				IDs: []string{"r-0"}, Fault: &FaultSpec{Drop: 0.5}})
		}, "two distinct link endpoints"},
		{"degrade with same endpoint twice", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: OpDegrade, At: Duration(time.Hour),
				IDs: []string{"r-0", "r-0"}, Fault: &FaultSpec{Drop: 0.5}})
		}, "two distinct link endpoints"},
		{"degrade without fault", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: OpDegrade, At: Duration(time.Hour),
				IDs: []string{"r-0", "r-1"}})
		}, "degrade without a fault model"},
		{"degrade with certain drop", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: OpDegrade, At: Duration(time.Hour),
				IDs: []string{"r-0", "r-1"}, Fault: &FaultSpec{Drop: 1}})
		}, "drop"},
		{"restore-link with one endpoint", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: OpRestoreLink, At: Duration(time.Hour),
				IDs: []string{"r-0"}})
		}, "two distinct link endpoints"},
		{"negative live start", func(tl *Timeline) {
			tl.Live = &LiveSpec{StartAt: -1}
		}, "live start"},
		{"live start beyond horizon", func(tl *Timeline) {
			tl.Live = &LiveSpec{StartAt: Duration(11 * time.Hour)}
		}, "live start"},
		{"negative live cadence", func(tl *Timeline) {
			tl.Live = &LiveSpec{StartAt: 0, ViewTimeout: -1}
		}, "negative live cadence"},
		{"unknown op", func(tl *Timeline) {
			tl.Events = append(tl.Events, Event{Op: "teleport", At: Duration(time.Hour)})
		}, "unknown op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tl := base()
			tc.mod(tl)
			err := tl.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base timeline should validate: %v", err)
	}
}

// TestDurationJSON: durations marshal as strings and unmarshal from both
// strings and raw nanoseconds.
func TestDurationJSON(t *testing.T) {
	b, err := json.Marshal(Duration(90 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1h30m0s"` {
		t.Fatalf("marshalled as %s", b)
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"2h"`), &d); err != nil || d.D() != 2*time.Hour {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(fmt.Sprint(int64(3*time.Hour))), &d); err != nil || d.D() != 3*time.Hour {
		t.Fatalf("nanoseconds form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"3 parsecs"`), &d); err == nil {
		t.Fatal("bad duration string accepted")
	}
	if err := json.Unmarshal([]byte(`{}`), &d); err == nil {
		t.Fatal("object accepted as duration")
	}
}

// TestTimelineClone: mutating a clone leaves the original untouched.
func TestTimelineClone(t *testing.T) {
	tl := fullGrammarTimeline()
	orig, err := tl.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	cl := tl.Clone()
	cl.Events = cl.Events[:3]
	cl.Events[0].ID = "mutated"
	cl.Events[0].Config[0].Name = "mutated"
	for i := range cl.Events {
		if cl.Events[i].Vuln != nil {
			cl.Events[i].Vuln.ID = "mutated"
		}
		if cl.Events[i].Strategy != nil {
			cl.Events[i].Strategy.Kind = "mutated"
		}
	}
	after, err := tl.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != string(after) {
		t.Fatal("mutating a clone changed the original")
	}
}

// TestSortEvents: out-of-order construction normalizes to ascending At with
// stable same-instant ordering.
func TestSortEvents(t *testing.T) {
	tl := &Timeline{
		Name: "tl-sort", Horizon: Duration(10 * time.Hour),
		Events: []Event{
			{Op: OpHeal, At: Duration(5 * time.Hour)},
			{Op: OpJoin, At: 0, ID: "a", Config: osSpec("linux", "1"), Power: 1},
			{Op: OpJoin, At: 0, ID: "b", Config: osSpec("bsd", "1"), Power: 1},
			{Op: OpLeave, At: Duration(2 * time.Hour), ID: "a"},
		},
	}
	if err := tl.Validate(); err == nil {
		t.Fatal("unsorted timeline validated")
	}
	tl.SortEvents()
	if err := tl.Validate(); err != nil {
		t.Fatalf("sorted timeline failed validation: %v", err)
	}
	if tl.Events[0].ID != "a" || tl.Events[1].ID != "b" {
		t.Fatal("same-instant ordering not stable")
	}
	if tl.Events[3].Op != OpHeal {
		t.Fatalf("events not ascending: %+v", tl.Events)
	}
}
