package scenario

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/config"
	"repro/internal/registry"
	"repro/internal/vuln"
)

func testCfg(os string) config.Configuration {
	return config.MustNew(config.Component{
		Class: config.ClassOperatingSystem, Name: os, Version: "1",
	})
}

// TestEngineTimeline drives a small explicit timeline through every event
// helper and checks the resulting trace records in order.
func TestEngineTimeline(t *testing.T) {
	def := Def{
		Name:    "timeline",
		Title:   "t",
		Horizon: 10 * time.Hour,
		Tick:    5 * time.Hour,
		Setup: func(e *Engine) error {
			if err := e.JoinAt(0, "a", testCfg("linux"), 10, time.Hour); err != nil {
				return err
			}
			if err := e.JoinAt(time.Hour, "b", testCfg("bsd"), 10, time.Hour); err != nil {
				return err
			}
			if err := e.SetPowerAt(2*time.Hour, "a", 30); err != nil {
				return err
			}
			if err := e.MigrateAt(3*time.Hour, "b", testCfg("linux")); err != nil {
				return err
			}
			if err := e.Disclose(vuln.Vulnerability{
				ID: "CVE-T-1", Class: config.ClassOperatingSystem, Product: "linux", Version: "1",
				Disclosed: 4 * time.Hour, PatchAt: 6 * time.Hour, Severity: 1,
			}); err != nil {
				return err
			}
			if err := e.ProbeAt(4*time.Hour+30*time.Minute, adversary.ExploitStrategy{Budget: 1}); err != nil {
				return err
			}
			return e.LeaveAt(8*time.Hour, "b")
		},
	}
	res, err := Run(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	byEvent := make(map[string]Record)
	for _, rec := range res.Records {
		events = append(events, rec.Event)
		byEvent[rec.Event] = rec // keeps the last of each kind
	}
	want := []string{"join", "tick", "join", "power", "migrate", "disclose", "probe", "tick", "patch", "leave", "tick", "final"}
	if got := strings.Join(events, ","); got != strings.Join(want, ",") {
		t.Fatalf("event order\n got %s\nwant %s", got, strings.Join(want, ","))
	}

	if r := byEvent["power"]; r.Power != 40 {
		t.Errorf("power record total power = %v, want 40", r.Power)
	}
	// After b migrates to linux both replicas share one config: entropy 0.
	if r := byEvent["migrate"]; r.Entropy != 0 || r.Configs != 1 {
		t.Errorf("migrate record entropy=%v configs=%d, want 0 bits / 1 config", r.Entropy, r.Configs)
	}
	// The zero-day on linux now compromises everyone.
	if r := byEvent["disclose"]; r.Compromised != 1 || r.Safe {
		t.Errorf("disclose record Σf=%v safe=%t, want 1 / false", r.Compromised, r.Safe)
	}
	if r := byEvent["probe"]; r.AdvStrategy == "" || r.AdvFraction != 1 || !r.AdvBreaks {
		t.Errorf("probe record adversary fields wrong: %+v", r)
	}
	if r := byEvent["probe"]; r.AdvDetail != "CVE-T-1" {
		t.Errorf("probe detail = %q, want CVE-T-1", r.AdvDetail)
	}
	// Worst window must flag the full compromise somewhere in [0, horizon].
	if r := byEvent["final"]; r.WorstFraction != 1 || r.WorstSafe {
		t.Errorf("final worst-window = %v safe=%t, want 1 / false", r.WorstFraction, r.WorstSafe)
	}
}

// TestEngineEventErrorAborts: a failing mutation (duplicate join) aborts
// the run with a descriptive error instead of emitting a bogus trace.
func TestEngineEventErrorAborts(t *testing.T) {
	def := Def{
		Name: "dup", Title: "t", Horizon: time.Hour,
		Setup: func(e *Engine) error {
			if err := e.JoinAt(0, "a", testCfg("linux"), 10, 0); err != nil {
				return err
			}
			return e.JoinAt(time.Minute, "a", testCfg("bsd"), 10, 0)
		},
	}
	_, err := Run(def, 1)
	if err == nil {
		t.Fatal("duplicate join did not abort the run")
	}
	if !errors.Is(err, registry.ErrDuplicateReplica) {
		t.Fatalf("error %v does not wrap ErrDuplicateReplica", err)
	}
}

// TestEnginePartitionHeal: partition parks power, heal restores it
// exactly, and double-partitioning is rejected.
func TestEnginePartitionHeal(t *testing.T) {
	def := Def{
		Name: "part", Title: "t", Horizon: 4 * time.Hour, Tick: 4 * time.Hour,
		Setup: func(e *Engine) error {
			if err := e.JoinAt(0, "a", testCfg("linux"), 10, 0); err != nil {
				return err
			}
			if err := e.JoinAt(0, "b", testCfg("bsd"), 30, 0); err != nil {
				return err
			}
			if err := e.PartitionAt(time.Hour, "b"); err != nil {
				return err
			}
			return e.HealAt(2 * time.Hour)
		},
	}
	res, err := Run(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	var part, heal Record
	for _, rec := range res.Records {
		switch rec.Event {
		case "partition":
			part = rec
		case "heal":
			heal = rec
		}
	}
	if part.Power != 10 || part.Replicas != 2 {
		t.Errorf("partition record power=%v replicas=%d, want 10/2", part.Power, part.Replicas)
	}
	if heal.Power != 40 {
		t.Errorf("heal record power=%v, want 40", heal.Power)
	}

	unknown := Def{
		Name: "part-unknown", Title: "t", Horizon: time.Hour,
		Setup: func(e *Engine) error { return e.PartitionAt(time.Minute, "ghost") },
	}
	if _, err := Run(unknown, 1); err == nil {
		t.Error("partitioning an unknown replica did not abort")
	}
}

// TestEngineRejoinBeforeHeal: a replica that leaves mid-partition and
// re-joins *before* the heal is a new incarnation — the heal must not
// overwrite its fresh power with the dead incarnation's parked value.
func TestEngineRejoinBeforeHeal(t *testing.T) {
	def := Def{
		Name: "part-rejoin", Title: "t", Horizon: 5 * time.Hour, Tick: 5 * time.Hour,
		Setup: func(e *Engine) error {
			if err := e.JoinAt(0, "a", testCfg("linux"), 10, 0); err != nil {
				return err
			}
			if err := e.JoinAt(0, "b", testCfg("bsd"), 30, 0); err != nil {
				return err
			}
			if err := e.PartitionAt(time.Hour, "b"); err != nil {
				return err
			}
			if err := e.LeaveAt(2*time.Hour, "b"); err != nil {
				return err
			}
			if err := e.JoinAt(3*time.Hour, "b", testCfg("bsd"), 7, 0); err != nil {
				return err
			}
			// The re-joined incarnation can be partitioned again...
			if err := e.PartitionAt(3*time.Hour+30*time.Minute, "b"); err != nil {
				return err
			}
			// ...and one heal restores only the live incarnation's power.
			return e.HealAt(4 * time.Hour)
		},
	}
	res, err := Run(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Records[len(res.Records)-1]
	if last.Power != 17 {
		t.Errorf("final power %v, want 17 (10 + re-joined 7)", last.Power)
	}
	for _, rec := range res.Records {
		if rec.Event == "heal" && rec.Detail != "1 replicas rejoined" {
			t.Errorf("heal detail %q, want exactly the live incarnation", rec.Detail)
		}
	}
}

// TestEnginePowerShiftDuringPartition: a SetPowerAt landing on a
// partitioned replica updates the parked power (it stays at 0 effective
// power until heal, which then restores the shifted value).
func TestEnginePowerShiftDuringPartition(t *testing.T) {
	def := Def{
		Name: "part-shift", Title: "t", Horizon: 4 * time.Hour, Tick: 4 * time.Hour,
		Setup: func(e *Engine) error {
			if err := e.JoinAt(0, "a", testCfg("linux"), 10, 0); err != nil {
				return err
			}
			if err := e.JoinAt(0, "b", testCfg("bsd"), 30, 0); err != nil {
				return err
			}
			if err := e.PartitionAt(time.Hour, "b"); err != nil {
				return err
			}
			if err := e.SetPowerAt(2*time.Hour, "b", 50); err != nil {
				return err
			}
			return e.HealAt(3 * time.Hour)
		},
	}
	res, err := Run(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	var shift, heal Record
	for _, rec := range res.Records {
		switch rec.Event {
		case "power":
			shift = rec
		case "heal":
			heal = rec
		}
	}
	// While partitioned the shift must not restore the vote...
	if shift.Power != 10 {
		t.Errorf("power during partition = %v, want 10 (b still silenced)", shift.Power)
	}
	if shift.Detail != "b power=50 (partitioned; applies at heal)" {
		t.Errorf("shift detail %q", shift.Detail)
	}
	// ...and the heal restores the shifted value, not the stale one.
	if heal.Power != 60 {
		t.Errorf("power after heal = %v, want 60 (10 + shifted 50)", heal.Power)
	}
}

// TestEngineLeaveWhilePartitioned: a replica that leaves mid-partition is
// forgotten at heal — its parked power must not block or corrupt a later
// incarnation of the same id.
func TestEngineLeaveWhilePartitioned(t *testing.T) {
	def := Def{
		Name: "part-leave", Title: "t", Horizon: 6 * time.Hour, Tick: 6 * time.Hour,
		Setup: func(e *Engine) error {
			if err := e.JoinAt(0, "a", testCfg("linux"), 10, 0); err != nil {
				return err
			}
			if err := e.JoinAt(0, "b", testCfg("bsd"), 30, 0); err != nil {
				return err
			}
			if err := e.PartitionAt(time.Hour, "b"); err != nil {
				return err
			}
			if err := e.LeaveAt(2*time.Hour, "b"); err != nil {
				return err
			}
			if err := e.HealAt(3 * time.Hour); err != nil {
				return err
			}
			// The id re-joins with different power and gets partitioned
			// again: the dead incarnation's parked power must be gone.
			if err := e.JoinAt(4*time.Hour, "b", testCfg("bsd"), 7, 0); err != nil {
				return err
			}
			if err := e.PartitionAt(5*time.Hour, "b"); err != nil {
				return err
			}
			return e.HealAt(5*time.Hour + 30*time.Minute)
		},
	}
	res, err := Run(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	var heals []Record
	for _, rec := range res.Records {
		if rec.Event == "heal" {
			heals = append(heals, rec)
		}
	}
	if len(heals) != 2 {
		t.Fatalf("saw %d heal records, want 2", len(heals))
	}
	if heals[0].Power != 10 || heals[0].Detail != "0 replicas rejoined" {
		t.Errorf("first heal after leave: power=%v detail=%q", heals[0].Power, heals[0].Detail)
	}
	if heals[1].Power != 17 || heals[1].Detail != "1 replicas rejoined" {
		t.Errorf("second heal restored wrong power: power=%v detail=%q", heals[1].Power, heals[1].Detail)
	}
}

// TestEngineCrashRestore: crash parks power exactly like a partition,
// restore brings it back, and the two fault kinds are mutually exclusive
// per replica.
func TestEngineCrashRestore(t *testing.T) {
	def := Def{
		Name: "crash", Title: "t", Horizon: 5 * time.Hour, Tick: 5 * time.Hour,
		Setup: func(e *Engine) error {
			if err := e.JoinAt(0, "a", testCfg("linux"), 10, 0); err != nil {
				return err
			}
			if err := e.JoinAt(0, "b", testCfg("bsd"), 30, 0); err != nil {
				return err
			}
			if err := e.CrashAt(time.Hour, "b"); err != nil {
				return err
			}
			if err := e.SetPowerAt(90*time.Minute, "b", 50); err != nil {
				return err
			}
			return e.RestoreAt(2 * time.Hour)
		},
	}
	res, err := Run(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	var crash, shift, restore Record
	for _, rec := range res.Records {
		switch rec.Event {
		case "crash":
			crash = rec
		case "power":
			shift = rec
		case "restore":
			restore = rec
		}
	}
	if crash.Power != 10 || crash.Detail != "1 replicas crashed" {
		t.Errorf("crash record power=%v detail=%q", crash.Power, crash.Detail)
	}
	if shift.Power != 10 || shift.Detail != "b power=50 (crashed; applies at restore)" {
		t.Errorf("shift record power=%v detail=%q", shift.Power, shift.Detail)
	}
	if restore.Power != 60 || restore.Detail != "1 replicas restored" {
		t.Errorf("restore record power=%v detail=%q", restore.Power, restore.Detail)
	}

	conflict := Def{
		Name: "crash-partitioned", Title: "t", Horizon: time.Hour,
		Setup: func(e *Engine) error {
			if err := e.JoinAt(0, "a", testCfg("linux"), 10, 0); err != nil {
				return err
			}
			if err := e.PartitionAt(time.Minute, "a"); err != nil {
				return err
			}
			return e.CrashAt(2*time.Minute, "a")
		},
	}
	if _, err := Run(conflict, 1); err == nil {
		t.Error("crashing a partitioned replica did not abort")
	}
	notCrashed := Def{
		Name: "restore-up", Title: "t", Horizon: time.Hour,
		Setup: func(e *Engine) error {
			if err := e.JoinAt(0, "a", testCfg("linux"), 10, 0); err != nil {
				return err
			}
			return e.RestoreAt(time.Minute, "a")
		},
	}
	if _, err := Run(notCrashed, 1); err == nil {
		t.Error("restoring an up replica did not abort")
	}
}

// recordingObserver captures EventInfo kinds and annotates records.
type recordingObserver struct {
	kinds []string
	fail  bool
}

func (o *recordingObserver) AfterEvent(e *Engine, info EventInfo, rec *Record) error {
	if o.fail {
		return errors.New("observer boom")
	}
	o.kinds = append(o.kinds, info.Kind)
	if info.Kind == "crash" {
		rec.Check = "observed"
		rec.CheckDetail = fmt.Sprintf("%d ids", len(info.IDs))
	}
	return nil
}

// TestEngineObserver: observers see every event with structured info and
// their record annotations land in the trace; an observer error aborts.
func TestEngineObserver(t *testing.T) {
	obs := &recordingObserver{}
	def := Def{
		Name: "observed", Title: "t", Horizon: 2 * time.Hour, Tick: 2 * time.Hour,
		Setup: func(e *Engine) error {
			e.Observe(obs)
			if err := e.JoinAt(0, "a", testCfg("linux"), 10, 0); err != nil {
				return err
			}
			if err := e.JoinAt(0, "b", testCfg("bsd"), 10, 0); err != nil {
				return err
			}
			if err := e.CrashAt(time.Hour, "b"); err != nil {
				return err
			}
			return e.RestoreAt(90 * time.Minute)
		},
	}
	res, err := Run(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := "join,join,tick,crash,restore,tick,final"
	if got := strings.Join(obs.kinds, ","); got != want {
		t.Errorf("observer saw %s, want %s", got, want)
	}
	found := false
	for _, rec := range res.Records {
		if rec.Event == "crash" {
			found = true
			if rec.Check != "observed" || rec.CheckDetail != "1 ids" {
				t.Errorf("annotation missing: check=%q detail=%q", rec.Check, rec.CheckDetail)
			}
		}
	}
	if !found {
		t.Fatal("no crash record")
	}

	failing := Def{
		Name: "observer-fail", Title: "t", Horizon: time.Hour,
		Setup: func(e *Engine) error {
			e.Observe(&recordingObserver{fail: true})
			return e.JoinAt(0, "a", testCfg("linux"), 10, 0)
		},
	}
	if _, err := Run(failing, 1); err == nil || !strings.Contains(err.Error(), "observer boom") {
		t.Errorf("observer error not propagated: %v", err)
	}
}

// TestEngineEmptyMembership: records with no effective power carry zeroed
// metrics and stay safe instead of erroring.
func TestEngineEmptyMembership(t *testing.T) {
	def := Def{
		Name: "empty", Title: "t", Horizon: 2 * time.Hour, Tick: time.Hour,
		Setup: func(e *Engine) error {
			return e.JoinAt(90*time.Minute, "a", testCfg("linux"), 10, 0)
		},
	}
	res, err := Run(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Records[0]
	if first.Event != "tick" || first.Replicas != 0 || !first.Safe || first.Entropy != 0 {
		t.Errorf("empty-membership record wrong: %+v", first)
	}
	last := res.Records[len(res.Records)-1]
	if last.Replicas != 1 {
		t.Errorf("final record replicas=%d, want 1", last.Replicas)
	}
}

// TestEngineTickDefault: Tick <= 0 falls back to horizon/24.
func TestEngineTickDefault(t *testing.T) {
	def := Def{
		Name: "ticks", Title: "t", Horizon: 24 * time.Hour,
		Setup: func(e *Engine) error {
			return e.JoinAt(0, "a", testCfg("linux"), 1, 0)
		},
	}
	res, err := Run(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	for _, rec := range res.Records {
		if rec.Event == "tick" {
			ticks++
		}
	}
	if ticks != 25 { // t=0 through t=24h inclusive, hourly
		t.Errorf("saw %d ticks, want 25", ticks)
	}
}

// TestEngineProbeOnEmptySurface: probing before anyone joined yields an
// empty plan, not an error.
func TestEngineProbeOnEmptySurface(t *testing.T) {
	def := Def{
		Name: "probe-empty", Title: "t", Horizon: time.Hour, Tick: time.Hour,
		Setup: func(e *Engine) error {
			return e.ProbeAt(time.Minute, adversary.ExploitStrategy{Budget: 3})
		},
	}
	res, err := Run(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.Event == "probe" {
			if rec.AdvFraction != 0 || rec.AdvBreaks {
				t.Errorf("empty-surface probe fraction=%v breaks=%t", rec.AdvFraction, rec.AdvBreaks)
			}
			return
		}
	}
	t.Fatal("no probe record")
}

// TestEngineManyEventsScale exercises a dense synthetic timeline to keep
// the engine's cost model honest: hundreds of churn events and ticks in
// one run, still exact.
func TestEngineManyEventsScale(t *testing.T) {
	def := Def{
		Name: "dense", Title: "t", Horizon: 100 * time.Hour, Tick: time.Hour,
		Setup: func(e *Engine) error {
			for i := 0; i < 200; i++ {
				id := registry.ReplicaID(fmt.Sprintf("r-%03d", i))
				if err := e.JoinAt(time.Duration(i)*30*time.Minute, id, testCfg(fmt.Sprintf("os-%d", i%7)), float64(1+i%13), time.Hour); err != nil {
					return err
				}
			}
			for i := 0; i < 50; i++ {
				id := registry.ReplicaID(fmt.Sprintf("r-%03d", i))
				if err := e.LeaveAt(time.Duration(120+i)*30*time.Minute, id); err != nil {
					return err
				}
			}
			return nil
		},
	}
	res, err := Run(def, 3)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Records[len(res.Records)-1]
	if last.Replicas != 150 {
		t.Errorf("final membership %d, want 150", last.Replicas)
	}
	if got := len(res.Records); got != 200+50+101+1 {
		t.Errorf("record count %d, want 352", got)
	}
}
