package scenario

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/committee"
	"repro/internal/config"
	"repro/internal/diversity"
	"repro/internal/registry"
	"repro/internal/vuln"
)

// The named scenario library. Every scenario self-registers at init time,
// mirroring the experiment registry, so cmd/scenarios -list, the tests
// and the benchmarks iterate one index.
func init() {
	Register(flashChurn())
	Register(monocultureDrift())
	Register(zeroDayUnderPartition())
	Register(staggeredPatchRace())
	Register(adaptiveAdversary())
	Register(committeeRotation())
}

const day = 24 * time.Hour

// osCfg is a single-component OS configuration.
func osCfg(name, version string) config.Configuration {
	return config.MustNew(config.Component{
		Class: config.ClassOperatingSystem, Name: name, Version: version,
	})
}

// osCryptoCfg pairs an OS with a crypto library — the staggered-patch-race
// stack.
func osCryptoCfg(osName, osVersion, lib, libVersion string) config.Configuration {
	return config.MustNew(
		config.Component{Class: config.ClassOperatingSystem, Name: osName, Version: osVersion},
		config.Component{Class: config.ClassCryptoLibrary, Name: lib, Version: libVersion},
	)
}

var libraryOSes = []struct{ name, version string }{
	{"ubuntu", "22.04"}, {"debian", "12"}, {"fedora", "38"}, {"freebsd", "13.2"}, {"openbsd", "7.3"},
}

// flashChurn: a diverse fleet absorbs a flash mob of identically
// configured joiners, a zero-day lands on the mob's product mid-stay, and
// the mob drains away. Tests that assessment tracks rapid monoculture
// spikes in both directions.
func flashChurn() Def {
	return Def{
		Name:    "flash-churn",
		Title:   "identically-configured join flood, zero-day mid-stay, mass exit",
		Tags:    []string{"churn", "vuln"},
		Horizon: 10 * day,
		Tick:    12 * time.Hour,
		Setup: func(e *Engine) error {
			rng := e.Rand()
			// Base fleet: 30 replicas, 6 per OS, joining through hour one.
			for i := 0; i < 30; i++ {
				os := libraryOSes[i%len(libraryOSes)]
				err := e.JoinAt(time.Duration(i)*2*time.Minute,
					registry.ReplicaID(fmt.Sprintf("base-%02d", i)),
					osCfg(os.name, os.version),
					float64(5+rng.Intn(20)),
					time.Duration(i%4)*12*time.Hour)
				if err != nil {
					return err
				}
			}
			// Day 3: 40 ubuntu joiners inside two hours.
			for i := 0; i < 40; i++ {
				err := e.JoinAt(3*day+time.Duration(i)*3*time.Minute,
					registry.ReplicaID(fmt.Sprintf("mob-%02d", i)),
					osCfg("ubuntu", "22.04"),
					float64(3+rng.Intn(10)),
					24*time.Hour)
				if err != nil {
					return err
				}
			}
			// Day 4: zero-day on the mob's product.
			err := e.Disclose(vuln.Vulnerability{
				ID: "CVE-FLASH-0001", Class: config.ClassOperatingSystem,
				Product: "ubuntu", Version: "22.04",
				Disclosed: 4 * day, PatchAt: 4*day + 36*time.Hour, Severity: 0.9,
			})
			if err != nil {
				return err
			}
			// Day 5: three quarters of the mob leaves over six hours.
			for i := 0; i < 30; i++ {
				err := e.LeaveAt(5*day+time.Duration(i)*12*time.Minute,
					registry.ReplicaID(fmt.Sprintf("mob-%02d", i)))
				if err != nil {
					return err
				}
			}
			// Daily probes with a two-exploit budget.
			for d := 1; d <= 9; d++ {
				if err := e.ProbeAt(time.Duration(d)*day, adversary.ExploitStrategy{Budget: 2}); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// monocultureDrift: a balanced fleet slowly migrates to one fashionable
// product version; entropy decays monotonically until a disclosure on the
// dominant product shows what the drift cost. The paper's "software
// monoculture" failure mode as a timeline.
func monocultureDrift() Def {
	return Def{
		Name:    "monoculture-drift",
		Title:   "gradual migration to one product erodes entropy until a disclosure lands",
		Tags:    []string{"churn", "migration", "vuln"},
		Horizon: 30 * day,
		Tick:    day,
		Setup: func(e *Engine) error {
			// 40 replicas, 8 per OS.
			for i := 0; i < 40; i++ {
				os := libraryOSes[i%len(libraryOSes)]
				err := e.JoinAt(0,
					registry.ReplicaID(fmt.Sprintf("r-%02d", i)),
					osCfg(os.name, os.version),
					10,
					time.Duration(i%3)*day)
				if err != nil {
					return err
				}
			}
			// One migration to linux-lts every 12 hours: 30 of 40 drift.
			for i := 0; i < 30; i++ {
				err := e.MigrateAt(12*time.Hour+time.Duration(i)*12*time.Hour,
					registry.ReplicaID(fmt.Sprintf("r-%02d", i)),
					osCfg("linux-lts", "6.1"))
				if err != nil {
					return err
				}
			}
			// Day 21: the fashionable product turns out vulnerable.
			err := e.Disclose(vuln.Vulnerability{
				ID: "CVE-DRIFT-0001", Class: config.ClassOperatingSystem,
				Product: "linux-lts", Version: "6.1",
				Disclosed: 21 * day, PatchAt: 23 * day, Severity: 1,
			})
			if err != nil {
				return err
			}
			for d := 2; d <= 28; d += 2 {
				if err := e.ProbeAt(time.Duration(d)*day, adversary.ExploitStrategy{Budget: 1}); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// zeroDayUnderPartition: a partition silences the fleet's most
// diversity-carrying island exactly when a zero-day lands on the majority
// side — the compound failure the paper's availability/safety trade-off
// warns about.
func zeroDayUnderPartition() Def {
	return Def{
		Name:    "zero-day-under-partition",
		Title:   "partition removes a diverse island while a zero-day hits the majority",
		Tags:    []string{"partition", "vuln"},
		Horizon: 7 * day,
		Tick:    6 * time.Hour,
		Setup: func(e *Engine) error {
			oses := []struct{ name, version string }{
				{"ubuntu", "22.04"}, {"freebsd", "13.2"}, {"openbsd", "7.3"},
			}
			for i := 0; i < 24; i++ {
				os := oses[i/8]
				err := e.JoinAt(0,
					registry.ReplicaID(fmt.Sprintf("%s-%02d", os.name, i%8)),
					osCfg(os.name, os.version),
					float64(8+i%5),
					12*time.Hour)
				if err != nil {
					return err
				}
			}
			// Day 2: the openbsd island is cut off.
			island := make([]registry.ReplicaID, 8)
			for i := range island {
				island[i] = registry.ReplicaID(fmt.Sprintf("openbsd-%02d", i))
			}
			if err := e.PartitionAt(2*day, island...); err != nil {
				return err
			}
			// Six hours later: zero-day on the majority product.
			err := e.Disclose(vuln.Vulnerability{
				ID: "CVE-PART-0001", Class: config.ClassOperatingSystem,
				Product: "ubuntu", Version: "22.04",
				Disclosed: 2*day + 6*time.Hour, PatchAt: 3 * day, Severity: 1,
			})
			if err != nil {
				return err
			}
			// Day 4: heal; the island votes again.
			if err := e.HealAt(4 * day); err != nil {
				return err
			}
			for h := 12; h <= 156; h += 12 {
				if err := e.ProbeAt(time.Duration(h)*time.Hour, adversary.ExploitStrategy{Budget: 1}); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// staggeredPatchRace: everyone shares one vulnerable crypto library;
// after disclosure, rollout waves migrate the fleet to the fixed version
// while per-replica patch latencies keep stragglers exposed — the race
// between patch adoption and the exploit window (Remark 1).
func staggeredPatchRace() Def {
	return Def{
		Name:    "staggered-patch-race",
		Title:   "patch rollout waves race the exploit window on a shared crypto library",
		Tags:    []string{"vuln", "migration"},
		Horizon: 14 * day,
		Tick:    12 * time.Hour,
		Setup: func(e *Engine) error {
			for i := 0; i < 30; i++ {
				os := libraryOSes[i%len(libraryOSes)]
				err := e.JoinAt(time.Duration(i)*time.Minute,
					registry.ReplicaID(fmt.Sprintf("r-%02d", i)),
					osCryptoCfg(os.name, os.version, "openssl", "3.0.8"),
					float64(6+i%7),
					time.Duration(i%7)*12*time.Hour)
				if err != nil {
					return err
				}
			}
			err := e.Disclose(vuln.Vulnerability{
				ID: "CVE-RACE-0001", Class: config.ClassCryptoLibrary,
				Product: "openssl", Version: "3.0.8",
				Disclosed: 2 * day, PatchAt: 4 * day, Severity: 1,
			})
			if err != nil {
				return err
			}
			// Three rollout waves of ten replicas, 36h apart, migrating to
			// the fixed library build.
			for wave := 0; wave < 3; wave++ {
				for i := 0; i < 10; i++ {
					idx := wave*10 + i
					os := libraryOSes[idx%len(libraryOSes)]
					err := e.MigrateAt(4*day+time.Duration(wave)*36*time.Hour+time.Duration(i)*30*time.Minute,
						registry.ReplicaID(fmt.Sprintf("r-%02d", idx)),
						osCryptoCfg(os.name, os.version, "openssl", "3.0.9"))
					if err != nil {
						return err
					}
				}
			}
			for d := 1; d <= 13; d++ {
				if err := e.ProbeAt(time.Duration(d)*day, adversary.ExploitStrategy{Budget: 1}); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// adaptiveAdversary: a rational adversary replans every two days against
// a fleet with one declining whale and a rolling series of disclosures,
// switching between exploiting monoculture and bribing operators as the
// power distribution drifts.
func adaptiveAdversary() Def {
	return Def{
		Name:    "adaptive-adversary",
		Title:   "adversary replans between exploits and bribery as power and CVEs drift",
		Tags:    []string{"adversary", "vuln", "churn"},
		Horizon: 21 * day,
		Tick:    day,
		Setup: func(e *Engine) error {
			for i := 0; i < 36; i++ {
				os := libraryOSes[i%len(libraryOSes)]
				power := float64(5 + i%8)
				if i == 0 {
					power = 40 // the whale
				}
				err := e.JoinAt(0,
					registry.ReplicaID(fmt.Sprintf("r-%02d", i)),
					osCfg(os.name, os.version),
					power,
					time.Duration(i%4)*day)
				if err != nil {
					return err
				}
			}
			// A rolling disclosure series across the five products.
			cves := []struct {
				product   string
				version   string
				disclosed time.Duration
				patch     time.Duration
				severity  float64
			}{
				{"ubuntu", "22.04", 3 * day, 5 * day, 0.8},
				{"debian", "12", 7 * day, 9 * day, 1},
				{"fedora", "38", 11 * day, 14 * day, 0.6},
				{"freebsd", "13.2", 15 * day, 16 * day, 1},
				{"openbsd", "7.3", 18 * day, 20 * day, 0.9},
			}
			for i, c := range cves {
				err := e.Disclose(vuln.Vulnerability{
					ID:    vuln.ID(fmt.Sprintf("CVE-ADPT-%04d", i+1)),
					Class: config.ClassOperatingSystem, Product: c.product, Version: c.version,
					Disclosed: c.disclosed, PatchAt: c.patch, Severity: c.severity,
				})
				if err != nil {
					return err
				}
			}
			// The whale's power drains into the tail.
			if err := e.SetPowerAt(6*day, "r-00", 25); err != nil {
				return err
			}
			if err := e.SetPowerAt(12*day, "r-00", 12); err != nil {
				return err
			}
			strategy := adversary.AdaptiveStrategy{Strategies: []adversary.Strategy{
				adversary.ExploitStrategy{Budget: 2},
				adversary.CorruptionStrategy{Budget: 3},
			}}
			for d := 2; d <= 20; d += 2 {
				if err := e.ProbeAt(time.Duration(d)*day, strategy); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// committeeRotation: diversity-aware committee selection runs on a
// churning population; each rotation records the committee's entropy next
// to the population's, showing the selector holding committee diversity
// while the population drifts.
func committeeRotation() Def {
	return Def{
		Name:    "committee-rotation",
		Title:   "diversity-aware committee re-selection over a churning population",
		Tags:    []string{"committee", "churn", "vuln"},
		Horizon: 12 * day,
		Tick:    day,
		Setup: func(e *Engine) error {
			oses := []struct{ name, version string }{
				{"ubuntu", "22.04"}, {"debian", "12"}, {"fedora", "38"}, {"freebsd", "13.2"},
				{"openbsd", "7.3"}, {"windows-server", "2022"}, {"linux-lts", "6.1"}, {"alpine", "3.18"},
			}
			for i := 0; i < 40; i++ {
				os := oses[i%len(oses)]
				err := e.JoinAt(0,
					registry.ReplicaID(fmt.Sprintf("r-%02d", i)),
					osCfg(os.name, os.version),
					float64(4+(i*5)%11),
					day)
				if err != nil {
					return err
				}
			}
			// Daily churn: one join (random config), one leave (oldest
			// founding member still around).
			for d := 1; d <= 11; d++ {
				d := d
				err := e.At(time.Duration(d)*day-time.Hour, "join", func(e *Engine) (string, error) {
					os := oses[e.Rand().Intn(len(oses))]
					id := registry.ReplicaID(fmt.Sprintf("late-%02d", d))
					if err := e.Registry().JoinDeclared(id, osCfg(os.name, os.version), float64(4+e.Rand().Intn(8)), day); err != nil {
						return "", err
					}
					return fmt.Sprintf("%s cfg=%s", id, os.name), nil
				})
				if err != nil {
					return err
				}
				err = e.LeaveAt(time.Duration(d)*day-30*time.Minute,
					registry.ReplicaID(fmt.Sprintf("r-%02d", d-1)))
				if err != nil {
					return err
				}
			}
			// Mid-run disclosure on one founding product.
			err := e.Disclose(vuln.Vulnerability{
				ID: "CVE-ROTA-0001", Class: config.ClassOperatingSystem,
				Product: "fedora", Version: "38",
				Disclosed: 6 * day, PatchAt: 8 * day, Severity: 1,
			})
			if err != nil {
				return err
			}
			// Rotation every two days: diversity-aware selection of ten.
			for d := 0; d <= 10; d += 2 {
				err := e.At(time.Duration(d)*day+time.Hour, "rotate", func(e *Engine) (string, error) {
					records := e.Registry().Records()
					candidates := make([]committee.Candidate, len(records))
					for i, rec := range records {
						candidates[i] = committee.Candidate{
							ID:          string(rec.ID),
							Stake:       rec.Power,
							ConfigLabel: rec.Config.Digest().Short(),
						}
					}
					selected, err := committee.SelectDiverse(candidates, 10)
					if err != nil {
						return "", err
					}
					members := make([]diversity.Member, len(selected))
					for i, c := range selected {
						members[i] = diversity.Member{Label: c.ConfigLabel, Power: c.Stake}
					}
					pop, err := diversity.NewPopulation(members)
					if err != nil {
						return "", err
					}
					rep, err := diversity.ReportForPopulation(pop)
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("k=10 committee entropy=%.3fb effective-configs=%.2f", rep.Entropy, rep.EffectiveConfigurations), nil
				})
				if err != nil {
					return err
				}
			}
			return nil
		},
	}
}
