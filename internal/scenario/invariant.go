package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/registry"
	"repro/internal/vuln"
)

// Invariants are properties every trace is supposed to satisfy — the
// checks the generative sweep applies to thousands of machine-written
// timelines the library's hand-written tests would never think of. A
// violation is not an error: the run completed; the trace just witnesses
// a property failure, and the shrinker turns that witness into a minimal
// timeline.

// compEps absorbs float summation-order noise when comparing two
// compromised-power fractions that are mathematically ordered but computed
// by different summations.
const compEps = 1e-9

// Violation is one invariant failure, pinned to the trace record that
// witnessed it.
type Violation struct {
	Invariant string `json:"invariant"`
	Scenario  string `json:"scenario"`
	Seq       uint64 `json:"seq"`
	T         string `json:"t,omitempty"`
	Detail    string `json:"detail"`
}

// InvariantObserver is a run-time invariant hook: it watches the run like
// any Observer and reports the violations it collected afterwards. Run-time
// observation is for properties that need the engine's internal state (the
// oracle cross-check needs the registry snapshot and catalog at each
// instant); trace-only properties use a post-run Check instead.
type InvariantObserver interface {
	Observer
	Violations() []Violation
}

// Invariant is one named property. Check inspects the completed run (may be
// nil); NewObserver builds a fresh run-time observer per run (may be nil).
// At least one of the two must be set.
type Invariant struct {
	Name string
	Desc string
	// Check inspects the completed trace.
	Check func(res *Result) []Violation
	// NewObserver returns a fresh per-run observer whose collected
	// violations are appended after the run.
	NewObserver func() InvariantObserver
}

// DefaultInvariants returns the properties expected to hold on every
// scenario the trusted generator profiles emit — the sweep's acceptance
// bar. Order is fixed; violation output is deterministic.
func DefaultInvariants() []Invariant {
	return []Invariant{SafeConsistency(), WorstDominates(), PatchMonotone(), OracleAgreement(), ViewLiveness()}
}

// InvariantByName resolves an invariant by name, covering the defaults
// (which include view-liveness) plus never-unsafe (the shrink demo target,
// deliberately not in the defaults: plenty of legitimate scenarios breach
// the threshold).
func InvariantByName(name string) (Invariant, bool) {
	for _, inv := range append(DefaultInvariants(), NeverUnsafe()) {
		if inv.Name == name {
			return inv, true
		}
	}
	return Invariant{}, false
}

// violate builds one violation from a record.
func violate(name string, res *Result, rec Record, format string, args ...any) Violation {
	return Violation{
		Invariant: name,
		Scenario:  res.Name,
		Seq:       rec.Seq,
		T:         rec.T,
		Detail:    fmt.Sprintf(format, args...),
	}
}

// SafeConsistency: a record's Safe flag must equal the threshold test on
// its own compromised fraction — the trace cannot contradict itself about
// the safety condition it claims to have evaluated.
func SafeConsistency() Invariant {
	name := "safe-consistency"
	return Invariant{
		Name: name,
		Desc: "Safe == (assessed fraction <= substrate tolerance) on every record",
		Check: func(res *Result) []Violation {
			var out []Violation
			for _, rec := range res.Records {
				if want := res.Threshold >= rec.Compromised; rec.Safe != want {
					out = append(out, violate(name, res, rec,
						"safe=%t but compromised=%g vs threshold=%g", rec.Safe, rec.Compromised, res.Threshold))
				}
			}
			return out
		},
	}
}

// WorstDominates: the predicted worst window dominates the instantaneous
// assessment — its fraction is at least the current one, it lies inside the
// horizon, and a record cannot be unsafe now while claiming the worst
// window is safe.
func WorstDominates() Invariant {
	name := "worst-dominates"
	return Invariant{
		Name: name,
		Desc: "worst-window fraction >= instantaneous fraction, inside the horizon",
		Check: func(res *Result) []Violation {
			var out []Violation
			for _, rec := range res.Records {
				if rec.WorstFraction+compEps < rec.Compromised {
					out = append(out, violate(name, res, rec,
						"worst window %g below instantaneous %g", rec.WorstFraction, rec.Compromised))
				}
				if !rec.Safe && rec.WorstSafe {
					out = append(out, violate(name, res, rec,
						"record unsafe (Σf=%g) but worst window claims safe", rec.Compromised))
				}
				if rec.WorstAtNanos < 0 || rec.WorstAtNanos > int64(res.Horizon) {
					out = append(out, violate(name, res, rec,
						"worst window at %v outside horizon %v", time.Duration(rec.WorstAtNanos), res.Horizon))
				}
			}
			return out
		},
	}
}

// pureEvents are record kinds that mutate neither membership nor catalog:
// between such a record and its predecessor only virtual time passed.
var pureEvents = map[string]bool{"tick": true, "patch": true, "probe": true, "final": true}

// patchMonotoneObserver tracks consecutive assessments and flags exposure
// rising across pure time passage.
//
// The check is gated on an all-severity-1 catalog — and that gate is load-
// bearing, not cautious. At severity 1 a vulnerability compromises every
// affected replica with an open window, so per-replica window closures
// strictly shrink each vulnerability's take set and the deduplicated union
// is monotone. At severity s < 1 the take is the top-⌈s·m⌉ replicas by
// power among the m still-open ones; one replica's window closing shifts
// that top-k set onto different replicas, and the union across several
// vulnerabilities can legitimately GROW with no event in between. The gate
// needs the catalog, which is why this invariant observes the run instead
// of checking the trace.
type patchMonotoneObserver struct {
	prevComp   float64
	prevEvent  string
	violations []Violation
}

func (o *patchMonotoneObserver) AfterEvent(e *Engine, info EventInfo, rec *Record) error {
	defer func() { o.prevComp, o.prevEvent = rec.Compromised, rec.Event }()
	if o.prevEvent == "" || !pureEvents[rec.Event] {
		return nil
	}
	for _, v := range e.Catalog().All() {
		if v.Severity != 1 {
			return nil
		}
	}
	if rec.Compromised > o.prevComp+compEps {
		o.violations = append(o.violations, Violation{
			Invariant: "patch-monotone",
			Scenario:  rec.Scenario,
			Seq:       rec.Seq,
			T:         rec.T,
			Detail: fmt.Sprintf("exposure rose %g -> %g across %q with no state change",
				o.prevComp, rec.Compromised, rec.Event),
		})
	}
	return nil
}

func (o *patchMonotoneObserver) Violations() []Violation { return o.violations }

// PatchMonotone: between two consecutive records where the second is pure
// time passage (tick, patch-ship marker, probe, final) nothing touches the
// membership or the catalog, so exposure can only fall as patch windows
// close — never rise. Only checked while every disclosed vulnerability has
// severity 1; below that, top-k take-set shifts make rising exposure
// legitimate (see patchMonotoneObserver).
func PatchMonotone() Invariant {
	return Invariant{
		Name:        "patch-monotone",
		Desc:        "exposure is non-increasing across pure time passage (severity-1 catalogs)",
		NewObserver: func() InvariantObserver { return &patchMonotoneObserver{} },
	}
}

// oracleEvery samples every Nth record for the oracle cross-check; the flat
// injection is O(replicas x vulns) so checking every record would dominate
// sweep time on churn-heavy timelines.
const oracleEvery = 4

// oracleObserver cross-checks the monitor's incremental assessment against
// the flat oracle at sampled instants.
type oracleObserver struct {
	violations []Violation
}

func (o *oracleObserver) AfterEvent(e *Engine, info EventInfo, rec *Record) error {
	if rec.Seq%oracleEvery != 0 {
		return nil
	}
	now := time.Duration(rec.TNanos)
	snap, err := e.Registry().Snapshot(registry.DefaultWeighting)
	if err != nil {
		return err
	}
	flat, err := vuln.Inject(e.Catalog(), snap.Replicas(), now)
	if err != nil {
		return err
	}
	add := func(format string, args ...any) {
		o.violations = append(o.violations, Violation{
			Invariant: "oracle-agreement",
			Scenario:  rec.Scenario,
			Seq:       rec.Seq,
			T:         rec.T,
			Detail:    fmt.Sprintf(format, args...),
		})
	}
	// The trace's compromised fraction came through the monitor's long-lived
	// incremental GroupInjector; the flat rescan is the oracle it must match
	// exactly (the incremental path guarantees byte-equality, not just
	// closeness).
	if rec.Power > 0 && rec.Compromised != flat.TotalFraction {
		add("incremental fraction %g != flat oracle %g", rec.Compromised, flat.TotalFraction)
	}
	// A GroupInjector built fresh from the same snapshot must agree with the
	// flat path fault for fault.
	gi, err := vuln.NewGroupInjector(e.Catalog(), snap.BucketSpecs())
	if err != nil {
		return err
	}
	grouped := gi.Inject(now)
	fj, err := json.Marshal(flat)
	if err != nil {
		return err
	}
	gj, err := json.Marshal(grouped)
	if err != nil {
		return err
	}
	if string(fj) != string(gj) {
		add("group decomposition diverges from flat oracle: %s != %s", gj, fj)
	}
	return nil
}

func (o *oracleObserver) Violations() []Violation { return o.violations }

// OracleAgreement: the incremental injection path (GroupInjector fed by
// snapshot diffs) agrees with the flat per-replica rescan — the oracle — at
// sampled instants, both in the trace's fraction and in the full fault-set
// JSON.
func OracleAgreement() Invariant {
	return Invariant{
		Name:        "oracle-agreement",
		Desc:        "incremental injection equals the flat oracle at sampled instants",
		NewObserver: func() InvariantObserver { return &oracleObserver{} },
	}
}

// ViewLiveness: once a rotation-enabled live cluster is up (the live-start
// record advertises its view timeout), no liveness probe may observe a
// stall the view-aware model said could not happen — a crashed or muted
// primary is supposed to cost at most a bounded run of view changes, not
// liveness. Stalls the model *predicted* (quorum lost to partitions,
// crashes or a silence attack) are fine, as is the reverse direction (an
// unpredicted commit), which stays a plain divergence. Vacuous for
// analytic-only runs and for fixed-primary clusters.
func ViewLiveness() Invariant {
	name := "view-liveness"
	return Invariant{
		Name: name,
		Desc: "under rotation, no probe stalls when the view-aware model predicted liveness",
		Check: func(res *Result) []Violation {
			rotation := false
			var out []Violation
			for _, rec := range res.Records {
				if rec.Event == "live-start" && strings.Contains(rec.Detail, "view-timeout=") {
					rotation = true
				}
				if !rotation || rec.Check != "liveness" {
					continue
				}
				if strings.Contains(rec.CheckDetail, "predicted=true observed=false") {
					out = append(out, violate(name, res, rec,
						"probe stalled despite predicted liveness under rotation: %s (view=%d changes=%d)",
						rec.CheckDetail, rec.LiveView, rec.ViewChanges))
				}
			}
			return out
		},
	}
}

// NeverUnsafe: no record breaches the safety threshold. Real scenarios
// breach it all the time — that is the point of the paper — so this is not
// a default invariant; it is the canonical shrink target: "find me the
// minimal timeline that breaks safety".
func NeverUnsafe() Invariant {
	name := "never-unsafe"
	return Invariant{
		Name: name,
		Desc: "no record breaches the safety threshold",
		Check: func(res *Result) []Violation {
			var out []Violation
			for _, rec := range res.Records {
				if !rec.Safe {
					out = append(out, violate(name, res, rec,
						"unsafe at %s: Σf=%g > threshold %g", rec.T, rec.Compromised, res.Threshold))
				}
			}
			return out
		},
	}
}

// CheckRun runs one scenario and applies the invariants: run-time observers
// are attached before the run, post-run checks after. Violations come back
// in invariant order, record order within each — deterministic for a
// deterministic run. The run error (if any) is returned with a nil result;
// a violating run is NOT an error.
func CheckRun(def Def, baseSeed int64, invs []Invariant, opts ...RunOpt) (*Result, []Violation, error) {
	observers := make([]InvariantObserver, len(invs))
	runOpts := append([]RunOpt(nil), opts...)
	for i, inv := range invs {
		if inv.NewObserver == nil {
			continue
		}
		observers[i] = inv.NewObserver()
		runOpts = append(runOpts, WithObserver(observers[i]))
	}
	res, err := Run(def, baseSeed, runOpts...)
	if err != nil {
		return nil, nil, err
	}
	var violations []Violation
	for i, inv := range invs {
		if observers[i] != nil {
			violations = append(violations, observers[i].Violations()...)
		}
		if inv.Check != nil {
			violations = append(violations, inv.Check(res)...)
		}
	}
	return res, violations, nil
}
