package scenario

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/adversary"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/vuln"
)

// Engine hosts one scenario run: a sim scheduler owning virtual time, a
// registry and vulnerability catalog mutated only from scheduled events,
// and a monitor assessed inline after every event. Scenario Setup hooks
// program the timeline through the *At helpers; Run executes it and
// collects the trace.
//
// Everything happens on the scheduler's goroutine in (time, scheduling
// order), so a run is a pure function of (Def, seed): no wall clock, no
// goroutine interleaving, no map-order dependence anywhere on the path to
// the trace bytes.
type Engine struct {
	def     Def
	seed    int64
	sched   *sim.Scheduler
	reg     *registry.Registry
	catalog *vuln.Catalog
	mon     *core.Monitor

	seq       uint64
	records   []Record
	runErr    error
	observers []Observer

	// parked holds the pre-partition power of replicas currently cut off
	// by PartitionAt, so HealAt can restore it. crashed does the same for
	// CrashAt/RestoreAt; the two faults are mutually exclusive per replica.
	parked  map[registry.ReplicaID]parkedPower
	crashed map[registry.ReplicaID]parkedPower
	// links tracks currently degraded replica pairs (DegradeAt), so
	// RestoreLinkAt can reject restoring a link that was never degraded.
	links map[linkPair]LinkFault
}

// LinkFault describes a degraded link between two replicas: the scenario
// grammar's mirror of simnet.Fault, kept separate so the analytic engine
// does not depend on the wire package.
type LinkFault struct {
	Drop         float64       // extra per-message loss probability, [0, 1)
	ExtraLatency time.Duration // constant added delay
	Jitter       time.Duration // uniform random added delay in [0, Jitter]
	Duplicate    float64       // probability of a second delivery, [0, 1]
	Reorder      float64       // probability of a hold-back, [0, 1]
}

// Validate applies the same domain rules as simnet.Fault.Validate.
func (f LinkFault) Validate() error {
	if f.Drop < 0 || f.Drop >= 1 {
		return fmt.Errorf("scenario: link fault drop %v out of [0,1)", f.Drop)
	}
	if f.ExtraLatency < 0 {
		return fmt.Errorf("scenario: negative link fault extra latency %v", f.ExtraLatency)
	}
	if f.Jitter < 0 {
		return fmt.Errorf("scenario: negative link fault jitter %v", f.Jitter)
	}
	if f.Duplicate < 0 || f.Duplicate > 1 {
		return fmt.Errorf("scenario: link fault duplicate %v out of [0,1]", f.Duplicate)
	}
	if f.Reorder < 0 || f.Reorder > 1 {
		return fmt.Errorf("scenario: link fault reorder %v out of [0,1]", f.Reorder)
	}
	return nil
}

// String renders the non-zero fault parameters for trace details.
func (f LinkFault) String() string {
	s := ""
	if f.Drop > 0 {
		s += fmt.Sprintf(" drop=%s", fmtPower(f.Drop))
	}
	if f.ExtraLatency > 0 {
		s += fmt.Sprintf(" extra=%v", f.ExtraLatency)
	}
	if f.Jitter > 0 {
		s += fmt.Sprintf(" jitter=%v", f.Jitter)
	}
	if f.Duplicate > 0 {
		s += fmt.Sprintf(" dup=%s", fmtPower(f.Duplicate))
	}
	if f.Reorder > 0 {
		s += fmt.Sprintf(" reorder=%s", fmtPower(f.Reorder))
	}
	if s == "" {
		return "clean"
	}
	return s[1:]
}

// linkPair is an unordered replica pair (degradations are symmetric).
type linkPair struct{ a, b registry.ReplicaID }

func linkPairOf(a, b registry.ReplicaID) linkPair {
	if b < a {
		a, b = b, a
	}
	return linkPair{a: a, b: b}
}

// EventInfo is the structured description of an event handed to observers
// alongside the trace record: the event kind plus the replicas (and, for
// disclosures, the vulnerability; for degradations, the link fault) it
// touched. Detail strings are for humans; observers key off this.
type EventInfo struct {
	Kind string
	IDs  []registry.ReplicaID
	Vuln *vuln.Vulnerability
	// Fault is the link fault for "degrade" events; IDs holds its two
	// endpoints. Nil for every other kind (including "restore-link",
	// where IDs alone identify the healed link).
	Fault *LinkFault
}

// Observer is called after every event's assessment, before the record is
// appended to the trace. Observers may annotate the record (the live loop
// writes its cross-check and recovery-span fields this way); an error
// aborts the run. Observers run in registration order on the scheduler
// goroutine.
type Observer interface {
	AfterEvent(e *Engine, info EventInfo, rec *Record) error
}

// Observe registers an observer for the rest of the run.
func (e *Engine) Observe(o Observer) {
	if o != nil {
		e.observers = append(e.observers, o)
	}
}

// parkedPower remembers one partitioned replica's pre-partition power and
// when the partition took it. A record whose JoinedAt is later than `at`
// is a new incarnation of the id (left and re-joined mid-partition) and
// must not inherit the dead incarnation's power.
type parkedPower struct {
	power float64
	at    time.Duration
}

// newEngine assembles the run state for one scenario at one derived seed.
func newEngine(def Def, seed int64) (*Engine, error) {
	sched := sim.NewScheduler(seed)
	reg := registry.New(nil, sched.Now)
	catalog := vuln.NewCatalog()
	mon, err := core.NewMonitor(reg,
		core.WithCatalog(catalog),
		core.WithClock(sched.Now),
	)
	if err != nil {
		return nil, err
	}
	return &Engine{
		def:     def,
		seed:    seed,
		sched:   sched,
		reg:     reg,
		catalog: catalog,
		mon:     mon,
		parked:  make(map[registry.ReplicaID]parkedPower),
		crashed: make(map[registry.ReplicaID]parkedPower),
		links:   make(map[linkPair]LinkFault),
	}, nil
}

// Def returns the definition this engine is running — observers use it to
// read run-level configuration such as a timeline's LiveSpec.
func (e *Engine) Def() Def { return e.def }

// Scheduler exposes the run's scheduler (virtual clock, deterministic RNG).
func (e *Engine) Scheduler() *sim.Scheduler { return e.sched }

// Rand is the run's seeded RNG; scenario code must draw all randomness
// from it to stay replayable.
func (e *Engine) Rand() *rand.Rand { return e.sched.Rand() }

// Registry exposes the membership under assessment. Mutate it only
// through the *At helpers so mutations land in the trace.
func (e *Engine) Registry() *registry.Registry { return e.reg }

// Catalog exposes the vulnerability catalog; populate it via Disclose.
func (e *Engine) Catalog() *vuln.Catalog { return e.catalog }

// Monitor exposes the assessing monitor (BFT substrate, default
// weighting).
func (e *Engine) Monitor() *core.Monitor { return e.mon }

// Horizon returns the scenario's virtual end time.
func (e *Engine) Horizon() time.Duration { return e.def.Horizon }

// fail latches the first event error and stops the run.
func (e *Engine) fail(err error) {
	if e.runErr == nil {
		e.runErr = err
		e.sched.Stop()
	}
}

// At schedules a custom event at virtual time t: fn runs, and its detail
// string lands in a trace record of the given kind together with the
// post-event assessment. fn returning an error aborts the run. Scheduling
// from within a running event is allowed for t >= now, which is how the
// live loop injects its reactions.
func (e *Engine) At(t time.Duration, event string, fn func(e *Engine) (detail string, err error)) error {
	if fn == nil {
		return errors.New("scenario: nil event func")
	}
	return e.atEvent(t, event, func(e *Engine) (string, EventInfo, error) {
		detail, err := fn(e)
		return detail, EventInfo{Kind: event}, err
	})
}

// atEvent is At with a structured EventInfo returned by the callback, used
// by the *At helpers so observers see which replicas an event touched.
func (e *Engine) atEvent(t time.Duration, event string, fn func(e *Engine) (string, EventInfo, error)) error {
	_, err := e.sched.At(t, event, func() {
		if e.runErr != nil {
			return
		}
		detail, info, err := fn(e)
		if err != nil {
			e.fail(fmt.Errorf("%s at %v: %w", event, e.sched.Now(), err))
			return
		}
		if err := e.emit(event, detail, nil, info); err != nil {
			e.fail(err)
		}
	})
	return err
}

// fmtPower renders voting power for trace details.
func fmtPower(p float64) string { return strconv.FormatFloat(p, 'g', -1, 64) }

// JoinAt schedules a declared join.
func (e *Engine) JoinAt(t time.Duration, id registry.ReplicaID, cfg config.Configuration, power float64, patchLatency time.Duration) error {
	return e.atEvent(t, "join", func(*Engine) (string, EventInfo, error) {
		info := EventInfo{Kind: "join", IDs: []registry.ReplicaID{id}}
		if err := e.reg.JoinDeclared(id, cfg, power, patchLatency); err != nil {
			return "", info, err
		}
		return fmt.Sprintf("%s cfg=%s power=%s", id, cfg.Digest().Short(), fmtPower(power)), info, nil
	})
}

// LeaveAt schedules a leave. A replica leaving while partitioned forfeits
// its parked power — a later heal must not resurrect it.
func (e *Engine) LeaveAt(t time.Duration, id registry.ReplicaID) error {
	return e.atEvent(t, "leave", func(*Engine) (string, EventInfo, error) {
		info := EventInfo{Kind: "leave", IDs: []registry.ReplicaID{id}}
		if err := e.reg.Leave(id); err != nil {
			return "", info, err
		}
		delete(e.parked, id)
		delete(e.crashed, id)
		return string(id), info, nil
	})
}

// SetPowerAt schedules a power shift (hash-rate drift, stake movement).
// A shift landing on a partitioned replica applies to its parked power —
// the replica still cannot vote, but the new value is what HealAt
// restores, so a drift during the partition is not lost.
func (e *Engine) SetPowerAt(t time.Duration, id registry.ReplicaID, power float64) error {
	return e.atEvent(t, "power", func(*Engine) (string, EventInfo, error) {
		info := EventInfo{Kind: "power", IDs: []registry.ReplicaID{id}}
		rec, ok := e.reg.Get(id)
		if entry, parked := e.parked[id]; parked && ok && rec.JoinedAt <= entry.at {
			if power < 0 || math.IsNaN(power) || math.IsInf(power, 0) {
				return "", info, fmt.Errorf("invalid power %v", power)
			}
			e.parked[id] = parkedPower{power: power, at: entry.at}
			return fmt.Sprintf("%s power=%s (partitioned; applies at heal)", id, fmtPower(power)), info, nil
		}
		if entry, down := e.crashed[id]; down && ok && rec.JoinedAt <= entry.at {
			if power < 0 || math.IsNaN(power) || math.IsInf(power, 0) {
				return "", info, fmt.Errorf("invalid power %v", power)
			}
			e.crashed[id] = parkedPower{power: power, at: entry.at}
			return fmt.Sprintf("%s power=%s (crashed; applies at restore)", id, fmtPower(power)), info, nil
		}
		if err := e.reg.SetPower(id, power); err != nil {
			return "", info, err
		}
		return fmt.Sprintf("%s power=%s", id, fmtPower(power)), info, nil
	})
}

// MigrateAt schedules a product/version migration: the replica stays but
// its configuration changes (patch rollout waves are migrations to the
// fixed version).
func (e *Engine) MigrateAt(t time.Duration, id registry.ReplicaID, cfg config.Configuration) error {
	return e.atEvent(t, "migrate", func(*Engine) (string, EventInfo, error) {
		info := EventInfo{Kind: "migrate", IDs: []registry.ReplicaID{id}}
		if err := e.reg.Migrate(id, cfg); err != nil {
			return "", info, err
		}
		return fmt.Sprintf("%s cfg=%s", id, cfg.Digest().Short()), info, nil
	})
}

// Disclose schedules a vulnerability's lifecycle: the catalog learns it at
// its disclosure instant (a "disclose" record) and, when the patch ships
// inside the horizon, a "patch" marker record at PatchAt. Exploit-window
// effects per replica follow from patch latencies automatically.
func (e *Engine) Disclose(v vuln.Vulnerability) error {
	if err := v.Validate(); err != nil {
		return err
	}
	err := e.atEvent(v.Disclosed, "disclose", func(*Engine) (string, EventInfo, error) {
		info := EventInfo{Kind: "disclose", Vuln: &v}
		if err := e.catalog.Add(v); err != nil {
			return "", info, err
		}
		target := v.Product
		if v.Version != "" {
			target += "@" + v.Version
		}
		return fmt.Sprintf("%s %s/%s sev=%s patch=%v", v.ID, v.Class, target, fmtPower(v.Severity), v.PatchAt), info, nil
	})
	if err != nil {
		return err
	}
	if v.PatchAt > v.Disclosed && v.PatchAt <= e.def.Horizon {
		return e.At(v.PatchAt, "patch", func(*Engine) (string, error) {
			return fmt.Sprintf("%s patch ships; windows close per replica latency", v.ID), nil
		})
	}
	return nil
}

// PartitionAt schedules a network partition that cuts the given replicas
// off from consensus: their effective power drops to zero until HealAt
// restores it (a partitioned replica cannot vote, so from the safety
// condition's viewpoint its power is gone).
func (e *Engine) PartitionAt(t time.Duration, ids ...registry.ReplicaID) error {
	return e.atEvent(t, "partition", func(*Engine) (string, EventInfo, error) {
		info := EventInfo{Kind: "partition", IDs: ids}
		now := e.sched.Now()
		for _, id := range ids {
			rec, ok := e.reg.Get(id)
			if !ok {
				return "", info, fmt.Errorf("partition: unknown replica %s", id)
			}
			if entry, already := e.parked[id]; already && rec.JoinedAt <= entry.at {
				return "", info, fmt.Errorf("partition: replica %s already partitioned", id)
			}
			if entry, down := e.crashed[id]; down && rec.JoinedAt <= entry.at {
				return "", info, fmt.Errorf("partition: replica %s is crashed", id)
			}
			e.parked[id] = parkedPower{power: rec.Power, at: now}
			if err := e.reg.SetPower(id, 0); err != nil {
				return "", info, err
			}
		}
		return fmt.Sprintf("%d replicas cut off", len(ids)), info, nil
	})
}

// HealAt schedules the heal of a previous partition: every currently
// partitioned replica gets its pre-partition power back. A replica that
// left while partitioned is simply forgotten — its parked power must not
// survive into a later incarnation of the same id.
func (e *Engine) HealAt(t time.Duration) error {
	return e.atEvent(t, "heal", func(*Engine) (string, EventInfo, error) {
		ids := make([]registry.ReplicaID, 0, len(e.parked))
		for id := range e.parked {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		info := EventInfo{Kind: "heal"}
		n := 0
		for _, id := range ids {
			entry := e.parked[id]
			delete(e.parked, id)
			rec, ok := e.reg.Get(id)
			if !ok || rec.JoinedAt > entry.at {
				continue // left (and possibly re-joined) while partitioned
			}
			if err := e.reg.SetPower(id, entry.power); err != nil {
				return "", info, err
			}
			info.IDs = append(info.IDs, id)
			n++
		}
		return fmt.Sprintf("%d replicas rejoined", n), info, nil
	})
}

// CrashAt schedules a replica crash (or stall): like a partition, the
// replica's effective power drops to zero — it cannot vote — until
// RestoreAt brings it back. Crash and partition are mutually exclusive
// faults per replica so their parked powers cannot shadow each other.
func (e *Engine) CrashAt(t time.Duration, ids ...registry.ReplicaID) error {
	return e.atEvent(t, "crash", func(*Engine) (string, EventInfo, error) {
		info := EventInfo{Kind: "crash", IDs: ids}
		now := e.sched.Now()
		for _, id := range ids {
			rec, ok := e.reg.Get(id)
			if !ok {
				return "", info, fmt.Errorf("crash: unknown replica %s", id)
			}
			if entry, down := e.crashed[id]; down && rec.JoinedAt <= entry.at {
				return "", info, fmt.Errorf("crash: replica %s already crashed", id)
			}
			if entry, parked := e.parked[id]; parked && rec.JoinedAt <= entry.at {
				return "", info, fmt.Errorf("crash: replica %s is partitioned", id)
			}
			e.crashed[id] = parkedPower{power: rec.Power, at: now}
			if err := e.reg.SetPower(id, 0); err != nil {
				return "", info, err
			}
		}
		return fmt.Sprintf("%d replicas crashed", len(ids)), info, nil
	})
}

// RestoreAt schedules the restart of crashed replicas: the named ones (or
// every crashed replica when none are named) get their pre-crash power
// back. A replica that left while crashed stays gone.
func (e *Engine) RestoreAt(t time.Duration, ids ...registry.ReplicaID) error {
	return e.atEvent(t, "restore", func(*Engine) (string, EventInfo, error) {
		targets := ids
		if len(targets) == 0 {
			targets = make([]registry.ReplicaID, 0, len(e.crashed))
			for id := range e.crashed {
				targets = append(targets, id)
			}
			sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		}
		info := EventInfo{Kind: "restore"}
		n := 0
		for _, id := range targets {
			entry, down := e.crashed[id]
			if !down {
				return "", info, fmt.Errorf("restore: replica %s is not crashed", id)
			}
			delete(e.crashed, id)
			rec, ok := e.reg.Get(id)
			if !ok || rec.JoinedAt > entry.at {
				continue // left (and possibly re-joined) while crashed
			}
			if err := e.reg.SetPower(id, entry.power); err != nil {
				return "", info, err
			}
			info.IDs = append(info.IDs, id)
			n++
		}
		return fmt.Sprintf("%d replicas restored", n), info, nil
	})
}

// DegradeAt schedules a symmetric link degradation between two replicas:
// the wire between them becomes lossy, slow, jittery, duplicating or
// reordering per the fault model. Unlike partitions and crashes it has no
// analytic power effect — a degraded replica still votes; whether it votes
// in time is exactly what the live harness (which mirrors the fault onto
// simnet) measures. Degrading an already degraded link replaces its fault.
func (e *Engine) DegradeAt(t time.Duration, a, b registry.ReplicaID, f LinkFault) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("scenario: degrade needs two distinct replicas, got %s twice", a)
	}
	return e.atEvent(t, "degrade", func(*Engine) (string, EventInfo, error) {
		fault := f
		info := EventInfo{Kind: "degrade", IDs: []registry.ReplicaID{a, b}, Fault: &fault}
		for _, id := range []registry.ReplicaID{a, b} {
			if _, ok := e.reg.Get(id); !ok {
				return "", info, fmt.Errorf("degrade: unknown replica %s", id)
			}
		}
		e.links[linkPairOf(a, b)] = f
		return fmt.Sprintf("%s<->%s %s", a, b, f), info, nil
	})
}

// RestoreLinkAt schedules the repair of a previously degraded link: the
// wire between the two replicas is clean again. Restoring a link that was
// never degraded (or already restored) is an error, mirroring RestoreAt's
// strictness about crashed replicas.
func (e *Engine) RestoreLinkAt(t time.Duration, a, b registry.ReplicaID) error {
	if a == b {
		return fmt.Errorf("scenario: restore-link needs two distinct replicas, got %s twice", a)
	}
	return e.atEvent(t, "restore-link", func(*Engine) (string, EventInfo, error) {
		info := EventInfo{Kind: "restore-link", IDs: []registry.ReplicaID{a, b}}
		key := linkPairOf(a, b)
		if _, degraded := e.links[key]; !degraded {
			return "", info, fmt.Errorf("restore-link: link %s<->%s is not degraded", a, b)
		}
		delete(e.links, key)
		return fmt.Sprintf("%s<->%s clean", a, b), info, nil
	})
}

// ProbeAt schedules an adversary probe: the strategy re-plans its best
// attack against the membership and catalog as they stand at t, and the
// plan lands in the trace's adversary columns.
func (e *Engine) ProbeAt(t time.Duration, s adversary.Strategy) error {
	if s == nil {
		return errors.New("scenario: nil strategy")
	}
	_, err := e.sched.At(t, "probe", func() {
		if e.runErr != nil {
			return
		}
		snap, err := e.reg.Snapshot(registry.DefaultWeighting)
		if err != nil {
			e.fail(err)
			return
		}
		plan, err := s.Plan(adversary.Surface{
			At:        e.sched.Now(),
			Catalog:   e.catalog,
			Replicas:  snap.Replicas(),
			Members:   snap.Population().Members(),
			Threshold: e.mon.Threshold(),
		})
		if err != nil {
			e.fail(fmt.Errorf("probe at %v: %w", e.sched.Now(), err))
			return
		}
		if err := e.emit("probe", "", &plan, EventInfo{Kind: "probe"}); err != nil {
			e.fail(err)
		}
	})
	return err
}

// emit assesses the membership at the current instant and appends one
// trace record. A membership with no effective power (empty registry, or
// everyone partitioned) yields a structural record with zeroed metrics —
// there is nothing to assess and nothing to compromise. Observers run
// after the assessment and may annotate the record before it is appended.
func (e *Engine) emit(event, detail string, adv *adversary.Plan, info EventInfo) error {
	now := e.sched.Now()
	rec := Record{
		Seq:      e.seq,
		T:        now.String(),
		TNanos:   int64(now),
		Scenario: e.def.Name,
		Event:    event,
		Detail:   detail,
	}
	e.seq++
	snap, err := e.reg.Snapshot(registry.DefaultWeighting)
	if err != nil {
		return err
	}
	rec.Replicas = snap.NumReplicas()
	rec.Power = snap.Distribution.Total()
	rec.Configs = snap.Distribution.Support()
	if rec.Power > 0 {
		a, err := e.mon.Assess(now)
		if err != nil {
			return err
		}
		rec.Entropy = a.Diversity.Entropy
		rec.MaxShare = a.Diversity.MaxShare
		rec.Compromised = a.Injection.TotalFraction
		rec.Safe = a.Safe
		worst, err := e.mon.WorstAssessment(e.def.Horizon)
		if err != nil {
			return err
		}
		rec.WorstAtNanos = int64(worst.At)
		rec.WorstFraction = worst.Injection.TotalFraction
		rec.WorstSafe = worst.Safe
	} else {
		rec.Safe = true
		rec.WorstSafe = true
	}
	if adv != nil {
		rec.AdvStrategy = adv.Strategy
		rec.AdvDetail = adv.Detail
		rec.AdvFraction = adv.Fraction
		rec.AdvBreaks = adv.Breaks
	}
	for _, o := range e.observers {
		if err := o.AfterEvent(e, info, &rec); err != nil {
			return fmt.Errorf("observer: %s at %v: %w", event, now, err)
		}
	}
	e.records = append(e.records, rec)
	return nil
}

// Result is one completed scenario run.
type Result struct {
	// Name is the scenario name; Seed the derived scheduler seed the run
	// used (see DeriveSeed).
	Name string
	Seed int64
	// Records is the trace in emission order.
	Records []Record
	// Horizon and Threshold capture the run's frame for post-run checks:
	// the virtual duration and the substrate fault tolerance every Safe
	// flag in the trace was judged against (see invariant.go). Neither is
	// part of the trace encoding.
	Horizon   time.Duration
	Threshold float64
}

// Summary condenses the run.
func (r *Result) Summary() Summary {
	return Summarize(r.Name, r.Seed, r.Records)
}

// RunOpt is a functional option for Run, mirroring core.NewMonitor's
// options pattern — the one run entrypoint replaces the old
// Run/RunNamed pair.
type RunOpt func(*runConfig)

type runConfig struct {
	observers []Observer
	tick      time.Duration
}

// WithObserver registers an observer on the engine before Setup runs, so
// harnesses that need no scheduling of their own (the invariant oracle,
// trace probes) can watch any def — including data-first Timeline defs —
// without wrapping its Setup. Observers registered this way run before
// any the Setup hook adds.
func WithObserver(o Observer) RunOpt {
	return func(rc *runConfig) {
		if o != nil {
			rc.observers = append(rc.observers, o)
		}
	}
}

// WithTick overrides the def's assessment cadence for this run only —
// e.g. a sweep densifying ticks on a suspicious timeline without editing
// it. d <= 0 keeps the def's own cadence.
func WithTick(d time.Duration) RunOpt {
	return func(rc *runConfig) { rc.tick = d }
}

// Run executes one scenario at the given base seed and returns its trace.
// Identical (def, baseSeed, opts) always produce identical results, byte
// for byte through the JSON/CSV encodings.
func Run(def Def, baseSeed int64, opts ...RunOpt) (*Result, error) {
	var rc runConfig
	for _, opt := range opts {
		if opt != nil {
			opt(&rc)
		}
	}
	setup := def.setup()
	if setup == nil || def.Horizon <= 0 {
		return nil, fmt.Errorf("scenario: invalid definition %q", def.Name)
	}
	seed := DeriveSeed(baseSeed, def.Name)
	e, err := newEngine(def, seed)
	if err != nil {
		return nil, err
	}
	for _, o := range rc.observers {
		e.Observe(o)
	}
	if err := setup(e); err != nil {
		return nil, fmt.Errorf("scenario %s: setup: %w", def.Name, err)
	}
	tick := rc.tick
	if tick <= 0 {
		tick = def.Tick
	}
	if tick <= 0 {
		tick = def.Horizon / 24
	}
	if tick <= 0 {
		tick = def.Horizon
	}
	if _, err := e.sched.Every(0, tick, "tick", func() {
		if e.runErr != nil {
			return
		}
		if err := e.emit("tick", "", nil, EventInfo{Kind: "tick"}); err != nil {
			e.fail(err)
		}
	}); err != nil {
		return nil, err
	}
	if err := e.sched.Run(def.Horizon); err != nil && !errors.Is(err, sim.ErrStopped) {
		return nil, err
	}
	if e.runErr != nil {
		return nil, fmt.Errorf("scenario %s: %w", def.Name, e.runErr)
	}
	if err := e.emit("final", "", nil, EventInfo{Kind: "final"}); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", def.Name, err)
	}
	return &Result{
		Name: def.Name, Seed: seed, Records: e.records,
		Horizon: def.Horizon, Threshold: e.mon.Threshold(),
	}, nil
}
