package scenario

import (
	"os"
	"testing"
)

// TestMain registers a no-op live-attach hook: the real hook lives in
// internal/liveloop, which imports this package and cannot be imported
// back. With the stub, timelines carrying a Live spec run analytically —
// exactly what the generator and shrinker tests need; the live harness
// itself is exercised from internal/liveloop's own tests.
func TestMain(m *testing.M) {
	SetLiveAttach(func(e *Engine, spec *LiveSpec) error { return nil })
	os.Exit(m.Run())
}
