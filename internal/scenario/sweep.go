package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Sweep: run N generated timelines across the profiles, check every run
// against the invariants, and aggregate per-profile percentile statistics.
// Run i is timeline Profiles()[i%P].Generate(seed, i/P) — a pure address —
// and results land in indexed slots, so the report is byte-identical for
// every worker count. The report deliberately carries no wall-clock data:
// a committed BENCH_sweep.json regenerates bit-for-bit.

// SweepOptions configures one sweep.
type SweepOptions struct {
	// Profiles names the generator families to sweep (canonical order is
	// kept regardless of the order given); empty means all of them.
	Profiles []string
	// Runs is the total number of generated timelines across all profiles.
	Runs int
	// Seed is the base seed every generation and run derives from.
	Seed int64
	// Workers caps the worker pool; <= 0 uses GOMAXPROCS.
	Workers int
	// Invariants are the checks applied to every run; nil means
	// DefaultInvariants().
	Invariants []Invariant
}

// SweepRun is one generated run's outcome.
type SweepRun struct {
	Name        string      `json:"name"`
	Profile     string      `json:"profile"`
	Index       int         `json:"index"`
	Records     int         `json:"records"`
	Replicas    int         `json:"replicas"`
	MinEntropy  float64     `json:"min_entropy"`
	MaxComp     float64     `json:"max_compromised"`
	WorstWindow float64     `json:"worst_window"`
	Unsafe      int         `json:"unsafe_records"`
	Violations  []Violation `json:"violations,omitempty"`
}

// Percentiles condenses one metric across a profile's runs.
type Percentiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

func percentiles(xs []float64) Percentiles {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Percentiles{
		P50: metrics.Quantile(sorted, 0.50),
		P90: metrics.Quantile(sorted, 0.90),
		P99: metrics.Quantile(sorted, 0.99),
		Max: sorted[len(sorted)-1],
	}
}

// ProfileStats aggregates one profile's runs.
type ProfileStats struct {
	Profile     string      `json:"profile"`
	Runs        int         `json:"runs"`
	UnsafeRuns  int         `json:"unsafe_runs"`
	Violations  int         `json:"violations"`
	MaxComp     Percentiles `json:"max_compromised"`
	WorstWindow Percentiles `json:"worst_window"`
	MinEntropy  Percentiles `json:"min_entropy"`
}

// SweepReport is the aggregate a sweep emits (BENCH_sweep.json).
type SweepReport struct {
	Seed       int64          `json:"seed"`
	Runs       int            `json:"runs"`
	Profiles   []ProfileStats `json:"profiles"`
	Violating  []SweepRun     `json:"violating_runs,omitempty"`
	Invariants []string       `json:"invariants"`
}

// MarshalIndent renders the canonical report artifact.
func (r *SweepReport) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode sweep report: %w", err)
	}
	return append(b, '\n'), nil
}

// sweepProfiles resolves the option's profile selection in canonical order.
func sweepProfiles(names []string) ([]GenProfile, error) {
	if len(names) == 0 {
		return Profiles(), nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := LookupProfile(n); !ok {
			return nil, fmt.Errorf("scenario: unknown profile %q (have %v)", n, ProfileNames())
		}
		want[n] = true
	}
	var out []GenProfile
	for _, p := range Profiles() {
		if want[p.Name] {
			out = append(out, p)
		}
	}
	return out, nil
}

// Sweep generates and checks opts.Runs timelines and aggregates the
// report. The first run error aborts the sweep (generated timelines are
// expected to run clean; an error means a generator or engine bug, not a
// property violation).
func Sweep(ctx context.Context, opts SweepOptions) (*SweepReport, error) {
	if opts.Runs <= 0 {
		return nil, fmt.Errorf("scenario: non-positive sweep size %d", opts.Runs)
	}
	profiles, err := sweepProfiles(opts.Profiles)
	if err != nil {
		return nil, err
	}
	invs := opts.Invariants
	if invs == nil {
		invs = DefaultInvariants()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Runs {
		workers = opts.Runs
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	runs := make([]SweepRun, opts.Runs)
	errs := make([]error, opts.Runs)
	runOne := func(i int) error {
		p := profiles[i%len(profiles)]
		index := i / len(profiles)
		tl := p.Generate(opts.Seed, index)
		res, violations, err := CheckRun(tl.Def(), opts.Seed, invs)
		if err != nil {
			return fmt.Errorf("%s: %w", tl.Name, err)
		}
		s := res.Summary()
		worst := 0.0
		for _, rec := range res.Records {
			if rec.WorstFraction > worst {
				worst = rec.WorstFraction
			}
		}
		runs[i] = SweepRun{
			Name:        tl.Name,
			Profile:     p.Name,
			Index:       index,
			Records:     s.Records,
			Replicas:    s.FinalReplicas,
			MinEntropy:  s.MinEntropy,
			MaxComp:     s.MaxComp,
			WorstWindow: worst,
			Unsafe:      s.UnsafeRecords,
			Violations:  violations,
		}
		return nil
	}

	if workers <= 1 {
		for i := 0; i < opts.Runs; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := runOne(i); err != nil {
				return nil, err
			}
		}
	} else {
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= opts.Runs {
						return
					}
					if err := runOne(i); err != nil {
						errs[i] = err
						cancel()
					}
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			for _, e := range errs {
				if e != nil {
					return nil, e
				}
			}
			return nil, err
		}
	}

	// Serial aggregation in run order: identical for every worker count.
	report := &SweepReport{Seed: opts.Seed, Runs: opts.Runs}
	for _, inv := range invs {
		report.Invariants = append(report.Invariants, inv.Name)
	}
	for _, p := range profiles {
		var maxComp, worst, minEnt []float64
		stats := ProfileStats{Profile: p.Name}
		for _, r := range runs {
			if r.Profile != p.Name {
				continue
			}
			stats.Runs++
			if r.Unsafe > 0 {
				stats.UnsafeRuns++
			}
			stats.Violations += len(r.Violations)
			maxComp = append(maxComp, r.MaxComp)
			worst = append(worst, r.WorstWindow)
			minEnt = append(minEnt, r.MinEntropy)
			if len(r.Violations) > 0 {
				report.Violating = append(report.Violating, r)
			}
		}
		if stats.Runs > 0 {
			stats.MaxComp = percentiles(maxComp)
			stats.WorstWindow = percentiles(worst)
			stats.MinEntropy = percentiles(minEnt)
		}
		report.Profiles = append(report.Profiles, stats)
	}
	return report, nil
}
