package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenTimeline pins the committed replay artifact: it is exactly
// partition-flap #0 at seed 42 (so the generator cannot drift away from
// it silently), it round-trips byte-for-byte, and it runs clean under the
// default invariants. CI replays the same file through the CLI.
func TestGoldenTimeline(t *testing.T) {
	path := filepath.Join("testdata", "golden-timeline.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := ParseTimeline(data)
	if err != nil {
		t.Fatal(err)
	}
	remarshaled, err := tl.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, remarshaled) {
		t.Error("golden timeline does not round-trip byte-for-byte")
	}
	p, _ := LookupProfile("partition-flap")
	generated, err := p.Generate(42, 0).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, generated) {
		t.Error("golden timeline drifted from partition-flap #0 at seed 42; regenerate with: scenarios gen -profile partition-flap -seed 42 -index 0 -out internal/scenario/testdata/golden-timeline.json")
	}
	_, violations, err := CheckRun(tl.Def(), 42, DefaultInvariants())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("golden timeline violates %s at seq %d: %s", v.Invariant, v.Seq, v.Detail)
	}
}
