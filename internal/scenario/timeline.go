package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/adversary"
	"repro/internal/config"
	"repro/internal/registry"
	"repro/internal/vuln"
)

// Timeline is a scenario as data: an ordered list of typed events over the
// engine's grammar, plus the horizon and tick cadence a run needs. Unlike a
// Setup closure, a Timeline can be serialized, stored, replayed, diffed and
// shrunk — which is what makes generated scenarios first-class citizens:
// every sweep run, every invariant violation and every shrunk
// counterexample is a Timeline JSON artifact.
//
// The JSON encoding is the spec the README documents: durations are Go
// duration strings ("36h0m0s"), configurations are component lists with
// classes by canonical name, and fields are emitted in struct order, so a
// marshalled timeline round-trips byte-identically.
type Timeline struct {
	// Name identifies the timeline; it doubles as the scenario name in the
	// trace and feeds the per-scenario seed derivation (DeriveSeed), so a
	// renamed timeline is a different run.
	Name string `json:"name"`
	// Title is the optional human description.
	Title string `json:"title,omitempty"`
	// Tags classify the timeline for listings (generated timelines carry
	// their profile name).
	Tags []string `json:"tags,omitempty"`
	// Horizon is the virtual duration of the run; Tick the periodic
	// assessment cadence (0 defaults to Horizon/24 like Def.Tick).
	Horizon Duration `json:"horizon"`
	Tick    Duration `json:"tick,omitempty"`
	// Live, when set, attaches the live BFT harness (internal/liveloop)
	// to the run via the hook registered with SetLiveAttach. Omitted for
	// analytic-only timelines, so old artifacts are byte-identical.
	Live *LiveSpec `json:"live,omitempty"`
	// Events is the timeline, ascending by At. Validate enforces the
	// ordering so diffs and shrinking operate on a canonical form.
	Events []Event `json:"events"`
}

// LiveSpec serializes the live-harness attachment: when the cluster boots,
// its wire latency, the liveness-probe cadence, and the view timeout that
// turns on primary rotation (0 keeps the fixed primary). Zero cadences use
// the harness defaults.
type LiveSpec struct {
	StartAt       Duration `json:"start_at"`
	Latency       Duration `json:"latency,omitempty"`
	ProbeEvery    Duration `json:"probe_every,omitempty"`
	ProbeDeadline Duration `json:"probe_deadline,omitempty"`
	ViewTimeout   Duration `json:"view_timeout,omitempty"`
}

// liveAttach is the hook a live harness registers so data-first timelines
// can boot it without scenario importing the harness (which imports
// scenario). internal/liveloop installs the real hook in its init.
var liveAttach func(e *Engine, spec *LiveSpec) error

// SetLiveAttach registers the live-harness hook used by Timeline.Apply
// when a timeline carries a LiveSpec.
func SetLiveAttach(fn func(*Engine, *LiveSpec) error) { liveAttach = fn }

// Duration is a time.Duration that marshals as its String form, keeping
// timeline JSON human-readable ("36h0m0s" rather than 129600000000000).
// Unmarshalling accepts both the string form and raw nanoseconds.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON encodes the duration as its canonical string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON decodes either a duration string or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("scenario: duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(ns)
	return nil
}

// Event ops, mirroring the Engine's *At helpers one to one.
const (
	OpJoin        = "join"
	OpLeave       = "leave"
	OpPower       = "power"
	OpMigrate     = "migrate"
	OpDisclose    = "disclose"
	OpPartition   = "partition"
	OpHeal        = "heal"
	OpCrash       = "crash"
	OpRestore     = "restore"
	OpProbe       = "probe"
	OpDegrade     = "degrade"
	OpRestoreLink = "restore-link"
)

// Event is one typed timeline entry. Exactly the fields its op needs are
// set; Validate rejects everything else so serialized timelines cannot
// smuggle ambiguous state. The zero fields are omitted from JSON, keeping
// generated artifacts small and diffs readable.
type Event struct {
	// Op is the event kind (the Op* constants).
	Op string `json:"op"`
	// At is the virtual instant the event fires. For disclose events it
	// must equal Vuln.Disclosed (the engine schedules disclosures at their
	// disclosure instant).
	At Duration `json:"at"`

	// ID names the replica for join/leave/power/migrate.
	ID string `json:"id,omitempty"`
	// IDs names the replicas for partition/crash, the link endpoints for
	// degrade/restore-link (exactly two), and optionally restore (empty =
	// every crashed replica).
	IDs []string `json:"ids,omitempty"`
	// Config is the replica configuration for join/migrate.
	Config []ComponentSpec `json:"config,omitempty"`
	// Power is the voting power for join (> 0 required there) and power.
	Power float64 `json:"power,omitempty"`
	// PatchLatency is the join's patch adoption lag.
	PatchLatency Duration `json:"patch_latency,omitempty"`
	// Vuln describes the disclosure for disclose events.
	Vuln *VulnSpec `json:"vuln,omitempty"`
	// Strategy describes the adversary for probe events.
	Strategy *StrategySpec `json:"strategy,omitempty"`
	// Fault describes the link degradation for degrade events.
	Fault *FaultSpec `json:"fault,omitempty"`
}

// FaultSpec is the serializable form of a degraded-link fault model,
// mirroring simnet.Fault field for field.
type FaultSpec struct {
	Drop         float64  `json:"drop,omitempty"`
	ExtraLatency Duration `json:"extra_latency,omitempty"`
	Jitter       Duration `json:"jitter,omitempty"`
	Duplicate    float64  `json:"duplicate,omitempty"`
	Reorder      float64  `json:"reorder,omitempty"`
}

// LinkFault materializes and validates the spec.
func (s FaultSpec) LinkFault() (LinkFault, error) {
	f := LinkFault{
		Drop:         s.Drop,
		ExtraLatency: s.ExtraLatency.D(),
		Jitter:       s.Jitter.D(),
		Duplicate:    s.Duplicate,
		Reorder:      s.Reorder,
	}
	if err := f.Validate(); err != nil {
		return LinkFault{}, err
	}
	return f, nil
}

// NewFaultSpec serializes a link fault.
func NewFaultSpec(f LinkFault) *FaultSpec {
	return &FaultSpec{
		Drop:         f.Drop,
		ExtraLatency: Duration(f.ExtraLatency),
		Jitter:       Duration(f.Jitter),
		Duplicate:    f.Duplicate,
		Reorder:      f.Reorder,
	}
}

// ComponentSpec is the serializable form of one config.Component.
type ComponentSpec struct {
	Class   string `json:"class"`
	Name    string `json:"name"`
	Version string `json:"version"`
}

// BuildConfiguration materializes the spec list into a config.Configuration.
func BuildConfiguration(specs []ComponentSpec) (config.Configuration, error) {
	components := make([]config.Component, 0, len(specs))
	for _, s := range specs {
		class, err := config.ParseClass(s.Class)
		if err != nil {
			return config.Configuration{}, err
		}
		components = append(components, config.Component{Class: class, Name: s.Name, Version: s.Version})
	}
	return config.New(components...)
}

// ConfigSpec serializes a configuration as its canonical component list.
func ConfigSpec(cfg config.Configuration) []ComponentSpec {
	components := cfg.Components()
	out := make([]ComponentSpec, len(components))
	for i, c := range components {
		out[i] = ComponentSpec{Class: c.Class.String(), Name: c.Name, Version: c.Version}
	}
	return out
}

// VulnSpec is the serializable form of one vuln.Vulnerability.
type VulnSpec struct {
	ID        string   `json:"id"`
	Class     string   `json:"class"`
	Product   string   `json:"product"`
	Version   string   `json:"version,omitempty"`
	Disclosed Duration `json:"disclosed"`
	PatchAt   Duration `json:"patch_at"`
	Severity  float64  `json:"severity"`
}

// Vulnerability materializes the spec.
func (s VulnSpec) Vulnerability() (vuln.Vulnerability, error) {
	class, err := config.ParseClass(s.Class)
	if err != nil {
		return vuln.Vulnerability{}, err
	}
	return vuln.Vulnerability{
		ID: vuln.ID(s.ID), Class: class, Product: s.Product, Version: s.Version,
		Disclosed: s.Disclosed.D(), PatchAt: s.PatchAt.D(), Severity: s.Severity,
	}, nil
}

// NewVulnSpec serializes a vulnerability.
func NewVulnSpec(v vuln.Vulnerability) VulnSpec {
	return VulnSpec{
		ID: string(v.ID), Class: v.Class.String(), Product: v.Product, Version: v.Version,
		Disclosed: Duration(v.Disclosed), PatchAt: Duration(v.PatchAt), Severity: v.Severity,
	}
}

// StrategySpec is the serializable form of an adversary strategy: exploit
// and corruption carry a budget; adaptive composes sub-strategies.
type StrategySpec struct {
	Kind       string         `json:"kind"` // exploit | corruption | adaptive
	Budget     int            `json:"budget,omitempty"`
	Strategies []StrategySpec `json:"strategies,omitempty"`
}

// Strategy materializes the spec into an adversary.Strategy.
func (s StrategySpec) Strategy() (adversary.Strategy, error) {
	switch s.Kind {
	case "exploit":
		return adversary.ExploitStrategy{Budget: s.Budget}, nil
	case "corruption":
		return adversary.CorruptionStrategy{Budget: s.Budget}, nil
	case "adaptive":
		if len(s.Strategies) == 0 {
			return nil, errors.New("scenario: adaptive strategy needs sub-strategies")
		}
		subs := make([]adversary.Strategy, 0, len(s.Strategies))
		for _, sub := range s.Strategies {
			st, err := sub.Strategy()
			if err != nil {
				return nil, err
			}
			subs = append(subs, st)
		}
		return adversary.AdaptiveStrategy{Strategies: subs}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown strategy kind %q", s.Kind)
	}
}

// Validate checks a timeline's structural invariants: canonical ordering,
// per-op field completeness, and in-horizon times. It does NOT simulate the
// run — semantic errors (partitioning a replica that already left, a
// duplicate join) surface when the run executes, exactly as they do for
// Setup closures.
func (tl *Timeline) Validate() error {
	if tl == nil {
		return errors.New("scenario: nil timeline")
	}
	if tl.Name == "" {
		return errors.New("scenario: timeline without a name")
	}
	if tl.Horizon <= 0 {
		return fmt.Errorf("scenario: timeline %s: non-positive horizon %v", tl.Name, tl.Horizon)
	}
	if tl.Tick < 0 {
		return fmt.Errorf("scenario: timeline %s: negative tick %v", tl.Name, tl.Tick)
	}
	if tl.Live != nil {
		if tl.Live.StartAt < 0 || tl.Live.StartAt > tl.Horizon {
			return fmt.Errorf("scenario: timeline %s: live start %v outside [0, %v]", tl.Name, tl.Live.StartAt, tl.Horizon)
		}
		if tl.Live.Latency < 0 || tl.Live.ProbeEvery < 0 || tl.Live.ProbeDeadline < 0 || tl.Live.ViewTimeout < 0 {
			return fmt.Errorf("scenario: timeline %s: negative live cadence", tl.Name)
		}
	}
	var prev Duration
	for i, ev := range tl.Events {
		if err := tl.validateEvent(ev); err != nil {
			return fmt.Errorf("scenario: timeline %s: event %d: %w", tl.Name, i, err)
		}
		if ev.At < prev {
			return fmt.Errorf("scenario: timeline %s: event %d at %v precedes event %d at %v",
				tl.Name, i, ev.At, i-1, prev)
		}
		prev = ev.At
	}
	return nil
}

func (tl *Timeline) validateEvent(ev Event) error {
	if ev.At < 0 {
		return fmt.Errorf("%s at negative time %v", ev.Op, ev.At)
	}
	if ev.At > tl.Horizon {
		return fmt.Errorf("%s at %v beyond horizon %v", ev.Op, ev.At, tl.Horizon)
	}
	needsID := func() error {
		if ev.ID == "" {
			return fmt.Errorf("%s without a replica id", ev.Op)
		}
		return nil
	}
	switch ev.Op {
	case OpJoin:
		if err := needsID(); err != nil {
			return err
		}
		if len(ev.Config) == 0 {
			return fmt.Errorf("join %s without a configuration", ev.ID)
		}
		if _, err := BuildConfiguration(ev.Config); err != nil {
			return err
		}
		if ev.Power <= 0 {
			return fmt.Errorf("join %s with non-positive power %v", ev.ID, ev.Power)
		}
		if ev.PatchLatency < 0 {
			return fmt.Errorf("join %s with negative patch latency %v", ev.ID, ev.PatchLatency)
		}
	case OpLeave:
		return needsID()
	case OpPower:
		if err := needsID(); err != nil {
			return err
		}
		if ev.Power < 0 {
			return fmt.Errorf("power %s set to negative %v", ev.ID, ev.Power)
		}
	case OpMigrate:
		if err := needsID(); err != nil {
			return err
		}
		if len(ev.Config) == 0 {
			return fmt.Errorf("migrate %s without a configuration", ev.ID)
		}
		if _, err := BuildConfiguration(ev.Config); err != nil {
			return err
		}
	case OpDisclose:
		if ev.Vuln == nil {
			return errors.New("disclose without a vulnerability")
		}
		v, err := ev.Vuln.Vulnerability()
		if err != nil {
			return err
		}
		if err := v.Validate(); err != nil {
			return err
		}
		if ev.At != ev.Vuln.Disclosed {
			return fmt.Errorf("disclose %s at %v but disclosed %v (must match)",
				ev.Vuln.ID, ev.At, ev.Vuln.Disclosed)
		}
	case OpPartition, OpCrash:
		if len(ev.IDs) == 0 {
			return fmt.Errorf("%s without replica ids", ev.Op)
		}
	case OpHeal:
		// No operands: heals every partitioned replica.
	case OpRestore:
		// Empty IDs restores every crashed replica.
	case OpDegrade:
		if len(ev.IDs) != 2 || ev.IDs[0] == ev.IDs[1] {
			return fmt.Errorf("degrade needs two distinct link endpoints, got %v", ev.IDs)
		}
		if ev.Fault == nil {
			return errors.New("degrade without a fault model")
		}
		if _, err := ev.Fault.LinkFault(); err != nil {
			return err
		}
	case OpRestoreLink:
		if len(ev.IDs) != 2 || ev.IDs[0] == ev.IDs[1] {
			return fmt.Errorf("restore-link needs two distinct link endpoints, got %v", ev.IDs)
		}
	case OpProbe:
		if ev.Strategy == nil {
			return errors.New("probe without a strategy")
		}
		if _, err := ev.Strategy.Strategy(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown op %q", ev.Op)
	}
	return nil
}

// Apply schedules every timeline event onto the engine — the Setup hook of
// a data-first scenario. It validates first so a hand-edited timeline
// fails with a position rather than a mid-run scheduler error.
func (tl *Timeline) Apply(e *Engine) error {
	if err := tl.Validate(); err != nil {
		return err
	}
	if tl.Live != nil {
		if liveAttach == nil {
			return fmt.Errorf("scenario: timeline %s requires the live harness, but no live-attach hook is registered (import internal/liveloop)", tl.Name)
		}
		if err := liveAttach(e, tl.Live); err != nil {
			return fmt.Errorf("scenario: timeline %s: live attach: %w", tl.Name, err)
		}
	}
	for i, ev := range tl.Events {
		if err := applyEvent(e, ev); err != nil {
			return fmt.Errorf("scenario: timeline %s: event %d: %w", tl.Name, i, err)
		}
	}
	return nil
}

func applyEvent(e *Engine, ev Event) error {
	switch ev.Op {
	case OpJoin:
		cfg, err := BuildConfiguration(ev.Config)
		if err != nil {
			return err
		}
		return e.JoinAt(ev.At.D(), registry.ReplicaID(ev.ID), cfg, ev.Power, ev.PatchLatency.D())
	case OpLeave:
		return e.LeaveAt(ev.At.D(), registry.ReplicaID(ev.ID))
	case OpPower:
		return e.SetPowerAt(ev.At.D(), registry.ReplicaID(ev.ID), ev.Power)
	case OpMigrate:
		cfg, err := BuildConfiguration(ev.Config)
		if err != nil {
			return err
		}
		return e.MigrateAt(ev.At.D(), registry.ReplicaID(ev.ID), cfg)
	case OpDisclose:
		v, err := ev.Vuln.Vulnerability()
		if err != nil {
			return err
		}
		return e.Disclose(v)
	case OpPartition:
		return e.PartitionAt(ev.At.D(), replicaIDs(ev.IDs)...)
	case OpHeal:
		return e.HealAt(ev.At.D())
	case OpCrash:
		return e.CrashAt(ev.At.D(), replicaIDs(ev.IDs)...)
	case OpRestore:
		return e.RestoreAt(ev.At.D(), replicaIDs(ev.IDs)...)
	case OpProbe:
		s, err := ev.Strategy.Strategy()
		if err != nil {
			return err
		}
		return e.ProbeAt(ev.At.D(), s)
	case OpDegrade:
		f, err := ev.Fault.LinkFault()
		if err != nil {
			return err
		}
		return e.DegradeAt(ev.At.D(), registry.ReplicaID(ev.IDs[0]), registry.ReplicaID(ev.IDs[1]), f)
	case OpRestoreLink:
		return e.RestoreLinkAt(ev.At.D(), registry.ReplicaID(ev.IDs[0]), registry.ReplicaID(ev.IDs[1]))
	default:
		return fmt.Errorf("unknown op %q", ev.Op)
	}
}

func replicaIDs(names []string) []registry.ReplicaID {
	out := make([]registry.ReplicaID, len(names))
	for i, n := range names {
		out[i] = registry.ReplicaID(n)
	}
	return out
}

// Def wraps the timeline as a runnable scenario definition — the
// data-first counterpart of a Setup closure.
func (tl *Timeline) Def() Def {
	return Def{
		Name:     tl.Name,
		Title:    tl.Title,
		Tags:     append([]string(nil), tl.Tags...),
		Horizon:  tl.Horizon.D(),
		Tick:     tl.Tick.D(),
		Timeline: tl,
	}
}

// Clone deep-copies the timeline so shrinking and hand-editing cannot
// alias the original's event slices.
func (tl *Timeline) Clone() *Timeline {
	out := *tl
	out.Tags = append([]string(nil), tl.Tags...)
	if tl.Live != nil {
		live := *tl.Live
		out.Live = &live
	}
	out.Events = make([]Event, len(tl.Events))
	for i, ev := range tl.Events {
		out.Events[i] = ev.clone()
	}
	return &out
}

func (ev Event) clone() Event {
	out := ev
	out.IDs = append([]string(nil), ev.IDs...)
	out.Config = append([]ComponentSpec(nil), ev.Config...)
	if ev.Vuln != nil {
		v := *ev.Vuln
		out.Vuln = &v
	}
	if ev.Strategy != nil {
		out.Strategy = ev.Strategy.clone()
	}
	if ev.Fault != nil {
		f := *ev.Fault
		out.Fault = &f
	}
	return out
}

func (s *StrategySpec) clone() *StrategySpec {
	out := *s
	out.Strategies = make([]StrategySpec, len(s.Strategies))
	for i := range s.Strategies {
		out.Strategies[i] = *s.Strategies[i].clone()
	}
	if len(out.Strategies) == 0 {
		out.Strategies = nil
	}
	return &out
}

// SortEvents restores the canonical ascending-At ordering (stable, so
// same-instant events keep their scheduling order). Generators emit events
// out of construction order; this is the one normalization step before
// Validate.
func (tl *Timeline) SortEvents() {
	sort.SliceStable(tl.Events, func(i, j int) bool { return tl.Events[i].At < tl.Events[j].At })
}

// MarshalIndent renders the timeline as the canonical indented JSON
// artifact (trailing newline included), the format committed golden
// timelines and shrunk counterexamples use.
func (tl *Timeline) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(tl, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode timeline %s: %w", tl.Name, err)
	}
	return append(b, '\n'), nil
}

// ParseTimeline decodes and validates a timeline from its JSON encoding.
func ParseTimeline(data []byte) (*Timeline, error) {
	var tl Timeline
	if err := json.Unmarshal(data, &tl); err != nil {
		return nil, fmt.Errorf("scenario: decode timeline: %w", err)
	}
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	return &tl, nil
}
