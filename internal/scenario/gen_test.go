package scenario

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestGenerateDeterministic: (profile, seed, index) is a pure address — the
// same triple yields byte-identical timeline JSON, and moving any coordinate
// yields a different timeline.
func TestGenerateDeterministic(t *testing.T) {
	for _, p := range Profiles() {
		a, err := p.Generate(42, 3).MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Generate(42, 3).MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: same (seed, index) generated different timelines", p.Name)
		}
		c, err := p.Generate(42, 4).MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(a, c) {
			t.Errorf("%s: index 3 and 4 generated identical events", p.Name)
		}
		d, err := p.Generate(43, 3).MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(a, d) {
			t.Errorf("%s: seeds 42 and 43 generated identical events", p.Name)
		}
	}
}

// TestGeneratedTimelinesRunClean: the first few timelines of every profile
// validate (Generate panics otherwise), run without error, and satisfy the
// default invariants — the sweep's acceptance bar, in miniature.
func TestGeneratedTimelinesRunClean(t *testing.T) {
	for _, p := range Profiles() {
		for index := 0; index < 3; index++ {
			tl := p.Generate(42, index)
			if len(tl.Events) == 0 {
				t.Fatalf("%s index %d: empty timeline", p.Name, index)
			}
			_, violations, err := CheckRun(tl.Def(), 42, DefaultInvariants())
			if err != nil {
				t.Fatalf("%s index %d: %v", p.Name, index, err)
			}
			for _, v := range violations {
				t.Errorf("%s index %d violates %s at seq %d: %s", p.Name, index, v.Invariant, v.Seq, v.Detail)
			}
		}
	}
}

// TestGeneratedReplayByteIdentical: a generated timeline's trace depends
// only on (profile, seed, index) — replaying it serially and replaying four
// copies concurrently produce the same bytes. This is the library-level
// form of the CLI determinism contract across -parallel settings.
func TestGeneratedReplayByteIdentical(t *testing.T) {
	p, ok := LookupProfile("partition-flap")
	if !ok {
		t.Fatal("partition-flap profile missing")
	}
	tl := p.Generate(42, 0)
	res, err := Run(tl.Def(), 42)
	if err != nil {
		t.Fatal(err)
	}
	want := mustTraceJSON(t, res)

	traces := make([]string, 4)
	var wg sync.WaitGroup
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Regenerate inside the goroutine: the full address -> bytes
			// path must be race-free and scheduling-independent.
			res, err := Run(p.Generate(42, 0).Def(), 42)
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = mustTraceJSON(t, res)
		}(i)
	}
	wg.Wait()
	for i, got := range traces {
		if got != want {
			t.Fatalf("concurrent replay %d diverged from serial trace", i)
		}
	}
}

// TestGeneratedNamesEncodeAddress: the timeline name carries (profile, seed,
// index) so a violating run in a report can be regenerated from its name
// alone.
func TestGeneratedNamesEncodeAddress(t *testing.T) {
	p := Profiles()[0]
	tl := p.Generate(7, 12)
	for _, part := range []string{p.Name, "7", "0012"} {
		if !strings.Contains(tl.Name, part) {
			t.Errorf("name %q missing %q", tl.Name, part)
		}
	}
	if !strings.Contains(strings.Join(tl.Tags, ","), "generated") {
		t.Errorf("tags %v missing 'generated'", tl.Tags)
	}
}
