package scenario

import (
	"testing"
	"time"
)

// TestDefaultInvariantsHoldOnRegistry: every hand-written scenario in this
// package's registry satisfies the default invariants — the same bar the
// sweep applies to generated timelines.
func TestDefaultInvariantsHoldOnRegistry(t *testing.T) {
	for _, def := range All() {
		_, violations, err := CheckRun(def, 7, DefaultInvariants())
		if err != nil {
			t.Fatalf("%s: %v", def.Name, err)
		}
		for _, v := range violations {
			t.Errorf("%s violates %s at seq %d: %s", def.Name, v.Invariant, v.Seq, v.Detail)
		}
	}
}

// TestInvariantByName: every default plus never-unsafe resolves; junk does
// not.
func TestInvariantByName(t *testing.T) {
	names := []string{"safe-consistency", "worst-dominates", "patch-monotone", "oracle-agreement", "never-unsafe"}
	for _, name := range names {
		inv, ok := InvariantByName(name)
		if !ok || inv.Name != name {
			t.Errorf("InvariantByName(%q) = (%q, %t)", name, inv.Name, ok)
		}
		if inv.Check == nil && inv.NewObserver == nil {
			t.Errorf("%s has neither Check nor NewObserver", name)
		}
	}
	if _, ok := InvariantByName("no-such-invariant"); ok {
		t.Error("unknown invariant resolved")
	}
}

// TestNeverUnsafeFires: a severity-1 disclosure against the whole fleet
// breaches the threshold, and never-unsafe pins each breaching record.
func TestNeverUnsafeFires(t *testing.T) {
	h := Duration(48 * time.Hour)
	tl := &Timeline{
		Name:    "tl-total-breach",
		Title:   "monoculture meets a severity-1 zero-day",
		Horizon: h,
		Tick:    Duration(12 * time.Hour),
		Events: []Event{
			{Op: OpJoin, At: 0, ID: "a", Config: osSpec("linux", "6.1"), Power: 1},
			{Op: OpJoin, At: 0, ID: "b", Config: osSpec("linux", "6.1"), Power: 1},
			{Op: OpDisclose, At: Duration(6 * time.Hour), Vuln: &VulnSpec{
				ID: "CVE-T-0001", Class: "operating-system", Product: "linux",
				Disclosed: Duration(6 * time.Hour), PatchAt: Duration(40 * time.Hour), Severity: 1,
			}},
		},
	}
	res, violations, err := CheckRun(tl.Def(), 42, []Invariant{NeverUnsafe()})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Fatal("never-unsafe did not fire on a total breach")
	}
	unsafe := 0
	for _, rec := range res.Records {
		if !rec.Safe {
			unsafe++
		}
	}
	if len(violations) != unsafe {
		t.Fatalf("%d violations for %d unsafe records", len(violations), unsafe)
	}
	for _, v := range violations {
		if v.Invariant != "never-unsafe" || v.Scenario != "tl-total-breach" || v.Detail == "" {
			t.Fatalf("malformed violation %+v", v)
		}
	}
}

// TestSafeConsistencyCatchesTamperedTrace: the post-run check works on the
// trace alone — hand it a contradictory record and it must object.
func TestSafeConsistencyCatchesTamperedTrace(t *testing.T) {
	res := &Result{
		Name:      "tampered",
		Threshold: 0.5,
		Records: []Record{
			{Seq: 0, Compromised: 0.9, Safe: true},  // contradiction
			{Seq: 1, Compromised: 0.2, Safe: true},  // fine
			{Seq: 2, Compromised: 0.1, Safe: false}, // contradiction
		},
	}
	violations := SafeConsistency().Check(res)
	if len(violations) != 2 {
		t.Fatalf("got %d violations, want 2: %+v", len(violations), violations)
	}
	if violations[0].Seq != 0 || violations[1].Seq != 2 {
		t.Fatalf("violations pin seqs %d and %d, want 0 and 2", violations[0].Seq, violations[1].Seq)
	}
}

// TestWorstDominatesCatchesTamperedTrace: same trace-only exercise for the
// prediction-dominance check.
func TestWorstDominatesCatchesTamperedTrace(t *testing.T) {
	res := &Result{
		Name:      "tampered",
		Threshold: 0.5,
		Horizon:   24 * time.Hour,
		Records: []Record{
			{Seq: 0, Compromised: 0.6, Safe: false, WorstFraction: 0.4, WorstSafe: false}, // worst below instantaneous
			{Seq: 1, Compromised: 0.6, Safe: false, WorstFraction: 0.6, WorstSafe: true},  // unsafe now, worst claims safe
			{Seq: 2, Compromised: 0.1, Safe: true, WorstFraction: 0.2, WorstSafe: true,
				WorstAtNanos: int64(48 * time.Hour)}, // outside horizon
		},
	}
	violations := WorstDominates().Check(res)
	if len(violations) != 3 {
		t.Fatalf("got %d violations, want 3: %+v", len(violations), violations)
	}
}

// TestCheckRunViolatingIsNotError: a violating run returns its result and
// violations with a nil error — violations are findings, not failures.
func TestCheckRunViolatingIsNotError(t *testing.T) {
	p, _ := LookupProfile("disclosure-storm")
	tl := p.Generate(42, 0)
	res, violations, err := CheckRun(tl.Def(), 42, []Invariant{NeverUnsafe()})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Records) == 0 {
		t.Fatal("violating run returned no result")
	}
	if len(violations) == 0 {
		t.Fatal("disclosure-storm #0 at seed 42 is known unsafe; no violations returned")
	}
}
