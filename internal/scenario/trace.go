package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"
)

// Record is one line of a scenario trace: the event that fired, the full
// assessment taken immediately after it, and the worst-window sweep for
// the current membership. The JSON encoding (one object per line, fields
// in struct order) is the trace format CI diffs byte-for-byte: every field
// is either an integer, a bool, a string, or a float64 rendered by Go's
// deterministic shortest-form formatter, so identical runs produce
// identical bytes on every platform.
type Record struct {
	// Seq numbers records within one scenario run, from 0.
	Seq uint64 `json:"seq"`
	// T is the virtual instant as a Duration string ("36h0m0s").
	T string `json:"t"`
	// TNanos is the same instant in nanoseconds, for machine consumers.
	TNanos int64 `json:"t_ns"`
	// Scenario is the scenario name the record belongs to.
	Scenario string `json:"scenario"`
	// Event is the event kind: setup, join, leave, power, migrate,
	// disclose, patch, partition, heal, probe, rotate, tick, final, or a
	// scenario-defined kind.
	Event string `json:"event"`
	// Detail is the event's human-readable payload (replica id, CVE id,
	// committee composition, ...), empty for bare ticks.
	Detail string `json:"detail,omitempty"`

	// Replicas and Configs describe the membership at the instant.
	Replicas int `json:"replicas"`
	Configs  int `json:"configs"`
	// Power is the total effective voting power.
	Power float64 `json:"power"`
	// Entropy is the configuration-diversity entropy in bits; MaxShare the
	// largest single configuration's power share.
	Entropy  float64 `json:"entropy"`
	MaxShare float64 `json:"max_share"`
	// Compromised is Σ f_t^i deduplicated — the compromised power fraction
	// at the instant; Safe the Sec. II-C condition against the substrate
	// threshold.
	Compromised float64 `json:"compromised"`
	Safe        bool    `json:"safe"`
	// WorstAtNanos / WorstFraction / WorstSafe describe the adversary's
	// best striking moment over the scenario horizon for the *current*
	// membership (exact event-driven sweep, see vuln.WorstWindow).
	WorstAtNanos  int64   `json:"worst_at_ns"`
	WorstFraction float64 `json:"worst_fraction"`
	WorstSafe     bool    `json:"worst_safe"`

	// AdvStrategy/AdvDetail are set on probe records only (their presence
	// marks a probe); AdvFraction and AdvBreaks are always encoded so a
	// zero-gain probe still carries explicit 0/false values, matching the
	// CSV columns.
	AdvStrategy string  `json:"adv_strategy,omitempty"`
	AdvDetail   string  `json:"adv_detail,omitempty"`
	AdvFraction float64 `json:"adv_fraction"`
	AdvBreaks   bool    `json:"adv_breaks"`

	// Live-loop extensions (internal/liveloop). All omitempty: scenarios
	// without a live harness encode exactly as before. Live marks records
	// emitted while a live cluster was attached; LiveCommits counts honest
	// commit events so far; LiveByzFrac is the fraction of replicas running
	// a Byzantine behavior; LiveViolation reports an observed agreement
	// violation (two honest replicas committed conflicting values).
	Live          bool    `json:"live,omitempty"`
	LiveCommits   int     `json:"live_commits,omitempty"`
	LiveByzFrac   float64 `json:"live_byz_frac,omitempty"`
	LiveViolation bool    `json:"live_violation,omitempty"`
	// Check/CheckDetail describe a prediction cross-check performed at this
	// record (liveness probe verdict, safety verdict, attack outcome);
	// Divergence is set when the observation contradicted the prediction.
	Check       string `json:"check,omitempty"`
	CheckDetail string `json:"check_detail,omitempty"`
	Divergence  bool   `json:"divergence,omitempty"`
	// LiveView is the highest view the live cluster has installed;
	// ViewChanges counts primary rotations so far. Both stay zero (and
	// unencoded) until a view change happens, so fixed-primary traces are
	// byte-identical to the pre-rotation format.
	LiveView    uint64 `json:"live_view,omitempty"`
	ViewChanges int    `json:"view_changes,omitempty"`
	// Recovery spans: BreachAtNanos marks the record where the assessment
	// crossed the threshold; RecoverAtNanos the record where it returned to
	// assessed-safe with implants cleansed; RecoverNanos (ttr_ns) the
	// time-to-recover between them, set on the recovery record.
	BreachAtNanos  int64 `json:"breach_at_ns,omitempty"`
	RecoverAtNanos int64 `json:"recover_at_ns,omitempty"`
	RecoverNanos   int64 `json:"ttr_ns,omitempty"`
}

// JSON renders the record as its canonical single-line JSON encoding.
func (r Record) JSON() (string, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return "", fmt.Errorf("scenario: encode record %d: %w", r.Seq, err)
	}
	return string(b), nil
}

// CSVHeader is the column order of the CSV trace encoding, matching the
// JSON field order.
func CSVHeader() []string {
	return []string{
		"seq", "t", "t_ns", "scenario", "event", "detail",
		"replicas", "configs", "power", "entropy", "max_share",
		"compromised", "safe", "worst_at_ns", "worst_fraction", "worst_safe",
		"adv_strategy", "adv_detail", "adv_fraction", "adv_breaks",
		"live", "live_commits", "live_byz_frac", "live_violation",
		"check", "check_detail", "divergence",
		"live_view", "view_changes",
		"breach_at_ns", "recover_at_ns", "ttr_ns",
	}
}

// CSVRow renders the record as CSV cells in CSVHeader order. Floats use
// the shortest round-trip form, so rows are byte-deterministic.
func (r Record) CSVRow() []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return []string{
		strconv.FormatUint(r.Seq, 10),
		r.T,
		strconv.FormatInt(r.TNanos, 10),
		r.Scenario,
		r.Event,
		r.Detail,
		strconv.Itoa(r.Replicas),
		strconv.Itoa(r.Configs),
		f(r.Power),
		f(r.Entropy),
		f(r.MaxShare),
		f(r.Compromised),
		strconv.FormatBool(r.Safe),
		strconv.FormatInt(r.WorstAtNanos, 10),
		f(r.WorstFraction),
		strconv.FormatBool(r.WorstSafe),
		r.AdvStrategy,
		r.AdvDetail,
		f(r.AdvFraction),
		strconv.FormatBool(r.AdvBreaks),
		strconv.FormatBool(r.Live),
		strconv.Itoa(r.LiveCommits),
		f(r.LiveByzFrac),
		strconv.FormatBool(r.LiveViolation),
		r.Check,
		r.CheckDetail,
		strconv.FormatBool(r.Divergence),
		strconv.FormatUint(r.LiveView, 10),
		strconv.Itoa(r.ViewChanges),
		strconv.FormatInt(r.BreachAtNanos, 10),
		strconv.FormatInt(r.RecoverAtNanos, 10),
		strconv.FormatInt(r.RecoverNanos, 10),
	}
}

// Summary condenses one scenario run for the CLI's table view.
type Summary struct {
	Scenario      string
	Seed          int64
	Records       int
	Events        int // non-tick, non-final records
	FinalReplicas int
	MinEntropy    float64
	FinalEntropy  float64
	MaxComp       float64       // worst instantaneous compromised fraction
	MaxCompAt     time.Duration // when it happened
	UnsafeRecords int
	AdvBestFrac   float64 // best probe fraction any adversary achieved
	AdvBreaks     bool    // did any probe break the threshold

	// Live-loop aggregates (zero for scenarios without a live harness).
	Checks      int           // prediction cross-checks performed
	Divergences int           // checks where observation contradicted prediction
	Violations  int           // records reporting an observed agreement violation
	FinalView   uint64        // highest view the live cluster installed
	ViewChanges int           // primary rotations the live cluster performed
	Breaches    int           // threshold-breach records
	Recoveries  int           // recovery records (breach returned to assessed-safe)
	MaxTTR      time.Duration // slowest time-to-recover observed
}

// Summarize folds a run's records into a Summary.
func Summarize(scenario string, seed int64, records []Record) Summary {
	s := Summary{Scenario: scenario, Seed: seed, Records: len(records)}
	for i, r := range records {
		if i == 0 || r.Entropy < s.MinEntropy {
			s.MinEntropy = r.Entropy
		}
		if r.Compromised > s.MaxComp {
			s.MaxComp = r.Compromised
			s.MaxCompAt = time.Duration(r.TNanos)
		}
		if !r.Safe {
			s.UnsafeRecords++
		}
		if r.Event != "tick" && r.Event != "final" {
			s.Events++
		}
		if r.AdvFraction > s.AdvBestFrac {
			s.AdvBestFrac = r.AdvFraction
		}
		if r.AdvBreaks {
			s.AdvBreaks = true
		}
		if r.Check != "" {
			s.Checks++
		}
		if r.Divergence {
			s.Divergences++
		}
		if r.LiveViolation {
			s.Violations++
		}
		if r.LiveView > s.FinalView {
			s.FinalView = r.LiveView
		}
		if r.ViewChanges > s.ViewChanges {
			s.ViewChanges = r.ViewChanges
		}
		if r.BreachAtNanos != 0 {
			s.Breaches++
		}
		if r.RecoverAtNanos != 0 {
			s.Recoveries++
			if ttr := time.Duration(r.RecoverNanos); ttr > s.MaxTTR {
				s.MaxTTR = ttr
			}
		}
		if i == len(records)-1 {
			s.FinalReplicas = r.Replicas
			s.FinalEntropy = r.Entropy
		}
	}
	return s
}
