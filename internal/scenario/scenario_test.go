package scenario

import (
	"strings"
	"testing"
	"time"
)

// TestLibraryRegistered pins the named library: the six scenarios the CLI,
// CI and README advertise, in registration order.
func TestLibraryRegistered(t *testing.T) {
	want := []string{
		"flash-churn", "monoculture-drift", "zero-day-under-partition",
		"staggered-patch-race", "adaptive-adversary", "committee-rotation",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], name)
		}
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) missing", name)
		}
		if _, ok := Lookup(strings.ToUpper(name)); !ok {
			t.Errorf("Lookup is not case-insensitive for %q", name)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
}

// runByName resolves a registered scenario and runs it — the test-local
// spelling of the old RunNamed entrypoint.
func runByName(t *testing.T, name string, seed int64) (*Result, error) {
	t.Helper()
	def, ok := Lookup(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	return Run(def, seed)
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(7, "flash-churn") != DeriveSeed(7, "FLASH-CHURN") {
		t.Error("DeriveSeed is case-sensitive in the name")
	}
	if DeriveSeed(7, "flash-churn") == DeriveSeed(7, "monoculture-drift") {
		t.Error("different scenarios derived the same seed")
	}
	if DeriveSeed(7, "flash-churn") == DeriveSeed(8, "flash-churn") {
		t.Error("different base seeds derived the same seed")
	}
}

// TestLibraryRunsAndReplays runs every library scenario twice and demands
// byte-identical JSON traces — the engine's core guarantee, the same one
// CI enforces through the CLI.
func TestLibraryRunsAndReplays(t *testing.T) {
	for _, def := range All() {
		def := def
		t.Run(def.Name, func(t *testing.T) {
			t.Parallel()
			first, err := Run(def, 42)
			if err != nil {
				t.Fatal(err)
			}
			if len(first.Records) == 0 {
				t.Fatal("empty trace")
			}
			again, err := Run(def, 42)
			if err != nil {
				t.Fatal(err)
			}
			if len(first.Records) != len(again.Records) {
				t.Fatalf("replay produced %d records, first run %d", len(again.Records), len(first.Records))
			}
			for i := range first.Records {
				a, err := first.Records[i].JSON()
				if err != nil {
					t.Fatal(err)
				}
				b, err := again.Records[i].JSON()
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("record %d differs between replays:\n%s\n%s", i, a, b)
				}
			}

			// Structural invariants of any trace.
			var prev Record
			for i, rec := range first.Records {
				if rec.Seq != uint64(i) {
					t.Fatalf("record %d has seq %d", i, rec.Seq)
				}
				if rec.Scenario != def.Name {
					t.Fatalf("record %d names scenario %q", i, rec.Scenario)
				}
				if i > 0 && rec.TNanos < prev.TNanos {
					t.Fatalf("record %d goes back in time: %v after %v", i, rec.TNanos, prev.TNanos)
				}
				if rec.TNanos > int64(def.Horizon) {
					t.Fatalf("record %d beyond horizon: %v", i, rec.T)
				}
				prev = rec
			}
			last := first.Records[len(first.Records)-1]
			if last.Event != "final" || last.TNanos != int64(def.Horizon) {
				t.Fatalf("trace does not end with a final record at the horizon: %+v", last)
			}
		})
	}
}

// TestLibrarySeedSensitivity: a different seed must change at least one
// record in the seed-dependent scenarios (flash-churn draws powers from
// the run RNG).
func TestLibrarySeedSensitivity(t *testing.T) {
	a, err := runByName(t, "flash-churn", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runByName(t, "flash-churn", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) == len(b.Records) {
		same := true
		for i := range a.Records {
			ja, _ := a.Records[i].JSON()
			jb, _ := b.Records[i].JSON()
			if ja != jb {
				same = false
				break
			}
		}
		if same {
			t.Error("seeds 1 and 2 produced identical flash-churn traces")
		}
	}
}

// TestLibraryTellsItsStory spot-checks that the scenarios produce the
// dynamics they are named for.
func TestLibraryTellsItsStory(t *testing.T) {
	t.Run("flash-churn breaks safety during the mob", func(t *testing.T) {
		res, err := runByName(t, "flash-churn", 42)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Summary()
		if s.UnsafeRecords == 0 {
			t.Error("zero-day on the mob never broke safety")
		}
		if !s.AdvBreaks {
			t.Error("exploit adversary never broke the threshold")
		}
	})
	t.Run("monoculture-drift erodes entropy", func(t *testing.T) {
		res, err := runByName(t, "monoculture-drift", 42)
		if err != nil {
			t.Fatal(err)
		}
		// Entropy at the start of the drift (full fleet, balanced) must
		// exceed entropy after the drift completes.
		var startH, preDiscloseH float64
		for _, rec := range res.Records {
			if rec.Event == "tick" && rec.TNanos == int64(day) {
				startH = rec.Entropy
			}
			if rec.Event == "tick" && rec.TNanos == int64(20*day) {
				preDiscloseH = rec.Entropy
			}
		}
		if preDiscloseH >= startH {
			t.Errorf("drift did not erode entropy: day1 %.3f -> day20 %.3f", startH, preDiscloseH)
		}
	})
	t.Run("staggered-patch-race recovers by rollout", func(t *testing.T) {
		res, err := runByName(t, "staggered-patch-race", 42)
		if err != nil {
			t.Fatal(err)
		}
		last := res.Records[len(res.Records)-1]
		if last.Compromised != 0 {
			t.Errorf("fleet still compromised at horizon: Σf=%v", last.Compromised)
		}
		s := res.Summary()
		if s.MaxComp < 0.9 {
			t.Errorf("shared library vuln never spiked: max Σf=%v", s.MaxComp)
		}
	})
	t.Run("zero-day-under-partition compounds", func(t *testing.T) {
		res, err := runByName(t, "zero-day-under-partition", 42)
		if err != nil {
			t.Fatal(err)
		}
		// During the partition the membership count stays but power drops.
		var sawPartition, sawHeal bool
		for _, rec := range res.Records {
			switch rec.Event {
			case "partition":
				sawPartition = true
				if rec.Replicas != 24 {
					t.Errorf("partition record sees %d replicas, want 24", rec.Replicas)
				}
			case "heal":
				sawHeal = true
			}
		}
		if !sawPartition || !sawHeal {
			t.Error("partition/heal events missing from trace")
		}
	})
	t.Run("adaptive-adversary probes both models", func(t *testing.T) {
		res, err := runByName(t, "adaptive-adversary", 42)
		if err != nil {
			t.Fatal(err)
		}
		strategies := make(map[string]bool)
		for _, rec := range res.Records {
			if rec.Event == "probe" {
				strategies[rec.AdvStrategy] = true
			}
		}
		if len(strategies) < 2 {
			t.Errorf("adaptive adversary committed to only %v; expected it to switch models across probes", strategies)
		}
	})
	t.Run("committee-rotation records rotations", func(t *testing.T) {
		res, err := runByName(t, "committee-rotation", 42)
		if err != nil {
			t.Fatal(err)
		}
		rotations := 0
		for _, rec := range res.Records {
			if rec.Event == "rotate" {
				rotations++
				if !strings.Contains(rec.Detail, "committee entropy=") {
					t.Errorf("rotate record missing committee entropy: %q", rec.Detail)
				}
			}
		}
		if rotations != 6 {
			t.Errorf("saw %d rotations, want 6", rotations)
		}
	})
}

// TestRegisterValidation: every malformed registration panics before it
// can pollute the registry — including the two holes Register used to
// have: a negative Tick (silently replaced by the Horizon/24 default at
// run time) and a name that collides with an existing one only after
// trimming/lowercasing (which Lookup normalizes but Register did not).
func TestRegisterValidation(t *testing.T) {
	mustPanic := func(t *testing.T, why string, d Def) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register accepted %s", why)
			}
		}()
		Register(d)
	}
	noop := func(e *Engine) error { return nil }
	valid := Def{Name: "reg-valid", Title: "t", Horizon: time.Hour, Setup: noop}

	d := valid
	d.Name = ""
	mustPanic(t, "an empty name", d)

	d = valid
	d.Horizon = 0
	mustPanic(t, "a zero horizon", d)

	d = valid
	d.Tick = -time.Second
	mustPanic(t, "a negative tick", d)

	d = valid
	d.Setup = nil
	mustPanic(t, "a def with neither Setup nor Timeline", d)

	d = valid
	d.Timeline = &Timeline{Name: d.Name, Title: d.Title, Horizon: Duration(d.Horizon)}
	mustPanic(t, "a def with both Setup and Timeline", d)

	d = valid
	d.Name = " reg-padded "
	mustPanic(t, "a name with surrounding whitespace", d)

	d = valid
	d.Name = "flash-churn"
	mustPanic(t, "a duplicate name", d)

	d = valid
	d.Name = "Flash-Churn"
	mustPanic(t, "a duplicate name differing only in case", d)

	if _, ok := Lookup("reg-valid"); ok {
		t.Fatal("a rejected registration leaked into the registry")
	}
}

func TestSummarize(t *testing.T) {
	records := []Record{
		{Seq: 0, Event: "join", Entropy: 2, Safe: true},
		{Seq: 1, Event: "tick", TNanos: int64(time.Hour), Entropy: 1.5, Compromised: 0.4, Safe: false, AdvFraction: 0.2},
		{Seq: 2, Event: "probe", TNanos: int64(2 * time.Hour), Entropy: 1.8, Compromised: 0.1, Safe: true, AdvFraction: 0.5, AdvBreaks: true},
		{Seq: 3, Event: "final", TNanos: int64(3 * time.Hour), Entropy: 1.9, Safe: true, Replicas: 12},
	}
	s := Summarize("x", 9, records)
	if s.Records != 4 || s.Events != 2 {
		t.Errorf("records/events = %d/%d, want 4/2", s.Records, s.Events)
	}
	if s.MinEntropy != 1.5 || s.FinalEntropy != 1.9 || s.FinalReplicas != 12 {
		t.Errorf("entropy summary wrong: %+v", s)
	}
	if s.MaxComp != 0.4 || s.MaxCompAt != time.Hour {
		t.Errorf("max compromise wrong: %+v", s)
	}
	if s.UnsafeRecords != 1 || !s.AdvBreaks || s.AdvBestFrac != 0.5 {
		t.Errorf("adversary summary wrong: %+v", s)
	}
}
