// Package scenario is the deterministic scenario engine: it composes
// registry churn (joins, leaves, power shifts, product-version
// migrations), vulnerability lifecycle events (disclosure, patch rollout
// waves) and adversary strategies (internal/adversary) into one event
// timeline on the internal/sim virtual clock, and drives core.Monitor
// assessments at every event and periodic tick. The output is a
// machine-readable trace (JSON lines or CSV; see Record) that replays
// byte-identically from (scenario, seed) — the property CI enforces by
// diffing two runs.
//
// The paper's claim is about diversity protecting replicated systems
// *over time*; the seed's Monitor could only watch a frozen population.
// Scenarios are the missing workload: named, replayable timelines where
// the population, the vulnerability surface and the adversary all move.
//
// Determinism discipline (the same one internal/sim and internal/simnet
// follow): a single scheduler owns virtual time and fires events in
// (time, scheduling order); all randomness comes from the scheduler's
// seeded RNG; assessment happens inline in event callbacks, never from a
// wall ticker. Per-scenario seeds derive from (base seed, scenario name),
// so a scenario's trace does not depend on which other scenarios run
// alongside it or on -parallel settings.
package scenario

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"
)

// Def is one named scenario: metadata plus the program that fills the
// timeline onto a fresh Engine — either a Setup closure or a data-first
// Timeline (exactly one of the two must be set).
type Def struct {
	// Name is the stable identifier (kebab-case, e.g. "flash-churn").
	Name string
	// Title is the one-line human description.
	Title string
	// Tags group scenarios for listing (churn, vuln, adversary, ...).
	Tags []string
	// Horizon is the virtual duration the scenario runs for.
	Horizon time.Duration
	// Tick is the periodic assessment cadence; 0 defaults to Horizon/24.
	Tick time.Duration
	// Setup programs the timeline: it schedules every churn, disclosure
	// and probe event on the engine before the run starts. It must not
	// mutate the registry or catalog directly — only through the engine's
	// *At scheduling helpers — or the trace would miss the mutation.
	Setup func(e *Engine) error
	// Timeline is the data-first alternative to Setup: a serialized event
	// list applied verbatim (see Timeline.Apply). Generated, replayed and
	// shrunk scenarios are all Timeline defs.
	Timeline *Timeline
}

// setup resolves the def's program: the Setup closure, or the Timeline's
// Apply when the def is data-first.
func (d Def) setup() func(e *Engine) error {
	if d.Setup != nil {
		return d.Setup
	}
	if d.Timeline != nil {
		return d.Timeline.Apply
	}
	return nil
}

var (
	registryOrder  []string
	registryByName = make(map[string]Def)
)

// Register adds a scenario to the registry. The library self-registers at
// init time, mirroring the experiment registry: cmd/scenarios, tests and
// benchmarks all iterate the same index so they cannot drift.
// Registration errors are programmer errors and panic.
//
// Validation matches what Lookup actually resolves: names are rejected
// when they are not already trimmed (a name with surrounding whitespace
// would register under a key Lookup's TrimSpace can never produce), and
// duplicates are checked on the trimmed, lowercased key. A negative Tick
// is rejected too — it would silently fall back to the Horizon/24 default
// at run time, hiding the typo.
func Register(d Def) {
	if d.Name == "" || d.Title == "" || d.Horizon <= 0 {
		panic(fmt.Sprintf("scenario: incomplete registration %q", d.Name))
	}
	if d.Setup == nil && d.Timeline == nil {
		panic(fmt.Sprintf("scenario: %q has neither Setup nor Timeline", d.Name))
	}
	if d.Setup != nil && d.Timeline != nil {
		panic(fmt.Sprintf("scenario: %q has both Setup and Timeline", d.Name))
	}
	if d.Tick < 0 {
		panic(fmt.Sprintf("scenario: %q has negative tick %v", d.Name, d.Tick))
	}
	if strings.TrimSpace(d.Name) != d.Name {
		panic(fmt.Sprintf("scenario: name %q has surrounding whitespace", d.Name))
	}
	key := strings.ToLower(strings.TrimSpace(d.Name))
	if _, dup := registryByName[key]; dup {
		panic(fmt.Sprintf("scenario: duplicate name %q", d.Name))
	}
	registryByName[key] = d
	registryOrder = append(registryOrder, key)
}

// All returns every registered scenario in registration order.
func All() []Def {
	out := make([]Def, 0, len(registryOrder))
	for _, name := range registryOrder {
		out = append(out, registryByName[name])
	}
	return out
}

// Names returns every registered name in registration order.
func Names() []string {
	return append([]string(nil), registryOrder...)
}

// Lookup finds a scenario by name (case-insensitive).
func Lookup(name string) (Def, bool) {
	d, ok := registryByName[strings.ToLower(strings.TrimSpace(name))]
	return d, ok
}

// Tags returns every tag in use, sorted.
func Tags() []string {
	seen := make(map[string]bool)
	for _, d := range All() {
		for _, t := range d.Tags {
			seen[strings.ToLower(t)] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// DeriveSeed maps (base seed, scenario name) to the scenario's scheduler
// seed: an FNV-1a hash of the name mixed with the base through a
// SplitMix64 step. Deriving per scenario — rather than sharing one RNG —
// is what makes a scenario's trace independent of which other scenarios
// run in the same invocation and of any -parallel setting.
func DeriveSeed(base int64, name string) int64 {
	h := fnv.New64a()
	// Writing to an FNV hash never fails.
	_, _ = h.Write([]byte(strings.ToLower(name)))
	x := uint64(base) ^ h.Sum64()
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
