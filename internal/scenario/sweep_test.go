package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestSweepWorkerIndependence: the aggregate report is byte-identical for
// every worker count — run i is a pure address, results land in indexed
// slots, and aggregation is serial.
func TestSweepWorkerIndependence(t *testing.T) {
	marshal := func(workers int) []byte {
		t.Helper()
		report, err := Sweep(context.Background(), SweepOptions{Runs: 16, Seed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, err := report.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := marshal(1)
	for _, workers := range []int{2, 4, 7} {
		if got := marshal(workers); !bytes.Equal(serial, got) {
			t.Fatalf("report with %d workers differs from serial report", workers)
		}
	}
}

// TestSweepProfileSelection: an explicit profile list restricts the sweep
// and keeps canonical order; unknown names are hard errors.
func TestSweepProfileSelection(t *testing.T) {
	report, err := Sweep(context.Background(), SweepOptions{
		// Given out of canonical order on purpose.
		Profiles: []string{"partition-flap", "churn-heavy"},
		Runs:     4, Seed: 42, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Profiles) != 2 || report.Profiles[0].Profile != "churn-heavy" || report.Profiles[1].Profile != "partition-flap" {
		t.Fatalf("profile stats = %+v, want churn-heavy then partition-flap", report.Profiles)
	}
	for _, stats := range report.Profiles {
		if stats.Runs != 2 {
			t.Errorf("%s ran %d times, want 2", stats.Profile, stats.Runs)
		}
	}
	if _, err := Sweep(context.Background(), SweepOptions{Profiles: []string{"nope"}, Runs: 1, Seed: 42}); err == nil {
		t.Fatal("unknown profile accepted")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error %q does not name the unknown profile", err)
	}
	if _, err := Sweep(context.Background(), SweepOptions{Runs: 0, Seed: 42}); err == nil {
		t.Fatal("zero-run sweep accepted")
	}
}

// TestSweepSurfacesViolations: sweeping with never-unsafe as the invariant
// must surface violating runs — generated scenarios breach the threshold
// all the time; that is what makes never-unsafe the shrink demo target.
func TestSweepSurfacesViolations(t *testing.T) {
	report, err := Sweep(context.Background(), SweepOptions{
		Profiles:   []string{"disclosure-storm"},
		Runs:       4,
		Seed:       42,
		Workers:    2,
		Invariants: []Invariant{NeverUnsafe()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Violating) == 0 {
		t.Fatal("no violating runs; disclosure-storm at seed 42 is known to breach the threshold")
	}
	for _, run := range report.Violating {
		if len(run.Violations) == 0 {
			t.Fatalf("run %s listed as violating with no violations", run.Name)
		}
		if run.Violations[0].Invariant != "never-unsafe" {
			t.Fatalf("violation names %q, want never-unsafe", run.Violations[0].Invariant)
		}
		// The (profile, index) address must regenerate the same timeline.
		p, ok := LookupProfile(run.Profile)
		if !ok {
			t.Fatalf("violating run names unknown profile %q", run.Profile)
		}
		if p.Generate(42, run.Index).Name != run.Name {
			t.Fatalf("address (%s, %d) does not regenerate run %s", run.Profile, run.Index, run.Name)
		}
	}
	if report.Invariants[0] != "never-unsafe" {
		t.Fatalf("report invariants = %v", report.Invariants)
	}
}
