package scenario

import (
	"fmt"
)

// Shrinking: given a timeline that violates an invariant, find a smaller
// timeline that still violates it. The algorithm is classic delta
// debugging (ddmin) over the event list, followed by a single-event
// removal fixpoint (so the result is 1-minimal: removing any one event
// loses the violation) and value-simplification passes (powers to 1,
// latencies to 0, ID lists and adaptive strategies cut down). Every
// candidate is judged by actually running it — a candidate whose run
// errors (it removed a join someone else references) simply does not
// reproduce and is rejected, which is standard ddmin behaviour.

// ShrinkResult is the outcome of one shrink.
type ShrinkResult struct {
	// Timeline is the minimized timeline; it still violates the target
	// invariant when run at the original seed.
	Timeline *Timeline
	// Violations are the target's violations on the minimized timeline.
	Violations []Violation
	// OriginalEvents and Events count the timeline before and after.
	OriginalEvents int
	Events         int
	// Runs is how many candidate runs the search spent.
	Runs int
}

// shrinker carries the search state.
type shrinker struct {
	seed   int64
	target Invariant
	runs   int
}

// reproduces reports whether the candidate still violates the target, and
// returns the violations when it does. Run errors and validation errors
// mean "does not reproduce" — the search only follows candidates that
// exhibit the original failure, not new ones.
func (s *shrinker) reproduces(tl *Timeline) ([]Violation, bool) {
	s.runs++
	if err := tl.Validate(); err != nil {
		return nil, false
	}
	_, violations, err := CheckRun(tl.Def(), s.seed, []Invariant{s.target})
	if err != nil || len(violations) == 0 {
		return nil, false
	}
	return violations, true
}

// withEvents clones the timeline with a replacement event list.
func withEvents(tl *Timeline, events []Event) *Timeline {
	out := tl.Clone()
	out.Events = events
	return out
}

// ddmin minimizes the event list with delta debugging: try dropping whole
// chunks at decreasing granularity until no chunk can go.
func (s *shrinker) ddmin(tl *Timeline) *Timeline {
	events := tl.Events
	n := 2
	for len(events) >= 2 {
		chunk := (len(events) + n - 1) / n
		reduced := false
		for start := 0; start < len(events); start += chunk {
			end := start + chunk
			if end > len(events) {
				end = len(events)
			}
			candidate := make([]Event, 0, len(events)-(end-start))
			candidate = append(candidate, events[:start]...)
			candidate = append(candidate, events[end:]...)
			if _, ok := s.reproduces(withEvents(tl, candidate)); ok {
				events = candidate
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(events) {
			break
		}
		n = min(2*n, len(events))
	}
	return withEvents(tl, events)
}

// minimize1 removes single events until none can go — the 1-minimality
// fixpoint the property tests assert.
func (s *shrinker) minimize1(tl *Timeline) *Timeline {
	for {
		removed := false
		for i := 0; i < len(tl.Events); i++ {
			candidate := make([]Event, 0, len(tl.Events)-1)
			candidate = append(candidate, tl.Events[:i]...)
			candidate = append(candidate, tl.Events[i+1:]...)
			if _, ok := s.reproduces(withEvents(tl, candidate)); ok {
				tl = withEvents(tl, candidate)
				removed = true
				break
			}
		}
		if !removed {
			return tl
		}
	}
}

// simplify applies value-level reductions event by event, keeping each one
// only if the violation survives: powers to 1, latencies to 0, partition/
// crash/restore ID lists cut element by element, adaptive strategies
// replaced by their first sub-strategy, severities raised to 1 and version
// pins dropped. Returns the simplified timeline and whether anything stuck.
func (s *shrinker) simplify(tl *Timeline) (*Timeline, bool) {
	changed := false
	try := func(mod func(ev *Event)) {
		for i := range tl.Events {
			candidate := tl.Clone()
			before := candidate.Events[i]
			mod(&candidate.Events[i])
			if eventsEqual(before, candidate.Events[i]) {
				continue
			}
			if _, ok := s.reproduces(candidate); ok {
				tl = candidate
				changed = true
			}
		}
	}
	try(func(ev *Event) {
		if ev.Op == OpJoin && ev.Power != 1 {
			ev.Power = 1
		}
	})
	try(func(ev *Event) {
		if ev.Op == OpJoin && ev.PatchLatency != 0 {
			ev.PatchLatency = 0
		}
	})
	try(func(ev *Event) {
		if (ev.Op == OpPartition || ev.Op == OpCrash || ev.Op == OpRestore) && len(ev.IDs) > 1 {
			ev.IDs = ev.IDs[:len(ev.IDs)-1]
		}
	})
	try(func(ev *Event) {
		if ev.Op == OpProbe && ev.Strategy != nil && ev.Strategy.Kind == "adaptive" && len(ev.Strategy.Strategies) > 0 {
			first := ev.Strategy.Strategies[0]
			ev.Strategy = &first
		}
	})
	try(func(ev *Event) {
		if ev.Op == OpDisclose && ev.Vuln != nil && ev.Vuln.Severity != 1 {
			v := *ev.Vuln
			v.Severity = 1
			ev.Vuln = &v
		}
	})
	try(func(ev *Event) {
		if ev.Op == OpDisclose && ev.Vuln != nil && ev.Vuln.Version != "" {
			v := *ev.Vuln
			v.Version = ""
			ev.Vuln = &v
		}
	})
	try(func(ev *Event) {
		if len(ev.Config) > 1 {
			ev.Config = ev.Config[:1]
		}
	})
	try(func(ev *Event) {
		// A degraded link shrinks to a pure drop fault: the latency, jitter,
		// duplication and reordering knobs go first, keeping only the loss.
		if ev.Op == OpDegrade && ev.Fault != nil &&
			(ev.Fault.ExtraLatency != 0 || ev.Fault.Jitter != 0 || ev.Fault.Duplicate != 0 || ev.Fault.Reorder != 0) {
			f := *ev.Fault
			f.ExtraLatency = 0
			f.Jitter = 0
			f.Duplicate = 0
			f.Reorder = 0
			ev.Fault = &f
		}
	})
	return tl, changed
}

// eventsEqual compares two events structurally (cheap field walk; the
// shrinker only needs "did the mod change anything").
func eventsEqual(a, b Event) bool {
	if a.Op != b.Op || a.At != b.At || a.ID != b.ID || a.Power != b.Power || a.PatchLatency != b.PatchLatency {
		return false
	}
	if len(a.IDs) != len(b.IDs) || len(a.Config) != len(b.Config) {
		return false
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			return false
		}
	}
	for i := range a.Config {
		if a.Config[i] != b.Config[i] {
			return false
		}
	}
	if (a.Vuln == nil) != (b.Vuln == nil) || (a.Vuln != nil && *a.Vuln != *b.Vuln) {
		return false
	}
	if (a.Fault == nil) != (b.Fault == nil) || (a.Fault != nil && *a.Fault != *b.Fault) {
		return false
	}
	if (a.Strategy == nil) != (b.Strategy == nil) {
		return false
	}
	if a.Strategy != nil {
		if a.Strategy.Kind != b.Strategy.Kind || a.Strategy.Budget != b.Strategy.Budget ||
			len(a.Strategy.Strategies) != len(b.Strategy.Strategies) {
			return false
		}
	}
	return true
}

// shrinkMaxPasses bounds the outer minimize/simplify loop; each pass only
// runs when the previous one changed something, so the bound is a backstop
// against a pathological oscillation, not a tuning knob.
const shrinkMaxPasses = 8

// Shrink minimizes a violating timeline against one target invariant,
// preserving the timeline's name (the name feeds seed derivation — rename
// it and you are shrinking a different run). The result is 1-minimal under
// single-event removal. Errors only when the input does not violate the
// target in the first place.
func Shrink(tl *Timeline, seed int64, target Invariant) (*ShrinkResult, error) {
	s := &shrinker{seed: seed, target: target}
	if _, ok := s.reproduces(tl); !ok {
		return nil, fmt.Errorf("scenario: timeline %s does not violate %s at seed %d; nothing to shrink",
			tl.Name, target.Name, seed)
	}
	original := len(tl.Events)
	cur := tl.Clone()
	cur = s.ddmin(cur)
	for pass := 0; pass < shrinkMaxPasses; pass++ {
		cur = s.minimize1(cur)
		simplified, changed := s.simplify(cur)
		cur = simplified
		if !changed {
			break
		}
	}
	violations, ok := s.reproduces(cur)
	if !ok {
		// Unreachable by construction — every accepted step reproduced.
		return nil, fmt.Errorf("scenario: shrink of %s lost the violation", tl.Name)
	}
	return &ShrinkResult{
		Timeline:       cur,
		Violations:     violations,
		OriginalEvents: original,
		Events:         len(cur.Events),
		Runs:           s.runs,
	}, nil
}
