package scenario

import (
	"testing"
	"time"
)

// violatesTarget reports whether the timeline still violates the invariant
// at the seed — the shrinker's own "reproduces" predicate, reimplemented
// here so the test does not trust the code under test.
func violatesTarget(t *testing.T, tl *Timeline, seed int64, target Invariant) bool {
	t.Helper()
	if err := tl.Validate(); err != nil {
		return false
	}
	_, violations, err := CheckRun(tl.Def(), seed, []Invariant{target})
	if err != nil {
		return false
	}
	return len(violations) > 0
}

// TestShrinkProperty: the shrunk timeline still violates the target, is
// 1-minimal (removing any single event loses the violation), keeps its
// name (the name feeds seed derivation), and never grows.
func TestShrinkProperty(t *testing.T) {
	p, ok := LookupProfile("disclosure-storm")
	if !ok {
		t.Fatal("disclosure-storm profile missing")
	}
	tl := p.Generate(42, 0)
	target := NeverUnsafe()
	res, err := Shrink(tl, 42, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline.Name != tl.Name {
		t.Fatalf("shrink renamed %s to %s", tl.Name, res.Timeline.Name)
	}
	if res.Events > res.OriginalEvents || res.Events != len(res.Timeline.Events) {
		t.Fatalf("event counts inconsistent: %d -> %d, %d in timeline",
			res.OriginalEvents, res.Events, len(res.Timeline.Events))
	}
	if len(res.Violations) == 0 {
		t.Fatal("shrink result carries no violations")
	}
	if !violatesTarget(t, res.Timeline, 42, target) {
		t.Fatal("shrunk timeline no longer violates the target")
	}
	// 1-minimality: every single-event removal loses the violation.
	for i := range res.Timeline.Events {
		candidate := res.Timeline.Clone()
		candidate.Events = append(candidate.Events[:i:i], candidate.Events[i+1:]...)
		if violatesTarget(t, candidate, 42, target) {
			t.Errorf("removing event %d (%s at %s) still violates: not 1-minimal",
				i, res.Timeline.Events[i].Op, res.Timeline.Events[i].At)
		}
	}
}

// TestShrinkRejectsNonViolating: a timeline that does not violate the
// target is an error, not an empty result.
func TestShrinkRejectsNonViolating(t *testing.T) {
	tl := &Timeline{
		Name:    "tl-safe",
		Title:   "one healthy join",
		Horizon: Duration(24 * time.Hour),
		Tick:    Duration(6 * time.Hour),
		Events: []Event{
			{Op: OpJoin, At: 0, ID: "a", Config: osSpec("linux", "6.1"), Power: 1},
		},
	}
	if _, err := Shrink(tl, 42, NeverUnsafe()); err == nil {
		t.Fatal("shrink accepted a non-violating timeline")
	}
}

// TestShrinkSimplifiesValues: the canonical demo shrink — disclosure-storm
// #0 at seed 42 — collapses tens of events to a couple and simplifies the
// surviving values (unit power, severity 1). This pins the shrinker's
// effectiveness, not just its soundness; if generator or engine changes
// move the minimum, update the expectations alongside.
func TestShrinkSimplifiesValues(t *testing.T) {
	p, _ := LookupProfile("disclosure-storm")
	res, err := Shrink(p.Generate(42, 0), 42, NeverUnsafe())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events > 3 {
		t.Errorf("shrunk to %d events; this fixture is known to reach <= 3", res.Events)
	}
	for _, ev := range res.Timeline.Events {
		if ev.Op == OpJoin && ev.Power != 1 {
			t.Errorf("surviving join has power %g, want simplified to 1", ev.Power)
		}
		if ev.Op == OpDisclose && ev.Vuln.Severity != 1 {
			t.Errorf("surviving disclosure has severity %g, want simplified to 1", ev.Vuln.Severity)
		}
	}
}
