package bft

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Config parameterises a cluster.
type Config struct {
	// Weights holds one voting weight per replica; replica i gets network
	// id simnet.NodeID(i). All weights must be positive and finite.
	Weights []float64
	// Timeout is the view-change timeout in virtual time (default 500ms).
	Timeout time.Duration
}

// Violation records a safety failure: two honest replicas (or one replica
// twice) committed different values at the same sequence number.
type Violation struct {
	Seq      Seq
	ReplicaA simnet.NodeID
	ReplicaB simnet.NodeID
	DigestA  cryptoutil.Digest
	DigestB  cryptoutil.Digest
}

func (v *Violation) String() string {
	return fmt.Sprintf("safety violation at seq %d: replica %d committed %s, replica %d committed %s",
		v.Seq, v.ReplicaA, v.DigestA.Short(), v.ReplicaB, v.DigestB.Short())
}

// CommitEvent records one honest commit for latency/throughput accounting.
type CommitEvent struct {
	Replica simnet.NodeID
	Seq     Seq
	Digest  cryptoutil.Digest
	At      time.Duration
}

// Cluster wires n replicas onto a simulated network and observes their
// commits for safety checking.
type Cluster struct {
	net      *simnet.Network
	cfg      Config
	replicas []*Replica
	total    float64

	values     map[cryptoutil.Digest][]byte // digest -> proposed value
	commitLog  map[Seq]map[simnet.NodeID]cryptoutil.Digest
	commits    []CommitEvent
	violation  *Violation
	submitted  int
	submitTime map[cryptoutil.Digest]time.Duration
}

// NewCluster validates the configuration and registers all replicas on the
// network.
func NewCluster(net *simnet.Network, cfg Config) (*Cluster, error) {
	if net == nil {
		return nil, errors.New("bft: nil network")
	}
	if len(cfg.Weights) < 4 {
		return nil, fmt.Errorf("bft: need at least 4 replicas, got %d", len(cfg.Weights))
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	c := &Cluster{
		net:        net,
		cfg:        cfg,
		values:     make(map[cryptoutil.Digest][]byte),
		commitLog:  make(map[Seq]map[simnet.NodeID]cryptoutil.Digest),
		submitTime: make(map[cryptoutil.Digest]time.Duration),
	}
	for i, w := range cfg.Weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("bft: invalid weight %v for replica %d", w, i)
		}
		c.total += w
		r := &Replica{
			id:           simnet.NodeID(i),
			index:        i,
			weight:       w,
			behavior:     Honest,
			cluster:      c,
			rounds:       make(map[roundKey]*round),
			committedAt:  make(map[Seq]cryptoutil.Digest),
			committedVal: make(map[Seq][]byte),
			vcVotes:      make(map[View]map[simnet.NodeID]viewChange),
		}
		c.replicas = append(c.replicas, r)
		if err := net.Register(r.id, r); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// N returns the number of replicas.
func (c *Cluster) N() int { return len(c.replicas) }

// TotalWeight returns the summed voting power.
func (c *Cluster) TotalWeight() float64 { return c.total }

// ToleratedWeight returns the Byzantine power bound f = total/3 (exclusive).
func (c *Cluster) ToleratedWeight() float64 { return c.total / 3 }

// Replica returns replica i.
func (c *Cluster) Replica(i int) *Replica { return c.replicas[i] }

// SetBehavior sets replica i's behaviour (fault injection hook).
func (c *Cluster) SetBehavior(i int, b Behavior) { c.replicas[i].behavior = b }

// ByzantineWeight sums the voting power of non-honest replicas.
func (c *Cluster) ByzantineWeight() float64 {
	var w float64
	for _, r := range c.replicas {
		if r.behavior != Honest {
			w += r.weight
		}
	}
	return w
}

// Submit injects a client value: it is delivered to every replica (as a
// client broadcast), and the current primary proposes it.
func (c *Cluster) Submit(value []byte) {
	c.submitted++
	d := valueDigest(value)
	if _, seen := c.submitTime[d]; !seen {
		c.submitTime[d] = c.sched().Now()
	}
	c.rememberValue(d, value)
	for _, r := range c.replicas {
		r := r
		// Clients reach every replica directly (they are not subject to
		// replica-to-replica partitions); one scheduler hop keeps the
		// ordering causal and replayable.
		c.sched().After(time.Millisecond, "bft/client-request", func() {
			if !c.net.IsDown(r.id) {
				r.HandleMessage(clientID, request{Value: value})
			}
		})
	}
}

// clientID is the pseudo-node used as the source of client requests. It is
// never registered, so nothing can send to it.
const clientID simnet.NodeID = -1

// EquivocateNext makes the current primary (which must be non-honest)
// propose value a to the first half of the other replicas and value b to
// the rest, using the next sequence number — the proposal-equivocation half
// of the double-commit attack.
func (c *Cluster) EquivocateNext(a, b []byte) error {
	primary := c.replicas[c.primaryIndex(c.replicas[0].view)]
	if primary.behavior == Honest {
		return errors.New("bft: refusing to equivocate from an honest primary")
	}
	primary.nextSeq++
	seq := primary.nextSeq
	c.rememberValue(valueDigest(a), a)
	c.rememberValue(valueDigest(b), b)
	ppA := prePrepare{View: primary.view, Seq: seq, Digest: valueDigest(a), Value: a}
	ppB := prePrepare{View: primary.view, Seq: seq, Digest: valueDigest(b), Value: b}
	var honest []*Replica
	for _, r := range c.replicas {
		if r.id == primary.id {
			continue
		}
		if r.behavior == Honest {
			honest = append(honest, r)
		} else {
			// Byzantine colluders see both proposals.
			c.net.Send(primary.id, r.id, ppA)
			c.net.Send(primary.id, r.id, ppB)
		}
	}
	for i, r := range honest {
		if i < len(honest)/2 {
			c.net.Send(primary.id, r.id, ppA)
		} else {
			c.net.Send(primary.id, r.id, ppB)
		}
	}
	return nil
}

// Violation returns the first observed safety violation, or nil.
func (c *Cluster) Violation() *Violation { return c.violation }

// Commits returns all honest commit events observed so far.
func (c *Cluster) Commits() []CommitEvent {
	return append([]CommitEvent(nil), c.commits...)
}

// CommitLatency returns the virtual-time latency from Submit to the first
// honest commit of the value, and whether the value committed at all.
func (c *Cluster) CommitLatency(value []byte) (time.Duration, bool) {
	d := valueDigest(value)
	start, ok := c.submitTime[d]
	if !ok {
		return 0, false
	}
	for _, ev := range c.commits {
		if ev.Digest == d {
			return ev.At - start, true
		}
	}
	return 0, false
}

// HonestCommittedCount returns how many honest replicas committed the given
// value at some slot.
func (c *Cluster) HonestCommittedCount(value []byte) int {
	d := valueDigest(value)
	n := 0
	for _, r := range c.replicas {
		if r.behavior != Honest {
			continue
		}
		for _, got := range r.committedAt {
			if got == d {
				n++
				break
			}
		}
	}
	return n
}

// --- internal plumbing used by replicas ---

func (c *Cluster) sched() *sim.Scheduler { return c.net.Scheduler() }

func (c *Cluster) primaryIndex(v View) int { return int(uint64(v) % uint64(len(c.replicas))) }

func (c *Cluster) primaryID(v View) simnet.NodeID {
	return c.replicas[c.primaryIndex(v)].id
}

func (c *Cluster) weightOf(id simnet.NodeID) float64 {
	if id < 0 || int(id) >= len(c.replicas) {
		return 0
	}
	return c.replicas[id].weight
}

// isQuorum reports whether weight w is a valid quorum: strictly more than
// two thirds of total voting power.
func (c *Cluster) isQuorum(w float64) bool { return w > 2*c.total/3 }

// broadcast sends msg to every replica and loops it back to the sender
// synchronously (a replica's own vote counts immediately).
func (c *Cluster) broadcast(from simnet.NodeID, msg any) {
	c.net.Broadcast(from, msg)
	if int(from) < len(c.replicas) && from >= 0 {
		c.replicas[from].HandleMessage(from, msg)
	}
}

func (c *Cluster) rememberValue(d cryptoutil.Digest, value []byte) {
	if _, ok := c.values[d]; !ok {
		c.values[d] = append([]byte(nil), value...)
	}
}

func (c *Cluster) valueOf(d cryptoutil.Digest) ([]byte, bool) {
	v, ok := c.values[d]
	return v, ok
}

// onCommit records an honest replica's commit and checks cross-replica
// agreement at the slot.
func (c *Cluster) onCommit(r *Replica, s Seq, d cryptoutil.Digest, _ []byte) {
	if r.behavior != Honest {
		return
	}
	c.commits = append(c.commits, CommitEvent{Replica: r.id, Seq: s, Digest: d, At: c.sched().Now()})
	slot := c.commitLog[s]
	if slot == nil {
		slot = make(map[simnet.NodeID]cryptoutil.Digest)
		c.commitLog[s] = slot
	}
	for other, otherDigest := range slot {
		if otherDigest != d && c.violation == nil {
			c.violation = &Violation{
				Seq: s, ReplicaA: other, ReplicaB: r.id,
				DigestA: otherDigest, DigestB: d,
			}
		}
	}
	slot[r.id] = d
}

// reportConflict records an intra-replica double commit (same slot, two
// digests observed by one replica).
func (c *Cluster) reportConflict(r *Replica, s Seq, a, b cryptoutil.Digest) {
	if r.behavior == Honest && c.violation == nil {
		c.violation = &Violation{Seq: s, ReplicaA: r.id, ReplicaB: r.id, DigestA: a, DigestB: b}
	}
}
