package bft

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func newCluster(t *testing.T, seed int64, weights []float64) (*Cluster, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler(seed)
	net, err := simnet.New(sched, simnet.UniformLatency{Min: time.Millisecond, Max: 10 * time.Millisecond}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(net, Config{Weights: weights, Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return cl, sched
}

func unitWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestNewClusterValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	net, _ := simnet.New(sched, simnet.FixedLatency(0), 0)
	if _, err := NewCluster(nil, Config{Weights: unitWeights(4)}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := NewCluster(net, Config{Weights: unitWeights(3)}); err == nil {
		t.Fatal("3 replicas accepted")
	}
	if _, err := NewCluster(net, Config{Weights: []float64{1, 1, 1, -1}}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewCluster(net, Config{Weights: []float64{1, 1, 1, 0}}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestCommitSingleValue(t *testing.T) {
	cl, sched := newCluster(t, 1, unitWeights(4))
	cl.Submit([]byte("tx-1"))
	sched.Run(5 * time.Second)
	if v := cl.Violation(); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	for i := 0; i < 4; i++ {
		got := cl.Replica(i).Committed()
		if len(got) != 1 || string(got[0]) != "tx-1" {
			t.Fatalf("replica %d committed %q", i, got)
		}
	}
	if lat, ok := cl.CommitLatency([]byte("tx-1")); !ok || lat <= 0 {
		t.Fatalf("latency = %v, %v", lat, ok)
	}
}

func TestCommitManyValuesInOrderEverywhere(t *testing.T) {
	cl, sched := newCluster(t, 2, unitWeights(7))
	const total = 20
	for i := 0; i < total; i++ {
		cl.Submit([]byte(fmt.Sprintf("tx-%03d", i)))
	}
	sched.Run(time.Minute)
	if v := cl.Violation(); v != nil {
		t.Fatalf("violation: %v", v)
	}
	ref := cl.Replica(0).Committed()
	if len(ref) != total {
		t.Fatalf("replica 0 committed %d of %d", len(ref), total)
	}
	for i := 1; i < cl.N(); i++ {
		got := cl.Replica(i).Committed()
		if len(got) != total {
			t.Fatalf("replica %d committed %d of %d", i, len(got), total)
		}
		for s := range ref {
			if string(got[s]) != string(ref[s]) {
				t.Fatalf("replica %d slot %d = %q, replica 0 has %q", i, s, got[s], ref[s])
			}
		}
	}
}

func TestDuplicateSubmitCommitsOnce(t *testing.T) {
	cl, sched := newCluster(t, 3, unitWeights(4))
	cl.Submit([]byte("dup"))
	sched.Run(2 * time.Second)
	cl.Submit([]byte("dup"))
	sched.Run(5 * time.Second)
	got := cl.Replica(0).Committed()
	if len(got) != 1 {
		t.Fatalf("committed %d, want 1 (duplicate suppressed)", len(got))
	}
}

func TestToleratesSilentMinority(t *testing.T) {
	cl, sched := newCluster(t, 4, unitWeights(7))
	cl.SetBehavior(2, Silent)
	cl.SetBehavior(5, Silent) // 2 of 7 < 1/3
	cl.Submit([]byte("tx"))
	sched.Run(10 * time.Second)
	if v := cl.Violation(); v != nil {
		t.Fatalf("violation: %v", v)
	}
	if n := cl.HonestCommittedCount([]byte("tx")); n != 5 {
		t.Fatalf("honest commits = %d, want 5", n)
	}
}

func TestViewChangeAfterPrimaryCrash(t *testing.T) {
	cl, sched := newCluster(t, 5, unitWeights(4))
	cl.SetBehavior(0, Silent) // view-0 primary is dead from the start
	cl.Submit([]byte("survive"))
	sched.Run(time.Minute)
	if v := cl.Violation(); v != nil {
		t.Fatalf("violation: %v", v)
	}
	if n := cl.HonestCommittedCount([]byte("survive")); n != 3 {
		t.Fatalf("honest commits = %d, want 3 (after view change)", n)
	}
	// Replicas moved past view 0.
	for i := 1; i < 4; i++ {
		if cl.Replica(i).View() == 0 {
			t.Fatalf("replica %d still in view 0", i)
		}
	}
}

func TestViewChangeAfterRepeatedCrashes(t *testing.T) {
	cl, sched := newCluster(t, 6, unitWeights(7))
	cl.SetBehavior(0, Silent)
	cl.SetBehavior(1, Silent) // primaries of views 0 and 1 both dead (2 < 7/3)
	cl.Submit([]byte("keep-going"))
	sched.Run(2 * time.Minute)
	if n := cl.HonestCommittedCount([]byte("keep-going")); n != 5 {
		t.Fatalf("honest commits = %d, want 5 (view must advance twice)", n)
	}
}

func TestCrashedPrimaryMidstream(t *testing.T) {
	cl, sched := newCluster(t, 7, unitWeights(4))
	cl.Submit([]byte("first"))
	sched.Run(2 * time.Second)
	// Kill the primary, then submit more work.
	cl.SetBehavior(0, Silent)
	cl.net.SetDown(0, true)
	cl.Submit([]byte("second"))
	sched.Run(2 * time.Minute)
	if v := cl.Violation(); v != nil {
		t.Fatalf("violation: %v", v)
	}
	if n := cl.HonestCommittedCount([]byte("second")); n != 3 {
		t.Fatalf("honest commits of second = %d, want 3", n)
	}
}

func TestEquivocationBelowThresholdIsSafe(t *testing.T) {
	// 7 unit replicas; 2 Byzantine (primary + 1 colluder) = 2/7 < 1/3.
	cl, sched := newCluster(t, 8, unitWeights(7))
	cl.SetBehavior(0, Promiscuous) // view-0 primary
	cl.SetBehavior(3, Promiscuous)
	if err := cl.EquivocateNext([]byte("A"), []byte("B")); err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Minute)
	if v := cl.Violation(); v != nil {
		t.Fatalf("safety violated with Byzantine weight within bound: %v", v)
	}
}

func TestEquivocationAboveThresholdViolatesSafety(t *testing.T) {
	// 7 unit replicas; 3 Byzantine (primary + 2 colluders) = 3/7 > 1/3.
	cl, sched := newCluster(t, 9, unitWeights(7))
	cl.SetBehavior(0, Promiscuous)
	cl.SetBehavior(3, Promiscuous)
	cl.SetBehavior(5, Promiscuous)
	if err := cl.EquivocateNext([]byte("A"), []byte("B")); err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Minute)
	v := cl.Violation()
	if v == nil {
		t.Fatal("no violation despite Byzantine weight above bound")
	}
	if v.DigestA == v.DigestB {
		t.Fatalf("violation with equal digests: %v", v)
	}
}

func TestEquivocationRequiresByzantinePrimary(t *testing.T) {
	cl, _ := newCluster(t, 10, unitWeights(4))
	if err := cl.EquivocateNext([]byte("A"), []byte("B")); err == nil {
		t.Fatal("honest primary equivocated")
	}
}

func TestWeightedByzantineBound(t *testing.T) {
	// One heavyweight replica holds 40% of power: compromising just it
	// (plus an equivocating primary path) breaks safety even though it is
	// 1 of 5 replicas — voting power, not replica count, is what matters
	// (Sec. II-A).
	weights := []float64{2.5, 1, 1, 1, 0.75} // replica 0: 2.5/6.25 = 40%
	cl, sched := newCluster(t, 11, weights)
	cl.SetBehavior(0, Promiscuous) // the heavyweight is also view-0 primary
	if err := cl.EquivocateNext([]byte("A"), []byte("B")); err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Minute)
	if cl.Violation() == nil {
		t.Fatal("40% Byzantine power did not break safety")
	}
}

func TestByzantineWeightAccounting(t *testing.T) {
	cl, _ := newCluster(t, 12, unitWeights(4))
	if cl.ByzantineWeight() != 0 {
		t.Fatal("fresh cluster has Byzantine weight")
	}
	cl.SetBehavior(1, Silent)
	if cl.ByzantineWeight() != 1 {
		t.Fatalf("byz weight = %v", cl.ByzantineWeight())
	}
	if cl.TotalWeight() != 4 || cl.ToleratedWeight() <= 1.3 || cl.ToleratedWeight() >= 1.4 {
		t.Fatalf("total %v tolerated %v", cl.TotalWeight(), cl.ToleratedWeight())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, string) {
		cl, sched := newCluster(t, 77, unitWeights(7))
		for i := 0; i < 10; i++ {
			cl.Submit([]byte(fmt.Sprintf("tx-%d", i)))
		}
		sched.Run(30 * time.Second)
		var tail string
		if got := cl.Replica(3).Committed(); len(got) > 0 {
			tail = string(got[len(got)-1])
		}
		return len(cl.Commits()), tail
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 != n2 || t1 != t2 {
		t.Fatalf("runs diverged: (%d,%q) vs (%d,%q)", n1, t1, n2, t2)
	}
}

func TestMessageOverheadGrowsWithN(t *testing.T) {
	// Proposition 3's cost side: per-consensus message count grows with
	// replica count.
	count := func(n int) uint64 {
		cl, sched := newCluster(t, 13, unitWeights(n))
		cl.Submit([]byte("x"))
		sched.Run(10 * time.Second)
		if cl.HonestCommittedCount([]byte("x")) != n {
			t.Fatalf("n=%d: not all replicas committed", n)
		}
		return cl.net.Stats().Sent
	}
	small, large := count(4), count(16)
	if large <= small {
		t.Fatalf("messages: n=4 -> %d, n=16 -> %d; want growth", small, large)
	}
}

func TestCommitsUnderLossyNetwork(t *testing.T) {
	sched := sim.NewScheduler(21)
	net, _ := simnet.New(sched, simnet.UniformLatency{Min: time.Millisecond, Max: 10 * time.Millisecond}, 0.05)
	cl, err := NewCluster(net, Config{Weights: unitWeights(7), Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cl.Submit([]byte("lossy"))
	sched.Run(2 * time.Minute)
	if v := cl.Violation(); v != nil {
		t.Fatalf("violation under loss: %v", v)
	}
	// With 5% loss and quorum redundancy the value should still commit on
	// a strong majority of replicas.
	if n := cl.HonestCommittedCount([]byte("lossy")); n < 5 {
		t.Fatalf("honest commits = %d under 5%% loss", n)
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	cl, sched := newCluster(t, 51, unitWeights(4))
	r := cl.Replica(2)
	if r.ID() != 2 || r.Weight() != 1 || r.Behavior() != Honest {
		t.Fatalf("accessors: id=%v w=%v b=%v", r.ID(), r.Weight(), r.Behavior())
	}
	for _, b := range []Behavior{Honest, Silent, Promiscuous, Behavior(42)} {
		if b.String() == "" {
			t.Fatalf("empty string for behavior %d", b)
		}
	}
	cl.Submit([]byte("acc"))
	sched.Run(5 * time.Second)
	if r.LastExecuted() != 1 {
		t.Fatalf("last executed = %d", r.LastExecuted())
	}
	if d, ok := r.CommittedAt(1); !ok || d.IsZero() {
		t.Fatalf("CommittedAt(1) = %v,%v", d, ok)
	}
	if _, ok := r.CommittedAt(99); ok {
		t.Fatal("CommittedAt(99) found")
	}
	if _, ok := cl.CommitLatency([]byte("never-submitted")); ok {
		t.Fatal("latency for unknown value")
	}
	v := &Violation{Seq: 3, ReplicaA: 1, ReplicaB: 2}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
	if len(cl.Commits()) == 0 {
		t.Fatal("no commit events recorded")
	}
}

func TestMalformedProposalRejected(t *testing.T) {
	cl, sched := newCluster(t, 52, unitWeights(4))
	// A pre-prepare whose digest does not match its value must be ignored.
	bad := prePrepare{View: 0, Seq: 1, Digest: valueDigest([]byte("other")), Value: []byte("value")}
	cl.net.Send(0, 1, bad)
	// And a proposal from a non-primary must be ignored too.
	good := prePrepare{View: 0, Seq: 1, Digest: valueDigest([]byte("v")), Value: []byte("v")}
	cl.net.Send(2, 1, good)
	sched.Run(5 * time.Second)
	if len(cl.Replica(1).Committed()) != 0 {
		t.Fatal("malformed or non-primary proposal progressed")
	}
	if cl.Violation() != nil {
		t.Fatal("unexpected violation")
	}
}
