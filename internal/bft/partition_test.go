package bft

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Partition and asynchrony scenarios: BFT must never violate safety under
// arbitrary network conditions (only liveness may suffer), and must resume
// when the network heals.

func TestMinorityPartitionCannotCommit(t *testing.T) {
	cl, sched := newCluster(t, 31, unitWeights(7))
	// Isolate replicas 5 and 6 (a minority island).
	cl.net.SetPartitions([]simnet.NodeID{0, 1, 2, 3, 4}, []simnet.NodeID{5, 6})
	cl.Submit([]byte("majority-side"))
	sched.Run(30 * time.Second)
	if v := cl.Violation(); v != nil {
		t.Fatalf("violation under partition: %v", v)
	}
	// The majority side commits; the island cannot.
	if n := cl.HonestCommittedCount([]byte("majority-side")); n != 5 {
		t.Fatalf("majority commits = %d, want 5", n)
	}
	for _, i := range []int{5, 6} {
		if len(cl.Replica(i).Committed()) != 0 {
			t.Fatalf("isolated replica %d committed", i)
		}
	}
}

func TestNoQuorumSideEverCommits(t *testing.T) {
	// Split 4/3: neither side has > 2/3 of 7.
	cl, sched := newCluster(t, 32, unitWeights(7))
	cl.net.SetPartitions([]simnet.NodeID{0, 1, 2, 3}, []simnet.NodeID{4, 5, 6})
	cl.Submit([]byte("stuck"))
	sched.Run(time.Minute)
	if v := cl.Violation(); v != nil {
		t.Fatalf("violation: %v", v)
	}
	if n := cl.HonestCommittedCount([]byte("stuck")); n != 0 {
		t.Fatalf("commits under no-quorum split = %d, want 0", n)
	}
}

func TestHealedPartitionResumesLiveness(t *testing.T) {
	cl, sched := newCluster(t, 33, unitWeights(7))
	cl.net.SetPartitions([]simnet.NodeID{0, 1, 2, 3}, []simnet.NodeID{4, 5, 6})
	cl.Submit([]byte("delayed"))
	sched.Run(10 * time.Second)
	if n := cl.HonestCommittedCount([]byte("delayed")); n != 0 {
		t.Fatalf("pre-heal commits = %d", n)
	}
	// Heal: pending requests and view-change retries must drive progress.
	cl.net.SetPartitions()
	sched.Run(3 * time.Minute)
	if v := cl.Violation(); v != nil {
		t.Fatalf("violation after heal: %v", v)
	}
	if n := cl.HonestCommittedCount([]byte("delayed")); n != 7 {
		t.Fatalf("post-heal commits = %d, want 7", n)
	}
}

func TestWeightedViewChange(t *testing.T) {
	// Weighted quorums in the view-change path: a crashed heavyweight
	// primary (weight 2 of total 6) leaves exactly 2/3 — not a quorum —
	// so the remaining replicas alone must NOT be able to change views...
	// unless the tolerance math says otherwise: quorum needs > 4. Honest
	// weight is 4, so no view change (and no progress) is possible.
	weights := []float64{2, 1, 1, 1, 1} // total 6, quorum > 4
	cl, sched := newCluster(t, 34, weights)
	cl.SetBehavior(0, Silent)
	cl.Submit([]byte("blocked"))
	sched.Run(2 * time.Minute)
	if v := cl.Violation(); v != nil {
		t.Fatalf("violation: %v", v)
	}
	if n := cl.HonestCommittedCount([]byte("blocked")); n != 0 {
		t.Fatalf("commits = %d, want 0: honest weight 4 is not a quorum of 6", n)
	}

	// With a lighter primary (weight 1 of total 5), honest weight 4 > 10/3
	// is a quorum: the view change succeeds and the value commits.
	weights2 := []float64{1, 1, 1, 1, 1}
	cl2, sched2 := newCluster(t, 35, weights2)
	cl2.SetBehavior(0, Silent)
	cl2.Submit([]byte("unblocked"))
	sched2.Run(2 * time.Minute)
	if n := cl2.HonestCommittedCount([]byte("unblocked")); n != 4 {
		t.Fatalf("commits = %d, want 4", n)
	}
}

func TestAsynchronousDeliverySafety(t *testing.T) {
	// Extreme jitter: latencies spanning two orders of magnitude. Safety
	// and eventual liveness must both hold.
	sched := sim.NewScheduler(36)
	net, err := simnet.New(sched, simnet.UniformLatency{Min: time.Millisecond, Max: 400 * time.Millisecond}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(net, Config{Weights: unitWeights(7), Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		cl.Submit([]byte{byte(i)})
	}
	sched.Run(5 * time.Minute)
	if v := cl.Violation(); v != nil {
		t.Fatalf("violation under jitter: %v", v)
	}
	for i := 0; i < 10; i++ {
		if n := cl.HonestCommittedCount([]byte{byte(i)}); n != 7 {
			t.Fatalf("value %d committed on %d/7 replicas", i, n)
		}
	}
}

func TestViewChangePreservesPreparedValue(t *testing.T) {
	// A value that reached the prepared state before the primary crashed
	// must be the one committed after the view change (PBFT's safety
	// across views). We approximate by crashing the primary *after* it
	// proposed: prepares circulate, then the view changes.
	cl, sched := newCluster(t, 37, unitWeights(4))
	cl.Submit([]byte("carry-me"))
	// Crash the primary shortly after proposal; prepares are in flight.
	sched.After(15*time.Millisecond, "crash-primary", func() {
		cl.SetBehavior(0, Silent)
		cl.net.SetDown(0, true)
	})
	sched.Run(2 * time.Minute)
	if v := cl.Violation(); v != nil {
		t.Fatalf("violation: %v", v)
	}
	if n := cl.HonestCommittedCount([]byte("carry-me")); n != 3 {
		t.Fatalf("commits = %d, want 3 (value carried across view change)", n)
	}
	// All honest replicas agree on slot contents.
	var ref []string
	for i := 1; i < 4; i++ {
		var got []string
		for _, v := range cl.Replica(i).Committed() {
			got = append(got, string(v))
		}
		if ref == nil {
			ref = got
		} else if len(got) != len(ref) {
			t.Fatalf("logs diverge in length: %v vs %v", got, ref)
		}
	}
}
