package bft

import "repro/internal/core"

// Substrate returns the quorum-BFT consensus family for
// core.WithSubstrate: safety holds while Byzantine voting power stays at
// or below f = 1/3 (Sec. II-C applied to the three-phase commit protocol
// this package simulates).
func Substrate() core.Substrate {
	return core.Family{FamilyName: "bft", FaultTolerance: core.BFTThreshold}
}
