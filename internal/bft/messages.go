// Package bft implements a deterministic, weighted PBFT-style Byzantine
// fault-tolerant state machine replication protocol over internal/simnet.
//
// The protocol is the classic three-phase pattern (pre-prepare → prepare →
// commit) with view changes, generalised to weighted voting: each replica
// carries voting power, quorums require strictly more than 2/3 of total
// power, and safety holds while Byzantine power stays at or below 1/3 — the
// paper's f as a power fraction (Sec. II-A's "voting power" abstraction
// covers both fixed-n BFT and stake/hash-weighted settings).
//
// The implementation is event-driven and single-threaded on the virtual
// scheduler, so every safety violation produced by the fault-injection
// experiments replays exactly from a seed. internal/bftlive wraps the same
// replica logic in a goroutine-per-replica runtime to demonstrate it under
// real concurrency.
package bft

import (
	"fmt"

	"repro/internal/cryptoutil"
)

// View numbers views; the primary of view v over n replicas is replica
// v mod n (by index in the cluster's replica list).
type View uint64

// Seq numbers consensus slots.
type Seq uint64

// prePrepare is the primary's proposal for a slot.
type prePrepare struct {
	View   View
	Seq    Seq
	Digest cryptoutil.Digest
	Value  []byte
}

// prepare is a replica's first-phase vote.
type prepare struct {
	View   View
	Seq    Seq
	Digest cryptoutil.Digest
}

// commitMsg is a replica's second-phase vote.
type commitMsg struct {
	View   View
	Seq    Seq
	Digest cryptoutil.Digest
}

// viewChange asks to move to NewView, carrying the sender's highest
// prepared certificate (if any) so the new primary re-proposes safely.
type viewChange struct {
	NewView View
	// PreparedSeq/PreparedDigest/PreparedValue describe the sender's
	// highest slot that reached the prepared state, or zeroes.
	PreparedSeq    Seq
	PreparedDigest cryptoutil.Digest
	PreparedValue  []byte
	HasPrepared    bool
}

// newView announces the new primary's takeover; followers adopt the view.
type newView struct {
	View View
}

// request carries a client value into the cluster (every replica receives
// it; non-primaries use it to arm view-change timers).
type request struct {
	Value []byte
}

func valueDigest(value []byte) cryptoutil.Digest {
	return cryptoutil.Hash([]byte("repro/bft/value/v1"), value)
}

func (p prePrepare) String() string {
	return fmt.Sprintf("PRE-PREPARE{v=%d seq=%d %s}", p.View, p.Seq, p.Digest.Short())
}
