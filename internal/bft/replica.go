package bft

import (
	"sort"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Behavior selects how a replica acts. The Byzantine behaviours implement
// the paper's adversary: a compromised replica "can behave arbitrarily";
// the two concrete strategies here are the ones that matter for safety and
// liveness experiments.
type Behavior int

// Replica behaviours.
const (
	// Honest follows the protocol.
	Honest Behavior = iota
	// Silent never sends protocol messages (Byzantine mutism / crash).
	Silent
	// Promiscuous votes prepare and commit for every digest it observes,
	// regardless of conflicts — the vote-duplication half of the classic
	// equivocation attack. Harmless while Byzantine power <= 1/3 of total;
	// past that bound it lets an equivocating primary form two conflicting
	// commit certificates.
	Promiscuous
)

// String names the behaviour.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Silent:
		return "silent"
	case Promiscuous:
		return "promiscuous"
	default:
		return "behavior(?)"
	}
}

// round tracks one (view, seq) consensus slot at one replica.
type round struct {
	view           View
	seq            Seq
	acceptedDigest cryptoutil.Digest // digest of the pre-prepare this replica accepted
	acceptedValue  []byte
	accepted       bool
	prepareVoters  map[cryptoutil.Digest]map[simnet.NodeID]bool
	commitVoters   map[cryptoutil.Digest]map[simnet.NodeID]bool
	sentPrepare    map[cryptoutil.Digest]bool
	sentCommit     map[cryptoutil.Digest]bool
	prepared       bool
	committed      bool
}

func newRound(v View, s Seq) *round {
	return &round{
		view:          v,
		seq:           s,
		prepareVoters: make(map[cryptoutil.Digest]map[simnet.NodeID]bool),
		commitVoters:  make(map[cryptoutil.Digest]map[simnet.NodeID]bool),
		sentPrepare:   make(map[cryptoutil.Digest]bool),
		sentCommit:    make(map[cryptoutil.Digest]bool),
	}
}

type roundKey struct {
	view View
	seq  Seq
}

// Replica is one BFT replica. All methods run on the scheduler goroutine.
type Replica struct {
	id       simnet.NodeID
	index    int
	weight   float64
	behavior Behavior
	cluster  *Cluster

	view         View
	nextSeq      Seq
	rounds       map[roundKey]*round
	committedAt  map[Seq]cryptoutil.Digest
	committedVal map[Seq][]byte
	lastExec     Seq

	pending      [][]byte // client values awaiting commitment
	vcVotes      map[View]map[simnet.NodeID]viewChange
	vcTimer      *sim.Timer
	vcBackoff    time.Duration
	vcTarget     View // highest view this replica has voted to enter
	inViewChange bool

	// prepared certificate carried into view changes
	hasPrepared    bool
	preparedSeq    Seq
	preparedDigest cryptoutil.Digest
	preparedValue  []byte
}

// ID returns the replica's network id.
func (r *Replica) ID() simnet.NodeID { return r.id }

// Weight returns the replica's voting power.
func (r *Replica) Weight() float64 { return r.weight }

// Behavior returns the replica's current behaviour.
func (r *Replica) Behavior() Behavior { return r.behavior }

// View returns the replica's current view.
func (r *Replica) View() View { return r.view }

// LastExecuted returns the highest contiguously executed sequence number.
func (r *Replica) LastExecuted() Seq { return r.lastExec }

// Committed returns the committed values in sequence order up to the last
// contiguously executed slot.
func (r *Replica) Committed() [][]byte {
	out := make([][]byte, 0, r.lastExec)
	for s := Seq(1); s <= r.lastExec; s++ {
		out = append(out, r.committedVal[s])
	}
	return out
}

// CommittedAt returns the digest committed at a slot, if any.
func (r *Replica) CommittedAt(s Seq) (cryptoutil.Digest, bool) {
	d, ok := r.committedAt[s]
	return d, ok
}

func (r *Replica) isPrimary() bool {
	return r.cluster.primaryIndex(r.view) == r.index
}

// HandleMessage implements simnet.Handler.
func (r *Replica) HandleMessage(from simnet.NodeID, msg any) {
	if r.behavior == Silent {
		return
	}
	switch m := msg.(type) {
	case request:
		r.onRequest(m)
	case prePrepare:
		r.onPrePrepare(from, m)
	case prepare:
		r.onPrepare(from, m)
	case commitMsg:
		r.onCommit(from, m)
	case viewChange:
		r.onViewChange(from, m)
	case newView:
		r.onNewView(from, m)
	}
}

func (r *Replica) onRequest(m request) {
	if r.alreadyCommittedValue(m.Value) {
		return
	}
	r.pending = append(r.pending, m.Value)
	if r.isPrimary() && !r.inViewChange {
		r.propose(m.Value)
	}
	r.armTimer()
}

func (r *Replica) alreadyCommittedValue(value []byte) bool {
	d := valueDigest(value)
	for _, got := range r.committedAt {
		if got == d {
			return true
		}
	}
	return false
}

// propose assigns the next sequence number and broadcasts a pre-prepare.
func (r *Replica) propose(value []byte) {
	r.nextSeq++
	pp := prePrepare{View: r.view, Seq: r.nextSeq, Digest: valueDigest(value), Value: value}
	r.cluster.broadcast(r.id, pp)
}

func (r *Replica) getRound(v View, s Seq) *round {
	k := roundKey{view: v, seq: s}
	rd, ok := r.rounds[k]
	if !ok {
		rd = newRound(v, s)
		r.rounds[k] = rd
	}
	return rd
}

func (r *Replica) onPrePrepare(from simnet.NodeID, m prePrepare) {
	if from != r.cluster.primaryID(m.View) {
		return // only the view's primary may propose
	}
	if m.View < r.view {
		return
	}
	if valueDigest(m.Value) != m.Digest {
		return // malformed proposal
	}
	rd := r.getRound(m.View, m.Seq)
	switch r.behavior {
	case Honest:
		if rd.accepted {
			return // at most one accepted pre-prepare per (view, seq)
		}
		rd.accepted = true
		rd.acceptedDigest = m.Digest
		rd.acceptedValue = m.Value
		r.votePrepare(rd, m.Digest)
	case Promiscuous:
		// Accept (and remember a value for) every proposal; vote for all.
		if !rd.accepted {
			rd.accepted = true
			rd.acceptedDigest = m.Digest
			rd.acceptedValue = m.Value
		}
		r.votePrepare(rd, m.Digest)
	}
	// Remember the value so a conflicting digest can still be executed if
	// it gathers a quorum (needed to surface safety violations).
	r.cluster.rememberValue(m.Digest, m.Value)
}

func (r *Replica) votePrepare(rd *round, d cryptoutil.Digest) {
	if rd.sentPrepare[d] {
		return
	}
	rd.sentPrepare[d] = true
	r.recordPrepare(r.id, rd, d)
	r.cluster.broadcast(r.id, prepare{View: rd.view, Seq: rd.seq, Digest: d})
}

func (r *Replica) voteCommit(rd *round, d cryptoutil.Digest) {
	if rd.sentCommit[d] {
		return
	}
	rd.sentCommit[d] = true
	r.recordCommit(r.id, rd, d)
	r.cluster.broadcast(r.id, commitMsg{View: rd.view, Seq: rd.seq, Digest: d})
}

func (r *Replica) onPrepare(from simnet.NodeID, m prepare) {
	rd := r.getRound(m.View, m.Seq)
	r.recordPrepare(from, rd, m.Digest)
	if r.behavior == Promiscuous {
		// Echo votes for any digest with any support.
		r.votePrepare(rd, m.Digest)
	}
}

func (r *Replica) onCommit(from simnet.NodeID, m commitMsg) {
	rd := r.getRound(m.View, m.Seq)
	r.recordCommit(from, rd, m.Digest)
	if r.behavior == Promiscuous {
		r.voteCommit(rd, m.Digest)
	}
}

func (r *Replica) recordPrepare(from simnet.NodeID, rd *round, d cryptoutil.Digest) {
	voters := rd.prepareVoters[d]
	if voters == nil {
		voters = make(map[simnet.NodeID]bool)
		rd.prepareVoters[d] = voters
	}
	if voters[from] {
		return
	}
	voters[from] = true
	r.checkPrepared(rd)
}

func (r *Replica) recordCommit(from simnet.NodeID, rd *round, d cryptoutil.Digest) {
	voters := rd.commitVoters[d]
	if voters == nil {
		voters = make(map[simnet.NodeID]bool)
		rd.commitVoters[d] = voters
	}
	if voters[from] {
		return
	}
	voters[from] = true
	r.checkCommitted(rd)
}

// checkPrepared moves the round to prepared when the accepted digest has a
// prepare quorum, then broadcasts the commit vote.
func (r *Replica) checkPrepared(rd *round) {
	if rd.prepared || !rd.accepted {
		return
	}
	if !r.cluster.isQuorum(r.voterWeight(rd.prepareVoters[rd.acceptedDigest])) {
		return
	}
	rd.prepared = true
	if !rd.committed && (!r.hasPrepared || rd.seq >= r.preparedSeq) {
		r.hasPrepared = true
		r.preparedSeq = rd.seq
		r.preparedDigest = rd.acceptedDigest
		r.preparedValue = rd.acceptedValue
	}
	r.voteCommit(rd, rd.acceptedDigest)
}

// checkCommitted fires when any digest in the round has a commit quorum.
// Honest replicas only ever send commits for their accepted digest, but
// they must still *detect* quorums for other digests formed by Byzantine
// double votes: that detection is exactly how a real deployment would
// observe the safety violation.
func (r *Replica) checkCommitted(rd *round) {
	if rd.committed {
		return
	}
	for d, voters := range rd.commitVoters {
		if !r.cluster.isQuorum(r.voterWeight(voters)) {
			continue
		}
		// For honest replicas the executable digest must be the accepted
		// one; a quorum on a different digest can only happen when the
		// adversary exceeds the tolerance, and executing it is precisely
		// the safety failure the experiments measure.
		if r.behavior == Honest && rd.accepted && d != rd.acceptedDigest {
			continue
		}
		rd.committed = true
		value, ok := r.cluster.valueOf(d)
		if !ok && rd.accepted && d == rd.acceptedDigest {
			value = rd.acceptedValue
			ok = true
		}
		if !ok {
			return // quorum on a digest whose value we never saw
		}
		r.commitSlot(rd.seq, d, value)
		return
	}
}

func (r *Replica) commitSlot(s Seq, d cryptoutil.Digest, value []byte) {
	if prev, dup := r.committedAt[s]; dup {
		if prev != d {
			// Intra-replica conflict: report and keep the first.
			r.cluster.reportConflict(r, s, prev, d)
		}
		return
	}
	r.committedAt[s] = d
	r.committedVal[s] = value
	r.cluster.onCommit(r, s, d, value)
	r.dropPending(value)
	r.advanceExecution()
	r.armTimer()
}

func (r *Replica) dropPending(value []byte) {
	d := valueDigest(value)
	kept := r.pending[:0]
	for _, v := range r.pending {
		if valueDigest(v) != d {
			kept = append(kept, v)
		}
	}
	r.pending = kept
}

func (r *Replica) advanceExecution() {
	for {
		if _, ok := r.committedAt[r.lastExec+1]; !ok {
			return
		}
		r.lastExec++
	}
}

func (r *Replica) voterWeight(voters map[simnet.NodeID]bool) float64 {
	var w float64
	for id := range voters {
		w += r.cluster.weightOf(id)
	}
	return w
}

// --- view changes ---

func (r *Replica) armTimer() {
	if len(r.pending) == 0 {
		if r.vcTimer != nil {
			r.vcTimer.Stop()
			r.vcTimer = nil
		}
		return
	}
	if r.vcTimer != nil {
		return // already armed
	}
	timeout := r.cluster.cfg.Timeout + r.vcBackoff
	r.vcTimer = r.cluster.sched().After(timeout, "bft/view-change-timer", func() {
		r.vcTimer = nil
		// Escalate past the highest view already voted for, so repeated
		// primary failures walk the view number forward.
		r.startViewChange(max(r.view, r.vcTarget) + 1)
	})
}

func (r *Replica) startViewChange(target View) {
	if r.behavior == Silent {
		return
	}
	if target <= r.view {
		target = r.view + 1
	}
	if target <= r.vcTarget {
		return // already voted for this view or higher
	}
	r.vcTarget = target
	r.inViewChange = true
	r.vcBackoff = r.vcBackoff*2 + r.cluster.cfg.Timeout/4
	vc := viewChange{
		NewView:        target,
		HasPrepared:    r.hasPrepared,
		PreparedSeq:    r.preparedSeq,
		PreparedDigest: r.preparedDigest,
		PreparedValue:  r.preparedValue,
	}
	r.cluster.broadcast(r.id, vc)
	// Re-arm so repeated primary failures escalate the view further.
	r.armTimer()
}

func (r *Replica) onViewChange(from simnet.NodeID, m viewChange) {
	if m.NewView <= r.view {
		return
	}
	votes := r.vcVotes[m.NewView]
	if votes == nil {
		votes = make(map[simnet.NodeID]viewChange)
		r.vcVotes[m.NewView] = votes
	}
	if _, dup := votes[from]; dup {
		return
	}
	votes[from] = m
	var w float64
	for id := range votes {
		w += r.cluster.weightOf(id)
	}
	// Join the view change once more than f weight demands it (the PBFT
	// catch-up rule): a correct replica cannot be left behind by a quorum.
	if w > r.cluster.total/3 && m.NewView > r.vcTarget {
		r.startViewChange(m.NewView)
	}
	if !r.cluster.isQuorum(w) {
		return
	}
	// Quorum for the new view.
	if r.cluster.primaryIndex(m.NewView) == r.index {
		r.becomePrimary(m.NewView, votes)
	}
}

// becomePrimary installs the new view at the elected primary and
// re-proposes: first the highest prepared certificate among the view-change
// votes (PBFT's safety rule), then every pending client value.
func (r *Replica) becomePrimary(v View, votes map[simnet.NodeID]viewChange) {
	if v <= r.view {
		return
	}
	r.view = v
	r.inViewChange = false
	r.cluster.broadcast(r.id, newView{View: v})

	var best *viewChange
	ids := make([]simnet.NodeID, 0, len(votes))
	for id := range votes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		vc := votes[id]
		if vc.HasPrepared && (best == nil || vc.PreparedSeq > best.PreparedSeq) {
			vcCopy := vc
			best = &vcCopy
		}
	}
	if r.hasPrepared && (best == nil || r.preparedSeq > best.PreparedSeq) {
		best = &viewChange{
			HasPrepared: true, PreparedSeq: r.preparedSeq,
			PreparedDigest: r.preparedDigest, PreparedValue: r.preparedValue,
		}
	}
	if best != nil && best.PreparedSeq > r.nextSeq {
		r.nextSeq = best.PreparedSeq
	}
	if r.nextSeq < r.lastExec {
		r.nextSeq = r.lastExec
	}
	if best != nil {
		if _, done := r.committedAt[best.PreparedSeq]; !done {
			pp := prePrepare{View: v, Seq: best.PreparedSeq, Digest: best.PreparedDigest, Value: best.PreparedValue}
			r.cluster.broadcast(r.id, pp)
		}
	}
	for _, value := range r.pending {
		if best != nil && valueDigest(value) == best.PreparedDigest {
			continue // already re-proposed with its certificate
		}
		r.propose(value)
	}
}

func (r *Replica) onNewView(from simnet.NodeID, m newView) {
	if m.View <= r.view {
		return
	}
	if from != r.cluster.primaryID(m.View) {
		return
	}
	r.view = m.View
	r.inViewChange = false
	r.vcBackoff = 0
	if r.vcTimer != nil {
		r.vcTimer.Stop()
		r.vcTimer = nil
	}
	r.armTimer()
}
