package planner

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/vuln"
)

func smallCatalog(t *testing.T) *config.Catalog {
	t.Helper()
	cat := config.NewCatalog()
	add := func(class config.Class, names ...string) {
		for _, n := range names {
			if err := cat.Add(config.Component{Class: class, Name: n, Version: "1"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(config.ClassOperatingSystem, "os-a", "os-b", "os-c")
	add(config.ClassCryptoLibrary, "lib-x", "lib-y")
	return cat
}

func TestExposuresBasic(t *testing.T) {
	replicas := []vuln.Replica{
		{Name: "1", Power: 1, Config: config.MustNew(
			config.Component{Class: config.ClassOperatingSystem, Name: "os-a", Version: "1"},
			config.Component{Class: config.ClassCryptoLibrary, Name: "lib-x", Version: "1"})},
		{Name: "2", Power: 1, Config: config.MustNew(
			config.Component{Class: config.ClassOperatingSystem, Name: "os-b", Version: "1"},
			config.Component{Class: config.ClassCryptoLibrary, Name: "lib-x", Version: "1"})},
	}
	es, err := Exposures(replicas)
	if err != nil {
		t.Fatal(err)
	}
	// lib-x is shared: share 1.0; each OS: 0.5.
	if es[0].Component.Name != "lib-x" || math.Abs(es[0].Share-1) > 1e-9 {
		t.Fatalf("worst exposure = %+v", es[0])
	}
	worst, err := WorstExposure(replicas)
	if err != nil || worst.Component.Name != "lib-x" {
		t.Fatalf("WorstExposure = %+v, %v", worst, err)
	}
}

func TestExposuresValidation(t *testing.T) {
	if _, err := Exposures(nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := Exposures([]vuln.Replica{{Name: "x", Power: -1}}); err == nil {
		t.Fatal("negative power accepted")
	}
}

func TestMinComponentFaults(t *testing.T) {
	// Distinct configs but one shared library: one component fault takes
	// everything — the refinement over configuration-level counting.
	replicas := []vuln.Replica{
		{Name: "1", Power: 1, Config: config.MustNew(
			config.Component{Class: config.ClassOperatingSystem, Name: "os-a", Version: "1"},
			config.Component{Class: config.ClassCryptoLibrary, Name: "lib-x", Version: "1"})},
		{Name: "2", Power: 1, Config: config.MustNew(
			config.Component{Class: config.ClassOperatingSystem, Name: "os-b", Version: "1"},
			config.Component{Class: config.ClassCryptoLibrary, Name: "lib-x", Version: "1"})},
		{Name: "3", Power: 1, Config: config.MustNew(
			config.Component{Class: config.ClassOperatingSystem, Name: "os-c", Version: "1"},
			config.Component{Class: config.ClassCryptoLibrary, Name: "lib-x", Version: "1"})},
	}
	n, err := MinComponentFaultsToExceed(replicas, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("faults = %d, want 1 (shared lib-x)", n)
	}
	if _, err := MinComponentFaultsToExceed(nil, 0.5); err == nil {
		t.Fatal("empty fleet accepted")
	}
	// Impossible threshold.
	n, _ = MinComponentFaultsToExceed(replicas, 1.0)
	if n != -1 {
		t.Fatalf("threshold 1.0 -> %d, want -1", n)
	}
}

func TestGreedyAssignBalances(t *testing.T) {
	cat := smallCatalog(t)
	configs, err := GreedyAssign(cat, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 12 {
		t.Fatalf("configs = %d", len(configs))
	}
	es, err := Exposures(Fleet(configs))
	if err != nil {
		t.Fatal(err)
	}
	// 3 OS choices: each should carry 4/12; 2 libs: 6/12.
	for _, e := range es {
		switch e.Component.Class {
		case config.ClassOperatingSystem:
			if math.Abs(e.Share-1.0/3.0) > 1e-9 {
				t.Fatalf("OS %s share = %v, want 1/3", e.Component.Name, e.Share)
			}
		case config.ClassCryptoLibrary:
			if math.Abs(e.Share-0.5) > 1e-9 {
				t.Fatalf("lib %s share = %v, want 1/2", e.Component.Name, e.Share)
			}
		}
	}
}

func TestGreedyBeatsRandomAndMonoculture(t *testing.T) {
	cat := config.DefaultCatalog()
	n := 24
	greedy, err := GreedyAssign(cat, n)
	if err != nil {
		t.Fatal(err)
	}
	random, err := RandomAssign(cat, n, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	mono, err := MonocultureAssign(cat, n)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := Evaluate("greedy", greedy)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Evaluate("random", random)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := Evaluate("monoculture", mono)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pm.WorstComponentShare-1) > 1e-9 || pm.FaultsToThird != 1 || pm.DistinctConfigs != 1 {
		t.Fatalf("monoculture plan = %+v", pm)
	}
	if pg.WorstComponentShare > pr.WorstComponentShare {
		t.Fatalf("greedy worst share %v > random %v", pg.WorstComponentShare, pr.WorstComponentShare)
	}
	if pg.FaultsToHalf < pr.FaultsToHalf {
		t.Fatalf("greedy faults %d < random %d", pg.FaultsToHalf, pr.FaultsToHalf)
	}
	if pg.FaultsToHalf <= pm.FaultsToHalf {
		t.Fatal("greedy no better than monoculture")
	}
	// Remark 2's scarcity effect at component level: the runtime class has
	// only two catalog choices, so even a perfectly balanced assignment
	// leaves a single component holding 1/2 of the power — one zero-day
	// there already exceeds the BFT third.
	if pg.FaultsToThird != 1 {
		t.Fatalf("greedy faults to 1/3 = %d; expected 1 (runtime class has 2 choices)", pg.FaultsToThird)
	}
	if pg.WorstComponentShare <= 1.0/3.0 {
		t.Fatalf("greedy worst share = %v; expected > 1/3 from the 2-choice class", pg.WorstComponentShare)
	}
}

func TestAssignValidation(t *testing.T) {
	cat := smallCatalog(t)
	if _, err := GreedyAssign(nil, 4); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := GreedyAssign(cat, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := RandomAssign(cat, 4, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := RandomAssign(nil, 4, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("nil catalog accepted (random)")
	}
	if _, err := RandomAssign(cat, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("n=0 accepted (random)")
	}
	if _, err := MonocultureAssign(nil, 4); err == nil {
		t.Fatal("nil catalog accepted (mono)")
	}
	if _, err := MonocultureAssign(cat, 0); err == nil {
		t.Fatal("n=0 accepted (mono)")
	}
}

// Property: greedy assignment's per-class usage is balanced within one.
func TestPropGreedyBalancedWithinOne(t *testing.T) {
	cat := config.DefaultCatalog()
	for _, n := range []int{1, 3, 7, 16, 33, 100} {
		configs, err := GreedyAssign(cat, n)
		if err != nil {
			t.Fatal(err)
		}
		usage := make(map[config.Class]map[string]int)
		for _, cfg := range configs {
			for _, c := range cfg.Components() {
				if usage[c.Class] == nil {
					usage[c.Class] = make(map[string]int)
				}
				usage[c.Class][c.Key()]++
			}
		}
		for class, m := range usage {
			lo, hi := n+1, -1
			// Components never chosen count as zero only when the class has
			// more choices than replicas; account for all catalog choices.
			for _, choice := range cat.Choices(class) {
				c := m[choice.Key()]
				if c < lo {
					lo = c
				}
				if c > hi {
					hi = c
				}
			}
			if hi-lo > 1 {
				t.Fatalf("n=%d class %s usage spread %d..%d", n, class, lo, hi)
			}
		}
	}
}
