// Package planner provides Lazarus-style automatic diversity management
// (the paper cites Garcia et al.'s Lazarus as the permissioned-world tool
// this problem lacks in permissionless settings): given a component catalog
// and a fleet size, assign configurations that minimise *component-level*
// fault domains.
//
// Component-level analysis refines the configuration-level view used by
// Definition 1: two replicas with distinct configurations still share a
// fault domain for every component they have in common (a zero-day in
// openssl hits every stack that embeds openssl, whatever else differs).
// The planner therefore measures exposure per component and balances
// component usage across the fleet, not just configuration uniqueness.
package planner

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/vuln"
)

// Exposure is the voting-power share carried by replicas whose stack
// includes a given component — the size of that component's fault domain.
type Exposure struct {
	Component config.Component
	Share     float64
}

// Exposures computes the fault-domain share of every component present in
// the fleet, sorted by descending share (ties by component key).
func Exposures(replicas []vuln.Replica) ([]Exposure, error) {
	var total float64
	for _, r := range replicas {
		if r.Power < 0 {
			return nil, fmt.Errorf("planner: replica %s has negative power", r.Name)
		}
		total += r.Power
	}
	if total <= 0 {
		return nil, errors.New("planner: no voting power")
	}
	byKey := make(map[string]Exposure)
	for _, r := range replicas {
		for _, c := range r.Config.Components() {
			e := byKey[c.Key()]
			e.Component = c
			e.Share += r.Power / total
			byKey[c.Key()] = e
		}
	}
	out := make([]Exposure, 0, len(byKey))
	for _, e := range byKey {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Component.Key() < out[j].Component.Key()
	})
	return out, nil
}

// WorstExposure returns the largest component fault domain — the power an
// adversary gains from the single best component zero-day.
func WorstExposure(replicas []vuln.Replica) (Exposure, error) {
	es, err := Exposures(replicas)
	if err != nil {
		return Exposure{}, err
	}
	return es[0], nil
}

// MinComponentFaultsToExceed returns the minimum number of component-level
// zero-days whose combined fault domains exceed threshold of total power
// (greedy marginal gain over replica sets, deduplicating replicas hit by
// several chosen components). It returns -1 when even every component
// together cannot exceed the threshold.
func MinComponentFaultsToExceed(replicas []vuln.Replica, threshold float64) (int, error) {
	var total float64
	for _, r := range replicas {
		if r.Power < 0 {
			return 0, fmt.Errorf("planner: replica %s has negative power", r.Name)
		}
		total += r.Power
	}
	if total <= 0 {
		return 0, errors.New("planner: no voting power")
	}
	// victims per component key
	victims := make(map[string]map[int]float64)
	keys := make([]string, 0)
	for i, r := range replicas {
		for _, c := range r.Config.Components() {
			k := c.Key()
			if victims[k] == nil {
				victims[k] = make(map[int]float64)
				keys = append(keys, k)
			}
			victims[k][i] = r.Power
		}
	}
	sort.Strings(keys)
	owned := make(map[int]float64)
	count := 0
	var sum float64
	for {
		bestGain, bestKey := 0.0, ""
		for _, k := range keys {
			gain := 0.0
			for idx, p := range victims[k] {
				if _, have := owned[idx]; !have {
					gain += p
				}
			}
			if gain > bestGain {
				bestGain, bestKey = gain, k
			}
		}
		if bestKey == "" {
			return -1, nil
		}
		count++
		for idx, p := range victims[bestKey] {
			owned[idx] = p
		}
		delete(victims, bestKey)
		sum = 0
		for _, p := range owned {
			sum += p
		}
		if sum > threshold*total {
			return count, nil
		}
	}
}

// GreedyAssign builds n configurations from the catalog, choosing per
// class the least-used component so far (ties broken by registration
// order). The result balances every class's fault domains to within one
// replica of the optimum n/choices.
func GreedyAssign(cat *config.Catalog, n int) ([]config.Configuration, error) {
	if cat == nil {
		return nil, errors.New("planner: nil catalog")
	}
	if n < 1 {
		return nil, fmt.Errorf("planner: n %d < 1", n)
	}
	usage := make(map[string]int)
	out := make([]config.Configuration, n)
	for i := 0; i < n; i++ {
		cfg := config.Configuration{}
		for _, class := range config.Classes() {
			choices := cat.Choices(class)
			if len(choices) == 0 {
				continue
			}
			best := choices[0]
			for _, c := range choices[1:] {
				if usage[c.Key()] < usage[best.Key()] {
					best = c
				}
			}
			usage[best.Key()]++
			cfg = cfg.With(best)
		}
		out[i] = cfg
	}
	return out, nil
}

// Rand is the random source interface used by RandomAssign.
type Rand interface {
	Intn(n int) int
}

// RandomAssign draws n configurations uniformly from the catalog — the
// "no manager" permissionless baseline.
func RandomAssign(cat *config.Catalog, n int, rng Rand) ([]config.Configuration, error) {
	if cat == nil {
		return nil, errors.New("planner: nil catalog")
	}
	if n < 1 {
		return nil, fmt.Errorf("planner: n %d < 1", n)
	}
	if rng == nil {
		return nil, errors.New("planner: nil rng")
	}
	out := make([]config.Configuration, n)
	for i := range out {
		out[i] = cat.RandomConfiguration(rng)
	}
	return out, nil
}

// MonocultureAssign gives every replica the catalog's first choice per
// class — the worst case.
func MonocultureAssign(cat *config.Catalog, n int) ([]config.Configuration, error) {
	if cat == nil {
		return nil, errors.New("planner: nil catalog")
	}
	if n < 1 {
		return nil, fmt.Errorf("planner: n %d < 1", n)
	}
	cfg := config.Configuration{}
	for _, class := range config.Classes() {
		if choices := cat.Choices(class); len(choices) > 0 {
			cfg = cfg.With(choices[0])
		}
	}
	out := make([]config.Configuration, n)
	for i := range out {
		out[i] = cfg
	}
	return out, nil
}

// Fleet materialises an assignment as unit-power vuln.Replicas.
func Fleet(configs []config.Configuration) []vuln.Replica {
	out := make([]vuln.Replica, len(configs))
	for i, cfg := range configs {
		out[i] = vuln.Replica{Name: fmt.Sprintf("r%03d", i), Config: cfg, Power: 1}
	}
	return out
}

// Plan summarises an assignment's component-level fault independence.
type Plan struct {
	Strategy            string
	WorstComponentShare float64
	WorstComponent      string
	FaultsToThird       int
	FaultsToHalf        int
	DistinctConfigs     int
}

// Evaluate computes the Plan summary for an assignment.
func Evaluate(strategy string, configs []config.Configuration) (Plan, error) {
	replicas := Fleet(configs)
	worst, err := WorstExposure(replicas)
	if err != nil {
		return Plan{}, err
	}
	third, err := MinComponentFaultsToExceed(replicas, 1.0/3.0)
	if err != nil {
		return Plan{}, err
	}
	half, err := MinComponentFaultsToExceed(replicas, 0.5)
	if err != nil {
		return Plan{}, err
	}
	distinct := make(map[config.ID]bool)
	for _, cfg := range configs {
		distinct[cfg.Digest()] = true
	}
	return Plan{
		Strategy:            strategy,
		WorstComponentShare: worst.Share,
		WorstComponent:      worst.Component.Key(),
		FaultsToThird:       third,
		FaultsToHalf:        half,
		DistinctConfigs:     len(distinct),
	}, nil
}
