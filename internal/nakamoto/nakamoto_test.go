package nakamoto

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func pools(shares ...float64) []Pool {
	out := make([]Pool, len(shares))
	for i, s := range shares {
		out[i] = Pool{Name: string(rune('a' + i)), Power: s}
	}
	return out
}

func TestSimulateValidation(t *testing.T) {
	good := Config{Pools: pools(1, 1), BlockInterval: time.Minute, Propagation: time.Second}
	if _, err := Simulate(Config{BlockInterval: time.Minute}, 10); err == nil {
		t.Fatal("no pools accepted")
	}
	if _, err := Simulate(good, 0); err == nil {
		t.Fatal("zero blocks accepted")
	}
	bad := good
	bad.BlockInterval = 0
	if _, err := Simulate(bad, 10); err == nil {
		t.Fatal("zero interval accepted")
	}
	neg := good
	neg.Pools = pools(-1, 2)
	if _, err := Simulate(neg, 10); err == nil {
		t.Fatal("negative power accepted")
	}
	zero := good
	zero.Pools = pools(0, 0)
	if _, err := Simulate(zero, 10); err == nil {
		t.Fatal("zero total power accepted")
	}
}

func TestSimulateConservation(t *testing.T) {
	res, err := Simulate(Config{
		Pools:         pools(3, 2, 1),
		BlockInterval: 10 * time.Minute,
		Propagation:   5 * time.Second,
		Seed:          1,
	}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBlocks != 300 {
		t.Fatalf("total = %d", res.TotalBlocks)
	}
	if res.MainChainLength+res.StaleBlocks != res.TotalBlocks {
		t.Fatalf("conservation: %d + %d != %d", res.MainChainLength, res.StaleBlocks, res.TotalBlocks)
	}
	var onChain int
	for _, n := range res.BlocksByPool {
		onChain += n
	}
	if onChain != res.MainChainLength {
		t.Fatalf("per-pool sum %d != main chain %d", onChain, res.MainChainLength)
	}
}

func TestSimulateRevenueProportionalToPower(t *testing.T) {
	res, err := Simulate(Config{
		Pools:         pools(6, 3, 1),
		BlockInterval: 10 * time.Minute,
		Propagation:   time.Second, // fast propagation: few forks
		Seed:          2,
	}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	frac := func(name string) float64 {
		return float64(res.BlocksByPool[name]) / float64(res.MainChainLength)
	}
	if a := frac("a"); math.Abs(a-0.6) > 0.05 {
		t.Fatalf("pool a fraction = %v, want ≈0.6", a)
	}
	if c := frac("c"); math.Abs(c-0.1) > 0.04 {
		t.Fatalf("pool c fraction = %v, want ≈0.1", c)
	}
}

func TestSimulateForkRateGrowsWithPropagation(t *testing.T) {
	run := func(prop time.Duration) float64 {
		res, err := Simulate(Config{
			Pools:         pools(1, 1, 1, 1, 1, 1, 1, 1),
			BlockInterval: time.Minute,
			Propagation:   prop,
			Seed:          3,
		}, 1500)
		if err != nil {
			t.Fatal(err)
		}
		return res.ForkRate
	}
	fast := run(100 * time.Millisecond)
	slow := run(20 * time.Second) // propagation ~ 1/3 of block interval
	if slow <= fast {
		t.Fatalf("fork rate: fast-prop %v, slow-prop %v; want growth", fast, slow)
	}
	if slow < 0.05 {
		t.Fatalf("slow-propagation fork rate %v implausibly low", slow)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := Config{Pools: pools(2, 1), BlockInterval: time.Minute, Propagation: time.Second, Seed: 7}
	a, err := Simulate(cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(cfg, 200)
	if a.MainChainLength != b.MainChainLength || a.StaleBlocks != b.StaleBlocks {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestCompromisedShare(t *testing.T) {
	// The paper's snapshot shape: top-2 pools exceed half the power.
	ps := pools(34.239, 19.981, 12.997, 11.348, 8.826, 2.619, 2.037, 1.649,
		1.358, 1.261, 0.78, 0.68, 0.68, 0.39, 0.10, 0.10, 0.10)
	q2, err := CompromisedShare(ps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q2 <= 0.5 {
		t.Fatalf("top-2 share = %v, want > 0.5", q2)
	}
	q0, _ := CompromisedShare(ps, 0)
	if q0 != 0 {
		t.Fatalf("k=0 share = %v", q0)
	}
	qAll, _ := CompromisedShare(ps, len(ps))
	if math.Abs(qAll-1) > 1e-9 {
		t.Fatalf("k=all share = %v", qAll)
	}
	if _, err := CompromisedShare(ps, -1); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := CompromisedShare(ps, len(ps)+1); err == nil {
		t.Fatal("k beyond pools accepted")
	}
	if _, err := CompromisedShare(pools(0, 0), 1); err == nil {
		t.Fatal("zero power accepted")
	}
}

func TestDoubleSpendProbabilityKnownValues(t *testing.T) {
	// Nakamoto's paper, section 11 table: q=0.1, z=5 -> P ≈ 0.0009137.
	p, err := DoubleSpendProbability(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.0009137) > 1e-6 {
		t.Fatalf("P(q=0.1,z=5) = %v, want ≈0.0009137", p)
	}
	// q=0.3, z=5 -> P ≈ 0.1773523 (same table).
	p, _ = DoubleSpendProbability(0.3, 5)
	if math.Abs(p-0.1773523) > 1e-6 {
		t.Fatalf("P(q=0.3,z=5) = %v, want ≈0.1773523", p)
	}
	// q=0.3, z=10 -> P ≈ 0.0416605.
	p, _ = DoubleSpendProbability(0.3, 10)
	if math.Abs(p-0.0416605) > 1e-6 {
		t.Fatalf("P(q=0.3,z=10) = %v, want ≈0.0416605", p)
	}
}

func TestDoubleSpendProbabilityEdges(t *testing.T) {
	if p, _ := DoubleSpendProbability(0, 6); p != 0 {
		t.Fatalf("q=0 -> %v", p)
	}
	if p, _ := DoubleSpendProbability(0.5, 6); p != 1 {
		t.Fatalf("q=0.5 -> %v (majority always wins)", p)
	}
	if p, _ := DoubleSpendProbability(0.7, 3); p != 1 {
		t.Fatalf("q=0.7 -> %v", p)
	}
	if p, _ := DoubleSpendProbability(0.2, 0); p != 1 {
		t.Fatalf("z=0 -> %v (no confirmations, attacker starts even)", p)
	}
	if _, err := DoubleSpendProbability(-0.1, 1); err == nil {
		t.Fatal("negative q accepted")
	}
	if _, err := DoubleSpendProbability(1.1, 1); err == nil {
		t.Fatal("q>1 accepted")
	}
	if _, err := DoubleSpendProbability(0.2, -1); err == nil {
		t.Fatal("negative z accepted")
	}
}

func TestDoubleSpendProbabilityMonotone(t *testing.T) {
	for z := 1; z <= 10; z++ {
		pPrev := -1.0
		for _, q := range []float64{0.05, 0.1, 0.2, 0.3, 0.4} {
			p, err := DoubleSpendProbability(q, z)
			if err != nil {
				t.Fatal(err)
			}
			if p <= pPrev {
				t.Fatalf("P not increasing in q at z=%d q=%v", z, q)
			}
			pPrev = p
		}
	}
	// Decreasing in z.
	for _, q := range []float64{0.1, 0.25, 0.4} {
		pPrev := 2.0
		for z := 0; z <= 8; z++ {
			p, _ := DoubleSpendProbability(q, z)
			if p >= pPrev {
				t.Fatalf("P not decreasing in z at q=%v z=%d", q, z)
			}
			pPrev = p
		}
	}
}

func TestSimulateDoubleSpendMatchesExactAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct {
		q float64
		z int
	}{{0.1, 3}, {0.2, 4}, {0.3, 6}} {
		sim, err := SimulateDoubleSpend(rng, tc.q, tc.z, 60000)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := DoubleSpendProbabilityExact(tc.q, tc.z)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sim-exact) > 0.01 {
			t.Fatalf("q=%v z=%d: sim %v vs exact %v", tc.q, tc.z, sim, exact)
		}
	}
}

func TestExactAndPoissonFormsAgreeRoughly(t *testing.T) {
	// Nakamoto's Poisson form is an approximation of the exact NB race;
	// they should track each other within a few percentage points.
	for _, q := range []float64{0.05, 0.1, 0.2, 0.3} {
		for _, z := range []int{1, 3, 6, 10} {
			approx, _ := DoubleSpendProbability(q, z)
			exact, err := DoubleSpendProbabilityExact(q, z)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(approx-exact) > 0.05 {
				t.Fatalf("q=%v z=%d: poisson %v vs exact %v diverge", q, z, approx, exact)
			}
		}
	}
	// Edges mirror the approximate form.
	if p, _ := DoubleSpendProbabilityExact(0, 6); p != 0 {
		t.Fatalf("exact q=0 -> %v", p)
	}
	if p, _ := DoubleSpendProbabilityExact(0.6, 6); p != 1 {
		t.Fatalf("exact q=0.6 -> %v", p)
	}
	if _, err := DoubleSpendProbabilityExact(-0.1, 1); err == nil {
		t.Fatal("negative q accepted")
	}
	if _, err := DoubleSpendProbabilityExact(0.1, -1); err == nil {
		t.Fatal("negative z accepted")
	}
}

func TestSimulateDoubleSpendValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SimulateDoubleSpend(nil, 0.1, 1, 10); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := SimulateDoubleSpend(rng, -1, 1, 10); err == nil {
		t.Fatal("bad q accepted")
	}
	if _, err := SimulateDoubleSpend(rng, 0.1, -1, 10); err == nil {
		t.Fatal("bad z accepted")
	}
	if _, err := SimulateDoubleSpend(rng, 0.1, 1, 0); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestSelfishMiningRevenueKnownShape(t *testing.T) {
	// With gamma=0 the profitability threshold is q=1/3: below it selfish
	// mining earns less than fair share, above it more.
	below, err := SelfishMiningRevenue(0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if below >= 0.3 {
		t.Fatalf("q=0.3 gamma=0 revenue %v, want < fair 0.3", below)
	}
	above, _ := SelfishMiningRevenue(0.4, 0)
	if above <= 0.4 {
		t.Fatalf("q=0.4 gamma=0 revenue %v, want > fair 0.4", above)
	}
	// With gamma=1 the threshold drops to 0: even q=0.2 profits.
	g1, _ := SelfishMiningRevenue(0.2, 1)
	if g1 <= 0.2 {
		t.Fatalf("q=0.2 gamma=1 revenue %v, want > 0.2", g1)
	}
}

func TestSelfishMiningValidation(t *testing.T) {
	if _, err := SelfishMiningRevenue(0.5, 0); err == nil {
		t.Fatal("q=0.5 accepted")
	}
	if _, err := SelfishMiningRevenue(0.2, 1.5); err == nil {
		t.Fatal("gamma>1 accepted")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := SimulateSelfishMining(nil, 0.2, 0, 100); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := SimulateSelfishMining(rng, 0.6, 0, 100); err == nil {
		t.Fatal("q=0.6 accepted")
	}
	if _, err := SimulateSelfishMining(rng, 0.2, -1, 100); err == nil {
		t.Fatal("gamma<0 accepted")
	}
	if _, err := SimulateSelfishMining(rng, 0.2, 0, 0); err == nil {
		t.Fatal("zero blocks accepted")
	}
}

func TestSimulateSelfishMiningMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ q, gamma float64 }{
		{0.3, 0}, {0.35, 0.5}, {0.4, 0},
	} {
		sim, err := SimulateSelfishMining(rng, tc.q, tc.gamma, 400000)
		if err != nil {
			t.Fatal(err)
		}
		closed, _ := SelfishMiningRevenue(tc.q, tc.gamma)
		if math.Abs(sim-closed) > 0.015 {
			t.Fatalf("q=%v gamma=%v: sim %v vs closed %v", tc.q, tc.gamma, sim, closed)
		}
	}
}

func TestDoubleSpendTrialFullHashShareTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// q = 1 previously spun forever in phase 1 (honest never mines).
	if !DoubleSpendTrial(rng, 1, 6) {
		t.Fatal("attacker with the whole network lost")
	}
	sim, err := SimulateDoubleSpend(rng, 1, 6, 100)
	if err != nil || sim != 1 {
		t.Fatalf("SimulateDoubleSpend(q=1) = %v, %v; want 1, nil", sim, err)
	}
}
