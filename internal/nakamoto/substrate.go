package nakamoto

import "repro/internal/core"

// Substrate returns the Nakamoto (longest-chain) consensus family for
// core.WithSubstrate: safety holds while the adversary's hash power
// stays at or below f = 1/2 — above it, the attacker out-mines the
// network and double-spend success is certain (see
// DoubleSpendProbability).
func Substrate() core.Substrate {
	return core.Family{FamilyName: "nakamoto", FaultTolerance: core.NakamotoThreshold}
}
