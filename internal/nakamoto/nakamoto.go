// Package nakamoto simulates Proof-of-Work longest-chain consensus — the
// permissionless substrate of the paper's running Bitcoin example. It
// provides three layers:
//
//   - a full network simulation (miners/pools with hash-power shares,
//     exponential block discovery, propagation delays, natural forks),
//   - a fast random-walk double-spend race (Monte Carlo), and
//   - the closed-form attack success probabilities (Nakamoto's analysis and
//     the Eyal–Sirer selfish-mining revenue), used as analytic baselines
//     the simulations are validated against.
//
// Compromising k mining pools (Example 1's oligopoly) hands the adversary
// q = Σ shares of hash power; these tools turn that q into operational
// attack success rates.
package nakamoto

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/ledger"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Pool is a miner or mining pool with a hash-power share (relative units;
// the simulator normalizes).
type Pool struct {
	Name  string
	Power float64
}

// Config parameterises a network simulation.
type Config struct {
	Pools         []Pool
	BlockInterval time.Duration // expected time between blocks network-wide
	Propagation   time.Duration // one-way block propagation delay
	Seed          int64
}

// Result summarises a network simulation run.
type Result struct {
	MainChainLength int            // blocks on the best chain (excluding genesis)
	TotalBlocks     int            // all mined blocks
	StaleBlocks     int            // mined but not on the best chain
	BlocksByPool    map[string]int // best-chain blocks per pool
	ForkRate        float64        // stale / total
}

type minerNode struct {
	id    simnet.NodeID
	name  string
	chain *ledger.Chain
}

func (m *minerNode) HandleMessage(_ simnet.NodeID, msg any) {
	b, ok := msg.(*ledger.Block)
	if !ok {
		return
	}
	// Out-of-order delivery can orphan blocks briefly; ignoring is safe for
	// the statistics we collect because the parent always arrives (no loss).
	_ = m.chain.Append(b)
}

// Simulate runs a full network simulation until nBlocks have been mined,
// then reports chain statistics. Each pool maintains its own chain replica;
// propagation delay creates the natural fork rate.
func Simulate(cfg Config, nBlocks int) (Result, error) {
	if len(cfg.Pools) == 0 {
		return Result{}, errors.New("nakamoto: no pools")
	}
	if nBlocks <= 0 {
		return Result{}, fmt.Errorf("nakamoto: nBlocks %d <= 0", nBlocks)
	}
	if cfg.BlockInterval <= 0 {
		return Result{}, fmt.Errorf("nakamoto: block interval %v <= 0", cfg.BlockInterval)
	}
	var total float64
	for _, p := range cfg.Pools {
		if p.Power < 0 || math.IsNaN(p.Power) || math.IsInf(p.Power, 0) {
			return Result{}, fmt.Errorf("nakamoto: invalid power %v for %s", p.Power, p.Name)
		}
		total += p.Power
	}
	if total <= 0 {
		return Result{}, errors.New("nakamoto: zero total power")
	}

	sched := sim.NewScheduler(cfg.Seed)
	net, err := simnet.New(sched, simnet.FixedLatency(cfg.Propagation), 0)
	if err != nil {
		return Result{}, err
	}
	genesis := ledger.NewBlock(cryptoutil.ZeroDigest, 0, "genesis", 0, nil)
	miners := make([]*minerNode, len(cfg.Pools))
	for i, p := range cfg.Pools {
		chain, err := ledger.NewChain(genesis)
		if err != nil {
			return Result{}, err
		}
		miners[i] = &minerNode{id: simnet.NodeID(i), name: p.Name, chain: chain}
		if err := net.Register(miners[i].id, miners[i]); err != nil {
			return Result{}, err
		}
	}

	rng := sched.Rand()
	mined := 0
	var scheduleNext func()
	scheduleNext = func() {
		if mined >= nBlocks {
			return
		}
		// Network-wide discovery is a Poisson process; the winner is drawn
		// by hash-power share.
		wait := time.Duration(rng.ExpFloat64() * float64(cfg.BlockInterval))
		sched.After(wait, "nakamoto/discover", func() {
			winner := miners[weightedPick(rng, cfg.Pools, total)]
			tip := winner.chain.TipBlock()
			b := ledger.NewBlock(tip.Digest(), tip.Header.Height+1, winner.name, sched.Now(), nil)
			if err := winner.chain.Append(b); err == nil {
				net.Broadcast(winner.id, b)
			}
			mined++
			scheduleNext()
		})
	}
	scheduleNext()
	// Run to completion: nBlocks discoveries plus the propagation drain.
	sched.RunAll(0)

	// Gather statistics from the first miner's replica (all replicas agree
	// on everything except possibly the last Propagation window).
	ref := miners[0].chain
	res := Result{TotalBlocks: mined, BlocksByPool: make(map[string]int)}
	path, err := ref.PathFromGenesis(ref.Tip())
	if err != nil {
		return Result{}, err
	}
	res.MainChainLength = len(path) - 1
	for _, id := range path[1:] {
		b, err := ref.Get(id)
		if err != nil {
			return Result{}, err
		}
		res.BlocksByPool[b.Header.Proposer]++
	}
	res.StaleBlocks = res.TotalBlocks - res.MainChainLength
	if res.TotalBlocks > 0 {
		res.ForkRate = float64(res.StaleBlocks) / float64(res.TotalBlocks)
	}
	return res, nil
}

func weightedPick(rng *rand.Rand, pools []Pool, total float64) int {
	x := rng.Float64() * total
	cum := 0.0
	for i, p := range pools {
		cum += p.Power
		if x < cum {
			return i
		}
	}
	return len(pools) - 1
}

// CompromisedShare returns the combined normalized hash power of the k
// largest pools — the adversary's q after compromising k pools (the
// Example 1 oligopoly attack; for the snapshot, k = 2 already exceeds 1/2).
func CompromisedShare(pools []Pool, k int) (float64, error) {
	if k < 0 || k > len(pools) {
		return 0, fmt.Errorf("nakamoto: k %d out of range [0,%d]", k, len(pools))
	}
	shares := make([]float64, len(pools))
	var total float64
	for i, p := range pools {
		shares[i] = p.Power
		total += p.Power
	}
	if total <= 0 {
		return 0, errors.New("nakamoto: zero total power")
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(shares)))
	var sum float64
	for i := 0; i < k; i++ {
		sum += shares[i]
	}
	return sum / total, nil
}

// DoubleSpendProbability is Nakamoto's closed-form success probability for
// an attacker with hash share q against a merchant waiting z confirmations
// (the catch-up race analysis from the Bitcoin paper, Poisson form).
func DoubleSpendProbability(q float64, z int) (float64, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("nakamoto: q %v out of [0,1]", q)
	}
	if z < 0 {
		return 0, fmt.Errorf("nakamoto: negative confirmations %d", z)
	}
	p := 1 - q
	if q >= p {
		return 1, nil // majority attacker always succeeds eventually
	}
	if q == 0 {
		return 0, nil
	}
	lambda := float64(z) * q / p
	sum := 0.0
	term := math.Exp(-lambda) // Poisson pmf at k=0
	for k := 0; k <= z; k++ {
		if k > 0 {
			term *= lambda / float64(k)
		}
		sum += term * (1 - math.Pow(q/p, float64(z-k)))
	}
	return 1 - sum, nil
}

// DoubleSpendProbabilityExact is the exact success probability of the same
// race, replacing Nakamoto's Poisson approximation for the attacker's
// progress with the true negative-binomial distribution (Rosenfeld's
// analysis): while the honest chain mines its z confirmations, the attacker
// mines k blocks with probability NB(k; z, q) = C(k+z-1, k) p^z q^k, and
// then must erase a deficit of z-k (a tie wins, as in Nakamoto's model).
func DoubleSpendProbabilityExact(q float64, z int) (float64, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("nakamoto: q %v out of [0,1]", q)
	}
	if z < 0 {
		return 0, fmt.Errorf("nakamoto: negative confirmations %d", z)
	}
	p := 1 - q
	if q >= p {
		return 1, nil
	}
	if q == 0 {
		return 0, nil
	}
	sum := 0.0
	pmf := math.Pow(p, float64(z)) // NB pmf at k=0
	for k := 0; k <= z; k++ {
		if k > 0 {
			pmf *= q * float64(k+z-1) / float64(k)
		}
		sum += pmf * (1 - math.Pow(q/p, float64(z-k)))
	}
	return 1 - sum, nil
}

// SimulateDoubleSpend Monte-Carlos the same race: the attacker premines
// while the merchant waits for z confirmations, then must catch up from its
// deficit. It returns the empirical success rate over trials, drawn
// sequentially from the single rng (see DoubleSpendTrial for the per-trial
// unit that parallel runners distribute).
func SimulateDoubleSpend(rng *rand.Rand, q float64, z, trials int) (float64, error) {
	if rng == nil {
		return 0, errors.New("nakamoto: nil rng")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("nakamoto: q %v out of [0,1]", q)
	}
	if z < 0 || trials <= 0 {
		return 0, fmt.Errorf("nakamoto: invalid z %d or trials %d", z, trials)
	}
	wins := 0
	for t := 0; t < trials; t++ {
		if DoubleSpendTrial(rng, q, z) {
			wins++
		}
	}
	return float64(wins) / float64(trials), nil
}

// DoubleSpendTrial runs one Monte Carlo race with attacker hash share
// q in [0, 1] and reports whether the attacker wins. It is the unit
// SimulateDoubleSpend iterates and what parallel trial runners
// distribute: each trial draws only from the rng it is handed, so
// callers control determinism via seed derivation.
func DoubleSpendTrial(rng *rand.Rand, q float64, z int) bool {
	if q >= 1 {
		// The attacker owns the whole network; the honest chain never
		// grows (and the phase-1 loop below would never terminate).
		return true
	}
	const maxDeficit = 200
	// Phase 1: honest chain mines z blocks; attacker mines k in parallel.
	attacker := 0
	for honest := 0; honest < z; {
		if rng.Float64() < q {
			attacker++
		} else {
			honest++
		}
	}
	// Phase 2: random-walk race. Nakamoto's analysis counts the
	// attacker as successful once it draws level (the merchant's goods
	// are gone; a tie lets the attacker release and race from parity),
	// so the deficit to erase is z - k. maxDeficit bounds the walk (a
	// deficit that large is treated as failure); 200 keeps the truncation
	// error far below Monte Carlo noise.
	deficit := z - attacker
	for deficit > 0 && deficit < maxDeficit {
		if rng.Float64() < q {
			deficit--
		} else {
			deficit++
		}
	}
	return deficit <= 0
}

// SelfishMiningRevenue is the Eyal–Sirer closed-form relative revenue of a
// selfish-mining pool with hash share q and tie-race propagation advantage
// gamma (fraction of honest miners that build on the selfish branch during
// a tie). Honest mining yields revenue q; selfish mining beats it above the
// profitability threshold.
func SelfishMiningRevenue(q, gamma float64) (float64, error) {
	if q < 0 || q >= 0.5 || math.IsNaN(q) {
		return 0, fmt.Errorf("nakamoto: q %v out of [0,0.5)", q)
	}
	if gamma < 0 || gamma > 1 || math.IsNaN(gamma) {
		return 0, fmt.Errorf("nakamoto: gamma %v out of [0,1]", gamma)
	}
	num := q*(1-q)*(1-q)*(4*q+gamma*(1-2*q)) - q*q*q
	den := 1 - q*(1+(2-q)*q)
	if den == 0 {
		return 0, errors.New("nakamoto: degenerate denominator")
	}
	return num / den, nil
}

// SimulateSelfishMining runs the Eyal–Sirer state machine for nBlocks total
// discoveries and returns the selfish pool's empirical relative revenue.
func SimulateSelfishMining(rng *rand.Rand, q, gamma float64, nBlocks int) (float64, error) {
	if rng == nil {
		return 0, errors.New("nakamoto: nil rng")
	}
	if q < 0 || q >= 0.5 || math.IsNaN(q) {
		return 0, fmt.Errorf("nakamoto: q %v out of [0,0.5)", q)
	}
	if gamma < 0 || gamma > 1 || math.IsNaN(gamma) {
		return 0, fmt.Errorf("nakamoto: gamma %v out of [0,1]", gamma)
	}
	if nBlocks <= 0 {
		return 0, fmt.Errorf("nakamoto: nBlocks %d <= 0", nBlocks)
	}
	var selfishRevenue, honestRevenue float64
	privateLead := 0 // selfish pool's unpublished lead
	tieRace := false // a one-block tie is being raced
	for i := 0; i < nBlocks; i++ {
		selfishFinds := rng.Float64() < q
		switch {
		case tieRace:
			// Branches tied at one block each; next block resolves it.
			switch {
			case selfishFinds:
				selfishRevenue += 2 // selfish branch wins both blocks
			case rng.Float64() < gamma:
				// Honest miner extended the selfish branch.
				selfishRevenue++
				honestRevenue++
			default:
				honestRevenue += 2
			}
			tieRace = false
		case selfishFinds:
			privateLead++
		default:
			// Honest network finds a block.
			switch privateLead {
			case 0:
				honestRevenue++
			case 1:
				tieRace = true // selfish publishes, race is on
				privateLead = 0
			case 2:
				// Selfish publishes both, takes the whole fork.
				selfishRevenue += 2
				privateLead = 0
			default:
				// Lead > 2: publish one block, keep mining in front.
				selfishRevenue++
				privateLead--
			}
		}
	}
	// Unpublished lead at the end is published wholesale.
	selfishRevenue += float64(privateLead)
	totalRevenue := selfishRevenue + honestRevenue
	if totalRevenue == 0 {
		return 0, nil
	}
	return selfishRevenue / totalRevenue, nil
}
