// Package pooldata carries the mining-power datasets used by Example 1 and
// Figure 1 of the paper, plus synthetic distribution generators for the
// extension experiments.
//
// The primary dataset is the Bitcoin mining-pool snapshot of 2 February
// 2023 cited in Example 1 (blockchain.com 7-day average): 17 pools holding
// 99.13% of the network hash rate, with the residual 0.87% attributed to
// unknown miners.
package pooldata

import (
	"fmt"
	"math"

	"repro/internal/diversity"
)

// Pool is one named mining pool with its hash-power share in percent.
type Pool struct {
	Name  string
	Share float64 // percent of total network hash power
}

// BitcoinSnapshotPercent is the exact Example 1 distribution, in percent.
// The order matches the paper: (34.239, 19.981, 12.997, 11.348, 8.826,
// 2.619, 2.037, 1.649, 1.358, 1.261, 0.78, 0.68, 0.68, 0.39, 0.10, 0.10,
// 0.10).
var BitcoinSnapshotPercent = []float64{
	34.239, 19.981, 12.997, 11.348, 8.826, 2.619, 2.037, 1.649, 1.358,
	1.261, 0.78, 0.68, 0.68, 0.39, 0.10, 0.10, 0.10,
}

// ResidualPercent is the unattributed hash power in the snapshot: 0.87%,
// as stated in Example 1.
const ResidualPercent = 0.87

// TopPoolsPercent is the paper's rounded statement of the hash power the 17
// named pools hold ("99.13%"). Note the individual shares it lists actually
// sum to 99.145% — a rounding inconsistency in the paper itself. All
// computations here use the exact listed shares (SnapshotSumPercent); the
// discrepancy is 0.015 percentage points and washes out under
// normalization.
const TopPoolsPercent = 99.13

// SnapshotSumPercent is the exact sum of the listed shares (≈ 99.145).
var SnapshotSumPercent = func() float64 {
	var sum float64
	for _, s := range BitcoinSnapshotPercent {
		sum += s
	}
	return sum
}()

// BitcoinSnapshot returns the snapshot as named pools. Pool names follow
// the blockchain.com chart the paper cites; the paper itself only names the
// largest ("Foundry USA ... over 34%"), so the remaining names are
// positional identifiers.
func BitcoinSnapshot() []Pool {
	names := []string{
		"foundry-usa", "antpool", "f2pool", "binance-pool", "viabtc",
		"btc-com", "poolin", "luxor", "mara-pool", "sbi-crypto",
		"ultimus", "braiins", "pool-13", "pool-14", "pool-15",
		"pool-16", "pool-17",
	}
	pools := make([]Pool, len(BitcoinSnapshotPercent))
	for i, share := range BitcoinSnapshotPercent {
		pools[i] = Pool{Name: names[i], Share: share}
	}
	return pools
}

// SnapshotDistribution returns the 17-pool snapshot as a diversity
// Distribution (weights in percent; metrics normalize internally).
func SnapshotDistribution() diversity.Distribution {
	m := make(map[string]float64, len(BitcoinSnapshotPercent))
	for _, p := range BitcoinSnapshot() {
		m[p.Name] = p.Share
	}
	d, err := diversity.FromWeights(m)
	if err != nil {
		// Unreachable: the static snapshot is valid.
		panic(err)
	}
	return d
}

// WithUniformTail returns the Figure 1 scenario: the 17-pool snapshot plus
// the 0.87% residual split uniformly across tailMiners additional unique
// miners. tailMiners must be in [1, 100000].
func WithUniformTail(tailMiners int) (diversity.Distribution, error) {
	if tailMiners < 1 || tailMiners > 100000 {
		return diversity.Distribution{}, fmt.Errorf("pooldata: tailMiners %d out of range [1,100000]", tailMiners)
	}
	m := make(map[string]float64, len(BitcoinSnapshotPercent)+tailMiners)
	for _, p := range BitcoinSnapshot() {
		m[p.Name] = p.Share
	}
	per := ResidualPercent / float64(tailMiners)
	for i := 0; i < tailMiners; i++ {
		m[fmt.Sprintf("tail-%05d", i)] = per
	}
	d, err := diversity.FromWeights(m)
	if err != nil {
		return diversity.Distribution{}, err
	}
	return d, nil
}

// Figure1Point is one (x, entropy) sample of the paper's Figure 1.
type Figure1Point struct {
	TailMiners int     // x axis: miners sharing the residual 0.87%
	Miners     int     // total miners = 17 + TailMiners
	Entropy    float64 // bits
}

// Figure1Series computes the Figure 1 curve for x = 1..maxTail.
func Figure1Series(maxTail int) ([]Figure1Point, error) {
	if maxTail < 1 {
		return nil, fmt.Errorf("pooldata: maxTail %d < 1", maxTail)
	}
	// The tail contributes x * (r/x) * log2(x/r) bits on top of the fixed
	// head term, so compute the head once and add the closed-form tail.
	head := SnapshotDistribution()
	headProbs, err := head.Probabilities()
	if err != nil {
		return nil, err
	}
	total := SnapshotSumPercent + ResidualPercent
	var headEntropy float64
	for _, p := range headProbs {
		// Rescale from head-relative to full-network share.
		q := p * SnapshotSumPercent / total
		if q > 0 {
			headEntropy -= q * math.Log2(q)
		}
	}
	r := ResidualPercent / total
	points := make([]Figure1Point, maxTail)
	for x := 1; x <= maxTail; x++ {
		tailEntropy := r * math.Log2(float64(x)/r)
		points[x-1] = Figure1Point{
			TailMiners: x,
			Miners:     len(BitcoinSnapshotPercent) + x,
			Entropy:    headEntropy + tailEntropy,
		}
	}
	return points, nil
}

// SyntheticOligopoly returns a distribution of n participants whose shares
// follow a Zipf-like power law with exponent s (s = 0 is uniform; larger s
// concentrates power in the head). Used by the extension experiments to
// sweep between oligopoly and uniformity.
func SyntheticOligopoly(n int, s float64) (diversity.Distribution, error) {
	if n < 1 {
		return diversity.Distribution{}, fmt.Errorf("pooldata: n %d < 1", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return diversity.Distribution{}, fmt.Errorf("pooldata: invalid exponent %v", s)
	}
	m := make(map[string]float64, n)
	for i := 1; i <= n; i++ {
		m[fmt.Sprintf("p-%05d", i)] = 1 / math.Pow(float64(i), s)
	}
	return diversity.FromWeights(m)
}
