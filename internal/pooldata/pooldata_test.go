package pooldata

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/diversity"
)

func TestSnapshotSharesSum(t *testing.T) {
	var sum float64
	for _, s := range BitcoinSnapshotPercent {
		sum += s
	}
	if math.Abs(sum-SnapshotSumPercent) > 1e-9 {
		t.Fatalf("SnapshotSumPercent = %v, recomputed %v", SnapshotSumPercent, sum)
	}
	// The paper rounds the sum to 99.13%; the exact list sums to 99.145.
	if math.Abs(sum-TopPoolsPercent) > 0.02 {
		t.Fatalf("snapshot sums to %v, too far from paper's %v", sum, TopPoolsPercent)
	}
}

func TestSnapshotHas17Pools(t *testing.T) {
	pools := BitcoinSnapshot()
	if len(pools) != 17 {
		t.Fatalf("%d pools, want 17", len(pools))
	}
	// Paper: "the largest mining pool, i.e., Foundry USA, controls over 34%".
	if pools[0].Name != "foundry-usa" || pools[0].Share <= 34 {
		t.Fatalf("largest pool = %+v", pools[0])
	}
	names := make(map[string]bool)
	for _, p := range pools {
		if names[p.Name] {
			t.Fatalf("duplicate pool name %s", p.Name)
		}
		names[p.Name] = true
	}
}

func TestSnapshotDistributionEntropyBelow3(t *testing.T) {
	// Example 1's headline: Bitcoin's best-case entropy is below 3 bits.
	h, err := SnapshotDistribution().Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if h >= 3 {
		t.Fatalf("snapshot entropy = %v, want < 3", h)
	}
	if h < 2 {
		t.Fatalf("snapshot entropy = %v, implausibly low", h)
	}
}

func TestSnapshotTwoFaultsToMajority(t *testing.T) {
	// Foundry (34.2) + AntPool (20.0) > 50%: two faults break majority.
	n, err := SnapshotDistribution().MinFaultsToExceed(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("faults to majority = %d, want 2", n)
	}
}

func TestWithUniformTailValidation(t *testing.T) {
	if _, err := WithUniformTail(0); err == nil {
		t.Fatal("tail 0 accepted")
	}
	if _, err := WithUniformTail(100001); err == nil {
		t.Fatal("tail beyond cap accepted")
	}
}

func TestWithUniformTailShape(t *testing.T) {
	d, err := WithUniformTail(101)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "when x=101, it means that there are 118 miners in the system".
	if d.Support() != 118 {
		t.Fatalf("support = %d, want 118", d.Support())
	}
	if math.Abs(d.Total()-(SnapshotSumPercent+ResidualPercent)) > 1e-9 {
		t.Fatalf("total = %v, want %v", d.Total(), SnapshotSumPercent+ResidualPercent)
	}
}

func TestFigure1SeriesMatchesDirectComputation(t *testing.T) {
	pts, err := Figure1Series(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("%d points, want 50", len(pts))
	}
	for _, x := range []int{1, 7, 50} {
		d, err := WithUniformTail(x)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := d.Entropy()
		if err != nil {
			t.Fatal(err)
		}
		got := pts[x-1].Entropy
		if math.Abs(got-direct) > 1e-9 {
			t.Fatalf("x=%d: closed-form %v != direct %v", x, got, direct)
		}
		if pts[x-1].Miners != 17+x {
			t.Fatalf("x=%d: miners = %d, want %d", x, pts[x-1].Miners, 17+x)
		}
	}
}

func TestFigure1EntropyStaysBelow3(t *testing.T) {
	// The paper's Figure 1 claim: even at x=1000 the entropy is < 3, i.e.
	// below an 8-replica BFT cluster.
	pts, err := Figure1Series(1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Entropy >= 3 {
			t.Fatalf("x=%d: entropy %v >= 3, contradicting Figure 1", p.TailMiners, p.Entropy)
		}
	}
	// And it is monotone increasing in x (more tail miners, more entropy).
	for i := 1; i < len(pts); i++ {
		if pts[i].Entropy <= pts[i-1].Entropy {
			t.Fatalf("entropy not increasing at x=%d", pts[i].TailMiners)
		}
	}
}

func TestFigure1SeriesValidation(t *testing.T) {
	if _, err := Figure1Series(0); err == nil {
		t.Fatal("maxTail 0 accepted")
	}
}

func TestSyntheticOligopoly(t *testing.T) {
	uniform, err := SyntheticOligopoly(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !uniform.IsKappaOptimal(16, 0) {
		t.Fatal("s=0 should give a κ-optimal (uniform) distribution")
	}
	skewed, err := SyntheticOligopoly(16, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	hu, _ := uniform.Entropy()
	hs, _ := skewed.Entropy()
	if hs >= hu {
		t.Fatalf("skewed entropy %v >= uniform %v", hs, hu)
	}
	if _, err := SyntheticOligopoly(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := SyntheticOligopoly(5, -1); err == nil {
		t.Fatal("negative exponent accepted")
	}
	if _, err := SyntheticOligopoly(5, math.NaN()); err == nil {
		t.Fatal("NaN exponent accepted")
	}
}

// Property: larger Zipf exponents never increase entropy (more oligopoly,
// less diversity) and min-faults-to-majority never increases either.
func TestPropOligopolyMonotone(t *testing.T) {
	f := func(rawN uint8, rawS uint8) bool {
		n := 2 + int(rawN)%30
		s1 := float64(rawS%20) / 10.0
		s2 := s1 + 0.5
		d1, err1 := SyntheticOligopoly(n, s1)
		d2, err2 := SyntheticOligopoly(n, s2)
		if err1 != nil || err2 != nil {
			return false
		}
		h1, _ := d1.Entropy()
		h2, _ := d2.Entropy()
		f1, _ := d1.MinFaultsToExceed(0.5)
		f2, _ := d2.MinFaultsToExceed(0.5)
		return h2 <= h1+1e-9 && f2 <= f1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The snapshot, as a diversity report, matches the paper's Example 1 story:
// entropy < 3, effective configurations < 8.
func TestSnapshotReport(t *testing.T) {
	r, err := diversity.ReportForDistribution(SnapshotDistribution())
	if err != nil {
		t.Fatal(err)
	}
	if r.Support != 17 {
		t.Fatalf("support = %d", r.Support)
	}
	if r.EffectiveConfigurations >= 8 {
		t.Fatalf("effective configurations = %v, want < 8 (worse than BFT-8)", r.EffectiveConfigurations)
	}
	if r.MaxShare < 0.34 {
		t.Fatalf("max share = %v, want >= 0.34 (Foundry)", r.MaxShare)
	}
}
