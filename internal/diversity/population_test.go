package diversity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPopulationValidation(t *testing.T) {
	if _, err := NewPopulation([]Member{{Label: "", Power: 1}}); err == nil {
		t.Fatal("empty label accepted")
	}
	if _, err := NewPopulation([]Member{{Label: "a", Power: -1}}); err == nil {
		t.Fatal("negative power accepted")
	}
	if _, err := NewPopulation([]Member{{Label: "a", Power: math.NaN()}}); err == nil {
		t.Fatal("NaN power accepted")
	}
	p, err := NewPopulation(nil)
	if err != nil || p.Size() != 0 {
		t.Fatalf("empty population: %v, size %d", err, p.Size())
	}
}

func TestUniformPopulation(t *testing.T) {
	labels := []string{"a", "b", "c"}
	p, err := UniformPopulation(9, labels)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 9 {
		t.Fatalf("size = %d", p.Size())
	}
	counts := p.AbundanceCounts()
	for _, l := range labels {
		if counts[l] != 3 {
			t.Fatalf("abundance of %s = %d, want 3", l, counts[l])
		}
	}
	omega, ok := p.Omega()
	if !ok || omega != 3 {
		t.Fatalf("Omega = %d,%v want 3,true", omega, ok)
	}
	if _, err := UniformPopulation(0, labels); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := UniformPopulation(3, nil); err == nil {
		t.Fatal("empty labels accepted")
	}
}

func TestAddValidation(t *testing.T) {
	p, _ := NewPopulation(nil)
	if err := p.Add(Member{Label: "", Power: 1}); err == nil {
		t.Fatal("empty label accepted")
	}
	if err := p.Add(Member{Label: "a", Power: math.Inf(1)}); err == nil {
		t.Fatal("inf power accepted")
	}
	if err := p.Add(Member{Label: "a", Power: 2}); err != nil {
		t.Fatal(err)
	}
	if p.Size() != 1 {
		t.Fatalf("size = %d", p.Size())
	}
}

func TestPowerDistributionAggregates(t *testing.T) {
	p, _ := NewPopulation([]Member{
		{Label: "a", Power: 1}, {Label: "a", Power: 2}, {Label: "b", Power: 3},
	})
	d := p.PowerDistribution()
	if d.Weight("a") != 3 || d.Weight("b") != 3 {
		t.Fatalf("weights a=%v b=%v", d.Weight("a"), d.Weight("b"))
	}
	if !d.IsKappaOptimal(2, 0) {
		t.Fatal("aggregated distribution should be κ=2 optimal")
	}
}

func TestRelativeAbundance(t *testing.T) {
	p, _ := NewPopulation([]Member{
		{Label: "a", Power: 100}, {Label: "b", Power: 1}, {Label: "b", Power: 1},
	})
	ra := p.RelativeAbundance()
	// Relative abundance counts members, ignoring power.
	if ra.Weight("a") != 1 || ra.Weight("b") != 2 {
		t.Fatalf("relative abundance a=%v b=%v", ra.Weight("a"), ra.Weight("b"))
	}
}

func TestOmegaNonUniform(t *testing.T) {
	p, _ := NewPopulation([]Member{
		{Label: "a", Power: 1}, {Label: "a", Power: 1}, {Label: "b", Power: 1},
	})
	if _, ok := p.Omega(); ok {
		t.Fatal("non-uniform abundance reported ω")
	}
	empty, _ := NewPopulation(nil)
	if _, ok := empty.Omega(); ok {
		t.Fatal("empty population reported ω")
	}
}

func TestKappaOmegaOptimal(t *testing.T) {
	// Definition 2: κ configurations, ω members each, uniform power.
	labels := []string{"c0", "c1", "c2", "c3"}
	p, _ := UniformPopulation(12, labels)
	if !p.IsKappaOmegaOptimal(4, 3, 0) {
		t.Fatal("(4,3)-optimal population not recognized")
	}
	if p.IsKappaOmegaOptimal(4, 2, 0) || p.IsKappaOmegaOptimal(3, 3, 0) {
		t.Fatal("wrong (κ,ω) accepted")
	}
	k, w, ok := p.KappaOmega(0)
	if !ok || k != 4 || w != 3 {
		t.Fatalf("KappaOmega = %d,%d,%v", k, w, ok)
	}
	// Uniform abundance but skewed power: not optimal.
	skew, _ := NewPopulation([]Member{
		{Label: "a", Power: 10}, {Label: "b", Power: 1},
	})
	if _, _, ok := skew.KappaOmega(0); ok {
		t.Fatal("power-skewed population reported optimal")
	}
}

func TestMinOperatorFaults(t *testing.T) {
	// 4 configs × 3 members, unit power: majority needs 7 of 12 members.
	p, _ := UniformPopulation(12, []string{"a", "b", "c", "d"})
	n, err := p.MinOperatorFaultsToExceed(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("operator faults = %d, want 7", n)
	}
	// Config-level faults: only 3 of 4 configs needed.
	cf, _ := p.PowerDistribution().MinFaultsToExceed(0.5)
	if cf != 3 {
		t.Fatalf("config faults = %d, want 3", cf)
	}
	empty, _ := NewPopulation(nil)
	if _, err := empty.MinOperatorFaultsToExceed(0.5); err != ErrNoWeight {
		t.Fatalf("err = %v, want ErrNoWeight", err)
	}
	zero, _ := NewPopulation([]Member{{Label: "a", Power: 0}})
	if _, err := zero.MinOperatorFaultsToExceed(0.5); err != ErrNoWeight {
		t.Fatalf("zero-power err = %v, want ErrNoWeight", err)
	}
}

func TestMembersCopy(t *testing.T) {
	p, _ := NewPopulation([]Member{{Label: "a", Power: 1}})
	ms := p.Members()
	ms[0].Label = "mutated"
	if p.Members()[0].Label != "a" {
		t.Fatal("Members exposed internal slice")
	}
}

func TestReportForPopulation(t *testing.T) {
	p, _ := UniformPopulation(16, []string{"a", "b", "c", "d"})
	r, err := ReportForPopulation(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Support != 4 || r.Members != 16 || r.Kappa != 4 || r.Omega != 4 {
		t.Fatalf("report = %+v", r)
	}
	if !almostEqual(r.Entropy, 2, 1e-12) {
		t.Fatalf("entropy = %v, want 2", r.Entropy)
	}
	if !almostEqual(r.EffectiveConfigurations, 4, 1e-9) {
		t.Fatalf("effective = %v", r.EffectiveConfigurations)
	}
	if r.MinConfigFaultsToHalf != 3 {
		t.Fatalf("config faults = %d, want 3", r.MinConfigFaultsToHalf)
	}
	if r.MinOperatorFaultsToHalf != 9 {
		t.Fatalf("operator faults = %d, want 9 (9/16 > 1/2)", r.MinOperatorFaultsToHalf)
	}
	if !almostEqual(r.MaxShare, 0.25, 1e-12) {
		t.Fatalf("max share = %v", r.MaxShare)
	}
}

func TestReportForDistributionErrors(t *testing.T) {
	var empty Distribution
	if _, err := ReportForDistribution(empty); err == nil {
		t.Fatal("empty distribution report succeeded")
	}
}

// Property (Definition 2 / Prop. 3): for κ-optimal populations, operator
// resilience strictly increases with ω while config-level resilience stays
// constant.
func TestPropAbundanceImprovesOperatorResilience(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func() bool {
		kappa := 2 + rng.Intn(10)
		omega := 1 + rng.Intn(8)
		labels := make([]string, kappa)
		for i := range labels {
			labels[i] = string(rune('a' + i))
		}
		p1, err1 := UniformPopulation(kappa*omega, labels)
		p2, err2 := UniformPopulation(kappa*(omega+1), labels)
		if err1 != nil || err2 != nil {
			return false
		}
		op1, _ := p1.MinOperatorFaultsToExceed(0.5)
		op2, _ := p2.MinOperatorFaultsToExceed(0.5)
		cf1, _ := p1.PowerDistribution().MinFaultsToExceed(0.5)
		cf2, _ := p2.PowerDistribution().MinFaultsToExceed(0.5)
		return op2 > op1 && cf1 == cf2
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: power distribution total equals sum of member powers, and
// abundance counts sum to population size.
func TestPropPopulationConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	f := func() bool {
		n := rng.Intn(50)
		members := make([]Member, n)
		var total float64
		for i := range members {
			members[i] = Member{
				Label: string(rune('a' + rng.Intn(5))),
				Power: float64(rng.Intn(100)),
			}
			total += members[i].Power
		}
		p, err := NewPopulation(members)
		if err != nil {
			return false
		}
		if !almostEqual(p.PowerDistribution().Total(), total, 1e-9) {
			return false
		}
		sum := 0
		for _, c := range p.AbundanceCounts() {
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
