package diversity

import "sort"

// PowerClass is an aggregate of members holding identical voting power —
// the unit the bucketed registry reasons in. A population's member-level
// metrics are a pure function of its power classes, which is what lets the
// incremental assessment path compute them in O(#classes) instead of
// sorting every member.
type PowerClass struct {
	Power float64
	Count int
}

// MinOperatorFaultsForClasses is Population.MinOperatorFaultsToExceed
// computed over power classes: the minimum number of member-level faults
// whose combined power strictly exceeds threshold × total. Classes are
// walked in descending power order; the boundary class is resolved by
// binary search on the same cum + j·p > T predicate the member-level loop
// evaluates, so for integral powers the two are bit-identical.
func MinOperatorFaultsForClasses(classes []PowerClass, threshold float64) (int, error) {
	var total float64
	n := 0
	for _, c := range classes {
		total += c.Power * float64(c.Count)
		n += c.Count
	}
	if n == 0 || total <= 0 {
		return 0, ErrNoWeight
	}
	sorted := append([]PowerClass(nil), classes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Power > sorted[j].Power })
	limit := threshold * total
	cum := 0.0
	taken := 0
	for _, c := range sorted {
		if cum+float64(c.Count)*c.Power > limit {
			j := sort.Search(c.Count, func(j int) bool {
				return cum+float64(j+1)*c.Power > limit
			})
			return taken + j + 1, nil
		}
		cum += float64(c.Count) * c.Power
		taken += c.Count
	}
	return -1, nil
}

// ReportForAggregates computes the full population Report from aggregates
// alone: the power distribution over labels, the member count, the
// per-label abundance counts, and the power classes. It is the O(#buckets)
// counterpart of ReportForPopulation — for integral powers the results are
// bit-identical, which the incremental-vs-cold property tests pin down.
func ReportForAggregates(d Distribution, members int, abundance []int, classes []PowerClass) (Report, error) {
	r, err := ReportForDistribution(d)
	if err != nil {
		return Report{}, err
	}
	r.Members = members
	if len(abundance) > 0 {
		omega := abundance[0]
		for _, c := range abundance[1:] {
			if c != omega {
				omega = 0
				break
			}
		}
		r.Omega = omega
	}
	if mf, err := MinOperatorFaultsForClasses(classes, 0.5); err == nil {
		r.MinOperatorFaultsToHalf = mf
	}
	return r, nil
}
