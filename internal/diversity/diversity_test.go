package diversity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestFromWeightsValidation(t *testing.T) {
	cases := map[string]float64{"neg": -1}
	if _, err := FromWeights(cases); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := FromWeights(map[string]float64{"nan": math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := FromWeights(map[string]float64{"inf": math.Inf(1)}); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestZeroWeightsKept(t *testing.T) {
	d, err := FromWeights(map[string]float64{"a": 1, "b": 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (zero entries kept)", d.Len())
	}
	if d.Support() != 1 {
		t.Fatalf("Support = %d, want 1", d.Support())
	}
}

func TestEntropyUniform8Is3Bits(t *testing.T) {
	// Example 1: "BFT protocols with 8 replicas, the entropy is already
	// higher (entropy is 3)".
	h, err := Uniform(8).Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h, 3, 1e-12) {
		t.Fatalf("H(uniform-8) = %v, want 3", h)
	}
}

func TestEntropyZeroForSingleConfig(t *testing.T) {
	h, err := MustFromSlice([]float64{5}).Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("H(single) = %v, want 0", h)
	}
}

func TestEntropyEmptyErrors(t *testing.T) {
	d, _ := FromWeights(nil)
	if _, err := d.Entropy(); err != ErrNoWeight {
		t.Fatalf("err = %v, want ErrNoWeight", err)
	}
	allZero := MustFromSlice([]float64{0, 0})
	if _, err := allZero.Entropy(); err != ErrNoWeight {
		t.Fatalf("err = %v, want ErrNoWeight", err)
	}
}

func TestEntropyScaleInvariant(t *testing.T) {
	d := MustFromSlice([]float64{1, 2, 3, 4})
	h1, _ := d.Entropy()
	scaled, err := d.Scale(1000)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := scaled.Entropy()
	if !almostEqual(h1, h2, 1e-12) {
		t.Fatalf("entropy changed under scaling: %v vs %v", h1, h2)
	}
}

func TestScaleValidation(t *testing.T) {
	d := Uniform(2)
	for _, f := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := d.Scale(f); err == nil {
			t.Fatalf("Scale(%v) accepted", f)
		}
	}
}

func TestNormalizedEntropy(t *testing.T) {
	ne, err := Uniform(16).NormalizedEntropy()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ne, 1, 1e-12) {
		t.Fatalf("normalized entropy of uniform = %v, want 1", ne)
	}
	ne, _ = MustFromSlice([]float64{1}).NormalizedEntropy()
	if ne != 0 {
		t.Fatalf("normalized entropy of singleton = %v, want 0", ne)
	}
	skew, _ := MustFromSlice([]float64{9, 1}).NormalizedEntropy()
	if skew <= 0 || skew >= 1 {
		t.Fatalf("skewed normalized entropy = %v, want in (0,1)", skew)
	}
}

func TestEffectiveConfigurations(t *testing.T) {
	ec, err := Uniform(8).EffectiveConfigurations()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ec, 8, 1e-9) {
		t.Fatalf("effective configs of uniform-8 = %v, want 8", ec)
	}
}

func TestSimpsonAndGini(t *testing.T) {
	s, err := Uniform(4).SimpsonIndex()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s, 0.25, 1e-12) {
		t.Fatalf("Simpson of uniform-4 = %v, want 0.25", s)
	}
	g, _ := Uniform(4).GiniSimpson()
	if !almostEqual(g, 0.75, 1e-12) {
		t.Fatalf("GiniSimpson = %v, want 0.75", g)
	}
}

func TestHillNumbers(t *testing.T) {
	d := MustFromSlice([]float64{4, 2, 1, 1})
	h0, err := d.HillNumber(0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h0, 4, 1e-9) {
		t.Fatalf("Hill(0) = %v, want support 4", h0)
	}
	h1, _ := d.HillNumber(1)
	ec, _ := d.EffectiveConfigurations()
	if !almostEqual(h1, ec, 1e-9) {
		t.Fatalf("Hill(1) = %v, want 2^H = %v", h1, ec)
	}
	h2, _ := d.HillNumber(2)
	simpson, _ := d.SimpsonIndex()
	if !almostEqual(h2, 1/simpson, 1e-9) {
		t.Fatalf("Hill(2) = %v, want 1/Simpson = %v", h2, 1/simpson)
	}
}

func TestIsUniformAndKappa(t *testing.T) {
	d := MustFromSlice([]float64{2, 2, 0, 2})
	if !d.IsUniform(0) {
		t.Fatal("uniform-with-zeros not recognized")
	}
	if !d.IsKappaOptimal(3, 0) {
		t.Fatal("κ=3 optimality not recognized")
	}
	if d.IsKappaOptimal(4, 0) {
		t.Fatal("wrong κ accepted")
	}
	k, ok := d.Kappa(0)
	if !ok || k != 3 {
		t.Fatalf("Kappa = %d,%v want 3,true", k, ok)
	}
	skew := MustFromSlice([]float64{1, 2})
	if _, ok := skew.Kappa(0); ok {
		t.Fatal("skewed distribution reported κ-optimal")
	}
	var empty Distribution
	if empty.IsUniform(0) {
		t.Fatal("empty distribution reported uniform")
	}
}

func TestKappaToleranceRelative(t *testing.T) {
	d := MustFromSlice([]float64{1.0, 1.0 + 1e-12})
	if !d.IsKappaOptimal(2, 1e-9) {
		t.Fatal("tiny relative jitter rejected")
	}
	d2 := MustFromSlice([]float64{1.0, 1.1})
	if d2.IsKappaOptimal(2, 1e-9) {
		t.Fatal("10%% skew accepted as optimal")
	}
}

func TestMinFaultsToExceed(t *testing.T) {
	// Oligopoly: two faults already control a majority.
	d := MustFromSlice([]float64{34.239, 19.981, 12.997, 11.348, 8.826})
	n, err := d.MinFaultsToExceed(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("faults to majority = %d, want 2 (34.2+20.0 > 50%% of 87.4)", n)
	}
	// Uniform-8 vs 1/3: need 3 configs (3/8 > 1/3).
	n, _ = Uniform(8).MinFaultsToExceed(1.0 / 3.0)
	if n != 3 {
		t.Fatalf("uniform-8 faults to 1/3 = %d, want 3", n)
	}
	// Impossible threshold.
	n, _ = Uniform(4).MinFaultsToExceed(1.0)
	if n != -1 {
		t.Fatalf("faults to exceed 1.0 = %d, want -1", n)
	}
	var empty Distribution
	if _, err := empty.MinFaultsToExceed(0.5); err != ErrNoWeight {
		t.Fatalf("err = %v, want ErrNoWeight", err)
	}
}

func TestMaxShareAndTopShares(t *testing.T) {
	d, _ := FromWeights(map[string]float64{"big": 6, "mid": 3, "small": 1})
	label, share, err := d.MaxShare()
	if err != nil {
		t.Fatal(err)
	}
	if label != "big" || !almostEqual(share, 0.6, 1e-12) {
		t.Fatalf("MaxShare = %s %v", label, share)
	}
	labels, shares, err := d.TopShares(2)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != "big" || labels[1] != "mid" {
		t.Fatalf("TopShares labels = %v", labels)
	}
	if !almostEqual(shares[0], 0.6, 1e-12) || !almostEqual(shares[1], 0.3, 1e-12) {
		t.Fatalf("TopShares shares = %v", shares)
	}
	// n beyond size clamps.
	labels, _, _ = d.TopShares(10)
	if len(labels) != 3 {
		t.Fatalf("TopShares(10) len = %d", len(labels))
	}
}

func TestWeightLookup(t *testing.T) {
	d, _ := FromWeights(map[string]float64{"x": 2.5})
	if d.Weight("x") != 2.5 {
		t.Fatalf("Weight(x) = %v", d.Weight("x"))
	}
	if d.Weight("missing") != 0 {
		t.Fatalf("Weight(missing) = %v", d.Weight("missing"))
	}
}

func TestMerge(t *testing.T) {
	a, _ := FromWeights(map[string]float64{"x": 1, "y": 2})
	b, _ := FromWeights(map[string]float64{"y": 3, "z": 4})
	m := Merge(a, b)
	if m.Weight("x") != 1 || m.Weight("y") != 5 || m.Weight("z") != 4 {
		t.Fatalf("merge weights wrong: x=%v y=%v z=%v", m.Weight("x"), m.Weight("y"), m.Weight("z"))
	}
	if !almostEqual(m.Total(), 10, 1e-12) {
		t.Fatalf("merge total = %v", m.Total())
	}
}

func TestLabelsCopy(t *testing.T) {
	d, _ := FromWeights(map[string]float64{"a": 1})
	labels := d.Labels()
	labels[0] = "mutated"
	if d.Labels()[0] != "a" {
		t.Fatal("Labels exposed internal slice")
	}
}

// Property: 0 <= H <= log2(support) for any valid distribution, maximum
// attained exactly by uniform distributions (Sec. IV-A's two conditions).
func TestPropEntropyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		n := 1 + rng.Intn(40)
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = rng.Float64() * 100
		}
		d := MustFromSlice(ws)
		h, err := d.Entropy()
		if err != nil {
			return d.Support() == 0
		}
		max := MaxEntropyForSupport(d.Support())
		return h >= -1e-12 && h <= max+1e-9
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging a distribution with itself preserves all diversity
// metrics (relative abundance identical — the Prop. 1 escape clause).
func TestPropSelfMergeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func() bool {
		n := 1 + rng.Intn(20)
		ws := make([]float64, n)
		any := false
		for i := range ws {
			ws[i] = float64(rng.Intn(50))
			if ws[i] > 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		d := MustFromSlice(ws)
		m := Merge(d, d)
		h1, err1 := d.Entropy()
		h2, err2 := m.Entropy()
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(h1, h2, 1e-9)
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MinFaultsToExceed is monotone non-increasing in diversity —
// concentrating weight onto fewer configs can only lower the fault count —
// and always between 1 and support for thresholds in (0,1).
func TestPropMinFaultsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func() bool {
		n := 1 + rng.Intn(30)
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = rng.Float64()*10 + 0.01
		}
		d := MustFromSlice(ws)
		threshold := rng.Float64() * 0.99
		k, err := d.MinFaultsToExceed(threshold)
		if err != nil {
			return false
		}
		return k >= 1 && k <= d.Support()
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hill numbers are non-increasing in their order q (the
// diversity-profile monotonicity theorem), and bounded by the support.
func TestPropHillMonotoneInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func() bool {
		n := 1 + rng.Intn(25)
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = rng.Float64()*10 + 0.01
		}
		d := MustFromSlice(ws)
		prev := math.Inf(1)
		for _, q := range []float64{0, 0.5, 1, 2, 4} {
			h, err := d.HillNumber(q)
			if err != nil {
				return false
			}
			if h > prev+1e-9 || h > float64(d.Support())+1e-9 || h < 1-1e-9 {
				return false
			}
			prev = h
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
