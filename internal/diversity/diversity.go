// Package diversity implements the paper's quantitative core (Sec. IV):
// Shannon-entropy measurement of replica-configuration diversity,
// κ-optimal fault independence (Definition 1), configuration abundance and
// (κ, ω)-optimal resilience (Definition 2), plus the operational resilience
// metric used to compare systems (minimum number of independent faults whose
// combined voting power exceeds a protocol's tolerance threshold).
//
// Entropy is measured in bits (log base 2) throughout, matching Example 1:
// eight uniformly weighted, uniquely configured BFT replicas have entropy
// exactly 3.
package diversity

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// DefaultTolerance is the relative tolerance used by the optimality
// predicates when comparing floating-point weights.
const DefaultTolerance = 1e-9

// ErrNoWeight is returned when a distribution has no positive weight.
var ErrNoWeight = errors.New("diversity: distribution has no positive weight")

// Distribution is a weighting of configuration labels. Weights are
// non-negative and need not sum to one; all metrics normalize internally.
// The paper's p = (p1, ..., pk) over the configuration space D corresponds
// to the normalized weights; labels identify the d_i.
type Distribution struct {
	labels  []string
	weights []float64
	total   float64
}

// FromWeights builds a distribution from a label→weight map. Negative
// weights are rejected; zero weights are kept (the paper's p may contain
// zero entries — they simply do not contribute to entropy or support).
func FromWeights(weights map[string]float64) (Distribution, error) {
	labels := make([]string, 0, len(weights))
	for label := range weights {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	d := Distribution{labels: labels, weights: make([]float64, len(labels))}
	for i, label := range labels {
		w := weights[label]
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return Distribution{}, fmt.Errorf("diversity: invalid weight %v for %q", w, label)
		}
		d.weights[i] = w
		d.total += w
	}
	return d, nil
}

// FromSlice builds a distribution whose labels are the indices "0", "1", ...
// It is the convenient constructor for the paper's anonymous p vectors.
func FromSlice(weights []float64) (Distribution, error) {
	m := make(map[string]float64, len(weights))
	for i, w := range weights {
		m[fmt.Sprintf("%06d", i)] = w
	}
	return FromWeights(m)
}

// MustFromSlice is FromSlice panicking on error, for fixtures with known
// valid inputs.
func MustFromSlice(weights []float64) Distribution {
	d, err := FromSlice(weights)
	if err != nil {
		panic(err)
	}
	return d
}

// Uniform returns the uniform distribution over k configurations, i.e. the
// κ-optimal distribution of Definition 1 with κ = k.
func Uniform(k int) Distribution {
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = 1
	}
	return MustFromSlice(weights)
}

// Len reports the number of labels, including zero-weight ones (the k of
// the paper's p = (p1,...,pk)).
func (d Distribution) Len() int { return len(d.labels) }

// Total returns the sum of weights (the paper's n_t when weights are raw
// voting power).
func (d Distribution) Total() float64 { return d.total }

// Labels returns the labels in canonical (sorted) order.
func (d Distribution) Labels() []string { return append([]string(nil), d.labels...) }

// Weight returns the raw weight of a label (zero if absent).
func (d Distribution) Weight(label string) float64 {
	i := sort.SearchStrings(d.labels, label)
	if i < len(d.labels) && d.labels[i] == label {
		return d.weights[i]
	}
	return 0
}

// Probabilities returns the normalized weights in label order. It returns
// ErrNoWeight when the distribution has no positive weight.
func (d Distribution) Probabilities() ([]float64, error) {
	if d.total <= 0 {
		return nil, ErrNoWeight
	}
	ps := make([]float64, len(d.weights))
	for i, w := range d.weights {
		ps[i] = w / d.total
	}
	return ps, nil
}

// Support reports the number of labels with positive weight — |p'| in
// Definition 1.
func (d Distribution) Support() int {
	n := 0
	for _, w := range d.weights {
		if w > 0 {
			n++
		}
	}
	return n
}

// MaxShare returns the largest normalized weight (the strongest oligopolist)
// and its label. It returns ErrNoWeight for an all-zero distribution.
func (d Distribution) MaxShare() (string, float64, error) {
	if d.total <= 0 {
		return "", 0, ErrNoWeight
	}
	best, bestIdx := -1.0, -1
	for i, w := range d.weights {
		if w > best {
			best, bestIdx = w, i
		}
	}
	return d.labels[bestIdx], best / d.total, nil
}

// Entropy returns the Shannon entropy H(p) in bits, with the paper's
// convention 0·log(1/0) = 0. It returns ErrNoWeight when no label has
// positive weight.
func (d Distribution) Entropy() (float64, error) {
	ps, err := d.Probabilities()
	if err != nil {
		return 0, err
	}
	h := 0.0
	for _, p := range ps {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h, nil
}

// NormalizedEntropy returns H(p) / log2(support), the fraction of the
// maximum entropy achievable with the same support — 1 exactly when the
// distribution is κ-optimal. A single-configuration distribution has
// normalized entropy 0 by convention.
func (d Distribution) NormalizedEntropy() (float64, error) {
	h, err := d.Entropy()
	if err != nil {
		return 0, err
	}
	s := d.Support()
	if s <= 1 {
		return 0, nil
	}
	return h / math.Log2(float64(s)), nil
}

// EffectiveConfigurations returns 2^H — the Hill number of order 1, i.e.
// the number of equally weighted configurations that would produce the same
// entropy. It is the natural "how diverse is this really" scalar for
// comparing Bitcoin's oligopoly against an n-replica BFT cluster.
func (d Distribution) EffectiveConfigurations() (float64, error) {
	h, err := d.Entropy()
	if err != nil {
		return 0, err
	}
	return math.Exp2(h), nil
}

// SimpsonIndex returns Σ p_i² — the probability that two independently
// sampled units of voting power share a configuration (and hence a fault
// domain). Lower is more diverse.
func (d Distribution) SimpsonIndex() (float64, error) {
	ps, err := d.Probabilities()
	if err != nil {
		return 0, err
	}
	s := 0.0
	for _, p := range ps {
		s += p * p
	}
	return s, nil
}

// GiniSimpson returns 1 - Σ p_i², the complementary diversity index.
func (d Distribution) GiniSimpson() (float64, error) {
	s, err := d.SimpsonIndex()
	if err != nil {
		return 0, err
	}
	return 1 - s, nil
}

// HillNumber returns the Hill diversity of order q: (Σ p_i^q)^(1/(1-q)),
// with the limits q→1 giving 2^H and q→0 giving the support size. Hill
// numbers let the experiments show that different diversity orders rank
// the same systems consistently.
func (d Distribution) HillNumber(q float64) (float64, error) {
	ps, err := d.Probabilities()
	if err != nil {
		return 0, err
	}
	if math.Abs(q-1) < 1e-12 {
		return d.EffectiveConfigurations()
	}
	sum := 0.0
	for _, p := range ps {
		if p > 0 {
			sum += math.Pow(p, q)
		}
	}
	return math.Pow(sum, 1/(1-q)), nil
}

// IsUniform reports whether all positive weights are equal within tol
// (relative to the mean positive weight). tol <= 0 uses DefaultTolerance.
func (d Distribution) IsUniform(tol float64) bool {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	var sum float64
	n := 0
	for _, w := range d.weights {
		if w > 0 {
			sum += w
			n++
		}
	}
	if n == 0 {
		return false
	}
	mean := sum / float64(n)
	for _, w := range d.weights {
		if w > 0 && math.Abs(w-mean) > tol*mean {
			return false
		}
	}
	return true
}

// IsKappaOptimal implements Definition 1: the distribution achieves
// κ-optimal fault independence iff exactly κ labels have non-zero weight
// and all non-zero weights are equal (within tol).
func (d Distribution) IsKappaOptimal(kappa int, tol float64) bool {
	return d.Support() == kappa && kappa > 0 && d.IsUniform(tol)
}

// Kappa returns the κ for which the distribution is κ-optimal, or
// (0, false) when the distribution is not κ-optimal for any κ.
func (d Distribution) Kappa(tol float64) (int, bool) {
	s := d.Support()
	if s > 0 && d.IsUniform(tol) {
		return s, true
	}
	return 0, false
}

// MinFaultsToExceed returns the minimum number of *distinct* configuration
// faults whose combined normalized voting power strictly exceeds threshold.
// This is the operational resilience of Sec. II-C: an adversary holding one
// exploit per configuration needs this many independent vulnerabilities to
// push Σ f_t^i past the protocol's tolerance. It returns (0, ErrNoWeight)
// for an empty distribution and (support+1 impossible case) as
// (-1, nil) when even compromising every configuration cannot exceed the
// threshold (threshold >= 1).
func (d Distribution) MinFaultsToExceed(threshold float64) (int, error) {
	ps, err := d.Probabilities()
	if err != nil {
		return 0, err
	}
	sorted := append([]float64(nil), ps...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	cum := 0.0
	for i, p := range sorted {
		if p <= 0 {
			break
		}
		cum += p
		if cum > threshold {
			return i + 1, nil
		}
	}
	return -1, nil
}

// TopShares returns the n largest normalized weights with their labels, in
// descending order, for experiment tables.
func (d Distribution) TopShares(n int) ([]string, []float64, error) {
	ps, err := d.Probabilities()
	if err != nil {
		return nil, nil, err
	}
	idx := make([]int, len(ps))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if ps[idx[a]] != ps[idx[b]] {
			return ps[idx[a]] > ps[idx[b]]
		}
		return d.labels[idx[a]] < d.labels[idx[b]]
	})
	if n > len(idx) {
		n = len(idx)
	}
	labels := make([]string, n)
	shares := make([]float64, n)
	for i := 0; i < n; i++ {
		labels[i] = d.labels[idx[i]]
		shares[i] = ps[idx[i]]
	}
	return labels, shares, nil
}

// Merge returns a distribution whose weight for each label is the sum of
// the two inputs' weights, modelling populations joining.
func Merge(a, b Distribution) Distribution {
	m := make(map[string]float64, a.Len()+b.Len())
	for i, label := range a.labels {
		m[label] += a.weights[i]
	}
	for i, label := range b.labels {
		m[label] += b.weights[i]
	}
	d, err := FromWeights(m)
	if err != nil {
		// Unreachable: inputs were validated non-negative and finite.
		panic(err)
	}
	return d
}

// Scale returns a copy with every weight multiplied by factor (> 0). The
// relative configuration abundance — and hence every diversity metric — is
// invariant under Scale; Proposition 1's "unless the relative configuration
// abundance remains identical" clause is exactly this invariance.
func (d Distribution) Scale(factor float64) (Distribution, error) {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return Distribution{}, fmt.Errorf("diversity: invalid scale factor %v", factor)
	}
	out := Distribution{
		labels:  append([]string(nil), d.labels...),
		weights: make([]float64, len(d.weights)),
		total:   d.total * factor,
	}
	for i, w := range d.weights {
		out.weights[i] = w * factor
	}
	return out, nil
}
