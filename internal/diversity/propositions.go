package diversity

import (
	"fmt"
	"math"
)

// This file turns the paper's Propositions 1–3 into executable statements.
// Each proposition is expressed as a function that either constructs the
// scenario the proposition describes and returns the quantities it compares,
// or checks the claimed inequality on caller-supplied inputs. The property
// tests in propositions_test.go verify the claims over randomized inputs,
// and internal/experiment renders the same functions as tables.

// Proposition1Outcome captures one comparison for Proposition 1:
// "For a κ-optimal fault independence system, increasing configuration
// abundance decreases entropy, unless the relative configuration abundance
// remains identical."
type Proposition1Outcome struct {
	Kappa           int
	EntropyBefore   float64 // entropy of the κ-optimal relative abundance (= log2 κ)
	EntropyAfter    float64 // entropy after the abundance increase
	Proportional    bool    // whether the increase kept relative abundance identical
	EntropyDecrease float64 // EntropyBefore - EntropyAfter (>= 0; == 0 iff proportional)
}

// CheckProposition1 starts from a κ-optimal population with abundance ω
// (every one of κ configurations has exactly ω members of unit power) and
// adds extra members per configuration according to additions (length κ,
// each ≥ 0). It returns the entropies of the relative-abundance
// distributions before and after.
//
// The proposition holds iff: entropy never increases, and it stays equal
// exactly when the additions are proportional to the existing abundance
// (for a κ-optimal start: all additions equal).
func CheckProposition1(kappa, omega int, additions []int) (Proposition1Outcome, error) {
	if kappa <= 0 || omega <= 0 {
		return Proposition1Outcome{}, fmt.Errorf("diversity: kappa %d and omega %d must be positive", kappa, omega)
	}
	if len(additions) != kappa {
		return Proposition1Outcome{}, fmt.Errorf("diversity: need %d addition counts, got %d", kappa, len(additions))
	}
	before := make([]float64, kappa)
	after := make([]float64, kappa)
	proportional := true
	for i := 0; i < kappa; i++ {
		if additions[i] < 0 {
			return Proposition1Outcome{}, fmt.Errorf("diversity: negative addition %d at %d", additions[i], i)
		}
		before[i] = float64(omega)
		after[i] = float64(omega + additions[i])
		if additions[i] != additions[0] {
			proportional = false
		}
	}
	hBefore, err := MustFromSlice(before).Entropy()
	if err != nil {
		return Proposition1Outcome{}, err
	}
	hAfter, err := MustFromSlice(after).Entropy()
	if err != nil {
		return Proposition1Outcome{}, err
	}
	return Proposition1Outcome{
		Kappa:           kappa,
		EntropyBefore:   hBefore,
		EntropyAfter:    hAfter,
		Proportional:    proportional,
		EntropyDecrease: hBefore - hAfter,
	}, nil
}

// Proposition2Outcome captures one comparison for Proposition 2:
// "Assuming each replica has a unique configuration, having more replicas
// does not provide more resilience, unless the relative configuration
// abundances are identical."
type Proposition2Outcome struct {
	BaseReplicas       int
	AddedReplicas      int
	EntropyBefore      float64
	EntropyAfter       float64
	FaultsToHalfBefore int
	FaultsToHalfAfter  int
}

// CheckProposition2 starts from a power distribution over uniquely
// configured replicas (base, raw power units) and appends added further
// unique replicas whose total power is tailPower, spread uniformly. It
// returns entropy and min-faults-to-majority before and after.
//
// The proposition's content: when base is an oligopoly (non-uniform), the
// resilience metric (faults to exceed 1/2) does not improve no matter how
// large added grows, because the adversary still targets the giants. Only
// when the combined relative abundances become identical (uniform) does
// resilience scale with replica count. Example 1/Figure 1 instantiate this
// with the Bitcoin snapshot.
func CheckProposition2(base []float64, added int, tailPower float64) (Proposition2Outcome, error) {
	if len(base) == 0 {
		return Proposition2Outcome{}, fmt.Errorf("diversity: empty base distribution")
	}
	if added < 0 || tailPower < 0 {
		return Proposition2Outcome{}, fmt.Errorf("diversity: negative added (%d) or tailPower (%v)", added, tailPower)
	}
	dBase, err := FromSlice(base)
	if err != nil {
		return Proposition2Outcome{}, err
	}
	out := Proposition2Outcome{BaseReplicas: len(base), AddedReplicas: added}
	if out.EntropyBefore, err = dBase.Entropy(); err != nil {
		return Proposition2Outcome{}, err
	}
	if out.FaultsToHalfBefore, err = dBase.MinFaultsToExceed(0.5); err != nil {
		return Proposition2Outcome{}, err
	}
	combined := append(append([]float64(nil), base...), make([]float64, added)...)
	for i := 0; i < added; i++ {
		combined[len(base)+i] = tailPower / float64(added)
	}
	dAfter, err := FromSlice(combined)
	if err != nil {
		return Proposition2Outcome{}, err
	}
	if out.EntropyAfter, err = dAfter.Entropy(); err != nil {
		return Proposition2Outcome{}, err
	}
	if out.FaultsToHalfAfter, err = dAfter.MinFaultsToExceed(0.5); err != nil {
		return Proposition2Outcome{}, err
	}
	return out, nil
}

// Proposition3Outcome captures one comparison for Proposition 3:
// "Higher configuration abundance improves the resilience of permissionless
// blockchains" — against operator-level adversaries — at a proportional
// message-overhead cost.
type Proposition3Outcome struct {
	Kappa int
	Omega int
	// OperatorFaultsToHalf is the number of malicious operators needed to
	// exceed half the power; grows linearly in ω for κ-optimal systems.
	OperatorFaultsToHalf int
	// ConfigFaultsToHalf is the number of vulnerability-level faults needed;
	// independent of ω (the "doesn't help for vulnerability adversaries"
	// caveat in the paper's discussion).
	ConfigFaultsToHalf int
	// Replicas = κ·ω, proportional to the per-round message overhead of a
	// quorum protocol (the trade-off the paper closes Sec. IV-B with).
	Replicas int
}

// CheckProposition3 builds the (κ, ω)-optimal population of Definition 2
// (κ configurations, ω unit-power members each) and evaluates both fault
// models against the 1/2 threshold.
func CheckProposition3(kappa, omega int) (Proposition3Outcome, error) {
	if kappa <= 0 || omega <= 0 {
		return Proposition3Outcome{}, fmt.Errorf("diversity: kappa %d and omega %d must be positive", kappa, omega)
	}
	labels := make([]string, kappa)
	for i := range labels {
		labels[i] = fmt.Sprintf("cfg-%04d", i)
	}
	pop, err := UniformPopulation(kappa*omega, labels)
	if err != nil {
		return Proposition3Outcome{}, err
	}
	out := Proposition3Outcome{Kappa: kappa, Omega: omega, Replicas: kappa * omega}
	if out.OperatorFaultsToHalf, err = pop.MinOperatorFaultsToExceed(0.5); err != nil {
		return Proposition3Outcome{}, err
	}
	if out.ConfigFaultsToHalf, err = pop.PowerDistribution().MinFaultsToExceed(0.5); err != nil {
		return Proposition3Outcome{}, err
	}
	return out, nil
}

// MaxEntropyForSupport returns log2(k), the entropy ceiling for any
// distribution supported on k configurations — the value a κ-optimal
// distribution attains (Sec. IV-A).
func MaxEntropyForSupport(k int) float64 {
	if k <= 0 {
		return 0
	}
	return math.Log2(float64(k))
}

// SafetyCondition models Sec. II-C: the system is safe at an instant iff
// the protocol's fault tolerance f (as a power fraction) is at least the
// sum of per-vulnerability compromised power fractions Σ f_t^i.
func SafetyCondition(toleratedFraction float64, compromisedFractions []float64) bool {
	var sum float64
	for _, f := range compromisedFractions {
		sum += f
	}
	return toleratedFraction >= sum
}
