package diversity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCheckProposition1Validation(t *testing.T) {
	if _, err := CheckProposition1(0, 1, nil); err == nil {
		t.Fatal("kappa=0 accepted")
	}
	if _, err := CheckProposition1(2, 0, []int{1, 1}); err == nil {
		t.Fatal("omega=0 accepted")
	}
	if _, err := CheckProposition1(2, 1, []int{1}); err == nil {
		t.Fatal("wrong additions length accepted")
	}
	if _, err := CheckProposition1(2, 1, []int{-1, 0}); err == nil {
		t.Fatal("negative addition accepted")
	}
}

func TestProposition1SkewedGrowthDecreasesEntropy(t *testing.T) {
	out, err := CheckProposition1(4, 2, []int{6, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Proportional {
		t.Fatal("skewed additions reported proportional")
	}
	if out.EntropyAfter >= out.EntropyBefore {
		t.Fatalf("entropy did not decrease: before %v after %v", out.EntropyBefore, out.EntropyAfter)
	}
	if !almostEqual(out.EntropyBefore, 2, 1e-12) {
		t.Fatalf("κ=4 optimal entropy = %v, want 2", out.EntropyBefore)
	}
}

func TestProposition1ProportionalGrowthPreservesEntropy(t *testing.T) {
	out, err := CheckProposition1(8, 3, []int{5, 5, 5, 5, 5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Proportional {
		t.Fatal("equal additions not reported proportional")
	}
	if !almostEqual(out.EntropyBefore, out.EntropyAfter, 1e-12) {
		t.Fatalf("proportional growth changed entropy: %v -> %v", out.EntropyBefore, out.EntropyAfter)
	}
}

// Property (Proposition 1): entropy never increases when abundance grows
// from a κ-optimal start, and is preserved iff growth is proportional.
func TestPropProposition1(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func() bool {
		kappa := 2 + rng.Intn(12)
		omega := 1 + rng.Intn(5)
		additions := make([]int, kappa)
		for i := range additions {
			additions[i] = rng.Intn(10)
		}
		out, err := CheckProposition1(kappa, omega, additions)
		if err != nil {
			return false
		}
		if out.EntropyAfter > out.EntropyBefore+1e-9 {
			return false // entropy increased: proposition violated
		}
		if out.Proportional && !almostEqual(out.EntropyBefore, out.EntropyAfter, 1e-9) {
			return false // proportional growth must preserve entropy
		}
		if !out.Proportional && out.EntropyAfter >= out.EntropyBefore-1e-12 {
			return false // strict decrease for non-proportional growth
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckProposition2Validation(t *testing.T) {
	if _, err := CheckProposition2(nil, 1, 1); err == nil {
		t.Fatal("empty base accepted")
	}
	if _, err := CheckProposition2([]float64{1}, -1, 1); err == nil {
		t.Fatal("negative added accepted")
	}
	if _, err := CheckProposition2([]float64{1}, 1, -1); err == nil {
		t.Fatal("negative tail power accepted")
	}
}

func TestProposition2OligopolyResilienceStuck(t *testing.T) {
	// Example 1's shape: a heavy oligopoly plus a growing uniform tail.
	oligopoly := []float64{34.239, 19.981, 12.997, 11.348, 8.826, 2.619,
		2.037, 1.649, 1.358, 1.261, 0.78, 0.68, 0.68, 0.39, 0.10, 0.10, 0.10}
	small, err := CheckProposition2(oligopoly, 10, 0.87)
	if err != nil {
		t.Fatal(err)
	}
	big, err := CheckProposition2(oligopoly, 1000, 0.87)
	if err != nil {
		t.Fatal(err)
	}
	// Resilience (faults to majority) does not improve with 100× more replicas.
	if big.FaultsToHalfAfter != small.FaultsToHalfAfter {
		t.Fatalf("tail growth changed fault resilience: %d vs %d",
			small.FaultsToHalfAfter, big.FaultsToHalfAfter)
	}
	if big.FaultsToHalfAfter != 2 {
		t.Fatalf("oligopoly majority takeover needs %d faults, want 2", big.FaultsToHalfAfter)
	}
}

func TestProposition2UniformGrowthHelps(t *testing.T) {
	// Identical relative abundances (all uniform): resilience scales.
	uniform8 := make([]float64, 8)
	for i := range uniform8 {
		uniform8[i] = 1
	}
	out, err := CheckProposition2(uniform8, 8, 8) // 8 more unit-power replicas
	if err != nil {
		t.Fatal(err)
	}
	if out.FaultsToHalfAfter <= out.FaultsToHalfBefore {
		t.Fatalf("uniform growth should raise resilience: %d -> %d",
			out.FaultsToHalfBefore, out.FaultsToHalfAfter)
	}
}

func TestCheckProposition3Validation(t *testing.T) {
	if _, err := CheckProposition3(0, 1); err == nil {
		t.Fatal("kappa=0 accepted")
	}
	if _, err := CheckProposition3(1, 0); err == nil {
		t.Fatal("omega=0 accepted")
	}
}

func TestProposition3Shape(t *testing.T) {
	base, err := CheckProposition3(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := CheckProposition3(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if grown.OperatorFaultsToHalf <= base.OperatorFaultsToHalf {
		t.Fatalf("operator resilience did not grow: %d -> %d",
			base.OperatorFaultsToHalf, grown.OperatorFaultsToHalf)
	}
	if grown.ConfigFaultsToHalf != base.ConfigFaultsToHalf {
		t.Fatalf("config resilience should be ω-invariant: %d vs %d",
			base.ConfigFaultsToHalf, grown.ConfigFaultsToHalf)
	}
	// The trade-off: replicas (∝ message overhead) grow linearly in ω.
	if grown.Replicas != 4*base.Replicas {
		t.Fatalf("replicas = %d, want %d", grown.Replicas, 4*base.Replicas)
	}
}

// Property (Proposition 3): operator faults to half = floor(κω/2)+1 for
// unit-power (κ,ω)-optimal populations; config faults = floor(κ/2)+1.
func TestPropProposition3ClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	f := func() bool {
		kappa := 1 + rng.Intn(16)
		omega := 1 + rng.Intn(8)
		out, err := CheckProposition3(kappa, omega)
		if err != nil {
			return false
		}
		wantOp := kappa*omega/2 + 1
		wantCfg := kappa/2 + 1
		return out.OperatorFaultsToHalf == wantOp && out.ConfigFaultsToHalf == wantCfg
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSafetyCondition(t *testing.T) {
	// Sec. II-C: safe iff f >= Σ f_t^i.
	if !SafetyCondition(0.33, []float64{0.1, 0.2}) {
		t.Fatal("0.3 <= 0.33 should be safe")
	}
	if SafetyCondition(0.33, []float64{0.2, 0.2}) {
		t.Fatal("0.4 > 0.33 should be unsafe")
	}
	if !SafetyCondition(0, nil) {
		t.Fatal("no faults should always be safe")
	}
}

func TestMaxEntropyForSupport(t *testing.T) {
	if MaxEntropyForSupport(0) != 0 || MaxEntropyForSupport(-1) != 0 {
		t.Fatal("non-positive support should give 0")
	}
	if !almostEqual(MaxEntropyForSupport(8), 3, 1e-12) {
		t.Fatalf("max entropy for 8 = %v", MaxEntropyForSupport(8))
	}
}
