package diversity

import (
	"fmt"
	"math"
	"sort"
)

// Member is one replica in a population: a configuration label plus the
// voting power it carries (hash rate for Nakamoto, stake or replica weight
// for BFT/committee protocols).
type Member struct {
	Label string  // configuration identity (e.g. config.ID.String())
	Power float64 // non-negative voting power
}

// Population is a multiset of replicas. It is the concrete object behind
// the paper's abundance discussion (Sec. IV-B): several members may share a
// configuration label, and "configuration abundance" counts members per
// label while the power distribution weighs labels by total power.
type Population struct {
	members []Member
}

// NewPopulation validates and copies the member list.
func NewPopulation(members []Member) (*Population, error) {
	out := make([]Member, len(members))
	for i, m := range members {
		if m.Label == "" {
			return nil, fmt.Errorf("diversity: member %d has empty label", i)
		}
		if m.Power < 0 || math.IsNaN(m.Power) || math.IsInf(m.Power, 0) {
			return nil, fmt.Errorf("diversity: member %d has invalid power %v", i, m.Power)
		}
		out[i] = m
	}
	return &Population{members: out}, nil
}

// UniformPopulation returns a population of n members with unit power where
// member i gets configuration label labels[i % len(labels)] — i.e. every
// configuration reaches abundance n/len(labels) when len(labels) divides n.
func UniformPopulation(n int, labels []string) (*Population, error) {
	if n <= 0 || len(labels) == 0 {
		return nil, fmt.Errorf("diversity: uniform population needs n > 0 and labels (n=%d, labels=%d)", n, len(labels))
	}
	members := make([]Member, n)
	for i := range members {
		members[i] = Member{Label: labels[i%len(labels)], Power: 1}
	}
	return NewPopulation(members)
}

// Size reports the number of members.
func (p *Population) Size() int { return len(p.members) }

// Members returns a copy of the member list.
func (p *Population) Members() []Member { return append([]Member(nil), p.members...) }

// Add appends a member (join event).
func (p *Population) Add(m Member) error {
	if m.Label == "" {
		return fmt.Errorf("diversity: empty label")
	}
	if m.Power < 0 || math.IsNaN(m.Power) || math.IsInf(m.Power, 0) {
		return fmt.Errorf("diversity: invalid power %v", m.Power)
	}
	p.members = append(p.members, m)
	return nil
}

// PowerDistribution aggregates member power by configuration label — the
// paper's p over D, with weights in raw power units.
func (p *Population) PowerDistribution() Distribution {
	m := make(map[string]float64)
	for _, mem := range p.members {
		m[mem.Label] += mem.Power
	}
	d, err := FromWeights(m)
	if err != nil {
		// Unreachable: members validated on entry.
		panic(err)
	}
	return d
}

// AbundanceCounts returns the configuration abundance: number of members
// per configuration label (Sec. IV-B).
func (p *Population) AbundanceCounts() map[string]int {
	m := make(map[string]int)
	for _, mem := range p.members {
		m[mem.Label]++
	}
	return m
}

// RelativeAbundance returns the percent-composition distribution: weight of
// each label proportional to its member count. The paper notes this is the
// Bitcoin-relevant view, where relative abundance is mining-power share
// when every member has equal power.
func (p *Population) RelativeAbundance() Distribution {
	counts := p.AbundanceCounts()
	m := make(map[string]float64, len(counts))
	for label, c := range counts {
		m[label] = float64(c)
	}
	d, err := FromWeights(m)
	if err != nil {
		panic(err) // counts are non-negative integers
	}
	return d
}

// Omega returns the common configuration abundance ω when every present
// configuration has the same member count, and (0, false) otherwise.
func (p *Population) Omega() (int, bool) {
	counts := p.AbundanceCounts()
	if len(counts) == 0 {
		return 0, false
	}
	omega := -1
	for _, c := range counts {
		if omega == -1 {
			omega = c
		} else if c != omega {
			return 0, false
		}
	}
	return omega, true
}

// IsKappaOmegaOptimal implements Definition 2: the population is
// (κ, ω)-optimal resilient iff its power distribution is κ-optimal
// (Definition 1) and every configuration has abundance exactly ω.
func (p *Population) IsKappaOmegaOptimal(kappa, omega int, tol float64) bool {
	if !p.PowerDistribution().IsKappaOptimal(kappa, tol) {
		return false
	}
	w, ok := p.Omega()
	return ok && w == omega
}

// KappaOmega returns the (κ, ω) for which the population is optimal, or
// ok=false when it is not optimal for any pair.
func (p *Population) KappaOmega(tol float64) (kappa, omega int, ok bool) {
	k, kOK := p.PowerDistribution().Kappa(tol)
	if !kOK {
		return 0, 0, false
	}
	w, wOK := p.Omega()
	if !wOK {
		return 0, 0, false
	}
	return k, w, true
}

// MinOperatorFaultsToExceed returns the minimum number of *member-level*
// faults (malicious operators, Proposition 3's adversary) whose combined
// power strictly exceeds threshold × total power. Unlike configuration
// faults, an operator fault compromises a single member even when other
// members share its configuration — this is exactly why higher abundance ω
// improves resilience against operator adversaries.
func (p *Population) MinOperatorFaultsToExceed(threshold float64) (int, error) {
	if len(p.members) == 0 {
		return 0, ErrNoWeight
	}
	var total float64
	powers := make([]float64, len(p.members))
	for i, m := range p.members {
		powers[i] = m.Power
		total += m.Power
	}
	if total <= 0 {
		return 0, ErrNoWeight
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(powers)))
	cum := 0.0
	for i, pw := range powers {
		cum += pw
		if cum > threshold*total {
			return i + 1, nil
		}
	}
	return -1, nil
}

// Report bundles every diversity and resilience metric the experiments
// print for a population or distribution.
type Report struct {
	Support                 int     // configurations with non-zero power
	Members                 int     // population size (0 when built from a bare distribution)
	Entropy                 float64 // bits
	NormalizedEntropy       float64
	EffectiveConfigurations float64 // 2^H
	SimpsonIndex            float64
	MaxShare                float64 // largest single configuration's power share
	Kappa                   int     // κ when κ-optimal, else 0
	Omega                   int     // ω when uniform abundance, else 0
	MinConfigFaultsToThird  int     // faults (config level) to exceed 1/3 power
	MinConfigFaultsToHalf   int     // faults (config level) to exceed 1/2 power
	MinOperatorFaultsToHalf int     // faults (operator level) to exceed 1/2 power; 0 when unknown
}

// ReportForDistribution computes a Report for a bare power distribution
// (member-level metrics are zero).
func ReportForDistribution(d Distribution) (Report, error) {
	var r Report
	var err error
	if r.Entropy, err = d.Entropy(); err != nil {
		return Report{}, err
	}
	if r.NormalizedEntropy, err = d.NormalizedEntropy(); err != nil {
		return Report{}, err
	}
	if r.EffectiveConfigurations, err = d.EffectiveConfigurations(); err != nil {
		return Report{}, err
	}
	if r.SimpsonIndex, err = d.SimpsonIndex(); err != nil {
		return Report{}, err
	}
	if _, share, err2 := d.MaxShare(); err2 == nil {
		r.MaxShare = share
	}
	r.Support = d.Support()
	if k, ok := d.Kappa(0); ok {
		r.Kappa = k
	}
	if r.MinConfigFaultsToThird, err = d.MinFaultsToExceed(1.0 / 3.0); err != nil {
		return Report{}, err
	}
	if r.MinConfigFaultsToHalf, err = d.MinFaultsToExceed(0.5); err != nil {
		return Report{}, err
	}
	return r, nil
}

// ReportForPopulation computes the full Report, including member-level
// (operator adversary) resilience and abundance ω.
func ReportForPopulation(p *Population) (Report, error) {
	r, err := ReportForDistribution(p.PowerDistribution())
	if err != nil {
		return Report{}, err
	}
	r.Members = p.Size()
	if w, ok := p.Omega(); ok {
		r.Omega = w
	}
	if mf, err := p.MinOperatorFaultsToExceed(0.5); err == nil {
		r.MinOperatorFaultsToHalf = mf
	}
	return r, nil
}
