package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/registry"
	"repro/internal/vuln"
)

// Option configures a Monitor at construction time. Options compose; the
// last writer of a knob wins. Invalid options surface as a NewMonitor
// error rather than a misconfigured monitor.
type Option func(*Monitor) error

// WithCatalog sets the vulnerability catalog assessed against the
// registry. The default is an empty catalog (no known faults).
func WithCatalog(catalog *vuln.Catalog) Option {
	return func(m *Monitor) error {
		if catalog == nil {
			return errors.New("core: nil catalog")
		}
		m.catalog = catalog
		return nil
	}
}

// WithWeighting sets how attested and declared replicas are weighted when
// computing effective voting power. Default: registry.DefaultWeighting.
func WithWeighting(w registry.Weighting) Option {
	return func(m *Monitor) error {
		if err := w.Validate(); err != nil {
			return err
		}
		m.weighting = w
		return nil
	}
}

// WithThreshold sets a bespoke tolerated Byzantine power fraction f in
// (0,1). It is shorthand for WithSubstrate(Family{...}); prefer selecting
// a consensus family via WithSubstrate where one applies.
func WithThreshold(f float64) Option {
	return func(m *Monitor) error {
		s := Family{FamilyName: fmt.Sprintf("custom(f=%.4g)", f), FaultTolerance: f}
		if err := validateSubstrate(s); err != nil {
			return fmt.Errorf("core: threshold %v out of (0,1)", f)
		}
		m.substrate = s
		return nil
	}
}

// WithSubstrate selects the consensus family whose tolerance and safety
// rule the monitor applies. Default: Family{"bft", 1/3}.
func WithSubstrate(s Substrate) Option {
	return func(m *Monitor) error {
		if err := validateSubstrate(s); err != nil {
			return err
		}
		m.substrate = s
		return nil
	}
}

// WithSummaryFaults makes assessments report summary faults: each Fault
// carries its power and fraction but no compromised-name list. At very
// large populations materialising per-vulnerability name lists is the only
// O(population) step left in an assessment; summary mode keeps the whole
// pipeline on the bucketed aggregates. Safety verdicts, fractions and the
// worst-window sweep are unaffected.
func WithSummaryFaults() Option {
	return func(m *Monitor) error {
		m.summaryFaults = true
		return nil
	}
}

// Clock reports the current virtual time of the deployment; Watch calls
// it at every tick to decide the assessment instant.
type Clock func() time.Duration

// WithClock sets the instant reader used to stamp Watch emissions. The
// default clock is wall time elapsed since the monitor was constructed.
//
// A bare func can only be read, not waited on, so Watch pacing stays on
// the wall ticker; use WithVirtualTime to pace ticks on virtual time too.
func WithClock(c Clock) Option {
	return func(m *Monitor) error {
		if c == nil {
			return errors.New("core: nil clock")
		}
		m.clock = c
		return nil
	}
}

// WithVirtualTime runs Watch entirely on virtual time: vt both stamps and
// paces the stream. One assessment is emitted per watch interval of
// *virtual* time, at the exact boundary instants, with no wall ticker —
// whoever calls vt.Advance controls the cadence, which makes the stream
// deterministic and replayable.
func WithVirtualTime(vt *VirtualTime) Option {
	return func(m *Monitor) error {
		if vt == nil {
			return errors.New("core: nil virtual time")
		}
		m.clock = vt.Now
		m.ticks = vt.ticks
		return nil
	}
}

// WithWatchInterval sets the cadence of Watch emissions. Default: 1s.
func WithWatchInterval(d time.Duration) Option {
	return func(m *Monitor) error {
		if d <= 0 {
			return fmt.Errorf("core: non-positive watch interval %v", d)
		}
		m.interval = d
		return nil
	}
}
