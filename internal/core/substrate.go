package core

import (
	"fmt"
	"math"

	"repro/internal/vuln"
)

// Substrate identifies a consensus family by value: its name, the
// Byzantine power fraction f it tolerates, and the family's safety rule
// applied to an injected fault picture. Callers select a family (BFT,
// Nakamoto, committee) instead of wiring threshold constants; the
// implementations live with the backends (internal/bft, internal/nakamoto,
// internal/committee).
type Substrate interface {
	// Name identifies the consensus family (e.g. "bft", "nakamoto").
	Name() string
	// Tolerance is the tolerated Byzantine power fraction f in (0,1).
	Tolerance() float64
	// Assess applies the family's safety condition (Sec. II-C:
	// Tolerance >= Σ f_t^i) to the fault picture at one instant.
	Assess(inj vuln.Injection) bool
}

// Family is the generic value-type Substrate: a named tolerance applying
// the paper's Sec. II-C condition verbatim. Backends embed or return it;
// callers with a bespoke threshold can construct one directly.
type Family struct {
	FamilyName     string
	FaultTolerance float64
}

// Name implements Substrate.
func (f Family) Name() string { return f.FamilyName }

// Tolerance implements Substrate.
func (f Family) Tolerance() float64 { return f.FaultTolerance }

// Assess implements Substrate: safe iff Σ f_t^i ≤ Tolerance.
func (f Family) Assess(inj vuln.Injection) bool { return inj.Safe(f.FaultTolerance) }

// validateSubstrate rejects nil substrates and tolerances outside (0,1).
func validateSubstrate(s Substrate) error {
	if s == nil {
		return fmt.Errorf("core: nil substrate")
	}
	tol := s.Tolerance()
	if math.IsNaN(tol) || tol <= 0 || tol >= 1 {
		return fmt.Errorf("core: substrate %q tolerance %v out of (0,1)", s.Name(), tol)
	}
	return nil
}
