package core

import (
	"context"
	"time"
)

// Watch streams assessments continuously: one immediately, then one per
// watch interval (WithWatchInterval), each taken at the instant reported
// by the monitor's clock (WithClock). The channel is closed when ctx is
// cancelled or an assessment fails, so a for-range over the stream
// terminates cleanly.
//
// Ticks on an unchanged registry are near-free: the diversity report and
// the vulnerability exposure index come from the monitor's per-snapshot
// cache (see Monitor), so each tick only evaluates the fault picture at
// the clock instant.
//
// Watch assesses from its own goroutine and registry *mutation* is not
// synchronized: do not mutate the registry (Join/Leave/SetPower) while a
// stream is live. Cancel the stream, mutate, then Watch again — epochs
// between streams are the supported churn pattern. Concurrent reads
// (Assess from other goroutines, other monitors on the same registry)
// are safe.
//
// Usage:
//
//	ctx, cancel := context.WithCancel(context.Background())
//	defer cancel()
//	for a := range mon.Watch(ctx) {
//		if !a.Safe { ... }
//	}
func (m *Monitor) Watch(ctx context.Context) <-chan Assessment {
	out := make(chan Assessment, 1)
	go func() {
		defer close(out)
		ticker := time.NewTicker(m.interval)
		defer ticker.Stop()
		for {
			a, err := m.Assess(m.clock())
			if err != nil {
				return
			}
			select {
			case out <- a:
			case <-ctx.Done():
				return
			}
			select {
			case <-ticker.C:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
