package core

import (
	"context"
)

// Watch streams assessments continuously: one immediately, then one per
// watch interval (WithWatchInterval), each taken at an instant reported by
// the monitor's time source. The channel is closed when ctx is cancelled
// or an assessment fails, so a for-range over the stream terminates
// cleanly.
//
// Pacing follows the configured time source. The default is wall time: a
// time.Ticker fires per interval and each tick is stamped with the
// monitor's clock. With WithVirtualTime the wall ticker disappears
// entirely — emissions happen at the exact virtual boundaries
// start+interval, start+2·interval, ... as the driver advances the clock,
// so the emission instants are deterministic and replayable. (WithClock
// alone injects only an instant *reader*; a bare func cannot signal
// advancement, so pacing stays on the wall ticker — prefer WithVirtualTime
// for virtual deployments.)
//
// Ticks on an unchanged registry are near-free: the diversity report and
// the vulnerability exposure index come from the monitor's per-snapshot
// cache (see Monitor), so each tick only evaluates the fault picture at
// the tick instant.
//
// Registry churn during a live stream is supported: mutation and snapshot
// reads are synchronized inside the registry, so every assessment sees
// either the pre- or the post-mutation membership, never a torn one. For
// bit-exact replayable churn timelines use the scenario engine
// (internal/scenario), which serializes mutation and assessment on one
// scheduler instead of racing them.
//
// Usage:
//
//	ctx, cancel := context.WithCancel(context.Background())
//	defer cancel()
//	for a := range mon.Watch(ctx) {
//		if !a.Safe { ... }
//	}
func (m *Monitor) Watch(ctx context.Context) <-chan Assessment {
	out := make(chan Assessment, 1)
	go func() {
		defer close(out)
		// The tick source runs its own goroutine; cancel it when this
		// stream ends for any reason (assessment failure included), not
		// only when the caller's ctx does — otherwise a dead stream would
		// leak the source and its wall ticker.
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		start := m.clock()
		a, err := m.Assess(start)
		if err != nil {
			return
		}
		select {
		case out <- a:
		case <-ctx.Done():
			return
		}
		ticks := m.ticks
		if ticks == nil {
			ticks = wallTicks(m.clock)
		}
		for t := range ticks(ctx, start, m.interval) {
			a, err := m.Assess(t)
			if err != nil {
				return
			}
			select {
			case out <- a:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
