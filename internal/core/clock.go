package core

import (
	"context"
	"sync"
	"time"
)

// VirtualTime is a thread-safe, monotonically advancing virtual clock that
// can both stamp and pace a Watch stream. Whoever drives the deployment
// (a test, a replayed trace, a simulation loop) calls Advance; Watch
// goroutines block on interval boundaries and wake exactly when the clock
// crosses them. No wall ticker is involved, so the emission instants — and
// with a quiescent registry, the emitted assessments — are a deterministic
// function of the Advance sequence, independent of scheduling and machine
// speed.
//
// VirtualTime is the Watch-compatible complement to the sim scheduler:
// internal/sim drives single-threaded, event-stepped time (the scenario
// engine assesses inline from scheduler callbacks), while VirtualTime
// paces concurrent consumers of the same virtual timeline.
type VirtualTime struct {
	mu  sync.Mutex
	now time.Duration
	// advanced is closed and replaced on every Advance, broadcasting the
	// new instant to all blocked waiters.
	advanced chan struct{}
}

// NewVirtualTime returns a virtual clock at instant zero.
func NewVirtualTime() *VirtualTime {
	return &VirtualTime{advanced: make(chan struct{})}
}

// Now returns the current virtual instant.
func (v *VirtualTime) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d (negative d is ignored) and wakes
// every waiter whose target the new instant reaches. It returns the new
// instant.
func (v *VirtualTime) Advance(d time.Duration) time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d > 0 {
		v.now += d
		close(v.advanced)
		v.advanced = make(chan struct{})
	}
	return v.now
}

// AdvanceTo moves the clock forward to instant t; moving backwards is a
// no-op (the clock is monotone). It returns the resulting instant.
func (v *VirtualTime) AdvanceTo(t time.Duration) time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t > v.now {
		v.now = t
		close(v.advanced)
		v.advanced = make(chan struct{})
	}
	return v.now
}

// wait blocks until the clock reaches at least target or ctx is done; it
// reports whether the target was reached.
func (v *VirtualTime) wait(ctx context.Context, target time.Duration) bool {
	for {
		v.mu.Lock()
		if v.now >= target {
			v.mu.Unlock()
			return true
		}
		ch := v.advanced
		v.mu.Unlock()
		select {
		case <-ctx.Done():
			return false
		case <-ch:
		}
	}
}

// ticks is the VirtualTime tick source for Watch: it delivers the instants
// start+interval, start+2·interval, ... as the clock crosses them. The
// channel closes when ctx is done.
func (v *VirtualTime) ticks(ctx context.Context, start, interval time.Duration) <-chan time.Duration {
	out := make(chan time.Duration)
	go func() {
		defer close(out)
		for next := start + interval; ; next += interval {
			if !v.wait(ctx, next) {
				return
			}
			select {
			case out <- next:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// tickSource supplies the successive assessment instants for one Watch
// stream after the immediate first assessment at start. Implementations
// must close the returned channel when ctx is done.
type tickSource func(ctx context.Context, start, interval time.Duration) <-chan time.Duration

// wallTicks paces ticks with a wall-clock time.Ticker and stamps each tick
// by reading clock — the default for monitors living in real time.
func wallTicks(clock Clock) tickSource {
	return func(ctx context.Context, _, interval time.Duration) <-chan time.Duration {
		out := make(chan time.Duration)
		go func() {
			defer close(out)
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
				case <-ctx.Done():
					return
				}
				select {
				case out <- clock():
				case <-ctx.Done():
					return
				}
			}
		}()
		return out
	}
}
