package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/diversity"
	"repro/internal/registry"
	"repro/internal/vuln"
)

func propCfg(os string) config.Configuration {
	return config.MustNew(
		config.Component{Class: config.ClassOperatingSystem, Name: os, Version: "1"},
	)
}

// TestIncrementalMatchesColdRebuild is the equivalence property behind the
// whole O(Δ) path: it drives ~10k random mutations (Join / Leave /
// SetPower / Migrate / catalog Disclose) through one long-lived monitor —
// whose caches only ever delta-apply after the first assessment — and at
// every step cross-checks the incremental state against cold oracles
// rebuilt from scratch:
//
//   - the snapshot's per-replica view against a shadow membership the test
//     maintains independently (catches any bucket/group drift);
//   - the snapshot's Distribution against one summed member-by-member;
//   - the diversity report (incremental: bucket aggregates) against
//     diversity.ReportForPopulation over the per-replica view;
//   - the assessment's Injection (incremental: GroupInjector) against the
//     flat vuln.Inject cold path, compared as JSON bytes;
//   - periodically, WorstAssessment against the flat event-driven
//     vuln.WorstWindow sweep, compared as JSON bytes.
//
// Powers are integral and tier weights dyadic, so every comparison is exact
// float equality, not tolerance-based. The test runs under -race in CI.
func TestIncrementalMatchesColdRebuild(t *testing.T) {
	steps := 10000
	if testing.Short() {
		steps = 1500
	}
	const (
		maxReplicas = 220
		maxVulns    = 50
		horizon     = 48 * time.Hour
	)
	rng := rand.New(rand.NewSource(20230108))
	weighting := registry.Weighting{Attested: 1, Declared: 0.5}
	reg := registry.New(nil, nil)
	cat := vuln.NewCatalog()
	mon, err := NewMonitor(reg, WithCatalog(cat), WithWeighting(weighting))
	if err != nil {
		t.Fatal(err)
	}

	osPool := make([]string, 10)
	for i := range osPool {
		osPool[i] = fmt.Sprintf("os-%d", i)
	}
	latencies := []time.Duration{0, time.Hour, 2 * time.Hour, 3 * time.Hour}
	severities := []float64{0.25, 0.5, 1}

	// Shadow membership: the test's own record of what the registry must
	// contain, maintained with none of the registry's machinery.
	shadow := make(map[registry.ReplicaID]vuln.Replica)
	var alive []registry.ReplicaID
	nextID, nextCVE := 0, 0

	join := func() {
		id := registry.ReplicaID(fmt.Sprintf("r-%05d", nextID))
		nextID++
		cfg := propCfg(osPool[rng.Intn(len(osPool))])
		power := float64(1 + rng.Intn(100))
		lat := latencies[rng.Intn(len(latencies))]
		if err := reg.JoinDeclared(id, cfg, power, lat); err != nil {
			t.Fatal(err)
		}
		alive = append(alive, id)
		shadow[id] = vuln.Replica{Name: string(id), Config: cfg, Power: power * weighting.Declared, PatchLatency: lat}
	}
	pick := func() (int, registry.ReplicaID) {
		i := rng.Intn(len(alive))
		return i, alive[i]
	}
	leave := func() {
		i, id := pick()
		if err := reg.Leave(id); err != nil {
			t.Fatal(err)
		}
		alive[i] = alive[len(alive)-1]
		alive = alive[:len(alive)-1]
		delete(shadow, id)
	}
	setPower := func() {
		_, id := pick()
		power := float64(1 + rng.Intn(100))
		if err := reg.SetPower(id, power); err != nil {
			t.Fatal(err)
		}
		rep := shadow[id]
		rep.Power = power * weighting.Declared
		shadow[id] = rep
	}
	migrate := func() {
		_, id := pick()
		cfg := propCfg(osPool[rng.Intn(len(osPool))])
		if err := reg.Migrate(id, cfg); err != nil {
			t.Fatal(err)
		}
		rep := shadow[id]
		rep.Config = cfg
		shadow[id] = rep
	}
	disclose := func() {
		disclosed := time.Duration(rng.Intn(36)) * time.Hour
		v := vuln.Vulnerability{
			ID:        vuln.ID(fmt.Sprintf("CVE-%04d", nextCVE)),
			Class:     config.ClassOperatingSystem,
			Product:   osPool[rng.Intn(len(osPool))],
			Disclosed: disclosed,
			PatchAt:   disclosed + time.Duration(1+rng.Intn(12))*time.Hour,
			Severity:  severities[rng.Intn(len(severities))],
		}
		nextCVE++
		if err := cat.Add(v); err != nil {
			t.Fatal(err)
		}
	}

	// expected returns the shadow membership as the name-sorted replica
	// slice the snapshot must expose.
	expected := func() []vuln.Replica {
		out := make([]vuln.Replica, 0, len(shadow))
		for _, rep := range shadow {
			out = append(out, rep)
		}
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	asJSON := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	for i := 0; i < 8; i++ {
		join()
	}
	disclose()

	for step := 0; step < steps; step++ {
		// One random mutation, bounded so the cold oracles stay cheap.
		switch op := rng.Intn(100); {
		case op < 30 && len(alive) < maxReplicas:
			join()
		case op < 45 && len(alive) > 1:
			leave()
		case op < 65:
			setPower()
		case op < 85:
			migrate()
		case cat.Len() < maxVulns:
			disclose()
		default:
			setPower()
		}

		at := time.Duration(rng.Intn(48)) * time.Hour
		a, err := mon.Assess(at)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := reg.Snapshot(weighting)
		if err != nil {
			t.Fatal(err)
		}

		want := expected()
		if got := snap.Replicas(); !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: snapshot replicas diverged from shadow membership\n got %d: %+v\nwant %d: %+v",
				step, len(got), got, len(want), want)
		}
		weights := make(map[string]float64, len(want))
		for _, rep := range want {
			weights[rep.Config.Digest().String()] += rep.Power
		}
		wantDist, err := diversity.FromWeights(weights)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(snap.Distribution, wantDist) {
			t.Fatalf("step %d: delta-built distribution diverged from member-summed oracle", step)
		}
		coldReport, err := diversity.ReportForPopulation(snap.Population())
		if err != nil {
			t.Fatal(err)
		}
		if a.Diversity != coldReport {
			t.Fatalf("step %d: aggregate report %+v != cold report %+v", step, a.Diversity, coldReport)
		}
		coldInj, err := vuln.Inject(cat, want, at)
		if err != nil {
			t.Fatal(err)
		}
		if gotJ, wantJ := asJSON(a.Injection), asJSON(coldInj); gotJ != wantJ {
			t.Fatalf("step %d: incremental injection at %v diverged from cold rebuild\n got %s\nwant %s",
				step, at, gotJ, wantJ)
		}

		if step%127 == 0 || step == steps-1 {
			worst, err := mon.WorstAssessment(horizon)
			if err != nil {
				t.Fatal(err)
			}
			coldWorst, err := vuln.WorstWindow(cat, want, horizon)
			if err != nil {
				t.Fatal(err)
			}
			if gotJ, wantJ := asJSON(worst.Injection), asJSON(coldWorst); gotJ != wantJ {
				t.Fatalf("step %d: incremental worst window diverged from cold sweep\n got %s\nwant %s",
					step, gotJ, wantJ)
			}
		}
	}

	// The equivalence above must have been exercised by the delta path,
	// not by rebuilds: the first assessment pays the one rebuild (absorbing
	// step 0's mutation), every later mutation is a delta-apply.
	if s := mon.Stats(); s.Rebuilds != 1 || s.DeltaApplies != uint64(steps-1) {
		t.Fatalf("property ran on the wrong path: %+v, want 1 rebuild and %d delta-applies", s, steps-1)
	}
}
