// Package core assembles the paper's contribution into an operational
// fault-independence service for permissionless blockchains:
//
//   - Monitor: continuous assessment of a live replica registry — entropy,
//     κ/ω optimality (Definitions 1–2), effective configurations,
//     min-faults-to-break, and the Sec. II-C safety condition
//     f ≥ Σ f_t^i evaluated against a vulnerability catalog.
//   - Enforcement policies: per-configuration share capping and the
//     conclusion's two-tier (attested vs declared) vote weighting, both of
//     which reshape the effective voting-power distribution to raise
//     entropy without excluding anyone (permissionless systems cannot
//     reject joiners; they can only discount weight).
//
// The committee substrate (internal/committee) provides the third
// enforcement point: diversity-aware membership selection.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/diversity"
	"repro/internal/registry"
	"repro/internal/vuln"
)

// Thresholds for the two protocol families (tolerated Byzantine power
// fraction f).
const (
	BFTThreshold      = 1.0 / 3.0 // quorum-based BFT protocols
	NakamotoThreshold = 1.0 / 2.0 // longest-chain protocols
)

// Assessment is a point-in-time fault-independence report for a live
// population.
type Assessment struct {
	At        time.Duration
	Diversity diversity.Report
	// Injection is the vulnerability fault picture at the instant.
	Injection vuln.Injection
	// Substrate names the consensus family whose safety rule was applied.
	Substrate string
	// Threshold is the tolerated Byzantine power fraction used.
	Threshold float64
	// Safe is the Sec. II-C condition: Threshold >= Σ f_t^i (deduplicated).
	Safe bool
}

// Monitor continuously assesses a registry against a vulnerability catalog.
//
// Assessment state is cached per registry snapshot: the diversity report
// and the vulnerability exposure index (vuln.Injector) are rebuilt only
// when the registry mutates or the catalog grows, so Watch ticks and
// repeated Assess calls on an unchanged membership only evaluate the
// per-instant fault picture.
// The monitor's own methods are safe for concurrent use (Watch assesses
// from its own goroutine), and registry mutation during a live stream is
// synchronized by the registry itself — see Watch.
type Monitor struct {
	reg       *registry.Registry
	catalog   *vuln.Catalog
	weighting registry.Weighting
	substrate Substrate
	clock     Clock
	ticks     tickSource // nil = wall-ticker pacing stamped by clock
	interval  time.Duration

	mu       sync.Mutex
	snap     *registry.Snapshot // snapshot the caches below derive from
	catGen   uint64             // catalog generation the injector was built at
	report   diversity.Report
	injector *vuln.GroupInjector
	// summaryFaults elides compromised-name lists from injections
	// (vuln.GroupInjector.InjectSummary) — the O(groups) assessment mode
	// for very large populations. See WithSummaryFaults.
	summaryFaults bool
	// worst memoizes the last WorstAssessment: the sweep is a pure
	// function of (snapshot, catalog generation, horizon), so repeated
	// calls on an unchanged registry — one per scenario trace record —
	// reuse it instead of re-sweeping the critical instants.
	worst        Assessment
	worstHorizon time.Duration
	worstValid   bool

	stats CacheStats
}

// CacheStats counts how the monitor's per-snapshot cache behaved. The
// first assessment pays a Rebuild (full exposure index construction);
// after that every registry generation or catalog growth the monitor
// observes is a DeltaApply — only the changed buckets and the new
// vulnerabilities are patched into the derived state — and every other
// assessment, however many concurrent readers and Watch streams ask, is a
// Hit. The monitord service exposes these so a test (and an operator) can
// prove that N watchers on one tenant cost one *incremental* computation
// per generation, not N rebuilds.
type CacheStats struct {
	// Rebuilds is the number of full cache rebuilds: the first snapshot a
	// monitor observes, or a snapshot delta the registry journal could no
	// longer cover.
	Rebuilds uint64
	// DeltaApplies is the number of incremental reuses: a changed registry
	// snapshot or a grown catalog absorbed by patching the previous
	// derived state in O(Δ) instead of rebuilding it.
	DeltaApplies uint64
	// Hits is the number of assessments served entirely from the
	// per-snapshot cache.
	Hits uint64
}

// NewMonitor wires a monitor over a live registry. Every knob beyond the
// registry is a functional option:
//
//	mon, err := core.NewMonitor(reg,
//		core.WithCatalog(catalog),
//		core.WithSubstrate(bft.Substrate()),
//		core.WithWeighting(registry.Weighting{Attested: 1, Declared: 0.5}),
//	)
//
// Defaults: empty catalog, registry.DefaultWeighting, a BFT-family
// substrate (f = 1/3), a wall-clock Watch clock, and a 1s Watch interval.
func NewMonitor(reg *registry.Registry, opts ...Option) (*Monitor, error) {
	if reg == nil {
		return nil, errors.New("core: nil registry")
	}
	start := time.Now()
	m := &Monitor{
		reg:       reg,
		catalog:   vuln.NewCatalog(),
		weighting: registry.DefaultWeighting,
		substrate: Family{FamilyName: "bft", FaultTolerance: BFTThreshold},
		clock:     func() time.Duration { return time.Since(start) },
		interval:  time.Second,
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("core: nil option")
		}
		if err := opt(m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Substrate returns the consensus family the monitor assesses against.
func (m *Monitor) Substrate() Substrate { return m.substrate }

// Stats returns a snapshot of the monitor's cache counters.
func (m *Monitor) Stats() CacheStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Threshold returns the tolerated Byzantine power fraction in force.
func (m *Monitor) Threshold() float64 { return m.substrate.Tolerance() }

// refreshLocked brings the caches (diversity report, exposure index) up
// to date with the registry's current snapshot and the catalog's current
// generation, so both registry churn and Catalog.Add after construction
// show up in the very next assessment. m.mu must be held.
func (m *Monitor) refreshLocked() error {
	snap, err := m.reg.Snapshot(m.weighting)
	if err != nil {
		return err
	}
	catGen := m.catalog.Generation()
	if snap == m.snap && catGen == m.catGen {
		m.stats.Hits++
		return nil
	}
	if m.injector != nil && m.snap != nil {
		// Delta path: the previous snapshot shares every untouched
		// bucket's pointer with the new one, so the diff is O(Δ); patch
		// only those exposure sets, absorb any new vulnerabilities, and
		// recompute the diversity report from the bucket aggregates.
		if snap != m.snap {
			report, err := snap.Report()
			if err != nil {
				return fmt.Errorf("core: diversity report: %w", err)
			}
			changed, removed := registry.DiffSnapshots(m.snap, snap)
			m.injector.ApplyBuckets(changed, removed)
			m.report = report
		}
		if catGen != m.catGen {
			m.injector.ApplyCatalog(m.catalog)
		}
		m.stats.DeltaApplies++
		m.snap, m.catGen = snap, catGen
		m.worstValid = false
		return nil
	}
	m.stats.Rebuilds++
	report, err := snap.Report()
	if err != nil {
		return fmt.Errorf("core: diversity report: %w", err)
	}
	injector, err := vuln.NewGroupInjector(m.catalog, snap.BucketSpecs())
	if err != nil {
		return err
	}
	m.report = report
	m.snap, m.catGen, m.injector = snap, catGen, injector
	m.worstValid = false
	return nil
}

// injectLocked evaluates the instant under the configured fault-detail
// mode. m.mu must be held and the caches fresh.
func (m *Monitor) injectLocked(t time.Duration) vuln.Injection {
	if m.summaryFaults {
		return m.injector.InjectSummary(t)
	}
	return m.injector.Inject(t)
}

// Assess computes the full report at virtual time t. On an unchanged
// registry only the per-instant fault picture is recomputed; the
// diversity report and the vulnerability exposure index come from the
// snapshot cache.
func (m *Monitor) Assess(t time.Duration) (Assessment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.refreshLocked(); err != nil {
		return Assessment{}, err
	}
	inj := m.injectLocked(t)
	return Assessment{
		At:        t,
		Diversity: m.report,
		Injection: inj,
		Substrate: m.substrate.Name(),
		Threshold: m.substrate.Tolerance(),
		Safe:      m.substrate.Assess(inj),
	}, nil
}

// WorstAssessment sweeps the critical instants of [0, horizon] and returns
// the assessment at the adversary's best striking moment. The sweep is
// exact (event-driven over disclosure and patch-window boundaries), not
// sampled at a fixed step; see vuln.WorstWindow. Sweep and assessment
// happen against one snapshot, so a concurrent mutation cannot slip in
// between finding the worst instant and reporting it.
func (m *Monitor) WorstAssessment(horizon time.Duration) (Assessment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.refreshLocked(); err != nil {
		return Assessment{}, err
	}
	if m.worstValid && m.worstHorizon == horizon {
		return m.worst, nil
	}
	var worst vuln.Injection
	var err error
	if m.summaryFaults {
		worst, err = m.injector.WorstWindowSummary(horizon)
	} else {
		worst, err = m.injector.WorstWindow(horizon)
	}
	if err != nil {
		return Assessment{}, err
	}
	a := Assessment{
		At:        worst.At,
		Diversity: m.report,
		Injection: worst,
		Substrate: m.substrate.Name(),
		Threshold: m.substrate.Tolerance(),
		Safe:      m.substrate.Assess(worst),
	}
	m.worst, m.worstHorizon, m.worstValid = a, horizon, true
	return a, nil
}

// CapShares applies the share-capping enforcement policy: every
// configuration's effective share of voting power is capped at cap; excess
// weight is discarded (votes above the cap simply do not count). The
// returned distribution is what a diversity-enforcing protocol would use
// for quorum accounting. cap must be in (0, 1]; if cap × support < 1 the
// result is still a valid (sub-normalized) weighting — metrics normalize.
//
// Capping can only increase entropy: it moves the distribution toward
// uniformity without removing support.
func CapShares(d diversity.Distribution, cap float64) (diversity.Distribution, error) {
	if cap <= 0 || cap > 1 || math.IsNaN(cap) {
		return diversity.Distribution{}, fmt.Errorf("core: cap %v out of (0,1]", cap)
	}
	probs, err := d.Probabilities()
	if err != nil {
		return diversity.Distribution{}, err
	}
	labels := d.Labels()
	capped := make(map[string]float64, len(labels))
	for i, label := range labels {
		p := probs[i]
		if p > cap {
			p = cap
		}
		capped[label] = p
	}
	return diversity.FromWeights(capped)
}

// EnforcementGain reports the entropy before and after share capping.
type EnforcementGain struct {
	Cap                float64
	EntropyBefore      float64
	EntropyAfter       float64
	FaultsToHalfBefore int
	FaultsToHalfAfter  int
	// DiscardedShare is the fraction of raw voting power whose weight the
	// cap nullified — the price of the enforcement.
	DiscardedShare float64
}

// EvaluateCap computes the enforcement gain of capping shares at cap.
func EvaluateCap(d diversity.Distribution, cap float64) (EnforcementGain, error) {
	before, err := diversity.ReportForDistribution(d)
	if err != nil {
		return EnforcementGain{}, err
	}
	capped, err := CapShares(d, cap)
	if err != nil {
		return EnforcementGain{}, err
	}
	after, err := diversity.ReportForDistribution(capped)
	if err != nil {
		return EnforcementGain{}, err
	}
	return EnforcementGain{
		Cap:                cap,
		EntropyBefore:      before.Entropy,
		EntropyAfter:       after.Entropy,
		FaultsToHalfBefore: before.MinConfigFaultsToHalf,
		FaultsToHalfAfter:  after.MinConfigFaultsToHalf,
		DiscardedShare:     1 - capped.Total(),
	}, nil
}

// TwoTierOutcome compares the same population under face-value and
// two-tier (attestation-discounted) weighting — the paper's concluding
// proposal quantified.
type TwoTierOutcome struct {
	DeclaredDiscount float64
	Plain            Assessment
	Weighted         Assessment
}

// EvaluateTwoTier assesses the registry at time t under DefaultWeighting
// and under {Attested: 1, Declared: discount}.
func EvaluateTwoTier(reg *registry.Registry, catalog *vuln.Catalog, threshold float64, discount float64, t time.Duration) (TwoTierOutcome, error) {
	if discount < 0 || discount > 1 || math.IsNaN(discount) {
		return TwoTierOutcome{}, fmt.Errorf("core: discount %v out of [0,1]", discount)
	}
	plainMon, err := NewMonitor(reg, WithCatalog(catalog), WithThreshold(threshold))
	if err != nil {
		return TwoTierOutcome{}, err
	}
	plain, err := plainMon.Assess(t)
	if err != nil {
		return TwoTierOutcome{}, err
	}
	w := registry.Weighting{Attested: 1, Declared: discount}
	if discount == 0 {
		// Fully zeroing declared replicas is allowed as long as attested
		// power exists; Weighting.Validate rejects the all-zero case only.
		attested, _, attestedPower, _ := reg.TierCounts()
		if attested == 0 || attestedPower == 0 {
			return TwoTierOutcome{}, errors.New("core: discount 0 with no attested power would zero the system")
		}
	}
	weightedMon, err := NewMonitor(reg, WithCatalog(catalog), WithWeighting(w), WithThreshold(threshold))
	if err != nil {
		return TwoTierOutcome{}, err
	}
	weighted, err := weightedMon.Assess(t)
	if err != nil {
		return TwoTierOutcome{}, err
	}
	return TwoTierOutcome{DeclaredDiscount: discount, Plain: plain, Weighted: weighted}, nil
}

// AdmissionDecision is the admission policy's verdict for one joining
// replica. Permissionless systems cannot refuse membership, so the policy
// only assigns an effective vote weight.
type AdmissionDecision struct {
	Weight float64 // multiplier in [0, 1] applied to the replica's power
	Reason string
}

// AdmissionPolicy assigns join weights that keep any configuration from
// exceeding targetShare of effective power.
type AdmissionPolicy struct {
	// TargetShare is the per-configuration effective share ceiling.
	TargetShare float64
	// DeclaredDiscount multiplies unattested joins (two-tier rule).
	DeclaredDiscount float64
}

// Decide computes the weight for a replica with the given raw power and
// configuration label, against the current effective distribution d.
func (p AdmissionPolicy) Decide(d diversity.Distribution, label string, power float64, attested bool) (AdmissionDecision, error) {
	if p.TargetShare <= 0 || p.TargetShare > 1 {
		return AdmissionDecision{}, fmt.Errorf("core: target share %v out of (0,1]", p.TargetShare)
	}
	if p.DeclaredDiscount < 0 || p.DeclaredDiscount > 1 {
		return AdmissionDecision{}, fmt.Errorf("core: declared discount %v out of [0,1]", p.DeclaredDiscount)
	}
	if power < 0 || math.IsNaN(power) || math.IsInf(power, 0) {
		return AdmissionDecision{}, fmt.Errorf("core: invalid power %v", power)
	}
	weight := 1.0
	reason := "full weight"
	if !attested {
		weight = p.DeclaredDiscount
		reason = "declared tier discount"
	}
	current := d.Weight(label)
	total := d.Total()
	if total == 0 {
		// Bootstrap: the first joiner necessarily holds 100% of effective
		// power; capping is meaningless until a second configuration exists.
		return AdmissionDecision{Weight: weight, Reason: reason + " (bootstrap)"}, nil
	}
	effective := power * weight
	// Cap the configuration's post-join share at TargetShare:
	// (current + w·power) / (total + w·power) <= TargetShare.
	if total+effective > 0 {
		maxEffective := (p.TargetShare*total - current) / (1 - p.TargetShare)
		if maxEffective < 0 {
			maxEffective = 0
		}
		if effective > maxEffective {
			if power > 0 {
				weight = maxEffective / power
			} else {
				weight = 0
			}
			reason = "configuration share cap"
		}
	}
	return AdmissionDecision{Weight: weight, Reason: reason}, nil
}
