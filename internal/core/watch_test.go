package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/registry"
)

// TestVirtualTimeAdvance checks the clock's monotone semantics.
func TestVirtualTimeAdvance(t *testing.T) {
	vt := NewVirtualTime()
	if vt.Now() != 0 {
		t.Fatalf("fresh clock at %v", vt.Now())
	}
	if got := vt.Advance(10 * time.Second); got != 10*time.Second {
		t.Fatalf("Advance returned %v", got)
	}
	if got := vt.Advance(-time.Second); got != 10*time.Second {
		t.Fatalf("negative Advance moved the clock to %v", got)
	}
	if got := vt.AdvanceTo(5 * time.Second); got != 10*time.Second {
		t.Fatalf("AdvanceTo moved the clock backwards to %v", got)
	}
	if got := vt.AdvanceTo(30 * time.Second); got != 30*time.Second {
		t.Fatalf("AdvanceTo returned %v", got)
	}
}

// TestWatchVirtualTimePacing is the fix for the wall-ticker bug: with
// WithVirtualTime, Watch emissions land exactly on virtual interval
// boundaries, paced by Advance — no wall ticker, no wall-time dependence.
// The driver advances 35s past three 10s boundaries; the stream must emit
// at 0s (immediate), 10s, 20s, 30s and then block.
func TestWatchVirtualTimePacing(t *testing.T) {
	reg := testRegistry(t)
	vt := NewVirtualTime()
	mon, err := NewMonitor(reg,
		WithCatalog(debianVuln()),
		WithVirtualTime(vt),
		WithWatchInterval(10*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream := mon.Watch(ctx)

	first := <-stream
	if first.At != 0 {
		t.Fatalf("first emission at %v, want 0", first.At)
	}
	vt.Advance(35 * time.Second)
	for _, want := range []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second} {
		select {
		case a := <-stream:
			if a.At != want {
				t.Fatalf("emission at %v, want %v", a.At, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no emission for boundary %v", want)
		}
	}
	// 35s < next boundary 40s: the stream must be quiescent now.
	select {
	case a := <-stream:
		t.Fatalf("unexpected emission at %v before the 40s boundary", a.At)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	for range stream {
	}
}

// TestWatchChurnDuringStream: registry mutation while a stream is live is
// supported — each emission reflects the membership at the moment it was
// assessed, with mutations applied between reads deterministically
// visible in the next boundary's emission.
func TestWatchChurnDuringStream(t *testing.T) {
	reg := testRegistry(t) // 5 replicas, 100 power
	vt := NewVirtualTime()
	mon, err := NewMonitor(reg,
		WithVirtualTime(vt),
		WithWatchInterval(time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream := mon.Watch(ctx)

	a := <-stream
	if a.Diversity.Members != 5 {
		t.Fatalf("first emission sees %d members, want 5", a.Diversity.Members)
	}
	// The stream is now blocked on the 1s boundary: mutate, then advance.
	if err := reg.JoinDeclared("late", osCfg("netbsd"), 50, 0); err != nil {
		t.Fatal(err)
	}
	vt.Advance(time.Second)
	a = <-stream
	if a.Diversity.Members != 6 {
		t.Fatalf("post-join emission sees %d members, want 6", a.Diversity.Members)
	}
	if err := reg.Leave("late"); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetPower("r1", 5); err != nil {
		t.Fatal(err)
	}
	vt.Advance(time.Second)
	a = <-stream
	if a.Diversity.Members != 5 {
		t.Fatalf("post-leave emission sees %d members, want 5", a.Diversity.Members)
	}
}

// TestWatchStopsTickSourceOnAssessFailure: when a mid-stream assessment
// fails (here: the whole membership leaves, emptying the population), the
// stream closes AND the tick-source goroutine shuts down even though the
// caller never cancels its context.
func TestWatchStopsTickSourceOnAssessFailure(t *testing.T) {
	reg := registry.New(nil, nil)
	if err := reg.JoinDeclared("solo", osCfg("debian"), 10, 0); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	vt := NewVirtualTime()
	mon, err := NewMonitor(reg, WithVirtualTime(vt), WithWatchInterval(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	stream := mon.Watch(context.Background())
	if a := <-stream; a.Diversity.Members != 1 {
		t.Fatalf("first emission sees %d members", a.Diversity.Members)
	}
	if err := reg.Leave("solo"); err != nil {
		t.Fatal(err)
	}
	vt.Advance(time.Second)
	if _, open := <-stream; open {
		t.Fatal("stream still open after assessment failure")
	}
	// The tick-source goroutine must wind down without any ctx cancel.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("tick source leaked: %d goroutines, started with %d", n, before)
	}
}

// TestWatchWallDefaultStillWorks: without a virtual time source the
// stream still paces on the wall ticker and stamps instants from the
// clock (the pre-existing behaviour, kept for wall deployments).
func TestWatchWallDefaultStillWorks(t *testing.T) {
	reg := testRegistry(t)
	mon, err := NewMonitor(reg, WithWatchInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	for range mon.Watch(ctx) {
		n++
		if n == 3 {
			cancel()
		}
	}
	if n < 3 {
		t.Fatalf("saw %d emissions, want >= 3", n)
	}
}
