package core

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/diversity"
	"repro/internal/registry"
	"repro/internal/vuln"
)

func osCfg(name string) config.Configuration {
	return config.MustNew(config.Component{Class: config.ClassOperatingSystem, Name: name, Version: "1"})
}

func testRegistry(t *testing.T) *registry.Registry {
	t.Helper()
	reg := registry.New(nil, nil)
	// 3 replicas on debian (monoculture cluster), 1 each on two others.
	for _, j := range []struct {
		id  registry.ReplicaID
		os  string
		pow float64
	}{
		{"r1", "debian", 30}, {"r2", "debian", 20}, {"r3", "debian", 10},
		{"r4", "fedora", 25}, {"r5", "openbsd", 15},
	} {
		if err := reg.JoinDeclared(j.id, osCfg(j.os), j.pow, 24*time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func debianVuln() *vuln.Catalog {
	cat := vuln.NewCatalog()
	err := cat.Add(vuln.Vulnerability{
		ID: "CVE-debian", Class: config.ClassOperatingSystem, Product: "debian",
		Disclosed: 10 * time.Hour, PatchAt: 20 * time.Hour, Severity: 1,
	})
	if err != nil {
		panic(err)
	}
	return cat
}

func TestNewMonitorValidation(t *testing.T) {
	reg := registry.New(nil, nil)
	if _, err := NewMonitor(nil); err == nil {
		t.Fatal("nil registry accepted")
	}
	if _, err := NewMonitor(reg, WithCatalog(nil)); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := NewMonitor(reg, WithWeighting(registry.Weighting{Attested: -1, Declared: 1})); err == nil {
		t.Fatal("bad weighting accepted")
	}
	for _, f := range []float64{0, -0.5, 1, 1.5, math.NaN()} {
		if _, err := NewMonitor(reg, WithThreshold(f)); err == nil {
			t.Fatalf("threshold %v accepted", f)
		}
	}
	if _, err := NewMonitor(reg, WithSubstrate(nil)); err == nil {
		t.Fatal("nil substrate accepted")
	}
	if _, err := NewMonitor(reg, WithSubstrate(Family{FamilyName: "bad", FaultTolerance: 0})); err == nil {
		t.Fatal("zero-tolerance substrate accepted")
	}
	if _, err := NewMonitor(reg, WithClock(nil)); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewMonitor(reg, WithWatchInterval(0)); err == nil {
		t.Fatal("zero watch interval accepted")
	}
	if _, err := NewMonitor(reg, nil); err == nil {
		t.Fatal("nil option accepted")
	}
}

func TestMonitorDefaults(t *testing.T) {
	mon, err := NewMonitor(testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if mon.Threshold() != BFTThreshold {
		t.Fatalf("default threshold = %v, want %v", mon.Threshold(), BFTThreshold)
	}
	if mon.Substrate().Name() != "bft" {
		t.Fatalf("default substrate = %q, want bft", mon.Substrate().Name())
	}
	// Empty default catalog: always safe, whatever the time.
	a, err := mon.Assess(15 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Safe || len(a.Injection.Faults) != 0 {
		t.Fatalf("empty-catalog assessment = %+v", a)
	}
}

func TestMonitorSubstrateSelection(t *testing.T) {
	reg := testRegistry(t)
	// Under a Nakamoto-family tolerance (1/2), debian's 60% still breaks;
	// under a permissive custom family it does not.
	nak, err := NewMonitor(reg, WithCatalog(debianVuln()),
		WithSubstrate(Family{FamilyName: "nakamoto", FaultTolerance: NakamotoThreshold}))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := nak.Assess(15 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Safe || mid.Substrate != "nakamoto" || mid.Threshold != NakamotoThreshold {
		t.Fatalf("nakamoto assessment = %+v", mid)
	}
	loose, err := NewMonitor(reg, WithCatalog(debianVuln()), WithThreshold(0.75))
	if err != nil {
		t.Fatal(err)
	}
	a, err := loose.Assess(15 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Safe {
		t.Fatal("60% fault unsafe against f=0.75")
	}
}

func TestWatchStreamsAndTerminates(t *testing.T) {
	var mu sync.Mutex
	now := time.Duration(0)
	clock := func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		now += 5 * time.Hour // each tick advances virtual time 5h
		return now
	}
	mon, err := NewMonitor(testRegistry(t),
		WithCatalog(debianVuln()),
		WithClock(clock),
		WithWatchInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	stream := mon.Watch(ctx)
	// t=5h (safe, pre-disclosure), t=10h..20h (unsafe window).
	first, ok := <-stream
	if !ok || !first.Safe || first.At != 5*time.Hour {
		t.Fatalf("first assessment = %+v, ok=%v", first, ok)
	}
	second, ok := <-stream
	if !ok || second.Safe {
		t.Fatalf("second assessment = %+v, ok=%v (want unsafe inside window)", second, ok)
	}
	cancel()
	// The stream must terminate: drain until close, bounded by a timeout.
	done := make(chan struct{})
	go func() {
		for range stream {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Watch did not terminate on context cancellation")
	}
}

func TestMonitorAssess(t *testing.T) {
	reg := testRegistry(t)
	mon, err := NewMonitor(reg, WithCatalog(debianVuln()))
	if err != nil {
		t.Fatal(err)
	}
	// Before disclosure: no faults, safe.
	pre, err := mon.Assess(5 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Safe || len(pre.Injection.Faults) != 0 {
		t.Fatalf("pre-disclosure assessment = %+v", pre)
	}
	if pre.Diversity.Support != 3 {
		t.Fatalf("support = %d, want 3 (debian, fedora, openbsd)", pre.Diversity.Support)
	}
	// Inside the window: debian (60% of power) is compromised → unsafe.
	mid, err := mon.Assess(15 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Safe {
		t.Fatal("majority-power fault reported safe against f=1/3")
	}
	if math.Abs(mid.Injection.TotalFraction-0.6) > 1e-9 {
		t.Fatalf("compromised fraction = %v, want 0.6", mid.Injection.TotalFraction)
	}
	// After patch + latency (20h + 24h): safe again.
	post, err := mon.Assess(50 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !post.Safe {
		t.Fatal("post-patch assessment unsafe")
	}
}

func TestWorstAssessment(t *testing.T) {
	reg := testRegistry(t)
	mon, _ := NewMonitor(reg, WithCatalog(debianVuln()))
	worst, err := mon.WorstAssessment(100 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if worst.Safe {
		t.Fatal("worst window reported safe")
	}
	if worst.At < 10*time.Hour || worst.At >= 44*time.Hour {
		t.Fatalf("worst at %v, outside window", worst.At)
	}
	if _, err := mon.WorstAssessment(-time.Hour); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

// The monitor's snapshot cache must observe registry mutations: a leave
// that removes compromised power changes the very next assessment.
func TestMonitorObservesRegistryMutation(t *testing.T) {
	reg := testRegistry(t)
	mon, err := NewMonitor(reg, WithCatalog(debianVuln()))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := mon.Assess(15 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mid.Injection.TotalFraction-0.6) > 1e-9 {
		t.Fatalf("compromised fraction = %v, want 0.6", mid.Injection.TotalFraction)
	}
	// r1 (debian, power 30) leaves: debian holds 30 of 70 now.
	if err := reg.Leave("r1"); err != nil {
		t.Fatal(err)
	}
	after, err := mon.Assess(15 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	want := 30.0 / 70.0
	if math.Abs(after.Injection.TotalFraction-want) > 1e-9 {
		t.Fatalf("post-leave fraction = %v, want %v (stale snapshot?)", after.Injection.TotalFraction, want)
	}
	// SetPower must invalidate too.
	if err := reg.SetPower("r2", 0); err != nil {
		t.Fatal(err)
	}
	drained, err := mon.Assess(15 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	want = 10.0 / 50.0
	if math.Abs(drained.Injection.TotalFraction-want) > 1e-9 {
		t.Fatalf("post-SetPower fraction = %v, want %v", drained.Injection.TotalFraction, want)
	}
}

// A vulnerability added to the catalog after the monitor has warmed its
// caches must appear in the very next assessment, without any registry
// mutation in between.
func TestMonitorObservesCatalogAdd(t *testing.T) {
	reg := testRegistry(t)
	cat := vuln.NewCatalog()
	mon, err := NewMonitor(reg, WithCatalog(cat))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := mon.Assess(15 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Injection.Faults) != 0 {
		t.Fatalf("empty catalog produced faults: %+v", warm.Injection)
	}
	if err := cat.Add(vuln.Vulnerability{
		ID: "CVE-debian", Class: config.ClassOperatingSystem, Product: "debian",
		Disclosed: 10 * time.Hour, PatchAt: 20 * time.Hour, Severity: 1,
	}); err != nil {
		t.Fatal(err)
	}
	after, err := mon.Assess(15 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after.Injection.TotalFraction-0.6) > 1e-9 {
		t.Fatalf("post-Add fraction = %v, want 0.6 (stale injector?)", after.Injection.TotalFraction)
	}
}

// Two monitors over one registry with different weightings must not share
// cached snapshots, and concurrent assessment on a quiescent registry must
// be race-free (Watch assesses from its own goroutine). The monitors
// deliberately share one catalog: its lazily sorted order must survive
// concurrent readers racing to rebuild it.
func TestMonitorConcurrentAssess(t *testing.T) {
	reg := testRegistry(t)
	shared := debianVuln()
	plain, err := NewMonitor(reg, WithCatalog(shared))
	if err != nil {
		t.Fatal(err)
	}
	halved, err := NewMonitor(reg, WithCatalog(shared),
		WithWeighting(registry.Weighting{Attested: 1, Declared: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mon := plain
			if i%2 == 1 {
				mon = halved
			}
			for j := 0; j < 50; j++ {
				a, err := mon.Assess(time.Duration(j) * time.Hour)
				if err != nil {
					t.Error(err)
					return
				}
				if a.Diversity.Support != 3 {
					t.Errorf("support = %d", a.Diversity.Support)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestCacheStatsCountComputations pins the accounting contract monitord
// relies on: every assessment on an unchanged (registry, catalog) pair is
// a Hit, and exactly one Rebuild happens per generation the monitor
// observes — regardless of how many times or from how many goroutines it
// is asked.
func TestCacheStatsCountComputations(t *testing.T) {
	reg := testRegistry(t)
	mon, err := NewMonitor(reg, WithCatalog(debianVuln()))
	if err != nil {
		t.Fatal(err)
	}
	if s := mon.Stats(); s.Rebuilds != 0 || s.Hits != 0 {
		t.Fatalf("fresh monitor stats = %+v", s)
	}
	for j := 0; j < 10; j++ {
		if _, err := mon.Assess(time.Duration(j) * time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	if s := mon.Stats(); s.Rebuilds != 1 || s.Hits != 9 {
		t.Fatalf("after 10 assessments on one generation: %+v, want 1 rebuild / 9 hits", s)
	}
	// One mutation → exactly one delta-apply, however many reads follow.
	if err := reg.SetPower("r1", 31); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := mon.Assess(time.Duration(j) * time.Minute); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s := mon.Stats(); s.Rebuilds != 1 || s.DeltaApplies != 1 || s.Rebuilds+s.DeltaApplies+s.Hits != 10+8*25 {
		t.Fatalf("after mutation + 200 concurrent reads: %+v, want 1 rebuild + 1 delta-apply total", s)
	}
	// A catalog disclosure is a generation too.
	cat := debianVuln()
	mon3, err := NewMonitor(reg, WithCatalog(cat))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon3.Assess(0); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(vuln.Vulnerability{
		ID: "CVE-fedora", Class: config.ClassOperatingSystem, Product: "fedora",
		Disclosed: time.Hour, PatchAt: 2 * time.Hour, Severity: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mon3.Assess(0); err != nil {
		t.Fatal(err)
	}
	if s := mon3.Stats(); s.Rebuilds != 1 || s.DeltaApplies != 1 {
		t.Fatalf("catalog add did not count as a delta-apply: %+v", s)
	}
}

func TestCapSharesRaisesEntropy(t *testing.T) {
	d := diversity.MustFromSlice([]float64{60, 20, 10, 10})
	gain, err := EvaluateCap(d, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if gain.EntropyAfter <= gain.EntropyBefore {
		t.Fatalf("cap did not raise entropy: %v -> %v", gain.EntropyBefore, gain.EntropyAfter)
	}
	if gain.FaultsToHalfAfter <= gain.FaultsToHalfBefore {
		t.Fatalf("cap did not raise fault resilience: %d -> %d",
			gain.FaultsToHalfBefore, gain.FaultsToHalfAfter)
	}
	if gain.DiscardedShare <= 0 {
		t.Fatalf("no weight discarded despite binding cap: %v", gain.DiscardedShare)
	}
	// A non-binding cap changes nothing.
	loose, _ := EvaluateCap(diversity.Uniform(4), 0.5)
	if math.Abs(loose.EntropyBefore-loose.EntropyAfter) > 1e-9 || loose.DiscardedShare > 1e-9 {
		t.Fatalf("non-binding cap altered distribution: %+v", loose)
	}
}

func TestCapSharesValidation(t *testing.T) {
	d := diversity.Uniform(4)
	for _, cap := range []float64{0, -0.1, 1.1, math.NaN()} {
		if _, err := CapShares(d, cap); err == nil {
			t.Fatalf("cap %v accepted", cap)
		}
	}
	var empty diversity.Distribution
	if _, err := CapShares(empty, 0.5); err == nil {
		t.Fatal("empty distribution accepted")
	}
}

func TestEvaluateTwoTier(t *testing.T) {
	reg := registry.New(nil, nil)
	// Attested tier: diverse, modest power. Declared tier: a debian
	// monoculture holding most of the power.
	type join struct {
		id       registry.ReplicaID
		os       string
		pow      float64
		attested bool
	}
	joins := []join{
		{"a1", "fedora", 10, true}, {"a2", "openbsd", 10, true}, {"a3", "freebsd", 10, true},
		{"d1", "debian", 40, false}, {"d2", "debian", 30, false},
	}
	for _, j := range joins {
		var err error
		if j.attested {
			// Simulate attestation by declaring via a registry with no
			// authority: tier stays declared. Instead join declared and
			// patch the tier is impossible — so use a real authority path.
			err = reg.JoinDeclared(j.id, osCfg(j.os), j.pow, time.Hour)
		} else {
			err = reg.JoinDeclared(j.id, osCfg(j.os), j.pow, time.Hour)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	// All joined declared; the discount applies to everyone, so entropy is
	// unchanged (pure rescale). This guards the weighting math.
	out, err := EvaluateTwoTier(reg, debianVuln(), NakamotoThreshold, 0.5, 15*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Plain.Diversity.Entropy-out.Weighted.Diversity.Entropy) > 1e-9 {
		t.Fatalf("uniform discount changed entropy: %v vs %v",
			out.Plain.Diversity.Entropy, out.Weighted.Diversity.Entropy)
	}
	if _, err := EvaluateTwoTier(reg, debianVuln(), NakamotoThreshold, -0.1, 0); err == nil {
		t.Fatal("negative discount accepted")
	}
	if _, err := EvaluateTwoTier(reg, debianVuln(), NakamotoThreshold, 0, 0); err == nil {
		t.Fatal("discount 0 with no attested power accepted")
	}
}

func TestAdmissionPolicyTwoTier(t *testing.T) {
	d := diversity.MustFromSlice([]float64{25, 25, 25, 25})
	p := AdmissionPolicy{TargetShare: 0.5, DeclaredDiscount: 0.25}
	att, err := p.Decide(d, "new-config", 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if att.Weight != 1 {
		t.Fatalf("attested weight = %v, want 1", att.Weight)
	}
	dec, _ := p.Decide(d, "new-config", 10, false)
	if dec.Weight != 0.25 {
		t.Fatalf("declared weight = %v, want 0.25", dec.Weight)
	}
}

func TestAdmissionPolicyShareCap(t *testing.T) {
	// Existing distribution: config "fat" already has 40 of 100 power.
	d, err := diversity.FromWeights(map[string]float64{"fat": 40, "x": 30, "y": 30})
	if err != nil {
		t.Fatal(err)
	}
	p := AdmissionPolicy{TargetShare: 0.5, DeclaredDiscount: 1}
	// A 100-power joiner on "fat" would push it to 140/200 = 70%; the
	// policy must scale it down so the share lands at exactly 50%:
	// (40 + e)/(100 + e) = 0.5 -> e = 20 -> weight 0.2.
	dec, err := p.Decide(d, "fat", 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Weight-0.2) > 1e-9 {
		t.Fatalf("weight = %v, want 0.2", dec.Weight)
	}
	if dec.Reason != "configuration share cap" {
		t.Fatalf("reason = %q", dec.Reason)
	}
	// A configuration already above the cap admits at weight 0.
	tight := AdmissionPolicy{TargetShare: 0.3, DeclaredDiscount: 1}
	dec, _ = tight.Decide(d, "fat", 10, true)
	if dec.Weight != 0 {
		t.Fatalf("weight = %v, want 0 (already above cap)", dec.Weight)
	}
	// A small joiner on a fresh config keeps full weight.
	dec, _ = p.Decide(d, "fresh", 10, true)
	if dec.Weight != 1 {
		t.Fatalf("fresh config weight = %v", dec.Weight)
	}
}

func TestAdmissionPolicyValidation(t *testing.T) {
	d := diversity.Uniform(2)
	bad := []AdmissionPolicy{
		{TargetShare: 0, DeclaredDiscount: 1},
		{TargetShare: 1.5, DeclaredDiscount: 1},
		{TargetShare: 0.5, DeclaredDiscount: -1},
		{TargetShare: 0.5, DeclaredDiscount: 2},
	}
	for _, p := range bad {
		if _, err := p.Decide(d, "x", 1, true); err == nil {
			t.Fatalf("policy %+v accepted", p)
		}
	}
	good := AdmissionPolicy{TargetShare: 0.5, DeclaredDiscount: 1}
	if _, err := good.Decide(d, "x", math.NaN(), true); err == nil {
		t.Fatal("NaN power accepted")
	}
}

// Property-flavoured check: capping at (or below) the minimum positive
// share clamps every configuration to the same weight, yielding the
// κ-optimal (maximum-entropy) distribution; and entropy is monotone
// non-increasing in the cap value.
func TestCapToUniformIsKappaOptimal(t *testing.T) {
	for _, weights := range [][]float64{
		{90, 5, 3, 2},
		{50, 30, 20},
		{1, 1, 1, 1, 96},
	} {
		d := diversity.MustFromSlice(weights)
		probs, err := d.Probabilities()
		if err != nil {
			t.Fatal(err)
		}
		minShare := 1.0
		for _, p := range probs {
			if p > 0 && p < minShare {
				minShare = p
			}
		}
		capped, err := CapShares(d, minShare)
		if err != nil {
			t.Fatal(err)
		}
		if !capped.IsKappaOptimal(d.Support(), 1e-9) {
			t.Fatalf("cap at min share did not produce κ-optimal: %v", weights)
		}
		// Tighter caps never lower entropy.
		prev := -1.0
		for _, cap := range []float64{1, 0.5, 0.3, 0.1, minShare} {
			g, err := EvaluateCap(d, cap)
			if err != nil {
				t.Fatal(err)
			}
			if prev >= 0 && g.EntropyAfter < prev-1e-9 {
				t.Fatalf("entropy decreased as cap tightened: %v", weights)
			}
			prev = g.EntropyAfter
		}
	}
}
