package simnet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestFaultValidation(t *testing.T) {
	n, _ := newNet(t, FixedLatency(0), 0)
	bad := []Fault{
		{Drop: -0.1},
		{Drop: 1.0},
		{ExtraLatency: -time.Millisecond},
		{Jitter: -time.Millisecond},
		{Duplicate: -0.1},
		{Duplicate: 1.1},
		{Reorder: -0.1},
		{Reorder: 1.1},
	}
	for i, f := range bad {
		if err := n.SetLinkFault(0, 1, f); err == nil {
			t.Fatalf("bad fault %d (%+v) accepted", i, f)
		}
	}
	if err := n.SetLinkFault(0, 1, Fault{Drop: 0.5, Duplicate: 1, Reorder: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.LinkFault(0, 1); !ok {
		t.Fatal("installed fault not reported")
	}
	// The zero fault clears.
	if err := n.SetLinkFault(0, 1, Fault{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.LinkFault(0, 1); ok {
		t.Fatal("cleared fault still reported")
	}
}

func TestSetDropRateRuntime(t *testing.T) {
	n, sched := newNet(t, FixedLatency(0), 0)
	if err := n.SetDropRate(1.0); err == nil {
		t.Fatal("drop rate 1.0 accepted")
	}
	if err := n.SetDropRate(-0.1); err == nil {
		t.Fatal("negative drop rate accepted")
	}
	r := &recorder{}
	n.Register(0, &recorder{})
	n.Register(1, r)
	n.Send(0, 1, "clean")
	if err := n.SetDropRate(0.999); err != nil {
		t.Fatal(err)
	}
	if n.DropRate() != 0.999 {
		t.Fatalf("drop rate = %v", n.DropRate())
	}
	for i := 0; i < 50; i++ {
		n.Send(0, 1, i)
	}
	sched.Run(time.Second)
	if len(r.got) == 0 || r.got[0] != "clean" {
		t.Fatalf("pre-degradation message lost: %v", r.got)
	}
	if n.Stats().Dropped == 0 {
		t.Fatal("runtime drop rate had no effect")
	}
}

func TestLinkFaultDrop(t *testing.T) {
	n, sched := newNet(t, FixedLatency(0), 0)
	r := &recorder{}
	n.Register(0, &recorder{})
	n.Register(1, r)
	if err := n.SetLinkFault(0, 1, Fault{Drop: 0.5}); err != nil {
		t.Fatal(err)
	}
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send(0, 1, i)
	}
	// The reverse link is clean: direction matters.
	n.Send(1, 0, "back")
	sched.Run(time.Second)
	st := n.Stats()
	if st.LinkDropped == 0 {
		t.Fatal("no link drops")
	}
	if st.Dropped != 0 {
		t.Fatalf("link drops miscounted as global drops: %+v", st)
	}
	if st.LinkDropped+st.Delivered != total+1 {
		t.Fatalf("conservation violated: %+v", st)
	}
	if st.LinkDropped < total/4 || st.LinkDropped > 3*total/4 {
		t.Fatalf("link dropped = %d of %d, outside plausible range", st.LinkDropped, total)
	}
}

func TestLinkFaultExtraLatencyAndJitter(t *testing.T) {
	n, sched := newNet(t, FixedLatency(5*time.Millisecond), 0)
	var at []time.Duration
	n.Register(0, &recorder{})
	n.Register(1, HandlerFunc(func(_ NodeID, _ any) { at = append(at, sched.Now()) }))
	if err := n.SetLinkFault(0, 1, Fault{ExtraLatency: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	n.Send(0, 1, "slow")
	sched.Run(time.Second)
	if len(at) != 1 || at[0] != 25*time.Millisecond {
		t.Fatalf("delivered at %v, want exactly 25ms", at)
	}
	// Jitter bounds: every delivery lands in [base+extra, base+extra+jitter].
	if err := n.SetLinkFault(0, 1, Fault{ExtraLatency: 20 * time.Millisecond, Jitter: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	at = nil
	start := sched.Now()
	for i := 0; i < 200; i++ {
		n.Send(0, 1, i)
	}
	sched.Run(2 * time.Second)
	if len(at) != 200 {
		t.Fatalf("delivered %d of 200", len(at))
	}
	for _, ts := range at {
		d := ts - start
		if d < 25*time.Millisecond || d > 35*time.Millisecond {
			t.Fatalf("jittered delivery at +%v, want [25ms, 35ms]", d)
		}
	}
}

func TestLinkFaultDuplicate(t *testing.T) {
	n, sched := newNet(t, FixedLatency(time.Millisecond), 0)
	r := &recorder{}
	n.Register(0, &recorder{})
	n.Register(1, r)
	if err := n.SetLinkFault(0, 1, Fault{Duplicate: 1}); err != nil {
		t.Fatal(err)
	}
	const total = 10
	for i := 0; i < total; i++ {
		n.Send(0, 1, i)
	}
	sched.Run(time.Second)
	if len(r.got) != 2*total {
		t.Fatalf("got %d deliveries, want %d (every message doubled)", len(r.got), 2*total)
	}
	st := n.Stats()
	if st.Duplicated != total {
		t.Fatalf("duplicated = %d, want %d", st.Duplicated, total)
	}
	if st.Sent != total {
		t.Fatalf("sent = %d: duplicates must not count as sends", st.Sent)
	}
}

func TestLinkFaultReorder(t *testing.T) {
	n, sched := newNet(t, FixedLatency(5*time.Millisecond), 0)
	r := &recorder{}
	n.Register(0, &recorder{})
	n.Register(1, r)
	if err := n.SetLinkFault(0, 1, Fault{Reorder: 0.5}); err != nil {
		t.Fatal(err)
	}
	const total = 200
	for i := 0; i < total; i++ {
		// Space the sends so held-back messages can actually be overtaken.
		i := i
		sched.After(time.Duration(i)*time.Millisecond, "send", func() { n.Send(0, 1, i) })
	}
	sched.Run(5 * time.Second)
	if len(r.got) != total {
		t.Fatalf("delivered %d of %d", len(r.got), total)
	}
	if n.Stats().Reordered == 0 {
		t.Fatal("no reorders recorded")
	}
	inverted := 0
	for i := 1; i < len(r.got); i++ {
		if r.got[i].(int) < r.got[i-1].(int) {
			inverted++
		}
	}
	if inverted == 0 {
		t.Fatal("reorder fault never changed delivery order")
	}
}

// faultRun drives a fixed faulty workload and returns the full delivery
// transcript (receiver, virtual time, payload) plus final Stats.
func faultRun(seed int64) (string, Stats) {
	sched := sim.NewScheduler(seed)
	n, err := New(sched, UniformLatency{Min: time.Millisecond, Max: 20 * time.Millisecond}, 0.05)
	if err != nil {
		panic(err)
	}
	transcript := ""
	for id := 0; id < 4; id++ {
		id := id
		if err := n.Register(NodeID(id), HandlerFunc(func(from NodeID, msg any) {
			transcript += fmt.Sprintf("%v %d<-%d %v\n", sched.Now(), id, from, msg)
		})); err != nil {
			panic(err)
		}
	}
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(n.SetLinkFault(0, 1, Fault{Drop: 0.2, Jitter: 8 * time.Millisecond}))
	must(n.SetLinkFault(1, 2, Fault{Duplicate: 0.5, ExtraLatency: 3 * time.Millisecond}))
	must(n.SetLinkFault(2, 3, Fault{Reorder: 0.7}))
	for i := 0; i < 100; i++ {
		i := i
		sched.After(time.Duration(i)*2*time.Millisecond, "burst", func() {
			n.Broadcast(NodeID(i%4), i)
		})
	}
	// Mid-run mutation is part of the workload: degrade, then heal.
	sched.After(80*time.Millisecond, "degrade", func() {
		must(n.SetDropRate(0.3))
		must(n.SetLinkFault(3, 0, Fault{Drop: 0.4, Duplicate: 0.3, Reorder: 0.3, Jitter: 4 * time.Millisecond}))
	})
	sched.After(150*time.Millisecond, "heal", func() {
		must(n.SetDropRate(0.05))
		must(n.SetLinkFault(3, 0, Fault{}))
	})
	sched.Run(2 * time.Second)
	return transcript, n.Stats()
}

func TestFaultDeterminism(t *testing.T) {
	wantTranscript, wantStats := faultRun(42)
	if wantStats.Duplicated == 0 || wantStats.Reordered == 0 || wantStats.LinkDropped == 0 {
		t.Fatalf("workload failed to exercise all fault modes: %+v", wantStats)
	}
	for i := 0; i < 3; i++ {
		tr, st := faultRun(42)
		if tr != wantTranscript {
			t.Fatalf("run %d transcript diverged", i)
		}
		if st != wantStats {
			t.Fatalf("run %d stats diverged: %+v vs %+v", i, st, wantStats)
		}
	}
	if tr, _ := faultRun(43); tr == wantTranscript {
		t.Fatal("different seeds produced identical transcripts")
	}
}

// TestFaultDeterminismParallel replays the faulty workload from many
// goroutines at once: schedulers are independent, so concurrent runs (any
// -parallel setting) must still be byte-identical.
func TestFaultDeterminismParallel(t *testing.T) {
	wantTranscript, wantStats := faultRun(7)
	for w := 0; w < 8; w++ {
		w := w
		t.Run(fmt.Sprintf("worker-%d", w), func(t *testing.T) {
			t.Parallel()
			tr, st := faultRun(7)
			if tr != wantTranscript {
				t.Fatal("parallel transcript diverged")
			}
			if st != wantStats {
				t.Fatalf("parallel stats diverged: %+v vs %+v", st, wantStats)
			}
		})
	}
}
