// Package simnet provides a simulated message-passing network on top of the
// internal/sim discrete-event scheduler. Consensus substrates (internal/bft,
// internal/nakamoto) exchange messages through a Network, which models
// per-link latency, message loss, node crashes, network partitions and
// runtime-mutable per-link fault models (drop, extra latency, jitter,
// duplication, reordering — see Fault), and counts traffic per node — the message-overhead measurements behind
// Proposition 3's performance/reliability trade-off come from these
// counters.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/sim"
)

// NodeID identifies a node on the network.
type NodeID int

// Handler receives delivered messages. Implementations are single-threaded:
// the scheduler invokes at most one handler at a time.
type Handler interface {
	HandleMessage(from NodeID, msg any)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from NodeID, msg any)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from NodeID, msg any) { f(from, msg) }

// LatencyModel samples a one-way delivery latency for a (from, to) pair.
type LatencyModel interface {
	Sample(rng *rand.Rand, from, to NodeID) time.Duration
}

// FixedLatency delivers every message after a constant delay.
type FixedLatency time.Duration

// Sample implements LatencyModel.
func (l FixedLatency) Sample(*rand.Rand, NodeID, NodeID) time.Duration {
	return time.Duration(l)
}

// UniformLatency samples uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

// Sample implements LatencyModel.
func (l UniformLatency) Sample(rng *rand.Rand, _, _ NodeID) time.Duration {
	if l.Max <= l.Min {
		return l.Min
	}
	return l.Min + time.Duration(rng.Int63n(int64(l.Max-l.Min)+1))
}

// Stats aggregates traffic counters. Per-link overheads feed the
// Proposition 3 experiment.
type Stats struct {
	Sent        uint64
	Delivered   uint64
	Dropped     uint64 // random loss (global drop rate)
	Partition   uint64 // blocked by partition
	NodeDown    uint64 // destination (or source) crashed
	Unknown     uint64 // destination never registered
	Intercepts  uint64 // messages altered or consumed by a filter
	LinkDropped uint64 // lost to a per-link fault's Drop probability
	Duplicated  uint64 // delivered twice by a per-link Duplicate fault
	Reordered   uint64 // held back past later traffic by a Reorder fault
}

// Fault is a per-link degradation model layered over the base latency:
// lossy, slow, jittery, duplicating or reordering wires. The zero Fault is
// a clean link. All randomness comes from the scheduler RNG in a fixed
// draw order (drop, jitter, reorder, duplicate), so faulty runs replay
// byte-identically from the same seed.
type Fault struct {
	// Drop is an additional independent per-message loss probability on
	// this link, in [0, 1), applied after the global drop rate.
	Drop float64
	// ExtraLatency is a constant delay added to every delivery.
	ExtraLatency time.Duration
	// Jitter adds a uniformly random delay in [0, Jitter] per message.
	Jitter time.Duration
	// Duplicate is the probability, in [0, 1], that a message is delivered
	// a second time (with an independently sampled latency).
	Duplicate float64
	// Reorder is the probability, in [0, 1], that a message is held back
	// by an extra random delay so later traffic can overtake it.
	Reorder float64
}

// IsZero reports whether the fault is the clean link.
func (f Fault) IsZero() bool { return f == Fault{} }

// Validate rejects parameters that would silently misbehave: negative
// durations, probabilities outside their ranges (Drop must stay below 1 —
// a link that drops everything is a partition, and SetPartitions models
// that honestly).
func (f Fault) Validate() error {
	if f.Drop < 0 || f.Drop >= 1 {
		return fmt.Errorf("simnet: fault drop %v out of [0,1)", f.Drop)
	}
	if f.ExtraLatency < 0 {
		return fmt.Errorf("simnet: negative fault extra latency %v", f.ExtraLatency)
	}
	if f.Jitter < 0 {
		return fmt.Errorf("simnet: negative fault jitter %v", f.Jitter)
	}
	if f.Duplicate < 0 || f.Duplicate > 1 {
		return fmt.Errorf("simnet: fault duplicate %v out of [0,1]", f.Duplicate)
	}
	if f.Reorder < 0 || f.Reorder > 1 {
		return fmt.Errorf("simnet: fault reorder %v out of [0,1]", f.Reorder)
	}
	return nil
}

// linkKey addresses one directed link.
type linkKey struct{ from, to NodeID }

// Verdict is a filter's decision about a message in flight.
type Verdict int

// Filter verdicts.
const (
	Pass Verdict = iota // deliver unchanged
	Drop                // silently discard (counts as an intercept)
)

// Filter inspects messages in flight; used by experiments to model targeted
// Byzantine network behaviour (delay, drop, reorder via re-send).
type Filter func(from, to NodeID, msg any) Verdict

// Network is a simulated network. It is not safe for concurrent use; all
// access must happen from scheduler callbacks or the driving test.
type Network struct {
	sched     *sim.Scheduler
	latency   LatencyModel
	dropRate  float64
	handlers  map[NodeID]Handler
	ids       []NodeID       // registered ids, sorted, for deterministic iteration
	partition map[NodeID]int // partition group per node; absent = group 0
	down      map[NodeID]bool
	faults    map[linkKey]Fault
	filters   []Filter
	stats     Stats
	perNode   map[NodeID]*Stats
}

// New creates a network driven by the given scheduler. latency must be
// non-nil; dropRate is the independent per-message loss probability in
// [0, 1).
func New(sched *sim.Scheduler, latency LatencyModel, dropRate float64) (*Network, error) {
	if sched == nil {
		return nil, errors.New("simnet: nil scheduler")
	}
	if latency == nil {
		return nil, errors.New("simnet: nil latency model")
	}
	if dropRate < 0 || dropRate >= 1 {
		return nil, fmt.Errorf("simnet: drop rate %v out of [0,1)", dropRate)
	}
	return &Network{
		sched:     sched,
		latency:   latency,
		dropRate:  dropRate,
		handlers:  make(map[NodeID]Handler),
		partition: make(map[NodeID]int),
		down:      make(map[NodeID]bool),
		faults:    make(map[linkKey]Fault),
		perNode:   make(map[NodeID]*Stats),
	}, nil
}

// SetDropRate changes the global per-message loss probability at runtime.
// The same [0, 1) domain as New applies.
func (n *Network) SetDropRate(rate float64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("simnet: drop rate %v out of [0,1)", rate)
	}
	n.dropRate = rate
	return nil
}

// DropRate returns the current global loss probability.
func (n *Network) DropRate() float64 { return n.dropRate }

// SetLinkFault installs (or, with the zero Fault, clears) the fault model
// on the directed link from -> to, replacing any previous fault. Faults
// are mutable at runtime — mid-scenario degradation is the point — and
// compose with partitions, crash state and the global drop rate, all of
// which are checked first.
func (n *Network) SetLinkFault(from, to NodeID, f Fault) error {
	if err := f.Validate(); err != nil {
		return err
	}
	k := linkKey{from, to}
	if f.IsZero() {
		delete(n.faults, k)
		return nil
	}
	n.faults[k] = f
	return nil
}

// LinkFault returns the fault installed on the directed link, if any.
func (n *Network) LinkFault(from, to NodeID) (Fault, bool) {
	f, ok := n.faults[linkKey{from, to}]
	return f, ok
}

// Register attaches a handler for id, replacing any previous registration.
func (n *Network) Register(id NodeID, h Handler) error {
	if h == nil {
		return errors.New("simnet: nil handler")
	}
	if _, exists := n.handlers[id]; !exists {
		// Insert keeping ids sorted so Broadcast order is deterministic.
		pos := sort.Search(len(n.ids), func(i int) bool { return n.ids[i] >= id })
		n.ids = append(n.ids, 0)
		copy(n.ids[pos+1:], n.ids[pos:])
		n.ids[pos] = id
	}
	n.handlers[id] = h
	if n.perNode[id] == nil {
		n.perNode[id] = &Stats{}
	}
	return nil
}

// SetDown marks a node crashed (true) or recovered (false). Messages to or
// from a crashed node are lost.
func (n *Network) SetDown(id NodeID, down bool) { n.down[id] = down }

// IsDown reports whether a node is marked crashed.
func (n *Network) IsDown(id NodeID) bool { return n.down[id] }

// SetPartitions splits the network into groups; nodes in different groups
// cannot exchange messages. Nodes not listed fall into group 0. Passing no
// groups heals all partitions.
func (n *Network) SetPartitions(groups ...[]NodeID) {
	n.partition = make(map[NodeID]int)
	for g, nodes := range groups {
		for _, id := range nodes {
			n.partition[id] = g + 1
		}
	}
}

// AddFilter installs an interception filter. Filters run in order; the
// first non-Pass verdict wins.
func (n *Network) AddFilter(f Filter) {
	if f != nil {
		n.filters = append(n.filters, f)
	}
}

// Stats returns aggregate counters.
func (n *Network) Stats() Stats { return n.stats }

// NodeStats returns the counters for one node (messages it sent /
// received). The zero Stats is returned for unknown nodes.
func (n *Network) NodeStats(id NodeID) Stats {
	if s := n.perNode[id]; s != nil {
		return *s
	}
	return Stats{}
}

// Send schedules delivery of msg from -> to, applying loss, partitions,
// crash state, filters and per-link faults. It never fails synchronously:
// all loss modes are counted in Stats, mirroring a real datagram network.
func (n *Network) Send(from, to NodeID, msg any) {
	n.stats.Sent++
	if s := n.perNode[from]; s != nil {
		s.Sent++
	}
	if n.down[from] || n.down[to] {
		n.stats.NodeDown++
		return
	}
	if n.partition[from] != n.partition[to] {
		n.stats.Partition++
		return
	}
	for _, f := range n.filters {
		if f(from, to, msg) == Drop {
			n.stats.Intercepts++
			return
		}
	}
	if n.dropRate > 0 && n.sched.Rand().Float64() < n.dropRate {
		n.stats.Dropped++
		return
	}
	// Per-link fault, layered over the base latency. The RNG draw order is
	// fixed — drop, jitter, reorder, duplicate (then the duplicate's own
	// latency and jitter) — so the replay contract survives faulty links.
	fault, faulty := n.faults[linkKey{from, to}]
	if faulty && fault.Drop > 0 && n.sched.Rand().Float64() < fault.Drop {
		n.stats.LinkDropped++
		return
	}
	n.deliver(from, to, msg, n.faultDelay(from, to, fault))
	if faulty && fault.Duplicate > 0 && n.sched.Rand().Float64() < fault.Duplicate {
		n.stats.Duplicated++
		n.deliver(from, to, msg, n.faultDelay(from, to, fault))
	}
}

// faultDelay samples one delivery delay: base latency, plus the fault's
// constant and jittered extras, plus — with probability Reorder — a
// hold-back of up to the accumulated delay again (at least 1ms, so even
// zero-latency links actually let later traffic overtake).
func (n *Network) faultDelay(from, to NodeID, fault Fault) time.Duration {
	delay := n.latency.Sample(n.sched.Rand(), from, to)
	if fault.IsZero() {
		return delay
	}
	delay += fault.ExtraLatency
	if fault.Jitter > 0 {
		delay += time.Duration(n.sched.Rand().Int63n(int64(fault.Jitter) + 1))
	}
	if fault.Reorder > 0 && n.sched.Rand().Float64() < fault.Reorder {
		holdback := int64(delay)
		if holdback < int64(time.Millisecond) {
			holdback = int64(time.Millisecond)
		}
		delay += time.Duration(n.sched.Rand().Int63n(holdback + 1))
		n.stats.Reordered++
	}
	return delay
}

// deliver schedules one delivery attempt after delay, re-checking the
// destination's registration and crash state at delivery time.
func (n *Network) deliver(from, to NodeID, msg any, delay time.Duration) {
	n.sched.After(delay, fmt.Sprintf("deliver %d->%d", from, to), func() {
		h, ok := n.handlers[to]
		if !ok {
			n.stats.Unknown++
			return
		}
		if n.down[to] {
			n.stats.NodeDown++
			return
		}
		n.stats.Delivered++
		if s := n.perNode[to]; s != nil {
			s.Delivered++
		}
		h.HandleMessage(from, msg)
	})
}

// Broadcast sends msg from -> every registered node except the sender, in
// ascending id order (delivery order is then randomized by per-link
// latency, but the send sequence — and hence RNG consumption — is
// deterministic).
func (n *Network) Broadcast(from NodeID, msg any) {
	for _, id := range n.ids {
		if id != from {
			n.Send(from, id, msg)
		}
	}
}

// Nodes returns the registered node ids in ascending order.
func (n *Network) Nodes() []NodeID {
	return append([]NodeID(nil), n.ids...)
}

// Scheduler exposes the driving scheduler so protocols can set timers with
// the same virtual clock.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }
