package simnet

import (
	"testing"
	"time"

	"repro/internal/sim"
)

type recorder struct {
	got []any
}

func (r *recorder) HandleMessage(_ NodeID, msg any) { r.got = append(r.got, msg) }

func newNet(t *testing.T, latency LatencyModel, drop float64) (*Network, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler(1)
	n, err := New(sched, latency, drop)
	if err != nil {
		t.Fatal(err)
	}
	return n, sched
}

func TestNewValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	if _, err := New(nil, FixedLatency(0), 0); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := New(sched, nil, 0); err == nil {
		t.Fatal("nil latency accepted")
	}
	if _, err := New(sched, FixedLatency(0), 1.0); err == nil {
		t.Fatal("drop rate 1.0 accepted")
	}
	if _, err := New(sched, FixedLatency(0), -0.1); err == nil {
		t.Fatal("negative drop rate accepted")
	}
}

func TestSendDelivers(t *testing.T) {
	n, sched := newNet(t, FixedLatency(10*time.Millisecond), 0)
	r := &recorder{}
	if err := n.Register(2, r); err != nil {
		t.Fatal(err)
	}
	n.Register(1, &recorder{})
	n.Send(1, 2, "hello")
	sched.Run(time.Second)
	if len(r.got) != 1 || r.got[0] != "hello" {
		t.Fatalf("got %v", r.got)
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRegisterNil(t *testing.T) {
	n, _ := newNet(t, FixedLatency(0), 0)
	if err := n.Register(1, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestSendToUnknown(t *testing.T) {
	n, sched := newNet(t, FixedLatency(0), 0)
	n.Register(1, &recorder{})
	n.Send(1, 99, "void")
	sched.Run(time.Second)
	if n.Stats().Unknown != 1 {
		t.Fatalf("unknown = %d, want 1", n.Stats().Unknown)
	}
}

func TestLatencyOrdersDelivery(t *testing.T) {
	n, sched := newNet(t, FixedLatency(5*time.Millisecond), 0)
	r := &recorder{}
	n.Register(1, &recorder{})
	n.Register(2, r)
	var deliveredAt time.Duration
	n.Register(3, HandlerFunc(func(_ NodeID, _ any) { deliveredAt = sched.Now() }))
	n.Send(1, 3, "timed")
	sched.Run(time.Second)
	if deliveredAt != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", deliveredAt)
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	sched := sim.NewScheduler(3)
	l := UniformLatency{Min: 2 * time.Millisecond, Max: 8 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := l.Sample(sched.Rand(), 0, 1)
		if d < l.Min || d > l.Max {
			t.Fatalf("sample %v out of bounds", d)
		}
	}
	// Degenerate bounds return Min.
	deg := UniformLatency{Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}
	if got := deg.Sample(sched.Rand(), 0, 1); got != 5*time.Millisecond {
		t.Fatalf("degenerate sample = %v", got)
	}
}

func TestDropRateLosesMessages(t *testing.T) {
	n, sched := newNet(t, FixedLatency(0), 0.5)
	r := &recorder{}
	n.Register(1, &recorder{})
	n.Register(2, r)
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send(1, 2, i)
	}
	sched.Run(time.Second)
	st := n.Stats()
	if st.Dropped == 0 || st.Delivered == 0 {
		t.Fatalf("stats = %+v, want both drops and deliveries", st)
	}
	if st.Dropped+st.Delivered != total {
		t.Fatalf("conservation violated: %+v", st)
	}
	// Roughly half dropped (binomial, generous bounds).
	if st.Dropped < total/4 || st.Dropped > 3*total/4 {
		t.Fatalf("dropped = %d of %d, outside plausible range", st.Dropped, total)
	}
}

func TestNodeDownBlocksTraffic(t *testing.T) {
	n, sched := newNet(t, FixedLatency(0), 0)
	r := &recorder{}
	n.Register(1, &recorder{})
	n.Register(2, r)
	n.SetDown(2, true)
	n.Send(1, 2, "lost")
	sched.Run(time.Second)
	if len(r.got) != 0 {
		t.Fatal("crashed node received a message")
	}
	if !n.IsDown(2) {
		t.Fatal("IsDown = false")
	}
	n.SetDown(2, false)
	n.Send(1, 2, "found")
	sched.Run(2 * time.Second)
	if len(r.got) != 1 {
		t.Fatalf("recovered node got %d messages, want 1", len(r.got))
	}
}

func TestNodeCrashWhileInFlight(t *testing.T) {
	n, sched := newNet(t, FixedLatency(10*time.Millisecond), 0)
	r := &recorder{}
	n.Register(1, &recorder{})
	n.Register(2, r)
	n.Send(1, 2, "in-flight")
	// Crash the destination before delivery.
	sched.After(5*time.Millisecond, "crash", func() { n.SetDown(2, true) })
	sched.Run(time.Second)
	if len(r.got) != 0 {
		t.Fatal("message delivered to node that crashed mid-flight")
	}
}

func TestPartitions(t *testing.T) {
	n, sched := newNet(t, FixedLatency(0), 0)
	a, b := &recorder{}, &recorder{}
	n.Register(1, a)
	n.Register(2, b)
	n.Register(3, &recorder{})
	n.SetPartitions([]NodeID{1}, []NodeID{2})
	n.Send(1, 2, "blocked")
	n.Send(2, 1, "blocked")
	sched.Run(time.Second)
	if len(a.got)+len(b.got) != 0 {
		t.Fatal("partitioned nodes exchanged messages")
	}
	if n.Stats().Partition != 2 {
		t.Fatalf("partition count = %d", n.Stats().Partition)
	}
	// Node 3 is in implicit group 0, separate from both.
	n.Send(1, 3, "blocked too")
	sched.Run(2 * time.Second)
	if n.Stats().Partition != 3 {
		t.Fatalf("partition count = %d, want 3", n.Stats().Partition)
	}
	// Healing restores connectivity.
	n.SetPartitions()
	n.Send(1, 2, "healed")
	sched.Run(3 * time.Second)
	if len(b.got) != 1 {
		t.Fatal("healed partition still blocking")
	}
}

func TestFiltersDrop(t *testing.T) {
	n, sched := newNet(t, FixedLatency(0), 0)
	r := &recorder{}
	n.Register(1, &recorder{})
	n.Register(2, r)
	n.AddFilter(func(_, _ NodeID, msg any) Verdict {
		if msg == "evil" {
			return Drop
		}
		return Pass
	})
	n.AddFilter(nil) // ignored
	n.Send(1, 2, "evil")
	n.Send(1, 2, "good")
	sched.Run(time.Second)
	if len(r.got) != 1 || r.got[0] != "good" {
		t.Fatalf("got %v", r.got)
	}
	if n.Stats().Intercepts != 1 {
		t.Fatalf("intercepts = %d", n.Stats().Intercepts)
	}
}

func TestBroadcastExcludesSender(t *testing.T) {
	n, sched := newNet(t, FixedLatency(0), 0)
	rs := make([]*recorder, 4)
	for i := range rs {
		rs[i] = &recorder{}
		n.Register(NodeID(i), rs[i])
	}
	n.Broadcast(0, "all")
	sched.Run(time.Second)
	if len(rs[0].got) != 0 {
		t.Fatal("sender received own broadcast")
	}
	for i := 1; i < 4; i++ {
		if len(rs[i].got) != 1 {
			t.Fatalf("node %d got %d messages", i, len(rs[i].got))
		}
	}
	if got := n.Stats().Sent; got != 3 {
		t.Fatalf("sent = %d, want 3", got)
	}
}

func TestPerNodeStats(t *testing.T) {
	n, sched := newNet(t, FixedLatency(0), 0)
	n.Register(1, &recorder{})
	n.Register(2, &recorder{})
	n.Send(1, 2, "x")
	n.Send(1, 2, "y")
	sched.Run(time.Second)
	if s := n.NodeStats(1); s.Sent != 2 {
		t.Fatalf("node1 sent = %d", s.Sent)
	}
	if s := n.NodeStats(2); s.Delivered != 2 {
		t.Fatalf("node2 delivered = %d", s.Delivered)
	}
	if s := n.NodeStats(99); s.Sent != 0 {
		t.Fatal("unknown node has stats")
	}
}

func TestNodesList(t *testing.T) {
	n, _ := newNet(t, FixedLatency(0), 0)
	n.Register(5, &recorder{})
	n.Register(7, &recorder{})
	ids := n.Nodes()
	if len(ids) != 2 {
		t.Fatalf("nodes = %v", ids)
	}
}

func TestDeterministicDelivery(t *testing.T) {
	run := func() []any {
		sched := sim.NewScheduler(99)
		n, _ := New(sched, UniformLatency{Min: time.Millisecond, Max: 20 * time.Millisecond}, 0.1)
		r := &recorder{}
		n.Register(0, &recorder{})
		n.Register(1, r)
		for i := 0; i < 100; i++ {
			n.Send(0, 1, i)
		}
		sched.Run(time.Second)
		return r.got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d", i)
		}
	}
}
