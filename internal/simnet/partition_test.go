package simnet

import (
	"testing"
	"time"
)

// TestPartitionHealOrdering pins the ordering semantics of heal relative
// to in-flight traffic: a message sent while the partition is up is
// dropped at *send* time and must not resurface after the heal, while a
// message already in flight when the partition goes up was admitted at
// send time and still arrives — partitions block admission, not delivery.
func TestPartitionHealOrdering(t *testing.T) {
	n, sched := newNet(t, FixedLatency(10*time.Millisecond), 0)
	a, b := &recorder{}, &recorder{}
	if err := n.Register(1, a); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(2, b); err != nil {
		t.Fatal(err)
	}

	// t=0: message admitted pre-partition, delivery due at t=10ms.
	n.Send(1, 2, "in-flight-before-partition")

	// t=5ms: partition goes up; a message sent under it is dropped at the
	// source and a heal at t=20ms must not resurrect it.
	sched.After(5*time.Millisecond, "partition", func() {
		n.SetPartitions([]NodeID{1}, []NodeID{2})
		n.Send(1, 2, "sent-during-partition")
	})
	sched.After(20*time.Millisecond, "heal", func() {
		n.SetPartitions()
		n.Send(1, 2, "sent-after-heal")
	})

	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	want := []any{"in-flight-before-partition", "sent-after-heal"}
	if len(b.got) != len(want) {
		t.Fatalf("delivered %v, want %v", b.got, want)
	}
	for i := range want {
		if b.got[i] != want[i] {
			t.Fatalf("delivery %d = %v, want %v (heal ordering broken)", i, b.got[i], want[i])
		}
	}
	if n.Stats().Partition != 1 {
		t.Fatalf("partition drops = %d, want 1", n.Stats().Partition)
	}
}

// TestPartitionHealIsCompleteAndImmediate: healing inside an event takes
// effect for sends later in the same instant — there is no lingering
// partition state — and a partial re-partition only isolates the named
// groups.
func TestPartitionHealIsCompleteAndImmediate(t *testing.T) {
	n, sched := newNet(t, FixedLatency(time.Millisecond), 0)
	recs := map[NodeID]*recorder{}
	for id := NodeID(1); id <= 3; id++ {
		recs[id] = &recorder{}
		if err := n.Register(id, recs[id]); err != nil {
			t.Fatal(err)
		}
	}
	n.SetPartitions([]NodeID{1}, []NodeID{2}, []NodeID{3})
	sched.After(time.Millisecond, "heal-and-send", func() {
		n.SetPartitions()
		// Same instant, later in the event: all links must already work.
		n.Broadcast(1, "post-heal")
	})
	// Re-partition only node 3 afterwards.
	sched.After(5*time.Millisecond, "isolate-3", func() {
		n.SetPartitions([]NodeID{3})
		n.Send(1, 2, "pair-ok")
		n.Send(1, 3, "blocked")
	})
	if err := sched.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(recs[2].got) != 2 || recs[2].got[0] != "post-heal" || recs[2].got[1] != "pair-ok" {
		t.Fatalf("node 2 got %v", recs[2].got)
	}
	if len(recs[3].got) != 1 || recs[3].got[0] != "post-heal" {
		t.Fatalf("node 3 got %v", recs[3].got)
	}
}
