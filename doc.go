// Package repro reproduces "Fault Independence in Blockchain"
// (Jiangshan Yu, DSN 2023, Disrupt Track; arXiv:2306.05690) as a Go
// library: entropy-based measurement of replica-configuration diversity,
// κ-optimal fault independence and (κ, ω)-optimal resilience, remote
// attestation for configuration discovery, and the consensus substrates
// (weighted BFT, Nakamoto PoW, committee selection) used to evaluate them
// under shared-fault adversaries.
//
// The public surface lives in the internal packages (this module is a
// self-contained reproduction); see README.md for the map and DESIGN.md
// for the per-experiment index. The benchmarks in bench_test.go regenerate
// every table and figure of the paper.
package repro
