// Package repro reproduces "Fault Independence in Blockchain"
// (Jiangshan Yu, DSN 2023, Disrupt Track; arXiv:2306.05690) as a Go
// library: entropy-based measurement of replica-configuration diversity,
// κ-optimal fault independence and (κ, ω)-optimal resilience, remote
// attestation for configuration discovery, and the consensus substrates
// (weighted BFT, Nakamoto PoW, committee selection) used to evaluate them
// under shared-fault adversaries.
//
// The public surface lives in the internal packages (this module is a
// self-contained reproduction); see README.md for the map and DESIGN.md
// for the per-experiment index. Three pieces tie it together: the
// experiment registry (internal/experiment) that cmd/experiments,
// bench_test.go and EXPERIMENTS regeneration all drive off; the
// functional-options core.Monitor with its streaming Watch; and the
// core.Substrate interface through which callers select a consensus
// family (bft, nakamoto, committee) by value.
package repro
