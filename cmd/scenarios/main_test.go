package main

import (
	"context"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func TestSelectDefs(t *testing.T) {
	all, err := selectDefs("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(scenario.All()) {
		t.Fatalf("all selected %d of %d", len(all), len(scenario.All()))
	}
	subset, err := selectDefs("committee-rotation, flash-churn, flash-churn")
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != 2 || subset[0].Name != "committee-rotation" || subset[1].Name != "flash-churn" {
		t.Fatalf("subset selection wrong: %+v", subset)
	}
	if _, err := selectDefs("nope"); err == nil || !strings.Contains(err.Error(), "available:") {
		t.Fatalf("unknown name error unhelpful: %v", err)
	}
	if _, err := selectDefs(" , "); err == nil {
		t.Fatal("empty selection accepted")
	}
}

// TestOutputDeterminismAcrossParallel is the in-process version of the CI
// determinism gate: -run all -seed 42 renders byte-identically for serial
// and parallel execution, in JSON, CSV and summary modes.
func TestOutputDeterminismAcrossParallel(t *testing.T) {
	defs, err := selectDefs("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []renderMode{modeJSON, modeCSV, modeSummary} {
		serialRes, err := runAll(context.Background(), defs, 42, 1)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := render(serialRes, mode)
		if err != nil {
			t.Fatal(err)
		}
		parallelRes, err := runAll(context.Background(), defs, 42, 4)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := render(parallelRes, mode)
		if err != nil {
			t.Fatal(err)
		}
		if serial != parallel {
			t.Errorf("mode %d output differs between -parallel 1 and -parallel 4", mode)
		}
		if len(serial) == 0 {
			t.Errorf("mode %d produced no output", mode)
		}
	}
}

func TestCSVOutputParsesBack(t *testing.T) {
	defs, err := selectDefs("zero-day-under-partition")
	if err != nil {
		t.Fatal(err)
	}
	results, err := runAll(context.Background(), defs, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := render(results, modeCSV)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("CSV output does not parse back: %v", err)
	}
	if len(rows) != len(results[0].Records)+1 {
		t.Fatalf("CSV has %d rows, want %d records + header", len(rows), len(results[0].Records))
	}
	if got, want := len(rows[0]), len(scenario.CSVHeader()); got != want {
		t.Fatalf("header has %d columns, want %d", got, want)
	}
}

func TestListTable(t *testing.T) {
	out := listTable().String()
	for _, name := range scenario.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("list output missing %s", name)
		}
	}
}
